module github.com/detector-net/detector

go 1.22
