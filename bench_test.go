// Top-level benchmarks: one per paper table and figure (regenerating the
// experiment at reduced trial counts), plus ablation benches for the design
// choices called out in DESIGN.md. Run the full harness with:
//
//	go test -bench=. -benchmem .
//
// For paper-style output (full trials, bigger instances) use
// cmd/experiments instead; benchmarks exist to track the cost of each
// pipeline and to regression-test the optimizations' relative speed.
package detector_test

import (
	"io"
	"math/rand"
	"testing"

	"github.com/detector-net/detector/internal/expt"
	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/sim"
	"github.com/detector-net/detector/internal/topo"
	"github.com/detector-net/detector/internal/wire"
)

func benchParams() expt.Params {
	return expt.Params{Trials: 3, Seed: 42, ProbesPerPath: 200}
}

// BenchmarkTable1Capabilities measures the capability drill (paper Table 1).
func BenchmarkTable1Capabilities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.Table1(io.Discard, benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// Table 2: PMC runtime per optimization level on Fattree(8) (the paper's
// progression strawman -> decompose -> lazy -> symmetry).
func benchPMC(b *testing.B, opt pmc.Options) {
	f := topo.MustFattree(8)
	ps := route.NewFattreePaths(f)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pmc.Construct(ps, f.NumLinks(), opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2PMCStrawman(b *testing.B) {
	benchPMC(b, pmc.Options{Alpha: 2, Beta: 1})
}

func BenchmarkTable2PMCDecompose(b *testing.B) {
	benchPMC(b, pmc.Options{Alpha: 2, Beta: 1, Decompose: true})
}

func BenchmarkTable2PMCLazy(b *testing.B) {
	benchPMC(b, pmc.Options{Alpha: 2, Beta: 1, Decompose: true, Lazy: true})
}

func BenchmarkTable2PMCSymmetry(b *testing.B) {
	benchPMC(b, pmc.Options{Alpha: 2, Beta: 1, Decompose: true, Lazy: true, Symmetry: true})
}

// β=2 construction benches: the Table 5 configuration (1,2) running on the
// exact incremental scoring engine — refine.SplitAffected reports exact
// affected links for the virtual pair universe, so cached scores survive
// selections at β=2 exactly as they do at β=1. Fattree(8) keeps the
// per-commit cost low; the Fattree(16) variant is the ARCHITECTURE.md
// headline measurement and the CI smoke target.
func BenchmarkBeta2PMCLazy(b *testing.B) {
	benchPMC(b, pmc.Options{Alpha: 1, Beta: 2, Decompose: true, Lazy: true})
}

func BenchmarkBeta2PMCStrawman(b *testing.B) {
	benchPMC(b, pmc.Options{Alpha: 1, Beta: 2, Decompose: true})
}

func BenchmarkBeta2ConstructFattree16(b *testing.B) {
	f := topo.MustFattree(16)
	ps := route.NewFattreePaths(f)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pmc.Construct(ps, f.NumLinks(), pmc.Options{
			Alpha: 1, Beta: 2, Decompose: true, Lazy: true, Symmetry: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPMCMaterializeCSR isolates the one-time cost of flattening the
// Fattree(8) candidate matrix into the CSR arena that the PMC scoring
// engine (and DecomposeCSR) run on — the only place AppendLinks-equivalent
// work happens per construction.
func BenchmarkPMCMaterializeCSR(b *testing.B) {
	f := topo.MustFattree(8)
	ps := route.NewFattreePaths(f)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if csr := route.MaterializeCSR(ps); csr.Len() != ps.Len() {
			b.Fatal("short materialization")
		}
	}
}

// BenchmarkTable3Paths regenerates the selected-path counts (paper Table 3).
func BenchmarkTable3Paths(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Table3(io.Discard, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Accuracy regenerates the identifiability-vs-accuracy sweep
// (paper Table 4).
func BenchmarkTable4Accuracy(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Table4(io.Discard, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5LargeScale regenerates the (1,2) large-scale run at CI
// size (paper Table 5 uses a 48-ary Fattree; cmd/experiments -k 48).
func BenchmarkTable5LargeScale(b *testing.B) {
	p := benchParams()
	p.K = 8
	for i := 0; i < b.N; i++ {
		if _, err := expt.Table5(io.Discard, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Sensitivity regenerates the probing-frequency sweep
// (paper Fig. 4a-d).
func BenchmarkFig4Sensitivity(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig4(io.Discard, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Comparison regenerates the three-system budget sweep
// (paper Fig. 5).
func BenchmarkFig5Comparison(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig5(io.Discard, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6MultiFailure regenerates the concurrent-failure sweep
// (paper Fig. 6).
func BenchmarkFig6MultiFailure(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig6(io.Discard, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPingerThroughput measures the per-probe cost of the agent wire
// path (marshal + unmarshal + reverse), the measured side of Fig. 4(b):
// the paper reports 0.4% CPU at 10 probes/second.
func BenchmarkPingerThroughput(b *testing.B) {
	pkt := &wire.Packet{
		ProbeID: 1, PathID: 2, FlowLabel: 3, SendNS: 4,
		Route: []topo.NodeID{10, 4, 0, 6, 12, 13, 20},
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = pkt.Marshal(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		got, err := wire.Unmarshal(buf)
		if err != nil {
			b.Fatal(err)
		}
		_ = got.Reversed(5)
	}
}

// BenchmarkPLLLocalize measures one localization window on a Fattree(16)
// matrix with 10 concurrent failures — the paper's "within 1 second in a
// large DCN" claim (§5.3) scaled to CI.
func BenchmarkPLLLocalize(b *testing.B) {
	f := topo.MustFattree(16)
	ps := route.NewFattreePaths(f)
	res, err := pmc.Construct(ps, f.NumLinks(), pmc.Options{Alpha: 1, Beta: 2, Decompose: true, Lazy: true, Symmetry: true})
	if err != nil {
		b.Fatal(err)
	}
	probes := route.NewProbes(ps, res.Selected, f.NumLinks())
	rng := rand.New(rand.NewSource(9))
	cfg := sim.DefaultFailureConfig()
	cfg.Failures = 10
	cfg.SwitchFrac = 0
	cfg.MinRate = 0.01
	cfg.IncludeServerLinks = false
	scen, err := sim.Generate(f.Topology, cfg, rng)
	if err != nil {
		b.Fatal(err)
	}
	n := sim.NewNetwork(f.Topology, scen)
	obs := sim.SimulateWindow(n, probes, sim.ProbeWindowConfig{ProbesPerPath: 200}, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pll.Localize(probes, obs, pll.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablations: the design choices DESIGN.md calls out.

// BenchmarkAblationLazy isolates the CELF lazy-update speedup at fixed
// decomposition (compare Off/On ns/op).
func BenchmarkAblationLazy(b *testing.B) {
	b.Run("Off", func(b *testing.B) { benchPMC(b, pmc.Options{Alpha: 2, Beta: 1, Decompose: true}) })
	b.Run("On", func(b *testing.B) { benchPMC(b, pmc.Options{Alpha: 2, Beta: 1, Decompose: true, Lazy: true}) })
}

// BenchmarkAblationDecompose isolates Observation 1 at fixed lazy updates.
func BenchmarkAblationDecompose(b *testing.B) {
	b.Run("Off", func(b *testing.B) { benchPMC(b, pmc.Options{Alpha: 2, Beta: 1, Lazy: true}) })
	b.Run("On", func(b *testing.B) { benchPMC(b, pmc.Options{Alpha: 2, Beta: 1, Decompose: true, Lazy: true}) })
}

// BenchmarkAblationSymmetry isolates Observation 3 on a larger instance
// where orbit reduction matters.
func BenchmarkAblationSymmetry(b *testing.B) {
	f := topo.MustFattree(12)
	ps := route.NewFattreePaths(f)
	run := func(b *testing.B, sym bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, err := pmc.Construct(ps, f.NumLinks(), pmc.Options{
				Alpha: 2, Beta: 1, Decompose: true, Lazy: true, Symmetry: sym,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("Off", func(b *testing.B) { run(b, false) })
	b.Run("On", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationHitRatio sweeps PLL's hit-ratio threshold; tau = 1.0
// degenerates to Tomo's exoneration rule and loses partial-loss failures
// (accuracy is reported via the b.ReportMetric hook).
func BenchmarkAblationHitRatio(b *testing.B) {
	f := topo.MustFattree(8)
	ps := route.NewFattreePaths(f)
	res, err := pmc.Construct(ps, f.NumLinks(), pmc.Options{Alpha: 3, Beta: 1, Decompose: true, Lazy: true})
	if err != nil {
		b.Fatal(err)
	}
	probes := route.NewProbes(ps, res.Selected, f.NumLinks())
	for _, tau := range []float64{0.3, 0.6, 0.9, 1.0} {
		b.Run(ratioName(tau), func(b *testing.B) {
			rng := rand.New(rand.NewSource(5))
			cfg := pll.DefaultConfig()
			cfg.HitRatio = tau
			hits, total := 0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				links := f.SwitchLinks()
				bad := links[rng.Intn(len(links))]
				// A narrow blackhole (3 of 32 buckets) probed with few
				// flow labels leaves some paths through the bad link
				// clean — exactly the case where Tomo's exoneration rule
				// (tau = 1.0) fails.
				scen := sim.NewScenario(sim.Failure{
					Link:       bad,
					Model:      sim.DeterministicLoss{Buckets: 0x00000007, Seed: rng.Uint64()},
					FromSwitch: -1,
				})
				n := sim.NewNetwork(f.Topology, scen)
				obs := sim.SimulateWindow(n, probes, sim.ProbeWindowConfig{ProbesPerPath: 100, PortRange: 4}, rng)
				lres, err := pll.Localize(probes, obs, cfg)
				if err != nil {
					b.Fatal(err)
				}
				total++
				for _, l := range lres.BadLinks() {
					if l == bad {
						hits++
						break
					}
				}
			}
			b.ReportMetric(float64(hits)/float64(total), "accuracy")
		})
	}
}

func ratioName(tau float64) string {
	switch tau {
	case 0.3:
		return "tau=0.3"
	case 0.6:
		return "tau=0.6"
	case 0.9:
		return "tau=0.9"
	default:
		return "tau=1.0"
	}
}

// BenchmarkProbeSimulation measures raw simulator throughput (probes/op).
func BenchmarkProbeSimulation(b *testing.B) {
	f := topo.MustFattree(8)
	links := f.PathLinks(f.ToRAt(0, 0), f.ToRAt(3, 1), 5, nil)
	n := sim.NewNetwork(f.Topology, sim.NewScenario(sim.Failure{
		Link: links[1], Model: sim.RandomLoss{P: 0.01}, FromSwitch: -1,
	}))
	rng := rand.New(rand.NewSource(1))
	key := sim.FlowKey{Src: 1, Dst: 2, SrcPort: 33434, DstPort: 7, Proto: sim.UDPProto}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.ProbePath(links, key, 100, 16, rng)
	}
}

// BenchmarkAblationEvenness isolates the Σw evenness term of the PMC score
// (Eq. 1), reporting the resulting max-min coverage gap alongside runtime
// (the paper cites a gap of 188 on Fattree(64) without evenness, §4.2).
func BenchmarkAblationEvenness(b *testing.B) {
	f := topo.MustFattree(8)
	ps := route.NewFattreePaths(f)
	run := func(b *testing.B, noEvenness bool) {
		gap := 0
		for i := 0; i < b.N; i++ {
			res, err := pmc.Construct(ps, f.NumLinks(), pmc.Options{
				Alpha: 2, Beta: 1, Decompose: true, Lazy: true, NoEvenness: noEvenness,
			})
			if err != nil {
				b.Fatal(err)
			}
			probes := route.NewProbes(ps, res.Selected, f.NumLinks())
			v := pmc.Verify(probes, f.SwitchLinks(), false)
			gap = v.MaxCoverage - v.MinCoverage
		}
		b.ReportMetric(float64(gap), "coverage-gap")
	}
	b.Run("WithEvenness", func(b *testing.B) { run(b, false) })
	b.Run("NoEvenness", func(b *testing.B) { run(b, true) })
}
