// Failuredrill stress-tests localization under concurrent failures, in the
// style of the paper's Table 4: it sweeps probe-matrix identifiability
// levels against rising failure counts on a 12-ary Fattree and prints the
// accuracy surface, demonstrating why identifiability matters more than
// coverage.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	detector "github.com/detector-net/detector"
)

func main() {
	f := detector.MustFattree(12)
	fmt.Println("topology:", f)
	paths := detector.NewFattreePaths(f)
	rng := rand.New(rand.NewSource(2026))

	configs := []struct{ alpha, beta int }{
		{1, 0}, {3, 0}, {1, 1}, {1, 2},
	}
	failures := []int{1, 4, 8, 16}
	const trials = 8
	const probesPerPath = 300

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "matrix\tpaths\t1 failure\t4\t8\t16")
	for _, cfg := range configs {
		res, err := detector.ConstructProbeMatrix(paths, f.NumLinks(), detector.PMCOptions{
			Alpha: cfg.alpha, Beta: cfg.beta,
			Decompose: true, Lazy: true, Symmetry: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		probes := detector.NewProbes(paths, res.Selected, f.NumLinks())
		row := fmt.Sprintf("(%d,%d)\t%d", cfg.alpha, cfg.beta, len(res.Selected))

		for _, nf := range failures {
			var pooled detector.Confusion
			for tr := 0; tr < trials; tr++ {
				fcfg := detector.DefaultFailureConfig()
				fcfg.Failures = nf
				fcfg.SwitchFrac = 0
				fcfg.MinRate = 0.01
				fcfg.IncludeServerLinks = false
				scen, err := detector.GenerateScenario(f.Topology, fcfg, rng)
				if err != nil {
					log.Fatal(err)
				}
				n := detector.NewNetwork(f.Topology, scen)
				obs := detector.SimulateWindow(n, probes, detector.ProbeWindowConfig{
					ProbesPerPath: probesPerPath,
				}, rng)
				lres, err := detector.Localize(probes, obs, detector.DefaultPLLConfig())
				if err != nil {
					log.Fatal(err)
				}
				pooled.Add(detector.CompareLinks(lres.BadLinks(), scen.BadLinks()))
			}
			row += fmt.Sprintf("\t%.1f%%", 100*pooled.Accuracy())
		}
		fmt.Fprintln(w, row)
	}
	w.Flush()
	fmt.Println("\nreading: 1-coverage alone cannot disambiguate (top row); adding")
	fmt.Println("1-identifiability reaches >90% accuracy with a fraction of the paths")
	fmt.Println("that 3-coverage needs — the paper's §6.4 point that identifiability")
	fmt.Println("is the cheaper lever than coverage.")
}
