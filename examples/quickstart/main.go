// Quickstart: the deTector pipeline in one file — build a Fattree, select
// a probe matrix with PMC, simulate a failure, localize it with PLL.
package main

import (
	"fmt"
	"log"
	"math/rand"

	detector "github.com/detector-net/detector"
)

func main() {
	// 1. An 8-ary Fattree: 208 nodes, 384 links, 15,872 candidate paths.
	f := detector.MustFattree(8)
	fmt.Println("topology:", f)

	// 2. PMC selects a probe matrix with 3-coverage and 1-identifiability
	//    using all three of the paper's speedups.
	paths := detector.NewFattreePaths(f)
	res, err := detector.ConstructProbeMatrix(paths, f.NumLinks(), detector.PMCOptions{
		Alpha: 3, Beta: 1,
		Decompose: true, Lazy: true, Symmetry: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probe matrix: %d of %d candidate paths (%.2f%%), built in %v\n",
		len(res.Selected), paths.Len(),
		100*float64(len(res.Selected))/float64(paths.Len()), res.Stats.Elapsed)

	probes := detector.NewProbes(paths, res.Selected, f.NumLinks())
	v := detector.VerifyProbeMatrix(probes, f.SwitchLinks(), false)
	fmt.Printf("verified: every link covered by %d..%d paths, 1-identifiable=%v\n",
		v.MinCoverage, v.MaxCoverage, v.Identifiable1)

	// 3. Fail a random aggregation-core link with a flow-selective
	//    blackhole — the failure mode that breaks classic tomography.
	rng := rand.New(rand.NewSource(7))
	links := f.SwitchLinks()
	bad := links[rng.Intn(len(links))]
	lk := f.Link(bad)
	fmt.Printf("injecting blackhole on link %d (%s <-> %s), dropping 25%% of flows\n",
		bad, f.Node(lk.A).Name, f.Node(lk.B).Name)
	scen := detector.NewScenario(detector.Failure{
		Link:       bad,
		Model:      detector.DeterministicLoss{Buckets: 0x000000FF, Seed: 99},
		FromSwitch: -1,
	})

	// 4. Simulate one 30-second measurement window: every probe path gets
	//    300 probes (10/s) with rotating source ports.
	network := detector.NewNetwork(f.Topology, scen)
	obs := detector.SimulateWindow(network, probes, detector.ProbeWindowConfig{
		ProbesPerPath: 300,
	}, rng)

	// 5. PLL localizes from the same window — no second round of probes.
	result, err := detector.Localize(probes, obs, detector.DefaultPLLConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PLL: %d lossy paths analyzed in %v\n", result.LossyPaths, result.Elapsed)
	for _, verdict := range result.Bad {
		l := f.Link(verdict.Link)
		fmt.Printf("  suspected link %d (%s <-> %s), estimated loss rate %.1f%%\n",
			verdict.Link, f.Node(l.A).Name, f.Node(l.B).Name, 100*verdict.Rate)
	}
	c := detector.CompareLinks(result.BadLinks(), scen.BadLinks())
	fmt.Printf("ground truth check: %v\n", c)
}
