// Livecluster boots the complete deTector deployment — emulated UDP switch
// fabric, controller, diagnoser, watchdog, and pinger/responder agents on
// every server — then injects a gray failure and prints the alert that the
// real probing pipeline produces. This is the paper's testbed demo (§6.3)
// on loopback sockets.
package main

import (
	"fmt"
	"log"
	"time"

	detector "github.com/detector-net/detector"
	"github.com/detector-net/detector/internal/control"
)

func main() {
	cfg := control.DefaultConfig()
	cfg.RatePPS = 60    // per-pinger probe rate
	cfg.WindowMS = 1000 // 1s aggregation windows (paper: 30s)
	c, err := detector.StartCluster(detector.ClusterOptions{
		K:            4,
		Control:      cfg,
		Window:       time.Second,
		ProbeTimeout: 400 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()

	fmt.Printf("cluster up: Fattree(4), %d pingers, %d responders, %d probe routes\n",
		len(c.Pingers), len(c.Responders), c.Controller.ProbeMatrix().NumPaths())
	fmt.Printf("services: controller=%s diagnoser=%s watchdog=%s\n",
		c.ControllerURL, c.DiagnoserURL, c.WatchdogURL)

	// Let a clean window pass.
	time.Sleep(1500 * time.Millisecond)
	fmt.Println("baseline window clean; injecting gray failure (silent full loss, invisible to SNMP)...")

	bad := c.F.MustLink(c.F.AggID[1][1], c.F.CoreID[2])
	lk := c.F.Link(bad)
	fmt.Printf("failed link %d: %s <-> %s\n", bad, c.F.Node(lk.A).Name, c.F.Node(lk.B).Name)
	c.InjectFailure(bad, detector.FullLoss{Gray: true})

	alert := c.WaitForAlert([]detector.LinkID{bad}, 15*time.Second)
	if alert == nil {
		log.Fatal("no alert — this should not happen")
	}
	fmt.Printf("ALERT after real UDP probing: %d lossy paths, localized in %.2fms\n",
		alert.LossyPaths, alert.ElapsedMS)
	for _, v := range alert.Bad {
		fmt.Printf("  bad link %d (%s <-> %s), estimated loss %.0f%%\n", v.Link, v.A, v.B, 100*v.Rate)
	}

	fmt.Println("repairing the link...")
	c.Repair(bad)
	time.Sleep(2500 * time.Millisecond)
	quiet := true
	alerts := c.Diagnoser.Alerts()
	if len(alerts) > 0 {
		last := alerts[len(alerts)-1]
		for _, v := range last.Bad {
			if v.Link == bad {
				quiet = false
			}
		}
	}
	fmt.Printf("post-repair windows quiet: %v\n", quiet)
}
