// Probeplanner is a capacity-planning tool built on the public API: for a
// range of Fattree sizes and (α, β) targets, it reports probe-matrix size,
// per-pinger path load, probing bandwidth, and coverage evenness — the
// numbers an operator needs before rolling deTector out (paper §4.4, §6.1).
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	detector "github.com/detector-net/detector"
)

func main() {
	sizes := []int{8, 16, 24}
	configs := []struct{ alpha, beta int }{{1, 1}, {2, 1}, {1, 2}}
	const (
		pingersPerRack = 2
		redundancy     = 2
		ratePPS        = 10  // paper default
		probeBytes     = 850 // paper's mean probe size
	)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "fattree\t(a,b)\tpaths\tpaths/pinger\tprobe bw/pinger\tcoverage\tevenness gap")
	for _, k := range sizes {
		f := detector.MustFattree(k)
		paths := detector.NewFattreePaths(f)
		for _, cfg := range configs {
			res, err := detector.ConstructProbeMatrix(paths, f.NumLinks(), detector.PMCOptions{
				Alpha: cfg.alpha, Beta: cfg.beta,
				Decompose: true, Lazy: true, Symmetry: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			probes := detector.NewProbes(paths, res.Selected, f.NumLinks())

			// Each selected ToR-path is probed by `redundancy` pingers;
			// each rack hosts `pingersPerRack` pingers.
			nPingers := len(f.ToRs()) * pingersPerRack
			pathsPerPinger := float64(len(res.Selected)*redundancy) / float64(nPingers)
			// A pinger loops its paths at ratePPS packets per second.
			bwKbps := float64(ratePPS) * probeBytes * 8 * 2 / 1000 // probe + echo

			links := f.SwitchLinks()
			minCov := probes.MinCoverage(links)
			maxCov := 0
			for _, l := range links {
				if c := len(probes.PathsThrough(l)); c > maxCov {
					maxCov = c
				}
			}
			fmt.Fprintf(w, "Fattree(%d)\t(%d,%d)\t%d\t%.1f\t%.0f Kbps\t%d..%d\t%d\n",
				k, cfg.alpha, cfg.beta, len(res.Selected), pathsPerPinger,
				bwKbps, minCov, maxCov, maxCov-minCov)
		}
	}
	w.Flush()
	fmt.Println("\npaths/pinger stays double digits even as the fabric grows — the")
	fmt.Println("paper's point that pinglists remain tiny (§4.4: ~60 paths at k=64,")
	fmt.Println("versus 2000-5000 for Pingmesh).")
}
