package topo

import "fmt"

// BCube is the server-centric topology from Guo et al. (SIGCOMM'09).
// BCube(n, k) has k+1 levels of n-port mini-switches and n^(k+1) servers,
// each with k+1 ports. A server is labeled by k+1 base-n digits
// a_k ... a_1 a_0; the level-i switch with label w (the server label with
// digit i removed) connects the n servers that agree on every digit except
// digit i.
//
// All links are server-switch links. Following the paper (§4.4, footnote 2),
// servers are treated as switches when constructing the routing matrix, so
// every link is a probe-matrix column.
type BCube struct {
	*Topology
	N, K int // n-port switches, levels 0..K

	// SrvID[a] is the server with label a (base-n integer), a in [0, n^(k+1)).
	SrvID []NodeID
	// SwID[level][w] is the level-`level` switch with label w, w in [0, n^k).
	SwID [][]NodeID

	pow []int // pow[i] = n^i
}

// NewBCube builds a BCube(n, k) topology. n >= 2, k >= 0.
func NewBCube(n, k int) (*BCube, error) {
	if n < 2 {
		return nil, fmt.Errorf("topo: bcube n must be >= 2, got %d", n)
	}
	if k < 0 {
		return nil, fmt.Errorf("topo: bcube k must be >= 0, got %d", k)
	}
	b := &BCube{
		Topology: New(fmt.Sprintf("BCube(%d,%d)", n, k)),
		N:        n, K: k,
	}
	b.pow = make([]int, k+2)
	b.pow[0] = 1
	for i := 1; i <= k+1; i++ {
		b.pow[i] = b.pow[i-1] * n
	}
	nServers := b.pow[k+1]
	nSwPerLevel := b.pow[k]
	for a := 0; a < nServers; a++ {
		b.SrvID = append(b.SrvID, b.AddNode(Node{
			Kind: Server, Pod: -1, Level: -1, Index: a,
			Name: fmt.Sprintf("srv-%s", b.label(a)),
		}))
	}
	b.SwID = make([][]NodeID, k+1)
	for lvl := 0; lvl <= k; lvl++ {
		b.SwID[lvl] = make([]NodeID, nSwPerLevel)
		for w := 0; w < nSwPerLevel; w++ {
			b.SwID[lvl][w] = b.AddNode(Node{
				Kind: MiniSwitch, Pod: -1, Level: lvl, Index: w,
				Name: fmt.Sprintf("sw-%d-%d", lvl, w),
			})
		}
	}
	for a := 0; a < nServers; a++ {
		for lvl := 0; lvl <= k; lvl++ {
			b.AddLink(b.SrvID[a], b.SwID[lvl][b.switchLabel(a, lvl)], TierServerEdge)
		}
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// MustBCube builds a BCube and panics on invalid parameters.
func MustBCube(n, k int) *BCube {
	b, err := NewBCube(n, k)
	if err != nil {
		panic(err)
	}
	return b
}

// NumServers returns n^(k+1).
func (b *BCube) NumServers() int { return b.pow[b.K+1] }

// Digit returns digit i of server label a.
func (b *BCube) Digit(a, i int) int { return (a / b.pow[i]) % b.N }

// SetDigit returns label a with digit i replaced by v.
func (b *BCube) SetDigit(a, i, v int) int {
	return a + (v-b.Digit(a, i))*b.pow[i]
}

// switchLabel returns the label of the level-i switch adjacent to server a:
// the base-n number formed by removing digit i from a.
func (b *BCube) switchLabel(a, i int) int {
	hi := a / b.pow[i+1]
	lo := a % b.pow[i]
	return hi*b.pow[i] + lo
}

// SwitchFor returns the level-i switch adjacent to server a. Every BCube
// link joins a server to one of its k+1 adjacent switches, so (a, i)
// enumerates the link space; bulk path materialization tabulates
// MustLink(SrvID[a], SwitchFor(a, i)) once per pair instead of resolving
// the same links through the link map for every path.
func (b *BCube) SwitchFor(a, i int) NodeID {
	return b.SwID[i][b.switchLabel(a, i)]
}

// label renders a server label as digits, most-significant first.
func (b *BCube) label(a int) string {
	s := make([]byte, 0, b.K+1)
	for i := b.K; i >= 0; i-- {
		s = append(s, byte('0'+b.Digit(a, i)))
	}
	return string(s)
}

// HopLinks appends the two links of the single-digit hop from server x to
// server y, which must differ in exactly digit i: x → level-i switch → y.
func (b *BCube) HopLinks(x, y, i int, buf []LinkID) []LinkID {
	sw := b.SwID[i][b.switchLabel(x, i)]
	buf = append(buf, b.MustLink(b.SrvID[x], sw))
	return append(buf, b.MustLink(sw, b.SrvID[y]))
}

// DCRoutingLinks appends the links of the BCube DCRouting path from server
// src to server dst, correcting differing digits in the order given by perm
// (a permutation of digit indices 0..K). Digits already equal are skipped.
// It returns the link set and the intermediate server sequence (excluding
// src, including dst) for callers that need hops.
func (b *BCube) DCRoutingLinks(src, dst int, perm []int, buf []LinkID) []LinkID {
	cur := src
	for _, i := range perm {
		if b.Digit(cur, i) == b.Digit(dst, i) {
			continue
		}
		next := b.SetDigit(cur, i, b.Digit(dst, i))
		buf = b.HopLinks(cur, next, i, buf)
		cur = next
	}
	return buf
}

// shiftPerm returns the digit-correction order (i, i-1, ..., 0, K, ..., i+1)
// used by BuildPathSet path i (BCube paper, Fig. 5).
func (b *BCube) shiftPerm(i int) []int {
	perm := make([]int, 0, b.K+1)
	for d := i; d >= 0; d-- {
		perm = append(perm, d)
	}
	for d := b.K; d > i; d-- {
		perm = append(perm, d)
	}
	return perm
}

// BuildPathLinks appends the link set of parallel path i (i in [0, K]) from
// server src to server dst per the BCube BuildPathSet construction:
//
//   - if digit i differs between src and dst, the path is DCRouting with
//     correction order starting at digit i;
//   - otherwise the path detours through a neighbor of src at level i
//     (altering digit i to a value that differs from both), corrects the
//     remaining digits, and restores digit i last.
//
// The K+1 paths so constructed are the parallel paths BCube's BSR protocol
// load-balances across; deTector's candidate set contains all of them for
// every ordered server pair (Table 2: BCube(8,4) has 5,368,545,280 paths).
func (b *BCube) BuildPathLinks(src, dst, i int, buf []LinkID) []LinkID {
	if src == dst {
		panic("topo: bcube path endpoints must differ")
	}
	if b.Digit(src, i) != b.Digit(dst, i) {
		return b.DCRoutingLinks(src, dst, b.shiftPerm(i), buf)
	}
	// Detour: alter digit i to a value c != src[i] (== dst[i]).
	c := (b.Digit(src, i) + 1) % b.N
	mid := b.SetDigit(src, i, c)
	buf = b.HopLinks(src, mid, i, buf)
	// Correct all other digits in the order (i-1, ..., 0, K, ..., i+1),
	// then restore digit i.
	perm := make([]int, 0, b.K+1)
	for d := i - 1; d >= 0; d-- {
		perm = append(perm, d)
	}
	for d := b.K; d > i; d-- {
		perm = append(perm, d)
	}
	buf = b.DCRoutingLinks(mid, b.SetDigit(dst, i, c), perm, buf)
	last := b.SetDigit(dst, i, c)
	return b.HopLinks(last, dst, i, buf)
}
