// Package topo models data-center network topologies as undirected graphs of
// switches, servers and links, and provides builders for the three DCN
// families evaluated in the deTector paper: Fattree, VL2 and BCube.
//
// Links between switches are undirected: the deTector probe matrix treats
// link AB as a single column because a probe and its echo traverse both
// directions, and localizing AB implicates either direction or either
// endpoint switch (paper §4.1).
package topo

import (
	"fmt"
	"sort"
)

// NodeID identifies a node (switch or server) within one Topology.
type NodeID int32

// LinkID identifies an undirected link within one Topology.
type LinkID int32

// NodeKind classifies a node by its role in the topology.
type NodeKind uint8

const (
	// Server is an end host. Servers run pingers and responders.
	Server NodeKind = iota
	// Edge is a top-of-rack (ToR) switch.
	Edge
	// Agg is an aggregation-layer switch.
	Agg
	// Core is a core/intermediate-layer switch.
	Core
	// MiniSwitch is a BCube commodity switch (its level is Node.Level).
	MiniSwitch
)

// String returns the lower-case role name.
func (k NodeKind) String() string {
	switch k {
	case Server:
		return "server"
	case Edge:
		return "edge"
	case Agg:
		return "agg"
	case Core:
		return "core"
	case MiniSwitch:
		return "miniswitch"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Tier classifies a link by the layers it connects.
type Tier uint8

const (
	// TierServerEdge connects a server to its ToR (or, in BCube, to a
	// mini-switch).
	TierServerEdge Tier = iota
	// TierEdgeAgg connects a ToR to an aggregation switch.
	TierEdgeAgg
	// TierAggCore connects an aggregation switch to a core/intermediate
	// switch.
	TierAggCore
)

// String returns a short tier name.
func (t Tier) String() string {
	switch t {
	case TierServerEdge:
		return "server-edge"
	case TierEdgeAgg:
		return "edge-agg"
	case TierAggCore:
		return "agg-core"
	default:
		return fmt.Sprintf("tier(%d)", uint8(t))
	}
}

// Node is a switch or server.
type Node struct {
	ID    NodeID
	Kind  NodeKind
	Pod   int // pod (Fattree), agg-pair group (VL2 ToRs), -1 if n/a
	Level int // layer index; BCube switch level
	Index int // index within (kind, pod/level)
	Name  string
}

// Link is an undirected link. A and B are ordered so that A < B.
type Link struct {
	ID   LinkID
	A, B NodeID
	Tier Tier
}

// Other returns the endpoint of l that is not n.
func (l Link) Other(n NodeID) NodeID {
	if l.A == n {
		return l.B
	}
	return l.A
}

// Adjacency records one neighbor of a node and the link reaching it.
type Adjacency struct {
	Peer NodeID
	Link LinkID
}

// Topology is an immutable-after-build undirected multigraphless graph.
type Topology struct {
	Name  string
	Nodes []Node
	Links []Link

	adj       [][]Adjacency
	linkIndex map[uint64]LinkID
}

// New returns an empty topology with the given name.
func New(name string) *Topology {
	return &Topology{Name: name, linkIndex: make(map[uint64]LinkID)}
}

// AddNode appends a node and returns its ID. Name is derived from kind and
// indices when empty.
func (t *Topology) AddNode(n Node) NodeID {
	id := NodeID(len(t.Nodes))
	n.ID = id
	if n.Name == "" {
		n.Name = fmt.Sprintf("%s-%d", n.Kind, id)
	}
	t.Nodes = append(t.Nodes, n)
	t.adj = append(t.adj, nil)
	return id
}

func pairKey(a, b NodeID) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// AddLink connects a and b with an undirected link and returns its ID.
// Adding a duplicate link or a self-loop panics: topology builders are
// deterministic constructors and a duplicate indicates a builder bug.
func (t *Topology) AddLink(a, b NodeID, tier Tier) LinkID {
	if a == b {
		panic(fmt.Sprintf("topo: self-loop on node %d", a))
	}
	key := pairKey(a, b)
	if _, dup := t.linkIndex[key]; dup {
		panic(fmt.Sprintf("topo: duplicate link %d-%d", a, b))
	}
	if a > b {
		a, b = b, a
	}
	id := LinkID(len(t.Links))
	t.Links = append(t.Links, Link{ID: id, A: a, B: b, Tier: tier})
	t.linkIndex[key] = id
	t.adj[a] = append(t.adj[a], Adjacency{Peer: b, Link: id})
	t.adj[b] = append(t.adj[b], Adjacency{Peer: a, Link: id})
	return id
}

// LinkBetween returns the link connecting a and b, if any.
func (t *Topology) LinkBetween(a, b NodeID) (LinkID, bool) {
	id, ok := t.linkIndex[pairKey(a, b)]
	return id, ok
}

// MustLink returns the link connecting a and b and panics if absent. It is
// intended for topology-family path constructors where absence is a bug.
func (t *Topology) MustLink(a, b NodeID) LinkID {
	id, ok := t.LinkBetween(a, b)
	if !ok {
		panic(fmt.Sprintf("topo: no link between %d and %d", a, b))
	}
	return id
}

// Neighbors returns the adjacency list of n. The returned slice is shared;
// callers must not modify it.
func (t *Topology) Neighbors(n NodeID) []Adjacency {
	return t.adj[n]
}

// Degree returns the number of links incident to n.
func (t *Topology) Degree(n NodeID) int { return len(t.adj[n]) }

// Node returns the node with the given id.
func (t *Topology) Node(id NodeID) Node { return t.Nodes[id] }

// Link returns the link with the given id.
func (t *Topology) Link(id LinkID) Link { return t.Links[id] }

// NumNodes returns the node count.
func (t *Topology) NumNodes() int { return len(t.Nodes) }

// NumLinks returns the link count (all tiers, including server links).
func (t *Topology) NumLinks() int { return len(t.Links) }

// NodesOfKind returns the IDs of all nodes with the given kind, in ID order.
func (t *Topology) NodesOfKind(k NodeKind) []NodeID {
	var out []NodeID
	for _, n := range t.Nodes {
		if n.Kind == k {
			out = append(out, n.ID)
		}
	}
	return out
}

// Servers returns all server IDs in ID order.
func (t *Topology) Servers() []NodeID { return t.NodesOfKind(Server) }

// ToRs returns the IDs of switches that have at least one attached server
// (the rack switches probes originate from), in ID order.
func (t *Topology) ToRs() []NodeID {
	var out []NodeID
	for _, n := range t.Nodes {
		if n.Kind == Server {
			continue
		}
		for _, a := range t.adj[n.ID] {
			if t.Nodes[a.Peer].Kind == Server {
				out = append(out, n.ID)
				break
			}
		}
	}
	return out
}

// ServersUnder returns the servers directly attached to switch sw.
func (t *Topology) ServersUnder(sw NodeID) []NodeID {
	var out []NodeID
	for _, a := range t.adj[sw] {
		if t.Nodes[a.Peer].Kind == Server {
			out = append(out, a.Peer)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SwitchLinks returns the IDs of links that connect two switches (the
// candidate fault-localization columns of the probe matrix).
func (t *Topology) SwitchLinks() []LinkID {
	var out []LinkID
	for _, l := range t.Links {
		if l.Tier != TierServerEdge {
			out = append(out, l.ID)
		}
	}
	return out
}

// LinksOf returns the IDs of all links incident to node n.
func (t *Topology) LinksOf(n NodeID) []LinkID {
	adj := t.adj[n]
	out := make([]LinkID, len(adj))
	for i, a := range adj {
		out[i] = a.Link
	}
	return out
}

// Validate checks structural invariants: canonical link endpoint order,
// adjacency symmetry and graph connectivity. Builders call it; tests may too.
func (t *Topology) Validate() error {
	for _, l := range t.Links {
		if l.A >= l.B {
			return fmt.Errorf("topo %s: link %d endpoints not canonical (%d,%d)", t.Name, l.ID, l.A, l.B)
		}
		if int(l.A) >= len(t.Nodes) || int(l.B) >= len(t.Nodes) {
			return fmt.Errorf("topo %s: link %d references missing node", t.Name, l.ID)
		}
	}
	if len(t.Nodes) == 0 {
		return fmt.Errorf("topo %s: empty", t.Name)
	}
	// Connectivity via BFS.
	seen := make([]bool, len(t.Nodes))
	queue := []NodeID{0}
	seen[0] = true
	visited := 1
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, a := range t.adj[n] {
			if !seen[a.Peer] {
				seen[a.Peer] = true
				visited++
				queue = append(queue, a.Peer)
			}
		}
	}
	if visited != len(t.Nodes) {
		return fmt.Errorf("topo %s: disconnected (%d of %d nodes reachable)", t.Name, visited, len(t.Nodes))
	}
	return nil
}

// Stats summarizes a topology for reporting (Table 2 columns).
type Stats struct {
	Nodes       int
	Links       int
	SwitchLinks int
	Servers     int
	Switches    int
}

// Stats computes summary counts.
func (t *Topology) Stats() Stats {
	s := Stats{Nodes: len(t.Nodes), Links: len(t.Links)}
	for _, n := range t.Nodes {
		if n.Kind == Server {
			s.Servers++
		} else {
			s.Switches++
		}
	}
	for _, l := range t.Links {
		if l.Tier != TierServerEdge {
			s.SwitchLinks++
		}
	}
	return s
}

// String implements fmt.Stringer.
func (t *Topology) String() string {
	s := t.Stats()
	return fmt.Sprintf("%s{nodes: %d, links: %d, servers: %d, switches: %d}",
		t.Name, s.Nodes, s.Links, s.Servers, s.Switches)
}
