package topo

import "fmt"

// VL2 is the Clos topology from Greenberg et al. (SIGCOMM'09),
// parameterized as in the deTector paper: VL2(DA, DI, T) where DA is the
// aggregation-switch degree, DI the intermediate-switch degree, and T the
// number of servers per ToR.
//
//   - DA/2 intermediate switches, each with DI ports, one to every
//     aggregation switch;
//   - DI aggregation switches, each with DA ports: DA/2 up to the
//     intermediates and DA/2 down to ToRs;
//   - DI*DA/4 ToRs, each with 2 uplinks to one *pair* of aggregation
//     switches (aggs 2g and 2g+1 serve ToR group g);
//   - T servers per ToR.
//
// Node and link counts match deTector Table 2: VL2(20,12,20) has 1,282
// nodes and 1,440 links.
type VL2 struct {
	*Topology
	DA, DI, T int

	// IntID[i] is intermediate switch i, i in [0, DA/2).
	IntID []NodeID
	// AggID[a] is aggregation switch a, a in [0, DI).
	AggID []NodeID
	// TorID[t] is ToR t, t in [0, DI*DA/4).
	TorID []NodeID
	// ServerIDs[t] are the servers under ToR t.
	ServerIDs [][]NodeID
}

// NewVL2 builds a VL2(da, di, t) topology. da and di must be even and >= 2,
// t must be >= 1.
func NewVL2(da, di, t int) (*VL2, error) {
	if da < 2 || da%2 != 0 {
		return nil, fmt.Errorf("topo: vl2 DA must be even and >= 2, got %d", da)
	}
	if di < 2 || di%2 != 0 {
		return nil, fmt.Errorf("topo: vl2 DI must be even and >= 2, got %d", di)
	}
	if t < 1 {
		return nil, fmt.Errorf("topo: vl2 T must be >= 1, got %d", t)
	}
	v := &VL2{
		Topology: New(fmt.Sprintf("VL2(%d,%d,%d)", da, di, t)),
		DA:       da, DI: di, T: t,
	}
	nInt, nAgg, nTor := da/2, di, di*da/4
	for i := 0; i < nInt; i++ {
		v.IntID = append(v.IntID, v.AddNode(Node{
			Kind: Core, Pod: -1, Level: 2, Index: i,
			Name: fmt.Sprintf("int-%d", i),
		}))
	}
	for a := 0; a < nAgg; a++ {
		v.AggID = append(v.AggID, v.AddNode(Node{
			Kind: Agg, Pod: a / 2, Level: 1, Index: a,
			Name: fmt.Sprintf("agg-%d", a),
		}))
	}
	v.ServerIDs = make([][]NodeID, nTor)
	for tr := 0; tr < nTor; tr++ {
		group := tr / (da / 2) // agg pair serving this ToR
		v.TorID = append(v.TorID, v.AddNode(Node{
			Kind: Edge, Pod: group, Level: 0, Index: tr,
			Name: fmt.Sprintf("tor-%d", tr),
		}))
		for s := 0; s < t; s++ {
			v.ServerIDs[tr] = append(v.ServerIDs[tr], v.AddNode(Node{
				Kind: Server, Pod: group, Level: -1, Index: tr*t + s,
				Name: fmt.Sprintf("srv-%d-%d", tr, s),
			}))
		}
	}
	// Complete bipartite agg-intermediate mesh.
	for a := 0; a < nAgg; a++ {
		for i := 0; i < nInt; i++ {
			v.AddLink(v.AggID[a], v.IntID[i], TierAggCore)
		}
	}
	// ToR uplinks to its agg pair; server downlinks.
	for tr := 0; tr < nTor; tr++ {
		g := tr / (da / 2)
		v.AddLink(v.TorID[tr], v.AggID[2*g], TierEdgeAgg)
		v.AddLink(v.TorID[tr], v.AggID[2*g+1], TierEdgeAgg)
		for _, s := range v.ServerIDs[tr] {
			v.AddLink(s, v.TorID[tr], TierServerEdge)
		}
	}
	if err := v.Validate(); err != nil {
		return nil, err
	}
	return v, nil
}

// MustVL2 builds a VL2 and panics on invalid parameters.
func MustVL2(da, di, t int) *VL2 {
	v, err := NewVL2(da, di, t)
	if err != nil {
		panic(err)
	}
	return v
}

// NumToRs returns DI*DA/4.
func (v *VL2) NumToRs() int { return v.DI * v.DA / 4 }

// NumInts returns DA/2.
func (v *VL2) NumInts() int { return v.DA / 2 }

// AggPair returns the two aggregation switches serving ToR index tr.
func (v *VL2) AggPair(tr int) (NodeID, NodeID) {
	g := tr / (v.DA / 2)
	return v.AggID[2*g], v.AggID[2*g+1]
}

// PathLinks appends the links of the path ToR(src) → agg(up) → int(mid) →
// agg(down) → ToR(dst), where up and down select within each ToR's agg pair
// (0 or 1) and mid is an intermediate switch index. Duplicate links (same-
// group pairs routing up and down through the same aggregation switch) are
// deduplicated so the result is a set.
func (v *VL2) PathLinks(src, dst int, up, mid, down int, buf []LinkID) []LinkID {
	sg, dg := src/(v.DA/2), dst/(v.DA/2)
	aggUp := v.AggID[2*sg+up]
	aggDown := v.AggID[2*dg+down]
	in := v.IntID[mid]
	buf = append(buf, v.MustLink(v.TorID[src], aggUp))
	buf = append(buf, v.MustLink(aggUp, in))
	if aggDown != aggUp {
		// Same-group pairs with up == down re-descend through the same
		// aggregation switch; the agg-int link then appears once as a set.
		buf = append(buf, v.MustLink(in, aggDown))
	}
	return append(buf, v.MustLink(aggDown, v.TorID[dst]))
}
