package topo

import "fmt"

// Fattree is a k-ary Fattree (Al-Fares et al., SIGCOMM'08): k pods, each with
// k/2 edge (ToR) and k/2 aggregation switches, (k/2)^2 core switches, and
// k/2 servers under each edge switch.
//
// Wiring follows the canonical construction:
//   - edge e of pod p connects to every agg a of pod p;
//   - agg a of pod p connects to cores a*(k/2) .. a*(k/2)+k/2-1
//     (core group a: the cores reachable via aggregation position a).
//
// Core switch c (global index) therefore belongs to group c/(k/2) and is
// connected to aggregation position c/(k/2) in every pod. Paths through a
// group-g core touch only edge-agg links of agg position g, which is what
// makes the routing matrix decompose into k/2 independent subproblems
// (paper §4.3, Observation 1).
type Fattree struct {
	*Topology
	K int

	// CoreID[c] is the node ID of global core c, c in [0, (k/2)^2).
	CoreID []NodeID
	// AggID[p][a] is the node ID of aggregation switch a of pod p.
	AggID [][]NodeID
	// EdgeID[p][e] is the node ID of edge switch e of pod p.
	EdgeID [][]NodeID
	// ServerID[p][e][s] is the node ID of server s under edge e of pod p.
	ServerID [][][]NodeID

	// torList caches ToR node IDs in (pod, edge) order.
	torList []NodeID
}

// NewFattree builds a k-ary Fattree. k must be even and >= 4.
func NewFattree(k int) (*Fattree, error) {
	if k < 4 || k%2 != 0 {
		return nil, fmt.Errorf("topo: fattree k must be even and >= 4, got %d", k)
	}
	h := k / 2
	f := &Fattree{
		Topology: New(fmt.Sprintf("Fattree(%d)", k)),
		K:        k,
		CoreID:   make([]NodeID, h*h),
		AggID:    make([][]NodeID, k),
		EdgeID:   make([][]NodeID, k),
		ServerID: make([][][]NodeID, k),
	}
	for c := 0; c < h*h; c++ {
		f.CoreID[c] = f.AddNode(Node{
			Kind: Core, Pod: -1, Level: 2, Index: c,
			Name: fmt.Sprintf("core-%d", c),
		})
	}
	for p := 0; p < k; p++ {
		f.AggID[p] = make([]NodeID, h)
		f.EdgeID[p] = make([]NodeID, h)
		f.ServerID[p] = make([][]NodeID, h)
		for a := 0; a < h; a++ {
			f.AggID[p][a] = f.AddNode(Node{
				Kind: Agg, Pod: p, Level: 1, Index: a,
				Name: fmt.Sprintf("agg-%d-%d", p, a),
			})
		}
		for e := 0; e < h; e++ {
			f.EdgeID[p][e] = f.AddNode(Node{
				Kind: Edge, Pod: p, Level: 0, Index: e,
				Name: fmt.Sprintf("edge-%d-%d", p, e),
			})
			f.ServerID[p][e] = make([]NodeID, h)
			for s := 0; s < h; s++ {
				f.ServerID[p][e][s] = f.AddNode(Node{
					Kind: Server, Pod: p, Level: -1, Index: e*h + s,
					Name: fmt.Sprintf("srv-%d-%d-%d", p, e, s),
				})
			}
		}
	}
	// Edge-agg and server-edge links.
	for p := 0; p < k; p++ {
		for e := 0; e < h; e++ {
			for a := 0; a < h; a++ {
				f.AddLink(f.EdgeID[p][e], f.AggID[p][a], TierEdgeAgg)
			}
			for s := 0; s < h; s++ {
				f.AddLink(f.ServerID[p][e][s], f.EdgeID[p][e], TierServerEdge)
			}
		}
	}
	// Agg-core links: agg position a serves core group a.
	for p := 0; p < k; p++ {
		for a := 0; a < h; a++ {
			for i := 0; i < h; i++ {
				f.AddLink(f.AggID[p][a], f.CoreID[a*h+i], TierAggCore)
			}
		}
	}
	for p := 0; p < k; p++ {
		for e := 0; e < h; e++ {
			f.torList = append(f.torList, f.EdgeID[p][e])
		}
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// MustFattree builds a k-ary Fattree and panics on invalid k. Intended for
// tests and examples where k is a constant.
func MustFattree(k int) *Fattree {
	f, err := NewFattree(k)
	if err != nil {
		panic(err)
	}
	return f
}

// Half returns k/2, the radix of each switch layer grouping.
func (f *Fattree) Half() int { return f.K / 2 }

// NumCores returns (k/2)^2.
func (f *Fattree) NumCores() int { return f.Half() * f.Half() }

// NumToRs returns k^2/2.
func (f *Fattree) NumToRs() int { return f.K * f.Half() }

// ToRList returns ToR node IDs in (pod, edge) order. The slice is shared.
func (f *Fattree) ToRList() []NodeID { return f.torList }

// CoreGroup returns the agg position (and decomposition component) of global
// core index c.
func (f *Fattree) CoreGroup(c int) int { return c / f.Half() }

// ToRAt returns the ToR node at (pod, edge).
func (f *Fattree) ToRAt(pod, edge int) NodeID { return f.EdgeID[pod][edge] }

// ToRIndex maps a ToR node ID back to its flat (pod*k/2 + edge) index.
func (f *Fattree) ToRIndex(n NodeID) int {
	node := f.Nodes[n]
	if node.Kind != Edge {
		panic(fmt.Sprintf("topo: node %d is %s, not an edge switch", n, node.Kind))
	}
	return node.Pod*f.Half() + node.Index
}

// PathLinks appends to buf the 4 undirected links of the via-core path
// between ToRs src and dst through global core c: src-edge→agg, agg→core,
// core→agg, agg→dst-edge. When src and dst are in the same pod the first and
// last pod-local links coincide pairwise only if src == dst, which callers
// exclude; the up and down agg links are distinct because the edges differ.
func (f *Fattree) PathLinks(srcToR, dstToR NodeID, c int, buf []LinkID) []LinkID {
	g := f.CoreGroup(c)
	sp, dp := f.Nodes[srcToR].Pod, f.Nodes[dstToR].Pod
	aggUp := f.AggID[sp][g]
	aggDown := f.AggID[dp][g]
	core := f.CoreID[c]
	buf = append(buf, f.MustLink(srcToR, aggUp))
	buf = append(buf, f.MustLink(aggUp, core))
	if dp != sp {
		buf = append(buf, f.MustLink(core, aggDown))
		buf = append(buf, f.MustLink(aggDown, dstToR))
	} else {
		// Same pod: the path re-descends through the same agg switch, so
		// the agg-core link is traversed twice; as a link set it appears
		// once, and only the downward edge-agg link is new.
		buf = append(buf, f.MustLink(aggDown, dstToR))
	}
	return buf
}

// PathHops appends the node sequence of the via-core path (excluding
// servers): srcToR, aggUp, core, aggDown, dstToR. For same-pod pairs aggUp
// and aggDown are the same switch and the core is visited between them.
func (f *Fattree) PathHops(srcToR, dstToR NodeID, c int, buf []NodeID) []NodeID {
	g := f.CoreGroup(c)
	sp, dp := f.Nodes[srcToR].Pod, f.Nodes[dstToR].Pod
	buf = append(buf, srcToR, f.AggID[sp][g], f.CoreID[c])
	if dp != sp {
		buf = append(buf, f.AggID[dp][g])
	} else {
		buf = append(buf, f.AggID[sp][g])
	}
	return append(buf, dstToR)
}
