package topo

import (
	"testing"
)

func TestAddLinkCanonicalOrder(t *testing.T) {
	tp := New("t")
	a := tp.AddNode(Node{Kind: Edge})
	b := tp.AddNode(Node{Kind: Agg})
	id := tp.AddLink(b, a, TierEdgeAgg) // reversed on purpose
	l := tp.Link(id)
	if l.A != a || l.B != b {
		t.Fatalf("link endpoints not canonical: got (%d,%d), want (%d,%d)", l.A, l.B, a, b)
	}
	if got, ok := tp.LinkBetween(a, b); !ok || got != id {
		t.Fatalf("LinkBetween(a,b) = %d,%v; want %d,true", got, ok, id)
	}
	if got, ok := tp.LinkBetween(b, a); !ok || got != id {
		t.Fatalf("LinkBetween(b,a) = %d,%v; want %d,true", got, ok, id)
	}
}

func TestAddLinkDuplicatePanics(t *testing.T) {
	tp := New("t")
	a := tp.AddNode(Node{Kind: Edge})
	b := tp.AddNode(Node{Kind: Agg})
	tp.AddLink(a, b, TierEdgeAgg)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddLink did not panic")
		}
	}()
	tp.AddLink(b, a, TierEdgeAgg)
}

func TestAddLinkSelfLoopPanics(t *testing.T) {
	tp := New("t")
	a := tp.AddNode(Node{Kind: Edge})
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop AddLink did not panic")
		}
	}()
	tp.AddLink(a, a, TierEdgeAgg)
}

func TestLinkOther(t *testing.T) {
	l := Link{A: 3, B: 7}
	if l.Other(3) != 7 || l.Other(7) != 3 {
		t.Fatalf("Other: got %d and %d", l.Other(3), l.Other(7))
	}
}

func TestValidateDisconnected(t *testing.T) {
	tp := New("t")
	tp.AddNode(Node{Kind: Edge})
	tp.AddNode(Node{Kind: Edge})
	if err := tp.Validate(); err == nil {
		t.Fatal("Validate accepted a disconnected graph")
	}
}

// TestFattreeCounts pins the Fattree sizes reported in paper Table 2:
// Fattree(12) has 612 nodes and 1,296 links.
func TestFattreeCounts(t *testing.T) {
	cases := []struct {
		k                   int
		nodes, links, cores int
		tors, servers       int
	}{
		{4, 36, 48, 4, 8, 16},
		{8, 8*8 + 16 + 128, 256 + 128, 16, 32, 128},
		{12, 612, 1296, 36, 72, 432},
		{24, 4176, 10368, 144, 288, 3456},
	}
	for _, c := range cases {
		f := MustFattree(c.k)
		s := f.Stats()
		if s.Nodes != c.nodes {
			t.Errorf("Fattree(%d): %d nodes, want %d", c.k, s.Nodes, c.nodes)
		}
		if s.Links != c.links {
			t.Errorf("Fattree(%d): %d links, want %d", c.k, s.Links, c.links)
		}
		if got := f.NumCores(); got != c.cores {
			t.Errorf("Fattree(%d): %d cores, want %d", c.k, got, c.cores)
		}
		if got := f.NumToRs(); got != c.tors {
			t.Errorf("Fattree(%d): %d ToRs, want %d", c.k, got, c.tors)
		}
		if s.Servers != c.servers {
			t.Errorf("Fattree(%d): %d servers, want %d", c.k, s.Servers, c.servers)
		}
		if got := len(f.ToRList()); got != c.tors {
			t.Errorf("Fattree(%d): ToRList has %d entries, want %d", c.k, got, c.tors)
		}
		if got := len(f.SwitchLinks()); got != c.k*c.k*c.k/2 {
			t.Errorf("Fattree(%d): %d switch links, want %d", c.k, got, c.k*c.k*c.k/2)
		}
	}
}

func TestFattreeInvalidK(t *testing.T) {
	for _, k := range []int{0, 2, 3, 5, 7} {
		if _, err := NewFattree(k); err == nil {
			t.Errorf("NewFattree(%d) succeeded, want error", k)
		}
	}
}

func TestFattreePathLinksInterPod(t *testing.T) {
	f := MustFattree(4)
	src, dst := f.ToRAt(0, 0), f.ToRAt(1, 1)
	for c := 0; c < f.NumCores(); c++ {
		links := f.PathLinks(src, dst, c, nil)
		if len(links) != 4 {
			t.Fatalf("inter-pod path via core %d: %d links, want 4", c, len(links))
		}
		seen := map[LinkID]bool{}
		for _, l := range links {
			if seen[l] {
				t.Fatalf("inter-pod path via core %d repeats link %d", c, l)
			}
			seen[l] = true
		}
	}
}

func TestFattreePathLinksIntraPod(t *testing.T) {
	f := MustFattree(4)
	src, dst := f.ToRAt(2, 0), f.ToRAt(2, 1)
	for c := 0; c < f.NumCores(); c++ {
		links := f.PathLinks(src, dst, c, nil)
		if len(links) != 3 {
			t.Fatalf("intra-pod path via core %d: %d links, want 3 (agg-core link appears once)", c, len(links))
		}
	}
}

func TestFattreePathHopsMatchLinks(t *testing.T) {
	f := MustFattree(8)
	src, dst := f.ToRAt(0, 1), f.ToRAt(3, 2)
	for c := 0; c < f.NumCores(); c++ {
		hops := f.PathHops(src, dst, c, nil)
		if hops[0] != src || hops[len(hops)-1] != dst {
			t.Fatalf("hops do not start/end at the ToRs: %v", hops)
		}
		// Consecutive hops must be adjacent.
		for i := 0; i+1 < len(hops); i++ {
			if _, ok := f.LinkBetween(hops[i], hops[i+1]); !ok {
				t.Fatalf("hops %d and %d (%d->%d) not adjacent", i, i+1, hops[i], hops[i+1])
			}
		}
	}
}

func TestFattreeToRIndexRoundTrip(t *testing.T) {
	f := MustFattree(8)
	for i, tor := range f.ToRList() {
		if got := f.ToRIndex(tor); got != i {
			t.Fatalf("ToRIndex(%d) = %d, want %d", tor, got, i)
		}
	}
}

// TestVL2Counts pins the VL2 sizes from paper Table 2: VL2(20,12,20) has
// 1,282 nodes and 1,440 links; VL2(40,24,40) has 9,884 nodes and 10,560
// links.
func TestVL2Counts(t *testing.T) {
	cases := []struct {
		da, di, tt   int
		nodes, links int
		tors         int
	}{
		{20, 12, 20, 1282, 1440, 60},
		{40, 24, 40, 9884, 10560, 240},
	}
	for _, c := range cases {
		v := MustVL2(c.da, c.di, c.tt)
		s := v.Stats()
		if s.Nodes != c.nodes {
			t.Errorf("VL2(%d,%d,%d): %d nodes, want %d", c.da, c.di, c.tt, s.Nodes, c.nodes)
		}
		if s.Links != c.links {
			t.Errorf("VL2(%d,%d,%d): %d links, want %d", c.da, c.di, c.tt, s.Links, c.links)
		}
		if got := v.NumToRs(); got != c.tors {
			t.Errorf("VL2(%d,%d,%d): %d ToRs, want %d", c.da, c.di, c.tt, got, c.tors)
		}
	}
}

func TestVL2InvalidParams(t *testing.T) {
	if _, err := NewVL2(3, 12, 20); err == nil {
		t.Error("odd DA accepted")
	}
	if _, err := NewVL2(20, 5, 20); err == nil {
		t.Error("odd DI accepted")
	}
	if _, err := NewVL2(20, 12, 0); err == nil {
		t.Error("zero T accepted")
	}
}

func TestVL2AggPair(t *testing.T) {
	v := MustVL2(20, 12, 2)
	// ToRs 0..9 are group 0 (aggs 0,1); ToRs 10..19 group 1 (aggs 2,3).
	a, b := v.AggPair(0)
	if a != v.AggID[0] || b != v.AggID[1] {
		t.Fatalf("AggPair(0) = (%d,%d), want (%d,%d)", a, b, v.AggID[0], v.AggID[1])
	}
	a, b = v.AggPair(10)
	if a != v.AggID[2] || b != v.AggID[3] {
		t.Fatalf("AggPair(10) = (%d,%d), want (%d,%d)", a, b, v.AggID[2], v.AggID[3])
	}
}

func TestVL2PathLinks(t *testing.T) {
	v := MustVL2(20, 12, 2)
	// Cross-group pair: 4 distinct links.
	links := v.PathLinks(0, 10, 0, 3, 1, nil)
	if len(links) != 4 {
		t.Fatalf("cross-group path: %d links, want 4", len(links))
	}
	// Same-group pair with up == down: agg-int link deduplicated, 3 links.
	links = v.PathLinks(0, 1, 1, 3, 1, nil)
	if len(links) != 3 {
		t.Fatalf("same-group same-agg path: %d links, want 3", len(links))
	}
	// Same-group pair with up != down: still 4 links.
	links = v.PathLinks(0, 1, 0, 3, 1, nil)
	if len(links) != 4 {
		t.Fatalf("same-group cross-agg path: %d links, want 4", len(links))
	}
}

// TestBCubeCounts pins the BCube sizes from paper Table 2: BCube(4,2) has
// 112 nodes and 192 links; BCube(8,2) has 704 nodes and 1,536 links.
func TestBCubeCounts(t *testing.T) {
	cases := []struct {
		n, k         int
		nodes, links int
		servers      int
	}{
		{4, 2, 112, 192, 64},
		{8, 2, 704, 1536, 512},
	}
	for _, c := range cases {
		b := MustBCube(c.n, c.k)
		s := b.Stats()
		if s.Nodes != c.nodes {
			t.Errorf("BCube(%d,%d): %d nodes, want %d", c.n, c.k, s.Nodes, c.nodes)
		}
		if s.Links != c.links {
			t.Errorf("BCube(%d,%d): %d links, want %d", c.n, c.k, s.Links, c.links)
		}
		if s.Servers != c.servers {
			t.Errorf("BCube(%d,%d): %d servers, want %d", c.n, c.k, s.Servers, c.servers)
		}
	}
}

func TestBCubeDigits(t *testing.T) {
	b := MustBCube(4, 2)
	a := 0*16 + 3*4 + 2 // digits (0,3,2)
	if b.Digit(a, 0) != 2 || b.Digit(a, 1) != 3 || b.Digit(a, 2) != 0 {
		t.Fatalf("Digit decomposition wrong for %d", a)
	}
	if got := b.SetDigit(a, 2, 1); b.Digit(got, 2) != 1 || b.Digit(got, 0) != 2 {
		t.Fatalf("SetDigit wrong: %d", got)
	}
}

// TestBCubeParallelPaths verifies the BuildPathSet invariant: the k+1 paths
// between any server pair are pairwise link-disjoint (BCube SIGCOMM'09,
// Theorem 3), which is what makes them independent probe-matrix rows.
func TestBCubeParallelPaths(t *testing.T) {
	b := MustBCube(4, 2)
	n := b.NumServers()
	pairs := [][2]int{{0, 1}, {0, 5}, {0, 21}, {0, n - 1}, {7, 42}, {63, 0}, {17, 17 ^ 0}}
	for _, pr := range pairs {
		src, dst := pr[0], pr[1]
		if src == dst {
			continue
		}
		used := map[LinkID]int{}
		for i := 0; i <= b.K; i++ {
			links := b.BuildPathLinks(src, dst, i, nil)
			if len(links) == 0 {
				t.Fatalf("pair (%d,%d) path %d empty", src, dst, i)
			}
			seen := map[LinkID]bool{}
			for _, l := range links {
				if seen[l] {
					t.Fatalf("pair (%d,%d) path %d repeats link %d", src, dst, i, l)
				}
				seen[l] = true
				used[l]++
			}
		}
		for l, c := range used {
			if c > 1 {
				t.Errorf("pair (%d,%d): link %d shared by %d parallel paths", src, dst, l, c)
			}
		}
	}
}

func TestToRsAndServersUnder(t *testing.T) {
	f := MustFattree(4)
	tors := f.ToRs()
	if len(tors) != 8 {
		t.Fatalf("ToRs: %d, want 8", len(tors))
	}
	for _, tor := range tors {
		srv := f.ServersUnder(tor)
		if len(srv) != 2 {
			t.Fatalf("ServersUnder(%d): %d, want 2", tor, len(srv))
		}
	}
}

func TestStatsString(t *testing.T) {
	f := MustFattree(4)
	if s := f.String(); s == "" {
		t.Fatal("empty String()")
	}
}
