package shardrpc

// ReportCaps is the diagnoser's report-plane capability advertisement,
// served on GET /reportcaps. Pingers fetch it once before their first
// report and pick the richest path the server speaks: the persistent
// stream endpoint with summary frames when available, per-report binary
// frames otherwise, JSON as the floor. A 404 (pre-caps diagnoser) means
// JSON POST — the same downgrade ladder as the shard codec negotiation.
type ReportCaps struct {
	// Stream advertises POST /reportstream, the persistent frame stream.
	Stream bool `json:"stream"`
	// Summary advertises kind-6 summary-frame ingest.
	Summary bool `json:"summary"`
	// Codecs lists accepted report encodings ("json", "binary").
	Codecs []string `json:"codecs"`
	// MaxBodyBytes is the per-body (and per-frame) payload budget.
	MaxBodyBytes int64 `json:"max_body_bytes"`
}
