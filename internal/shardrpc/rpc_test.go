package shardrpc

import (
	"hash/fnv"
	"math"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/shard"
	"github.com/detector-net/detector/internal/topo"
)

// hashSelection digests a selection exactly as the pmc and shard pin tests
// do, so the constants below are directly comparable across packages.
func hashSelection(sel []int) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, s := range sel {
		for i := 0; i < 8; i++ {
			b[i] = byte(s >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}

// hashVerdicts digests a localization outcome: (link, explained, rate bits)
// per verdict plus the window counters.
func hashVerdicts(res *pll.Result) uint64 {
	h := fnv.New64a()
	w64 := func(v uint64) {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	for _, v := range res.Bad {
		w64(uint64(v.Link))
		w64(uint64(v.Explained))
		w64(math.Float64bits(v.Rate))
	}
	w64(uint64(res.LossyPaths))
	w64(uint64(res.UnexplainedPaths))
	return h.Sum64()
}

// syntheticWindow fabricates one deterministic measurement window over the
// probe matrix, mirroring the shard package's fixture: every path through
// the first nBad covered links loses 20% of its probes, plus sparse 0.5%
// background noise.
func syntheticWindow(p *route.Probes, nBad int) []pll.Observation {
	lossy := make([]bool, p.NumPaths())
	seen := 0
	for l := 0; l < p.NumLinks && seen < nBad; l++ {
		rows := p.PathsThrough(topo.LinkID(l))
		if len(rows) == 0 {
			continue
		}
		seen++
		for _, r := range rows {
			lossy[r] = true
		}
	}
	obs := make([]pll.Observation, p.NumPaths())
	for i := range obs {
		obs[i] = pll.Observation{Path: i, Sent: 200}
		switch {
		case lossy[i]:
			obs[i].Lost = 40
		case i%17 == 0:
			obs[i].Lost = 1
		}
	}
	return obs
}

// startLoopbackShards boots n real HTTP shard services over their own
// materializations of ps and dials a transport client at each, with the
// given wire policy.
func startLoopbackShards(t testing.TB, ps route.PathSet, numLinks, n int, wire string) []shard.ShardClient {
	t.Helper()
	clients := make([]shard.ShardClient, n)
	for i := 0; i < n; i++ {
		srv := NewServer(ps, numLinks)
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		clients[i] = Dial(i, ts.URL, ClientOptions{Wire: wire})
	}
	return clients
}

// TestLoopbackMatchesInProcess is the transport's core guarantee, pinned
// the same two ways as the in-process plane: a coordinator whose shards
// are real loopback HTTP services must produce construction selections and
// merged localizations bit-identical to the single-controller engines —
// and to the recorded fingerprints, which are the same constants
// internal/shard and internal/pmc pin. Nothing about the transport may
// perturb a single bit of output.
func TestLoopbackMatchesInProcess(t *testing.T) {
	f8 := topo.MustFattree(8)
	b41 := topo.MustBCube(4, 1)
	cases := []struct {
		name      string
		ps        route.PathSet
		numLinks  int
		opt       pmc.Options
		wantSel   uint64
		wantLocal uint64
	}{
		{
			"Fattree8/lazy", route.NewFattreePaths(f8), f8.NumLinks(),
			pmc.Options{Alpha: 2, Beta: 1, Lazy: true},
			0x527da8262b65b8c5, 0x401e57d28d149cb0,
		},
		{
			"Fattree8/symmetry", route.NewFattreePaths(f8), f8.NumLinks(),
			pmc.Options{Alpha: 2, Beta: 1, Lazy: true, Symmetry: true},
			0x9ec67bc163cdc6e5, 0x34c504045541deea,
		},
		{
			"BCube41/lazy", route.NewBCubePaths(b41), b41.NumLinks(),
			pmc.Options{Alpha: 2, Beta: 1, Lazy: true},
			0xedc0ad7cc1cc073b, 0xf863861539a440a4,
		},
	}
	for _, tc := range cases {
		single := tc.opt
		single.Decompose = true
		ref, err := pmc.Construct(tc.ps, tc.numLinks, single)
		if err != nil {
			t.Fatalf("%s: single-controller construct: %v", tc.name, err)
		}
		if h := hashSelection(ref.Selected); h != tc.wantSel {
			t.Fatalf("%s: single-controller hash %#016x, pinned %#016x", tc.name, h, tc.wantSel)
		}
		probes := route.NewProbes(tc.ps, ref.Selected, tc.numLinks)
		obs := syntheticWindow(probes, 3)
		refLoc, err := pll.Localize(probes, obs, pll.DefaultConfig())
		if err != nil {
			t.Fatalf("%s: single-controller localize: %v", tc.name, err)
		}
		if h := hashVerdicts(refLoc); h != tc.wantLocal {
			t.Fatalf("%s: single-controller localization hash %#016x, pinned %#016x", tc.name, h, tc.wantLocal)
		}

		// Both wire codecs must satisfy the identity pin: the binary
		// fleet is forced (every request travels the v2 frames), the
		// auto fleet exercises the negotiated path.
		for _, wire := range []string{WireAuto, WireBinary} {
			for _, n := range []int{2, 3} {
				clients := startLoopbackShards(t, tc.ps, tc.numLinks, n, wire)
				c, err := shard.New(tc.ps, tc.numLinks, shard.Options{
					Clients: clients, PMC: tc.opt, TTL: time.Minute,
				})
				if err != nil {
					t.Fatalf("%s/%s/shards=%d: %v", tc.name, wire, n, err)
				}
				t.Cleanup(c.Stop)

				res, err := c.Construct()
				if err != nil {
					t.Fatalf("%s/%s/shards=%d: loopback construct: %v", tc.name, wire, n, err)
				}
				if res.Retries != 0 {
					t.Errorf("%s/%s/shards=%d: clean cycle took %d retries", tc.name, wire, n, res.Retries)
				}
				if !reflect.DeepEqual(res.Selected, ref.Selected) {
					t.Errorf("%s/%s/shards=%d: loopback selection differs from single controller (hash %#016x vs pinned %#016x)",
						tc.name, wire, n, hashSelection(res.Selected), tc.wantSel)
				}
				if res.Stats.ScoreEvals != ref.Stats.ScoreEvals || res.Stats.Components != ref.Stats.Components {
					t.Errorf("%s/%s/shards=%d: merged stats diverge over the wire: evals %d vs %d, components %d vs %d",
						tc.name, wire, n, res.Stats.ScoreEvals, ref.Stats.ScoreEvals,
						res.Stats.Components, ref.Stats.Components)
				}
				if !res.Stats.CoverageMet || !res.Stats.IdentMet {
					t.Errorf("%s/%s/shards=%d: merged targets not met over the wire", tc.name, wire, n)
				}
				// Both fleets must be on binary: forced trivially, auto
				// because the coordinator's initial probe round runs the
				// negotiation before the first dispatch.
				for _, si := range c.Status().Shards {
					if si.Codec != CodecBinary {
						t.Errorf("%s/%s/shards=%d: /shards reports codec %q for shard %d, want %q",
							tc.name, wire, n, si.Codec, si.ID, CodecBinary)
					}
				}

				plane := c.BuildPlane(probes)
				got, err := plane.Localize(obs, pll.DefaultConfig())
				if err != nil {
					t.Fatalf("%s/%s/shards=%d: loopback localize: %v", tc.name, wire, n, err)
				}
				if !reflect.DeepEqual(got.Bad, refLoc.Bad) ||
					got.LossyPaths != refLoc.LossyPaths ||
					got.UnexplainedPaths != refLoc.UnexplainedPaths {
					t.Errorf("%s/%s/shards=%d: loopback localization differs: hash %#016x vs pinned %#016x",
						tc.name, wire, n, hashVerdicts(got), tc.wantLocal)
				}
			}
		}
	}
}

// TestPingReportsEngineFingerprint checks the liveness probe carries the
// matrix signature a coordinator needs to verify engine agreement.
func TestPingReportsEngineFingerprint(t *testing.T) {
	f := topo.MustFattree(4)
	ps := route.NewFattreePaths(f)
	srv := NewServer(ps, f.NumLinks())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cl := Dial(0, ts.URL, ClientOptions{})
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}

	coord, err := shard.New(ps, f.NumLinks(), shard.Options{Shards: 1, TTL: time.Minute,
		PMC: pmc.Options{Alpha: 1, Beta: 1, Lazy: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Stop()
	if srv.MatrixSig() != coord.MatrixSig() {
		t.Fatalf("independently materialized engines disagree on the matrix: server %#016x, coordinator %#016x",
			srv.MatrixSig(), coord.MatrixSig())
	}
}
