package shardrpc

// The v2 binary codec: a length-prefixed frame around a varint-packed
// payload, negotiated at ping time (the server advertises its codecs, the
// client picks) and selected per request via Content-Type, so a mixed
// fleet of v1 (JSON-only) and v2 services keeps working mid-rollout.
//
// Frame layout (all multi-byte integers varint unless noted):
//
//	magic     2 bytes  0xD7 0xC2
//	version   1 byte   BinaryVersion (2)
//	kind      1 byte   payload kind (construct/localize × request/response)
//	length    uvarint  payload byte count — must match the remainder exactly
//	payload   length bytes
//
// Inside a payload, the sequences that dominate the construct wire —
// component link IDs, candidate-path indices, selections — are strictly
// ascending by protocol, so they encode as a first absolute value plus
// per-element uvarint(delta−1): on Fattree(16) the typical delta is a
// handful, one byte instead of the six-plus digits JSON spends per index.
// Sequences with no ordering guarantee (a probe path's route-ordered
// links, verdict link IDs) use zigzag varint deltas, which cost the same
// as absolutes in the worst case and one byte in the common
// nearly-sorted case. Floats travel as fixed 8-byte IEEE 754 bits —
// bit-exact, no shortest-round-trip detour through decimal.
//
// Every decode is bounded: list lengths are checked against the bytes
// actually remaining before any allocation, truncated or trailing input
// is an error, and the declared frame length is capped by the caller's
// limit — so a garbage frame costs O(frame) work and a structured 400,
// never a panic or an OOM.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/detector-net/detector/internal/topo"
)

// BinaryVersion is the frame-format version of the v2 binary codec.
const BinaryVersion = 2

// Codec names, as advertised in PingResponse.Codecs and reported at
// GET /shards.
const (
	CodecJSON   = "json"
	CodecBinary = "binary"
)

// Content types selecting the request codec. JSON is the v1 default;
// the binary type is only sent after negotiation (or when forced).
const (
	contentTypeJSON   = "application/json"
	ContentTypeBinary = "application/x-detector-shardrpc-v2"
)

// Payload kinds.
const (
	kindConstructReq byte = iota + 1
	kindConstructResp
	kindLocalizeReq
	kindLocalizeResp
)

var frameMagic = [2]byte{0xD7, 0xC2}

// errFrameTooLarge marks a frame whose declared payload length exceeds
// the decoder's budget; the server maps it to 413 like an oversized body.
var errFrameTooLarge = errors.New("declared payload length exceeds limit")

// ---------------------------------------------------------------------------
// Encoding primitives.

// sealFrame wraps a packed payload in the v2 frame header.
func sealFrame(kind byte, payload []byte) []byte {
	out := make([]byte, 0, len(payload)+2+1+1+binary.MaxVarintLen64)
	out = append(out, frameMagic[0], frameMagic[1], BinaryVersion, kind)
	out = binary.AppendUvarint(out, uint64(len(payload)))
	return append(out, payload...)
}

// appendAscDelta encodes a strictly ascending non-negative sequence as
// count, first value, then uvarint(v[i]−v[i−1]−1) per element.
func appendAscDelta(b []byte, vals []int64) []byte {
	b = binary.AppendUvarint(b, uint64(len(vals)))
	for i, v := range vals {
		if i == 0 {
			b = binary.AppendUvarint(b, uint64(v))
			continue
		}
		b = binary.AppendUvarint(b, uint64(v-vals[i-1]-1))
	}
	return b
}

// zigzagEnc encodes a non-negative sequence with no ordering guarantee —
// absolute uvarint for the first value, zigzag varint deltas after — as a
// stateful cursor, so sequences whose elements interleave with other
// fields (observation rows, verdicts) share the exact encoding of the
// contiguous appendZigzagDelta form.
type zigzagEnc struct {
	prev    int64
	started bool
}

func (e *zigzagEnc) append(b []byte, v int64) []byte {
	if !e.started {
		e.started = true
		e.prev = v
		return binary.AppendUvarint(b, uint64(v))
	}
	d := v - e.prev
	e.prev = v
	return binary.AppendVarint(b, d)
}

// zigzagDec is zigzagEnc's decode mirror, with the int32 range check in
// one place.
type zigzagDec struct {
	prev    int64
	started bool
}

func (d *zigzagDec) next(r *breader) (int64, error) {
	if !d.started {
		d.started = true
		u, err := r.uvarint()
		if err != nil {
			return 0, err
		}
		if u > math.MaxInt32 {
			return 0, fmt.Errorf("sequence value %d exceeds int32 range", u)
		}
		d.prev = int64(u)
		return d.prev, nil
	}
	delta, err := r.varint()
	if err != nil {
		return 0, err
	}
	v := d.prev + delta
	if v < 0 || v > math.MaxInt32 {
		return 0, fmt.Errorf("sequence value %d outside int32 range", v)
	}
	d.prev = v
	return v, nil
}

// appendZigzagDelta encodes a non-negative sequence with no ordering
// guarantee as count, first value, then zigzag varint deltas.
func appendZigzagDelta(b []byte, vals []int64) []byte {
	b = binary.AppendUvarint(b, uint64(len(vals)))
	var enc zigzagEnc
	for _, v := range vals {
		b = enc.append(b, v)
	}
	return b
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// ---------------------------------------------------------------------------
// Decoding primitives: a cursor over the payload with hard bounds.

type breader struct {
	buf []byte
	off int
}

func (r *breader) remaining() int { return len(r.buf) - r.off }

func (r *breader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, errors.New("truncated varint")
	}
	r.off += n
	return v, nil
}

func (r *breader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		return 0, errors.New("truncated varint")
	}
	r.off += n
	return v, nil
}

// uint31 reads a uvarint destined for an int32-or-int count/ID field.
func (r *breader) uint31() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt32 {
		return 0, fmt.Errorf("value %d exceeds int32 range", v)
	}
	return int(v), nil
}

// int63 reads a uvarint destined for an int64 field.
func (r *breader) int63() (int64, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt64 {
		return 0, fmt.Errorf("value %d exceeds int64 range", v)
	}
	return int64(v), nil
}

func (r *breader) f64() (float64, error) {
	if r.remaining() < 8 {
		return 0, errors.New("truncated float64")
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v, nil
}

func (r *breader) u64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, errors.New("truncated uint64")
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

// seqLen validates a decoded element count against the bytes remaining
// (every element costs at least one byte), so a hostile count cannot
// drive allocation past the frame's own size.
func (r *breader) seqLen() (int, error) {
	n, err := r.uint31()
	if err != nil {
		return 0, err
	}
	if n > r.remaining() {
		return 0, fmt.Errorf("sequence of %d elements cannot fit in %d remaining bytes", n, r.remaining())
	}
	return n, nil
}

// ascDelta decodes an appendAscDelta sequence; nil when empty, matching
// the JSON decoder's treatment of an absent field.
func (r *breader) ascDelta() ([]int64, error) {
	n, err := r.seqLen()
	if err != nil || n == 0 {
		return nil, err
	}
	out := make([]int64, n)
	prev := int64(-1)
	for i := range out {
		d, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		v := prev + 1 + int64(d)
		if v < prev || v > math.MaxInt32 {
			return nil, fmt.Errorf("ascending sequence overflows at index %d", i)
		}
		out[i], prev = v, v
	}
	return out, nil
}

// zigzagDelta decodes an appendZigzagDelta sequence.
func (r *breader) zigzagDelta() ([]int64, error) {
	n, err := r.seqLen()
	if err != nil || n == 0 {
		return nil, err
	}
	out := make([]int64, n)
	var dec zigzagDec
	for i := range out {
		if out[i], err = dec.next(r); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func linksToInt64(links []topo.LinkID) []int64 {
	out := make([]int64, len(links))
	for i, l := range links {
		out[i] = int64(l)
	}
	return out
}

func int64ToLinks(vals []int64) []topo.LinkID {
	if vals == nil {
		return nil
	}
	out := make([]topo.LinkID, len(vals))
	for i, v := range vals {
		out[i] = topo.LinkID(v)
	}
	return out
}

// ---------------------------------------------------------------------------
// Frame open.

// openFrame validates magic, version, kind and the declared length
// against maxPayload, returning the payload bytes.
func openFrame(data []byte, wantKind byte, maxPayload int64) ([]byte, error) {
	if len(data) < 4 {
		return nil, errors.New("frame shorter than header")
	}
	if data[0] != frameMagic[0] || data[1] != frameMagic[1] {
		return nil, fmt.Errorf("bad frame magic %#02x%02x", data[0], data[1])
	}
	if data[2] != BinaryVersion {
		return nil, fmt.Errorf("unsupported binary codec version %d (want %d)", data[2], BinaryVersion)
	}
	if data[3] != wantKind {
		return nil, fmt.Errorf("frame kind %d, want %d", data[3], wantKind)
	}
	plen, n := binary.Uvarint(data[4:])
	if n <= 0 {
		return nil, errors.New("truncated frame length")
	}
	if maxPayload > 0 && plen > uint64(maxPayload) {
		return nil, fmt.Errorf("%w: %d > %d", errFrameTooLarge, plen, maxPayload)
	}
	payload := data[4+n:]
	if uint64(len(payload)) < plen {
		return nil, fmt.Errorf("truncated frame: %d payload bytes declared, %d present", plen, len(payload))
	}
	if uint64(len(payload)) > plen {
		return nil, fmt.Errorf("trailing garbage: %d payload bytes declared, %d present", plen, len(payload))
	}
	return payload, nil
}

// ---------------------------------------------------------------------------
// ConstructRequest.

func (r *ConstructRequest) encodeBinary() []byte {
	var b []byte
	b = binary.AppendUvarint(b, uint64(r.V))
	b = binary.LittleEndian.AppendUint64(b, r.MatrixSig)
	b = binary.AppendUvarint(b, uint64(r.NumLinks))
	b = binary.AppendUvarint(b, uint64(r.Opt.Alpha))
	b = binary.AppendUvarint(b, uint64(r.Opt.Beta))
	var flags byte
	if r.Opt.Lazy {
		flags |= 1
	}
	if r.Opt.Symmetry {
		flags |= 2
	}
	if r.Opt.NoEvenness {
		flags |= 4
	}
	b = append(b, flags)
	b = binary.AppendUvarint(b, uint64(r.Opt.Workers))
	b = binary.AppendUvarint(b, uint64(r.Opt.MaxElements))
	b = binary.AppendUvarint(b, uint64(len(r.Comps)))
	var tmp []int64
	for _, c := range r.Comps {
		b = appendAscDelta(b, linksToInt64(c.Links))
		tmp = tmp[:0]
		for _, p := range c.Paths {
			tmp = append(tmp, int64(p))
		}
		b = appendAscDelta(b, tmp)
	}
	return sealFrame(kindConstructReq, b)
}

func decodeConstructBinary(data []byte, maxPayload int64) (*ConstructRequest, error) {
	payload, err := openFrame(data, kindConstructReq, maxPayload)
	if err != nil {
		return nil, err
	}
	r := &breader{buf: payload}
	var req ConstructRequest
	if req.V, err = r.uint31(); err != nil {
		return nil, err
	}
	if req.MatrixSig, err = r.u64(); err != nil {
		return nil, err
	}
	if req.NumLinks, err = r.uint31(); err != nil {
		return nil, err
	}
	if req.Opt.Alpha, err = r.uint31(); err != nil {
		return nil, err
	}
	if req.Opt.Beta, err = r.uint31(); err != nil {
		return nil, err
	}
	if r.remaining() < 1 {
		return nil, errors.New("truncated option flags")
	}
	flags := r.buf[r.off]
	r.off++
	req.Opt.Lazy = flags&1 != 0
	req.Opt.Symmetry = flags&2 != 0
	req.Opt.NoEvenness = flags&4 != 0
	if req.Opt.Workers, err = r.uint31(); err != nil {
		return nil, err
	}
	if req.Opt.MaxElements, err = r.uint31(); err != nil {
		return nil, err
	}
	ncomps, err := r.seqLen()
	if err != nil {
		return nil, err
	}
	if ncomps > 0 {
		req.Comps = make([]Component, ncomps)
		for i := range req.Comps {
			links, err := r.ascDelta()
			if err != nil {
				return nil, fmt.Errorf("component %d links: %w", i, err)
			}
			paths, err := r.ascDelta()
			if err != nil {
				return nil, fmt.Errorf("component %d paths: %w", i, err)
			}
			req.Comps[i].Links = int64ToLinks(links)
			if paths != nil {
				req.Comps[i].Paths = make([]int32, len(paths))
				for j, p := range paths {
					req.Comps[i].Paths[j] = int32(p)
				}
			}
		}
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%d trailing payload bytes", r.remaining())
	}
	return &req, nil
}

// ---------------------------------------------------------------------------
// ConstructResponse.

func (r *ConstructResponse) encodeBinary() []byte {
	var b []byte
	b = binary.AppendUvarint(b, uint64(r.V))
	sel := make([]int64, len(r.Selected))
	for i, s := range r.Selected {
		sel[i] = int64(s)
	}
	b = appendAscDelta(b, sel)
	b = binary.AppendUvarint(b, uint64(r.Stats.Components))
	b = binary.AppendUvarint(b, uint64(r.Stats.Candidates))
	b = binary.AppendUvarint(b, uint64(r.Stats.ScoreEvals))
	b = binary.AppendUvarint(b, uint64(r.Stats.Reseeds))
	b = binary.AppendUvarint(b, uint64(r.Stats.Selected))
	b = binary.AppendUvarint(b, uint64(r.Stats.ElapsedNS))
	var flags byte
	if r.Stats.CoverageMet {
		flags |= 1
	}
	if r.Stats.IdentMet {
		flags |= 2
	}
	b = append(b, flags)
	return sealFrame(kindConstructResp, b)
}

func decodeConstructRespBinary(data []byte, maxPayload int64) (*ConstructResponse, error) {
	payload, err := openFrame(data, kindConstructResp, maxPayload)
	if err != nil {
		return nil, err
	}
	r := &breader{buf: payload}
	var resp ConstructResponse
	if resp.V, err = r.uint31(); err != nil {
		return nil, err
	}
	sel, err := r.ascDelta()
	if err != nil {
		return nil, fmt.Errorf("selection: %w", err)
	}
	if sel != nil {
		resp.Selected = make([]int, len(sel))
		for i, s := range sel {
			resp.Selected[i] = int(s)
		}
	}
	if resp.Stats.Components, err = r.uint31(); err != nil {
		return nil, err
	}
	if resp.Stats.Candidates, err = r.uint31(); err != nil {
		return nil, err
	}
	if resp.Stats.ScoreEvals, err = r.int63(); err != nil {
		return nil, err
	}
	if resp.Stats.Reseeds, err = r.uint31(); err != nil {
		return nil, err
	}
	if resp.Stats.Selected, err = r.uint31(); err != nil {
		return nil, err
	}
	if resp.Stats.ElapsedNS, err = r.int63(); err != nil {
		return nil, err
	}
	if r.remaining() < 1 {
		return nil, errors.New("truncated stats flags")
	}
	flags := r.buf[r.off]
	r.off++
	resp.Stats.CoverageMet = flags&1 != 0
	resp.Stats.IdentMet = flags&2 != 0
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%d trailing payload bytes", r.remaining())
	}
	return &resp, nil
}

// ---------------------------------------------------------------------------
// LocalizeRequest.

func (r *LocalizeRequest) encodeBinary() []byte {
	var b []byte
	b = binary.AppendUvarint(b, uint64(r.V))
	b = binary.AppendUvarint(b, uint64(r.NumLinks))
	b = binary.AppendUvarint(b, uint64(len(r.Paths)))
	for _, p := range r.Paths {
		b = appendZigzagDelta(b, linksToInt64(p.Links))
		b = binary.AppendUvarint(b, uint64(p.Src))
		b = binary.AppendUvarint(b, uint64(p.Dst))
	}
	b = binary.AppendUvarint(b, uint64(len(r.Obs)))
	// Observations usually arrive in path order; zigzag deltas make the
	// common ascending case one byte.
	var pathEnc zigzagEnc
	for _, o := range r.Obs {
		b = pathEnc.append(b, int64(o.Path))
		b = binary.AppendUvarint(b, uint64(o.Sent))
		b = binary.AppendUvarint(b, uint64(o.Lost))
	}
	b = appendF64(b, r.Cfg.HitRatio)
	b = appendF64(b, r.Cfg.LossRatioFloor)
	b = appendF64(b, r.Cfg.BaselineRate)
	b = appendF64(b, r.Cfg.Significance)
	b = binary.AppendUvarint(b, uint64(r.Cfg.MinLoss))
	b = binary.AppendUvarint(b, uint64(r.Cfg.Workers))
	unh := make([]int64, len(r.Cfg.Unhealthy))
	for i, n := range r.Cfg.Unhealthy {
		unh[i] = int64(n)
	}
	b = appendAscDelta(b, unh)
	return sealFrame(kindLocalizeReq, b)
}

func decodeLocalizeBinary(data []byte, maxPayload int64) (*LocalizeRequest, error) {
	payload, err := openFrame(data, kindLocalizeReq, maxPayload)
	if err != nil {
		return nil, err
	}
	r := &breader{buf: payload}
	var req LocalizeRequest
	if req.V, err = r.uint31(); err != nil {
		return nil, err
	}
	if req.NumLinks, err = r.uint31(); err != nil {
		return nil, err
	}
	npaths, err := r.seqLen()
	if err != nil {
		return nil, err
	}
	if npaths > 0 {
		req.Paths = make([]Path, npaths)
		for i := range req.Paths {
			links, err := r.zigzagDelta()
			if err != nil {
				return nil, fmt.Errorf("path %d links: %w", i, err)
			}
			req.Paths[i].Links = int64ToLinks(links)
			src, err := r.uint31()
			if err != nil {
				return nil, err
			}
			dst, err := r.uint31()
			if err != nil {
				return nil, err
			}
			req.Paths[i].Src, req.Paths[i].Dst = topo.NodeID(src), topo.NodeID(dst)
		}
	}
	nobs, err := r.seqLen()
	if err != nil {
		return nil, err
	}
	if nobs > 0 {
		req.Obs = make([]Observation, nobs)
		var pathDec zigzagDec
		for i := range req.Obs {
			p, err := pathDec.next(r)
			if err != nil {
				return nil, fmt.Errorf("observation %d path: %w", i, err)
			}
			req.Obs[i].Path = int(p)
			if req.Obs[i].Sent, err = r.uint31(); err != nil {
				return nil, err
			}
			if req.Obs[i].Lost, err = r.uint31(); err != nil {
				return nil, err
			}
		}
	}
	if req.Cfg.HitRatio, err = r.f64(); err != nil {
		return nil, err
	}
	if req.Cfg.LossRatioFloor, err = r.f64(); err != nil {
		return nil, err
	}
	if req.Cfg.BaselineRate, err = r.f64(); err != nil {
		return nil, err
	}
	if req.Cfg.Significance, err = r.f64(); err != nil {
		return nil, err
	}
	if req.Cfg.MinLoss, err = r.uint31(); err != nil {
		return nil, err
	}
	if req.Cfg.Workers, err = r.uint31(); err != nil {
		return nil, err
	}
	unh, err := r.ascDelta()
	if err != nil {
		return nil, fmt.Errorf("unhealthy set: %w", err)
	}
	if unh != nil {
		req.Cfg.Unhealthy = make([]topo.NodeID, len(unh))
		for i, n := range unh {
			req.Cfg.Unhealthy[i] = topo.NodeID(n)
		}
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%d trailing payload bytes", r.remaining())
	}
	return &req, nil
}

// ---------------------------------------------------------------------------
// LocalizeResponse.

func (r *LocalizeResponse) encodeBinary() []byte {
	var b []byte
	b = binary.AppendUvarint(b, uint64(r.V))
	b = binary.AppendUvarint(b, uint64(len(r.Bad)))
	// Verdicts are sorted by link ID; zigzag deltas keep the unsorted
	// case correct anyway.
	var linkEnc zigzagEnc
	for _, v := range r.Bad {
		b = linkEnc.append(b, int64(v.Link))
		b = appendF64(b, v.Rate)
		b = binary.AppendUvarint(b, uint64(v.Explained))
	}
	b = binary.AppendUvarint(b, uint64(r.LossyPaths))
	b = binary.AppendUvarint(b, uint64(r.UnexplainedPaths))
	b = binary.AppendUvarint(b, uint64(r.ElapsedNS))
	return sealFrame(kindLocalizeResp, b)
}

func decodeLocalizeRespBinary(data []byte, maxPayload int64) (*LocalizeResponse, error) {
	payload, err := openFrame(data, kindLocalizeResp, maxPayload)
	if err != nil {
		return nil, err
	}
	r := &breader{buf: payload}
	var resp LocalizeResponse
	if resp.V, err = r.uint31(); err != nil {
		return nil, err
	}
	nbad, err := r.seqLen()
	if err != nil {
		return nil, err
	}
	if nbad > 0 {
		resp.Bad = make([]Verdict, nbad)
		var linkDec zigzagDec
		for i := range resp.Bad {
			l, err := linkDec.next(r)
			if err != nil {
				return nil, fmt.Errorf("verdict %d link: %w", i, err)
			}
			resp.Bad[i].Link = topo.LinkID(l)
			if resp.Bad[i].Rate, err = r.f64(); err != nil {
				return nil, err
			}
			if resp.Bad[i].Explained, err = r.uint31(); err != nil {
				return nil, err
			}
		}
	}
	if resp.LossyPaths, err = r.uint31(); err != nil {
		return nil, err
	}
	if resp.UnexplainedPaths, err = r.uint31(); err != nil {
		return nil, err
	}
	if resp.ElapsedNS, err = r.int63(); err != nil {
		return nil, err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%d trailing payload bytes", r.remaining())
	}
	return &resp, nil
}
