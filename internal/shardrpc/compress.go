package shardrpc

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"strings"

	"github.com/detector-net/detector/internal/metrics"
)

// Per-message compression for the localize path. Construct payloads ride
// the v2 varint-delta codec, which already strips their redundancy; the
// localize request is different — route-ordered link lists repeat the same
// fan-out structure once per path and delta-compress poorly, so a
// general-purpose entropy coder on top of the codec is where the bytes
// are. Compression is negotiated exactly like the codec ladder: the shard
// advertises what it accepts in PingResponse.Compressions, the client
// picks the cheapest scheme both ends speak, and a mixed fleet degrades to
// identity per shard instead of breaking. zstd would slot in as another
// rung, but the toolchain's stdlib is the dependency budget, so gzip is
// the ladder's top today.
const (
	// CompressionIdentity is the no-compression floor every peer speaks.
	CompressionIdentity = "identity"
	// CompressionGzip is stdlib gzip (RFC 1952) on the request/response
	// bodies of the localize path, signaled via Content-Encoding.
	CompressionGzip = "gzip"
)

// Compression policies for ClientOptions.Compress.
const (
	// CompressAuto negotiates at ping time: identity until the shard's
	// ping advertises gzip (a v1 service omits the field — identity).
	CompressAuto = "auto"
	// CompressOff forces identity even against a gzip-capable shard.
	CompressOff = "off"
	// CompressGzip forces gzip; a shard that cannot decode it answers
	// 415, surfacing as a dispatch failure instead of silent downgrade.
	CompressGzip = CompressionGzip
)

// compressMinBytes is the floor below which compressing a body is pure
// overhead: a gzip header + trailer is 18 bytes and tiny windows are
// incompressible, so small bodies ship as identity even when gzip is
// negotiated.
const compressMinBytes = 512

// Localize wire-ratio counters: raw is the encoded payload before
// compression, wire is what actually shipped. The per-push CI bench reads
// the pair to report the compression ratio; identical values mean
// compression is off (or never negotiated — compare with the /shards
// view).
var (
	localizeRawBytes  = metrics.NewCounter("shardrpc_localize_raw_bytes")
	localizeWireBytes = metrics.NewCounter("shardrpc_localize_wire_bytes")
)

// errDecompressTooLarge maps to 413 exactly like errFrameTooLarge: a
// body whose decompressed size exceeds the server's limits is treated as
// oversized, whether the bytes arrived compressed or not — compression
// must never widen what a peer can make the server buffer.
var errDecompressTooLarge = fmt.Errorf("decompressed body exceeds limit")

// gzipBytes compresses b at the default level.
func gzipBytes(b []byte) []byte {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(b) // bytes.Buffer writes cannot fail
	zw.Close()
	return buf.Bytes()
}

// gunzipBounded decompresses b, refusing to produce more than max bytes —
// the decompression-bomb guard: a 1 MB gzip body can inflate to 1 GB, so
// the bound applies to the output, not the input.
func gunzipBounded(b []byte, max int64) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(b))
	if err != nil {
		return nil, fmt.Errorf("gzip: %w", err)
	}
	defer zr.Close()
	out, err := io.ReadAll(io.LimitReader(zr, max+1))
	if err != nil {
		return nil, fmt.Errorf("gzip: %w", err)
	}
	if int64(len(out)) > max {
		return nil, errDecompressTooLarge
	}
	return out, nil
}

// acceptsGzip reports whether an Accept-Encoding header admits gzip.
func acceptsGzip(header string) bool {
	for _, part := range strings.Split(header, ",") {
		enc := strings.TrimSpace(part)
		if i := strings.IndexByte(enc, ';'); i >= 0 {
			enc = strings.TrimSpace(enc[:i])
		}
		if enc == CompressionGzip {
			return true
		}
	}
	return false
}

// negotiateCompression picks the richest compression both ends speak from
// a ping advertisement.
func negotiateCompression(advertised []string) string {
	for _, name := range advertised {
		if name == CompressionGzip {
			return CompressionGzip
		}
	}
	return CompressionIdentity
}
