package shardrpc

// The pinglist delta, as the seventh kind of the v2 binary frame. When the
// topology churns, only the dirty components' selections change, so most of
// a pinger's work order survives from one version to the next. Instead of
// re-shipping the full pinglist to every pinger each cycle, the controller
// serves the difference between the version a pinger already holds and the
// current one: path IDs to stop probing plus full entries to start probing.
// The wire types live here rather than in internal/control so that both the
// controller (encoder) and the pinger (decoder) can speak them without an
// import cycle — control already depends on shardrpc for its shard clients.
//
// A delta with FromVersion 0 is a full snapshot: Removed is empty and Added
// carries the complete entry list. That makes one frame shape serve both
// the bootstrap fetch and the incremental refresh, and gives the controller
// a natural fallback when a pinger's base version has aged out of the
// delta history.

import (
	"encoding/binary"
	"fmt"

	"github.com/detector-net/detector/internal/topo"
)

// kindPinglistDelta extends the payload-kind space past the report summary
// (6): a version-to-version pinglist difference.
const kindPinglistDelta byte = 7

// KindPinglistDelta names the pinglist-delta frame kind for callers
// dispatching on FrameKind outside the package.
const KindPinglistDelta = kindPinglistDelta

// PingEntry is one probe route a pinger must start (or keep) probing —
// the wire twin of control.Entry.
type PingEntry struct {
	// PathID identifies the route matrix-wide; reports aggregate on it.
	PathID uint32 `json:"path_id"`
	// Route is the full node sequence, pinger server to responder server.
	Route []topo.NodeID `json:"route"`
	// FlowLabels to rotate through (packet entropy).
	FlowLabels []uint32 `json:"flow_labels,omitempty"`
	DSCP       uint8    `json:"dscp,omitempty"`
}

// PinglistDelta carries one pinger's work-order difference from
// FromVersion to Version. Removed lists path IDs to stop probing, Added
// lists entries to start probing; an entry present in both (a route whose
// definition changed) is an upsert — Removed is applied first. Both
// sequences are strictly ascending by path ID on the wire.
type PinglistDelta struct {
	Node topo.NodeID `json:"node"`
	// FromVersion is the base the delta applies to; 0 means this is a
	// full snapshot (Removed empty, Added complete).
	FromVersion int         `json:"from_version"`
	Version     int         `json:"version"`
	RatePPS     int         `json:"rate_pps"`
	WindowMS    int         `json:"window_ms"`
	ReportURL   string      `json:"report_url"`
	Removed     []uint32    `json:"removed,omitempty"`
	Added       []PingEntry `json:"added,omitempty"`
}

// Full reports whether the delta is a from-scratch snapshot rather than an
// incremental difference.
func (d *PinglistDelta) Full() bool { return d.FromVersion == 0 }

// EncodeBinary packs the delta into a v2 frame. Removed and Added are both
// strictly ascending by path ID, so the IDs encode as first value plus
// uvarint(delta−1); route hops and flow labels are unordered and ride the
// zigzag-delta form.
func (d *PinglistDelta) EncodeBinary() []byte {
	var b []byte
	b = binary.AppendUvarint(b, uint64(d.Node))
	b = binary.AppendUvarint(b, uint64(d.FromVersion))
	b = binary.AppendUvarint(b, uint64(d.Version))
	b = binary.AppendUvarint(b, uint64(d.RatePPS))
	b = binary.AppendUvarint(b, uint64(d.WindowMS))
	b = binary.AppendUvarint(b, uint64(len(d.ReportURL)))
	b = append(b, d.ReportURL...)
	rem := make([]int64, len(d.Removed))
	for i, p := range d.Removed {
		rem[i] = int64(p)
	}
	b = appendAscDelta(b, rem)
	b = binary.AppendUvarint(b, uint64(len(d.Added)))
	prev := int64(-1)
	for _, e := range d.Added {
		b = binary.AppendUvarint(b, uint64(int64(e.PathID)-prev-1))
		prev = int64(e.PathID)
		b = binary.AppendUvarint(b, uint64(len(e.Route)))
		var enc zigzagEnc
		for _, n := range e.Route {
			b = enc.append(b, int64(n))
		}
		b = binary.AppendUvarint(b, uint64(len(e.FlowLabels)))
		enc = zigzagEnc{}
		for _, fl := range e.FlowLabels {
			b = enc.append(b, int64(fl))
		}
		b = append(b, e.DSCP)
	}
	return sealFrame(kindPinglistDelta, b)
}

// DecodeBinary unpacks a v2 pinglist-delta frame into d. The decode
// enforces structure: strictly ascending path IDs in both sections, int32
// bounds on every ID, and no trailing payload bytes.
func (d *PinglistDelta) DecodeBinary(data []byte, maxPayload int64) error {
	payload, err := openFrame(data, kindPinglistDelta, maxPayload)
	if err != nil {
		return err
	}
	r := &breader{buf: payload}
	node, err := r.uint31()
	if err != nil {
		return err
	}
	d.Node = topo.NodeID(node)
	if d.FromVersion, err = r.uint31(); err != nil {
		return err
	}
	if d.Version, err = r.uint31(); err != nil {
		return err
	}
	if d.Version <= d.FromVersion {
		return fmt.Errorf("delta version %d not past base %d", d.Version, d.FromVersion)
	}
	if d.RatePPS, err = r.uint31(); err != nil {
		return err
	}
	if d.WindowMS, err = r.uint31(); err != nil {
		return err
	}
	ulen, err := r.seqLen()
	if err != nil {
		return err
	}
	d.ReportURL = string(r.buf[r.off : r.off+ulen])
	r.off += ulen
	rem, err := r.ascDelta()
	if err != nil {
		return fmt.Errorf("removed: %w", err)
	}
	d.Removed = d.Removed[:0]
	for _, p := range rem {
		d.Removed = append(d.Removed, uint32(p))
	}
	nAdd, err := r.seqLen()
	if err != nil {
		return err
	}
	d.Added = d.Added[:0]
	prev := int64(-1)
	for i := 0; i < nAdd; i++ {
		var e PingEntry
		dv, err := r.uvarint()
		if err != nil {
			return fmt.Errorf("added %d path: %w", i, err)
		}
		p := prev + 1 + int64(dv)
		if p > maxPathID {
			return fmt.Errorf("added %d path %d exceeds uint32 range", i, p)
		}
		prev = p
		e.PathID = uint32(p)
		nHops, err := r.seqLen()
		if err != nil {
			return err
		}
		var dec zigzagDec
		e.Route = make([]topo.NodeID, nHops)
		for j := range e.Route {
			v, err := dec.next(r)
			if err != nil {
				return fmt.Errorf("added %d hop %d: %w", i, j, err)
			}
			e.Route[j] = topo.NodeID(v)
		}
		nFL, err := r.seqLen()
		if err != nil {
			return err
		}
		if nFL > 0 {
			dec = zigzagDec{}
			e.FlowLabels = make([]uint32, nFL)
			for j := range e.FlowLabels {
				v, err := dec.next(r)
				if err != nil {
					return fmt.Errorf("added %d flow label %d: %w", i, j, err)
				}
				e.FlowLabels[j] = uint32(v)
			}
		}
		if r.remaining() < 1 {
			return fmt.Errorf("added %d: truncated dscp", i)
		}
		e.DSCP = r.buf[r.off]
		r.off++
		d.Added = append(d.Added, e)
	}
	if r.remaining() != 0 {
		return fmt.Errorf("%d trailing payload bytes", r.remaining())
	}
	return nil
}

// DecodePinglistDeltaBinary unpacks a v2 pinglist-delta frame (fresh
// allocation; a refresh loop can reuse a struct via DecodeBinary).
func DecodePinglistDeltaBinary(data []byte, maxPayload int64) (*PinglistDelta, error) {
	var d PinglistDelta
	if err := d.DecodeBinary(data, maxPayload); err != nil {
		return nil, err
	}
	return &d, nil
}
