package shardrpc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptrace"
	"strconv"
	"sync"
	"time"

	"github.com/detector-net/detector/internal/httpx"
	"github.com/detector-net/detector/internal/obs"
	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/shard"
)

// maxShardSeries bounds the per-shard label cardinality of the client
// counter families: fleets larger than this aggregate the overflow into one
// {shard="overflow"} series instead of growing the registry without bound.
const maxShardSeries = 128

// Per-shard operational counter families, one series per shard slot. These
// replace the old flat shardrpc_client_<id>_* counters: same values, but
// the metric name is now fixed and the shard id is a label, so dashboards
// aggregate across the fleet without regexp gymnastics.
var (
	clientRequests    = obs.NewCounterVec("shardrpc_client_requests", "RPC attempts issued to the shard (pings and posts, including retries).", "shard", maxShardSeries)
	clientRetries     = obs.NewCounterVec("shardrpc_client_retries", "Idempotent RPC attempts that were retries after a transport failure.", "shard", maxShardSeries)
	clientBytesIn     = obs.NewCounterVec("shardrpc_client_bytes_in", "Bytes received from the shard (wire truth with the built-in transport).", "shard", maxShardSeries)
	clientBytesOut    = obs.NewCounterVec("shardrpc_client_bytes_out", "Bytes sent to the shard (wire truth with the built-in transport).", "shard", maxShardSeries)
	clientConnsOpened = obs.NewCounterVec("shardrpc_client_conns_opened", "New TCP connections dialed to the shard.", "shard", maxShardSeries)
	clientConnsReused = obs.NewCounterVec("shardrpc_client_conns_reused", "Requests served over a kept-alive connection.", "shard", maxShardSeries)
)

// Wire policies for ClientOptions.Wire.
const (
	// WireAuto negotiates at ping time: the client starts on JSON (every
	// server speaks it) and upgrades to the binary codec when the shard's
	// ping advertises it — so a mixed v1/v2 fleet keeps working and each
	// shard is driven over the cheapest codec it supports.
	WireAuto = "auto"
	// WireJSON forces the v1 JSON codec.
	WireJSON = CodecJSON
	// WireBinary forces the v2 binary codec; a v1-only shard will answer
	// 400, which surfaces as a dispatch failure instead of silently
	// degrading — use it to assert a fully upgraded fleet.
	WireBinary = CodecBinary
)

// ClientOptions tunes a transport client.
type ClientOptions struct {
	// HTTPClient overrides the default (30 s total-request timeout —
	// construction on a big component takes seconds, so this is a
	// hung-shard bound, not a latency bound — over a connection-counting
	// transport tuned for shard traffic). With an override the byte
	// counters degrade to payload accounting: request bodies per attempt
	// and response bytes read, no header or ping-request bytes.
	HTTPClient *http.Client
	// Attempts is how many times an idempotent call is tried before the
	// dispatch is reported failed (default 2: one retry). Construction
	// and localization are pure computations, so a retry can never
	// double-apply anything.
	Attempts int
	// Wire selects the request codec: WireAuto (default — negotiate at
	// ping time, JSON until the shard advertises binary), WireJSON, or
	// WireBinary.
	Wire string
	// MaxResponseBytes bounds every response read, mirroring the limit
	// the server enforces on requests: a misbehaving shard cannot balloon
	// coordinator memory through an unbounded response body. Default
	// DefaultLimits().MaxBodyBytes.
	MaxResponseBytes int64
	// Compress selects per-message compression for the localize path:
	// CompressAuto (default — negotiate at ping time, identity until the
	// shard advertises gzip), CompressOff, or CompressGzip. Construct
	// payloads are untouched: the varint-delta codec already strips their
	// redundancy, while localize's route-ordered link lists are where
	// entropy coding pays (ARCHITECTURE.md has the measured ratio).
	Compress string
}

// Client drives one remote shard service and implements shard.ShardClient,
// so a coordinator treats it exactly like an in-process shard. Per-shard
// operational counters (requests, bytes in/out, retries, connections
// opened/reused) register in internal/metrics and surface at every
// service's GET /metrics.
type Client struct {
	id       int
	base     string
	hc       *http.Client
	att      int
	wire     string
	compress string
	maxResp  int64
	// wireCount is true when the client owns a counting transport: the
	// byte counters then measure actual wire traffic — headers, bodies,
	// failed attempts, pings — not just successfully posted payloads.
	wireCount bool

	mu             sync.Mutex
	negotiated     string // codec chosen by the last ping under WireAuto
	negotiatedComp string // compression chosen by the last ping under CompressAuto
	expectSet      bool
	expectSig      uint64
	expectLinks    int

	requests    *obs.Counter
	retries     *obs.Counter
	bytesIn     *obs.Counter
	bytesOut    *obs.Counter
	connsOpened *obs.Counter
	connsReused *obs.Counter
}

// countingConn counts every byte crossing a shard connection, so the
// bytes_in/bytes_out counters report wire truth: request headers, bodies
// of attempts that died mid-flight, ping GETs — all of it.
type countingConn struct {
	net.Conn
	in, out *obs.Counter
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.in.Add(int64(n))
	}
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.out.Add(int64(n))
	}
	return n, err
}

// Dial builds a client for the shard service at baseURL, serving
// coordinator slot id. No connection is made until the first call.
// An unknown Wire policy panics: silently treating a typo ("Binary",
// "bin") as auto-negotiation would defeat exactly the fail-loud
// guarantee WireBinary exists to give.
func Dial(id int, baseURL string, opt ClientOptions) *Client {
	switch opt.Wire {
	case "", WireAuto, WireJSON, WireBinary:
	default:
		panic(fmt.Sprintf("shardrpc: unknown wire policy %q (want %q, %q or %q)",
			opt.Wire, WireAuto, WireJSON, WireBinary))
	}
	switch opt.Compress {
	case "", CompressAuto, CompressOff, CompressGzip:
	default:
		panic(fmt.Sprintf("shardrpc: unknown compression policy %q (want %q, %q or %q)",
			opt.Compress, CompressAuto, CompressOff, CompressGzip))
	}
	slot := strconv.Itoa(id)
	c := &Client{
		id: id, base: baseURL,
		wire:           opt.Wire,
		compress:       opt.Compress,
		negotiated:     CodecJSON,
		negotiatedComp: CompressionIdentity,
		maxResp:        opt.MaxResponseBytes,
		requests:       clientRequests.With(slot),
		retries:        clientRetries.With(slot),
		bytesIn:        clientBytesIn.With(slot),
		bytesOut:       clientBytesOut.With(slot),
		connsOpened:    clientConnsOpened.With(slot),
		connsReused:    clientConnsReused.With(slot),
	}
	if c.maxResp <= 0 {
		c.maxResp = DefaultLimits().MaxBodyBytes
	}
	c.att = opt.Attempts
	if c.att <= 0 {
		c.att = 2
	}
	c.hc = opt.HTTPClient
	if c.hc == nil {
		// http.DefaultTransport keeps only 2 idle connections per host,
		// so a construct dispatch racing the heartbeat prober (plus any
		// concurrent localize) to the same shard closes and reopens
		// connections every cycle. Size the idle pool for shard traffic
		// and count bytes at the connection so the transport counters
		// cannot lie.
		dialer := &net.Dialer{Timeout: 5 * time.Second, KeepAlive: 30 * time.Second}
		tr := &http.Transport{
			DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
				conn, err := dialer.DialContext(ctx, network, addr)
				if err != nil {
					return nil, err
				}
				return &countingConn{Conn: conn, in: c.bytesIn, out: c.bytesOut}, nil
			},
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 8,
			IdleConnTimeout:     90 * time.Second,
		}
		c.hc = &http.Client{Timeout: 30 * time.Second, Transport: tr}
		c.wireCount = true
	}
	return c
}

// ID returns the coordinator slot this client serves.
func (c *Client) ID() int { return c.id }

// Addr returns the shard service's base URL.
func (c *Client) Addr() string { return c.base }

// Codec reports the codec the next request would use: the forced wire
// policy, or the outcome of the last ping negotiation under WireAuto.
// The controller's /shards view surfaces it per shard.
func (c *Client) Codec() string {
	switch c.wire {
	case WireJSON:
		return CodecJSON
	case WireBinary:
		return CodecBinary
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.negotiated
}

// Compression reports the scheme the next localize request would use: the
// forced policy, or the outcome of the last ping negotiation under
// CompressAuto. The controller's /shards view surfaces it per shard next
// to the codec.
func (c *Client) Compression() string {
	switch c.compress {
	case CompressOff:
		return CompressionIdentity
	case CompressGzip:
		return CompressionGzip
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.negotiatedComp
}

// Close releases idle connections.
func (c *Client) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

// ExpectMatrix pins the engine fingerprint the coordinator derived for
// itself (shard.MatrixChecker): every subsequent Ping verifies the shard
// reports the same matrix signature and link count, so a wrong-topology
// shard fails liveness instead of reporting healthy and failing work.
func (c *Client) ExpectMatrix(sig uint64, numLinks int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expectSet = true
	c.expectSig = sig
	c.expectLinks = numLinks
}

// traceContext attaches a connection-reuse trace to a request context, so
// the conns_opened/conns_reused counters show whether keep-alive is
// actually holding under churn.
func (c *Client) traceContext(ctx context.Context) context.Context {
	return httptrace.WithClientTrace(ctx, &httptrace.ClientTrace{
		GotConn: func(info httptrace.GotConnInfo) {
			if info.Reused {
				c.connsReused.Inc()
			} else {
				c.connsOpened.Inc()
			}
		},
	})
}

// readBounded reads at most max bytes of a response body, reporting
// whether the body exceeded the bound.
func readBounded(body io.Reader, max int64) ([]byte, bool, error) {
	b, err := io.ReadAll(io.LimitReader(body, max+1))
	if err != nil {
		return nil, false, err
	}
	if int64(len(b)) > max {
		return b[:max], true, nil
	}
	return b, false, nil
}

// pingResponseCap bounds the liveness probe's body; a ping is a fixed
// handful of fields, so anything past this is a sick shard.
const pingResponseCap = 4096

// Ping probes the shard service's liveness endpoint and, under WireAuto,
// renegotiates the codec from the advertisement in the response — so a
// shard redeployed at a different version is picked up at the next
// heartbeat, upgrade or downgrade.
func (c *Client) Ping() error {
	c.requests.Inc()
	req, err := http.NewRequestWithContext(c.traceContext(context.Background()),
		http.MethodGet, c.base+"/v1/ping", nil)
	if err != nil {
		return fmt.Errorf("shardrpc %d: ping request: %w", c.id, err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("shardrpc %d: ping %s: %w", c.id, c.base, err)
	}
	defer resp.Body.Close()
	body, over, err := readBounded(resp.Body, pingResponseCap)
	if err != nil {
		return fmt.Errorf("shardrpc %d: ping read: %w", c.id, err)
	}
	if !c.wireCount {
		c.bytesIn.Add(int64(len(body)))
	}
	if over {
		return fmt.Errorf("shardrpc %d: ping response exceeds %d bytes", c.id, pingResponseCap)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shardrpc %d: ping status %s", c.id, resp.Status)
	}
	var pr PingResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		return fmt.Errorf("shardrpc %d: ping body: %w", c.id, err)
	}
	if pr.V != SchemaVersion {
		return fmt.Errorf("shardrpc %d: shard speaks schema v%d, client v%d", c.id, pr.V, SchemaVersion)
	}
	negotiated := CodecJSON
	for _, name := range pr.Codecs {
		if name == CodecBinary {
			negotiated = CodecBinary
		}
	}
	c.mu.Lock()
	c.negotiated = negotiated
	c.negotiatedComp = negotiateCompression(pr.Compressions)
	expectSet, expectSig, expectLinks := c.expectSet, c.expectSig, c.expectLinks
	c.mu.Unlock()
	if expectSet && (pr.MatrixSig != expectSig || pr.NumLinks != expectLinks) {
		return fmt.Errorf("shardrpc %d: shard engine mismatch: matrix sig %#016x/%d links, coordinator expects %#016x/%d — built for a different topology?",
			c.id, pr.MatrixSig, pr.NumLinks, expectSig, expectLinks)
	}
	return nil
}

// encodeRequest marshals a request body in the client's current codec.
func (c *Client) encodeRequest(req any) (body []byte, contentType string, err error) {
	if c.Codec() == CodecBinary {
		switch r := req.(type) {
		case ConstructRequest:
			return r.encodeBinary(), ContentTypeBinary, nil
		case LocalizeRequest:
			return r.encodeBinary(), ContentTypeBinary, nil
		}
	}
	body, err = json.Marshal(req)
	return body, contentTypeJSON, err
}

// decodeResponse unmarshals a success body in whatever codec the server
// answered with (the server mirrors the request codec, but trusting the
// response header keeps a mid-rollout downgrade decodable).
func decodeResponse(resp *http.Response, body []byte, respKind byte, maxPayload int64, out any) error {
	if codecForContentType(resp.Header.Get("Content-Type")) == CodecBinary {
		switch respKind {
		case kindConstructResp:
			decoded, err := decodeConstructRespBinary(body, maxPayload)
			if err != nil {
				return err
			}
			*out.(*ConstructResponse) = *decoded
			return nil
		case kindLocalizeResp:
			decoded, err := decodeLocalizeRespBinary(body, maxPayload)
			if err != nil {
				return err
			}
			*out.(*LocalizeResponse) = *decoded
			return nil
		}
	}
	return json.Unmarshal(body, out)
}

// post runs one idempotent round trip with bounded retries, in the codec
// negotiation selected. A transport failure retries; any HTTP response —
// success or structured error — is final, because the shard has already
// spoken. Responses are bounded by MaxResponseBytes: an oversized one is
// a final error, like any other corrupt response. A nonzero cycle rides in
// the X-Detector-Cycle header — observability only, never in the payload.
//
// compressible marks the payload as eligible for the negotiated
// compression scheme (the localize path). When active, the request body
// ships gzip above compressMinBytes with Content-Encoding set, and the
// request carries an explicit Accept-Encoding: gzip — which switches off
// Go's transparent response decompression, so this client owns both
// directions: the wire counters then measure what actually crossed, not
// what the transport silently inflated.
func (c *Client) post(path string, cycle uint64, reqBody any, respKind byte, compressible bool, out any) error {
	body, contentType, err := c.encodeRequest(reqBody)
	if err != nil {
		return fmt.Errorf("shardrpc %d: encode %s: %w", c.id, path, err)
	}
	gz := compressible && c.Compression() == CompressionGzip
	encoding := ""
	if gz {
		rawLen := int64(len(body))
		if rawLen >= compressMinBytes {
			body = gzipBytes(body)
			encoding = CompressionGzip
		}
		localizeRawBytes.Add(rawLen)
		localizeWireBytes.Add(int64(len(body)))
	} else if compressible {
		// Compression off or never negotiated: raw == wire, so the
		// counter pair still yields a truthful (1.0) ratio.
		localizeRawBytes.Add(int64(len(body)))
		localizeWireBytes.Add(int64(len(body)))
	}
	var lastErr error
	for attempt := 0; attempt < c.att; attempt++ {
		if attempt > 0 {
			c.retries.Inc()
		}
		c.requests.Inc()
		req, err := http.NewRequestWithContext(c.traceContext(context.Background()),
			http.MethodPost, c.base+path, bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("shardrpc %d: %s: %w", c.id, path, err)
		}
		req.Header.Set("Content-Type", contentType)
		if encoding != "" {
			req.Header.Set("Content-Encoding", encoding)
		}
		if gz {
			req.Header.Set("Accept-Encoding", CompressionGzip)
		}
		if cycle != 0 {
			req.Header.Set(obs.CycleHeader, strconv.FormatUint(cycle, 10))
		}
		if !c.wireCount {
			// Payload-level fallback accounting: the attempt's request
			// body counts whether or not the shard answers — failed
			// attempts move bytes too.
			c.bytesOut.Add(int64(len(body)))
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("shardrpc %d: %s: %w", c.id, path, err)
			continue
		}
		respBody, over, err := readBounded(resp.Body, c.maxResp)
		resp.Body.Close()
		if err != nil {
			lastErr = fmt.Errorf("shardrpc %d: %s: read response: %w", c.id, path, err)
			continue
		}
		if !c.wireCount {
			c.bytesIn.Add(int64(len(respBody)))
		}
		if over {
			return fmt.Errorf("shardrpc %d: %s: response exceeds %d bytes — refusing to buffer a runaway shard reply",
				c.id, path, c.maxResp)
		}
		if resp.StatusCode != http.StatusOK {
			var eb httpx.ErrorBody
			if json.Unmarshal(respBody, &eb) == nil && eb.Error != "" {
				return fmt.Errorf("shardrpc %d: %s: %s: %s", c.id, path, resp.Status, eb.Error)
			}
			return fmt.Errorf("shardrpc %d: %s: status %s", c.id, path, resp.Status)
		}
		if resp.Header.Get("Content-Encoding") == CompressionGzip {
			// Only reachable when this client sent Accept-Encoding itself
			// (transparent transport decompression strips the header), so
			// the bound mirrors the request-side bomb guard.
			respBody, err = gunzipBounded(respBody, c.maxResp)
			if err != nil {
				return fmt.Errorf("shardrpc %d: %s: decompress response: %w", c.id, path, err)
			}
		}
		if err := decodeResponse(resp, respBody, respKind, c.maxResp, out); err != nil {
			return fmt.Errorf("shardrpc %d: %s: decode response: %w", c.id, path, err)
		}
		return nil
	}
	return lastErr
}

// Construct dispatches one construction work order over the wire. The
// coordinator's cycle ID (req.Cycle) travels as a header, not payload.
func (c *Client) Construct(req shard.ConstructRequest) (*pmc.Result, error) {
	var resp ConstructResponse
	if err := c.post("/v1/construct", req.Cycle, encodeConstruct(req), kindConstructResp, false, &resp); err != nil {
		return nil, err
	}
	if resp.V != SchemaVersion {
		return nil, fmt.Errorf("shardrpc %d: construct response schema v%d, want v%d", c.id, resp.V, SchemaVersion)
	}
	return &pmc.Result{
		Selected: resp.Selected,
		Stats: pmc.Stats{
			Components: resp.Stats.Components, Candidates: resp.Stats.Candidates,
			ScoreEvals: resp.Stats.ScoreEvals, Reseeds: resp.Stats.Reseeds,
			Selected: resp.Stats.Selected, Elapsed: time.Duration(resp.Stats.ElapsedNS),
			CoverageMet: resp.Stats.CoverageMet, IdentMet: resp.Stats.IdentMet,
		},
	}, nil
}

// Localize ships one routed sub-matrix window to the shard and decodes the
// verdicts. The caller's cycle ID travels as a header, not payload.
func (c *Client) Localize(cycle uint64, sub *route.Probes, observations []pll.Observation, cfg pll.Config) (*pll.Result, error) {
	var resp LocalizeResponse
	if err := c.post("/v1/localize", cycle, encodeLocalize(sub, observations, cfg), kindLocalizeResp, true, &resp); err != nil {
		return nil, err
	}
	if resp.V != SchemaVersion {
		return nil, fmt.Errorf("shardrpc %d: localize response schema v%d, want v%d", c.id, resp.V, SchemaVersion)
	}
	res := &pll.Result{
		LossyPaths:       resp.LossyPaths,
		UnexplainedPaths: resp.UnexplainedPaths,
		Elapsed:          time.Duration(resp.ElapsedNS),
	}
	for _, v := range resp.Bad {
		res.Bad = append(res.Bad, pll.Verdict{Link: v.Link, Rate: v.Rate, Explained: v.Explained})
	}
	return res, nil
}

// Interface conformance: a Client is a shard.ShardClient that reports its
// wire codec and compression scheme.
var (
	_ shard.ShardClient         = (*Client)(nil)
	_ shard.CodecReporter       = (*Client)(nil)
	_ shard.CompressionReporter = (*Client)(nil)
)
