package shardrpc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/detector-net/detector/internal/httpx"
	"github.com/detector-net/detector/internal/metrics"
	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/shard"
)

// ClientOptions tunes a transport client.
type ClientOptions struct {
	// HTTPClient overrides the default (30 s total-request timeout —
	// construction on a big component takes seconds, so this is a
	// hung-shard bound, not a latency bound).
	HTTPClient *http.Client
	// Attempts is how many times an idempotent call is tried before the
	// dispatch is reported failed (default 2: one retry). Construction
	// and localization are pure computations, so a retry can never
	// double-apply anything.
	Attempts int
}

// Client drives one remote shard service and implements shard.ShardClient,
// so a coordinator treats it exactly like an in-process shard. Per-shard
// operational counters (requests, bytes in/out, retries) register in
// internal/metrics and surface at every service's GET /metrics.
type Client struct {
	id   int
	base string
	hc   *http.Client
	att  int

	mu          sync.Mutex
	expectSet   bool
	expectSig   uint64
	expectLinks int

	requests *metrics.Counter
	retries  *metrics.Counter
	bytesIn  *metrics.Counter
	bytesOut *metrics.Counter
}

// Dial builds a client for the shard service at baseURL, serving
// coordinator slot id. No connection is made until the first call.
func Dial(id int, baseURL string, opt ClientOptions) *Client {
	hc := opt.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	att := opt.Attempts
	if att <= 0 {
		att = 2
	}
	return &Client{
		id: id, base: baseURL, hc: hc, att: att,
		requests: metrics.NewCounter(fmt.Sprintf("shardrpc_client_%d_requests", id)),
		retries:  metrics.NewCounter(fmt.Sprintf("shardrpc_client_%d_retries", id)),
		bytesIn:  metrics.NewCounter(fmt.Sprintf("shardrpc_client_%d_bytes_in", id)),
		bytesOut: metrics.NewCounter(fmt.Sprintf("shardrpc_client_%d_bytes_out", id)),
	}
}

// ID returns the coordinator slot this client serves.
func (c *Client) ID() int { return c.id }

// Addr returns the shard service's base URL.
func (c *Client) Addr() string { return c.base }

// Close releases idle connections.
func (c *Client) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

// ExpectMatrix pins the engine fingerprint the coordinator derived for
// itself (shard.MatrixChecker): every subsequent Ping verifies the shard
// reports the same matrix signature and link count, so a wrong-topology
// shard fails liveness instead of reporting healthy and failing work.
func (c *Client) ExpectMatrix(sig uint64, numLinks int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expectSet = true
	c.expectSig = sig
	c.expectLinks = numLinks
}

// Ping probes the shard service's liveness endpoint.
func (c *Client) Ping() error {
	c.requests.Inc()
	resp, err := c.hc.Get(c.base + "/v1/ping")
	if err != nil {
		return fmt.Errorf("shardrpc %d: ping %s: %w", c.id, c.base, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if err != nil {
		return fmt.Errorf("shardrpc %d: ping read: %w", c.id, err)
	}
	c.bytesIn.Add(int64(len(body)))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shardrpc %d: ping status %s", c.id, resp.Status)
	}
	var pr PingResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		return fmt.Errorf("shardrpc %d: ping body: %w", c.id, err)
	}
	if pr.V != SchemaVersion {
		return fmt.Errorf("shardrpc %d: shard speaks schema v%d, client v%d", c.id, pr.V, SchemaVersion)
	}
	c.mu.Lock()
	expectSet, expectSig, expectLinks := c.expectSet, c.expectSig, c.expectLinks
	c.mu.Unlock()
	if expectSet && (pr.MatrixSig != expectSig || pr.NumLinks != expectLinks) {
		return fmt.Errorf("shardrpc %d: shard engine mismatch: matrix sig %#016x/%d links, coordinator expects %#016x/%d — built for a different topology?",
			c.id, pr.MatrixSig, pr.NumLinks, expectSig, expectLinks)
	}
	return nil
}

// post runs one idempotent JSON round trip with bounded retries. A
// transport failure retries; any HTTP response — success or structured
// error — is final, because the shard has already spoken.
func (c *Client) post(path string, req, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("shardrpc %d: encode %s: %w", c.id, path, err)
	}
	var lastErr error
	for attempt := 0; attempt < c.att; attempt++ {
		if attempt > 0 {
			c.retries.Inc()
		}
		c.requests.Inc()
		resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = fmt.Errorf("shardrpc %d: %s: %w", c.id, path, err)
			continue
		}
		c.bytesOut.Add(int64(len(body)))
		respBody, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = fmt.Errorf("shardrpc %d: %s: read response: %w", c.id, path, err)
			continue
		}
		c.bytesIn.Add(int64(len(respBody)))
		if resp.StatusCode != http.StatusOK {
			var eb httpx.ErrorBody
			if json.Unmarshal(respBody, &eb) == nil && eb.Error != "" {
				return fmt.Errorf("shardrpc %d: %s: %s: %s", c.id, path, resp.Status, eb.Error)
			}
			return fmt.Errorf("shardrpc %d: %s: status %s", c.id, path, resp.Status)
		}
		if err := json.Unmarshal(respBody, out); err != nil {
			return fmt.Errorf("shardrpc %d: %s: decode response: %w", c.id, path, err)
		}
		return nil
	}
	return lastErr
}

// Construct dispatches one construction work order over the wire.
func (c *Client) Construct(req shard.ConstructRequest) (*pmc.Result, error) {
	var resp ConstructResponse
	if err := c.post("/v1/construct", encodeConstruct(req), &resp); err != nil {
		return nil, err
	}
	if resp.V != SchemaVersion {
		return nil, fmt.Errorf("shardrpc %d: construct response schema v%d, want v%d", c.id, resp.V, SchemaVersion)
	}
	return &pmc.Result{
		Selected: resp.Selected,
		Stats: pmc.Stats{
			Components: resp.Stats.Components, Candidates: resp.Stats.Candidates,
			ScoreEvals: resp.Stats.ScoreEvals, Reseeds: resp.Stats.Reseeds,
			Selected: resp.Stats.Selected, Elapsed: time.Duration(resp.Stats.ElapsedNS),
			CoverageMet: resp.Stats.CoverageMet, IdentMet: resp.Stats.IdentMet,
		},
	}, nil
}

// Localize ships one routed sub-matrix window to the shard and decodes the
// verdicts.
func (c *Client) Localize(sub *route.Probes, obs []pll.Observation, cfg pll.Config) (*pll.Result, error) {
	var resp LocalizeResponse
	if err := c.post("/v1/localize", encodeLocalize(sub, obs, cfg), &resp); err != nil {
		return nil, err
	}
	if resp.V != SchemaVersion {
		return nil, fmt.Errorf("shardrpc %d: localize response schema v%d, want v%d", c.id, resp.V, SchemaVersion)
	}
	res := &pll.Result{
		LossyPaths:       resp.LossyPaths,
		UnexplainedPaths: resp.UnexplainedPaths,
		Elapsed:          time.Duration(resp.ElapsedNS),
	}
	for _, v := range resp.Bad {
		res.Bad = append(res.Bad, pll.Verdict{Link: v.Link, Rate: v.Rate, Explained: v.Explained})
	}
	return res, nil
}

// Interface conformance: a Client is a shard.ShardClient.
var _ shard.ShardClient = (*Client)(nil)
