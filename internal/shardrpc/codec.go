// Package shardrpc runs a controller shard as a standalone network
// service: an HTTP transport behind the shard.ShardClient interface, so
// the same coordinator that drives in-process shards drives shards on
// other machines with no code change above the interface. Two codecs
// share the wire — the v1 JSON schemas below, and a v2 length-prefixed
// varint-delta binary codec (binary.go) negotiated at ping time and
// selected per request via Content-Type, so mixed-version fleets keep
// working while the binary codec cuts the dominant construct payload by
// roughly 5× (ARCHITECTURE.md has the measured table).
//
// The paper's component decomposition (§4.3, Observation 1) is what makes
// this wire-cheap: component slices out, selections and verdicts back are
// the only traffic — the candidate matrix itself never moves. Both ends
// derive it independently from the topology and agree via
// route.MatrixSignature, which every construction request carries.
//
// Wire schemas are versioned (SchemaVersion) and every decoded payload is
// bounded and validated (Limits): a truncated, oversized or out-of-range
// payload gets a structured 4xx and a metrics bump, never a panic or a
// silently wrong answer.
package shardrpc

import (
	"fmt"
	"sort"

	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/shard"
	"github.com/detector-net/detector/internal/topo"
)

// SchemaVersion is the wire-schema version stamped on every request and
// response. A server answers a mismatched version with 400 rather than
// guessing at field semantics.
const SchemaVersion = 1

// Limits bounds every payload a server will decode. The zero value is
// unusable; use DefaultLimits.
type Limits struct {
	// MaxBodyBytes caps the request body (enforced before JSON decode).
	MaxBodyBytes int64
	// MaxComponents caps components per construction request.
	MaxComponents int
	// MaxPaths caps probe paths per localization request.
	MaxPaths int
	// MaxLinksPerPath caps the link set of one probe path.
	MaxLinksPerPath int
	// MaxObservations caps observations per localization request.
	MaxObservations int
	// MaxNumLinks caps a localize request's link-ID space: decode
	// allocates O(num_links) index memory, so the field cannot be left to
	// the sender.
	MaxNumLinks int
	// MaxPMCElements caps the MaxElements a construct request may carry:
	// that option sizes the shard's refinement universe, so an unbounded
	// value would let a sick coordinator disable the engine's own memory
	// guard and OOM the shard.
	MaxPMCElements int
}

// DefaultLimits is sized for the paper's largest reproduced topologies
// (Fattree(24): ~12M candidate paths across 12 components) with headroom,
// while still rejecting a runaway or hostile payload long before it can
// exhaust memory.
func DefaultLimits() Limits {
	return Limits{
		MaxBodyBytes:    256 << 20,
		MaxComponents:   1 << 20,
		MaxPaths:        1 << 24,
		MaxLinksPerPath: 64,
		MaxObservations: 1 << 24,
		MaxNumLinks:     1 << 24,
		MaxPMCElements:  pmc.DefaultMaxElements,
	}
}

// PingResponse is the liveness probe's body: enough for a coordinator (or
// an operator's curl) to check that the shard's engine matches its own.
type PingResponse struct {
	V         int    `json:"v"`
	MatrixSig uint64 `json:"matrix_sig,string"`
	NumLinks  int    `json:"num_links"`
	Paths     int    `json:"paths"`
	// Codecs lists the wire codecs the shard accepts ("json", "binary").
	// A v1 service omits the field, which a client reads as JSON-only —
	// this is the whole negotiation: the server advertises, the client
	// picks the cheapest codec both ends speak.
	Codecs []string `json:"codecs,omitempty"`
	// Compressions lists the per-message compressions the shard accepts
	// on the localize path ("gzip"); identity is always implied. Same
	// ladder as Codecs: an older service omits the field and the client
	// ships identity.
	Compressions []string `json:"compressions,omitempty"`
}

// Component is one independent subproblem on the wire: global link IDs and
// candidate-path indices, both ascending (the canonical form
// route.DecomposeCSR produces; servers reject anything else).
type Component struct {
	Links []topo.LinkID `json:"links"`
	Paths []int32       `json:"paths"`
}

// PMCOptions is pmc.Options on the wire.
type PMCOptions struct {
	Alpha       int  `json:"alpha"`
	Beta        int  `json:"beta"`
	Lazy        bool `json:"lazy,omitempty"`
	Symmetry    bool `json:"symmetry,omitempty"`
	NoEvenness  bool `json:"no_evenness,omitempty"`
	Workers     int  `json:"workers,omitempty"`
	MaxElements int  `json:"max_elements,omitempty"`
}

// ConstructRequest is one shard's work order for a construction cycle.
type ConstructRequest struct {
	V         int         `json:"v"`
	MatrixSig uint64      `json:"matrix_sig,string"`
	NumLinks  int         `json:"num_links"`
	Opt       PMCOptions  `json:"opt"`
	Comps     []Component `json:"comps"`
}

// Stats is pmc.Stats on the wire.
type Stats struct {
	Components  int   `json:"components"`
	Candidates  int   `json:"candidates"`
	ScoreEvals  int64 `json:"score_evals"`
	Reseeds     int   `json:"reseeds"`
	Selected    int   `json:"selected"`
	ElapsedNS   int64 `json:"elapsed_ns"`
	CoverageMet bool  `json:"coverage_met"`
	IdentMet    bool  `json:"ident_met"`
}

// ConstructResponse carries the shard's selection back: candidate-path
// indices, sorted, exactly as pmc.ConstructComponents returns them.
type ConstructResponse struct {
	V        int   `json:"v"`
	Selected []int `json:"selected"`
	Stats    Stats `json:"stats"`
}

// Path is one probe path of a routed sub-matrix: global link IDs plus the
// endpoints PLL needs for its unhealthy-server filter.
type Path struct {
	Links []topo.LinkID `json:"links"`
	Src   topo.NodeID   `json:"src"`
	Dst   topo.NodeID   `json:"dst"`
}

// Observation is one probe path's window counters.
type Observation struct {
	Path int `json:"path"`
	Sent int `json:"sent"`
	Lost int `json:"lost"`
}

// PLLConfig is pll.Config on the wire; Unhealthy is the sorted slice form
// of the set.
type PLLConfig struct {
	HitRatio       float64       `json:"hit_ratio"`
	LossRatioFloor float64       `json:"loss_ratio_floor"`
	MinLoss        int           `json:"min_loss"`
	BaselineRate   float64       `json:"baseline_rate,omitempty"`
	Significance   float64       `json:"significance,omitempty"`
	Unhealthy      []topo.NodeID `json:"unhealthy,omitempty"`
	Workers        int           `json:"workers,omitempty"`
}

// LocalizeRequest ships one shard's routed window: the sub-matrix it owns
// plus the observations routed to it. Unlike construction, localization
// needs no matrix signature — the sub-matrix travels inline.
type LocalizeRequest struct {
	V        int           `json:"v"`
	NumLinks int           `json:"num_links"`
	Paths    []Path        `json:"paths"`
	Obs      []Observation `json:"obs"`
	Cfg      PLLConfig     `json:"cfg"`
}

// Verdict is one localized link on the wire.
type Verdict struct {
	Link      topo.LinkID `json:"link"`
	Rate      float64     `json:"rate"`
	Explained int         `json:"explained"`
}

// LocalizeResponse carries the shard's verdicts back.
type LocalizeResponse struct {
	V                int       `json:"v"`
	Bad              []Verdict `json:"bad"`
	LossyPaths       int       `json:"lossy_paths"`
	UnexplainedPaths int       `json:"unexplained_paths"`
	ElapsedNS        int64     `json:"elapsed_ns"`
}

// encodeConstruct translates the coordinator's work order to the wire.
func encodeConstruct(req shard.ConstructRequest) ConstructRequest {
	out := ConstructRequest{
		V:         SchemaVersion,
		MatrixSig: req.MatrixSig,
		NumLinks:  req.NumLinks,
		Opt: PMCOptions{
			Alpha: req.Opt.Alpha, Beta: req.Opt.Beta,
			Lazy: req.Opt.Lazy, Symmetry: req.Opt.Symmetry,
			NoEvenness: req.Opt.NoEvenness,
			Workers:    req.Opt.Workers, MaxElements: req.Opt.MaxElements,
		},
		Comps: make([]Component, len(req.Comps)),
	}
	for i, c := range req.Comps {
		out.Comps[i] = Component{Links: c.Links, Paths: c.Paths}
	}
	return out
}

// decodeOptions translates wire options back to pmc.Options (Decompose is
// meaningless here: the coordinator already chose the partition).
func (o PMCOptions) decode() pmc.Options {
	return pmc.Options{
		Alpha: o.Alpha, Beta: o.Beta,
		Lazy: o.Lazy, Symmetry: o.Symmetry, NoEvenness: o.NoEvenness,
		Workers: o.Workers, MaxElements: o.MaxElements,
	}
}

// validate checks a construction request against the server's engine. The
// signature check is separate (it maps to 409, not 400).
func (r *ConstructRequest) validate(lim Limits, numLinks, numPaths int) error {
	if r.V != SchemaVersion {
		return fmt.Errorf("unsupported schema version %d (want %d)", r.V, SchemaVersion)
	}
	if r.NumLinks != numLinks {
		return fmt.Errorf("num_links %d does not match engine %d", r.NumLinks, numLinks)
	}
	if len(r.Comps) > lim.MaxComponents {
		return fmt.Errorf("%d components exceed limit %d", len(r.Comps), lim.MaxComponents)
	}
	if r.Opt.MaxElements < 0 || r.Opt.MaxElements > lim.MaxPMCElements {
		return fmt.Errorf("opt.max_elements %d outside [0,%d] — the shard's refinement memory guard is not negotiable",
			r.Opt.MaxElements, lim.MaxPMCElements)
	}
	if r.Opt.Workers < 0 {
		return fmt.Errorf("opt.workers %d must be non-negative", r.Opt.Workers)
	}
	for ci, c := range r.Comps {
		if len(c.Links) == 0 || len(c.Paths) == 0 {
			return fmt.Errorf("component %d is empty", ci)
		}
		for i, l := range c.Links {
			if l < 0 || int(l) >= numLinks {
				return fmt.Errorf("component %d: link %d out of range [0,%d)", ci, l, numLinks)
			}
			if i > 0 && c.Links[i-1] >= l {
				return fmt.Errorf("component %d: links not strictly ascending at index %d", ci, i)
			}
		}
		for i, p := range c.Paths {
			if p < 0 || int(p) >= numPaths {
				return fmt.Errorf("component %d: path %d out of range [0,%d)", ci, p, numPaths)
			}
			if i > 0 && c.Paths[i-1] >= p {
				return fmt.Errorf("component %d: paths not strictly ascending at index %d", ci, i)
			}
		}
	}
	return nil
}

// validate bounds a localization request.
func (r *LocalizeRequest) validate(lim Limits) error {
	if r.V != SchemaVersion {
		return fmt.Errorf("unsupported schema version %d (want %d)", r.V, SchemaVersion)
	}
	if r.NumLinks <= 0 || r.NumLinks > lim.MaxNumLinks {
		return fmt.Errorf("num_links %d outside [1,%d]", r.NumLinks, lim.MaxNumLinks)
	}
	if len(r.Paths) > lim.MaxPaths {
		return fmt.Errorf("%d paths exceed limit %d", len(r.Paths), lim.MaxPaths)
	}
	if len(r.Obs) > lim.MaxObservations {
		return fmt.Errorf("%d observations exceed limit %d", len(r.Obs), lim.MaxObservations)
	}
	for i, p := range r.Paths {
		if len(p.Links) > lim.MaxLinksPerPath {
			return fmt.Errorf("path %d: %d links exceed limit %d", i, len(p.Links), lim.MaxLinksPerPath)
		}
		for _, l := range p.Links {
			if l < 0 || int(l) >= r.NumLinks {
				return fmt.Errorf("path %d: link %d out of range [0,%d)", i, l, r.NumLinks)
			}
		}
	}
	for i, o := range r.Obs {
		if o.Path < 0 || o.Path >= len(r.Paths) {
			return fmt.Errorf("observation %d: path %d out of range [0,%d)", i, o.Path, len(r.Paths))
		}
		if o.Sent < 0 || o.Lost < 0 || o.Lost > o.Sent {
			return fmt.Errorf("observation %d (path %d): impossible counters sent=%d lost=%d",
				i, o.Path, o.Sent, o.Lost)
		}
	}
	return nil
}

// encodeLocalize translates a routed sub-matrix window to the wire.
func encodeLocalize(sub *route.Probes, obs []pll.Observation, cfg pll.Config) LocalizeRequest {
	req := LocalizeRequest{
		V:        SchemaVersion,
		NumLinks: sub.NumLinks,
		Paths:    make([]Path, sub.NumPaths()),
		Obs:      make([]Observation, len(obs)),
		Cfg: PLLConfig{
			HitRatio: cfg.HitRatio, LossRatioFloor: cfg.LossRatioFloor,
			MinLoss: cfg.MinLoss, BaselineRate: cfg.BaselineRate,
			Significance: cfg.Significance, Workers: cfg.Workers,
		},
	}
	for i := range req.Paths {
		req.Paths[i] = Path{Links: sub.PathLinks[i], Src: sub.Src[i], Dst: sub.Dst[i]}
	}
	for i, o := range obs {
		req.Obs[i] = Observation{Path: o.Path, Sent: o.Sent, Lost: o.Lost}
	}
	for n := range cfg.Unhealthy {
		if cfg.Unhealthy[n] {
			req.Cfg.Unhealthy = append(req.Cfg.Unhealthy, n)
		}
	}
	sort.Slice(req.Cfg.Unhealthy, func(i, j int) bool { return req.Cfg.Unhealthy[i] < req.Cfg.Unhealthy[j] })
	return req
}

// decode rebuilds the localization inputs from the wire.
func (r *LocalizeRequest) decode() (*route.Probes, []pll.Observation, pll.Config) {
	links := make([][]topo.LinkID, len(r.Paths))
	for i, p := range r.Paths {
		links[i] = p.Links
	}
	sub := route.NewProbesFromLinks(links, r.NumLinks)
	for i, p := range r.Paths {
		sub.Src[i], sub.Dst[i] = p.Src, p.Dst
	}
	obs := make([]pll.Observation, len(r.Obs))
	for i, o := range r.Obs {
		obs[i] = pll.Observation{Path: o.Path, Sent: o.Sent, Lost: o.Lost}
	}
	cfg := pll.Config{
		HitRatio: r.Cfg.HitRatio, LossRatioFloor: r.Cfg.LossRatioFloor,
		MinLoss: r.Cfg.MinLoss, BaselineRate: r.Cfg.BaselineRate,
		Significance: r.Cfg.Significance, Workers: r.Cfg.Workers,
	}
	if len(r.Cfg.Unhealthy) > 0 {
		cfg.Unhealthy = make(map[topo.NodeID]bool, len(r.Cfg.Unhealthy))
		for _, n := range r.Cfg.Unhealthy {
			cfg.Unhealthy[n] = true
		}
	}
	return sub, obs, cfg
}
