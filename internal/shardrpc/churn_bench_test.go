package shardrpc

import (
	"net/http/httptest"
	"testing"
	"time"

	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/shard"
	"github.com/detector-net/detector/internal/topo"
)

// benchChurnWire measures what the coordinator ships over the transport
// for a single-link churn cycle against a full construction cycle, on a
// loopback shard fleet speaking the given codec. With selection reuse on,
// a churn cycle dispatches only the dirty component — so the wire bytes
// out must drop in proportion to the dirty share of the matrix (1 of 8
// components on Fattree(16)), not just the compute. A different link
// churns each iteration so the shard-side memo cannot short-circuit the
// dispatched construction.
func benchChurnWire(b *testing.B, wire string) {
	f := topo.MustFattree(16)
	ps := route.NewFattreePaths(f)
	const shards = 4
	opt := shard.Options{
		Sequential:      true,
		PMC:             pmc.Options{Alpha: 2, Beta: 1, Lazy: true, Workers: 1},
		TTL:             time.Hour,
		ReuseSelections: true,
	}
	var rpcClients []*Client
	for i := 0; i < shards; i++ {
		srv := NewServer(ps, f.NumLinks())
		ts := httptest.NewServer(srv.Handler())
		b.Cleanup(ts.Close)
		cl := Dial(i, ts.URL, ClientOptions{Wire: wire})
		rpcClients = append(rpcClients, cl)
		opt.Clients = append(opt.Clients, cl)
	}
	c, err := shard.New(ps, f.NumLinks(), opt)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()
	sumOut := func() (total int64) {
		for _, cl := range rpcClients {
			total += cl.bytesOut.Value()
		}
		return total
	}

	// Cold full cycle: every component dispatched.
	before := sumOut()
	if _, err := c.Construct(); err != nil {
		b.Fatal(err)
	}
	fullBytes := sumOut() - before

	links := f.SwitchLinks()
	b.ResetTimer()
	var churnBytes int64
	for i := 0; i < b.N; i++ {
		l := links[i%len(links)]
		if _, err := c.ApplyChurn([]topo.LinkID{l}, nil); err != nil {
			b.Fatal(err)
		}
		before := sumOut()
		if _, err := c.Construct(); err != nil {
			b.Fatal(err)
		}
		churnBytes = sumOut() - before
		if _, err := c.ApplyChurn(nil, []topo.LinkID{l}); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Construct(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(fullBytes)/1e6, "full-wire-MB-out")
	b.ReportMetric(float64(churnBytes)/1e6, "churn-wire-MB-out")
	if fullBytes > 0 {
		b.ReportMetric(float64(churnBytes)/float64(fullBytes), "churn-vs-full-wire-ratio")
	}
}

// BenchmarkChurnWireFattree16 reports the wire cost of a single-link churn
// cycle next to a full cycle for both codecs. The ratio is the delta
// pipeline's transport win: near 1/8 on Fattree(16) (one dirty component
// of eight, plus fixed per-request overhead).
func BenchmarkChurnWireFattree16(b *testing.B) {
	b.Run("loopback-binary", func(b *testing.B) { benchChurnWire(b, WireBinary) })
	b.Run("loopback-json", func(b *testing.B) { benchChurnWire(b, WireJSON) })
}
