package shardrpc

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

// randAscending draws n distinct ascending values in [0, max).
func randAscending(r *rand.Rand, n, max int) []int64 {
	if n > max {
		n = max
	}
	seen := make(map[int64]bool, n)
	out := make([]int64, 0, n)
	for len(out) < n {
		v := int64(r.Intn(max))
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	// Insertion sort is fine at test sizes.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

func randConstructRequest(r *rand.Rand) ConstructRequest {
	req := ConstructRequest{
		V:         SchemaVersion,
		MatrixSig: r.Uint64(),
		NumLinks:  1 + r.Intn(1000),
		Opt: PMCOptions{
			Alpha: r.Intn(4), Beta: r.Intn(3),
			Lazy: r.Intn(2) == 0, Symmetry: r.Intn(2) == 0, NoEvenness: r.Intn(2) == 0,
			Workers: r.Intn(8), MaxElements: r.Intn(1 << 20),
		},
	}
	for c := r.Intn(4); c > 0; c-- {
		links := randAscending(r, 1+r.Intn(20), math.MaxInt32)
		paths := randAscending(r, 1+r.Intn(50), math.MaxInt32)
		comp := Component{Links: int64ToLinks(links)}
		comp.Paths = make([]int32, len(paths))
		for i, p := range paths {
			comp.Paths[i] = int32(p)
		}
		req.Comps = append(req.Comps, comp)
	}
	return req
}

func randConstructResponse(r *rand.Rand) ConstructResponse {
	resp := ConstructResponse{
		V: SchemaVersion,
		Stats: Stats{
			Components: r.Intn(100), Candidates: r.Intn(1 << 20),
			ScoreEvals: int64(r.Uint64() >> 1), Reseeds: r.Intn(100),
			Selected: r.Intn(1 << 16), ElapsedNS: int64(r.Uint64() >> 1),
			CoverageMet: r.Intn(2) == 0, IdentMet: r.Intn(2) == 0,
		},
	}
	if sel := randAscending(r, r.Intn(100), math.MaxInt32); len(sel) > 0 {
		resp.Selected = make([]int, len(sel))
		for i, s := range sel {
			resp.Selected[i] = int(s)
		}
	}
	return resp
}

func randLocalizeRequest(r *rand.Rand) LocalizeRequest {
	req := LocalizeRequest{
		V:        SchemaVersion,
		NumLinks: 1 + r.Intn(1<<20),
		Cfg: PLLConfig{
			HitRatio:       r.Float64(),
			LossRatioFloor: r.Float64() / 100,
			MinLoss:        r.Intn(10),
			BaselineRate:   r.Float64() / 1000,
			Significance:   r.Float64(),
			Workers:        r.Intn(8),
		},
	}
	for p := r.Intn(8); p > 0; p-- {
		// Route-ordered links: no ordering guarantee on the wire.
		links := make([]topo.LinkID, 1+r.Intn(8))
		for i := range links {
			links[i] = topo.LinkID(r.Intn(math.MaxInt32))
		}
		req.Paths = append(req.Paths, Path{
			Links: links,
			Src:   topo.NodeID(r.Intn(math.MaxInt32)),
			Dst:   topo.NodeID(r.Intn(math.MaxInt32)),
		})
	}
	if len(req.Paths) > 0 {
		for o := r.Intn(12); o > 0; o-- {
			sent := r.Intn(1000)
			req.Obs = append(req.Obs, Observation{
				Path: r.Intn(len(req.Paths)), Sent: sent, Lost: r.Intn(sent + 1),
			})
		}
	}
	if unh := randAscending(r, r.Intn(5), math.MaxInt32); len(unh) > 0 {
		req.Cfg.Unhealthy = make([]topo.NodeID, len(unh))
		for i, n := range unh {
			req.Cfg.Unhealthy[i] = topo.NodeID(n)
		}
	}
	return req
}

func randLocalizeResponse(r *rand.Rand) LocalizeResponse {
	resp := LocalizeResponse{
		V:                SchemaVersion,
		LossyPaths:       r.Intn(1 << 20),
		UnexplainedPaths: r.Intn(1 << 10),
		ElapsedNS:        int64(r.Uint64() >> 1),
	}
	for _, l := range randAscending(r, r.Intn(6), math.MaxInt32) {
		resp.Bad = append(resp.Bad, Verdict{
			Link: topo.LinkID(l), Rate: r.Float64(), Explained: r.Intn(1 << 16),
		})
	}
	return resp
}

func randReport(r *rand.Rand) Report {
	rep := Report{
		Node:    topo.NodeID(r.Intn(math.MaxInt32)),
		Version: r.Intn(1 << 20),
		EndNS:   int64(r.Uint64() >> 1),
	}
	var pathID uint32
	for n := r.Intn(12); n > 0; n-- {
		// Nearly ascending path IDs with occasional jumps, as pinglists
		// produce.
		pathID += uint32(r.Intn(100))
		sent := r.Intn(1000)
		res := ReportResult{PathID: pathID, Sent: sent, Lost: r.Intn(sent + 1)}
		if r.Intn(4) > 0 {
			res.MeanRTTNS = int64(r.Intn(1 << 30))
			res.JitterNS = int64(r.Intn(1 << 20))
			res.ECNFrac = r.Float64()
		}
		rep.Results = append(rep.Results, res)
	}
	return rep
}

// TestBinaryMatchesJSONRoundTrip is the codec differential: for every
// payload kind, decode(encodeBinary(x)) must equal decode(encodeJSON(x))
// field for field — the binary codec may never perturb a value the JSON
// wire would have carried exactly, floats included.
func TestBinaryMatchesJSONRoundTrip(t *testing.T) {
	const rounds = 300
	r := rand.New(rand.NewSource(42))
	jsonRT := func(in, out any) {
		b, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("json encode: %v", err)
		}
		if err := json.Unmarshal(b, out); err != nil {
			t.Fatalf("json decode: %v", err)
		}
	}
	for i := 0; i < rounds; i++ {
		cr := randConstructRequest(r)
		var viaJSON ConstructRequest
		jsonRT(&cr, &viaJSON)
		viaBin, err := decodeConstructBinary(cr.encodeBinary(), 0)
		if err != nil {
			t.Fatalf("round %d: construct request binary decode: %v", i, err)
		}
		if !reflect.DeepEqual(*viaBin, viaJSON) {
			t.Fatalf("round %d: construct request diverges:\nbinary: %+v\njson:   %+v", i, *viaBin, viaJSON)
		}

		resp := randConstructResponse(r)
		var respJSON ConstructResponse
		jsonRT(&resp, &respJSON)
		respBin, err := decodeConstructRespBinary(resp.encodeBinary(), 0)
		if err != nil {
			t.Fatalf("round %d: construct response binary decode: %v", i, err)
		}
		if !reflect.DeepEqual(*respBin, respJSON) {
			t.Fatalf("round %d: construct response diverges:\nbinary: %+v\njson:   %+v", i, *respBin, respJSON)
		}

		lr := randLocalizeRequest(r)
		var lrJSON LocalizeRequest
		jsonRT(&lr, &lrJSON)
		lrBin, err := decodeLocalizeBinary(lr.encodeBinary(), 0)
		if err != nil {
			t.Fatalf("round %d: localize request binary decode: %v", i, err)
		}
		if !reflect.DeepEqual(*lrBin, lrJSON) {
			t.Fatalf("round %d: localize request diverges:\nbinary: %+v\njson:   %+v", i, *lrBin, lrJSON)
		}

		lresp := randLocalizeResponse(r)
		var lrespJSON LocalizeResponse
		jsonRT(&lresp, &lrespJSON)
		lrespBin, err := decodeLocalizeRespBinary(lresp.encodeBinary(), 0)
		if err != nil {
			t.Fatalf("round %d: localize response binary decode: %v", i, err)
		}
		if !reflect.DeepEqual(*lrespBin, lrespJSON) {
			t.Fatalf("round %d: localize response diverges:\nbinary: %+v\njson:   %+v", i, *lrespBin, lrespJSON)
		}

		rep := randReport(r)
		var repJSON Report
		jsonRT(&rep, &repJSON)
		repBin, err := DecodeReportBinary(rep.EncodeBinary(), 0)
		if err != nil {
			t.Fatalf("round %d: report binary decode: %v", i, err)
		}
		if !reflect.DeepEqual(*repBin, repJSON) {
			t.Fatalf("round %d: report diverges:\nbinary: %+v\njson:   %+v", i, *repBin, repJSON)
		}
	}
}

// TestBinaryGoldenEdgeCases pins the awkward corners: empty payloads,
// int32 extremes, exact float bit patterns.
func TestBinaryGoldenEdgeCases(t *testing.T) {
	empty := ConstructRequest{V: SchemaVersion}
	got, err := decodeConstructBinary(empty.encodeBinary(), 0)
	if err != nil {
		t.Fatalf("empty construct: %v", err)
	}
	if !reflect.DeepEqual(*got, empty) {
		t.Fatalf("empty construct round trip: %+v", *got)
	}

	extreme := ConstructRequest{
		V: SchemaVersion, MatrixSig: math.MaxUint64, NumLinks: math.MaxInt32,
		Opt: PMCOptions{Alpha: math.MaxInt32, Beta: math.MaxInt32, Workers: math.MaxInt32, MaxElements: math.MaxInt32},
		Comps: []Component{{
			Links: []topo.LinkID{0, 1, math.MaxInt32 - 1},
			Paths: []int32{0, math.MaxInt32 - 1},
		}},
	}
	got, err = decodeConstructBinary(extreme.encodeBinary(), 0)
	if err != nil {
		t.Fatalf("extreme construct: %v", err)
	}
	if !reflect.DeepEqual(*got, extreme) {
		t.Fatalf("extreme construct round trip: %+v", *got)
	}

	// The float that famously does not survive a decimal detour at low
	// precision; the codec carries raw bits, so equality is exact.
	lr := LocalizeRequest{V: SchemaVersion, NumLinks: 1, Cfg: PLLConfig{
		HitRatio: 0.1 + 0.2, LossRatioFloor: math.SmallestNonzeroFloat64,
		BaselineRate: math.MaxFloat64, Significance: -0.0,
	}}
	gotLR, err := decodeLocalizeBinary(lr.encodeBinary(), 0)
	if err != nil {
		t.Fatalf("float localize: %v", err)
	}
	if math.Float64bits(gotLR.Cfg.HitRatio) != math.Float64bits(lr.Cfg.HitRatio) ||
		math.Float64bits(gotLR.Cfg.LossRatioFloor) != math.Float64bits(lr.Cfg.LossRatioFloor) ||
		math.Float64bits(gotLR.Cfg.BaselineRate) != math.Float64bits(lr.Cfg.BaselineRate) ||
		math.Float64bits(gotLR.Cfg.Significance) != math.Float64bits(lr.Cfg.Significance) {
		t.Fatalf("float bits perturbed: %+v vs %+v", gotLR.Cfg, lr.Cfg)
	}

	// Report extremes: signed latency fields at the int64 edges (malformed
	// on the wire is the validator's problem, not the codec's), awkward
	// ECN float bit patterns, empty results.
	rep := Report{Node: math.MaxInt32, Version: math.MaxInt32, EndNS: math.MinInt64,
		Results: []ReportResult{
			{PathID: math.MaxUint32 >> 1, Sent: math.MaxInt32, Lost: math.MaxInt32,
				MeanRTTNS: math.MinInt64, JitterNS: math.MaxInt64, ECNFrac: math.Copysign(0, -1)},
			{PathID: 0, ECNFrac: math.SmallestNonzeroFloat64},
		}}
	gotRep, err := DecodeReportBinary(rep.EncodeBinary(), 0)
	if err != nil {
		t.Fatalf("extreme report: %v", err)
	}
	if !reflect.DeepEqual(*gotRep, rep) {
		t.Fatalf("extreme report round trip:\ngot:  %+v\nwant: %+v", *gotRep, rep)
	}
	if math.Float64bits(gotRep.Results[0].ECNFrac) != math.Float64bits(rep.Results[0].ECNFrac) {
		t.Fatal("negative-zero ECN fraction bits perturbed")
	}
	emptyRep := Report{}
	if gotRep, err = DecodeReportBinary(emptyRep.EncodeBinary(), 0); err != nil || !reflect.DeepEqual(*gotRep, emptyRep) {
		t.Fatalf("empty report round trip: %+v, %v", *gotRep, err)
	}
}

// TestBinaryConstructCompression pins the codec's reason to exist: on a
// real decomposition the binary construct payload must be a small
// fraction of the JSON one (varint deltas versus decimal digits).
func TestBinaryConstructCompression(t *testing.T) {
	f := topo.MustFattree(8)
	ps := route.NewFattreePaths(f)
	csr := route.MaterializeCSR(ps)
	comps := route.DecomposeCSR(csr, f.NumLinks())
	req := ConstructRequest{
		V: SchemaVersion, MatrixSig: route.MatrixSignature(csr, f.NumLinks()),
		NumLinks: f.NumLinks(), Opt: PMCOptions{Alpha: 2, Beta: 1, Lazy: true},
	}
	for _, c := range comps {
		req.Comps = append(req.Comps, Component{Links: c.Links, Paths: c.Paths})
	}
	jsonBytes, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	binBytes := req.encodeBinary()
	t.Logf("Fattree(8) construct request: JSON %d bytes, binary %d bytes (%.1fx)",
		len(jsonBytes), len(binBytes), float64(len(jsonBytes))/float64(len(binBytes)))
	if len(binBytes)*3 > len(jsonBytes) {
		t.Fatalf("binary construct payload %d bytes is not at least 3x smaller than JSON %d bytes",
			len(binBytes), len(jsonBytes))
	}
	got, err := decodeConstructBinary(binBytes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*got, req) {
		t.Fatal("real decomposition does not round-trip")
	}
}

// postBody is postJSON with an explicit content type.
func postBody(t *testing.T, url, contentType string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestBinaryFramesRejected sweeps the binary ingest guards: truncated,
// garbage, wrong-kind and length-lying frames answer 400; a declared
// length past the body limit answers 413 like an oversized body; an
// unknown content type answers 415 — and a valid frame still works,
// answering in kind.
func TestBinaryFramesRejected(t *testing.T) {
	srv, ts := testServer(t, DefaultLimits())
	valid := ConstructRequest{
		V: SchemaVersion, MatrixSig: srv.MatrixSig(), NumLinks: srv.numLinks,
		Opt: PMCOptions{Alpha: 1, Beta: 1, Lazy: true},
	}
	for _, c := range route.DecomposeCSR(srv.csr, srv.numLinks) {
		valid.Comps = append(valid.Comps, Component{Links: c.Links, Paths: c.Paths})
	}
	frame := valid.encodeBinary()

	t.Run("valid", func(t *testing.T) {
		resp := postBody(t, ts.URL+"/v1/construct", ContentTypeBinary, frame)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("valid binary frame: status %d, want 200 (%s)", resp.StatusCode, errorBody(t, resp))
		}
		if ct := resp.Header.Get("Content-Type"); ct != ContentTypeBinary {
			t.Fatalf("binary request answered with %q, want %q", ct, ContentTypeBinary)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		resp := postBody(t, ts.URL+"/v1/construct", ContentTypeBinary, frame[:len(frame)/2])
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("truncated frame: status %d, want 400", resp.StatusCode)
		}
		if eb := errorBody(t, resp); !strings.Contains(eb, "undecodable") {
			t.Fatalf("truncated frame error %q lacks decode diagnosis", eb)
		}
	})
	t.Run("garbageMagic", func(t *testing.T) {
		bad := append([]byte{0xFF, 0xFE}, frame[2:]...)
		resp := postBody(t, ts.URL+"/v1/construct", ContentTypeBinary, bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("garbage magic: status %d, want 400", resp.StatusCode)
		}
	})
	t.Run("wrongKind", func(t *testing.T) {
		lr := LocalizeRequest{V: SchemaVersion, NumLinks: 1, Cfg: PLLConfig{HitRatio: 0.6}}
		resp := postBody(t, ts.URL+"/v1/construct", ContentTypeBinary, lr.encodeBinary())
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("localize frame at construct endpoint: status %d, want 400", resp.StatusCode)
		}
	})
	t.Run("declaredLengthOverLimit", func(t *testing.T) {
		// A tiny body whose header claims a payload past MaxBodyBytes:
		// the decoder must refuse on the declared length, 413.
		lim := DefaultLimits()
		lim.MaxBodyBytes = 1 << 10
		_, smallTS := testServer(t, lim)
		lying := []byte{frameMagic[0], frameMagic[1], BinaryVersion, kindConstructReq,
			0x80, 0x80, 0x80, 0x10} // uvarint ~32 MB declared
		resp := postBody(t, smallTS.URL+"/v1/construct", ContentTypeBinary, lying)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("length-lying frame: status %d, want 413", resp.StatusCode)
		}
	})
	t.Run("oversizedBody", func(t *testing.T) {
		lim := DefaultLimits()
		lim.MaxBodyBytes = 1 << 10
		_, smallTS := testServer(t, lim)
		resp := postBody(t, smallTS.URL+"/v1/construct", ContentTypeBinary, make([]byte, 1<<12))
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("oversized binary body: status %d, want 413", resp.StatusCode)
		}
	})
	t.Run("unknownContentType", func(t *testing.T) {
		resp := postBody(t, ts.URL+"/v1/construct", "application/x-protobuf", frame)
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Fatalf("unknown content type: status %d, want 415", resp.StatusCode)
		}
	})
}

// FuzzBinaryFrame throws arbitrary bytes at every binary decoder: no
// panic, no unbounded allocation, and anything that does decode must
// re-encode to a frame that decodes to the identical value (canonical
// form is a fixed point).
func FuzzBinaryFrame(f *testing.F) {
	r := rand.New(rand.NewSource(7))
	cr := randConstructRequest(r)
	f.Add(cr.encodeBinary())
	resp := randConstructResponse(r)
	f.Add(resp.encodeBinary())
	lr := randLocalizeRequest(r)
	f.Add(lr.encodeBinary())
	lresp := randLocalizeResponse(r)
	f.Add(lresp.encodeBinary())
	rep := randReport(r)
	f.Add(rep.EncodeBinary())
	sum := randSummary(r)
	f.Add(sum.EncodeBinary())
	f.Add([]byte{frameMagic[0], frameMagic[1], BinaryVersion, kindConstructReq, 0})
	f.Add([]byte{frameMagic[0], frameMagic[1], BinaryVersion, kindReport, 0})
	f.Add([]byte{frameMagic[0], frameMagic[1], BinaryVersion, kindReportSummary, 0})
	f.Add([]byte{0xD7})

	f.Fuzz(func(t *testing.T, data []byte) {
		// The fixed-point check compares canonical re-encodings, not
		// structs: DeepEqual would falsely reject NaN float bits, which
		// the codec (unlike JSON) carries faithfully.
		const maxPayload = 1 << 20
		if req, err := decodeConstructBinary(data, maxPayload); err == nil {
			enc := req.encodeBinary()
			again, err := decodeConstructBinary(enc, 0)
			if err != nil || !bytes.Equal(enc, again.encodeBinary()) {
				t.Fatalf("construct request re-encode not a fixed point: %v", err)
			}
		}
		if resp, err := decodeConstructRespBinary(data, maxPayload); err == nil {
			enc := resp.encodeBinary()
			again, err := decodeConstructRespBinary(enc, 0)
			if err != nil || !bytes.Equal(enc, again.encodeBinary()) {
				t.Fatalf("construct response re-encode not a fixed point: %v", err)
			}
		}
		if req, err := decodeLocalizeBinary(data, maxPayload); err == nil {
			enc := req.encodeBinary()
			again, err := decodeLocalizeBinary(enc, 0)
			if err != nil || !bytes.Equal(enc, again.encodeBinary()) {
				t.Fatalf("localize request re-encode not a fixed point: %v", err)
			}
		}
		if resp, err := decodeLocalizeRespBinary(data, maxPayload); err == nil {
			enc := resp.encodeBinary()
			again, err := decodeLocalizeRespBinary(enc, 0)
			if err != nil || !bytes.Equal(enc, again.encodeBinary()) {
				t.Fatalf("localize response re-encode not a fixed point: %v", err)
			}
		}
		if rep, err := DecodeReportBinary(data, maxPayload); err == nil {
			enc := rep.EncodeBinary()
			again, err := DecodeReportBinary(enc, 0)
			if err != nil || !bytes.Equal(enc, again.EncodeBinary()) {
				t.Fatalf("report re-encode not a fixed point: %v", err)
			}
		}
		if sum, err := DecodeSummaryBinary(data, maxPayload); err == nil {
			enc := sum.EncodeBinary()
			again, err := DecodeSummaryBinary(enc, 0)
			if err != nil || !bytes.Equal(enc, again.EncodeBinary()) {
				t.Fatalf("summary re-encode not a fixed point: %v", err)
			}
		}
	})
}
