package shardrpc

import (
	"net/http/httptest"
	"testing"
	"time"

	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/shard"
	"github.com/detector-net/detector/internal/topo"
)

// benchTransport measures one full distributed construction cycle on
// Fattree(16) — 8 components over 4 shards, Workers 1 per shard,
// Sequential so per-shard elapsed is uncontended — with the shard fleet
// either in-process or behind real loopback HTTP services. The delta
// between the two sub-benchmarks is the transport's whole cost: JSON
// encode of the component slices, the HTTP round trips, and decode of the
// selections. critical-path-ms is the modeled N-machine wall clock.
func benchTransport(b *testing.B, loopback bool) {
	f := topo.MustFattree(16)
	ps := route.NewFattreePaths(f)
	const shards = 4
	opt := shard.Options{
		Shards:     shards,
		Sequential: true,
		PMC:        pmc.Options{Alpha: 2, Beta: 1, Lazy: true, Workers: 1},
		TTL:        time.Hour,
	}
	if loopback {
		opt.Shards = 0
		for i := 0; i < shards; i++ {
			srv := NewServer(ps, f.NumLinks())
			ts := httptest.NewServer(srv.Handler())
			b.Cleanup(ts.Close)
			opt.Clients = append(opt.Clients, Dial(i, ts.URL, ClientOptions{}))
		}
	}
	c, err := shard.New(ps, f.NumLinks(), opt)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()
	b.ResetTimer()
	var crit time.Duration
	for i := 0; i < b.N; i++ {
		res, err := c.Construct()
		if err != nil {
			b.Fatal(err)
		}
		crit = res.CriticalPath
	}
	b.ReportMetric(float64(crit.Microseconds())/1000.0, "critical-path-ms")
}

// BenchmarkTransportFattree16 is the CI smoke for the transport overhead:
// the loopback run must complete and its critical path stays comparable to
// in-process (construction dominates; the wire moves component indices and
// selections, never the matrix).
func BenchmarkTransportFattree16(b *testing.B) {
	b.Run("inproc", func(b *testing.B) { benchTransport(b, false) })
	b.Run("loopback", func(b *testing.B) { benchTransport(b, true) })
}
