package shardrpc

import (
	"net/http/httptest"
	"testing"
	"time"

	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/shard"
	"github.com/detector-net/detector/internal/topo"
)

// benchTransport measures one full distributed construction cycle on
// Fattree(16) — 8 components over 4 shards, Workers 1 per shard,
// Sequential so per-shard elapsed is uncontended — with the shard fleet
// in-process (wire == "") or behind real loopback HTTP services speaking
// the given codec. The delta between sub-benchmarks is the transport's
// whole cost: encode of the component slices, the HTTP round trips, and
// decode of the selections. critical-path-ms is the modeled N-machine
// wall clock; wire-MB-out-per-cycle is what the coordinator ships per
// construction cycle (counted at the connection, headers included), the
// number the binary codec exists to shrink.
func benchTransport(b *testing.B, wire string) {
	f := topo.MustFattree(16)
	ps := route.NewFattreePaths(f)
	const shards = 4
	opt := shard.Options{
		Shards:     shards,
		Sequential: true,
		PMC:        pmc.Options{Alpha: 2, Beta: 1, Lazy: true, Workers: 1},
		TTL:        time.Hour,
	}
	var rpcClients []*Client
	if wire != "" {
		opt.Shards = 0
		for i := 0; i < shards; i++ {
			srv := NewServer(ps, f.NumLinks())
			ts := httptest.NewServer(srv.Handler())
			b.Cleanup(ts.Close)
			cl := Dial(i, ts.URL, ClientOptions{Wire: wire})
			rpcClients = append(rpcClients, cl)
			opt.Clients = append(opt.Clients, cl)
		}
	}
	c, err := shard.New(ps, f.NumLinks(), opt)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()
	sumOut := func() (total int64) {
		for _, cl := range rpcClients {
			total += cl.bytesOut.Value()
		}
		return total
	}
	b.ResetTimer()
	outBefore := sumOut()
	var crit time.Duration
	for i := 0; i < b.N; i++ {
		res, err := c.Construct()
		if err != nil {
			b.Fatal(err)
		}
		crit = res.CriticalPath
	}
	b.ReportMetric(float64(crit.Microseconds())/1000.0, "critical-path-ms")
	if wire != "" && b.N > 0 {
		b.ReportMetric(float64(sumOut()-outBefore)/1e6/float64(b.N), "wire-MB-out-per-cycle")
	}
}

// BenchmarkTransportFattree16 is the CI smoke for the transport: the
// loopback runs must complete with a critical path comparable to
// in-process, and the per-cycle wire volume of both codecs is reported
// side by side so a payload regression (either codec bloating, or the
// negotiation silently falling back to JSON) is visible per push.
func BenchmarkTransportFattree16(b *testing.B) {
	b.Run("inproc", func(b *testing.B) { benchTransport(b, "") })
	b.Run("loopback-json", func(b *testing.B) { benchTransport(b, WireJSON) })
	b.Run("loopback-binary", func(b *testing.B) { benchTransport(b, WireBinary) })
}
