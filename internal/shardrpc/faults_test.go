package shardrpc

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/detector-net/detector/internal/httpx"
	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/shard"
	"github.com/detector-net/detector/internal/topo"
)

func testServer(t *testing.T, lim Limits) (*Server, *httptest.Server) {
	t.Helper()
	f := topo.MustFattree(4)
	ps := route.NewFattreePaths(f)
	srv := NewServerLimits(ps, f.NumLinks(), lim)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func errorBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	var eb httpx.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("error response is not structured JSON: %v", err)
	}
	return eb.Error
}

// TestTruncatedPayloadRejected feeds the server a request cut off
// mid-object: structured 400, and the server keeps serving afterwards.
func TestTruncatedPayloadRejected(t *testing.T) {
	srv, ts := testServer(t, DefaultLimits())
	full, _ := json.Marshal(ConstructRequest{V: SchemaVersion, MatrixSig: srv.MatrixSig()})
	for _, endpoint := range []string{"/v1/construct", "/v1/localize"} {
		resp := postJSON(t, ts.URL+endpoint, full[:len(full)/2])
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s truncated payload: status %d, want 400", endpoint, resp.StatusCode)
		}
		if eb := errorBody(t, resp); !strings.Contains(eb, "undecodable") {
			t.Errorf("%s truncated payload: error %q lacks decode diagnosis", endpoint, eb)
		}
	}
	// The shard must still be alive and correct after garbage.
	cl := Dial(0, ts.URL, ClientOptions{})
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatalf("server unhealthy after truncated payloads: %v", err)
	}
}

// TestOversizedPayloadRejected pins the body bound: 413, not an OOM or a
// hang.
func TestOversizedPayloadRejected(t *testing.T) {
	lim := DefaultLimits()
	lim.MaxBodyBytes = 1 << 10
	_, ts := testServer(t, lim)
	big := make([]byte, 1<<12)
	for i := range big {
		big[i] = ' '
	}
	resp := postJSON(t, ts.URL+"/v1/construct", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized payload: status %d, want 413", resp.StatusCode)
	}
}

// TestValidationRejectsBadPayloads sweeps the schema guards: wrong
// version, out-of-range links/paths, non-canonical component order, and
// impossible observation counters all answer 400; a mismatched matrix
// signature answers 409.
func TestValidationRejectsBadPayloads(t *testing.T) {
	srv, ts := testServer(t, DefaultLimits())
	sig := srv.MatrixSig()
	comp := Component{Links: []topo.LinkID{0, 1}, Paths: []int32{0, 1}}
	cases := []struct {
		name string
		url  string
		req  any
		want int
	}{
		{"construct/version", "/v1/construct",
			ConstructRequest{V: 99, MatrixSig: sig, NumLinks: srv.numLinks, Comps: []Component{comp}}, 400},
		{"construct/sig", "/v1/construct",
			ConstructRequest{V: SchemaVersion, MatrixSig: sig ^ 1, NumLinks: srv.numLinks,
				Opt: PMCOptions{Alpha: 1, Beta: 1}, Comps: []Component{comp}}, 409},
		{"construct/linkRange", "/v1/construct",
			ConstructRequest{V: SchemaVersion, MatrixSig: sig, NumLinks: srv.numLinks,
				Comps: []Component{{Links: []topo.LinkID{topo.LinkID(srv.numLinks)}, Paths: []int32{0}}}}, 400},
		{"construct/unsortedLinks", "/v1/construct",
			ConstructRequest{V: SchemaVersion, MatrixSig: sig, NumLinks: srv.numLinks,
				Comps: []Component{{Links: []topo.LinkID{1, 0}, Paths: []int32{0}}}}, 400},
		{"construct/pathRange", "/v1/construct",
			ConstructRequest{V: SchemaVersion, MatrixSig: sig, NumLinks: srv.numLinks,
				Comps: []Component{{Links: []topo.LinkID{0}, Paths: []int32{1 << 30}}}}, 400},
		{"localize/version", "/v1/localize",
			LocalizeRequest{V: 0, NumLinks: 4}, 400},
		{"localize/numLinksUnbounded", "/v1/localize",
			LocalizeRequest{V: SchemaVersion, NumLinks: 1 << 40,
				Cfg: PLLConfig{HitRatio: 0.6}}, 400},
		{"localize/obsCounters", "/v1/localize",
			LocalizeRequest{V: SchemaVersion, NumLinks: 4,
				Paths: []Path{{Links: []topo.LinkID{0}}},
				Obs:   []Observation{{Path: 0, Sent: 10, Lost: 11}},
				Cfg:   PLLConfig{HitRatio: 0.6}}, 400},
		{"localize/obsRange", "/v1/localize",
			LocalizeRequest{V: SchemaVersion, NumLinks: 4,
				Paths: []Path{{Links: []topo.LinkID{0}}},
				Obs:   []Observation{{Path: 5, Sent: 10}},
				Cfg:   PLLConfig{HitRatio: 0.6}}, 400},
	}
	for _, tc := range cases {
		body, err := json.Marshal(tc.req)
		if err != nil {
			t.Fatal(err)
		}
		resp := postJSON(t, ts.URL+tc.url, body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

// faultableHandler wraps a shard service so a test can make construction
// fail while liveness keeps passing — the "answers heartbeats but errors
// on construct" failure the coordinator must survive.
func faultableHandler(inner http.Handler, failConstruct *atomic.Bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failConstruct.Load() && r.URL.Path == "/v1/construct" {
			httpx.Error(w, http.StatusInternalServerError, "injected construct fault")
			return
		}
		inner.ServeHTTP(w, r)
	})
}

// TestConstructFaultDegradesToReassignment runs a coordinator over two
// loopback shards, one of which pings fine but fails every construction.
// The cycle must complete by quarantining the faulty shard and re-running
// its components on the survivor — a complete, bit-identical merge, never
// a partial one. A later cycle with the fault healed readmits the shard.
func TestConstructFaultDegradesToReassignment(t *testing.T) {
	f := topo.MustFattree(8)
	ps := route.NewFattreePaths(f)
	opt := pmc.Options{Alpha: 2, Beta: 1, Lazy: true}
	single := opt
	single.Decompose = true
	ref, err := pmc.Construct(ps, f.NumLinks(), single)
	if err != nil {
		t.Fatal(err)
	}

	srv0 := NewServer(ps, f.NumLinks())
	ts0 := httptest.NewServer(srv0.Handler())
	defer ts0.Close()
	srv1 := NewServer(ps, f.NumLinks())
	var fail atomic.Bool
	fail.Store(true)
	ts1 := httptest.NewServer(faultableHandler(srv1.Handler(), &fail))
	defer ts1.Close()

	c, err := shard.New(ps, f.NumLinks(), shard.Options{
		Clients: []shard.ShardClient{
			Dial(0, ts0.URL, ClientOptions{}),
			Dial(1, ts1.URL, ClientOptions{}),
		},
		PMC: opt, TTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	res, err := c.Construct()
	if err != nil {
		t.Fatalf("construct with one faulty shard: %v", err)
	}
	if res.Retries < 1 {
		t.Errorf("faulty shard cost no retries; fault was not exercised")
	}
	if res.Alive != 1 {
		t.Errorf("alive = %d, want 1 (faulty shard quarantined)", res.Alive)
	}
	if !reflect.DeepEqual(res.Selected, ref.Selected) {
		t.Errorf("degraded merge differs from single controller — partial merge served")
	}
	if u := c.Unhealthy(); len(u) != 1 || u[0] != 1 {
		t.Errorf("Unhealthy() = %v, want [1] (quarantined shard visible)", u)
	}

	// Heal the fault: the next cycle's quarantine re-probe readmits the
	// shard and the merge is again clean and identical.
	fail.Store(false)
	res, err = c.Construct()
	if err != nil {
		t.Fatalf("construct after heal: %v", err)
	}
	if res.Alive != 2 || res.Retries != 0 {
		t.Errorf("healed cycle: alive=%d retries=%d, want 2 and 0", res.Alive, res.Retries)
	}
	if !reflect.DeepEqual(res.Selected, ref.Selected) {
		t.Errorf("post-heal merge differs from single controller")
	}
}

// TestMidCycleDisconnect kills a shard service outright — connection
// refused, the remote analog of a crashed controller — and checks the same
// degradation path, construction and localization both.
func TestMidCycleDisconnect(t *testing.T) {
	f := topo.MustFattree(8)
	ps := route.NewFattreePaths(f)
	opt := pmc.Options{Alpha: 2, Beta: 1, Lazy: true}
	single := opt
	single.Decompose = true
	ref, err := pmc.Construct(ps, f.NumLinks(), single)
	if err != nil {
		t.Fatal(err)
	}

	servers := make([]*httptest.Server, 2)
	clients := make([]shard.ShardClient, 2)
	for i := range servers {
		servers[i] = httptest.NewServer(NewServer(ps, f.NumLinks()).Handler())
		clients[i] = Dial(i, servers[i].URL, ClientOptions{})
	}
	defer servers[0].Close()

	c, err := shard.New(ps, f.NumLinks(), shard.Options{Clients: clients, PMC: opt, TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	// Build the plane before the disconnect so shard 1 owns live routes.
	probes := route.NewProbes(ps, ref.Selected, f.NumLinks())
	obs := syntheticWindow(probes, 3)
	refLoc, err := pll.Localize(probes, obs, pll.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	plane := c.BuildPlane(probes)

	servers[1].Close() // mid-window crash: TTL has not expired

	res, err := c.Construct()
	if err != nil {
		t.Fatalf("construct across disconnect: %v", err)
	}
	if res.Retries < 1 || res.Alive != 1 {
		t.Errorf("disconnect cycle: retries=%d alive=%d, want >=1 and 1", res.Retries, res.Alive)
	}
	if !reflect.DeepEqual(res.Selected, ref.Selected) {
		t.Errorf("post-disconnect merge differs from single controller")
	}

	// The already-built plane falls back to local execution for the dead
	// shard's slice: the window is not lost and the verdicts are exact.
	got, err := plane.Localize(obs, pll.DefaultConfig())
	if err != nil {
		t.Fatalf("plane localize across disconnect: %v", err)
	}
	if !reflect.DeepEqual(got.Bad, refLoc.Bad) ||
		got.LossyPaths != refLoc.LossyPaths ||
		got.UnexplainedPaths != refLoc.UnexplainedPaths {
		t.Errorf("fallback localization differs from single controller")
	}
}

// TestPingRejectsWrongEngine pins the fingerprint handshake at liveness
// time: a coordinator-pinned client probing a shard built for a different
// topology must fail the ping (so the shard is declared dead) instead of
// reporting healthy and failing every dispatched construction.
func TestPingRejectsWrongEngine(t *testing.T) {
	f8 := topo.MustFattree(8)
	srv8 := NewServer(route.NewFattreePaths(f8), f8.NumLinks())
	ts := httptest.NewServer(srv8.Handler())
	defer ts.Close()

	cl := Dial(0, ts.URL, ClientOptions{})
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatalf("unpinned ping should pass: %v", err)
	}
	f4 := topo.MustFattree(4)
	ps4 := route.NewFattreePaths(f4)
	csr4 := route.MaterializeCSR(ps4)
	cl.ExpectMatrix(route.MatrixSignature(csr4, f4.NumLinks()), f4.NumLinks())
	if err := cl.Ping(); err == nil {
		t.Fatal("ping against a Fattree(8) shard with a Fattree(4) pin should fail")
	} else if !strings.Contains(err.Error(), "engine mismatch") {
		t.Fatalf("mismatch error %q lacks diagnosis", err)
	}
}

// TestConstructRejectsUnboundedMaxElements pins the server-side cap on the
// one option that sizes shard memory: a coordinator cannot disable the
// refinement guard remotely.
func TestConstructRejectsUnboundedMaxElements(t *testing.T) {
	srv, ts := testServer(t, DefaultLimits())
	body, _ := json.Marshal(ConstructRequest{
		V: SchemaVersion, MatrixSig: srv.MatrixSig(), NumLinks: srv.numLinks,
		Opt:   PMCOptions{Alpha: 1, Beta: 1, MaxElements: 1 << 62},
		Comps: []Component{{Links: []topo.LinkID{0}, Paths: []int32{0}}},
	})
	resp := postJSON(t, ts.URL+"/v1/construct", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("max_elements 1<<62: status %d, want 400", resp.StatusCode)
	}
	if eb := errorBody(t, resp); !strings.Contains(eb, "max_elements") {
		t.Fatalf("error %q does not name the offending field", eb)
	}
}

// constructWorkOrder builds the coordinator-side work order for a full
// decomposition of ps — a semantically valid construction any shard built
// over the same path set must accept.
func constructWorkOrder(ps route.PathSet, numLinks int) shard.ConstructRequest {
	csr := route.MaterializeCSR(ps)
	return shard.ConstructRequest{
		MatrixSig: route.MatrixSignature(csr, numLinks),
		NumLinks:  numLinks,
		Comps:     route.DecomposeCSR(csr, numLinks),
		Opt:       pmc.Options{Alpha: 1, Beta: 1, Lazy: true},
	}
}

// legacyV1Handler makes a current shard service look like a PR-4-era v1
// deployment: pings do not advertise codecs, and a binary request gets
// the 400 a JSON-only decoder would produce.
func legacyV1Handler(inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/ping" {
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, r)
			var pr PingResponse
			if rec.Code == http.StatusOK && json.Unmarshal(rec.Body.Bytes(), &pr) == nil {
				pr.Codecs = nil
				httpx.WriteJSON(w, pr)
				return
			}
			w.WriteHeader(rec.Code)
			_, _ = w.Write(rec.Body.Bytes())
			return
		}
		if requestCodec(r) == CodecBinary {
			httpx.Error(w, http.StatusBadRequest,
				"undecodable request: invalid character '\\u00d7' looking for beginning of value")
			return
		}
		inner.ServeHTTP(w, r)
	})
}

// TestCodecNegotiation pins the upgrade handshake: an auto-wire client
// speaks JSON until the shard's ping advertises the binary codec, then
// drives the same work order over binary with an identical result.
func TestCodecNegotiation(t *testing.T) {
	f := topo.MustFattree(4)
	ps := route.NewFattreePaths(f)
	srv := NewServer(ps, f.NumLinks())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	req := constructWorkOrder(ps, f.NumLinks())
	ref, err := pmc.ConstructComponents(ps, route.MaterializeCSR(ps), req.Comps, f.NumLinks(), req.Opt)
	if err != nil {
		t.Fatal(err)
	}

	cl := Dial(60, ts.URL, ClientOptions{})
	defer cl.Close()
	if got := cl.Codec(); got != CodecJSON {
		t.Fatalf("pre-negotiation codec %q, want %q (JSON until the shard speaks)", got, CodecJSON)
	}
	preNeg, err := cl.Construct(req)
	if err != nil {
		t.Fatalf("construct before negotiation: %v", err)
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if got := cl.Codec(); got != CodecBinary {
		t.Fatalf("post-ping codec %q, want %q (server advertises binary)", got, CodecBinary)
	}
	postNeg, err := cl.Construct(req)
	if err != nil {
		t.Fatalf("construct after negotiation: %v", err)
	}
	if !reflect.DeepEqual(preNeg.Selected, ref.Selected) || !reflect.DeepEqual(postNeg.Selected, ref.Selected) {
		t.Fatal("selection depends on the codec — transport perturbed output")
	}
}

// TestMixedVersionFleet pins both rollout directions: a v2 client against
// a v1-only shard degrades cleanly to JSON (auto) or fails loudly
// (forced binary), and a v1 JSON client keeps working against a v2
// server, which answers in JSON.
func TestMixedVersionFleet(t *testing.T) {
	f := topo.MustFattree(4)
	ps := route.NewFattreePaths(f)
	req := constructWorkOrder(ps, f.NumLinks())
	ref, err := pmc.ConstructComponents(ps, route.MaterializeCSR(ps), req.Comps, f.NumLinks(), req.Opt)
	if err != nil {
		t.Fatal(err)
	}

	legacy := httptest.NewServer(legacyV1Handler(NewServer(ps, f.NumLinks()).Handler()))
	defer legacy.Close()
	modern := NewServer(ps, f.NumLinks())
	modernTS := httptest.NewServer(modern.Handler())
	defer modernTS.Close()

	t.Run("autoClientAgainstV1", func(t *testing.T) {
		cl := Dial(61, legacy.URL, ClientOptions{})
		defer cl.Close()
		if err := cl.Ping(); err != nil {
			t.Fatalf("ping v1 server: %v", err)
		}
		if got := cl.Codec(); got != CodecJSON {
			t.Fatalf("codec against v1 server %q, want %q", got, CodecJSON)
		}
		res, err := cl.Construct(req)
		if err != nil {
			t.Fatalf("construct against v1 server: %v", err)
		}
		if !reflect.DeepEqual(res.Selected, ref.Selected) {
			t.Fatal("v1 fallback selection differs")
		}
	})
	t.Run("forcedBinaryAgainstV1", func(t *testing.T) {
		cl := Dial(62, legacy.URL, ClientOptions{Wire: WireBinary})
		defer cl.Close()
		_, err := cl.Construct(req)
		if err == nil {
			t.Fatal("forced binary against a v1 server must fail, not silently degrade")
		}
		if !strings.Contains(err.Error(), "400") {
			t.Fatalf("forced-binary failure %q does not surface the server's 400", err)
		}
	})
	t.Run("v1ClientAgainstV2", func(t *testing.T) {
		body, err := json.Marshal(encodeConstruct(req))
		if err != nil {
			t.Fatal(err)
		}
		resp := postJSON(t, modernTS.URL+"/v1/construct", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("JSON construct against v2 server: status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("JSON request answered with %q — a v1 client could not decode this", ct)
		}
		var cresp ConstructResponse
		if err := json.NewDecoder(resp.Body).Decode(&cresp); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cresp.Selected, ref.Selected) {
			t.Fatal("v1-style JSON selection differs")
		}
	})
}

// TestOversizedResponseRejected is the response-side mirror of the
// request body limit: a shard that answers with an unbounded body cannot
// balloon coordinator memory — the client stops reading at its limit and
// reports a final, structured error.
func TestOversizedResponseRejected(t *testing.T) {
	f := topo.MustFattree(4)
	ps := route.NewFattreePaths(f)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/construct", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		junk := bytes.Repeat([]byte(" "), 1<<16)
		_, _ = w.Write(junk)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	cl := Dial(64, ts.URL, ClientOptions{Attempts: 1, MaxResponseBytes: 4096})
	defer cl.Close()
	_, err := cl.Construct(constructWorkOrder(ps, f.NumLinks()))
	if err == nil {
		t.Fatal("oversized response must be an error")
	}
	if !strings.Contains(err.Error(), "exceeds 4096 bytes") {
		t.Fatalf("oversized-response error %q does not name the bound", err)
	}
}

// TestByteCountersCountFailedAttempts pins honest accounting: a request
// whose shard dies after reading the body still moved those bytes, and
// the counters must say so — under the default transport they count at
// the connection, so headers, failed attempts and pings are all wire
// truth.
func TestByteCountersCountFailedAttempts(t *testing.T) {
	f := topo.MustFattree(4)
	ps := route.NewFattreePaths(f)
	req := constructWorkOrder(ps, f.NumLinks())
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/construct", func(w http.ResponseWriter, r *http.Request) {
		// Drain the request (the bytes really cross the wire), then kill
		// the connection before any response.
		_, _ = io.Copy(io.Discard, r.Body)
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close()
		}
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	cl := Dial(65, ts.URL, ClientOptions{})
	defer cl.Close()
	jsonBody, err := json.Marshal(encodeConstruct(req))
	if err != nil {
		t.Fatal(err)
	}
	outBefore, retriesBefore := cl.bytesOut.Value(), cl.retries.Value()
	if _, err := cl.Construct(req); err == nil {
		t.Fatal("construct against a connection-killing shard must fail")
	}
	moved := cl.bytesOut.Value() - outBefore
	// Two attempts (default one retry), each shipping the full JSON body
	// plus headers.
	if want := 2 * int64(len(jsonBody)); moved < want {
		t.Fatalf("bytes_out counted %d, want >= %d — failed attempts moved bytes the counter missed", moved, want)
	}
	if got := cl.retries.Value() - retriesBefore; got != 1 {
		t.Fatalf("retries counted %d, want 1", got)
	}
}

// TestPingCountsWireBytes: a liveness probe is wire traffic too — request
// bytes out, response bytes in.
func TestPingCountsWireBytes(t *testing.T) {
	f := topo.MustFattree(4)
	ps := route.NewFattreePaths(f)
	ts := httptest.NewServer(NewServer(ps, f.NumLinks()).Handler())
	defer ts.Close()

	cl := Dial(66, ts.URL, ClientOptions{})
	defer cl.Close()
	inBefore, outBefore := cl.bytesIn.Value(), cl.bytesOut.Value()
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if out := cl.bytesOut.Value() - outBefore; out == 0 {
		t.Fatal("ping request moved no counted bytes — GET accounting still missing")
	}
	if in := cl.bytesIn.Value() - inBefore; in == 0 {
		t.Fatal("ping response moved no counted bytes")
	}
}

// TestConnectionReuse pins the tuned transport: sequential calls to one
// shard hold a single keep-alive connection instead of redialing, and
// the reuse counters prove it.
func TestConnectionReuse(t *testing.T) {
	f := topo.MustFattree(4)
	ps := route.NewFattreePaths(f)
	ts := httptest.NewServer(NewServer(ps, f.NumLinks()).Handler())
	defer ts.Close()

	cl := Dial(67, ts.URL, ClientOptions{})
	defer cl.Close()
	openedBefore, reusedBefore := cl.connsOpened.Value(), cl.connsReused.Value()
	req := constructWorkOrder(ps, f.NumLinks())
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Construct(req); err != nil {
		t.Fatal(err)
	}
	opened := cl.connsOpened.Value() - openedBefore
	reused := cl.connsReused.Value() - reusedBefore
	if opened != 1 || reused != 2 {
		t.Fatalf("3 sequential calls: opened %d / reused %d connections, want 1 / 2 — keep-alive is not holding", opened, reused)
	}
}

// TestDialRejectsUnknownWire pins the fail-fast on a mistyped wire
// policy: silently treating "Binary" as auto-negotiation would defeat
// the fail-loud guarantee WireBinary exists to give.
func TestDialRejectsUnknownWire(t *testing.T) {
	for _, ok := range []string{"", WireAuto, WireJSON, WireBinary} {
		Dial(68, "http://127.0.0.1:1", ClientOptions{Wire: ok}).Close()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Dial accepted wire policy \"Binary\"")
		}
	}()
	Dial(68, "http://127.0.0.1:1", ClientOptions{Wire: "Binary"})
}
