package shardrpc

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"sort"
	"testing"

	"github.com/detector-net/detector/internal/topo"
)

func randSummary(r *rand.Rand) SummaryReport {
	s := SummaryReport{
		Node:    topo.NodeID(r.Intn(1 << 20)),
		Version: r.Intn(1 << 16),
		EndNS:   int64(r.Uint64() >> 1),
		Windows: 1 + r.Intn(20),
		TopK:    r.Intn(64),
	}
	// Disjoint ascending path IDs split between worst and residue.
	ids := randAscending(r, r.Intn(20), 1<<20)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		sent := 1 + r.Intn(5000)
		if r.Intn(3) == 0 {
			res := ReportResult{PathID: uint32(id), Sent: sent, Lost: r.Intn(sent + 1)}
			if r.Intn(4) > 0 {
				res.MeanRTTNS = int64(r.Intn(1 << 30))
				res.JitterNS = int64(r.Intn(1 << 20))
				res.ECNFrac = r.Float64()
			}
			s.Worst = append(s.Worst, res)
		} else {
			s.Residue = append(s.Residue, ResidueCounter{PathID: uint32(id), Sent: sent, Lost: r.Intn(sent + 1)})
		}
	}
	return s
}

// TestSummaryRoundTrip: decode(encode(x)) == x for randomized summaries,
// and the reuse decode leaves no stale state behind.
func TestSummaryRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var reused SummaryReport
	for i := 0; i < 200; i++ {
		want := randSummary(r)
		enc := want.EncodeBinary()
		got, err := DecodeSummaryBinary(enc, 0)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !summariesEqual(*got, want) {
			t.Fatalf("case %d: decode mismatch:\n got %+v\nwant %+v", i, got, want)
		}
		// The reuse path must land on the same value even when the struct
		// previously held a larger frame.
		if err := reused.DecodeBinary(enc, 0); err != nil {
			t.Fatalf("case %d: reuse decode: %v", i, err)
		}
		if !summariesEqual(reused, want) {
			t.Fatalf("case %d: reuse decode mismatch:\n got %+v\nwant %+v", i, reused, want)
		}
	}
}

// summariesEqual compares field-by-field, treating nil and empty sections
// as equal (the reuse decoder keeps capacity, so it yields empty slices
// where a fresh decode yields nil).
func summariesEqual(a, b SummaryReport) bool {
	if a.Node != b.Node || a.Version != b.Version || a.EndNS != b.EndNS ||
		a.Windows != b.Windows || a.TopK != b.TopK ||
		len(a.Worst) != len(b.Worst) || len(a.Residue) != len(b.Residue) {
		return false
	}
	for i := range a.Worst {
		if a.Worst[i] != b.Worst[i] {
			return false
		}
	}
	for i := range a.Residue {
		if a.Residue[i] != b.Residue[i] {
			return false
		}
	}
	return true
}

// TestSummaryGoldenEdgeCases pins the corners: empty frame, worst-only,
// residue-only, and structural rejections (wrong kind, truncation,
// trailing bytes, oversized declared length).
func TestSummaryGoldenEdgeCases(t *testing.T) {
	empty := SummaryReport{Node: 3, Version: 1, EndNS: 99, Windows: 1}
	enc := empty.EncodeBinary()
	got, err := DecodeSummaryBinary(enc, 0)
	if err != nil || got.Node != 3 || len(got.Worst) != 0 || len(got.Residue) != 0 {
		t.Fatalf("empty summary: %+v, %v", got, err)
	}

	worstOnly := SummaryReport{Node: 1, Windows: 4, TopK: 2, Worst: []ReportResult{
		{PathID: 0, Sent: 10, Lost: 10}, {PathID: 7, Sent: 10, Lost: 9}}}
	if got, err = DecodeSummaryBinary(worstOnly.EncodeBinary(), 0); err != nil || len(got.Worst) != 2 || got.Worst[1].PathID != 7 {
		t.Fatalf("worst-only summary: %+v, %v", got, err)
	}

	resOnly := SummaryReport{Node: 1, Windows: 2, Residue: []ResidueCounter{
		{PathID: 5, Sent: 60, Lost: 0}, {PathID: 6, Sent: 60, Lost: 1}}}
	if got, err = DecodeSummaryBinary(resOnly.EncodeBinary(), 0); err != nil || len(got.Residue) != 2 || got.Residue[1].Lost != 1 {
		t.Fatalf("residue-only summary: %+v, %v", got, err)
	}

	if _, err := DecodeSummaryBinary((&Report{Node: 1}).EncodeBinary(), 0); err == nil {
		t.Fatal("kind-5 frame decoded as a summary")
	}
	full := resOnly.EncodeBinary()
	if _, err := DecodeSummaryBinary(full[:len(full)-1], 0); err == nil {
		t.Fatal("truncated frame decoded")
	}
	if _, err := DecodeSummaryBinary(append(full, 0), 0); err == nil {
		t.Fatal("trailing garbage decoded")
	}
	if _, err := DecodeSummaryBinary(full, 4); err == nil {
		t.Fatal("oversized declared payload decoded under a 4-byte budget")
	}
}

// TestReadFrameStream pins the persistent-connection framing: back-to-back
// frames of mixed kinds decode in order from one stream, a clean close is
// io.EOF, a mid-frame close is io.ErrUnexpectedEOF, and a declared length
// past the budget is rejected before any payload read.
func TestReadFrameStream(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	reports := []Report{randReport(r), randReport(r)}
	summaries := []SummaryReport{randSummary(r), randSummary(r)}
	var stream bytes.Buffer
	stream.Write(reports[0].EncodeBinary())
	stream.Write(summaries[0].EncodeBinary())
	stream.Write(reports[1].EncodeBinary())
	stream.Write(summaries[1].EncodeBinary())

	br := bufio.NewReader(bytes.NewReader(stream.Bytes()))
	var buf []byte
	var gotReports, gotSummaries int
	for {
		frame, reuse, kind, err := ReadFrame(br, 1<<20, buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("frame %d: %v", gotReports+gotSummaries, err)
		}
		buf = reuse
		switch kind {
		case kindReport:
			var rep Report
			if err := rep.DecodeBinary(frame, 0); err != nil {
				t.Fatalf("report decode: %v", err)
			}
			if rep.Node != reports[gotReports].Node || len(rep.Results) != len(reports[gotReports].Results) {
				t.Fatalf("report %d mismatch: %+v", gotReports, rep)
			}
			gotReports++
		case kindReportSummary:
			var s SummaryReport
			if err := s.DecodeBinary(frame, 0); err != nil {
				t.Fatalf("summary decode: %v", err)
			}
			if !summariesEqual(s, summaries[gotSummaries]) {
				t.Fatalf("summary %d mismatch: %+v", gotSummaries, s)
			}
			gotSummaries++
		default:
			t.Fatalf("unexpected kind %d", kind)
		}
	}
	if gotReports != 2 || gotSummaries != 2 {
		t.Fatalf("stream yielded %d reports, %d summaries", gotReports, gotSummaries)
	}

	// Mid-frame truncation.
	cut := stream.Bytes()[:stream.Len()-3]
	br = bufio.NewReader(bytes.NewReader(cut))
	var err error
	for err == nil {
		_, _, _, err = ReadFrame(br, 1<<20, nil)
	}
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated stream: err = %v, want io.ErrUnexpectedEOF", err)
	}

	// A declared length past the budget fails without reading the payload.
	big := SummaryReport{Node: 1, Windows: 1, Residue: make([]ResidueCounter, 4096)}
	for i := range big.Residue {
		big.Residue[i] = ResidueCounter{PathID: uint32(i), Sent: 1}
	}
	br = bufio.NewReader(bytes.NewReader(big.EncodeBinary()))
	if _, _, _, err := ReadFrame(br, 16, nil); err == nil {
		t.Fatal("oversized frame accepted")
	}

	// Garbage at stream start is a magic error, not EOF.
	br = bufio.NewReader(bytes.NewReader([]byte{1, 2, 3, 4, 5}))
	if _, _, _, err := ReadFrame(br, 16, nil); err == nil || err == io.EOF {
		t.Fatalf("garbage stream: err = %v", err)
	}
}

// TestSummaryJSONBinaryDifferential: the two encodings of the same summary
// decode to the same value (the JSON side goes through encoding/json with
// the struct's own tags, as a hand-rolled client would produce).
func TestSummaryJSONBinaryDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 100; i++ {
		want := randSummary(r)
		got, err := DecodeSummaryBinary(want.EncodeBinary(), 0)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		viaJSON := roundTripJSON(t, want)
		if !summariesEqual(*got, viaJSON) {
			t.Fatalf("case %d: binary %+v != json %+v", i, got, viaJSON)
		}
	}
}

func roundTripJSON(t *testing.T, s SummaryReport) SummaryReport {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var out SummaryReport
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	return out
}
