package shardrpc

// The pre-aggregated pinger→diagnoser summary, as the sixth kind of the v2
// binary frame. A summary is what a pinger ships after batching several
// report windows locally: the K worst paths keep full per-path detail
// (counters plus latency/ECN signals), while every other path it probed
// rides in a residue section as bare counters. The residue is what keeps
// summary-mode localization bit-identical to per-report ingest: PLL's
// hit-ratio denominators need every observed path's presence and counters,
// not just the lossy ones — only the per-path float signals are elided.
//
// Old decoders reject kind 6 by its kind byte, the same mixed-fleet
// behaviour as the kind-5 report: pingers learn whether a diagnoser speaks
// summary from GET /reportcaps and fall back to per-report frames (or JSON)
// when it does not.

import (
	"encoding/binary"
	"fmt"
	"io"

	"github.com/detector-net/detector/internal/topo"
)

// kindReportSummary extends the payload-kind space past the per-window
// report (5): a batched, optionally top-K-trimmed window aggregate.
const kindReportSummary byte = 6

// KindReport and KindReportSummary name the report-plane frame kinds for
// callers dispatching on FrameKind outside the package (the diagnoser's
// ingest endpoints).
const (
	KindReport        = kindReport
	KindReportSummary = kindReportSummary
)

// ResidueCounter is one non-worst path's bare counters in a summary frame:
// presence and loss accounting without the per-path signal floats.
type ResidueCounter struct {
	PathID uint32 `json:"path_id"`
	Sent   int    `json:"sent"`
	Lost   int    `json:"lost"`
}

// SummaryReport is one pinger's pre-aggregated report: Windows consecutive
// report windows merged at the edge, split into the Worst paths (highest
// loss, full signal detail) and the Residue (everything else it probed,
// counters only). Both sections are strictly ascending by path ID on the
// wire, which the delta−1 encoding makes structural.
type SummaryReport struct {
	Node    topo.NodeID `json:"node"`
	Version int         `json:"version"`
	EndNS   int64       `json:"end_ns"`
	// Windows counts the report windows merged into this frame (>= 1).
	Windows int `json:"windows"`
	// TopK echoes the pinger's configured worst-path budget (0 = every
	// path carries full detail and Residue is empty).
	TopK    int              `json:"top_k,omitempty"`
	Worst   []ReportResult   `json:"worst,omitempty"`
	Residue []ResidueCounter `json:"residue,omitempty"`
}

// EncodeBinary packs the summary into a v2 frame. Both path-ID sequences
// are strictly ascending, so they encode as first value plus
// uvarint(delta−1) per element — the cheapest encoding the codec has.
func (s *SummaryReport) EncodeBinary() []byte {
	var b []byte
	b = binary.AppendUvarint(b, uint64(s.Node))
	b = binary.AppendUvarint(b, uint64(s.Version))
	b = binary.AppendVarint(b, s.EndNS)
	b = binary.AppendUvarint(b, uint64(s.Windows))
	b = binary.AppendUvarint(b, uint64(s.TopK))
	b = binary.AppendUvarint(b, uint64(len(s.Worst)))
	prev := int64(-1)
	for _, pr := range s.Worst {
		b = binary.AppendUvarint(b, uint64(int64(pr.PathID)-prev-1))
		prev = int64(pr.PathID)
		b = binary.AppendUvarint(b, uint64(pr.Sent))
		b = binary.AppendUvarint(b, uint64(pr.Lost))
		b = binary.AppendVarint(b, pr.MeanRTTNS)
		b = binary.AppendVarint(b, pr.JitterNS)
		b = appendF64(b, pr.ECNFrac)
	}
	b = binary.AppendUvarint(b, uint64(len(s.Residue)))
	prev = -1
	for _, rc := range s.Residue {
		b = binary.AppendUvarint(b, uint64(int64(rc.PathID)-prev-1))
		prev = int64(rc.PathID)
		b = binary.AppendUvarint(b, uint64(rc.Sent))
		b = binary.AppendUvarint(b, uint64(rc.Lost))
	}
	return sealFrame(kindReportSummary, b)
}

// DecodeBinary unpacks a v2 summary frame into s, reusing the Worst and
// Residue slices' capacity — the ingest path decodes one frame after
// another into the same struct without per-frame allocation once warm.
// Field-level validation (counter sanity, float ranges) is the consumer's
// job; the decode enforces structure, including strictly ascending path
// IDs in both sections.
func (s *SummaryReport) DecodeBinary(data []byte, maxPayload int64) error {
	payload, err := openFrame(data, kindReportSummary, maxPayload)
	if err != nil {
		return err
	}
	r := &breader{buf: payload}
	node, err := r.uint31()
	if err != nil {
		return err
	}
	s.Node = topo.NodeID(node)
	if s.Version, err = r.uint31(); err != nil {
		return err
	}
	if s.EndNS, err = r.varint(); err != nil {
		return err
	}
	if s.Windows, err = r.uint31(); err != nil {
		return err
	}
	if s.TopK, err = r.uint31(); err != nil {
		return err
	}
	nWorst, err := r.seqLen()
	if err != nil {
		return err
	}
	s.Worst = s.Worst[:0]
	prev := int64(-1)
	for i := 0; i < nWorst; i++ {
		var pr ReportResult
		d, err := r.uvarint()
		if err != nil {
			return fmt.Errorf("worst %d path: %w", i, err)
		}
		p := prev + 1 + int64(d)
		if p > maxPathID {
			return fmt.Errorf("worst %d path %d exceeds uint32 range", i, p)
		}
		prev = p
		pr.PathID = uint32(p)
		if pr.Sent, err = r.uint31(); err != nil {
			return err
		}
		if pr.Lost, err = r.uint31(); err != nil {
			return err
		}
		if pr.MeanRTTNS, err = r.varint(); err != nil {
			return err
		}
		if pr.JitterNS, err = r.varint(); err != nil {
			return err
		}
		if pr.ECNFrac, err = r.f64(); err != nil {
			return err
		}
		s.Worst = append(s.Worst, pr)
	}
	nRes, err := r.seqLen()
	if err != nil {
		return err
	}
	s.Residue = s.Residue[:0]
	prev = -1
	for i := 0; i < nRes; i++ {
		var rc ResidueCounter
		d, err := r.uvarint()
		if err != nil {
			return fmt.Errorf("residue %d path: %w", i, err)
		}
		p := prev + 1 + int64(d)
		if p > maxPathID {
			return fmt.Errorf("residue %d path %d exceeds uint32 range", i, p)
		}
		prev = p
		rc.PathID = uint32(p)
		if rc.Sent, err = r.uint31(); err != nil {
			return err
		}
		if rc.Lost, err = r.uint31(); err != nil {
			return err
		}
		s.Residue = append(s.Residue, rc)
	}
	if r.remaining() != 0 {
		return fmt.Errorf("%d trailing payload bytes", r.remaining())
	}
	return nil
}

// maxPathID bounds decoded path IDs to the uint32 space the matrix indexes.
const maxPathID = int64(1)<<32 - 1

// DecodeSummaryBinary unpacks a v2 summary frame (fresh allocation; the
// ingest hot path uses (*SummaryReport).DecodeBinary with a reused struct).
func DecodeSummaryBinary(data []byte, maxPayload int64) (*SummaryReport, error) {
	var s SummaryReport
	if err := s.DecodeBinary(data, maxPayload); err != nil {
		return nil, err
	}
	return &s, nil
}

// ---------------------------------------------------------------------------
// Stream framing: a persistent report connection carries frames back to
// back, each self-delimiting (magic, version, kind, uvarint length,
// payload), so the reader needs no extra record separator.

// FrameKind returns the payload kind of an encoded frame without decoding
// it — the ingest path's dispatch between report (5) and summary (6).
func FrameKind(data []byte) (byte, error) {
	if len(data) < 4 {
		return 0, io.ErrUnexpectedEOF
	}
	if data[0] != frameMagic[0] || data[1] != frameMagic[1] {
		return 0, fmt.Errorf("bad frame magic %#02x%02x", data[0], data[1])
	}
	if data[2] != BinaryVersion {
		return 0, fmt.Errorf("unsupported binary codec version %d (want %d)", data[2], BinaryVersion)
	}
	return data[3], nil
}

// ReadFrame reads one complete frame from a byte stream into buf (grown as
// needed) and returns the frame bytes, the possibly-grown buffer for
// reuse, and the frame's kind. A clean end of stream before the first
// header byte returns io.EOF; a stream that dies mid-frame returns
// io.ErrUnexpectedEOF. The declared payload length is capped by maxPayload
// before any read, so a hostile length costs nothing.
func ReadFrame(br io.ByteReader, maxPayload int64, buf []byte) (frame, reuse []byte, kind byte, err error) {
	hdr := buf[:0]
	b0, err := br.ReadByte()
	if err != nil {
		if err == io.EOF {
			return nil, buf, 0, io.EOF
		}
		return nil, buf, 0, err
	}
	b1, err := readByteFull(br)
	if err != nil {
		return nil, buf, 0, err
	}
	if b0 != frameMagic[0] || b1 != frameMagic[1] {
		return nil, buf, 0, fmt.Errorf("bad frame magic %#02x%02x", b0, b1)
	}
	ver, err := readByteFull(br)
	if err != nil {
		return nil, buf, 0, err
	}
	if ver != BinaryVersion {
		return nil, buf, 0, fmt.Errorf("unsupported binary codec version %d (want %d)", ver, BinaryVersion)
	}
	kind, err = readByteFull(br)
	if err != nil {
		return nil, buf, 0, err
	}
	hdr = append(hdr, b0, b1, ver, kind)
	// The uvarint length, byte by byte (it must also land in the frame).
	var plen uint64
	var shift uint
	for {
		vb, err := readByteFull(br)
		if err != nil {
			return nil, buf, 0, err
		}
		hdr = append(hdr, vb)
		if shift >= 64 || (shift == 63 && vb > 1) {
			return nil, buf, 0, fmt.Errorf("frame length varint overflows")
		}
		plen |= uint64(vb&0x7f) << shift
		if vb&0x80 == 0 {
			break
		}
		shift += 7
	}
	if maxPayload > 0 && plen > uint64(maxPayload) {
		return nil, buf, 0, fmt.Errorf("%w: %d > %d", errFrameTooLarge, plen, maxPayload)
	}
	need := len(hdr) + int(plen)
	if cap(hdr) < need {
		grown := make([]byte, len(hdr), need)
		copy(grown, hdr)
		hdr = grown
	}
	frame = hdr[:need]
	if r, ok := br.(io.Reader); ok {
		if _, err := io.ReadFull(r, frame[len(hdr):]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, frame[:0], 0, err
		}
	} else {
		for i := len(hdr); i < need; i++ {
			b, err := readByteFull(br)
			if err != nil {
				return nil, frame[:0], 0, err
			}
			frame[i] = b
		}
	}
	return frame, frame[:0], kind, nil
}

// readByteFull reads one byte, mapping a clean EOF mid-frame to
// io.ErrUnexpectedEOF: once a frame has started, the stream ending is
// truncation, not a graceful close.
func readByteFull(br io.ByteReader) (byte, error) {
	b, err := br.ReadByte()
	if err == io.EOF {
		return 0, io.ErrUnexpectedEOF
	}
	return b, err
}
