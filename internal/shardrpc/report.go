package shardrpc

// The pinger→diagnoser report payload, as the fifth kind of the v2 binary
// frame. The report wire is the chattiest edge of the control plane — every
// server POSTs one report per window — and it is the first payload whose
// floats (per-path RTT, jitter, ECN fraction) matter, so it shares the
// frame format, the varint-delta integer packing and the raw-bits float
// path of the shard codec instead of inventing a second one.
//
// The structs mirror internal/pinger's Report/PathReport field for field
// (same JSON tags); they are redeclared here so the codec does not import
// the agent. Conversion in either direction is a loop over identical
// fields.

import (
	"encoding/binary"
	"fmt"

	"github.com/detector-net/detector/internal/topo"
)

// kindReport extends the payload-kind space (construct/localize × req/resp
// are 1..4). Old decoders reject it by kind byte, which is the intended
// mixed-fleet behaviour: a v2-report-unaware diagnoser answers 400 and the
// pinger falls back to JSON.
const kindReport byte = 5

// ReportResult is one path's window counters and signals on the wire.
type ReportResult struct {
	PathID uint32 `json:"path_id"`
	Sent   int    `json:"sent"`
	Lost   int    `json:"lost"`
	// MeanRTTNS and JitterNS are the mean RTT and RFC 3550 jitter of the
	// delivered probes; zero when nothing was delivered.
	MeanRTTNS int64 `json:"mean_rtt_ns"`
	JitterNS  int64 `json:"jitter_ns,omitempty"`
	// ECNFrac is the fraction of delivered probes echoed back with the
	// congestion-experienced mark.
	ECNFrac float64 `json:"ecn_frac,omitempty"`
}

// Report is one pinger's window aggregate.
type Report struct {
	Node    topo.NodeID    `json:"node"`
	Version int            `json:"version"`
	EndNS   int64          `json:"end_ns"`
	Results []ReportResult `json:"results"`
}

// EncodeBinary packs the report into a v2 frame. Path IDs ride the zigzag
// delta cursor (pingers report paths in pinglist order, nearly ascending),
// counters are uvarints, RTT and jitter signed varints, the ECN fraction
// raw IEEE 754 bits.
func (r *Report) EncodeBinary() []byte {
	var b []byte
	b = binary.AppendUvarint(b, uint64(r.Node))
	b = binary.AppendUvarint(b, uint64(r.Version))
	b = binary.AppendVarint(b, r.EndNS)
	b = binary.AppendUvarint(b, uint64(len(r.Results)))
	var pathEnc zigzagEnc
	for _, pr := range r.Results {
		b = pathEnc.append(b, int64(pr.PathID))
		b = binary.AppendUvarint(b, uint64(pr.Sent))
		b = binary.AppendUvarint(b, uint64(pr.Lost))
		b = binary.AppendVarint(b, pr.MeanRTTNS)
		b = binary.AppendVarint(b, pr.JitterNS)
		b = appendF64(b, pr.ECNFrac)
	}
	return sealFrame(kindReport, b)
}

// DecodeBinary unpacks a v2 report frame into rep, reusing the Results
// slice's capacity — the streaming ingest path decodes frame after frame
// into one reused struct with no per-frame allocation once warm.
// Field-level validation (counter sanity, float ranges) is the consumer's
// job, exactly as for a JSON body; the decode only enforces structure.
func (rep *Report) DecodeBinary(data []byte, maxPayload int64) error {
	payload, err := openFrame(data, kindReport, maxPayload)
	if err != nil {
		return err
	}
	r := &breader{buf: payload}
	node, err := r.uint31()
	if err != nil {
		return err
	}
	rep.Node = topo.NodeID(node)
	if rep.Version, err = r.uint31(); err != nil {
		return err
	}
	if rep.EndNS, err = r.varint(); err != nil {
		return err
	}
	n, err := r.seqLen()
	if err != nil {
		return err
	}
	rep.Results = rep.Results[:0]
	var pathDec zigzagDec
	for i := 0; i < n; i++ {
		var res ReportResult
		p, err := pathDec.next(r)
		if err != nil {
			return fmt.Errorf("result %d path: %w", i, err)
		}
		res.PathID = uint32(p)
		if res.Sent, err = r.uint31(); err != nil {
			return err
		}
		if res.Lost, err = r.uint31(); err != nil {
			return err
		}
		if res.MeanRTTNS, err = r.varint(); err != nil {
			return err
		}
		if res.JitterNS, err = r.varint(); err != nil {
			return err
		}
		if res.ECNFrac, err = r.f64(); err != nil {
			return err
		}
		rep.Results = append(rep.Results, res)
	}
	if r.remaining() != 0 {
		return fmt.Errorf("%d trailing payload bytes", r.remaining())
	}
	return nil
}

// DecodeReportBinary unpacks a v2 report frame under the payload budget
// (fresh allocation; the ingest hot path uses (*Report).DecodeBinary with
// a reused struct).
func DecodeReportBinary(data []byte, maxPayload int64) (*Report, error) {
	var rep Report
	if err := rep.DecodeBinary(data, maxPayload); err != nil {
		return nil, err
	}
	return &rep, nil
}
