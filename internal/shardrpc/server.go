package shardrpc

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/detector-net/detector/internal/httpx"
	"github.com/detector-net/detector/internal/metrics"
	"github.com/detector-net/detector/internal/obs"
	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
)

var (
	serverRequests = metrics.NewCounter("shardrpc_server_requests")
	serverRejected = metrics.NewCounter("shardrpc_server_rejected")
)

// serverOps times each RPC handler end to end (decode through encode). A
// shard server keeps its own op family instead of writing into obs.Stages:
// loopback clusters run shard servers in the coordinator's process, and the
// coordinator's stage histograms must keep meaning "coordinator time".
var serverOps = obs.NewHistogramVec("shardrpc_server_duration_seconds",
	"Shard RPC handler latency by operation.", "op", 8)

// requestCycle reads the coordinator's cycle ID from the X-Detector-Cycle
// header; 0 (untraced) when absent or malformed — a bad header must never
// fail the RPC, observability is strictly best-effort here.
func requestCycle(r *http.Request) uint64 {
	v := r.Header.Get(obs.CycleHeader)
	if v == "" {
		return 0
	}
	id, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0
	}
	return id
}

// Server is one controller shard as a network service: it owns a full
// materialization of the candidate matrix (derived locally from the
// topology, never shipped) and executes construction and localization work
// orders against it.
//
//	GET  /v1/ping       → PingResponse (liveness + engine fingerprint)
//	POST /v1/construct  → ConstructResponse
//	POST /v1/localize   → LocalizeResponse
//
// Requests select their codec via Content-Type: JSON (the v1 wire, the
// default) or the v2 length-prefixed binary codec (ContentTypeBinary);
// the response mirrors the request's codec and /v1/ping advertises both,
// which is how clients negotiate. Errors are structured (httpx.ErrorBody,
// always JSON): 400 for malformed or out-of-bounds payloads, 409 for a
// matrix-signature mismatch, 413 for an oversized body, 415 for an
// unknown media type, 422 for an engine rejection. A coordinator treats
// any of them as a dispatch failure and fails the work over to surviving
// shards.
type Server struct {
	ps       route.PathSet
	csr      *route.CSR
	numLinks int
	sig      uint64
	lim      Limits
	tr       *obs.Tracer
	// memo is the engine-local PMC warm-start cache: a component whose
	// exact content was constructed before (topology flap-back, component
	// reassignment back to this shard) reuses the cached selection
	// verbatim. Selections are deterministic per content, so the memo
	// never changes a response.
	memo *pmc.Memo
}

// NewServer builds a shard service over its own materialization of ps.
func NewServer(ps route.PathSet, numLinks int) *Server {
	return NewServerLimits(ps, numLinks, DefaultLimits())
}

// NewServerLimits is NewServer with explicit payload bounds.
func NewServerLimits(ps route.PathSet, numLinks int, lim Limits) *Server {
	csr := route.MaterializeCSR(ps)
	return &Server{
		ps:       ps,
		csr:      csr,
		numLinks: numLinks,
		sig:      route.MatrixSignature(csr, numLinks),
		lim:      lim,
		tr:       obs.NewTracer("shard", 32),
		memo:     pmc.NewMemo(0),
	}
}

// MatrixSig returns the engine's candidate-matrix signature.
func (s *Server) MatrixSig() uint64 { return s.sig }

// codecForContentType maps a Content-Type header value to a codec name:
// JSON when absent or naming JSON (every v1 peer), binary for the v2
// media type, "" for anything else.
func codecForContentType(ct string) string {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	switch strings.TrimSpace(ct) {
	case ContentTypeBinary:
		return CodecBinary
	case "", contentTypeJSON:
		return CodecJSON
	}
	return ""
}

// requestCodec reads the codec a request selected via Content-Type.
func requestCodec(r *http.Request) string {
	return codecForContentType(r.Header.Get("Content-Type"))
}

// decodeBody reads and decodes a bounded request body in the codec its
// Content-Type selects, mapping failures to the right status: 413 when
// the body (or a binary frame's declared length, or a gzip body's
// decompressed size) exceeds MaxBodyBytes, 400 for anything undecodable
// (truncation included), 415 for an unknown media type or content
// encoding. Both codecs and both encodings pass through the same Limits;
// compactness is never laxity.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, kind byte, v any) (string, bool) {
	codec := requestCodec(r)
	if codec == "" {
		serverRejected.Inc()
		httpx.Error(w, http.StatusUnsupportedMediaType,
			"unsupported content type %q (want %s or %s)",
			r.Header.Get("Content-Type"), contentTypeJSON, ContentTypeBinary)
		return codec, false
	}
	encoding := r.Header.Get("Content-Encoding")
	switch encoding {
	case "", CompressionIdentity, CompressionGzip:
	default:
		serverRejected.Inc()
		httpx.Error(w, http.StatusUnsupportedMediaType,
			"unsupported content encoding %q (want %s or %s)",
			encoding, CompressionIdentity, CompressionGzip)
		return codec, false
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.lim.MaxBodyBytes)
	data, err := io.ReadAll(r.Body)
	if err == nil && encoding == CompressionGzip {
		// The wire bytes are already bounded above; the bomb guard bounds
		// what they inflate to.
		data, err = gunzipBounded(data, s.lim.MaxBodyBytes)
	}
	if err == nil {
		if codec == CodecJSON {
			err = json.Unmarshal(data, v)
		} else {
			err = decodeBinaryInto(data, kind, s.lim.MaxBodyBytes, v)
		}
	}
	if err != nil {
		serverRejected.Inc()
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) || errors.Is(err, errFrameTooLarge) || errors.Is(err, errDecompressTooLarge) {
			httpx.Error(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", s.lim.MaxBodyBytes)
			return codec, false
		}
		httpx.Error(w, http.StatusBadRequest, "undecodable request: %v", err)
		return codec, false
	}
	return codec, true
}

// decodeBinaryInto dispatches a v2 frame to the kind's decoder and copies
// the result into the handler's request struct.
func decodeBinaryInto(data []byte, kind byte, maxPayload int64, v any) error {
	switch kind {
	case kindConstructReq:
		req, err := decodeConstructBinary(data, maxPayload)
		if err != nil {
			return err
		}
		*v.(*ConstructRequest) = *req
	case kindLocalizeReq:
		req, err := decodeLocalizeBinary(data, maxPayload)
		if err != nil {
			return err
		}
		*v.(*LocalizeRequest) = *req
	default:
		return errors.New("unknown payload kind")
	}
	return nil
}

// writeReply answers in the codec the request used; errors always travel
// as JSON (httpx.Error), success bodies follow the negotiated codec.
func writeReply(w http.ResponseWriter, codec string, v any) {
	if codec != CodecBinary {
		httpx.WriteJSON(w, v)
		return
	}
	var frame []byte
	switch resp := v.(type) {
	case ConstructResponse:
		frame = resp.encodeBinary()
	case LocalizeResponse:
		frame = resp.encodeBinary()
	default:
		httpx.WriteJSON(w, v)
		return
	}
	w.Header().Set("Content-Type", ContentTypeBinary)
	_, _ = w.Write(frame)
}

// writeReplyMaybeCompressed is writeReply for the localize path: when the
// request's Accept-Encoding admits gzip and the body clears the
// compression floor, the reply ships gzip with Content-Encoding set.
// (The client sets Accept-Encoding explicitly, which also switches off
// net/http's transparent response decompression — both ends own the
// encoding, so the wire-byte counters measure truth.)
func writeReplyMaybeCompressed(w http.ResponseWriter, r *http.Request, codec string, v any) {
	if !acceptsGzip(r.Header.Get("Accept-Encoding")) {
		writeReply(w, codec, v)
		return
	}
	var body []byte
	contentType := contentTypeJSON
	switch resp := v.(type) {
	case LocalizeResponse:
		if codec == CodecBinary {
			body, contentType = resp.encodeBinary(), ContentTypeBinary
		}
	}
	if body == nil {
		var err error
		if body, err = json.Marshal(v); err != nil {
			httpx.Error(w, http.StatusInternalServerError, "encode response: %v", err)
			return
		}
	}
	w.Header().Set("Content-Type", contentType)
	if len(body) >= compressMinBytes {
		w.Header().Set("Content-Encoding", CompressionGzip)
		body = gzipBytes(body)
	}
	_, _ = w.Write(body)
}

// Handler serves the shard RPC surface plus the standard GET /metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ping", func(w http.ResponseWriter, r *http.Request) {
		serverRequests.Inc()
		if !httpx.RequireMethod(w, r, http.MethodGet) {
			serverRejected.Inc()
			return
		}
		httpx.WriteJSON(w, PingResponse{
			V: SchemaVersion, MatrixSig: s.sig,
			NumLinks: s.numLinks, Paths: s.ps.Len(),
			Codecs:       []string{CodecJSON, CodecBinary},
			Compressions: []string{CompressionGzip},
		})
	})
	mux.HandleFunc("/v1/construct", func(w http.ResponseWriter, r *http.Request) {
		serverRequests.Inc()
		start := time.Now()
		defer func() { serverOps.With("construct").Observe(time.Since(start)) }()
		if !httpx.RequireMethod(w, r, http.MethodPost) {
			serverRejected.Inc()
			return
		}
		var req ConstructRequest
		codec, ok := s.decodeBody(w, r, kindConstructReq, &req)
		if !ok {
			return
		}
		if err := req.validate(s.lim, s.numLinks, s.ps.Len()); err != nil {
			serverRejected.Inc()
			httpx.Error(w, http.StatusBadRequest, "invalid construct request: %v", err)
			return
		}
		if req.MatrixSig != s.sig {
			serverRejected.Inc()
			httpx.Error(w, http.StatusConflict,
				"matrix signature %#016x does not match engine %#016x — coordinator and shard derive different candidate matrices",
				req.MatrixSig, s.sig)
			return
		}
		comps := make([]route.Component, len(req.Comps))
		for i, c := range req.Comps {
			comps[i] = route.Component{Links: c.Links, Paths: c.Paths}
		}
		// File the engine run under the coordinator's cycle: the joined
		// cycle's spans then answer "what did shard N do during cycle C"
		// from the shard's own /statusz.
		sp := s.tr.Join(requestCycle(r), "remote").Span("construct")
		res, err := pmc.ConstructComponentsWarm(s.ps, s.csr, comps, s.numLinks, req.Opt.decode(), s.memo)
		sp.EndErr(err)
		if err != nil {
			serverRejected.Inc()
			httpx.Error(w, http.StatusUnprocessableEntity, "construction failed: %v", err)
			return
		}
		writeReply(w, codec, ConstructResponse{
			V:        SchemaVersion,
			Selected: res.Selected,
			Stats: Stats{
				Components: res.Stats.Components, Candidates: res.Stats.Candidates,
				ScoreEvals: res.Stats.ScoreEvals, Reseeds: res.Stats.Reseeds,
				Selected: res.Stats.Selected, ElapsedNS: int64(res.Stats.Elapsed),
				CoverageMet: res.Stats.CoverageMet, IdentMet: res.Stats.IdentMet,
			},
		})
	})
	mux.HandleFunc("/v1/localize", func(w http.ResponseWriter, r *http.Request) {
		serverRequests.Inc()
		start := time.Now()
		defer func() { serverOps.With("localize").Observe(time.Since(start)) }()
		if !httpx.RequireMethod(w, r, http.MethodPost) {
			serverRejected.Inc()
			return
		}
		var req LocalizeRequest
		codec, ok := s.decodeBody(w, r, kindLocalizeReq, &req)
		if !ok {
			return
		}
		if err := req.validate(s.lim); err != nil {
			serverRejected.Inc()
			httpx.Error(w, http.StatusBadRequest, "invalid localize request: %v", err)
			return
		}
		sub, observations, cfg := req.decode()
		sp := s.tr.Join(requestCycle(r), "remote").Span("localize")
		res, err := pll.Localize(sub, observations, cfg)
		sp.EndErr(err)
		if err != nil {
			serverRejected.Inc()
			httpx.Error(w, http.StatusUnprocessableEntity, "localization failed: %v", err)
			return
		}
		resp := LocalizeResponse{
			V:                SchemaVersion,
			LossyPaths:       res.LossyPaths,
			UnexplainedPaths: res.UnexplainedPaths,
			ElapsedNS:        int64(res.Elapsed),
		}
		for _, v := range res.Bad {
			resp.Bad = append(resp.Bad, Verdict{Link: v.Link, Rate: v.Rate, Explained: v.Explained})
		}
		writeReplyMaybeCompressed(w, r, codec, resp)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if !httpx.RequireMethod(w, r, http.MethodGet) {
			return
		}
		obs.MetricsHandler()(w, r)
	})
	mux.HandleFunc("/healthz", obs.HealthzHandler(func() obs.Health {
		return obs.Health{
			Status:  "ok",
			Service: "shard",
			Detail:  fmt.Sprintf("matrix %#016x, %d links, %d paths", s.sig, s.numLinks, s.ps.Len()),
		}
	}))
	mux.HandleFunc("/statusz", obs.StatuszHandler("shard", s.tr, func() any {
		return map[string]any{
			"matrix_sig":   strconv.FormatUint(s.sig, 10),
			"num_links":    s.numLinks,
			"paths":        s.ps.Len(),
			"codecs":       []string{CodecJSON, CodecBinary},
			"compressions": []string{CompressionGzip},
		}
	}))
	return mux
}

// ListenAndServe runs the shard service on addr until the server fails
// (detectord -shard-serve wraps this).
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return srv.ListenAndServe()
}
