package shardrpc

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"github.com/detector-net/detector/internal/httpx"
	"github.com/detector-net/detector/internal/metrics"
	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
)

var (
	serverRequests = metrics.NewCounter("shardrpc_server_requests")
	serverRejected = metrics.NewCounter("shardrpc_server_rejected")
)

// Server is one controller shard as a network service: it owns a full
// materialization of the candidate matrix (derived locally from the
// topology, never shipped) and executes construction and localization work
// orders against it.
//
//	GET  /v1/ping       → PingResponse (liveness + engine fingerprint)
//	POST /v1/construct  → ConstructResponse
//	POST /v1/localize   → LocalizeResponse
//
// Errors are structured (httpx.ErrorBody): 400 for malformed or
// out-of-bounds payloads, 409 for a matrix-signature mismatch, 413 for an
// oversized body, 422 for an engine rejection. A coordinator treats any of
// them as a dispatch failure and fails the work over to surviving shards.
type Server struct {
	ps       route.PathSet
	csr      *route.CSR
	numLinks int
	sig      uint64
	lim      Limits
}

// NewServer builds a shard service over its own materialization of ps.
func NewServer(ps route.PathSet, numLinks int) *Server {
	return NewServerLimits(ps, numLinks, DefaultLimits())
}

// NewServerLimits is NewServer with explicit payload bounds.
func NewServerLimits(ps route.PathSet, numLinks int, lim Limits) *Server {
	csr := route.MaterializeCSR(ps)
	return &Server{
		ps:       ps,
		csr:      csr,
		numLinks: numLinks,
		sig:      route.MatrixSignature(csr, numLinks),
		lim:      lim,
	}
}

// MatrixSig returns the engine's candidate-matrix signature.
func (s *Server) MatrixSig() uint64 { return s.sig }

// decodeBody reads and decodes a bounded JSON body, mapping failures to
// the right status: 413 when the body exceeded MaxBodyBytes, 400 for
// anything undecodable (truncation included).
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.lim.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		serverRejected.Inc()
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpx.Error(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", s.lim.MaxBodyBytes)
			return false
		}
		httpx.Error(w, http.StatusBadRequest, "undecodable request: %v", err)
		return false
	}
	return true
}

// Handler serves the shard RPC surface plus the standard GET /metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ping", func(w http.ResponseWriter, r *http.Request) {
		serverRequests.Inc()
		if !httpx.RequireMethod(w, r, http.MethodGet) {
			serverRejected.Inc()
			return
		}
		httpx.WriteJSON(w, PingResponse{
			V: SchemaVersion, MatrixSig: s.sig,
			NumLinks: s.numLinks, Paths: s.ps.Len(),
		})
	})
	mux.HandleFunc("/v1/construct", func(w http.ResponseWriter, r *http.Request) {
		serverRequests.Inc()
		if !httpx.RequireMethod(w, r, http.MethodPost) {
			serverRejected.Inc()
			return
		}
		var req ConstructRequest
		if !s.decodeBody(w, r, &req) {
			return
		}
		if err := req.validate(s.lim, s.numLinks, s.ps.Len()); err != nil {
			serverRejected.Inc()
			httpx.Error(w, http.StatusBadRequest, "invalid construct request: %v", err)
			return
		}
		if req.MatrixSig != s.sig {
			serverRejected.Inc()
			httpx.Error(w, http.StatusConflict,
				"matrix signature %#016x does not match engine %#016x — coordinator and shard derive different candidate matrices",
				req.MatrixSig, s.sig)
			return
		}
		comps := make([]route.Component, len(req.Comps))
		for i, c := range req.Comps {
			comps[i] = route.Component{Links: c.Links, Paths: c.Paths}
		}
		res, err := pmc.ConstructComponents(s.ps, s.csr, comps, s.numLinks, req.Opt.decode())
		if err != nil {
			serverRejected.Inc()
			httpx.Error(w, http.StatusUnprocessableEntity, "construction failed: %v", err)
			return
		}
		httpx.WriteJSON(w, ConstructResponse{
			V:        SchemaVersion,
			Selected: res.Selected,
			Stats: Stats{
				Components: res.Stats.Components, Candidates: res.Stats.Candidates,
				ScoreEvals: res.Stats.ScoreEvals, Reseeds: res.Stats.Reseeds,
				Selected: res.Stats.Selected, ElapsedNS: int64(res.Stats.Elapsed),
				CoverageMet: res.Stats.CoverageMet, IdentMet: res.Stats.IdentMet,
			},
		})
	})
	mux.HandleFunc("/v1/localize", func(w http.ResponseWriter, r *http.Request) {
		serverRequests.Inc()
		if !httpx.RequireMethod(w, r, http.MethodPost) {
			serverRejected.Inc()
			return
		}
		var req LocalizeRequest
		if !s.decodeBody(w, r, &req) {
			return
		}
		if err := req.validate(s.lim); err != nil {
			serverRejected.Inc()
			httpx.Error(w, http.StatusBadRequest, "invalid localize request: %v", err)
			return
		}
		sub, obs, cfg := req.decode()
		res, err := pll.Localize(sub, obs, cfg)
		if err != nil {
			serverRejected.Inc()
			httpx.Error(w, http.StatusUnprocessableEntity, "localization failed: %v", err)
			return
		}
		resp := LocalizeResponse{
			V:                SchemaVersion,
			LossyPaths:       res.LossyPaths,
			UnexplainedPaths: res.UnexplainedPaths,
			ElapsedNS:        int64(res.Elapsed),
		}
		for _, v := range res.Bad {
			resp.Bad = append(resp.Bad, Verdict{Link: v.Link, Rate: v.Rate, Explained: v.Explained})
		}
		httpx.WriteJSON(w, resp)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if !httpx.RequireMethod(w, r, http.MethodGet) {
			return
		}
		httpx.WriteJSON(w, metrics.Counters())
	})
	return mux
}

// ListenAndServe runs the shard service on addr until the server fails
// (detectord -shard-serve wraps this).
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return srv.ListenAndServe()
}
