package shardrpc

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"github.com/detector-net/detector/internal/httpx"
	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

func TestCompressionNegotiation(t *testing.T) {
	f := topo.MustFattree(4)
	ps := route.NewFattreePaths(f)
	srv := NewServer(ps, f.NumLinks())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	auto := Dial(0, ts.URL, ClientOptions{})
	defer auto.Close()
	if got := auto.Compression(); got != CompressionIdentity {
		t.Fatalf("auto client before ping: compression %q, want %q", got, CompressionIdentity)
	}
	if err := auto.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if got := auto.Compression(); got != CompressionGzip {
		t.Fatalf("auto client after ping: compression %q, want %q (the server advertises gzip)", got, CompressionGzip)
	}

	off := Dial(1, ts.URL, ClientOptions{Compress: CompressOff})
	defer off.Close()
	if err := off.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if got := off.Compression(); got != CompressionIdentity {
		t.Fatalf("forced-off client: compression %q, want %q even against a gzip-capable shard", got, CompressionIdentity)
	}

	forced := Dial(2, ts.URL, ClientOptions{Compress: CompressGzip})
	defer forced.Close()
	if got := forced.Compression(); got != CompressionGzip {
		t.Fatalf("forced-gzip client before any ping: compression %q, want %q", got, CompressionGzip)
	}
}

func TestDialUnknownCompressionPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dial accepted compression policy \"zstd\"")
		}
	}()
	Dial(0, "http://127.0.0.1:0", ClientOptions{Compress: "zstd"})
}

// TestCompressedLocalizeRoundTrip is the wire guarantee under compression:
// verdicts from a gzip-compressed localize exchange must be bit-identical
// to the uncompressed ones, for both codecs, and the wire-byte counters
// must show the request actually shrank.
func TestCompressedLocalizeRoundTrip(t *testing.T) {
	f := topo.MustFattree(8)
	ps := route.NewFattreePaths(f)
	probes := route.NewProbes(ps, seq(0, 2000), f.NumLinks())
	window := syntheticWindow(probes, 3)
	ref, err := pll.Localize(probes, window, pll.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	for _, wire := range []string{WireJSON, WireBinary} {
		for _, compress := range []string{CompressOff, CompressGzip} {
			srv := NewServer(ps, f.NumLinks())
			ts := httptest.NewServer(srv.Handler())
			cl := Dial(0, ts.URL, ClientOptions{Wire: wire, Compress: compress})

			rawBefore, wireBefore := localizeRawBytes.Value(), localizeWireBytes.Value()
			got, err := cl.Localize(7, probes, window, pll.DefaultConfig())
			if err != nil {
				t.Fatalf("%s/%s: localize: %v", wire, compress, err)
			}
			if !reflect.DeepEqual(got.Bad, ref.Bad) ||
				got.LossyPaths != ref.LossyPaths || got.UnexplainedPaths != ref.UnexplainedPaths {
				t.Errorf("%s/%s: verdicts diverge from the local pass", wire, compress)
			}
			raw, wireBytes := localizeRawBytes.Value()-rawBefore, localizeWireBytes.Value()-wireBefore
			if raw <= 0 || wireBytes <= 0 {
				t.Fatalf("%s/%s: wire counters did not move (raw %d, wire %d)", wire, compress, raw, wireBytes)
			}
			switch compress {
			case CompressOff:
				if wireBytes != raw {
					t.Errorf("%s/off: wire %d != raw %d with compression off", wire, wireBytes, raw)
				}
			case CompressGzip:
				// The acceptance bar: a compressed localize window ships
				// at no more than half its encoded size.
				if wireBytes*2 > raw {
					t.Errorf("%s/gzip: wire %d > 0.5 x raw %d — compression ratio regressed", wire, wireBytes, raw)
				}
			}
			cl.Close()
			ts.Close()
		}
	}
}

// TestCompressionMixedFleetFallsBack pins the downgrade path: against a
// service whose ping does not advertise compression (an older build), an
// auto client must ship identity and still round-trip.
func TestCompressionMixedFleetFallsBack(t *testing.T) {
	f := topo.MustFattree(4)
	ps := route.NewFattreePaths(f)
	srv := NewServer(ps, f.NumLinks())
	inner := srv.Handler()
	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/ping" {
			httpx.WriteJSON(w, PingResponse{
				V: SchemaVersion, MatrixSig: srv.MatrixSig(),
				NumLinks: f.NumLinks(), Paths: ps.Len(),
				Codecs: []string{CodecJSON, CodecBinary},
				// No Compressions: a pre-compression build.
			})
			return
		}
		if r.Header.Get("Content-Encoding") != "" {
			t.Errorf("auto client sent Content-Encoding %q to a shard that never advertised compression", r.Header.Get("Content-Encoding"))
		}
		inner.ServeHTTP(w, r)
	}))
	defer legacy.Close()

	cl := Dial(0, legacy.URL, ClientOptions{})
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if got := cl.Compression(); got != CompressionIdentity {
		t.Fatalf("auto client negotiated %q against a legacy shard, want %q", got, CompressionIdentity)
	}
	probes := route.NewProbes(ps, seq(0, 64), f.NumLinks())
	window := syntheticWindow(probes, 1)
	ref, err := pll.Localize(probes, window, pll.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.Localize(1, probes, window, pll.DefaultConfig())
	if err != nil {
		t.Fatalf("localize against legacy shard: %v", err)
	}
	if !reflect.DeepEqual(got.Bad, ref.Bad) {
		t.Error("verdicts diverge over the identity fallback")
	}
}

func TestUnknownContentEncodingRejected(t *testing.T) {
	f := topo.MustFattree(4)
	ps := route.NewFattreePaths(f)
	ts := httptest.NewServer(NewServer(ps, f.NumLinks()).Handler())
	defer ts.Close()

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/localize", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentTypeJSON)
	req.Header.Set("Content-Encoding", "br")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("Content-Encoding br answered %d, want %d", resp.StatusCode, http.StatusUnsupportedMediaType)
	}
}

// TestDecompressionBombRejected pins the bomb guard: a small gzip body
// inflating past MaxBodyBytes must answer 413, never buffer the expansion.
func TestDecompressionBombRejected(t *testing.T) {
	f := topo.MustFattree(4)
	ps := route.NewFattreePaths(f)
	lim := DefaultLimits()
	lim.MaxBodyBytes = 64 << 10
	ts := httptest.NewServer(NewServerLimits(ps, f.NumLinks(), lim).Handler())
	defer ts.Close()

	// 8 MB of zeros gzips to a few KB — under the wire cap, far over the
	// decompressed cap.
	bomb := gzipBytes(make([]byte, 8<<20))
	if int64(len(bomb)) >= lim.MaxBodyBytes {
		t.Fatalf("fixture broken: bomb wire size %d not under the body cap", len(bomb))
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/localize", bytes.NewReader(bomb))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentTypeJSON)
	req.Header.Set("Content-Encoding", CompressionGzip)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("decompression bomb answered %d, want %d", resp.StatusCode, http.StatusRequestEntityTooLarge)
	}
}

func TestPingAdvertisesCompression(t *testing.T) {
	f := topo.MustFattree(4)
	ps := route.NewFattreePaths(f)
	ts := httptest.NewServer(NewServer(ps, f.NumLinks()).Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/ping")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr PingResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range pr.Compressions {
		found = found || c == CompressionGzip
	}
	if !found {
		t.Fatalf("ping advertises %v, want gzip present", pr.Compressions)
	}
}

// FuzzCompressedFrame throws arbitrary bytes at the compressed-frame
// decode path: gunzipBounded must never panic or exceed its output bound,
// and gzip round-trips must be identity. Valid gzip streams additionally
// flow into the binary frame decoder exactly as a compressed localize
// body would server-side.
func FuzzCompressedFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x1f, 0x8b})
	f.Add(gzipBytes([]byte("hello")))
	f.Add(gzipBytes(make([]byte, 4096)))
	lreq := LocalizeRequest{V: SchemaVersion, NumLinks: 3,
		Paths: []Path{{Links: []topo.LinkID{0, 1, 2}}}}
	f.Add(gzipBytes(lreq.encodeBinary()))

	f.Fuzz(func(t *testing.T, data []byte) {
		const maxOut = 1 << 20
		out, err := gunzipBounded(data, maxOut)
		if err == nil {
			if int64(len(out)) > maxOut {
				t.Fatalf("gunzipBounded produced %d bytes past its %d bound", len(out), maxOut)
			}
			// A decompressed body feeds the binary decoder server-side;
			// it must hold under arbitrary decompressed content.
			var lr LocalizeRequest
			_ = decodeBinaryInto(out, kindLocalizeReq, maxOut, &lr)
		}
		// Round-trip: compressing arbitrary bytes and decompressing must
		// reproduce them exactly. The bound is the input length, so a
		// bound error here would itself be a bug.
		back, err := gunzipBounded(gzipBytes(data), int64(len(data)))
		if err != nil {
			t.Fatalf("gzip round-trip failed: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatal("gzip round-trip is not identity")
		}
	})
}

// seq returns [lo, hi) — selection indices for matrix fixtures.
func seq(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

// BenchmarkLocalizeWireBytes measures the localize request's wire cost
// with compression off and on, over the binary codec (the production
// fleet's floor). CI runs it per push and reads rawB/op vs wireB/op for
// the compression ratio.
func BenchmarkLocalizeWireBytes(b *testing.B) {
	f := topo.MustFattree(8)
	ps := route.NewFattreePaths(f)
	probes := route.NewProbes(ps, seq(0, 2000), f.NumLinks())
	window := syntheticWindow(probes, 3)
	for _, bench := range []struct{ name, compress string }{
		{"identity", CompressOff},
		{"gzip", CompressGzip},
	} {
		b.Run(bench.name, func(b *testing.B) {
			srv := NewServer(ps, f.NumLinks())
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			cl := Dial(0, ts.URL, ClientOptions{Wire: WireBinary, Compress: bench.compress})
			defer cl.Close()
			rawBefore, wireBefore := localizeRawBytes.Value(), localizeWireBytes.Value()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cl.Localize(0, probes, window, pll.DefaultConfig()); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			raw := float64(localizeRawBytes.Value()-rawBefore) / float64(b.N)
			wire := float64(localizeWireBytes.Value()-wireBefore) / float64(b.N)
			b.ReportMetric(raw, "rawB/op")
			b.ReportMetric(wire, "wireB/op")
			if raw > 0 {
				b.ReportMetric(wire/raw, "ratio")
			}
		})
	}
}
