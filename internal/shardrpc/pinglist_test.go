package shardrpc

import (
	"reflect"
	"testing"

	"github.com/detector-net/detector/internal/topo"
)

func samplePinglistDelta() *PinglistDelta {
	return &PinglistDelta{
		Node:        42,
		FromVersion: 3,
		Version:     4,
		RatePPS:     10,
		WindowMS:    30000,
		ReportURL:   "http://diag:8080/report",
		Removed:     []uint32{2, 7, 19},
		Added: []PingEntry{
			{PathID: 5, Route: []topo.NodeID{42, 128, 200, 130, 47}, FlowLabels: []uint32{33434, 33435}, DSCP: 46},
			{PathID: 19, Route: []topo.NodeID{42, 128, 57}, FlowLabels: []uint32{33434}},
			{PathID: 33, Route: []topo.NodeID{42, 128, 201, 131, 88}, DSCP: 8},
		},
	}
}

// TestPinglistDeltaRoundTrip pins the kind-7 frame: encode → decode must be
// the identity, for both an incremental delta and a full snapshot.
func TestPinglistDeltaRoundTrip(t *testing.T) {
	for name, d := range map[string]*PinglistDelta{
		"delta": samplePinglistDelta(),
		"snapshot": {
			Node: 7, Version: 1, RatePPS: 10, WindowMS: 1000,
			ReportURL: "http://diag/report",
			Added: []PingEntry{
				{PathID: 0, Route: []topo.NodeID{7, 3, 9}, FlowLabels: []uint32{1, 2, 3}},
				{PathID: 1, Route: []topo.NodeID{7, 3, 10}},
			},
		},
		"removed-only": {Node: 1, FromVersion: 5, Version: 6, Removed: []uint32{0, 1, 2}},
	} {
		frame := d.EncodeBinary()
		if kind, err := FrameKind(frame); err != nil || kind != KindPinglistDelta {
			t.Fatalf("%s: frame kind %d err %v, want %d", name, kind, err, KindPinglistDelta)
		}
		got, err := DecodePinglistDeltaBinary(frame, 1<<20)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		// Decode normalizes empty sequences to nil-or-empty; compare through
		// a re-encode as well as field equality on the populated parts.
		if got.Node != d.Node || got.FromVersion != d.FromVersion || got.Version != d.Version ||
			got.RatePPS != d.RatePPS || got.WindowMS != d.WindowMS || got.ReportURL != d.ReportURL {
			t.Fatalf("%s: header mismatch: %+v vs %+v", name, got, d)
		}
		if len(got.Removed) != len(d.Removed) || (len(d.Removed) > 0 && !reflect.DeepEqual(got.Removed, d.Removed)) {
			t.Fatalf("%s: removed mismatch: %v vs %v", name, got.Removed, d.Removed)
		}
		if !reflect.DeepEqual(got.Added, d.Added) {
			t.Fatalf("%s: added mismatch: %+v vs %+v", name, got.Added, d.Added)
		}
		if re := got.EncodeBinary(); !reflect.DeepEqual(re, frame) {
			t.Fatalf("%s: re-encode is not byte-identical (%d vs %d bytes)", name, len(re), len(frame))
		}
	}
}

// TestPinglistDeltaRejects pins the decoder's structural validation.
func TestPinglistDeltaRejects(t *testing.T) {
	good := samplePinglistDelta().EncodeBinary()

	// Truncations at every byte boundary must error, never panic.
	for i := 0; i < len(good); i++ {
		var d PinglistDelta
		if err := d.DecodeBinary(good[:i], 1<<20); err == nil {
			t.Fatalf("truncation at %d bytes decoded cleanly", i)
		}
	}

	// Trailing garbage.
	var d PinglistDelta
	bad := append(append([]byte(nil), good...), 0x00)
	// Fix up the frame length so the payload includes the extra byte.
	bad2 := (&PinglistDelta{}).appendTrailing(good)
	if bad2 != nil {
		if err := d.DecodeBinary(bad2, 1<<20); err == nil {
			t.Fatal("trailing payload byte decoded cleanly")
		}
	}
	_ = bad

	// Version not past base.
	stale := samplePinglistDelta()
	stale.Version = stale.FromVersion
	if err := d.DecodeBinary(stale.EncodeBinary(), 1<<20); err == nil {
		t.Fatal("version == base decoded cleanly")
	}

	// Oversized payload budget.
	if err := d.DecodeBinary(good, 8); err == nil {
		t.Fatal("payload over budget decoded cleanly")
	}

	// Wrong kind.
	sr := SummaryReport{Node: 1, Version: 1, Windows: 1}
	if err := d.DecodeBinary(sr.EncodeBinary(), 1<<20); err == nil {
		t.Fatal("summary frame decoded as pinglist delta")
	}
}

// appendTrailing rebuilds a frame with one extra payload byte (helper for
// the trailing-bytes rejection case).
func (*PinglistDelta) appendTrailing(frame []byte) []byte {
	payload, err := openFrame(frame, kindPinglistDelta, 1<<20)
	if err != nil {
		return nil
	}
	grown := append(append([]byte(nil), payload...), 0x00)
	return sealFrame(kindPinglistDelta, grown)
}

// FuzzPinglistDeltaDecode drives arbitrary bytes through the decoder: it
// must reject or round-trip, never panic, and anything it accepts must
// re-encode to a decodable frame with the same content.
func FuzzPinglistDeltaDecode(f *testing.F) {
	f.Add(samplePinglistDelta().EncodeBinary())
	f.Add((&PinglistDelta{Node: 1, Version: 2, FromVersion: 1}).EncodeBinary())
	f.Add([]byte{0xD7, 0xC2, 2, 7, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var d PinglistDelta
		if err := d.DecodeBinary(data, 1<<20); err != nil {
			return
		}
		re := d.EncodeBinary()
		var d2 PinglistDelta
		if err := d2.DecodeBinary(re, 1<<20); err != nil {
			t.Fatalf("re-encode of accepted frame rejected: %v", err)
		}
		if !reflect.DeepEqual(d.Removed, d2.Removed) || !reflect.DeepEqual(d.Added, d2.Added) ||
			d.Node != d2.Node || d.Version != d2.Version {
			t.Fatalf("re-encode changed content: %+v vs %+v", d, d2)
		}
	})
}
