// Package wire defines the binary probe packet format exchanged between
// pingers, fabric switches and responders over UDP.
//
// The packet carries an explicit source route (the node IDs to traverse),
// which is the emulation analog of the paper's IP-in-IP encapsulation
// through a fixed core switch (§3.2): forwarding state lives entirely in
// the packet, switches just follow it. A synthetic flow label stands in for
// the source-port rotation the pinger uses for packet entropy (§6.1/§7),
// and is what deterministic blackhole rules hash on.
package wire

import (
	"encoding/binary"
	"fmt"

	"github.com/detector-net/detector/internal/topo"
)

// Magic identifies probe packets.
const Magic uint16 = 0xDE7E

// Version is the current format version.
const Version = 1

// Flag bits.
const (
	// FlagReply marks the echo direction.
	FlagReply uint8 = 1 << iota
	// FlagConfirm marks a loss-confirmation retransmit (the pinger sends
	// two extra probes of the same content when it detects a loss, §3.1).
	FlagConfirm
	// FlagECN marks congestion experienced: a switch on the path set it
	// (the emulation analog of the IP ECN CE codepoint). Reversed copies
	// flags, so a mark on the request survives into the echo and reaches
	// the pinger.
	FlagECN
)

// MaxRouteLen bounds the source route; Fattree server-to-server needs 7.
const MaxRouteLen = 32

// headerLen is the fixed prefix before the route.
const headerLen = 2 + 1 + 1 + 1 + 1 + 1 + 1 + 8 + 4 + 4 + 4 + 8 + 8

// Packet is one probe or echo.
type Packet struct {
	Flags  uint8
	DSCP   uint8
	HopIdx uint8 // index of the node currently holding the packet
	// ProbeID identifies the probe uniquely per pinger; Seq counts
	// retransmits of the same content.
	ProbeID uint64
	PathID  uint32 // pinglist path this probe exercises
	Seq     uint32
	// FlowLabel diversifies flow identity across probes of one path.
	FlowLabel uint32
	// SendNS and EchoNS are pinger send and responder echo timestamps.
	SendNS int64
	EchoNS int64
	// Route is the full node sequence, source server to destination
	// server inclusive.
	Route []topo.NodeID
}

// MarshaledSize returns the encoded length.
func (p *Packet) MarshaledSize() int { return headerLen + 4*len(p.Route) }

// Marshal encodes the packet, appending to buf.
func (p *Packet) Marshal(buf []byte) ([]byte, error) {
	if len(p.Route) < 2 {
		return nil, fmt.Errorf("wire: route needs at least 2 nodes, got %d", len(p.Route))
	}
	if len(p.Route) > MaxRouteLen {
		return nil, fmt.Errorf("wire: route length %d exceeds max %d", len(p.Route), MaxRouteLen)
	}
	if int(p.HopIdx) >= len(p.Route) {
		return nil, fmt.Errorf("wire: hop index %d outside route of %d", p.HopIdx, len(p.Route))
	}
	var b [headerLen]byte
	binary.BigEndian.PutUint16(b[0:], Magic)
	b[2] = Version
	b[3] = p.Flags
	b[4] = p.DSCP
	b[5] = p.HopIdx
	b[6] = uint8(len(p.Route))
	b[7] = 0 // reserved
	binary.BigEndian.PutUint64(b[8:], p.ProbeID)
	binary.BigEndian.PutUint32(b[16:], p.PathID)
	binary.BigEndian.PutUint32(b[20:], p.Seq)
	binary.BigEndian.PutUint32(b[24:], p.FlowLabel)
	binary.BigEndian.PutUint64(b[28:], uint64(p.SendNS))
	binary.BigEndian.PutUint64(b[36:], uint64(p.EchoNS))
	buf = append(buf, b[:]...)
	for _, n := range p.Route {
		var nb [4]byte
		binary.BigEndian.PutUint32(nb[:], uint32(n))
		buf = append(buf, nb[:]...)
	}
	return buf, nil
}

// Unmarshal decodes a packet.
func Unmarshal(b []byte) (*Packet, error) {
	if len(b) < headerLen {
		return nil, fmt.Errorf("wire: packet too short: %d bytes", len(b))
	}
	if binary.BigEndian.Uint16(b[0:]) != Magic {
		return nil, fmt.Errorf("wire: bad magic %#x", binary.BigEndian.Uint16(b[0:]))
	}
	if b[2] != Version {
		return nil, fmt.Errorf("wire: unsupported version %d", b[2])
	}
	routeLen := int(b[6])
	if routeLen < 2 || routeLen > MaxRouteLen {
		return nil, fmt.Errorf("wire: bad route length %d", routeLen)
	}
	if len(b) < headerLen+4*routeLen {
		return nil, fmt.Errorf("wire: truncated route: have %d bytes, need %d", len(b), headerLen+4*routeLen)
	}
	p := &Packet{
		Flags:     b[3],
		DSCP:      b[4],
		HopIdx:    b[5],
		ProbeID:   binary.BigEndian.Uint64(b[8:]),
		PathID:    binary.BigEndian.Uint32(b[16:]),
		Seq:       binary.BigEndian.Uint32(b[20:]),
		FlowLabel: binary.BigEndian.Uint32(b[24:]),
		SendNS:    int64(binary.BigEndian.Uint64(b[28:])),
		EchoNS:    int64(binary.BigEndian.Uint64(b[36:])),
		Route:     make([]topo.NodeID, routeLen),
	}
	if int(p.HopIdx) >= routeLen {
		return nil, fmt.Errorf("wire: hop index %d outside route of %d", p.HopIdx, routeLen)
	}
	for i := 0; i < routeLen; i++ {
		p.Route[i] = topo.NodeID(binary.BigEndian.Uint32(b[headerLen+4*i:]))
	}
	return p, nil
}

// Src returns the originating server of the route.
func (p *Packet) Src() topo.NodeID { return p.Route[0] }

// Dst returns the final server of the route.
func (p *Packet) Dst() topo.NodeID { return p.Route[len(p.Route)-1] }

// Current returns the node the packet is at.
func (p *Packet) Current() topo.NodeID { return p.Route[p.HopIdx] }

// AtDestination reports whether the packet reached the route's end.
func (p *Packet) AtDestination() bool { return int(p.HopIdx) == len(p.Route)-1 }

// PrevHop returns the node the packet came from (valid when HopIdx > 0).
func (p *Packet) PrevHop() topo.NodeID { return p.Route[p.HopIdx-1] }

// NextHop returns the node the packet goes to next.
func (p *Packet) NextHop() (topo.NodeID, error) {
	if p.AtDestination() {
		return 0, fmt.Errorf("wire: packet already at destination")
	}
	return p.Route[p.HopIdx+1], nil
}

// Reversed returns the echo packet: same identifiers, reversed route,
// reply flag set, hop index reset to the new source.
func (p *Packet) Reversed(echoNS int64) *Packet {
	rev := &Packet{
		Flags:     p.Flags | FlagReply,
		DSCP:      p.DSCP,
		HopIdx:    0,
		ProbeID:   p.ProbeID,
		PathID:    p.PathID,
		Seq:       p.Seq,
		FlowLabel: p.FlowLabel,
		SendNS:    p.SendNS,
		EchoNS:    echoNS,
		Route:     make([]topo.NodeID, len(p.Route)),
	}
	for i, n := range p.Route {
		rev.Route[len(p.Route)-1-i] = n
	}
	return rev
}
