package wire

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/detector-net/detector/internal/topo"
)

func samplePacket() *Packet {
	return &Packet{
		Flags:     FlagConfirm,
		DSCP:      46,
		HopIdx:    2,
		ProbeID:   0xDEADBEEF01020304,
		PathID:    77,
		Seq:       3,
		FlowLabel: 0xABCD1234,
		SendNS:    1234567890123,
		EchoNS:    0,
		Route:     []topo.NodeID{10, 4, 0, 6, 12},
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	p := samplePacket()
	b, err := p.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != p.MarshaledSize() {
		t.Fatalf("encoded %d bytes, MarshaledSize says %d", len(b), p.MarshaledSize())
	}
	q, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if q.Flags != p.Flags || q.DSCP != p.DSCP || q.HopIdx != p.HopIdx ||
		q.ProbeID != p.ProbeID || q.PathID != p.PathID || q.Seq != p.Seq ||
		q.FlowLabel != p.FlowLabel || q.SendNS != p.SendNS || q.EchoNS != p.EchoNS {
		t.Fatalf("round trip mismatch: %+v vs %+v", q, p)
	}
	for i := range p.Route {
		if q.Route[i] != p.Route[i] {
			t.Fatalf("route mismatch at %d", i)
		}
	}
}

func TestMarshalRoundTripQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	f := func(flags, dscp uint8, probeID uint64, pathID, seq, label uint32, sendNS int64, routeSeed int64) bool {
		rng := rand.New(rand.NewSource(routeSeed))
		route := make([]topo.NodeID, 2+rng.Intn(MaxRouteLen-2))
		for i := range route {
			route[i] = topo.NodeID(rng.Intn(1 << 20))
		}
		p := &Packet{
			Flags: flags, DSCP: dscp, HopIdx: uint8(rng.Intn(len(route))),
			ProbeID: probeID, PathID: pathID, Seq: seq, FlowLabel: label,
			SendNS: sendNS, Route: route,
		}
		b, err := p.Marshal(nil)
		if err != nil {
			return false
		}
		q, err := Unmarshal(b)
		if err != nil || q.ProbeID != p.ProbeID || len(q.Route) != len(p.Route) {
			return false
		}
		for i := range route {
			if q.Route[i] != route[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMarshalValidation(t *testing.T) {
	p := samplePacket()
	p.Route = p.Route[:1]
	if _, err := p.Marshal(nil); err == nil {
		t.Error("1-node route accepted")
	}
	p = samplePacket()
	p.Route = make([]topo.NodeID, MaxRouteLen+1)
	if _, err := p.Marshal(nil); err == nil {
		t.Error("oversized route accepted")
	}
	p = samplePacket()
	p.HopIdx = uint8(len(p.Route))
	if _, err := p.Marshal(nil); err == nil {
		t.Error("out-of-route hop index accepted")
	}
}

func TestUnmarshalValidation(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Error("short packet accepted")
	}
	p := samplePacket()
	b, _ := p.Marshal(nil)
	b[0] = 0x00 // corrupt magic
	if _, err := Unmarshal(b); err == nil {
		t.Error("bad magic accepted")
	}
	b, _ = p.Marshal(nil)
	b[2] = 99 // version
	if _, err := Unmarshal(b); err == nil {
		t.Error("bad version accepted")
	}
	b, _ = p.Marshal(nil)
	if _, err := Unmarshal(b[:len(b)-4]); err == nil {
		t.Error("truncated route accepted")
	}
	b, _ = p.Marshal(nil)
	b[5] = b[6] // hop index == route length
	if _, err := Unmarshal(b); err == nil {
		t.Error("out-of-route hop index accepted")
	}
}

func TestRouteAccessors(t *testing.T) {
	p := samplePacket()
	if p.Src() != 10 || p.Dst() != 12 {
		t.Fatalf("src/dst = %d/%d", p.Src(), p.Dst())
	}
	if p.Current() != 0 {
		t.Fatalf("current = %d, want 0", p.Current())
	}
	if p.PrevHop() != 4 {
		t.Fatalf("prev = %d, want 4", p.PrevHop())
	}
	next, err := p.NextHop()
	if err != nil || next != 6 {
		t.Fatalf("next = %d, %v", next, err)
	}
	p.HopIdx = uint8(len(p.Route) - 1)
	if !p.AtDestination() {
		t.Fatal("should be at destination")
	}
	if _, err := p.NextHop(); err == nil {
		t.Fatal("NextHop at destination should error")
	}
}

func TestReversed(t *testing.T) {
	p := samplePacket()
	r := p.Reversed(999)
	if r.Flags&FlagReply == 0 {
		t.Fatal("reply flag unset")
	}
	if r.Src() != p.Dst() || r.Dst() != p.Src() {
		t.Fatal("route not reversed")
	}
	if r.HopIdx != 0 {
		t.Fatal("hop index not reset")
	}
	if r.EchoNS != 999 || r.SendNS != p.SendNS {
		t.Fatal("timestamps wrong")
	}
	// Original unchanged.
	if p.Flags&FlagReply != 0 || p.Route[0] != 10 {
		t.Fatal("Reversed mutated the original")
	}
}
