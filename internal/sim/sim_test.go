package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

func TestFlowKeyReverseIsInvolution(t *testing.T) {
	f := func(src, dst int32, sp, dp uint16, dscp uint8) bool {
		k := FlowKey{Src: topo.NodeID(src), Dst: topo.NodeID(dst), SrcPort: sp, DstPort: dp, Proto: UDPProto, DSCP: dscp}
		return k.Reverse().Reverse() == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlowKeyHashSpreads(t *testing.T) {
	seen := make(map[uint64]bool)
	for p := 0; p < 1000; p++ {
		k := FlowKey{Src: 1, Dst: 2, SrcPort: uint16(p), DstPort: 7, Proto: UDPProto}
		seen[k.Hash()] = true
	}
	if len(seen) < 1000 {
		t.Fatalf("hash collisions: %d distinct of 1000", len(seen))
	}
}

func TestLossModels(t *testing.T) {
	f := FlowKey{Src: 1, Dst: 2, SrcPort: 1000, DstPort: 7}
	if (FullLoss{}).DropProb(f) != 1 || (FullLoss{}).MeanRate() != 1 {
		t.Error("FullLoss wrong")
	}
	r := RandomLoss{P: 0.25}
	if r.DropProb(f) != 0.25 || r.MeanRate() != 0.25 {
		t.Error("RandomLoss wrong")
	}
	d := DeterministicLoss{Buckets: 0x0000FFFF, Seed: 42}
	if d.MeanRate() != 0.5 {
		t.Errorf("DeterministicLoss mean rate %v, want 0.5", d.MeanRate())
	}
	// Deterministic: same flow always same fate.
	if d.DropProb(f) != d.DropProb(f) {
		t.Error("deterministic loss not deterministic")
	}
	// Across many flows, the drop fraction approaches the mask fraction.
	dropped := 0
	const n = 4000
	for p := 0; p < n; p++ {
		k := FlowKey{Src: 3, Dst: 9, SrcPort: uint16(p), DstPort: 7}
		if d.DropProb(k) == 1 {
			dropped++
		}
	}
	frac := float64(dropped) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("blackhole hit fraction %.3f, want ~0.5", frac)
	}
	if (FullLoss{Gray: true}).Silent() != true || (FullLoss{}).Silent() != false {
		t.Error("Silent flag wrong")
	}
	for _, k := range []LossKind{FullLossKind, DeterministicKind, RandomKind} {
		if k.String() == "" {
			t.Error("empty kind name")
		}
	}
}

func TestGenerateScenario(t *testing.T) {
	f := topo.MustFattree(4)
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 3, 5} {
		cfg := DefaultFailureConfig()
		cfg.Failures = n
		s, err := Generate(f.Topology, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		if got := countFaults(s); got != n {
			t.Fatalf("scenario has %d fault events, want %d", got, n)
		}
		if len(s.BadLinks()) == 0 {
			t.Fatal("no bad links")
		}
		for _, l := range s.BadLinks() {
			if _, ok := s.Model(l); !ok {
				t.Fatalf("BadLinks lists %d but Model misses it", l)
			}
		}
	}
}

func TestGenerateScenarioValidation(t *testing.T) {
	f := topo.MustFattree(4)
	rng := rand.New(rand.NewSource(1))
	if _, err := Generate(f.Topology, FailureConfig{Failures: 0}, rng); err == nil {
		t.Error("zero failures accepted")
	}
}

func TestGenerateSwitchFailureFailsAllLinks(t *testing.T) {
	f := topo.MustFattree(4)
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultFailureConfig()
	cfg.Failures = 1
	cfg.SwitchFrac = 1 // force switch faults
	s, err := Generate(f.Topology, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	sw := s.Failures[0].FromSwitch
	if sw < 0 {
		t.Fatal("expected a switch fault")
	}
	if len(s.Failures) != f.Degree(sw) {
		t.Fatalf("switch fault failed %d links, switch degree is %d", len(s.Failures), f.Degree(sw))
	}
}

func TestProbeOnceFullLoss(t *testing.T) {
	f := topo.MustFattree(4)
	links := f.PathLinks(f.ToRAt(0, 0), f.ToRAt(1, 0), 0, nil)
	n := NewNetwork(f.Topology, NewScenario(Failure{Link: links[1], Model: FullLoss{}, FromSwitch: -1}))
	rng := rand.New(rand.NewSource(1))
	fk := FlowKey{Src: 1, Dst: 2, SrcPort: 1000, DstPort: 7, Proto: UDPProto}
	if n.ProbeOnce(links, fk, rng) {
		t.Fatal("probe survived a full-loss link")
	}
	// A disjoint path is unaffected.
	other := f.PathLinks(f.ToRAt(2, 0), f.ToRAt(3, 0), 3, nil)
	if !n.ProbeOnce(other, fk, rng) {
		t.Fatal("probe lost on a healthy path")
	}
}

func TestProbePathRandomLossRate(t *testing.T) {
	f := topo.MustFattree(4)
	links := f.PathLinks(f.ToRAt(0, 0), f.ToRAt(1, 0), 0, nil)
	n := NewNetwork(f.Topology, NewScenario(Failure{Link: links[0], Model: RandomLoss{P: 0.2}, FromSwitch: -1}))
	rng := rand.New(rand.NewSource(7))
	fk := FlowKey{Src: 1, Dst: 2, SrcPort: 1000, DstPort: 7, Proto: UDPProto}
	lost := n.ProbePath(links, fk, 20000, 16, rng)
	// Probe + echo both cross the bad link: loss ~ 1-(0.8)^2 = 0.36.
	got := float64(lost) / 20000
	if got < 0.32 || got > 0.40 {
		t.Errorf("loss fraction %.3f, want ~0.36", got)
	}
}

func TestProbePathBlackholePartial(t *testing.T) {
	f := topo.MustFattree(4)
	links := f.PathLinks(f.ToRAt(0, 0), f.ToRAt(1, 0), 0, nil)
	n := NewNetwork(f.Topology, NewScenario(Failure{
		Link: links[1], Model: DeterministicLoss{Buckets: 0x000000FF, Seed: 99}, FromSwitch: -1,
	}))
	rng := rand.New(rand.NewSource(7))
	fk := FlowKey{Src: 1, Dst: 2, SrcPort: 1000, DstPort: 7, Proto: UDPProto}
	lost := n.ProbePath(links, fk, 1600, 16, rng)
	// 8/32 buckets blackholed; port rotation gives 16 flows forward and 16
	// reverse; expect a partial, non-zero, non-total loss.
	if lost == 0 || lost == 1600 {
		t.Fatalf("blackhole lost %d of 1600, want partial", lost)
	}
}

func TestCountersSkipGrayFailures(t *testing.T) {
	f := topo.MustFattree(4)
	links := f.PathLinks(f.ToRAt(0, 0), f.ToRAt(1, 0), 0, nil)
	rng := rand.New(rand.NewSource(1))
	fk := FlowKey{Src: 1, Dst: 2, SrcPort: 1000, DstPort: 7, Proto: UDPProto}

	loud := NewNetwork(f.Topology, NewScenario(Failure{Link: links[0], Model: FullLoss{}, FromSwitch: -1}))
	loud.ProbePath(links, fk, 100, 16, rng)
	if loud.Counters[links[0]] == 0 {
		t.Fatal("loud failure left no counter trace")
	}

	gray := NewNetwork(f.Topology, NewScenario(Failure{Link: links[0], Model: FullLoss{Gray: true}, FromSwitch: -1}))
	gray.ProbePath(links, fk, 100, 16, rng)
	if gray.Counters[links[0]] != 0 {
		t.Fatal("gray failure incremented counters — SNMP would see it")
	}
}

// TestEndToEndLocalization is the integration test of the whole detection
// pipeline at simulator level: PMC builds a (3,1) matrix on Fattree(4),
// a failure is injected, a window is simulated, PLL localizes it.
func TestEndToEndLocalization(t *testing.T) {
	f := topo.MustFattree(4)
	ps := route.NewFattreePaths(f)
	res, err := pmc.Construct(ps, f.NumLinks(), pmc.Options{Alpha: 3, Beta: 1, Decompose: true, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	probes := route.NewProbes(ps, res.Selected, f.NumLinks())

	rng := rand.New(rand.NewSource(11))
	hits, trials := 0, 30
	for i := 0; i < trials; i++ {
		bad := f.SwitchLinks()[rng.Intn(len(f.SwitchLinks()))]
		scen := NewScenario(Failure{Link: bad, Model: FullLoss{}, FromSwitch: -1})
		n := NewNetwork(f.Topology, scen)
		obs := SimulateWindow(n, probes, ProbeWindowConfig{ProbesPerPath: 100}, rng)
		lr, err := pll.Localize(probes, obs, pll.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		got := lr.BadLinks()
		if len(got) == 1 && got[0] == bad {
			hits++
		}
	}
	if hits < trials*9/10 {
		t.Fatalf("full-loss localization hit %d of %d, want >= 90%%", hits, trials)
	}
}

func TestGenerateLoadAndLatency(t *testing.T) {
	f := topo.MustFattree(4)
	rng := rand.New(rand.NewSource(5))
	load, err := GenerateLoad(f, DefaultWorkloadConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(load.BytesPerSec) == 0 {
		t.Fatal("empty load")
	}
	if _, err := GenerateLoad(f, WorkloadConfig{}, rng); err == nil {
		t.Error("zero config accepted")
	}

	m := DefaultLatencyModel()
	src, dst := f.ServerID[0][0][0], f.ServerID[1][0][0]
	links, _ := route.FattreeServerPath(f, src, dst, 0)
	rtts := m.RTTSamples(links, load, 200, rng)
	mean := time.Duration(0)
	for _, r := range rtts {
		mean += r
	}
	mean /= time.Duration(len(rtts))
	// 6 links x 2 directions x >=20us base each.
	if mean < 240*time.Microsecond {
		t.Errorf("mean RTT %v below the base-delay floor", mean)
	}
	if mean > 10*time.Millisecond {
		t.Errorf("mean RTT %v absurdly high for an idle-ish fabric", mean)
	}
	if j := Jitter(rtts); j <= 0 {
		t.Errorf("jitter %v, want positive under queueing noise", j)
	}
	if Jitter(rtts[:1]) != 0 {
		t.Error("jitter of a single sample should be 0")
	}
}

// TestLatencyGrowsWithLoad: queueing delay must increase with utilization.
func TestLatencyGrowsWithLoad(t *testing.T) {
	f := topo.MustFattree(4)
	m := DefaultLatencyModel()
	rng := rand.New(rand.NewSource(9))
	src, dst := f.ServerID[0][0][0], f.ServerID[1][0][0]
	links, _ := route.FattreeServerPath(f, src, dst, 0)

	idle := NewLoad()
	busy := NewLoad()
	busy.Add(links, 100e6) // 800 Mbps on every hop

	meanOf := func(ld *Load) float64 {
		s := 0.0
		for i := 0; i < 400; i++ {
			s += float64(m.RTT(links, ld, rng))
		}
		return s / 400
	}
	if meanOf(busy) <= meanOf(idle)*1.05 {
		t.Error("80% utilization did not raise RTT")
	}
}

func TestLogUniformBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		v := logUniform(1e-4, 1, rng)
		if v < 1e-4 || v > 1 {
			t.Fatalf("logUniform out of bounds: %v", v)
		}
	}
	if logUniform(0, 1, rng) != 0 {
		t.Error("degenerate lo should return lo")
	}
	// Log-uniform median of [1e-4, 1] is 1e-2.
	below := 0
	for i := 0; i < 2000; i++ {
		if logUniform(1e-4, 1, rng) < 1e-2 {
			below++
		}
	}
	if math.Abs(float64(below)/2000-0.5) > 0.05 {
		t.Errorf("log-uniform median off: %d of 2000 below 1e-2", below)
	}
}
