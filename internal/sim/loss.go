package sim

import (
	"fmt"
	"math/bits"
)

// LossKind classifies the paper's three emulated failure modes (§6.2).
type LossKind uint8

const (
	// FullLossKind drops every packet on the link (link down, switch down).
	FullLossKind LossKind = iota
	// DeterministicKind drops all packets of a flow subset (packet
	// blackhole, misconfigured rules): loss depends only on the flow key.
	DeterministicKind
	// RandomKind drops each packet independently with a fixed probability
	// (bit flips, CRC errors, buffer overflow).
	RandomKind
	// DelayKind inflates latency without dropping anything (slow forwarding
	// path); a gray-failure mode beyond the paper's three (§7).
	DelayKind
	// CongestionKind is sustained high utilization: queueing delay, ECN
	// marks, tail drops near saturation.
	CongestionKind
	// IncastKind is bursty fan-in congestion at a ToR downlink.
	IncastKind
	// FlappingKind alternates the link between dead and healthy across
	// measurement windows.
	FlappingKind
)

// String names the kind as in the paper.
func (k LossKind) String() string {
	switch k {
	case FullLossKind:
		return "full"
	case DeterministicKind:
		return "deterministic-partial"
	case RandomKind:
		return "random-partial"
	case DelayKind:
		return "delayed"
	case CongestionKind:
		return "congested"
	case IncastKind:
		return "incast"
	case FlappingKind:
		return "flapping"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// LossModel decides the drop probability of a packet on a failed link.
type LossModel interface {
	// DropProb returns the probability that a packet of flow f is dropped.
	DropProb(f FlowKey) float64
	// Kind reports the failure mode.
	Kind() LossKind
	// MeanRate is the expected drop fraction over uniformly random flows —
	// the ground-truth loss rate of the link.
	MeanRate() float64
	// Silent reports a gray failure: drops that do not bump switch
	// counters (undetectable by SNMP polling, paper §2).
	Silent() bool
}

// FullLoss drops everything.
type FullLoss struct {
	// Gray marks the drop as silent (no counter increment).
	Gray bool
}

// DropProb implements LossModel.
func (FullLoss) DropProb(FlowKey) float64 { return 1 }

// Kind implements LossModel.
func (FullLoss) Kind() LossKind { return FullLossKind }

// MeanRate implements LossModel.
func (FullLoss) MeanRate() float64 { return 1 }

// Silent implements LossModel.
func (m FullLoss) Silent() bool { return m.Gray }

// RandomLoss drops packets independently with probability P.
type RandomLoss struct {
	P    float64
	Gray bool
}

// DropProb implements LossModel.
func (m RandomLoss) DropProb(FlowKey) float64 { return m.P }

// Kind implements LossModel.
func (RandomLoss) Kind() LossKind { return RandomKind }

// MeanRate implements LossModel.
func (m RandomLoss) MeanRate() float64 { return m.P }

// Silent implements LossModel.
func (m RandomLoss) Silent() bool { return m.Gray }

// DeterministicLoss models a packet blackhole: flows are hashed into 32
// buckets and the flows landing in a masked bucket lose every packet.
// deTector catches these because its probes vary ports (hence buckets);
// systems that reuse one flow per path may miss them entirely.
type DeterministicLoss struct {
	// Buckets is the 32-bit mask of dropped buckets.
	Buckets uint32
	// Seed decorrelates the bucket hash from ECMP hashing.
	Seed uint64
	Gray bool
}

// DropProb implements LossModel.
func (m DeterministicLoss) DropProb(f FlowKey) float64 {
	b := (f.Hash() ^ m.Seed) % 32
	if m.Buckets&(1<<b) != 0 {
		return 1
	}
	return 0
}

// Kind implements LossModel.
func (DeterministicLoss) Kind() LossKind { return DeterministicKind }

// MeanRate implements LossModel.
func (m DeterministicLoss) MeanRate() float64 {
	return float64(bits.OnesCount32(m.Buckets)) / 32
}

// Silent implements LossModel.
func (m DeterministicLoss) Silent() bool { return m.Gray }
