package sim

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

// WorkloadConfig shapes the synthetic background traffic that stands in for
// the IMC'10 university data-center traces the paper replays (§6.3): mostly
// short HTTP-like flows with a heavy tail, random server pairs, ECMP routed.
type WorkloadConfig struct {
	// FlowsPerSecond is the aggregate flow arrival rate.
	FlowsPerSecond float64
	// MeanFlowBytes and SigmaLog parameterize the log-normal flow size
	// distribution (mean of the underlying normal is derived).
	MeanFlowBytes float64
	SigmaLog      float64
	// SampleFlows is how many flows are drawn to estimate the per-link
	// load split; more samples smooth the estimate.
	SampleFlows int
}

// DefaultWorkloadConfig models a busy HTTP-dominated rack workload.
func DefaultWorkloadConfig() WorkloadConfig {
	return WorkloadConfig{
		FlowsPerSecond: 2000,
		MeanFlowBytes:  20 << 10, // 20 KiB mean, heavy-tailed
		SigmaLog:       1.5,
		SampleFlows:    4000,
	}
}

// Load is the steady-state per-link byte rate of the workload.
type Load struct {
	// BytesPerSec maps link to one-direction load; probes and workload
	// flows both add here.
	BytesPerSec map[topo.LinkID]float64
}

// NewLoad returns an empty load map.
func NewLoad() *Load { return &Load{BytesPerSec: make(map[topo.LinkID]float64)} }

// Add accumulates rate on every link of a path.
func (ld *Load) Add(links []topo.LinkID, bytesPerSec float64) {
	for _, l := range links {
		ld.BytesPerSec[l] += bytesPerSec
	}
}

// GenerateLoad estimates per-link load by sampling random ECMP-routed flows
// between servers of the Fattree and spreading the aggregate byte rate
// proportionally to sampled flow sizes.
func GenerateLoad(f *topo.Fattree, cfg WorkloadConfig, rng *rand.Rand) (*Load, error) {
	if cfg.SampleFlows <= 0 || cfg.FlowsPerSecond <= 0 || cfg.MeanFlowBytes <= 0 {
		return nil, fmt.Errorf("sim: workload config must be positive: %+v", cfg)
	}
	servers := f.Servers()
	if len(servers) < 2 {
		return nil, fmt.Errorf("sim: topology has %d servers", len(servers))
	}
	// Log-normal with the requested mean: mu = ln(mean) - sigma^2/2.
	mu := math.Log(cfg.MeanFlowBytes) - cfg.SigmaLog*cfg.SigmaLog/2

	type sample struct {
		links []topo.LinkID
		bytes float64
	}
	samples := make([]sample, 0, cfg.SampleFlows)
	totalBytes := 0.0
	for i := 0; i < cfg.SampleFlows; i++ {
		src := servers[rng.Intn(len(servers))]
		dst := servers[rng.Intn(len(servers))]
		if src == dst {
			continue
		}
		size := math.Exp(mu + cfg.SigmaLog*rng.NormFloat64())
		fk := FlowKey{Src: src, Dst: dst, SrcPort: uint16(1024 + rng.Intn(60000)), DstPort: 80, Proto: 6}
		links, _ := route.ECMPFattreePath(f, src, dst, fk.Hash())
		samples = append(samples, sample{links, size})
		totalBytes += size
	}
	aggregate := cfg.FlowsPerSecond * cfg.MeanFlowBytes // bytes/sec offered
	load := NewLoad()
	for _, s := range samples {
		load.Add(s.links, aggregate*s.bytes/totalBytes)
	}
	return load, nil
}
