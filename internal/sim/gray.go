package sim

// Gray-failure and congestion fault models (paper §7's richer failure-mode
// discrimination). The paper's three loss kinds (loss.go) describe what a
// link drops; real incidents also perturb what a link *delays* and *marks*:
// congestion inflates RTT and sets ECN, incast does so in bursts, a slow
// forwarding path inflates latency without losing anything, and a flapping
// link alternates between perfect and dead across measurement windows. The
// models here produce those signals so the monitoring plane can tell a
// congested link from a dying one.

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/detector-net/detector/internal/topo"
)

// SignalModel is implemented by fault models that perturb more than loss:
// extra one-way packet delay and ECN marking. SimulateSignalWindow consults
// it per packet per traversal; models without it add no delay and never
// mark.
type SignalModel interface {
	// LinkSignal returns the extra one-way delay and the ECN-mark
	// probability for one packet of flow f crossing the link during
	// measurement window w.
	LinkSignal(f FlowKey, w int, rng *rand.Rand) (extra time.Duration, ecnProb float64)
}

// WindowedModel is implemented by time-varying faults whose drop
// probability depends on the measurement window (flapping links). The
// window-free DropProb remains the marginal rate for callers without a
// window clock (the fabric rule table, MeanRate accounting).
type WindowedModel interface {
	DropProbAt(f FlowKey, w int) float64
}

// DelayFault inflates a link's latency without dropping anything — a slow
// forwarding path, a rerouted optical span, a overloaded linecard CPU. The
// loss pipeline never sees it; only the RTT signal does.
type DelayFault struct {
	// Extra is the added one-way delay per traversal.
	Extra time.Duration
	// Sigma spreads the added delay (half-normal), producing the jitter a
	// real slow path shows.
	Sigma time.Duration
}

// DropProb implements LossModel: a delay fault loses nothing.
func (DelayFault) DropProb(FlowKey) float64 { return 0 }

// Kind implements LossModel.
func (DelayFault) Kind() LossKind { return DelayKind }

// MeanRate implements LossModel.
func (DelayFault) MeanRate() float64 { return 0 }

// Silent implements LossModel: no drops, so nothing for counters to see.
func (DelayFault) Silent() bool { return true }

// LinkSignal implements SignalModel.
func (m DelayFault) LinkSignal(_ FlowKey, _ int, rng *rand.Rand) (time.Duration, float64) {
	d := m.Extra
	if m.Sigma > 0 {
		d += time.Duration(math.Abs(rng.NormFloat64()) * float64(m.Sigma))
	}
	return d, 0
}

// CongestionFault holds a link at a sustained utilization: queueing delay
// from the LatencyModel's M/M/1 approximation, RED-style ECN marking above
// a threshold, and tail drops as the queue saturates. Drops are counted
// (queue drops bump switch counters); the discriminating signal is the ECN
// fraction and the inflated RTT, not the loss itself.
type CongestionFault struct {
	// Rho is the sustained utilization in (0,1).
	Rho float64
	// Queue is the queueing model; the zero value takes DefaultLatencyModel.
	Queue LatencyModel
	// MarkFloor is the utilization where ECN marking starts (default 0.6);
	// marking probability ramps linearly to MaxMark at rho = 1.
	MarkFloor float64
	// MaxMark is the marking probability at saturation (default 0.6).
	MaxMark float64
	// DropFloor is the utilization where tail drops start (default 0.85);
	// drop probability ramps linearly to MaxDrop at rho = 1.
	DropFloor float64
	// MaxDrop is the tail-drop probability at saturation (default 0.08).
	MaxDrop float64
}

func (m CongestionFault) norm() CongestionFault {
	if m.Queue.CapacityBps == 0 {
		m.Queue = DefaultLatencyModel()
	}
	if m.MarkFloor == 0 {
		m.MarkFloor = 0.6
	}
	if m.MaxMark == 0 {
		m.MaxMark = 0.6
	}
	if m.DropFloor == 0 {
		m.DropFloor = 0.85
	}
	if m.MaxDrop == 0 {
		m.MaxDrop = 0.08
	}
	return m
}

// ramp maps rho through a linear ramp from floor to 1.
func ramp(rho, floor, max float64) float64 {
	if rho <= floor {
		return 0
	}
	p := (rho - floor) / (1 - floor) * max
	if p > max {
		return max
	}
	return p
}

// DropProb implements LossModel: tail drops past DropFloor.
func (m CongestionFault) DropProb(FlowKey) float64 {
	m = m.norm()
	return ramp(m.Rho, m.DropFloor, m.MaxDrop)
}

// Kind implements LossModel.
func (CongestionFault) Kind() LossKind { return CongestionKind }

// MeanRate implements LossModel.
func (m CongestionFault) MeanRate() float64 { return m.DropProb(FlowKey{}) }

// Silent implements LossModel: queue drops are counted by the switch.
func (CongestionFault) Silent() bool { return false }

// LinkSignal implements SignalModel: queueing delay at Rho plus RED marks.
func (m CongestionFault) LinkSignal(_ FlowKey, _ int, rng *rand.Rand) (time.Duration, float64) {
	m = m.norm()
	return m.Queue.DelayAtRho(m.Rho, rng) - m.Queue.baseDelay(), ramp(m.Rho, m.MarkFloor, m.MaxMark)
}

// IncastFault models synchronized fan-in at a ToR downlink: the link is
// healthy most of the time and saturated during bursts. Each packet lands
// in a burst with probability Duty; burst packets see the Burst congestion
// effects (queueing delay, ECN, tail drops). The bimodal RTT distribution
// is what makes incast's jitter signature.
type IncastFault struct {
	// Duty is the fraction of time spent in a burst (default 0.25).
	Duty float64
	// Burst is the congestion state during a burst; zero Rho defaults 0.97.
	Burst CongestionFault
}

func (m IncastFault) norm() IncastFault {
	if m.Duty == 0 {
		m.Duty = 0.25
	}
	if m.Burst.Rho == 0 {
		m.Burst.Rho = 0.97
	}
	m.Burst = m.Burst.norm()
	return m
}

// DropProb implements LossModel: the duty-weighted burst drop rate.
func (m IncastFault) DropProb(f FlowKey) float64 {
	m = m.norm()
	return m.Duty * m.Burst.DropProb(f)
}

// Kind implements LossModel.
func (IncastFault) Kind() LossKind { return IncastKind }

// MeanRate implements LossModel.
func (m IncastFault) MeanRate() float64 { return m.DropProb(FlowKey{}) }

// Silent implements LossModel.
func (IncastFault) Silent() bool { return false }

// LinkSignal implements SignalModel: burst packets queue and mark, the rest
// pass clean.
func (m IncastFault) LinkSignal(f FlowKey, w int, rng *rand.Rand) (time.Duration, float64) {
	m = m.norm()
	if rng.Float64() >= m.Duty {
		return 0, 0
	}
	return m.Burst.LinkSignal(f, w, rng)
}

// FlappingFault alternates a link between dead and healthy across
// measurement windows — the classic failing-transceiver pattern that a
// single-window localizer reports as an intermittent full loss and an
// operator chases as a ghost. Down windows drop everything.
type FlappingFault struct {
	// DownWindows and UpWindows set the flap cycle (defaults 1 and 1: the
	// link alternates every window, down on even windows).
	DownWindows, UpWindows int
	// Gray suppresses the drop counters while down.
	Gray bool
}

func (m FlappingFault) cycle() (down, period int) {
	down = m.DownWindows
	if down <= 0 {
		down = 1
	}
	up := m.UpWindows
	if up <= 0 {
		up = 1
	}
	return down, down + up
}

// DropProbAt implements WindowedModel: down windows drop everything.
func (m FlappingFault) DropProbAt(_ FlowKey, w int) float64 {
	down, period := m.cycle()
	if w%period < down {
		return 1
	}
	return 0
}

// DropProb implements LossModel: the window-free marginal (duty cycle).
func (m FlappingFault) DropProb(FlowKey) float64 { return m.MeanRate() }

// Kind implements LossModel.
func (FlappingFault) Kind() LossKind { return FlappingKind }

// MeanRate implements LossModel.
func (m FlappingFault) MeanRate() float64 {
	down, period := m.cycle()
	return float64(down) / float64(period)
}

// Silent implements LossModel.
func (m FlappingFault) Silent() bool { return m.Gray }

// SilentPartial is the gray failure proper: random partial drops that
// never bump a switch counter (a corrupting linecard, a lossy backplane
// lane). Identical to RandomLoss{Gray: true}, named for scenario suites.
func SilentPartial(rate float64) LossModel { return RandomLoss{P: rate, Gray: true} }

// FaultMode names one scenario family of the gray-failure suite; each mode
// maps to one verdict class the diagnoser is expected to emit.
type FaultMode string

const (
	// ModeLossy is the control: counted random partial loss (CRC errors,
	// buffer overruns) — expected verdict "lossy".
	ModeLossy FaultMode = "lossy"
	// ModeSilentPartial drops without counters — expected "silent-partial".
	ModeSilentPartial FaultMode = "silent-partial"
	// ModeCongested sustains high utilization — expected "congested".
	ModeCongested FaultMode = "congested"
	// ModeDelayed inflates latency only — expected "delayed".
	ModeDelayed FaultMode = "delayed"
	// ModeIncast is bursty congestion at ToR downlinks — expected
	// "congested" (incast is congestion, localized at the fan-in link).
	ModeIncast FaultMode = "incast"
	// ModeFlapping alternates dead/healthy per window — expected "flapping".
	ModeFlapping FaultMode = "flapping"
)

// FaultModes lists every mode of the suite, in sweep order.
func FaultModes() []FaultMode {
	return []FaultMode{ModeLossy, ModeSilentPartial, ModeCongested, ModeDelayed, ModeIncast, ModeFlapping}
}

// ParseFaultMode validates a mode name (CLI flags).
func ParseFaultMode(s string) (FaultMode, error) {
	for _, m := range FaultModes() {
		if string(m) == s {
			return m, nil
		}
	}
	return "", fmt.Errorf("sim: unknown fault mode %q (want one of %v)", s, FaultModes())
}

// GenerateMode draws a scenario of n same-mode link faults on distinct
// links. Incast faults land on ToR downlinks (edge–aggregation tier, the
// fan-in bottleneck); every other mode draws from all switch-to-switch
// links, mirroring table45FailureConfig's exclusion of server links (which
// the ToR-level probe matrix does not traverse).
func GenerateMode(t *topo.Topology, mode FaultMode, n int, rng *rand.Rand) (*Scenario, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sim: fault count must be positive, got %d", n)
	}
	var cands []topo.LinkID
	for _, l := range t.Links {
		if l.Tier == topo.TierServerEdge {
			continue
		}
		if mode == ModeIncast && l.Tier != topo.TierEdgeAgg {
			continue
		}
		cands = append(cands, l.ID)
	}
	if n > len(cands) {
		return nil, fmt.Errorf("sim: %d faults exceed %d candidate links for mode %s", n, len(cands), mode)
	}
	// Partial Fisher-Yates over a copy: n distinct links.
	picked := append([]topo.LinkID(nil), cands...)
	failures := make([]Failure, 0, n)
	for i := 0; i < n; i++ {
		j := i + rng.Intn(len(picked)-i)
		picked[i], picked[j] = picked[j], picked[i]
		m, err := drawModeModel(mode, rng)
		if err != nil {
			return nil, err
		}
		failures = append(failures, Failure{Link: picked[i], Model: m, FromSwitch: -1})
	}
	return NewScenario(failures...), nil
}

// drawModeModel draws one fault model of the mode with randomized severity.
func drawModeModel(mode FaultMode, rng *rand.Rand) (LossModel, error) {
	switch mode {
	case ModeLossy:
		return RandomLoss{P: logUniform(0.02, 0.3, rng)}, nil
	case ModeSilentPartial:
		return SilentPartial(logUniform(0.02, 0.3, rng)), nil
	case ModeCongested:
		return CongestionFault{Rho: 0.88 + 0.1*rng.Float64()}, nil
	case ModeDelayed:
		extra := time.Duration(logUniform(1e6, 5e6, rng)) // 1–5 ms
		return DelayFault{Extra: extra, Sigma: extra / 4}, nil
	case ModeIncast:
		return IncastFault{Duty: 0.15 + 0.25*rng.Float64()}, nil
	case ModeFlapping:
		return FlappingFault{DownWindows: 1, UpWindows: 1}, nil
	}
	return nil, fmt.Errorf("sim: unknown fault mode %q", mode)
}
