package sim

import (
	"math"
	"math/rand"
	"time"

	"github.com/detector-net/detector/internal/topo"
)

// LatencyModel converts per-link utilization into packet delays with an
// M/M/1-style queueing approximation: each link adds a fixed base delay
// plus a queueing wait whose mean grows as rho/(1-rho). It produces the
// RTT and jitter curves of paper Fig. 4(c)/(d): nearly flat until probe
// traffic pushes links toward saturation — which at deTector's default 10
// probes/second never happens.
type LatencyModel struct {
	// CapacityBps is the link capacity in bits per second (testbed: 1 GbE).
	CapacityBps float64
	// BaseDelay is the fixed per-link, per-direction latency (switching +
	// propagation).
	BaseDelay time.Duration
	// PacketBits is the mean packet size used for the service time.
	PacketBits float64
	// MaxRho clamps utilization to keep the queue stable.
	MaxRho float64
}

// DefaultLatencyModel matches the paper's 1 GbE testbed.
func DefaultLatencyModel() LatencyModel {
	return LatencyModel{
		CapacityBps: 1e9,
		BaseDelay:   20 * time.Microsecond,
		PacketBits:  12000, // 1500 B
		MaxRho:      0.95,
	}
}

// linkDelay samples the one-way delay of one link at the given load.
func (m LatencyModel) linkDelay(bytesPerSec float64, rng *rand.Rand) time.Duration {
	return m.DelayAtRho(bytesPerSec*8/m.CapacityBps, rng)
}

// DelayAtRho samples the one-way delay of one link held at utilization rho:
// base delay, service time, and an exponentially distributed M/M/1 wait.
// It draws exactly one random number, so callers composing it keep their
// RNG sequences stable.
func (m LatencyModel) DelayAtRho(rho float64, rng *rand.Rand) time.Duration {
	if rho > m.MaxRho {
		rho = m.MaxRho
	}
	service := m.PacketBits / m.CapacityBps // seconds
	meanWait := service * rho / (1 - rho)
	wait := rng.ExpFloat64() * meanWait
	return m.BaseDelay + time.Duration((service+wait)*float64(time.Second))
}

// baseDelay is the deterministic idle-link delay: base plus service time.
func (m LatencyModel) baseDelay() time.Duration {
	return m.BaseDelay + time.Duration(m.PacketBits/m.CapacityBps*float64(time.Second))
}

// RTT samples one request/response round trip across the links under load.
func (m LatencyModel) RTT(links []topo.LinkID, load *Load, rng *rand.Rand) time.Duration {
	var d time.Duration
	for _, l := range links {
		d += m.linkDelay(load.BytesPerSec[l], rng) // forward
		d += m.linkDelay(load.BytesPerSec[l], rng) // reverse
	}
	return d
}

// RTTSamples draws n round trips and returns them in order.
func (m LatencyModel) RTTSamples(links []topo.LinkID, load *Load, n int, rng *rand.Rand) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = m.RTT(links, load, rng)
	}
	return out
}

// Jitter computes the RFC 3550 interarrival jitter estimate of an RTT
// series: the smoothed mean of |D(i-1,i)|.
func Jitter(rtts []time.Duration) time.Duration {
	if len(rtts) < 2 {
		return 0
	}
	j := 0.0
	for i := 1; i < len(rtts); i++ {
		d := math.Abs(float64(rtts[i] - rtts[i-1]))
		j += (d - j) / 16
	}
	return time.Duration(j)
}
