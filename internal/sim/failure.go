package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/detector-net/detector/internal/topo"
)

// Failure is one injected fault: a loss model bound to a link. When the
// fault emulates a switch failure, FromSwitch names the switch and the
// scenario holds one Failure per incident link.
type Failure struct {
	Link       topo.LinkID
	Model      LossModel
	FromSwitch topo.NodeID // -1 for link-level failures
}

// Scenario is a set of concurrent failures — one "failure event" in the
// paper's terminology (§6.4 cites Gill et al.: <10% of events have more
// than four concurrent failures).
type Scenario struct {
	Failures []Failure
	models   map[topo.LinkID]LossModel
}

// NewScenario builds a scenario from explicit failures. Later failures on
// the same link override earlier ones.
func NewScenario(failures ...Failure) *Scenario {
	s := &Scenario{models: make(map[topo.LinkID]LossModel, len(failures))}
	for _, f := range failures {
		s.Failures = append(s.Failures, f)
		s.models[f.Link] = f.Model
	}
	return s
}

// Model returns the loss model of a link, if failed.
func (s *Scenario) Model(l topo.LinkID) (LossModel, bool) {
	m, ok := s.models[l]
	return m, ok
}

// BadLinks returns the ground-truth failed links, sorted — what a perfect
// localizer would output.
func (s *Scenario) BadLinks() []topo.LinkID {
	out := make([]topo.LinkID, 0, len(s.models))
	for l := range s.models {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FailureConfig parameterizes random scenario generation following the
// failure measurements the paper builds on (Gill et al. SIGCOMM'11 for
// failure mix, Benson et al. SIGCOMM'10 for per-tier loss distribution).
type FailureConfig struct {
	// Failures is the number of concurrent faults (links + switches).
	Failures int
	// SwitchFrac is the fraction of faults that take down a whole switch.
	SwitchFrac float64
	// FullFrac, DetFrac, RandFrac weight the loss kinds for link faults;
	// they need not sum to one (they are normalized).
	FullFrac, DetFrac, RandFrac float64
	// MinRate and MaxRate bound random-partial loss rates; rates are drawn
	// log-uniformly, matching the paper's 1e-4..1 span (§6.2).
	MinRate, MaxRate float64
	// GrayFrac is the fraction of faults that are silent (no counters).
	GrayFrac float64
	// TierWeight biases link selection by tier; zero-valued tiers use
	// weight 1. Benson et al. observe most loss at the edge.
	TierWeight map[topo.Tier]float64
	// SwitchKinds weights switch choice by node kind for switch faults;
	// zero-valued kinds use weight 1.
	SwitchKinds map[topo.NodeKind]float64
	// IncludeServerLinks allows faults on server-ToR links.
	IncludeServerLinks bool
}

// DefaultFailureConfig mirrors the paper's evaluation setup.
func DefaultFailureConfig() FailureConfig {
	return FailureConfig{
		Failures:   1,
		SwitchFrac: 0.25, // Gill et al.: most failure events are link-level
		FullFrac:   0.3,
		DetFrac:    0.35,
		RandFrac:   0.35,
		MinRate:    1e-4,
		MaxRate:    1,
		GrayFrac:   0.3,
		TierWeight: map[topo.Tier]float64{
			topo.TierServerEdge: 0.5,
			topo.TierEdgeAgg:    1.5, // edge-adjacent links dominate loss events
			topo.TierAggCore:    1.0,
		},
	}
}

// Generate draws a random failure scenario. Faults never collide: a link
// (or switch) is failed at most once per scenario.
func Generate(t *topo.Topology, cfg FailureConfig, rng *rand.Rand) (*Scenario, error) {
	if cfg.Failures <= 0 {
		return nil, fmt.Errorf("sim: Failures must be positive, got %d", cfg.Failures)
	}
	candLinks := candidateLinks(t, cfg)
	if len(candLinks) == 0 {
		return nil, fmt.Errorf("sim: topology has no candidate links")
	}
	var switches []topo.NodeID
	for _, n := range t.Nodes {
		if n.Kind != topo.Server {
			switches = append(switches, n.ID)
		}
	}

	s := &Scenario{models: make(map[topo.LinkID]LossModel)}
	usedSwitch := make(map[topo.NodeID]bool)
	guard := 0
	for len(s.Failures) == 0 || countFaults(s) < cfg.Failures {
		if guard++; guard > 1000*cfg.Failures {
			return nil, fmt.Errorf("sim: could not place %d faults (topology too small?)", cfg.Failures)
		}
		if rng.Float64() < cfg.SwitchFrac {
			sw := switches[rng.Intn(len(switches))]
			if usedSwitch[sw] {
				continue
			}
			usedSwitch[sw] = true
			gray := rng.Float64() < cfg.GrayFrac
			for _, l := range t.LinksOf(sw) {
				if _, dup := s.models[l]; dup {
					continue
				}
				m := FullLoss{Gray: gray}
				s.Failures = append(s.Failures, Failure{Link: l, Model: m, FromSwitch: sw})
				s.models[l] = m
			}
			continue
		}
		l := pickWeightedLink(t, candLinks, cfg, rng)
		if _, dup := s.models[l]; dup {
			continue
		}
		m := drawModel(cfg, rng)
		s.Failures = append(s.Failures, Failure{Link: l, Model: m, FromSwitch: -1})
		s.models[l] = m
	}
	return s, nil
}

// countFaults counts fault events: a switch failure is one event however
// many links it kills.
func countFaults(s *Scenario) int {
	events := 0
	seen := make(map[topo.NodeID]bool)
	for _, f := range s.Failures {
		if f.FromSwitch >= 0 {
			if !seen[f.FromSwitch] {
				seen[f.FromSwitch] = true
				events++
			}
		} else {
			events++
		}
	}
	return events
}

func candidateLinks(t *topo.Topology, cfg FailureConfig) []topo.LinkID {
	var out []topo.LinkID
	for _, l := range t.Links {
		if !cfg.IncludeServerLinks && l.Tier == topo.TierServerEdge {
			continue
		}
		out = append(out, l.ID)
	}
	return out
}

func pickWeightedLink(t *topo.Topology, cands []topo.LinkID, cfg FailureConfig, rng *rand.Rand) topo.LinkID {
	weight := func(l topo.LinkID) float64 {
		w := cfg.TierWeight[t.Link(l).Tier]
		if w == 0 {
			w = 1
		}
		return w
	}
	total := 0.0
	for _, l := range cands {
		total += weight(l)
	}
	x := rng.Float64() * total
	for _, l := range cands {
		x -= weight(l)
		if x <= 0 {
			return l
		}
	}
	return cands[len(cands)-1]
}

func drawModel(cfg FailureConfig, rng *rand.Rand) LossModel {
	gray := rng.Float64() < cfg.GrayFrac
	total := cfg.FullFrac + cfg.DetFrac + cfg.RandFrac
	if total <= 0 {
		total, cfg.FullFrac = 1, 1
	}
	x := rng.Float64() * total
	switch {
	case x < cfg.FullFrac:
		return FullLoss{Gray: gray}
	case x < cfg.FullFrac+cfg.DetFrac:
		// 1..16 of 32 buckets blackholed: 3%..50% of flows.
		n := 1 + rng.Intn(16)
		var mask uint32
		for bits := 0; bits < n; {
			b := uint32(1) << rng.Intn(32)
			if mask&b == 0 {
				mask |= b
				bits++
			}
		}
		return DeterministicLoss{Buckets: mask, Seed: rng.Uint64(), Gray: gray}
	default:
		return RandomLoss{P: logUniform(cfg.MinRate, cfg.MaxRate, rng), Gray: gray}
	}
}

// logUniform draws from [lo, hi] with log-uniform density.
func logUniform(lo, hi float64, rng *rand.Rand) float64 {
	if lo <= 0 || hi <= lo {
		return lo
	}
	return math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
}
