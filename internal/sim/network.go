package sim

import (
	"math/rand"
	"time"

	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

// Network simulates probe transmission over a topology with an active
// failure scenario. It is single-goroutine by design: callers own the RNG
// and may shard simulations across goroutines with independent Networks.
type Network struct {
	Topo     *topo.Topology
	Scenario *Scenario
	// Baseline is the ambient per-link loss rate from transient congestion
	// and bit errors (paper §5.1 cites 1e-4..1e-5); it is non-silent.
	Baseline float64
	// Counters accumulates per-link non-silent drops when enabled — the
	// data source of the SNMP baseline.
	Counters map[topo.LinkID]int64
}

// NewNetwork wires a topology to a scenario. scenario may be nil (healthy).
func NewNetwork(t *topo.Topology, s *Scenario) *Network {
	if s == nil {
		s = NewScenario()
	}
	return &Network{Topo: t, Scenario: s, Counters: make(map[topo.LinkID]int64)}
}

// linkDrop rolls the fate of one packet of flow f on link l.
func (n *Network) linkDrop(l topo.LinkID, f FlowKey, rng *rand.Rand) bool {
	if m, ok := n.Scenario.Model(l); ok {
		p := m.DropProb(f)
		if p >= 1 || (p > 0 && rng.Float64() < p) {
			if !m.Silent() {
				n.Counters[l]++
			}
			return true
		}
	}
	if n.Baseline > 0 && rng.Float64() < n.Baseline {
		n.Counters[l]++
		return true
	}
	return false
}

// Deliver simulates one one-way packet of flow f across the links; it
// returns false if any link drops it.
func (n *Network) Deliver(links []topo.LinkID, f FlowKey, rng *rand.Rand) bool {
	for _, l := range links {
		if n.linkDrop(l, f, rng) {
			return false
		}
	}
	return true
}

// ProbeOnce simulates a request/echo probe: the request traverses links
// with flow f, the echo traverses them in reverse with the reversed flow
// key. Either direction dropping loses the probe, which is why a probe
// path's column covers both directions of its links (paper §4.1).
func (n *Network) ProbeOnce(links []topo.LinkID, f FlowKey, rng *rand.Rand) bool {
	if !n.Deliver(links, f, rng) {
		return false
	}
	rev := f.Reverse()
	for i := len(links) - 1; i >= 0; i-- {
		if n.linkDrop(links[i], rev, rng) {
			return false
		}
	}
	return true
}

// ProbePath sends count probes along the links, rotating the source port
// over portRange values as the pinger does ("a pinger loops over a range of
// ports for each path", §6.1) so that deterministic blackholes hit only the
// matching subset of probes. It returns the number lost.
func (n *Network) ProbePath(links []topo.LinkID, base FlowKey, count, portRange int, rng *rand.Rand) (lost int) {
	if portRange <= 0 {
		portRange = 16
	}
	for i := 0; i < count; i++ {
		f := base
		f.SrcPort = base.SrcPort + uint16(i%portRange)
		if !n.ProbeOnce(links, f, rng) {
			lost++
		}
	}
	return lost
}

// ProbeWindowConfig shapes one simulated measurement window.
type ProbeWindowConfig struct {
	// ProbesPerPath is how many probes each probe path gets in the window.
	ProbesPerPath int
	// PortRange is the source-port rotation width (default 16).
	PortRange int
	// BasePort is the first source port.
	BasePort uint16
}

// SimulateWindow runs one measurement window over the whole probe matrix
// and returns per-path observations ready for PLL.
func SimulateWindow(n *Network, probes *route.Probes, cfg ProbeWindowConfig, rng *rand.Rand) []pll.Observation {
	obs := make([]pll.Observation, probes.NumPaths())
	basePort := cfg.BasePort
	if basePort == 0 {
		basePort = 33434
	}
	for i := range probes.PathLinks {
		f := FlowKey{
			Src: probes.Src[i], Dst: probes.Dst[i],
			SrcPort: basePort, DstPort: 7,
			Proto: UDPProto,
		}
		lost := n.ProbePath(probes.PathLinks[i], f, cfg.ProbesPerPath, cfg.PortRange, rng)
		obs[i] = pll.Observation{Path: i, Sent: cfg.ProbesPerPath, Lost: lost}
	}
	return obs
}

// linkDropAt rolls the fate of one packet of flow f on link l during
// measurement window w, consulting window-varying models (flapping links).
// At any fixed window it draws exactly like linkDrop.
func (n *Network) linkDropAt(l topo.LinkID, f FlowKey, w int, rng *rand.Rand) bool {
	if m, ok := n.Scenario.Model(l); ok {
		p := m.DropProb(f)
		if wm, ok := m.(WindowedModel); ok {
			p = wm.DropProbAt(f, w)
		}
		if p >= 1 || (p > 0 && rng.Float64() < p) {
			if !m.Silent() {
				n.Counters[l]++
			}
			return true
		}
	}
	if n.Baseline > 0 && rng.Float64() < n.Baseline {
		n.Counters[l]++
		return true
	}
	return false
}

// linkSignal samples the extra delay and ECN mark of one packet crossing
// link l, for fault models that perturb more than loss.
func (n *Network) linkSignal(l topo.LinkID, f FlowKey, w int, rng *rand.Rand) (extra time.Duration, marked bool) {
	m, ok := n.Scenario.Model(l)
	if !ok {
		return 0, false
	}
	sm, ok := m.(SignalModel)
	if !ok {
		return 0, false
	}
	extra, ecnProb := sm.LinkSignal(f, w, rng)
	if ecnProb > 0 && rng.Float64() < ecnProb {
		marked = true
	}
	return extra, marked
}

// SignalWindowConfig shapes one simulated measurement window with latency
// and ECN signals.
type SignalWindowConfig struct {
	// ProbesPerPath, PortRange and BasePort are as in ProbeWindowConfig.
	ProbesPerPath int
	PortRange     int
	BasePort      uint16
	// Window is the measurement-window index, driving time-varying faults.
	Window int
	// Latency models the healthy per-link delay; the zero value takes
	// DefaultLatencyModel.
	Latency LatencyModel
}

// SimulateSignalWindow runs one measurement window like SimulateWindow but
// additionally produces the latency and ECN signals a real pinger reports:
// per-path mean RTT, RFC 3550 jitter, and ECN-mark fraction over delivered
// probes. Healthy links contribute their deterministic base + service
// delay; faulted links add whatever their SignalModel says. It uses its
// own RNG stream and does not perturb SimulateWindow's draw sequence.
func SimulateSignalWindow(n *Network, probes *route.Probes, cfg SignalWindowConfig, rng *rand.Rand) []pll.Observation {
	if cfg.PortRange <= 0 {
		cfg.PortRange = 16
	}
	basePort := cfg.BasePort
	if basePort == 0 {
		basePort = 33434
	}
	lat := cfg.Latency
	if lat.CapacityBps == 0 {
		lat = DefaultLatencyModel()
	}
	hop := lat.baseDelay()
	obs := make([]pll.Observation, probes.NumPaths())
	for i := range probes.PathLinks {
		links := probes.PathLinks[i]
		base := FlowKey{
			Src: probes.Src[i], Dst: probes.Dst[i],
			SrcPort: basePort, DstPort: 7,
			Proto: UDPProto,
		}
		var lost, markedCount int
		var rttSum int64
		var jitter float64
		var prevRTT int64
		first := true
		for p := 0; p < cfg.ProbesPerPath; p++ {
			f := base
			f.SrcPort = base.SrcPort + uint16(p%cfg.PortRange)
			rtt, marked, ok := n.probeSignal(links, f, cfg.Window, hop, rng)
			if !ok {
				lost++
				continue
			}
			if marked {
				markedCount++
			}
			ns := int64(rtt)
			rttSum += ns
			if first {
				first = false
			} else {
				d := float64(ns - prevRTT)
				if d < 0 {
					d = -d
				}
				jitter += (d - jitter) / 16
			}
			prevRTT = ns
		}
		o := pll.Observation{Path: i, Sent: cfg.ProbesPerPath, Lost: lost}
		if delivered := cfg.ProbesPerPath - lost; delivered > 0 {
			o.MeanRTTNS = rttSum / int64(delivered)
			o.JitterNS = int64(jitter)
			o.ECNFrac = float64(markedCount) / float64(delivered)
		}
		obs[i] = o
	}
	return obs
}

// probeSignal simulates one request/echo probe with signals: the round
// trip delay accumulated over every traversed link-direction (hop per
// healthy crossing plus fault extras) and whether any crossing ECN-marked
// the packet. ok is false when either direction dropped the probe.
func (n *Network) probeSignal(links []topo.LinkID, f FlowKey, w int, hop time.Duration, rng *rand.Rand) (rtt time.Duration, marked, ok bool) {
	for _, l := range links {
		if n.linkDropAt(l, f, w, rng) {
			return 0, false, false
		}
		extra, m := n.linkSignal(l, f, w, rng)
		rtt += hop + extra
		marked = marked || m
	}
	rev := f.Reverse()
	for i := len(links) - 1; i >= 0; i-- {
		if n.linkDropAt(links[i], rev, w, rng) {
			return 0, false, false
		}
		extra, m := n.linkSignal(links[i], rev, w, rng)
		rtt += hop + extra
		marked = marked || m
	}
	return rtt, marked, true
}

// CounterSnapshot returns a copy of the per-link drop counters.
func (n *Network) CounterSnapshot() map[topo.LinkID]int64 {
	out := make(map[topo.LinkID]int64, len(n.Counters))
	for l, c := range n.Counters {
		out[l] = c
	}
	return out
}
