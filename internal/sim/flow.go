// Package sim is the packet-loss simulator used to evaluate deTector at
// scales beyond the UDP fabric: flow-keyed loss models (full, deterministic
// partial, random partial), measurement-driven failure scenario generation,
// probing simulation with per-probe flow-key variation, a synthetic workload
// generator, and the queueing model behind the RTT/jitter figures.
//
// It substitutes the paper's FPGA testbed and the IMC'10 traces; every
// substitution is documented in DESIGN.md.
package sim

import (
	"github.com/detector-net/detector/internal/topo"
)

// FlowKey is the 5-tuple-plus-DSCP identity of a probe or workload packet.
// Deterministic partial loss (packet blackholes) and ECMP hashing key on it.
type FlowKey struct {
	Src, Dst         topo.NodeID
	SrcPort, DstPort uint16
	Proto            uint8
	DSCP             uint8
}

// Reverse returns the flow key of the echo direction.
func (f FlowKey) Reverse() FlowKey {
	return FlowKey{
		Src: f.Dst, Dst: f.Src,
		SrcPort: f.DstPort, DstPort: f.SrcPort,
		Proto: f.Proto, DSCP: f.DSCP,
	}
}

// Hash folds the flow key into 64 bits (FNV-1a over the packed fields).
func (f FlowKey) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	mix(uint64(uint32(f.Src)))
	mix(uint64(uint32(f.Dst))<<32 | uint64(f.SrcPort)<<16 | uint64(f.DstPort))
	mix(uint64(f.Proto)<<8 | uint64(f.DSCP))
	return h
}

// UDPProto is the protocol number probes use.
const UDPProto = 17
