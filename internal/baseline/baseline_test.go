package baseline

import (
	"math/rand"
	"testing"

	"github.com/detector-net/detector/internal/metrics"
	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/sim"
	"github.com/detector-net/detector/internal/topo"
)

func buildDetector(t testing.TB, f *topo.Fattree) *Detector {
	t.Helper()
	ps := route.NewFattreePaths(f)
	res, err := pmc.Construct(ps, f.NumLinks(), pmc.Options{Alpha: 3, Beta: 1, Decompose: true, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	return NewDetector(f, route.NewProbes(ps, res.Selected, f.NumLinks()))
}

func fullLossOn(f *topo.Fattree, l topo.LinkID) *sim.Network {
	return sim.NewNetwork(f.Topology, sim.NewScenario(sim.Failure{Link: l, Model: sim.FullLoss{}, FromSwitch: -1}))
}

func TestPingmeshPlanShape(t *testing.T) {
	f := topo.MustFattree(4)
	p := NewPingmesh(f)
	// 8 ToRs x C(2,2)=1 intra pair + C(8,2)=28 inter pairs.
	if p.NumPairs() != 8+28 {
		t.Fatalf("pingmesh pairs = %d, want 36", p.NumPairs())
	}
}

func TestNetNORADPlanShape(t *testing.T) {
	f := topo.MustFattree(4)
	nn := NewNetNORAD(f)
	// Pingers: 4 racks in pods 0-1; targets: 8 racks. Pinger and target of
	// the same rack are different servers, so all 32 pairs stand.
	if nn.NumPairs() != 32 {
		t.Fatalf("netnorad pairs = %d, want 32", nn.NumPairs())
	}
}

func TestDetectorLocalizesFullLoss(t *testing.T) {
	f := topo.MustFattree(4)
	d := buildDetector(t, f)
	rng := rand.New(rand.NewSource(1))
	links := f.SwitchLinks()
	hits := 0
	for i := 0; i < 10; i++ {
		bad := links[rng.Intn(len(links))]
		got, sent, err := d.Round(fullLossOn(f, bad), 6000, rng)
		if err != nil {
			t.Fatal(err)
		}
		if sent <= 0 {
			t.Fatal("no probes sent")
		}
		c := metrics.Compare(got, []topo.LinkID{bad})
		if c.Accuracy() == 1 && c.FalsePositiveRatio() == 0 {
			hits++
		}
	}
	if hits < 9 {
		t.Fatalf("deTector perfect rounds: %d of 10", hits)
	}
}

func TestPingmeshDetectsAndNetbouncerLocalizes(t *testing.T) {
	f := topo.MustFattree(4)
	p := NewPingmesh(f)
	rng := rand.New(rand.NewSource(2))
	links := f.SwitchLinks()
	bad := links[7]
	n := fullLossOn(f, bad)
	suspects, sent := p.Detect(n, 7200, rng)
	if len(suspects) == 0 {
		t.Fatal("pingmesh missed a full-loss link")
	}
	if sent < len(suspects) {
		t.Fatal("probe accounting broken")
	}
	got, extra := p.Netbouncer(n, suspects, -1, rng)
	if extra == 0 {
		t.Fatal("netbouncer sent no probes")
	}
	c := metrics.Compare(got, []topo.LinkID{bad})
	if c.TP != 1 {
		t.Fatalf("netbouncer missed the bad link: got %v, truth %d", got, bad)
	}
}

// TestPingmeshMissesTransientFailure is the Table 1 "transient failures"
// row: detection fires during the failure, but the Netbouncer replay a
// window later sees a healthy network and localizes nothing. deTector
// localizes from the detection window itself.
func TestPingmeshMissesTransientFailure(t *testing.T) {
	f := topo.MustFattree(4)
	p := NewPingmesh(f)
	d := buildDetector(t, f)
	rng := rand.New(rand.NewSource(3))
	bad := f.SwitchLinks()[5]
	failed := fullLossOn(f, bad)
	healthy := sim.NewNetwork(f.Topology, nil)

	got, _ := p.Round(failed, healthy, 7200, rng)
	if len(got) != 0 {
		t.Fatalf("pingmesh localized %v from a transient failure it can no longer replay", got)
	}

	dGot, _, err := d.Round(failed, 7200, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := metrics.Compare(dGot, []topo.LinkID{bad})
	if c.TP != 1 {
		t.Fatalf("deTector should localize the transient failure in-window, got %v", dGot)
	}
}

func TestNetNORADRoundLocalizes(t *testing.T) {
	f := topo.MustFattree(4)
	nn := NewNetNORAD(f)
	rng := rand.New(rand.NewSource(4))
	bad := f.SwitchLinks()[3]
	n := fullLossOn(f, bad)
	got, sent := nn.Round(n, n, 7200, rng)
	if sent == 0 {
		t.Fatal("no probes sent")
	}
	c := metrics.Compare(got, []topo.LinkID{bad})
	if c.TP != 1 {
		t.Fatalf("fbtracert missed the bad link: got %v, truth %d", got, bad)
	}
}

// TestLowRateLossAdvantage is Table 1's "low rate loss" row at small scale:
// with equal budgets, deTector's pinned paths sample the bad link with
// every probe on covering paths, while Pingmesh's ECMP spreads probes over
// parallel paths and often misses a 1.5% loss.
func TestLowRateLossAdvantage(t *testing.T) {
	f := topo.MustFattree(4)
	d := buildDetector(t, f)
	p := NewPingmesh(f)
	rng := rand.New(rand.NewSource(5))
	links := f.SwitchLinks()

	trials := 20
	budget := 3600
	dHit, pHit := 0, 0
	for i := 0; i < trials; i++ {
		bad := links[rng.Intn(len(links))]
		scen := sim.NewScenario(sim.Failure{Link: bad, Model: sim.RandomLoss{P: 0.015}, FromSwitch: -1})
		dn := sim.NewNetwork(f.Topology, scen)
		got, _, err := d.Round(dn, budget, rng)
		if err != nil {
			t.Fatal(err)
		}
		if metrics.Compare(got, []topo.LinkID{bad}).TP == 1 {
			dHit++
		}
		pn := sim.NewNetwork(f.Topology, scen)
		pGot, _ := p.Round(pn, pn, budget, rng)
		if metrics.Compare(pGot, []topo.LinkID{bad}).TP == 1 {
			pHit++
		}
	}
	if dHit <= pHit {
		t.Fatalf("low-rate loss: deTector hit %d, Pingmesh hit %d — expected deTector ahead", dHit, pHit)
	}
	if dHit < trials*6/10 {
		t.Fatalf("deTector low-rate hit rate too low: %d of %d", dHit, trials)
	}
}

func TestSNMPSeesLoudMissesGray(t *testing.T) {
	f := topo.MustFattree(4)
	s := NewSNMP(f)
	rng := rand.New(rand.NewSource(6))
	bad := f.SwitchLinks()[9]

	loud := fullLossOn(f, bad)
	got := s.Poll(loud, rng)
	found := false
	for _, l := range got {
		if l == bad {
			found = true
		}
	}
	if !found {
		t.Fatalf("SNMP missed a loud full-loss link; got %v", got)
	}

	gray := sim.NewNetwork(f.Topology, sim.NewScenario(sim.Failure{Link: bad, Model: sim.FullLoss{Gray: true}, FromSwitch: -1}))
	if got := s.Poll(gray, rng); len(got) != 0 {
		t.Fatalf("SNMP reported %v for a gray failure", got)
	}
}

func TestParallelServerPaths(t *testing.T) {
	f := topo.MustFattree(4)
	sameEdge := parallelServerPaths(f, f.ServerID[0][0][0], f.ServerID[0][0][1])
	if len(sameEdge) != 1 {
		t.Fatalf("same-edge pair: %d paths, want 1", len(sameEdge))
	}
	interPod := parallelServerPaths(f, f.ServerID[0][0][0], f.ServerID[2][1][0])
	if len(interPod) != f.NumCores() {
		t.Fatalf("inter-pod pair: %d paths, want %d", len(interPod), f.NumCores())
	}
}
