package baseline

import (
	"math/rand"

	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/sim"
	"github.com/detector-net/detector/internal/topo"
)

// Pingmesh reimplements the probe plan of Guo et al. (SIGCOMM'15): two
// complete graphs — all servers under one ToR, and one server pair per ToR
// pair — probed without path control. Localization is delegated to a
// Netbouncer-style replay one window later.
type Pingmesh struct {
	F *topo.Fattree
	// LossFloor marks a pair suspected when lost/sent >= floor.
	LossFloor float64
	// NetbouncerPerPath is the per-path probe count of the localization
	// replay.
	NetbouncerPerPath int
	// MaxSuspects caps replayed pairs per round (budget guard).
	MaxSuspects int

	pairs [][2]topo.NodeID
}

// NewPingmesh builds the probe plan for a Fattree.
func NewPingmesh(f *topo.Fattree) *Pingmesh {
	p := &Pingmesh{F: f, LossFloor: 1e-3, NetbouncerPerPath: 100, MaxSuspects: 64}
	// Intra-ToR complete graph.
	for _, tor := range f.ToRs() {
		srv := f.ServersUnder(tor)
		for i := 0; i < len(srv); i++ {
			for j := i + 1; j < len(srv); j++ {
				p.pairs = append(p.pairs, [2]topo.NodeID{srv[i], srv[j]})
			}
		}
	}
	// Inter-ToR complete graph: the first server of each rack represents
	// its ToR.
	tors := f.ToRs()
	for i := 0; i < len(tors); i++ {
		for j := i + 1; j < len(tors); j++ {
			a := f.ServersUnder(tors[i])[0]
			b := f.ServersUnder(tors[j])[0]
			p.pairs = append(p.pairs, [2]topo.NodeID{a, b})
		}
	}
	return p
}

// Name implements the comparison harness naming.
func (*Pingmesh) Name() string { return "Pingmesh" }

// NumPairs returns the probe-plan size.
func (p *Pingmesh) NumPairs() int { return len(p.pairs) }

// Detect runs one detection window with the given probe budget spread over
// all pairs. It returns the suspected pairs and probes consumed.
func (p *Pingmesh) Detect(n *sim.Network, budget int, rng *rand.Rand) ([]Suspect, int) {
	perPair := budget / len(p.pairs)
	if perPair < 1 {
		perPair = 1
	}
	var suspects []Suspect
	for _, pair := range p.pairs {
		lost := probePair(n, p.F, pair[0], pair[1], perPair, rng)
		if lost > 0 && float64(lost)/float64(perPair) >= p.LossFloor {
			suspects = append(suspects, Suspect{Src: pair[0], Dst: pair[1], Sent: perPair, Lost: lost})
		}
	}
	return suspects, perPair * len(p.pairs)
}

// Netbouncer replays every suspected pair over all of its parallel paths
// with source routing and runs Tomo-style inference per pair. n2 is the
// network DURING the replay window — if the failure was transient and
// already cleared, the replay finds nothing (paper §2). allowance caps the
// replay probes (the paper's Fig. 5/6 comparison holds total probes per
// minute fixed, so replay competes with detection for budget); pass a
// negative allowance for unlimited replay.
func (p *Pingmesh) Netbouncer(n2 *sim.Network, suspects []Suspect, allowance int, rng *rand.Rand) ([]topo.LinkID, int) {
	var bad []topo.LinkID
	probes := 0
	if len(suspects) > p.MaxSuspects {
		suspects = suspects[:p.MaxSuspects]
	}
	for _, s := range suspects {
		if allowance >= 0 && probes >= allowance {
			break
		}
		paths := parallelServerPaths(p.F, s.Src, s.Dst)
		pr := route.NewProbesFromLinks(paths, n2.Topo.NumLinks())
		obs := make([]pll.Observation, len(paths))
		for i, links := range paths {
			key := sim.FlowKey{Src: s.Src, Dst: s.Dst, SrcPort: 40000, DstPort: 7, Proto: sim.UDPProto}
			lost := n2.ProbePath(links, key, p.NetbouncerPerPath, 16, rng)
			obs[i] = pll.Observation{Path: i, Sent: p.NetbouncerPerPath, Lost: lost}
			probes += p.NetbouncerPerPath
		}
		links, err := pll.NewTomo().Localize(pr, obs)
		if err == nil {
			bad = append(bad, links...)
		}
	}
	return dedupeLinks(bad), probes
}

// Round chains detection and localization on the two windows under one
// total probe budget: detection gets half, the Netbouncer replay whatever
// detection left. Detect on n1, replay on n2 (pass the same network when
// the failure persists).
func (p *Pingmesh) Round(n1, n2 *sim.Network, budget int, rng *rand.Rand) ([]topo.LinkID, int) {
	suspects, used := p.Detect(n1, budget/2, rng)
	bad, extra := p.Netbouncer(n2, suspects, budget-used, rng)
	return bad, used + extra
}
