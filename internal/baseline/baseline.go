// Package baseline implements the monitoring systems deTector is compared
// against in the paper's Table 1 and Figures 5-6: Pingmesh (+ Netbouncer
// for post-alarm localization), NetNORAD (+ fbtracert), and SNMP counter
// polling — plus the deTector pipeline itself in the same harness shape so
// the comparison runs identical scenarios and budgets.
//
// The defining architectural difference survives the reimplementation:
// Pingmesh and NetNORAD probes do not source-route, so each probe's path is
// chosen by ECMP per flow key, and localization requires a second round of
// probes after detection — one window later, which is the 30 s disadvantage
// the paper measures, and a total miss for transient failures.
package baseline

import (
	"math/rand"
	"sort"

	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/sim"
	"github.com/detector-net/detector/internal/topo"
)

// Suspect is a server pair flagged by end-to-end detection.
type Suspect struct {
	Src, Dst topo.NodeID
	Sent     int
	Lost     int
}

// probeECMP sends one non-source-routed probe: the request follows the ECMP
// path of the flow key, the echo follows the ECMP path of the reversed key —
// which is generally a different physical path, exactly as for real
// Pingmesh/NetNORAD pings.
func probeECMP(n *sim.Network, f *topo.Fattree, key sim.FlowKey, rng *rand.Rand) bool {
	fwd, _ := route.ECMPFattreePath(f, key.Src, key.Dst, key.Hash())
	if !n.Deliver(fwd, key, rng) {
		return false
	}
	rev := key.Reverse()
	back, _ := route.ECMPFattreePath(f, rev.Src, rev.Dst, rev.Hash())
	return n.Deliver(back, rev, rng)
}

// probePair sends count ECMP probes between a server pair, rotating source
// ports, and returns losses.
func probePair(n *sim.Network, f *topo.Fattree, src, dst topo.NodeID, count int, rng *rand.Rand) (lost int) {
	for i := 0; i < count; i++ {
		key := sim.FlowKey{
			Src: src, Dst: dst,
			SrcPort: uint16(33434 + i), DstPort: 7,
			Proto: sim.UDPProto,
		}
		if !probeECMP(n, f, key, rng) {
			lost++
		}
	}
	return lost
}

// parallelServerPaths enumerates every source-routed path between two
// servers: one per core for cross-edge pairs, the single rack path for
// same-edge pairs. Used by Netbouncer and fbtracert, which (like deTector)
// can pin paths when they replay a suspect pair.
func parallelServerPaths(f *topo.Fattree, src, dst topo.NodeID) [][]topo.LinkID {
	sn, dn := f.Node(src), f.Node(dst)
	h := f.Half()
	if sn.Pod == dn.Pod && sn.Index/h == dn.Index/h {
		links, _ := route.FattreeServerPath(f, src, dst, 0)
		return [][]topo.LinkID{links}
	}
	out := make([][]topo.LinkID, 0, f.NumCores())
	for c := 0; c < f.NumCores(); c++ {
		links, _ := route.FattreeServerPath(f, src, dst, c)
		out = append(out, links)
	}
	return out
}

// dedupeLinks sorts and deduplicates a verdict list.
func dedupeLinks(in []topo.LinkID) []topo.LinkID {
	sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
	out := in[:0]
	for i, l := range in {
		if i == 0 || l != out[len(out)-1] {
			out = append(out, l)
		}
	}
	return out
}

// Detector is the deTector pipeline in harness shape: source-routed probes
// over a PMC matrix, PLL localization from the same window's data — no
// second round.
type Detector struct {
	F      *topo.Fattree
	Probes *route.Probes
	Config pll.Config
	// PortRange rotates source ports per path (packet entropy, §6.1).
	PortRange int
}

// NewDetector builds the pipeline around a PMC-selected probe matrix.
func NewDetector(f *topo.Fattree, probes *route.Probes) *Detector {
	return &Detector{F: f, Probes: probes, Config: pll.DefaultConfig(), PortRange: 16}
}

// Name implements the comparison harness naming.
func (*Detector) Name() string { return "deTector" }

// Round runs one measurement window with the given total probe budget and
// localizes in the same window. It returns the verdict and probes consumed.
func (d *Detector) Round(n *sim.Network, budget int, rng *rand.Rand) ([]topo.LinkID, int, error) {
	perPath := budget / d.Probes.NumPaths()
	if perPath < 1 {
		perPath = 1
	}
	obs := sim.SimulateWindow(n, d.Probes, sim.ProbeWindowConfig{
		ProbesPerPath: perPath,
		PortRange:     d.PortRange,
	}, rng)
	res, err := pll.Localize(d.Probes, obs, d.Config)
	if err != nil {
		return nil, 0, err
	}
	return res.BadLinks(), perPath * d.Probes.NumPaths(), nil
}
