package baseline

import (
	"math/rand"

	"github.com/detector-net/detector/internal/sim"
	"github.com/detector-net/detector/internal/topo"
)

// NetNORAD reimplements Facebook's fleet pinger (Lapukhov, NANOG'16):
// pingers live in a few pods only, targets cover every rack, probes are
// plain UDP without path control. Suspected targets are handed to an
// fbtracert-style path explorer one window later.
type NetNORAD struct {
	F *topo.Fattree
	// PingerPods lists the pods hosting pingers (the paper: "a few pods").
	PingerPods []int
	// LossFloor marks a target suspected when lost/sent >= floor.
	LossFloor float64
	// TracerPerHop is fbtracert's probe count per TTL prefix per path.
	TracerPerHop int
	// TracerDelta is the per-hop loss-rate increase that blames a link.
	TracerDelta float64
	// MaxSuspects caps traced pairs per round.
	MaxSuspects int

	pingers []topo.NodeID
	targets []topo.NodeID
}

// NewNetNORAD places pingers in the first two pods and one target per rack.
func NewNetNORAD(f *topo.Fattree) *NetNORAD {
	nn := &NetNORAD{
		F:            f,
		PingerPods:   []int{0, 1},
		LossFloor:    1e-3,
		TracerPerHop: 50,
		TracerDelta:  0.05,
		MaxSuspects:  64,
	}
	inPingerPod := func(n topo.NodeID) bool {
		pod := f.Node(n).Pod
		for _, p := range nn.PingerPods {
			if pod == p {
				return true
			}
		}
		return false
	}
	for _, tor := range f.ToRs() {
		srv := f.ServersUnder(tor)
		nn.targets = append(nn.targets, srv[0])
		if inPingerPod(tor) {
			// The second server of the rack pings, so pinger != target
			// even inside pinger pods.
			nn.pingers = append(nn.pingers, srv[len(srv)-1])
		}
	}
	return nn
}

// Name implements the comparison harness naming.
func (*NetNORAD) Name() string { return "NetNORAD" }

// NumPairs returns pingers x targets (minus same-rack self pairs).
func (nn *NetNORAD) NumPairs() int {
	n := 0
	for _, pg := range nn.pingers {
		for _, tg := range nn.targets {
			if pg != tg {
				n++
			}
		}
	}
	return n
}

// Detect runs one detection window with the budget spread over all
// pinger-target pairs.
func (nn *NetNORAD) Detect(n *sim.Network, budget int, rng *rand.Rand) ([]Suspect, int) {
	pairs := nn.NumPairs()
	perPair := budget / pairs
	if perPair < 1 {
		perPair = 1
	}
	var suspects []Suspect
	sent := 0
	for _, pg := range nn.pingers {
		for _, tg := range nn.targets {
			if pg == tg {
				continue
			}
			lost := probePair(n, nn.F, pg, tg, perPair, rng)
			sent += perPair
			if lost > 0 && float64(lost)/float64(perPair) >= nn.LossFloor {
				suspects = append(suspects, Suspect{Src: pg, Dst: tg, Sent: perPair, Lost: lost})
			}
		}
	}
	return suspects, sent
}

// Fbtracert explores every parallel path of each suspect pair hop by hop:
// probes with TTL t exercise the first t links, so the loss-rate increase
// from prefix t-1 to prefix t blames link t. Like the real tool it needs
// the failure to still be present during the replay window (n2). allowance
// caps the tracing probes (fixed-budget comparisons); negative means
// unlimited.
func (nn *NetNORAD) Fbtracert(n2 *sim.Network, suspects []Suspect, allowance int, rng *rand.Rand) ([]topo.LinkID, int) {
	var bad []topo.LinkID
	probes := 0
	if len(suspects) > nn.MaxSuspects {
		suspects = suspects[:nn.MaxSuspects]
	}
	for _, s := range suspects {
		if allowance >= 0 && probes >= allowance {
			break
		}
		for _, links := range parallelServerPaths(nn.F, s.Src, s.Dst) {
			prevRate := 0.0
			for t := 1; t <= len(links); t++ {
				prefix := links[:t]
				lost := 0
				for i := 0; i < nn.TracerPerHop; i++ {
					key := sim.FlowKey{
						Src: s.Src, Dst: s.Dst,
						SrcPort: uint16(50000 + i), DstPort: 7,
						Proto: sim.UDPProto,
					}
					// TTL-limited probe: one-way delivery to hop t; the
					// ICMP TTL-exceeded reply returns over the same hops.
					if !n2.ProbeOnce(prefix, key, rng) {
						lost++
					}
				}
				probes += nn.TracerPerHop
				rate := float64(lost) / float64(nn.TracerPerHop)
				if rate-prevRate >= nn.TracerDelta {
					bad = append(bad, links[t-1])
				}
				if rate > prevRate {
					prevRate = rate
				}
			}
		}
	}
	return dedupeLinks(bad), probes
}

// Round chains detection on n1 and tracing on n2 under one total budget:
// detection gets half, fbtracert whatever detection left.
func (nn *NetNORAD) Round(n1, n2 *sim.Network, budget int, rng *rand.Rand) ([]topo.LinkID, int) {
	suspects, used := nn.Detect(n1, budget/2, rng)
	bad, extra := nn.Fbtracert(n2, suspects, budget-used, rng)
	return bad, used + extra
}
