package baseline

import (
	"math/rand"
	"sort"

	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/sim"
	"github.com/detector-net/detector/internal/topo"
)

// SNMP is the passive baseline of Table 1: poll per-port drop counters and
// flag links whose counters moved. It sees only what switches report — a
// gray failure (silent drop) never bumps a counter and is invisible, and
// counter noise below the threshold is ignored.
type SNMP struct {
	F *topo.Fattree
	// Threshold is the counter delta that raises an alarm.
	Threshold int64
	// WorkloadPackets is how many background packets to push through the
	// fabric per poll interval so that drops have traffic to act on.
	WorkloadPackets int
}

// NewSNMP returns a poller with a small alarm threshold.
func NewSNMP(f *topo.Fattree) *SNMP {
	return &SNMP{F: f, Threshold: 5, WorkloadPackets: 20000}
}

// Name implements the comparison harness naming.
func (*SNMP) Name() string { return "SNMP" }

// Poll pushes background traffic through the network, then reads the drop
// counters and reports links over threshold. Probes sent is zero — the cost
// is switch CPU, not network bandwidth.
func (s *SNMP) Poll(n *sim.Network, rng *rand.Rand) []topo.LinkID {
	before := n.CounterSnapshot()
	servers := s.F.Servers()
	for i := 0; i < s.WorkloadPackets; i++ {
		src := servers[rng.Intn(len(servers))]
		dst := servers[rng.Intn(len(servers))]
		if src == dst {
			continue
		}
		key := sim.FlowKey{
			Src: src, Dst: dst,
			SrcPort: uint16(1024 + rng.Intn(60000)), DstPort: 80,
			Proto: 6,
		}
		links, _ := route.ECMPFattreePath(s.F, src, dst, key.Hash())
		n.Deliver(links, key, rng)
	}
	after := n.CounterSnapshot()
	var bad []topo.LinkID
	for l, c := range after {
		if c-before[l] >= s.Threshold {
			bad = append(bad, l)
		}
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i] < bad[j] })
	return bad
}
