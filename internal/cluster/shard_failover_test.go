package cluster

import (
	"testing"
	"time"

	"github.com/detector-net/detector/internal/pmc"
)

// TestShardFailoverRecoversCoverage boots the cluster on the sharded
// controller plane, kills one shard mid-window, and checks the recovery
// contract: once the shard watchdog declares the death, a single recompute
// cycle reassigns the dead shard's components to the survivors and the
// served probe matrix again covers every switch link at full alpha.
func TestShardFailoverRecoversCoverage(t *testing.T) {
	opts := fastOptions()
	opts.Shards = 2
	opts.ShardTTL = 300 * time.Millisecond
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)

	coord := c.Controller.Coordinator()
	if coord == nil {
		t.Fatal("sharded boot produced no coordinator")
	}
	if coord.Components() != 2 {
		t.Fatalf("Fattree(4) should decompose into 2 components, got %d", coord.Components())
	}
	alpha := opts.Control.Alpha
	v := pmc.Verify(c.Controller.ProbeMatrix(), c.F.SwitchLinks(), false)
	if v.MinCoverage < alpha {
		t.Fatalf("pre-failure coverage %d below alpha %d", v.MinCoverage, alpha)
	}

	// Kill the shard owning the first component while probing is live.
	victim := int(coord.Assignment()[0])
	victimComps := 0
	for _, s := range coord.Assignment() {
		if int(s) == victim {
			victimComps++
		}
	}
	coord.Kill(victim)

	deadline := time.Now().Add(15 * time.Second)
	for {
		u := coord.Unhealthy()
		if len(u) == 1 && u[0] == victim {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard watchdog never declared shard %d dead (unhealthy=%v)", victim, u)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// One recompute cycle must re-cover the dead shard's components.
	version := c.Controller.Version()
	if err := c.Controller.RunCycle(nil); err != nil {
		t.Fatalf("post-failure recompute: %v", err)
	}
	if c.Controller.Version() != version+1 {
		t.Fatalf("recompute did not advance the version")
	}
	for ci, s := range coord.Assignment() {
		if int(s) == victim {
			t.Errorf("component %d still assigned to dead shard %d after recompute", ci, victim)
		}
	}
	if victimComps == 0 {
		t.Fatalf("victim shard owned no components; test is vacuous")
	}
	v = pmc.Verify(c.Controller.ProbeMatrix(), c.F.SwitchLinks(), false)
	if v.MinCoverage < alpha {
		t.Errorf("post-failover coverage %d below alpha %d — reassignment did not re-cover the dead shard's components",
			v.MinCoverage, alpha)
	}
	if !v.Identifiable1 {
		t.Errorf("post-failover matrix lost 1-identifiability: %v", v.Collisions)
	}
}
