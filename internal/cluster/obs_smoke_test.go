package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/detector-net/detector/internal/obs"
	"github.com/detector-net/detector/internal/pinger"
)

var smokeSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)

// scrapeProm fetches url and validates the Prometheus text exposition the
// way a scraper would: 200, the 0.0.4 text content type, every sample line
// parseable with a numeric value, and no duplicate series. Returns the
// samples keyed by series (name + verbatim label set).
func scrapeProm(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("GET %s: Content-Type %q is not the Prometheus text format", url, ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	samples := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := smokeSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("%s: malformed sample line %q", url, line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("%s: non-numeric sample %q", url, line)
		}
		series := m[1] + m[2]
		if _, dup := samples[series]; dup {
			t.Fatalf("%s: duplicate series %q", url, series)
		}
		samples[series] = v
	}
	return samples
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: undecodable JSON: %v", url, err)
	}
}

// hasSpan reports whether a statusz timeline files a span named name under
// the cycle with the given (externally minted) ID.
func hasSpan(sz obs.Statusz, id uint64, name string) bool {
	for _, cy := range sz.Cycles {
		if cy.ID != id {
			continue
		}
		for _, sp := range cy.Spans {
			if sp.Name == name {
				return true
			}
		}
	}
	return false
}

// TestClusterObservabilitySurface is the acceptance drill for the
// observability plane: one loopback Fattree(8) cluster with remote shards
// boots, runs one construction cycle and one hand-closed diagnosis window,
// and then every process answers /metrics with a well-formed Prometheus
// exposition and /healthz with "ok", every coordinator and diagnoser stage
// histogram is non-empty, and the shard services' /statusz timelines file
// their construct and localize spans under the coordinator's and
// diagnoser's cycle IDs — proving the X-Detector-Cycle header made it
// across the transport.
func TestClusterObservabilitySurface(t *testing.T) {
	opts := fastOptions()
	opts.K = 8
	// Windows close by hand below, so the cadence timers never fire.
	opts.Window = time.Hour
	opts.Control.WindowMS = 3_600_000
	opts.Shards = 2
	opts.RemoteShards = true
	opts.ShardTTL = 10 * time.Second
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)

	// One synthetic report covering every probe path (by its served wire
	// id — ids are sparse, not dense row indices), then one hand-closed
	// window: routing sends each shard its slice, so both shard services
	// see a localization request carrying the window's cycle ID.
	rep := &pinger.Report{Version: c.Controller.Version()}
	for i, id := range c.Controller.ProbeMatrix().IDs() {
		pr := pinger.PathReport{PathID: id, Sent: 20}
		if i == 0 {
			pr.Lost = 10
		}
		rep.Results = append(rep.Results, pr)
	}
	c.Diagnoser.Ingest(rep)
	c.Diagnoser.RunWindow()

	urls := map[string]string{
		"controller": c.ControllerURL,
		"diagnoser":  c.DiagnoserURL,
		"watchdog":   c.WatchdogURL,
	}
	for i, u := range c.ShardURLs {
		urls[fmt.Sprintf("shard%d", i)] = u
	}
	for name, u := range urls {
		var h obs.Health
		getJSON(t, u+"/healthz", &h)
		if h.Status != "ok" {
			t.Errorf("%s /healthz = %q (detail %q, unhealthy %v), want ok",
				name, h.Status, h.Detail, h.UnhealthyShards)
		}
		if samples := scrapeProm(t, u+"/metrics"); len(samples) == 0 {
			t.Errorf("%s /metrics served an empty exposition", name)
		}
	}

	// Every loopback process shares the registry, so one scrape shows the
	// whole pipeline's stage histograms; each must have fired.
	samples := scrapeProm(t, c.ControllerURL+"/metrics")
	for _, stage := range []string{
		"materialize", "decompose", "assign", "construct_dispatch", "merge",
		"serve", "ingest", "window_close", "localize", "classify",
	} {
		series := fmt.Sprintf(`detector_stage_duration_seconds_count{stage=%q}`, stage)
		if samples[series] < 1 {
			t.Errorf("stage histogram %s is empty after a full cycle + window", series)
		}
	}

	// Cycle correlation: the controller minted the construct cycle, the
	// diagnoser the window cycle; both IDs must reappear verbatim in each
	// shard service's timeline, tagged with the matching span.
	var ctl obs.Statusz
	getJSON(t, c.ControllerURL+"/statusz", &ctl)
	var constructID uint64
	for _, cy := range ctl.Cycles {
		if cy.Kind == "construct" {
			constructID = cy.ID // newest first
			break
		}
	}
	if constructID == 0 {
		t.Fatalf("controller /statusz has no construct cycle: %+v", ctl.Cycles)
	}

	var dg obs.Statusz
	getJSON(t, c.DiagnoserURL+"/statusz", &dg)
	var windowID uint64
	for _, cy := range dg.Cycles {
		if cy.Kind == "window" {
			windowID = cy.ID
			break
		}
	}
	if windowID == 0 {
		t.Fatalf("diagnoser /statusz has no window cycle: %+v", dg.Cycles)
	}

	for i, u := range c.ShardURLs {
		var sz obs.Statusz
		getJSON(t, u+"/statusz", &sz)
		if !hasSpan(sz, constructID, "construct") {
			t.Errorf("shard %d /statusz files no construct span under coordinator cycle %d: %+v",
				i, constructID, sz.Cycles)
		}
		if !hasSpan(sz, windowID, "localize") {
			t.Errorf("shard %d /statusz files no localize span under diagnoser cycle %d: %+v",
				i, windowID, sz.Cycles)
		}
	}
}
