package cluster

import (
	"testing"
	"time"

	"github.com/detector-net/detector/internal/control"
	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/sim"
	"github.com/detector-net/detector/internal/topo"
)

// fastOptions compresses timescales so an end-to-end cycle fits in CI:
// 600 ms windows, 120 probes/sec per pinger, 250 ms probe timeout. The
// pacing is deliberately conservative — on a small CI box, scheduler stalls
// masquerade as loss bursts if the timeout is tight — and the PLL noise
// floor is raised accordingly (a production deployment uses 30 s windows
// and a 1e-3 floor).
func fastOptions() Options {
	cfg := control.DefaultConfig()
	cfg.RatePPS = 60
	cfg.WindowMS = 900
	pllCfg := pll.DefaultConfig()
	pllCfg.LossRatioFloor = 0.2
	pllCfg.MinLoss = 2
	return Options{
		K:            4,
		Control:      cfg,
		Window:       900 * time.Millisecond,
		ProbeTimeout: 400 * time.Millisecond,
		WatchdogTTL:  15 * time.Second,
		RuleSeed:     1,
		PLL:          &pllCfg,
	}
}

func startCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := Start(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func TestClusterBoots(t *testing.T) {
	c := startCluster(t)
	if len(c.Pingers) == 0 {
		t.Fatal("no pingers started")
	}
	if c.Controller.Version() != 1 {
		t.Fatalf("controller version %d, want 1", c.Controller.Version())
	}
	m := c.Controller.ProbeMatrix()
	if m == nil || m.NumPaths() == 0 {
		t.Fatal("empty probe matrix")
	}
	// Every pinger got a pinglist consistent with the matrix.
	for _, p := range c.Pingers {
		if len(p.Pinglist().Entries) == 0 {
			t.Fatalf("pinger %d has empty pinglist", p.Node)
		}
		for _, e := range p.Pinglist().Entries {
			if e.Route[0] != p.Node {
				t.Fatalf("pinger %d told to send from %d", p.Node, e.Route[0])
			}
		}
	}
}

// TestClusterEndToEndFullLoss is the flagship integration test: inject a
// full-loss failure on an aggregation-core link via the rule table, wait a
// few windows of real UDP probing, and require a diagnoser alert naming
// exactly that link.
func TestClusterEndToEndFullLoss(t *testing.T) {
	c := startCluster(t)
	// Warm up one clean window so the baseline is loss-free.
	time.Sleep(1200 * time.Millisecond)

	bad := c.F.MustLink(c.F.AggID[1][0], c.F.CoreID[0])
	c.InjectFailure(bad, sim.FullLoss{})
	alert := c.WaitForAlert([]topo.LinkID{bad}, 10*time.Second)
	if alert == nil {
		t.Fatalf("no alert for link %d within deadline; alerts: %+v", bad, c.Diagnoser.Alerts())
	}
	if len(alert.Bad) != 1 {
		t.Errorf("alert names %d links, want exactly the failed one: %+v", len(alert.Bad), alert.Bad)
	}
	if alert.Bad[0].Rate < 0.5 {
		t.Errorf("estimated loss rate %.2f for a full-loss link", alert.Bad[0].Rate)
	}
	if alert.Bad[0].A == "" || alert.Bad[0].B == "" {
		t.Error("alert missing human-readable endpoints")
	}
}

// TestClusterLocalizesServerLink: intra-rack probing must localize a failed
// server-ToR link.
func TestClusterLocalizesServerLink(t *testing.T) {
	c := startCluster(t)
	time.Sleep(1200 * time.Millisecond)

	// Fail the link of a responder-only server (the second server under
	// edge 0-1 hosts no pinger when pinglists target the first two).
	var victim topo.NodeID = -1
	pingerSet := map[topo.NodeID]bool{}
	for _, p := range c.Pingers {
		pingerSet[p.Node] = true
	}
	for _, sv := range c.F.Servers() {
		if !pingerSet[sv] {
			victim = sv
			break
		}
	}
	if victim < 0 {
		t.Skip("every server is a pinger in this configuration")
	}
	tor := c.F.Neighbors(victim)[0].Peer
	bad := c.F.MustLink(victim, tor)
	c.InjectFailure(bad, sim.FullLoss{})
	alert := c.WaitForAlert([]topo.LinkID{bad}, 10*time.Second)
	if alert == nil {
		t.Fatalf("no alert for server link %d; alerts: %+v", bad, c.Diagnoser.Alerts())
	}
}

// TestClusterBlackholeLocalization injects a deterministic partial loss —
// the failure mode that motivates PLL's hit-ratio threshold — and expects
// the fabric + agents + diagnoser stack to localize it.
func TestClusterBlackholeLocalization(t *testing.T) {
	c := startCluster(t)
	time.Sleep(1200 * time.Millisecond)

	bad := c.F.MustLink(c.F.EdgeID[2][1], c.F.AggID[2][1])
	// Half of all flows blackholed: enough lossy paths to cross the 0.6
	// hit ratio with 16 rotating labels.
	c.InjectFailure(bad, sim.DeterministicLoss{Buckets: 0xFFFF0000, Seed: 7})
	alert := c.WaitForAlert([]topo.LinkID{bad}, 12*time.Second)
	if alert == nil {
		t.Fatalf("no alert for blackholed link %d; alerts: %+v", bad, c.Diagnoser.Alerts())
	}
}

// TestClusterRepairSilencesAlerts: after repairing the link, subsequent
// windows must stop alerting.
func TestClusterRepairSilencesAlerts(t *testing.T) {
	c := startCluster(t)
	bad := c.F.MustLink(c.F.AggID[0][1], c.F.CoreID[3])
	c.InjectFailure(bad, sim.FullLoss{})
	if alert := c.WaitForAlert([]topo.LinkID{bad}, 10*time.Second); alert == nil {
		t.Fatal("no alert while failed")
	}
	c.Repair(bad)
	time.Sleep(1500 * time.Millisecond) // drain in-flight windows
	before := len(c.Diagnoser.Alerts())
	time.Sleep(1500 * time.Millisecond)
	after := c.Diagnoser.Alerts()
	for _, a := range after[before:] {
		for _, v := range a.Bad {
			if v.Link == bad {
				t.Fatalf("repaired link still alerted: %+v", a)
			}
		}
	}
}

func TestClusterReportsFlow(t *testing.T) {
	c := startCluster(t)
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if c.Diagnoser.Reports() > 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("no pinger reports reached the diagnoser")
}

// TestClusterLatencySpikeLocalizedAsLoss: the paper treats an RTT above
// the probe timeout as a packet loss (§1). A 600 ms injected delay — far
// above the 250 ms test timeout — must produce a loss alert naming the
// slow link, end to end over real sockets.
func TestClusterLatencySpikeLocalizedAsLoss(t *testing.T) {
	c := startCluster(t)
	time.Sleep(1200 * time.Millisecond)

	bad := c.F.MustLink(c.F.AggID[3][0], c.F.CoreID[1])
	c.Rules.InstallDelay(bad, 600*time.Millisecond)
	alert := c.WaitForAlert([]topo.LinkID{bad}, 12*time.Second)
	if alert == nil {
		t.Fatalf("no alert for latency spike on link %d; alerts: %+v", bad, c.Diagnoser.Alerts())
	}
}
