package cluster

import (
	"reflect"
	"testing"
	"time"

	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/shardrpc"
	"github.com/detector-net/detector/internal/sim"
	"github.com/detector-net/detector/internal/topo"
)

// TestRemoteShardServingIdentical boots the cluster with the controller
// shards behind real loopback HTTP services and checks the transport
// changes nothing observable: the served matrix is byte-identical to an
// unsharded boot, the coordinator reports the shard services' URLs, and
// alerts still flow end to end (the diagnoser localizes through the same
// remote shards).
func TestRemoteShardServingIdentical(t *testing.T) {
	ref, err := Start(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ref.Stop)

	opts := fastOptions()
	opts.Shards = 2
	opts.RemoteShards = true
	opts.ShardTTL = 300 * time.Millisecond
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)

	if len(c.ShardURLs) != 2 {
		t.Fatalf("remote boot exposed %d shard URLs, want 2", len(c.ShardURLs))
	}
	coord := c.Controller.Coordinator()
	if coord == nil {
		t.Fatal("remote sharded boot produced no coordinator")
	}
	for _, si := range coord.Status().Shards {
		if si.Addr != c.ShardURLs[si.ID] {
			t.Errorf("shard %d addr %q, want its service URL %q", si.ID, si.Addr, c.ShardURLs[si.ID])
		}
	}
	if !reflect.DeepEqual(c.Controller.ProbeMatrix().PathLinks, ref.Controller.ProbeMatrix().PathLinks) {
		t.Fatal("served matrix differs between remote-sharded and unsharded boots")
	}
}

// TestRemoteShardFailoverRecoversCoverage is the acceptance drill for the
// transport: kill a remote shard service mid-window — connections refused,
// the shard watchdog has not yet noticed — and require that the very next
// RunCycle completes by failing the dead shard's components over to the
// survivor, serving a full-α matrix bit-identical to the pre-failure one.
func TestRemoteShardFailoverRecoversCoverage(t *testing.T) {
	opts := fastOptions()
	opts.Shards = 2
	opts.RemoteShards = true
	opts.ShardTTL = 300 * time.Millisecond
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)

	coord := c.Controller.Coordinator()
	if coord == nil {
		t.Fatal("remote sharded boot produced no coordinator")
	}
	if coord.Components() != 2 {
		t.Fatalf("Fattree(4) should decompose into 2 components, got %d", coord.Components())
	}
	alpha := opts.Control.Alpha
	origMatrix := c.Controller.ProbeMatrix().PathLinks
	v := pmc.Verify(c.Controller.ProbeMatrix(), c.F.SwitchLinks(), false)
	if v.MinCoverage < alpha {
		t.Fatalf("pre-failure coverage %d below alpha %d", v.MinCoverage, alpha)
	}

	victim := int(coord.Assignment()[0])
	victimComps := 0
	for _, s := range coord.Assignment() {
		if int(s) == victim {
			victimComps++
		}
	}
	if victimComps == 0 {
		t.Fatal("victim shard owned no components; test is vacuous")
	}
	c.KillShardServer(victim)

	// No watchdog wait: the recompute must discover the death through the
	// failed dispatch and still finish this cycle.
	version := c.Controller.Version()
	if err := c.Controller.RunCycle(nil); err != nil {
		t.Fatalf("post-kill recompute: %v", err)
	}
	if c.Controller.Version() != version+1 {
		t.Fatal("recompute did not advance the version")
	}
	for ci, s := range coord.Assignment() {
		if int(s) == victim {
			t.Errorf("component %d still assigned to dead shard service %d", ci, victim)
		}
	}
	v = pmc.Verify(c.Controller.ProbeMatrix(), c.F.SwitchLinks(), false)
	if v.MinCoverage < alpha {
		t.Errorf("post-failover coverage %d below alpha %d — reassignment did not re-cover the dead shard's components",
			v.MinCoverage, alpha)
	}
	if !v.Identifiable1 {
		t.Errorf("post-failover matrix lost 1-identifiability: %v", v.Collisions)
	}
	if !reflect.DeepEqual(c.Controller.ProbeMatrix().PathLinks, origMatrix) {
		t.Error("served matrix changed across remote shard failover — merge guarantee broken")
	}
}

// TestRemoteShardEndToEndAlert proves the whole detection loop runs over
// the transport: probes flow, the diagnoser routes each window's
// observations to the remote shard services for localization, and a full
// link failure still produces a correctly scoped alert.
func TestRemoteShardEndToEndAlert(t *testing.T) {
	opts := fastOptions()
	opts.Shards = 2
	opts.RemoteShards = true
	opts.ShardTTL = 10 * time.Second
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	// Warm up one clean window so the baseline is loss-free.
	time.Sleep(1200 * time.Millisecond)

	bad := c.F.MustLink(c.F.AggID[1][0], c.F.CoreID[0])
	c.InjectFailure(bad, sim.FullLoss{})
	alert := c.WaitForAlert([]topo.LinkID{bad}, 10*time.Second)
	if alert == nil {
		t.Fatalf("no alert for link %d within deadline over remote shards; alerts: %+v",
			bad, c.Diagnoser.Alerts())
	}
	if len(alert.Bad) != 1 {
		t.Errorf("alert names %d links, want exactly the failed one: %+v", len(alert.Bad), alert.Bad)
	}
	if alert.Bad[0].Rate < 0.5 {
		t.Errorf("estimated loss rate %.2f for a full-loss link", alert.Bad[0].Rate)
	}
}

// TestRemoteShardBinaryWireIdentical re-runs the serving-identity check
// with the fleet forced onto the v2 binary codec: the controller and the
// diagnoser drive every shard over binary frames, the served matrix is
// still byte-identical to an unsharded boot, and the coordinator's
// placement view reports the codec per shard.
func TestRemoteShardBinaryWireIdentical(t *testing.T) {
	ref, err := Start(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ref.Stop)

	opts := fastOptions()
	opts.Shards = 2
	opts.RemoteShards = true
	opts.ShardTTL = 300 * time.Millisecond
	opts.ShardWire = shardrpc.WireBinary
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)

	coord := c.Controller.Coordinator()
	if coord == nil {
		t.Fatal("remote sharded boot produced no coordinator")
	}
	for _, si := range coord.Status().Shards {
		if si.Codec != shardrpc.CodecBinary {
			t.Errorf("shard %d codec %q, want %q", si.ID, si.Codec, shardrpc.CodecBinary)
		}
	}
	if !reflect.DeepEqual(c.Controller.ProbeMatrix().PathLinks, ref.Controller.ProbeMatrix().PathLinks) {
		t.Fatal("served matrix differs between binary-wire and unsharded boots")
	}
}
