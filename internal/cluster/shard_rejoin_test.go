package cluster

import (
	"reflect"
	"testing"
	"time"
)

// TestShardRejoinReclaimsComponents closes the failover loop the ROADMAP
// left untested: after a dead shard's components fail over to the
// survivors, reviving the shard must hand them back. Because the
// capacity-capped rendezvous assignment is a pure function of (component
// keys, alive set), the post-rejoin assignment must equal the pre-failure
// assignment exactly — and the served probe matrix must stay bit-identical
// through the whole kill → failover → rejoin sequence.
func TestShardRejoinReclaimsComponents(t *testing.T) {
	opts := fastOptions()
	opts.Shards = 2
	opts.ShardTTL = 300 * time.Millisecond
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)

	coord := c.Controller.Coordinator()
	if coord == nil {
		t.Fatal("sharded boot produced no coordinator")
	}
	origAssign := coord.Assignment()
	origMatrix := c.Controller.ProbeMatrix().PathLinks

	victim := int(origAssign[0])
	coord.Kill(victim)
	deadline := time.Now().Add(15 * time.Second)
	for {
		u := coord.Unhealthy()
		if len(u) == 1 && u[0] == victim {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard watchdog never declared shard %d dead (unhealthy=%v)", victim, u)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := c.Controller.RunCycle(nil); err != nil {
		t.Fatalf("post-failure recompute: %v", err)
	}
	failedOver := coord.Assignment()
	for ci, s := range failedOver {
		if int(s) == victim {
			t.Fatalf("component %d still assigned to dead shard %d", ci, victim)
		}
	}
	if !reflect.DeepEqual(c.Controller.ProbeMatrix().PathLinks, origMatrix) {
		t.Fatal("served matrix changed across shard failover")
	}

	// Recovery: the shard rejoins, heartbeats resume, and one recompute
	// returns every component to its original owner.
	coord.Revive(victim)
	deadline = time.Now().Add(15 * time.Second)
	for len(coord.Unhealthy()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("revived shard %d never became healthy (unhealthy=%v)", victim, coord.Unhealthy())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := c.Controller.RunCycle(nil); err != nil {
		t.Fatalf("post-rejoin recompute: %v", err)
	}
	rejoined := coord.Assignment()
	if !reflect.DeepEqual(rejoined, origAssign) {
		t.Fatalf("post-rejoin assignment %v differs from original %v — the revived shard did not reclaim its components",
			rejoined, origAssign)
	}
	victimOwns := 0
	for _, s := range rejoined {
		if int(s) == victim {
			victimOwns++
		}
	}
	if victimOwns == 0 {
		t.Fatal("revived shard owns no components; test is vacuous")
	}
	if !reflect.DeepEqual(c.Controller.ProbeMatrix().PathLinks, origMatrix) {
		t.Fatal("served matrix changed across shard rejoin")
	}
}
