package cluster

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"github.com/detector-net/detector/internal/control"
	"github.com/detector-net/detector/internal/topo"
)

// TestClusterChurnLoopbackDifferential drives random link churn through
// Cluster.Churn with the shard plane behind real loopback HTTP services and
// checks after every step that the incrementally recomputed served state —
// matrix and every pinglist — is identical to a controller built from
// scratch for the churned topology. This is the end-to-end correctness
// gate for the diff → dirty-dispatch → warm-start → serve pipeline over
// the wire.
func TestClusterChurnLoopbackDifferential(t *testing.T) {
	opts := fastOptions()
	opts.Shards = 2
	opts.RemoteShards = true
	opts.ShardTTL = 30 * time.Second
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)

	rng := rand.New(rand.NewSource(11))
	links := c.F.SwitchLinks()
	downSet := make(map[topo.LinkID]bool)
	for step := 0; step < 4; step++ {
		l := links[rng.Intn(len(links))]
		var derr error
		if downSet[l] {
			_, derr = c.Churn(nil, []topo.LinkID{l})
			downSet[l] = false
		} else {
			_, derr = c.Churn([]topo.LinkID{l}, nil)
			downSet[l] = true
		}
		if derr != nil {
			t.Fatalf("step %d: %v", step, derr)
		}

		// Ground truth: an unsharded controller built fresh for the churned
		// topology (transport and incrementality must both be invisible).
		cfg := fastOptions().Control
		cfg.ReportURL = c.DiagnoserURL
		for dl, isDown := range downSet {
			if isDown {
				cfg.DownLinks = append(cfg.DownLinks, dl)
			}
		}
		want := control.New(c.F, cfg)
		if err := want.RunCycle(nil); err != nil {
			t.Fatalf("step %d: fresh controller: %v", step, err)
		}
		if !reflect.DeepEqual(c.Controller.ProbeMatrix().PathLinks, want.ProbeMatrix().PathLinks) {
			t.Fatalf("step %d: churned matrix diverges from from-scratch recompute", step)
		}
		gotNodes, wantNodes := c.Controller.PingerNodes(), want.PingerNodes()
		sort.Slice(gotNodes, func(i, j int) bool { return gotNodes[i] < gotNodes[j] })
		sort.Slice(wantNodes, func(i, j int) bool { return wantNodes[i] < wantNodes[j] })
		if !reflect.DeepEqual(gotNodes, wantNodes) {
			t.Fatalf("step %d: pinger sets diverge (%d vs %d)", step, len(gotNodes), len(wantNodes))
		}
		for _, n := range wantNodes {
			g, w := c.Controller.PinglistFor(n), want.PinglistFor(n)
			if !reflect.DeepEqual(g.Entries, w.Entries) {
				t.Fatalf("step %d: pinglist for node %d diverges (%d vs %d entries)",
					step, n, len(g.Entries), len(w.Entries))
			}
		}
		want.Close()

		// The diagnoser swapped to the churned matrix in the same call.
		if got, want := c.Diagnoser.MatrixVersion(), c.Controller.Version(); got != want {
			t.Fatalf("step %d: diagnoser matrix version %d, controller at %d", step, got, want)
		}
	}
}

// TestClusterChurnPingerConvergence is the fleet half of the churn
// pipeline: after Cluster.Churn, every pinger converges onto its new work
// order through the window-boundary delta refresh — no restart, no
// re-fetch of unchanged lists — and no probe flows over the downed link.
func TestClusterChurnPingerConvergence(t *testing.T) {
	c := startCluster(t)

	// Down an aggregation-core link: several ToR-level routes traverse it,
	// so at least one pinger's work order must change.
	bad := c.F.MustLink(c.F.AggID[1][0], c.F.CoreID[0])
	diff, err := c.Churn([]topo.LinkID{bad}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if diff.Empty() {
		t.Fatal("downing an agg-core link produced an empty diff")
	}

	deadline := time.Now().Add(15 * time.Second)
	converged := false
	for time.Now().Before(deadline) && !converged {
		converged = true
		for _, p := range c.Pingers {
			served := c.Controller.PinglistFor(p.Node)
			if served == nil || p.PinglistVersion() != served.Version {
				converged = false
				break
			}
		}
		if !converged {
			time.Sleep(20 * time.Millisecond)
		}
	}
	if !converged {
		t.Fatal("pinger fleet never converged on the churned work order")
	}
	changed := 0
	for _, p := range c.Pingers {
		served := c.Controller.PinglistFor(p.Node)
		got := p.Pinglist()
		if !reflect.DeepEqual(got.Entries, served.Entries) {
			t.Fatalf("pinger %d entries diverge from served pinglist", p.Node)
		}
		if served.Version > 1 {
			changed++
		}
		for _, e := range got.Entries {
			for i := 1; i < len(e.Route); i++ {
				if l, ok := c.F.LinkBetween(e.Route[i-1], e.Route[i]); ok && l == bad {
					t.Fatalf("pinger %d still probing over downed link %d", p.Node, bad)
				}
			}
		}
	}
	if changed == 0 {
		t.Fatal("no pinger's work order changed — churn delta never propagated")
	}
}
