// Package cluster boots the full deTector deployment on one machine: the
// UDP switch fabric, controller, diagnoser and watchdog HTTP services, and
// pinger/responder agents on every server — the in-process equivalent of
// the paper's 20-switch testbed deployment (§6.1-6.3). Examples and
// integration tests drive it with compressed timescales.
package cluster

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"github.com/detector-net/detector/internal/control"
	"github.com/detector-net/detector/internal/diag"
	"github.com/detector-net/detector/internal/fabric"
	"github.com/detector-net/detector/internal/pinger"
	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/responder"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/shard"
	"github.com/detector-net/detector/internal/shardrpc"
	"github.com/detector-net/detector/internal/sim"
	"github.com/detector-net/detector/internal/topo"
	"github.com/detector-net/detector/internal/watchdog"
)

// Options shapes a cluster boot.
type Options struct {
	// K is the Fattree radix (default 4, the paper's testbed).
	K int
	// Control overrides controller defaults; WindowMS and RatePPS are the
	// main knobs for test-speed runs.
	Control control.Config
	// Window is the diagnoser localization period.
	Window time.Duration
	// ProbeTimeout declares probe loss (default 100 ms).
	ProbeTimeout time.Duration
	// WatchdogTTL marks servers unhealthy after this heartbeat silence.
	WatchdogTTL time.Duration
	// RuleSeed fixes probabilistic-drop randomness.
	RuleSeed int64
	// Shards, when > 1, boots that many controller shards in-process: the
	// controller constructs through the shard coordinator and the
	// diagnoser localizes through the shard plane. The served pinglists,
	// matrix and alerts are identical to a single-controller boot; what
	// changes is that construction distributes and survives shard death
	// (see Controller.Coordinator for the failover hooks).
	Shards int
	// RemoteShards runs the Shards controller shards as real loopback
	// HTTP services (internal/shardrpc) instead of in-process: the
	// coordinator and diagnoser drive them over the wire — the
	// single-machine stand-in for a real multi-controller deployment,
	// with identical served output (the transport moves component slices,
	// selections and verdicts; the matrix never moves).
	RemoteShards bool
	// ShardEndpoints connects the control plane to an already-running
	// external shard fleet (detectord -shard-serve processes) instead of
	// booting anything locally. Overrides Shards and RemoteShards; every
	// service must be built for the same Fattree radix K.
	ShardEndpoints []string
	// ShardTTL marks a controller shard dead after this heartbeat
	// silence (default 4 windows, like WatchdogTTL).
	ShardTTL time.Duration
	// ShardWire selects the transport codec for remote shards
	// (shardrpc.WireAuto/WireJSON/WireBinary; default auto-negotiate at
	// ping time). Applies to RemoteShards boots and ShardEndpoints
	// fleets alike, for the controller and the diagnoser both.
	ShardWire string
	// ShardCompression selects localize-path compression for remote
	// shards (shardrpc.CompressAuto/CompressOff/CompressGzip; default
	// auto-negotiate at ping time). Same scope as ShardWire.
	ShardCompression string
	// Partition selects the diagnosis plane's ownership policy ("exact"
	// default, or "approx" to cut server-edge links — see shard.Plane).
	// Applies to the controller's coordinator and the diagnoser both.
	Partition string
	// ReportWire selects the pinger→diagnoser report codec: empty or
	// shardrpc.CodecJSON for JSON bodies, shardrpc.CodecBinary for the
	// v2 binary report frame (varint-delta paths, raw-bits floats).
	ReportWire string
	// ReportBatch merges this many report windows at each pinger before
	// one payload ships (pre-aggregation; default 1 = ship every window).
	ReportBatch int
	// ReportTopK, when > 0 and the diagnoser advertises summary ingest,
	// ships kind-6 summary frames: the K worst paths keep full signal
	// detail, every other observed path rides as a bare loss counter.
	// Loss localization is unaffected (counters are complete); only RTT/
	// ECN signals are elided on the residue.
	ReportTopK int
	// StreamReports ships report frames over one persistent
	// POST /reportstream connection per pinger instead of per-window
	// POSTs (requires ReportWire binary and a diagnoser that advertises
	// streaming).
	StreamReports bool
	// PLL overrides the diagnoser's localization config. Compressed-time
	// runs should raise LossRatioFloor/MinLoss: with windows of a few
	// hundred milliseconds, a single scheduler stall mimics a burst of
	// packet loss that a 30-second production window would average away.
	PLL *pll.Config
}

// Cluster is a running deployment.
type Cluster struct {
	F     *topo.Fattree
	Rules *fabric.RuleTable
	Fab   *fabric.Fabric

	Controller *control.Controller
	Diagnoser  *diag.Diagnoser
	Watchdog   *watchdog.Service

	ControllerURL string
	DiagnoserURL  string
	WatchdogURL   string

	Pingers    []*pinger.Pinger
	Responders []*responder.Responder

	// ShardURLs lists the loopback shard service endpoints when the boot
	// used RemoteShards (or echoes Options.ShardEndpoints).
	ShardURLs []string

	servers   []*http.Server
	shardSrvs []*http.Server
}

// serveHTTP starts an http.Server on an ephemeral loopback port.
func serveHTTP(h http.Handler) (*http.Server, string, error) {
	ln, err := net.Listen("tcp4", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return srv, "http://" + ln.Addr().String(), nil
}

// Start boots everything and runs one controller cycle.
func Start(opts Options) (*Cluster, error) {
	if opts.K == 0 {
		opts.K = 4
	}
	if opts.Window == 0 {
		opts.Window = 30 * time.Second
	}
	if opts.WatchdogTTL == 0 {
		opts.WatchdogTTL = 4 * opts.Window
	}
	if opts.Control.Alpha == 0 && opts.Control.Beta == 0 {
		opts.Control = control.DefaultConfig()
		opts.Control.WindowMS = int(opts.Window / time.Millisecond)
	}
	if opts.Shards > 1 || len(opts.ShardEndpoints) > 0 {
		opts.Control.Shards = opts.Shards
		if opts.ShardTTL == 0 {
			opts.ShardTTL = 4 * opts.Window
		}
		opts.Control.ShardTTL = opts.ShardTTL
	}
	f, err := topo.NewFattree(opts.K)
	if err != nil {
		return nil, err
	}
	c := &Cluster{F: f, Rules: fabric.NewRuleTable(opts.RuleSeed)}

	fail := func(err error) (*Cluster, error) {
		c.Stop()
		return nil, err
	}

	// Shard fleet before the control plane: the controller and diagnoser
	// take its endpoints as config. Each loopback service owns its own
	// materialization of the candidate matrix, derived from the topology
	// exactly as the coordinator derives its own — the matrix-signature
	// handshake holds the two together.
	if opts.RemoteShards && opts.Shards <= 1 && len(opts.ShardEndpoints) == 0 {
		return fail(fmt.Errorf("cluster: RemoteShards requires Shards > 1 (got %d) — nothing to put behind the transport", opts.Shards))
	}
	switch {
	case len(opts.ShardEndpoints) > 0:
		c.ShardURLs = opts.ShardEndpoints
	case opts.Shards > 1 && opts.RemoteShards:
		ps := route.NewFattreePaths(f)
		for i := 0; i < opts.Shards; i++ {
			srv, url, err := serveHTTP(shardrpc.NewServer(ps, f.NumLinks()).Handler())
			if err != nil {
				return fail(fmt.Errorf("cluster: shard server %d: %w", i, err))
			}
			c.shardSrvs = append(c.shardSrvs, srv)
			c.ShardURLs = append(c.ShardURLs, url)
		}
	}
	if len(c.ShardURLs) > 0 {
		opts.Control.ShardEndpoints = c.ShardURLs
		opts.Control.ShardWire = opts.ShardWire
		opts.Control.ShardCompression = opts.ShardCompression
	}
	opts.Control.Partition = opts.Partition

	c.Fab, err = fabric.Start(f.Topology, c.Rules)
	if err != nil {
		return fail(err)
	}

	// Watchdog first: everything else reports into it.
	c.Watchdog = watchdog.New(opts.WatchdogTTL)
	srv, url, err := serveHTTP(c.Watchdog.Handler())
	if err != nil {
		return fail(err)
	}
	c.servers = append(c.servers, srv)
	c.WatchdogURL = url

	// Diagnoser next, so the controller can hand pingers its URL.
	pllCfg := pll.DefaultConfig()
	if opts.PLL != nil {
		pllCfg = *opts.PLL
	}
	// The fabric's drop counters are the diagnoser's SNMP side channel:
	// per-link deltas since the last read, so the verdict lattice can
	// split counted loss (lossy) from uncounted loss (silent-partial —
	// gray rules never bump a counter).
	var cntMu sync.Mutex
	lastRead := make(map[topo.LinkID]int64)
	counters := pll.LinkCounters(func(l topo.LinkID) (int64, bool) {
		cntMu.Lock()
		defer cntMu.Unlock()
		cur := c.Rules.Counter(l)
		delta := cur - lastRead[l]
		lastRead[l] = cur
		return delta, true
	})
	partition, err := shard.ParsePartitionPolicy(opts.Partition)
	if err != nil {
		return fail(fmt.Errorf("cluster: %w", err))
	}
	c.Diagnoser = diag.New(diag.Options{
		Window:           opts.Window,
		PLL:              pllCfg,
		Topo:             f.Topology,
		Shards:           opts.Shards,
		ShardEndpoints:   c.ShardURLs,
		ShardWire:        opts.ShardWire,
		ShardCompression: opts.ShardCompression,
		Partition:        partition,
		LinkCounters:     counters,
	})
	srv, url, err = serveHTTP(c.Diagnoser.Handler())
	if err != nil {
		return fail(err)
	}
	c.servers = append(c.servers, srv)
	c.DiagnoserURL = url

	// Controller: one PMC cycle before agents fetch pinglists.
	cfg := opts.Control
	cfg.ReportURL = c.DiagnoserURL
	c.Controller = control.New(f, cfg)
	if err := c.Controller.RunCycle(nil); err != nil {
		return fail(err)
	}
	srv, url, err = serveHTTP(c.Controller.Handler())
	if err != nil {
		return fail(err)
	}
	c.servers = append(c.servers, srv)
	c.ControllerURL = url

	// The diagnoser learns the matrix in-process (it would also pick it
	// up from /matrix on its first window).
	c.Diagnoser.SetMatrix(c.Controller.ProbeMatrix(), c.Controller.Version())
	c.Diagnoser.Run()

	// Agents: pingers where the controller says so, responders elsewhere.
	isPinger := make(map[topo.NodeID]bool)
	for _, n := range c.Controller.PingerNodes() {
		isPinger[n] = true
	}
	for _, sv := range f.Servers() {
		c.Watchdog.Track(sv)
		if isPinger[sv] {
			p, err := pinger.Start(f.Topology, c.Rules, c.Fab.Registry, sv, c.ControllerURL, pinger.Options{
				Timeout:       opts.ProbeTimeout,
				HeartbeatURL:  c.WatchdogURL,
				ReportWire:    opts.ReportWire,
				BatchWindows:  opts.ReportBatch,
				TopK:          opts.ReportTopK,
				StreamReports: opts.StreamReports,
			})
			if err != nil {
				return fail(fmt.Errorf("cluster: pinger %d: %w", sv, err))
			}
			if p != nil {
				c.Pingers = append(c.Pingers, p)
				continue
			}
		}
		r, err := responder.Start(f.Topology, c.Rules, c.Fab.Registry, sv)
		if err != nil {
			return fail(fmt.Errorf("cluster: responder %d: %w", sv, err))
		}
		c.Responders = append(c.Responders, r)
		c.Watchdog.Heartbeat(sv)
	}
	// Responders do not heartbeat on their own in this harness; mark them
	// healthy once. Pingers heartbeat every window.
	return c, nil
}

// KillShardServer closes loopback shard service i outright — connections
// refused from the next dial, the single-machine analog of a shard machine
// losing power. Only meaningful after a RemoteShards boot.
func (c *Cluster) KillShardServer(i int) { c.shardSrvs[i].Close() }

// Churn applies a topology change — links leaving and rejoining service —
// and runs one incremental controller cycle: only the candidate components
// the diff marks dirty recompute (clean selections are reused verbatim),
// the diagnoser swaps to the refreshed matrix, and every pinger converges
// on its new work order through the window-boundary delta refresh — no
// agent restart, no full fleet re-fetch.
func (c *Cluster) Churn(down, up []topo.LinkID) (route.Diff, error) {
	d, err := c.Controller.ApplyChurn(down, up)
	if err != nil {
		return d, err
	}
	if err := c.Controller.RunCycle(c.Watchdog.UnhealthySet()); err != nil {
		return d, err
	}
	c.Diagnoser.SetMatrix(c.Controller.ProbeMatrix(), c.Controller.Version())
	return d, nil
}

// InjectFailure installs a loss model on a link (the OpenFlow-rule analog).
func (c *Cluster) InjectFailure(l topo.LinkID, m sim.LossModel) { c.Rules.Install(l, m) }

// Repair removes the failure on a link.
func (c *Cluster) Repair(l topo.LinkID) { c.Rules.Remove(l) }

// WaitForAlert polls the diagnoser until an alert naming any of the links
// arrives or the deadline passes. It returns the alert or nil.
func (c *Cluster) WaitForAlert(links []topo.LinkID, deadline time.Duration) *diag.Alert {
	want := make(map[topo.LinkID]bool, len(links))
	for _, l := range links {
		want[l] = true
	}
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		for _, a := range c.Diagnoser.Alerts() {
			for _, v := range a.Bad {
				if want[v.Link] {
					alert := a
					return &alert
				}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	return nil
}

// Stop tears everything down.
func (c *Cluster) Stop() {
	for _, p := range c.Pingers {
		p.Stop()
	}
	for _, r := range c.Responders {
		r.Stop()
	}
	if c.Diagnoser != nil {
		c.Diagnoser.Stop()
	}
	if c.Controller != nil {
		c.Controller.Close()
	}
	for _, s := range c.servers {
		s.Close()
	}
	for _, s := range c.shardSrvs {
		s.Close()
	}
	if c.Fab != nil {
		c.Fab.Stop()
	}
}
