package pinger

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/detector-net/detector/internal/control"
	"github.com/detector-net/detector/internal/fabric"
	"github.com/detector-net/detector/internal/responder"
	"github.com/detector-net/detector/internal/shardrpc"
	"github.com/detector-net/detector/internal/topo"
)

// deltaStub is a control plane with a version history: the cold fetch
// serves the full pinglist, a since= fetch at the current version answers
// 304, and a since= fetch one version behind serves the configured delta.
type deltaStub struct {
	mu          sync.Mutex
	cur         control.Pinglist
	delta       *shardrpc.PinglistDelta
	reports     []Report
	notModified int
	deltasSent  int
	srv         *httptest.Server
}

func newDeltaStub(t *testing.T, pl control.Pinglist) *deltaStub {
	s := &deltaStub{cur: pl}
	mux := http.NewServeMux()
	mux.HandleFunc("/pinglist", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		cur := s.cur
		cur.ReportURL = s.srv.URL
		d := s.delta
		s.mu.Unlock()
		since, _ := strconv.Atoi(r.URL.Query().Get("since"))
		switch {
		case since >= cur.Version:
			s.mu.Lock()
			s.notModified++
			s.mu.Unlock()
			w.WriteHeader(http.StatusNotModified)
		case since > 0 && d != nil && d.FromVersion == since:
			s.mu.Lock()
			s.deltasSent++
			s.mu.Unlock()
			json.NewEncoder(w).Encode(d)
		default:
			json.NewEncoder(w).Encode(cur)
		}
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		var rep Report
		if err := json.NewDecoder(r.Body).Decode(&rep); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		s.reports = append(s.reports, rep)
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})
	s.srv = httptest.NewServer(mux)
	t.Cleanup(s.srv.Close)
	return s
}

// TestPingerAppliesDelta drives a v1 -> v2 pinglist change through the
// pinger's window-boundary refresh: the removed path stops probing, the
// added path starts, and the untouched path keeps its warm state object.
func TestPingerAppliesDelta(t *testing.T) {
	f := topo.MustFattree(4)
	rules := fabric.NewRuleTable(3)
	fab, err := fabric.Start(f.Topology, rules)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fab.Stop)

	src := f.ServerID[0][0][0]
	dst := f.ServerID[2][1][0]
	r, err := responder.Start(f.Topology, rules, fab.Registry, dst)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)

	route := func(core int) []topo.NodeID {
		hops := []topo.NodeID{src}
		hops = f.PathHops(f.EdgeID[0][0], f.EdgeID[2][1], core, hops)
		return append(hops, dst)
	}
	labels := []uint32{40000, 40001, 40002, 40003}
	entry7 := control.Entry{PathID: 7, Route: route(1), FlowLabels: labels}
	entry8 := control.Entry{PathID: 8, Route: route(0), FlowLabels: labels}
	entry9 := control.Entry{PathID: 9, Route: route(2), FlowLabels: labels}

	stub := newDeltaStub(t, control.Pinglist{
		Version: 1, Node: src, RatePPS: 100, WindowMS: 120,
		Entries: []control.Entry{entry7, entry8},
	})
	p, err := Start(f.Topology, rules, fab.Registry, src, stub.srv.URL, Options{
		Timeout: 80 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p == nil {
		t.Fatal("pinger not started")
	}
	t.Cleanup(p.Stop)

	// Let a couple of windows close so the steady-state refresh has hit the
	// 304 path and path 8 has accumulated warm per-path state.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		stub.mu.Lock()
		nm := stub.notModified
		stub.mu.Unlock()
		if nm >= 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	stub.mu.Lock()
	if stub.notModified < 2 {
		stub.mu.Unlock()
		t.Fatal("steady-state refresh never answered 304")
	}
	stub.mu.Unlock()

	p.mu.Lock()
	var warm8 *pathState
	for _, st := range p.paths {
		if st.entry.PathID == 8 {
			warm8 = st
		}
	}
	p.mu.Unlock()
	if warm8 == nil {
		t.Fatal("path 8 missing before churn")
	}

	// Publish version 2: path 7 removed, path 9 added, path 8 untouched.
	stub.mu.Lock()
	stub.cur = control.Pinglist{
		Version: 2, Node: src, RatePPS: 100, WindowMS: 120,
		Entries: []control.Entry{entry8, entry9},
	}
	stub.delta = &shardrpc.PinglistDelta{
		Node: src, FromVersion: 1, Version: 2,
		RatePPS: 100, WindowMS: 120, ReportURL: stub.srv.URL,
		Removed: []uint32{7},
		Added:   []shardrpc.PingEntry{{PathID: 9, Route: entry9.Route, FlowLabels: labels}},
	}
	stub.mu.Unlock()

	for time.Now().Before(deadline) {
		if p.PinglistVersion() == 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if p.PinglistVersion() != 2 {
		t.Fatal("pinger never applied the delta")
	}
	stub.mu.Lock()
	if stub.deltasSent == 0 {
		stub.mu.Unlock()
		t.Fatal("version moved without serving a delta")
	}
	stub.mu.Unlock()

	p.mu.Lock()
	var ids []uint32
	var kept8 *pathState
	for _, st := range p.paths {
		ids = append(ids, st.entry.PathID)
		if st.entry.PathID == 8 {
			kept8 = st
		}
	}
	for _, o := range p.pending {
		if id := p.paths[o.pathIdx].entry.PathID; id != 8 && id != 9 {
			p.mu.Unlock()
			t.Fatalf("in-flight probe mapped to path %d after churn", id)
		}
	}
	p.mu.Unlock()
	if len(ids) != 2 || ids[0] != 8 || ids[1] != 9 {
		t.Fatalf("paths after delta = %v, want [8 9]", ids)
	}
	if kept8 != warm8 {
		t.Fatal("untouched path 8 lost its warm state object across the refresh")
	}

	// Probing continues on the new work order: a report mentioning path 9
	// shows up, and post-churn reports never mention path 7 again.
	sawNine := false
	for time.Now().Before(deadline) && !sawNine {
		stub.mu.Lock()
		for _, rep := range stub.reports {
			for _, res := range rep.Results {
				if res.PathID == 9 {
					sawNine = true
				}
			}
		}
		stub.mu.Unlock()
		time.Sleep(20 * time.Millisecond)
	}
	if !sawNine {
		t.Fatal("no probes reported on the added path")
	}
}
