// Package pinger implements deTector's probing agent (paper §3.1, §6.1):
// it fetches its pinglist from the controller, sends source-routed UDP
// probes at a fixed rate while rotating flow labels for packet entropy,
// detects losses by echo timeout, confirms each loss with two extra probes
// of the same content, aggregates counters per path every window, and
// POSTs the results to the diagnoser.
package pinger

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"github.com/detector-net/detector/internal/control"
	"github.com/detector-net/detector/internal/fabric"
	"github.com/detector-net/detector/internal/shardrpc"
	"github.com/detector-net/detector/internal/topo"
	"github.com/detector-net/detector/internal/wire"
)

// PathReport is one path's counters for one window.
type PathReport struct {
	PathID uint32 `json:"path_id"`
	Sent   int    `json:"sent"`
	Lost   int    `json:"lost"`
	// MeanRTTNS is the mean round-trip time of delivered probes.
	MeanRTTNS int64 `json:"mean_rtt_ns"`
	// JitterNS is the RFC 3550 interarrival jitter of the delivered
	// probes' RTTs: the smoothed mean of |RTT(i)−RTT(i−1)|.
	JitterNS int64 `json:"jitter_ns,omitempty"`
	// ECNFrac is the fraction of delivered probes whose echo carried the
	// congestion-experienced mark (a switch set wire.FlagECN en route).
	ECNFrac float64 `json:"ecn_frac,omitempty"`
}

// Report is the window aggregate POSTed to the diagnoser.
type Report struct {
	Node    topo.NodeID  `json:"node"`
	Version int          `json:"version"`
	EndNS   int64        `json:"end_ns"`
	Results []PathReport `json:"results"`
}

// Options tunes agent behavior; zero values take the defaults noted.
type Options struct {
	// Timeout declares a probe lost when no echo arrives (default 100ms,
	// as in the paper).
	Timeout time.Duration
	// SweepEvery is the timeout scan period (default Timeout/4).
	SweepEvery time.Duration
	// ConfirmProbes is the loss-confirmation burst size (paper: 2).
	ConfirmProbes int
	// HeartbeatURL, when set, receives watchdog heartbeats every window.
	HeartbeatURL string
	// HTTPClient overrides the default client.
	HTTPClient *http.Client
	// ReportWire selects the report encoding: shardrpc.CodecJSON (default)
	// or shardrpc.CodecBinary for the v2 binary frame.
	ReportWire string
	// BatchWindows, when > 1, merges that many report windows locally
	// before shipping one pre-aggregated payload (counters summed, signal
	// means delivered-weighted). Default 1: ship every window.
	BatchWindows int
	// TopK, when > 0 and the diagnoser advertises summary ingest, ships
	// the K worst paths with full signal detail and every other probed
	// path as bare residue counters (v2 kind-6 frame). Loss localization
	// is unaffected — the residue preserves every counter — only per-path
	// latency/ECN detail is trimmed. Requires ReportWire binary.
	TopK int
	// StreamReports, when true and the diagnoser advertises the stream
	// endpoint, ships report frames over one persistent connection instead
	// of per-window POSTs. Requires ReportWire binary.
	StreamReports bool
}

type pathState struct {
	entry    control.Entry
	sent     int
	lost     int
	rttNS    int64
	acked    int
	ecn      int     // echoes that arrived congestion-marked
	jitter   float64 // RFC 3550 smoothed |RTT delta|, ns
	prevRTT  int64   // last delivered RTT, for the jitter delta
	label    int     // rotating flow-label index
	confirms int     // confirmation probes fired this window
}

type outstanding struct {
	pathIdx int
	sentAt  time.Time
	confirm bool
}

// Pinger is one probing agent bound to a server node.
type Pinger struct {
	Node topo.NodeID
	Opts Options

	topo  *topo.Topology
	rules *fabric.RuleTable
	reg   *fabric.Registry
	conn  *net.UDPConn

	pinglist      *control.Pinglist
	controllerURL string
	client        *http.Client

	mu      sync.Mutex
	paths   []*pathState
	pending map[uint64]outstanding
	nextID  uint64
	rr      int // round-robin cursor

	// Report-shipping state (report.go), under its own lock so HTTP round
	// trips never stall the probing path.
	repMu       sync.Mutex
	pend        map[uint32]*pendAgg // pending (possibly multi-window) aggregate
	pendWindows int
	caps        *shardrpc.ReportCaps
	capsOK      bool
	streamW     *io.PipeWriter // persistent report stream, nil when closed

	stop chan struct{}
	done sync.WaitGroup
}

// Start fetches the node's pinglist from the controller and begins probing.
// It returns (nil, nil) when the controller does not list this node as a
// pinger this cycle.
func Start(t *topo.Topology, rules *fabric.RuleTable, reg *fabric.Registry,
	node topo.NodeID, controllerURL string, opts Options) (*Pinger, error) {

	if opts.Timeout == 0 {
		opts.Timeout = 100 * time.Millisecond
	}
	if opts.SweepEvery == 0 {
		opts.SweepEvery = opts.Timeout / 4
	}
	if opts.ConfirmProbes == 0 {
		opts.ConfirmProbes = 2
	}
	client := opts.HTTPClient
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	pl, err := control.FetchPinglist(client, controllerURL, node)
	if err != nil {
		return nil, fmt.Errorf("pinger %d: fetch pinglist: %w", node, err)
	}
	if pl == nil || len(pl.Entries) == 0 {
		return nil, nil
	}
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	reg.Register(node, conn.LocalAddr().(*net.UDPAddr))

	p := &Pinger{
		Node: node, Opts: opts,
		topo: t, rules: rules, reg: reg, conn: conn,
		pinglist: pl, controllerURL: controllerURL, client: client,
		pending: make(map[uint64]outstanding),
		pend:    make(map[uint32]*pendAgg),
		stop:    make(chan struct{}),
	}
	for _, e := range pl.Entries {
		p.paths = append(p.paths, &pathState{entry: e})
	}
	p.done.Add(3)
	go p.receiveLoop()
	go p.sendLoop()
	go p.sweepAndReportLoop()
	return p, nil
}

// Stop halts all loops, closes the socket and ends the report stream.
func (p *Pinger) Stop() {
	close(p.stop)
	p.conn.Close()
	p.done.Wait()
	p.closeStream()
}

// Pinglist returns the active work order.
func (p *Pinger) Pinglist() *control.Pinglist { return p.pinglist }

// sendLoop emits probes at RatePPS, round-robin over paths, rotating flow
// labels per path.
func (p *Pinger) sendLoop() {
	defer p.done.Done()
	tick := time.NewTicker(probeInterval(p.pinglist.RatePPS))
	defer tick.Stop()
	var buf []byte
	for {
		select {
		case <-p.stop:
			return
		case <-tick.C:
			buf = p.sendNext(buf, false, 0)
		}
	}
}

// sendNext sends one probe. When confirm is true it retransmits on the
// given path (loss confirmation burst).
func (p *Pinger) sendNext(buf []byte, confirm bool, pathIdx int) []byte {
	p.mu.Lock()
	if len(p.paths) == 0 {
		// Churn emptied the work order; keep the loops alive, a later
		// refresh may re-list this node.
		p.mu.Unlock()
		return buf
	}
	if !confirm {
		pathIdx = p.rr % len(p.paths)
		p.rr++
	}
	st := p.paths[pathIdx]
	label := st.entry.FlowLabels[st.label%len(st.entry.FlowLabels)]
	st.label++
	id := p.nextID
	p.nextID++
	flags := uint8(0)
	if confirm {
		flags |= wire.FlagConfirm
	}
	pkt := &wire.Packet{
		Flags:     flags,
		DSCP:      st.entry.DSCP,
		ProbeID:   id,
		PathID:    st.entry.PathID,
		FlowLabel: label,
		SendNS:    time.Now().UnixNano(),
		Route:     st.entry.Route,
	}
	st.sent++
	p.pending[id] = outstanding{pathIdx: pathIdx, sentAt: time.Now(), confirm: confirm}
	p.mu.Unlock()

	out, err := fabric.SendFirstHop(p.conn, p.reg, pkt, buf)
	if err != nil {
		// First hop unreachable: count as immediate loss.
		p.mu.Lock()
		if _, ok := p.pending[id]; ok {
			delete(p.pending, id)
			st.lost++
		}
		p.mu.Unlock()
		return buf
	}
	return out
}

// receiveLoop matches echoes to outstanding probes. Because every server
// runs the responder module (paper §3.1) and the fabric registry maps one
// socket per node, the pinger also answers incoming probe requests here.
func (p *Pinger) receiveLoop() {
	defer p.done.Done()
	buf := make([]byte, 4096)
	var echoBuf []byte
	for {
		n, _, err := p.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		pkt, err := wire.Unmarshal(buf[:n])
		if err != nil || !pkt.AtDestination() {
			continue
		}
		if pkt.Flags&wire.FlagReply == 0 {
			// Embedded responder: echo requests from other pingers.
			if pkt.Dst() != p.Node || fabric.IngressDrop(p.topo, p.rules, pkt) {
				continue
			}
			echo := pkt.Reversed(time.Now().UnixNano())
			echoBuf, _ = fabric.SendFirstHop(p.conn, p.reg, echo, echoBuf)
			continue
		}
		if fabric.IngressDrop(p.topo, p.rules, pkt) {
			continue // last-hop link ate the echo; timeout will count it
		}
		rtt := time.Now().UnixNano() - pkt.SendNS
		p.mu.Lock()
		if o, ok := p.pending[pkt.ProbeID]; ok {
			delete(p.pending, pkt.ProbeID)
			st := p.paths[o.pathIdx]
			if st.acked > 0 {
				d := float64(rtt - st.prevRTT)
				if d < 0 {
					d = -d
				}
				st.jitter += (d - st.jitter) / 16
			}
			st.prevRTT = rtt
			st.acked++
			st.rttNS += rtt
			if pkt.Flags&wire.FlagECN != 0 {
				st.ecn++
			}
		}
		p.mu.Unlock()
	}
}

// sweepAndReportLoop expires timed-out probes (counting losses and firing
// confirmation bursts) and POSTs window reports. Report phases are
// staggered per node — the paper randomizes when pingers talk to the
// control plane for the same reason (§6.1: "slightly randomizing the time
// when pingers request for pinglists"): synchronized reporting bursts
// starve the dataplane.
func (p *Pinger) sweepAndReportLoop() {
	defer p.done.Done()
	sweep := time.NewTicker(p.Opts.SweepEvery)
	defer sweep.Stop()
	window := time.Duration(p.pinglist.WindowMS) * time.Millisecond
	offset := window * time.Duration(uint32(p.Node)%16) / 16
	report := time.NewTimer(window + offset)
	defer report.Stop()
	var buf []byte
	for {
		select {
		case <-p.stop:
			return
		case <-sweep.C:
			buf = p.expire(buf)
		case <-report.C:
			p.report()
			p.sendHeartbeat()
			p.refreshPinglist()
			report.Reset(window)
		}
	}
}

// expire times out pending probes; non-confirm losses trigger the paper's
// two-probe confirmation burst, capped per path per window so that a hard
// failure (every probe lost) cannot amplify itself into a probe storm.
func (p *Pinger) expire(buf []byte) []byte {
	now := time.Now()
	type confirmReq struct{ pathIdx int }
	var confirms []confirmReq
	p.mu.Lock()
	for id, o := range p.pending {
		if now.Sub(o.sentAt) < p.Opts.Timeout {
			continue
		}
		delete(p.pending, id)
		st := p.paths[o.pathIdx]
		st.lost++
		if !o.confirm {
			// Clamp the burst to the remaining per-window budget: two
			// losses expiring in one sweep used to fire up to
			// 2*ConfirmProbes-1 confirms past the cap.
			for i := 0; i < p.Opts.ConfirmProbes && st.confirms < p.Opts.ConfirmProbes; i++ {
				st.confirms++
				confirms = append(confirms, confirmReq{o.pathIdx})
			}
		}
	}
	p.mu.Unlock()
	for _, c := range confirms {
		buf = p.sendNext(buf, true, c.pathIdx)
	}
	return buf
}

// probeInterval converts the pinglist rate into a ticker period. A missing
// or nonsense rate (zero, negative) falls back to one probe per
// millisecond instead of the integer divide-by-zero panic it used to be.
func probeInterval(ratePPS int) time.Duration {
	if ratePPS <= 0 {
		return time.Millisecond
	}
	iv := time.Second / time.Duration(ratePPS)
	if iv <= 0 {
		iv = time.Millisecond
	}
	return iv
}

func (p *Pinger) sendHeartbeat() {
	if p.Opts.HeartbeatURL == "" {
		return
	}
	resp, err := p.client.Post(fmt.Sprintf("%s/heartbeat?node=%d", p.Opts.HeartbeatURL, p.Node), "text/plain", nil)
	if err == nil {
		resp.Body.Close()
	}
}

// DebugTotals sums cumulative per-path counters for diagnostics and tests.
func (p *Pinger) DebugTotals() (sent, lost int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, st := range p.paths {
		sent += st.acked + st.lost
		lost += st.lost
	}
	return sent, lost
}
