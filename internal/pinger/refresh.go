package pinger

// Pinglist refresh: the pinger's half of the delta pipeline. Every window
// boundary the agent asks the controller what changed since the version it
// holds (GET /pinglist?node=N&since=V with If-None-Match): in the steady
// state that is one 304 and nothing else; after topology churn it is a
// small delta applied atomically between windows — probing for removed
// paths stops, new paths start, untouched paths keep their per-path state
// and their in-flight probes.

import (
	"reflect"

	"github.com/detector-net/detector/internal/control"
	"github.com/detector-net/detector/internal/metrics"
)

// pinglistRefreshes counts applied pinglist changes (full or delta);
// pinglistUnchanged counts refresh rounds answered 304.
var (
	pinglistRefreshes = metrics.NewCounter("pinger_pinglist_refreshes")
	pinglistUnchanged = metrics.NewCounter("pinger_pinglist_unchanged")
)

// refreshPinglist polls the controller for a work-order change and applies
// it. Runs on the sweep/report goroutine, so the swap lands exactly at a
// window boundary: the closed window's counters were already snapshotted
// by report().
func (p *Pinger) refreshPinglist() {
	if p.controllerURL == "" {
		return
	}
	p.mu.Lock()
	version := p.pinglist.Version
	p.mu.Unlock()
	d, notModified, err := control.FetchPinglistDelta(p.client, p.controllerURL, p.Node, version)
	if err != nil {
		return // transient; ask again next window
	}
	if notModified {
		pinglistUnchanged.Inc()
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if d == nil {
		// No longer a pinger this cycle: stop probing, keep the loops
		// alive for a later re-listing.
		if len(p.paths) > 0 {
			pinglistRefreshes.Inc()
			p.paths = nil
			clear(p.pending)
		}
		return
	}
	if d.Version <= p.pinglist.Version {
		return // stale response raced a newer refresh
	}
	pinglistRefreshes.Inc()

	// Capture the wire path ID each in-flight probe refers to before the
	// path slice changes shape.
	oldID := make([]uint32, len(p.paths))
	for i, st := range p.paths {
		oldID[i] = st.entry.PathID
	}
	newPL := control.ApplyDelta(p.pinglist, d)

	// Rebuild path state: an entry identical to one already probed keeps
	// its state object (counters, flow-label cursor, RTT baseline stay
	// warm — this is also every entry of a full snapshot that matches);
	// a new or changed entry starts cold.
	byID := make(map[uint32]*pathState, len(p.paths))
	for _, st := range p.paths {
		byID[st.entry.PathID] = st
	}
	paths := make([]*pathState, 0, len(newPL.Entries))
	kept := make(map[uint32]int, len(newPL.Entries))
	for _, e := range newPL.Entries {
		if st, ok := byID[e.PathID]; ok && reflect.DeepEqual(st.entry, e) {
			kept[e.PathID] = len(paths)
			paths = append(paths, st)
			continue
		}
		paths = append(paths, &pathState{entry: e})
	}
	// Remap in-flight probes: a probe on a surviving path follows it to
	// its new index; a probe on a removed or redefined path is forgotten
	// (its route no longer exists — a timeout would report a phantom
	// loss against the new matrix).
	for id, o := range p.pending {
		if ni, ok := kept[oldID[o.pathIdx]]; ok {
			o.pathIdx = ni
			p.pending[id] = o
		} else {
			delete(p.pending, id)
		}
	}
	p.paths = paths
	p.pinglist = newPL
}

// PinglistVersion returns the version of the work order currently probed.
func (p *Pinger) PinglistVersion() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pinglist.Version
}
