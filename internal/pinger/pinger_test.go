package pinger

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/detector-net/detector/internal/control"
	"github.com/detector-net/detector/internal/fabric"
	"github.com/detector-net/detector/internal/responder"
	"github.com/detector-net/detector/internal/sim"
	"github.com/detector-net/detector/internal/topo"
)

// stubControlPlane serves a fixed pinglist and collects reports.
type stubControlPlane struct {
	mu       sync.Mutex
	reports  []Report
	pinglist control.Pinglist
	srv      *httptest.Server
}

func newStub(t *testing.T, pl control.Pinglist) *stubControlPlane {
	s := &stubControlPlane{pinglist: pl}
	mux := http.NewServeMux()
	mux.HandleFunc("/pinglist", func(w http.ResponseWriter, r *http.Request) {
		pl := s.pinglist
		pl.ReportURL = s.srv.URL
		json.NewEncoder(w).Encode(pl)
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		var rep Report
		if err := json.NewDecoder(r.Body).Decode(&rep); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		s.reports = append(s.reports, rep)
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})
	s.srv = httptest.NewServer(mux)
	t.Cleanup(s.srv.Close)
	return s
}

func (s *stubControlPlane) reportCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.reports)
}

func (s *stubControlPlane) totals() (sent, lost int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rep := range s.reports {
		for _, r := range rep.Results {
			sent += r.Sent
			lost += r.Lost
		}
	}
	return sent, lost
}

// testRig boots a Fattree(4) fabric, a responder at dst, and a pinger at
// src probing one path.
func testRig(t *testing.T, ruleMut func(*fabric.RuleTable, []topo.LinkID)) (*stubControlPlane, *Pinger, []topo.LinkID) {
	t.Helper()
	f := topo.MustFattree(4)
	rules := fabric.NewRuleTable(3)
	fab, err := fabric.Start(f.Topology, rules)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fab.Stop)
	fab.Logf = t.Logf

	src := f.ServerID[0][0][0]
	dst := f.ServerID[2][1][0]
	r, err := responder.Start(f.Topology, rules, fab.Registry, dst)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)

	// Route via core 1.
	hops := []topo.NodeID{src}
	hops = f.PathHops(f.EdgeID[0][0], f.EdgeID[2][1], 1, hops)
	hops = append(hops, dst)
	var links []topo.LinkID
	links = append(links, f.MustLink(src, f.EdgeID[0][0]))
	links = f.PathLinks(f.EdgeID[0][0], f.EdgeID[2][1], 1, links)
	links = append(links, f.MustLink(f.EdgeID[2][1], dst))
	if ruleMut != nil {
		ruleMut(rules, links)
	}

	stub := newStub(t, control.Pinglist{
		Version: 1, Node: src, RatePPS: 100, WindowMS: 300,
		Entries: []control.Entry{{
			PathID: 7, Route: hops,
			FlowLabels: []uint32{40000, 40001, 40002, 40003},
		}},
	})
	p, err := Start(f.Topology, rules, fab.Registry, src, stub.srv.URL, Options{
		Timeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p == nil {
		t.Fatal("pinger not started")
	}
	t.Cleanup(p.Stop)
	return stub, p, links
}

func TestPingerCleanPathReportsNoLoss(t *testing.T) {
	stub, _, _ := testRig(t, nil)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if stub.reportCount() >= 2 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	sent, lost := stub.totals()
	if sent == 0 {
		t.Fatal("no probes reported")
	}
	if lost > sent/20 {
		t.Fatalf("clean path lost %d of %d", lost, sent)
	}
}

func TestPingerCountsFullLoss(t *testing.T) {
	stub, _, _ := testRig(t, func(rules *fabric.RuleTable, links []topo.LinkID) {
		rules.Install(links[2], sim.FullLoss{})
	})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, lost := stub.totals(); lost > 20 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	sent, lost := stub.totals()
	if sent == 0 || lost < sent*9/10 {
		t.Fatalf("full loss underreported: %d of %d", lost, sent)
	}
}

func TestPingerEchoLinkLossCounts(t *testing.T) {
	// Fail only the pinger's own server link via a reply-direction-only
	// check is not expressible with undirected rules; instead fail the
	// responder's server link: requests die at the last hop, so the
	// responder's IngressDrop eats them and the pinger times out.
	stub, _, _ := testRig(t, func(rules *fabric.RuleTable, links []topo.LinkID) {
		rules.Install(links[len(links)-1], sim.FullLoss{})
	})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, lost := stub.totals(); lost > 20 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	sent, lost := stub.totals()
	if sent == 0 || lost < sent*9/10 {
		t.Fatalf("responder-link loss underreported: %d of %d", lost, sent)
	}
}

func TestPingerNotAPinger(t *testing.T) {
	f := topo.MustFattree(4)
	rules := fabric.NewRuleTable(1)
	fab, err := fabric.Start(f.Topology, rules)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Stop()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "not a pinger", http.StatusNotFound)
	}))
	defer srv.Close()
	p, err := Start(f.Topology, rules, fab.Registry, f.ServerID[0][0][0], srv.URL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p != nil {
		p.Stop()
		t.Fatal("pinger started without a pinglist")
	}
}

func TestResponderCounters(t *testing.T) {
	f := topo.MustFattree(4)
	rules := fabric.NewRuleTable(1)
	fab, err := fabric.Start(f.Topology, rules)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Stop()
	dst := f.ServerID[1][1][1]
	r, err := responder.Start(f.Topology, rules, fab.Registry, dst)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if r.Echoed() != 0 || r.Dropped() != 0 {
		t.Fatal("fresh responder has traffic")
	}
}
