package pinger

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/detector-net/detector/internal/control"
	"github.com/detector-net/detector/internal/fabric"
	"github.com/detector-net/detector/internal/topo"
)

// TestProbeInterval pins the sendLoop pacing guard: a pinglist with a
// missing or nonsense rate must not divide by zero.
func TestProbeInterval(t *testing.T) {
	cases := []struct {
		rate int
		want time.Duration
	}{
		{0, time.Millisecond},             // the old panic: time.Second / 0
		{-7, time.Millisecond},            // negative rate is equally nonsense
		{100, 10 * time.Millisecond},      // normal pacing
		{2_000_000_000, time.Millisecond}, // rate past 1e9 truncates to 0ns
	}
	for _, c := range cases {
		if got := probeInterval(c.rate); got != c.want {
			t.Errorf("probeInterval(%d) = %v, want %v", c.rate, got, c.want)
		}
	}
}

// expireRig builds a minimal pinger whose probes never leave the box: the
// registry is empty, so confirm probes count as immediate losses without a
// fabric, and expire()'s bookkeeping can be driven synchronously.
func expireRig(t *testing.T, confirmProbes int) *Pinger {
	t.Helper()
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &Pinger{
		Node: 1,
		Opts: Options{Timeout: time.Millisecond, ConfirmProbes: confirmProbes},
		reg:  fabric.NewRegistry(),
		conn: conn,
		paths: []*pathState{{entry: control.Entry{
			PathID: 7, Route: []topo.NodeID{1, 2}, FlowLabels: []uint32{40000},
		}}},
		pending: make(map[uint64]outstanding),
		pend:    make(map[uint32]*pendAgg),
	}
}

// TestConfirmBurstCap pins the overshoot fix: two losses expiring in one
// sweep with one confirm already spent used to fire 2*ConfirmProbes-1
// confirms; the budget is ConfirmProbes per path per window, full stop.
func TestConfirmBurstCap(t *testing.T) {
	const confirmProbes = 2
	p := expireRig(t, confirmProbes)
	st := p.paths[0]
	st.confirms = confirmProbes - 1 // one already fired this window
	old := time.Now().Add(-time.Minute)
	p.pending[1] = outstanding{pathIdx: 0, sentAt: old}
	p.pending[2] = outstanding{pathIdx: 0, sentAt: old}

	p.expire(nil)

	if st.confirms != confirmProbes {
		t.Fatalf("confirms = %d, want exactly the budget %d", st.confirms, confirmProbes)
	}
	// The fired confirm went to an empty registry: immediate loss, and the
	// pending table must not leak it.
	if len(p.pending) != 0 {
		t.Fatalf("pending leaked: %d entries", len(p.pending))
	}
}

// TestConfirmBudgetSpentFiresNothing: losses expiring after the budget is
// gone fire no confirms at all.
func TestConfirmBudgetSpentFiresNothing(t *testing.T) {
	const confirmProbes = 2
	p := expireRig(t, confirmProbes)
	st := p.paths[0]
	st.confirms = confirmProbes
	p.pending[1] = outstanding{pathIdx: 0, sentAt: time.Now().Add(-time.Minute)}
	sentBefore := st.sent

	p.expire(nil)

	if st.confirms != confirmProbes {
		t.Fatalf("confirms = %d, want %d", st.confirms, confirmProbes)
	}
	if st.sent != sentBefore {
		t.Fatalf("confirm probes were sent past the budget")
	}
}

// flakyDiagnoser fails the first N report POSTs with a 503, then accepts.
type flakyDiagnoser struct {
	mu      sync.Mutex
	fail    int
	reports []Report
	srv     *httptest.Server
}

func newFlaky(t *testing.T, failFirst int) *flakyDiagnoser {
	fd := &flakyDiagnoser{fail: failFirst}
	mux := http.NewServeMux()
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		fd.mu.Lock()
		defer fd.mu.Unlock()
		if fd.fail > 0 {
			fd.fail--
			http.Error(w, "window closed on my foot", http.StatusServiceUnavailable)
			return
		}
		var rep Report
		if err := json.NewDecoder(r.Body).Decode(&rep); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fd.reports = append(fd.reports, rep)
		w.WriteHeader(http.StatusNoContent)
	})
	fd.srv = httptest.NewServer(mux)
	t.Cleanup(fd.srv.Close)
	return fd
}

// TestReportRetainsOnFailure pins the silent-data-loss fix: counters from a
// window whose POST failed re-merge with the next window and arrive late
// rather than never, and pinger_report_failures records the failure.
func TestReportRetainsOnFailure(t *testing.T) {
	fd := newFlaky(t, 1)
	p := expireRig(t, 2)
	p.client = fd.srv.Client()
	p.pinglist = &control.Pinglist{Version: 3, ReportURL: fd.srv.URL, Entries: p.paths[0].entryList()}

	failuresBefore := reportFailures.Value()

	// Window 1: 10 sent, 4 lost — POST dies with a 503.
	p.paths[0].acked, p.paths[0].lost = 6, 4
	p.report()
	if got := len(fd.reports); got != 0 {
		t.Fatalf("failed POST delivered %d reports", got)
	}
	if reportFailures.Value() != failuresBefore+1 {
		t.Fatalf("report failure not counted: %d", reportFailures.Value()-failuresBefore)
	}

	// Window 2: 5 sent, 1 lost — ships the merged 15/5.
	p.paths[0].acked, p.paths[0].lost = 4, 1
	p.report()

	fd.mu.Lock()
	defer fd.mu.Unlock()
	if len(fd.reports) != 1 {
		t.Fatalf("got %d reports, want 1 merged", len(fd.reports))
	}
	res := fd.reports[0].Results
	if len(res) != 1 || res[0].PathID != 7 {
		t.Fatalf("results: %+v", res)
	}
	if res[0].Sent != 15 || res[0].Lost != 5 {
		t.Fatalf("merged counters sent=%d lost=%d, want 15/5", res[0].Sent, res[0].Lost)
	}
	// And the pending aggregate is gone: a third quiet window ships nothing.
	p.report()
	if len(fd.reports) != 1 {
		t.Fatalf("empty window shipped: %d reports", len(fd.reports))
	}
}

// TestRejectedReportNotRetried: a 400 means the server calls the body
// malformed — retrying it forever would wedge the report plane, so the
// aggregate drops (counted as a failure).
func TestRejectedReportNotRetried(t *testing.T) {
	var posts int
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		posts++
		mu.Unlock()
		http.Error(w, "no", http.StatusBadRequest)
	}))
	t.Cleanup(srv.Close)

	p := expireRig(t, 2)
	p.client = srv.Client()
	p.pinglist = &control.Pinglist{Version: 1, ReportURL: srv.URL}
	failuresBefore := reportFailures.Value()

	p.paths[0].acked = 10
	p.report()
	p.report() // nothing pending: must not re-POST the rejected body

	mu.Lock()
	defer mu.Unlock()
	if posts != 1 {
		t.Fatalf("rejected body POSTed %d times, want 1", posts)
	}
	if reportFailures.Value() != failuresBefore+1 {
		t.Fatalf("rejection not counted")
	}
}

// TestBatchWindows: with BatchWindows=3, two windows accumulate locally and
// the third ships one merged report.
func TestBatchWindows(t *testing.T) {
	fd := newFlaky(t, 0)
	p := expireRig(t, 2)
	p.client = fd.srv.Client()
	p.Opts.BatchWindows = 3
	p.pinglist = &control.Pinglist{Version: 1, ReportURL: fd.srv.URL}

	for w := 0; w < 3; w++ {
		p.paths[0].acked, p.paths[0].lost = 9, 1
		p.report()
		fd.mu.Lock()
		got := len(fd.reports)
		fd.mu.Unlock()
		want := 0
		if w == 2 {
			want = 1
		}
		if got != want {
			t.Fatalf("window %d: %d reports, want %d", w, got, want)
		}
	}
	fd.mu.Lock()
	defer fd.mu.Unlock()
	res := fd.reports[0].Results
	if len(res) != 1 || res[0].Sent != 30 || res[0].Lost != 3 {
		t.Fatalf("batched report: %+v", res)
	}
}

// entryList adapts one pathState's entry for pinglist stubs.
func (st *pathState) entryList() []control.Entry { return []control.Entry{st.entry} }
