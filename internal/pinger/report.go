package pinger

// Report shipping, rebuilt as a streaming path. The original pinger POSTed
// one JSON body per window and threw the snapshot away whatever the
// diagnoser answered — a crashed POST was silent data loss. This file adds
// the three report-plane upgrades of the streaming ingest design plus the
// loss fix:
//
//   - Batched pre-aggregation: BatchWindows report windows merge locally
//     (counters summed, signal means delivered-weighted) before one payload
//     ships, cutting report-plane requests by the batch factor.
//   - Capability negotiation: the first ship fetches GET /reportcaps once.
//     A diagnoser that speaks the v2 report plane advertises stream and
//     summary ingest; a 404 means a legacy server and the pinger stays on
//     JSON POSTs — the same downgrade ladder as the shard codec.
//   - Wire variants: per-window kind-5 binary frames, kind-6 summary frames
//     (TopK worst paths with full signals, everything else as bare residue
//     counters), and a persistent POST /reportstream connection carrying
//     back-to-back frames.
//   - No silent loss: a failed POST keeps the pending aggregate, which
//     re-merges with the next window and ships again; every failure bumps
//     pinger_report_failures. The stream path is at-most-once per frame
//     (a written frame cannot be un-sent, so a dead stream counts failures
//     instead of double-reporting) and reconnects on the next ship.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"time"

	"github.com/detector-net/detector/internal/metrics"
	"github.com/detector-net/detector/internal/shardrpc"
)

// reportFailures counts report payloads that failed to reach the diagnoser
// (network error, 5xx, rejected body, or a dead stream connection).
var reportFailures = metrics.NewCounter("pinger_report_failures")

// pendAgg is one path's pending (possibly multi-window) aggregate: counters
// summed, signal sums delivered-weighted exactly as the diagnoser merges
// them, so batching at the edge and merging at the diagnoser commute.
type pendAgg struct {
	sent, lost     int
	acked, rttW    float64
	rttSum, jitSum float64
	ecnSum         float64
}

// report snapshots and resets the window counters, merges them into the
// pending aggregate, and ships when the batch is due.
func (p *Pinger) report() {
	p.mu.Lock()
	version := p.pinglist.Version
	var results []PathReport
	for _, st := range p.paths {
		// Probes still pending are carried into the next window.
		counted := st.acked + st.lost
		if counted == 0 {
			continue
		}
		pr := PathReport{PathID: st.entry.PathID, Sent: counted, Lost: st.lost}
		// All signal means divide by acked; with nothing delivered they
		// stay zero rather than NaN/Inf.
		if st.acked > 0 {
			pr.MeanRTTNS = st.rttNS / int64(st.acked)
			pr.JitterNS = int64(st.jitter)
			pr.ECNFrac = float64(st.ecn) / float64(st.acked)
		}
		results = append(results, pr)
		st.sent -= counted
		st.acked, st.lost, st.rttNS, st.confirms = 0, 0, 0, 0
		st.ecn, st.jitter, st.prevRTT = 0, 0, 0
	}
	p.mu.Unlock()
	if p.pinglist.ReportURL == "" {
		return
	}

	p.repMu.Lock()
	defer p.repMu.Unlock()
	for _, r := range results {
		a := p.pend[r.PathID]
		if a == nil {
			a = &pendAgg{}
			p.pend[r.PathID] = a
		}
		a.sent += r.Sent
		a.lost += r.Lost
		if del := float64(r.Sent - r.Lost); del > 0 {
			a.acked += del
			a.ecnSum += r.ECNFrac * del
			if r.MeanRTTNS > 0 {
				a.rttW += del
				a.rttSum += float64(r.MeanRTTNS) * del
				a.jitSum += float64(r.JitterNS) * del
			}
		}
	}
	p.pendWindows++
	batch := p.Opts.BatchWindows
	if batch < 1 {
		batch = 1
	}
	if p.pendWindows < batch || len(p.pend) == 0 {
		if len(p.pend) == 0 {
			p.pendWindows = 0
		}
		return
	}

	ok, retry := p.ship(version)
	if ok {
		p.clearPend()
		return
	}
	reportFailures.Inc()
	if !retry {
		p.clearPend()
	}
	// On a retryable failure the aggregate stays pending: the next window
	// merges on top and the batch ships again — delayed, never dropped.
}

func (p *Pinger) clearPend() {
	clear(p.pend)
	p.pendWindows = 0
}

// pendResults flattens the pending aggregate into wire results, ascending
// by path ID (the cheapest order for every encoding, and structural for
// the summary frame).
func (p *Pinger) pendResults() []shardrpc.ReportResult {
	out := make([]shardrpc.ReportResult, 0, len(p.pend))
	for id, a := range p.pend {
		r := shardrpc.ReportResult{PathID: id, Sent: a.sent, Lost: a.lost}
		if a.rttW > 0 {
			r.MeanRTTNS = int64(a.rttSum / a.rttW)
			r.JitterNS = int64(a.jitSum / a.rttW)
		}
		if a.acked > 0 {
			r.ECNFrac = a.ecnSum / a.acked
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PathID < out[j].PathID })
	return out
}

// ship delivers the pending aggregate over the richest path the diagnoser
// speaks. It reports whether delivery succeeded and, on failure, whether
// the aggregate should be retained for a retry (false for rejected bodies,
// which would fail forever, and for frames already written to a stream).
func (p *Pinger) ship(version int) (ok, retry bool) {
	results := p.pendResults()
	endNS := time.Now().UnixNano()

	binaryOK, summaryOK, streamOK := p.negotiate()
	if !binaryOK {
		rep := Report{Node: p.Node, Version: version, EndNS: endNS,
			Results: make([]PathReport, len(results))}
		for i, r := range results {
			rep.Results[i] = PathReport{PathID: r.PathID, Sent: r.Sent, Lost: r.Lost,
				MeanRTTNS: r.MeanRTTNS, JitterNS: r.JitterNS, ECNFrac: r.ECNFrac}
		}
		body, err := json.Marshal(rep)
		if err != nil {
			return false, false
		}
		return p.post("application/json", body)
	}

	var frame []byte
	if summaryOK && p.Opts.TopK > 0 {
		sum := p.buildSummary(version, endNS, results)
		frame = sum.EncodeBinary()
	} else {
		wr := shardrpc.Report{Node: p.Node, Version: version, EndNS: endNS, Results: results}
		frame = wr.EncodeBinary()
	}
	if streamOK && p.Opts.StreamReports {
		if err := p.streamWrite(frame); err != nil {
			// At-most-once: the frame may have partially reached the wire,
			// so it must not re-merge. The stream reconnects next ship.
			return false, false
		}
		return true, true
	}
	return p.post(shardrpc.ContentTypeBinary, frame)
}

// buildSummary splits the pending results into the TopK worst paths (kept
// with full signal detail) and the residue (bare counters). Worst ranks by
// absolute losses, then loss rate, then path ID — deterministic for tests
// and stable across windows.
func (p *Pinger) buildSummary(version int, endNS int64, results []shardrpc.ReportResult) *shardrpc.SummaryReport {
	k := p.Opts.TopK
	sum := &shardrpc.SummaryReport{
		Node: p.Node, Version: version, EndNS: endNS,
		Windows: p.pendWindows, TopK: k,
	}
	if len(results) <= k {
		sum.Worst = results
		return sum
	}
	order := make([]int, len(results))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := results[order[a]], results[order[b]]
		if ra.Lost != rb.Lost {
			return ra.Lost > rb.Lost
		}
		la := float64(ra.Lost) * float64(rb.Sent)
		lb := float64(rb.Lost) * float64(ra.Sent)
		if la != lb {
			return la > lb
		}
		return ra.PathID < rb.PathID
	})
	worst := make(map[int]bool, k)
	for _, idx := range order[:k] {
		worst[idx] = true
	}
	for i, r := range results { // results are ascending; both sections stay so
		if worst[i] {
			sum.Worst = append(sum.Worst, r)
		} else {
			sum.Residue = append(sum.Residue, shardrpc.ResidueCounter{
				PathID: r.PathID, Sent: r.Sent, Lost: r.Lost})
		}
	}
	return sum
}

// negotiate resolves the report-plane capabilities, fetching /reportcaps
// once and caching the outcome. JSON-configured pingers never negotiate.
func (p *Pinger) negotiate() (binaryOK, summaryOK, streamOK bool) {
	if p.Opts.ReportWire != shardrpc.CodecBinary {
		return false, false, false
	}
	if !p.capsOK {
		resp, err := p.client.Get(p.pinglist.ReportURL + "/reportcaps")
		if err != nil {
			// Unreachable — stay on JSON this round, ask again next ship.
			return false, false, false
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			var caps shardrpc.ReportCaps
			if json.NewDecoder(resp.Body).Decode(&caps) == nil {
				p.caps = &caps
			}
			p.capsOK = true
		default:
			// Legacy diagnoser (404 and kin): binary kind-5 frames predate
			// the caps endpoint, so they remain safe; stream and summary
			// require the advertisement.
			p.caps = &shardrpc.ReportCaps{Codecs: []string{shardrpc.CodecJSON, shardrpc.CodecBinary}}
			p.capsOK = true
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if p.caps == nil {
		return false, false, false
	}
	for _, c := range p.caps.Codecs {
		if c == shardrpc.CodecBinary {
			binaryOK = true
		}
	}
	return binaryOK, binaryOK && p.caps.Summary, binaryOK && p.caps.Stream
}

// post delivers one report body. 2xx succeeds; a network error or server
// error is retryable (the aggregate re-merges); a 4xx rejection is not —
// resending a body the server calls malformed would loop forever.
func (p *Pinger) post(contentType string, body []byte) (ok, retry bool) {
	resp, err := p.client.Post(p.pinglist.ReportURL+"/report", contentType, bytes.NewReader(body))
	if err != nil {
		return false, true
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode < 300:
		return true, true
	case resp.StatusCode >= 500:
		return false, true
	default:
		return false, false
	}
}

// streamWrite ships one frame over the persistent report stream, opening
// the connection on first use. The request body is an io.Pipe: each window
// writes its frame and the transport streams it chunked; the server only
// responds when the pinger closes the stream (or rejects a frame, which
// surfaces here as a pipe write error on the next frame).
func (p *Pinger) streamWrite(frame []byte) error {
	if p.streamW == nil {
		pr, pw := io.Pipe()
		// The stream outlives any per-request timeout: run it on a clone of
		// the client without the overall deadline.
		cl := &http.Client{Transport: p.client.Transport}
		go func() {
			resp, err := cl.Post(p.pinglist.ReportURL+"/reportstream", shardrpc.ContentTypeBinary, pr)
			if err != nil {
				pr.CloseWithError(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			pr.Close()
		}()
		p.streamW = pw
	}
	if _, err := p.streamW.Write(frame); err != nil {
		p.streamW.CloseWithError(err)
		p.streamW = nil
		return err
	}
	return nil
}

// closeStream ends the persistent report connection cleanly (Stop path).
func (p *Pinger) closeStream() {
	p.repMu.Lock()
	if p.streamW != nil {
		p.streamW.Close()
		p.streamW = nil
	}
	p.repMu.Unlock()
}
