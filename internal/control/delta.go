package control

// Pinglist delta serving: the churn pipeline's last hop. Construction
// reuses clean components, so after a topology change most pinglists are
// unchanged and the changed ones differ in a handful of entries. The
// controller keeps a short per-node history of published pinglists and
// serves GET /pinglist?node=N&since=V as the difference between version V
// and the current work order — path IDs to stop probing plus full entries
// to start — in JSON or as the shardrpc kind-7 binary frame. A base
// version that has aged out of the history ring degrades to a full
// snapshot (FromVersion 0), never an error.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"github.com/detector-net/detector/internal/shardrpc"
	"github.com/detector-net/detector/internal/topo"
)

// DeltaFor computes the difference between the pinglist the node held at
// version since and its current pinglist. It returns nil when the node is
// not a pinger this cycle. since values of 0, the current version, or one
// not present in the history ring yield a full snapshot (FromVersion 0) —
// callers wanting "no change" short-circuiting should compare versions (or
// use the ETag) first.
func (c *Controller) DeltaFor(n topo.NodeID, since int) *shardrpc.PinglistDelta {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cur := c.pinglists[n]
	if cur == nil {
		return nil
	}
	d := &shardrpc.PinglistDelta{
		Node:      n,
		Version:   cur.Version,
		RatePPS:   cur.RatePPS,
		WindowMS:  cur.WindowMS,
		ReportURL: cur.ReportURL,
	}
	var base *Pinglist
	if since > 0 && since < cur.Version {
		for _, h := range c.history[n] {
			if h.Version == since {
				base = h
				break
			}
		}
	}
	if base == nil {
		// Full snapshot: no usable base.
		for i := range cur.Entries {
			d.Added = append(d.Added, toPingEntry(&cur.Entries[i]))
		}
		return d
	}
	d.FromVersion = since
	// Both entry lists are ascending by path ID; one merge walk classifies
	// every entry. A path present in both with a changed definition rides
	// as an upsert in Added.
	i, j := 0, 0
	for i < len(base.Entries) && j < len(cur.Entries) {
		a, b := &base.Entries[i], &cur.Entries[j]
		switch {
		case a.PathID < b.PathID:
			d.Removed = append(d.Removed, a.PathID)
			i++
		case a.PathID > b.PathID:
			d.Added = append(d.Added, toPingEntry(b))
			j++
		default:
			if !entryEqual(a, b) {
				d.Added = append(d.Added, toPingEntry(b))
			}
			i, j = i+1, j+1
		}
	}
	for ; i < len(base.Entries); i++ {
		d.Removed = append(d.Removed, base.Entries[i].PathID)
	}
	for ; j < len(cur.Entries); j++ {
		d.Added = append(d.Added, toPingEntry(&cur.Entries[j]))
	}
	return d
}

func toPingEntry(e *Entry) shardrpc.PingEntry {
	return shardrpc.PingEntry{
		PathID: e.PathID, Route: e.Route, FlowLabels: e.FlowLabels, DSCP: e.DSCP,
	}
}

// ApplyDelta folds a delta into a pinglist (Removed first, then Added as
// upserts) and returns the updated list, entries ascending by path ID.
// A full-snapshot delta replaces the entry set outright. The pinger uses
// this at window boundaries; tests use it to prove delta serving is
// bit-identical to a full fetch.
func ApplyDelta(pl *Pinglist, d *shardrpc.PinglistDelta) *Pinglist {
	out := &Pinglist{
		Version: d.Version, Node: d.Node,
		RatePPS: d.RatePPS, WindowMS: d.WindowMS, ReportURL: d.ReportURL,
	}
	if d.Full() || pl == nil {
		for i := range d.Added {
			out.Entries = append(out.Entries, fromPingEntry(&d.Added[i]))
		}
		return out
	}
	removed := make(map[uint32]bool, len(d.Removed))
	for _, id := range d.Removed {
		removed[id] = true
	}
	added := make(map[uint32]int, len(d.Added))
	for i := range d.Added {
		added[d.Added[i].PathID] = i
	}
	// Old entries survive unless removed or upserted; both lists are
	// ascending, so appending surviving entries and merging in the new ones
	// keeps the result sorted with one walk.
	i, j := 0, 0
	for i < len(pl.Entries) || j < len(d.Added) {
		if j >= len(d.Added) {
			e := &pl.Entries[i]
			if !removed[e.PathID] {
				if _, up := added[e.PathID]; !up {
					out.Entries = append(out.Entries, *e)
				}
			}
			i++
			continue
		}
		if i >= len(pl.Entries) || d.Added[j].PathID <= pl.Entries[i].PathID {
			out.Entries = append(out.Entries, fromPingEntry(&d.Added[j]))
			if i < len(pl.Entries) && pl.Entries[i].PathID == d.Added[j].PathID {
				i++ // upsert consumed the old entry
			}
			j++
			continue
		}
		e := &pl.Entries[i]
		if !removed[e.PathID] {
			out.Entries = append(out.Entries, *e)
		}
		i++
	}
	return out
}

func fromPingEntry(e *shardrpc.PingEntry) Entry {
	return Entry{PathID: e.PathID, Route: e.Route, FlowLabels: e.FlowLabels, DSCP: e.DSCP}
}

// FetchPinglistDelta retrieves a pinger's work-order change from the
// controller: GET /pinglist?node=N&since=V with If-None-Match on the held
// version's ETag, asking for the kind-7 binary frame and falling back on
// whatever content type the server answers. Returns (nil, true, nil) when
// the list is unchanged (304), and (nil, false, nil) when the node is not
// a pinger this cycle.
func FetchPinglistDelta(client *http.Client, baseURL string, n topo.NodeID, since int) (d *shardrpc.PinglistDelta, notModified bool, err error) {
	url := fmt.Sprintf("%s/pinglist?node=%d&since=%d", baseURL, n, since)
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Accept", shardrpc.ContentTypeBinary)
	if since > 0 {
		req.Header.Set("If-None-Match", pinglistETag(since))
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotModified:
		return nil, true, nil
	case resp.StatusCode == http.StatusNotFound:
		return nil, false, nil
	case resp.StatusCode/100 != 2:
		return nil, false, fmt.Errorf("control: pinglist delta status %s", resp.Status)
	}
	if resp.Header.Get("Content-Type") == shardrpc.ContentTypeBinary {
		frame, err := readBodyLimited(resp.Body, maxDeltaBody)
		if err != nil {
			return nil, false, err
		}
		d, err := shardrpc.DecodePinglistDeltaBinary(frame, maxDeltaBody)
		if err != nil {
			return nil, false, err
		}
		return d, false, nil
	}
	var jd shardrpc.PinglistDelta
	if err := json.NewDecoder(resp.Body).Decode(&jd); err != nil {
		return nil, false, err
	}
	return &jd, false, nil
}

// maxDeltaBody caps a pinglist delta response (64 MiB — a full Fattree
// snapshot fits with room to spare).
const maxDeltaBody = 64 << 20

func readBodyLimited(r io.Reader, limit int64) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > limit {
		return nil, fmt.Errorf("control: delta body exceeds %d bytes", limit)
	}
	return data, nil
}

// pinglistETag is the version-derived entity tag served (and matched) on
// GET /pinglist.
func pinglistETag(version int) string { return fmt.Sprintf("%q", fmt.Sprintf("v%d", version)) }
