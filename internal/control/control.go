// Package control implements the deTector controller (paper §3.1, §6.1):
// it recomputes the probe matrix with PMC every cycle, selects pingers in
// each rack, expands ToR-level probe paths into server-level routes, and
// serves pinglists plus the route-level probe matrix over HTTP.
package control

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/detector-net/detector/internal/httpx"
	"github.com/detector-net/detector/internal/metrics"
	"github.com/detector-net/detector/internal/obs"
	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/shard"
	"github.com/detector-net/detector/internal/shardrpc"
	"github.com/detector-net/detector/internal/topo"
)

// badRequests counts malformed controller API requests (bad node ids,
// wrong methods) so that a misconfigured agent fleet is visible without
// log scraping.
var badRequests = metrics.NewCounter("control_bad_requests")

// pinglistNotModified counts GET /pinglist requests answered 304: the
// pinger's If-None-Match matched the current version, so nothing shipped.
// In steady state (no churn, no unhealthy-set change) this should be
// nearly every pinglist poll.
var pinglistNotModified = metrics.NewCounter("control_pinglist_not_modified")

// stageServe times the serve phase of a cycle: pinger selection, route
// expansion and matrix assembly, after construction has returned.
var stageServe = obs.Stages.With("serve")

// Config tunes the controller.
type Config struct {
	// Alpha and Beta are the PMC targets. The testbed default is (3,1):
	// 2-identifiability is impossible on a 4-ary Fattree (§6.3).
	Alpha, Beta int
	// PingersPerRack is how many servers per rack send probes (paper: 2-4).
	PingersPerRack int
	// Redundancy is how many pingers probe each ToR-level path (paper: >=2
	// for pinger fault tolerance).
	Redundancy int
	// FlowLabels is the per-path flow diversity (the port-range analog).
	FlowLabels int
	// RatePPS is the per-pinger probe rate (paper default: 10).
	RatePPS int
	// WindowMS is the report aggregation window.
	WindowMS int
	// ReportURL is where pingers POST results (the diagnoser).
	ReportURL string
	// DSCP marks probe QoS class.
	DSCP uint8
	// Shards, when > 1, runs probe matrix construction on the sharded
	// controller plane: the coordinator decomposes the candidate matrix,
	// assigns components to Shards controller shards, and merges the
	// per-shard selections — bit-identical to the single-controller
	// result, but with the construction critical path divided across
	// shards (and surviving shard death via ShardTTL).
	Shards int
	// ShardTTL marks a shard dead after this heartbeat silence
	// (default 10 s).
	ShardTTL time.Duration
	// ShardEndpoints lists remote shard service URLs (detectord
	// -shard-serve processes speaking internal/shardrpc). When set, the
	// coordinator drives those services over the transport instead of
	// booting in-process shards; Shards is implied (= len(ShardEndpoints)).
	// Every service must be built for the same topology — the matrix
	// signature handshake rejects a mismatched fleet.
	ShardEndpoints []string
	// ShardWire selects the transport codec for ShardEndpoints clients:
	// shardrpc.WireAuto (default — negotiate per shard at ping time),
	// WireJSON, or WireBinary. GET /shards reports the codec each shard
	// actually negotiated.
	ShardWire string
	// ShardCompression selects localize-path compression for
	// ShardEndpoints clients: shardrpc.CompressAuto (default — negotiate
	// per shard at ping time), CompressOff, or CompressGzip. GET /shards
	// reports the scheme each shard actually negotiated.
	ShardCompression string
	// Partition selects the diagnosis plane's ownership derivation:
	// "exact" (default — connected components over every link) or
	// "approx" (components over interior links only, cutting server-edge
	// links so server-level matrices split into per-subtree partitions;
	// cut links carry a measured accuracy bound instead of forcing one
	// global partition). Parsed by shard.ParsePartitionPolicy; an unknown
	// value fails the first construction cycle loudly.
	Partition string
	// DownLinks marks links failed at boot: candidate paths traversing
	// them are masked out of construction from the first cycle. Further
	// topology churn arrives at runtime via ApplyChurn / POST /churn.
	DownLinks []topo.LinkID
}

// DefaultConfig mirrors the paper's operating point, with the aggregation
// window left to the caller (30 s in production, milliseconds in tests).
func DefaultConfig() Config {
	return Config{
		Alpha: 3, Beta: 1,
		PingersPerRack: 2,
		Redundancy:     2,
		FlowLabels:     16,
		RatePPS:        10,
		WindowMS:       30000,
	}
}

// Entry is one probe route in a pinglist.
type Entry struct {
	// PathID identifies the route matrix-wide; reports aggregate on it.
	PathID uint32 `json:"path_id"`
	// Route is the full node sequence, pinger server to responder server.
	Route []topo.NodeID `json:"route"`
	// FlowLabels to rotate through (packet entropy).
	FlowLabels []uint32 `json:"flow_labels"`
	DSCP       uint8    `json:"dscp"`
}

// Pinglist is the per-pinger work order.
type Pinglist struct {
	Version   int         `json:"version"`
	Node      topo.NodeID `json:"node"`
	RatePPS   int         `json:"rate_pps"`
	WindowMS  int         `json:"window_ms"`
	ReportURL string      `json:"report_url"`
	Entries   []Entry     `json:"entries"`
}

// MatrixPath is one row of the route-level probe matrix as served to the
// diagnoser: the link set of a PathID.
type MatrixPath struct {
	PathID uint32        `json:"path_id"`
	Links  []topo.LinkID `json:"links"`
	Src    topo.NodeID   `json:"src"`
	Dst    topo.NodeID   `json:"dst"`
}

// Matrix is the serialized route-level probe matrix.
type Matrix struct {
	Version  int          `json:"version"`
	NumLinks int          `json:"num_links"`
	Paths    []MatrixPath `json:"paths"`
}

// Controller owns matrix computation and pinglist assembly.
type Controller struct {
	F   *topo.Fattree
	Cfg Config

	tr *obs.Tracer

	mu        sync.RWMutex
	version   int
	pinglists map[topo.NodeID]*Pinglist
	// history keeps, per node, the last deltaHistory distinct published
	// pinglists (newest last) — the bases the delta endpoint can diff
	// against. A since= version that has aged out falls back to a full
	// snapshot.
	history  map[topo.NodeID][]*Pinglist
	matrix   *Matrix
	pmcStats pmc.Stats
	coord    *shard.Coordinator
}

// deltaHistory bounds the per-node pinglist history ring.
const deltaHistory = 8

// New creates a controller; call RunCycle before serving.
func New(f *topo.Fattree, cfg Config) *Controller {
	return &Controller{
		F: f, Cfg: cfg,
		pinglists: make(map[topo.NodeID]*Pinglist),
		history:   make(map[topo.NodeID][]*Pinglist),
		tr:        obs.NewTracer("control", 16),
	}
}

// Tracer exposes the controller's cycle tracer (the /statusz source).
func (c *Controller) Tracer() *obs.Tracer { return c.tr }

// Coordinator returns the sharded-plane coordinator, or nil when running
// single-controller (Cfg.Shards <= 1) or before the first cycle.
func (c *Controller) Coordinator() *shard.Coordinator {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.coord
}

// Close stops the shard heartbeat loops (no-op when unsharded).
func (c *Controller) Close() {
	c.mu.Lock()
	coord := c.coord
	c.coord = nil
	c.mu.Unlock()
	if coord != nil {
		coord.Stop()
	}
}

// coordinator returns the construction coordinator, creating it on first
// use. Construction always runs through the coordinator — one in-process
// shard when unsharded, Cfg.Shards in-process shards, or the remote fleet
// of Cfg.ShardEndpoints — with selection reuse on: a cycle recomputes only
// components the topology diff dirtied since the last one, so an
// unhealthy-set change (which only affects the serve phase) costs no
// construction at all. The merge guarantee means the selection is
// bit-identical in every configuration.
func (c *Controller) coordinator(ps route.PathSet) (*shard.Coordinator, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.coord != nil {
		return c.coord, nil
	}
	if ps == nil {
		ps = route.NewFattreePaths(c.F)
	}
	partition, err := shard.ParsePartitionPolicy(c.Cfg.Partition)
	if err != nil {
		return nil, err
	}
	opt := shard.Options{
		Shards:          c.Cfg.Shards,
		TTL:             c.Cfg.ShardTTL,
		PMC:             pmc.Options{Alpha: c.Cfg.Alpha, Beta: c.Cfg.Beta, Lazy: true},
		DownLinks:       c.Cfg.DownLinks,
		ReuseSelections: true,
		Partition:       partition,
	}
	if opt.Shards < 1 {
		opt.Shards = 1
	}
	if len(c.Cfg.ShardEndpoints) > 0 {
		opt.Shards = 0
		for i, ep := range c.Cfg.ShardEndpoints {
			opt.Clients = append(opt.Clients, shardrpc.Dial(i, ep, shardrpc.ClientOptions{
				Wire: c.Cfg.ShardWire, Compress: c.Cfg.ShardCompression}))
		}
	}
	coord, err := shard.New(ps, c.F.NumLinks(), opt)
	if err != nil {
		return nil, err
	}
	c.coord = coord
	return coord, nil
}

// construct runs one PMC cycle through the coordinator.
func (c *Controller) construct(ps *route.FattreePaths, cy *obs.Cycle) (*pmc.Result, error) {
	coord, err := c.coordinator(ps)
	if err != nil {
		return nil, err
	}
	res, err := coord.ConstructCycle(cy)
	if err != nil {
		return nil, err
	}
	return res.Result, nil
}

// ApplyChurn feeds a topology change (links going down, links coming back)
// into the construction plane. The diff is computed incrementally: only
// components touching a changed link are marked dirty, and the next
// RunCycle recomputes exactly those — every clean component's selection is
// reused verbatim. Safe before the first cycle (the coordinator is created
// on demand).
func (c *Controller) ApplyChurn(down, up []topo.LinkID) (route.Diff, error) {
	coord, err := c.coordinator(nil)
	if err != nil {
		return route.Diff{}, err
	}
	return coord.ApplyChurn(down, up)
}

// DownLinks returns the links currently masked out of construction.
func (c *Controller) DownLinks() []topo.LinkID {
	c.mu.RLock()
	coord := c.coord
	c.mu.RUnlock()
	if coord == nil {
		return append([]topo.LinkID(nil), c.Cfg.DownLinks...)
	}
	return coord.DownLinks()
}

// RunCycle recomputes the probe matrix and pinglists (paper: every 10
// minutes). unhealthy servers are skipped when selecting pingers and
// responders.
func (c *Controller) RunCycle(unhealthy map[topo.NodeID]bool) error {
	cy := c.tr.StartCycle("construct")
	defer cy.End()
	sp := cy.Span("paths")
	ps := route.NewFattreePaths(c.F)
	sp.End()
	sp = cy.Span("construct")
	res, err := c.construct(ps, cy)
	sp.EndErr(err)
	if err != nil {
		return fmt.Errorf("control: PMC: %w", err)
	}
	serveStart := time.Now()
	serveSpan := cy.Span("serve")
	defer func() {
		serveSpan.End()
		stageServe.Observe(time.Since(serveStart))
	}()

	healthyServers := func(tor topo.NodeID) []topo.NodeID {
		var out []topo.NodeID
		for _, s := range c.F.ServersUnder(tor) {
			if !unhealthy[s] {
				out = append(out, s)
			}
		}
		return out
	}

	version := 0
	c.mu.RLock()
	version = c.version + 1
	c.mu.RUnlock()

	lists := make(map[topo.NodeID]*Pinglist)
	getList := func(n topo.NodeID) *Pinglist {
		if pl, ok := lists[n]; ok {
			return pl
		}
		pl := &Pinglist{
			Version: version, Node: n,
			RatePPS: c.Cfg.RatePPS, WindowMS: c.Cfg.WindowMS,
			ReportURL: c.Cfg.ReportURL,
		}
		lists[n] = pl
		return pl
	}
	labels := make([]uint32, c.Cfg.FlowLabels)
	for i := range labels {
		labels[i] = uint32(33434 + i)
	}

	matrix := &Matrix{Version: version, NumLinks: c.F.NumLinks()}

	addRoute := func(id uint32, pinger topo.NodeID, hops []topo.NodeID, links []topo.LinkID, dst topo.NodeID) {
		mp := MatrixPath{PathID: id, Links: links, Src: pinger, Dst: dst}
		matrix.Paths = append(matrix.Paths, mp)
		getList(pinger).Entries = append(getList(pinger).Entries, Entry{
			PathID: id, Route: hops, FlowLabels: labels, DSCP: c.Cfg.DSCP,
		})
	}

	// Path IDs are stable across cycles, not dense row indices: a ToR-level
	// route's ID is derived from its candidate index and replica slot, an
	// intra-rack route's from its rack and destination server slot. A route
	// that survives churn keeps its ID, which is what makes pinglist deltas
	// (and the pinger's cross-cycle counters) possible. The diagnoser maps
	// IDs to matrix rows through route.Probes.RowOf.
	stride := c.Cfg.Redundancy
	if stride < 1 {
		stride = 1
	}
	intraBase := uint32(ps.Len() * stride)

	// ToR-level matrix paths expanded to server routes: each selected path
	// is probed by Redundancy pingers under its source ToR, each toward a
	// responder under the destination ToR.
	var hopBuf []topo.NodeID
	for _, idx := range res.Selected {
		s, d, core := ps.Decode(idx)
		srcToR := c.F.ToRList()[s]
		dstToR := c.F.ToRList()[d]
		pingers := healthyServers(srcToR)
		responders := healthyServers(dstToR)
		if len(pingers) == 0 || len(responders) == 0 {
			continue
		}
		np := c.Cfg.PingersPerRack
		if np > len(pingers) {
			np = len(pingers)
		}
		red := c.Cfg.Redundancy
		if red > np {
			red = np
		}
		for r := 0; r < red; r++ {
			pinger := pingers[(idx+r)%np]
			responder := responders[(idx+r)%len(responders)]
			hopBuf = hopBuf[:0]
			hopBuf = append(hopBuf, pinger)
			hopBuf = c.F.PathHops(srcToR, dstToR, core, hopBuf)
			hopBuf = append(hopBuf, responder)
			links := make([]topo.LinkID, 0, 8)
			links = append(links, c.F.MustLink(pinger, srcToR))
			links = c.F.PathLinks(srcToR, dstToR, core, links)
			links = append(links, c.F.MustLink(dstToR, responder))
			addRoute(uint32(idx*stride+r), pinger, append([]topo.NodeID(nil), hopBuf...), links, responder)
		}
	}

	// Intra-rack probing covers server-ToR links (§3.1): each rack's first
	// healthy pinger probes every other healthy server under the same ToR.
	// The ID slot is the destination's position in the rack's full server
	// list, so a server going unhealthy does not renumber its rackmates.
	spr := c.F.Half()
	for torIdx, tor := range c.F.ToRs() {
		servers := healthyServers(tor)
		if len(servers) < 2 {
			continue
		}
		all := c.F.ServersUnder(tor)
		slot := make(map[topo.NodeID]int, len(all))
		for i, sv := range all {
			slot[sv] = i
		}
		pinger := servers[0]
		for _, dst := range servers[1:] {
			hops := []topo.NodeID{pinger, tor, dst}
			links := []topo.LinkID{c.F.MustLink(pinger, tor), c.F.MustLink(tor, dst)}
			addRoute(intraBase+uint32(torIdx*spr+slot[dst]), pinger, hops, links, dst)
		}
	}

	c.mu.Lock()
	// A node whose work order did not change keeps its published pinglist
	// (same Version pointer): its ETag stays valid, so steady-state polls
	// answer 304 and deltas stay empty even as the cycle counter advances.
	// Changed pinglists enter the node's delta history ring.
	for n, pl := range lists {
		if prev := c.pinglists[n]; prev != nil && pinglistEqual(prev, pl) {
			lists[n] = prev
			continue
		}
		h := append(c.history[n], pl)
		if len(h) > deltaHistory {
			h = h[len(h)-deltaHistory:]
		}
		c.history[n] = h
	}
	c.version = version
	c.pinglists = lists
	c.matrix = matrix
	c.pmcStats = res.Stats
	c.mu.Unlock()
	return nil
}

// pinglistEqual reports whether two pinglists describe the same work order
// (everything but the version).
func pinglistEqual(a, b *Pinglist) bool {
	if a.Node != b.Node || a.RatePPS != b.RatePPS || a.WindowMS != b.WindowMS ||
		a.ReportURL != b.ReportURL || len(a.Entries) != len(b.Entries) {
		return false
	}
	for i := range a.Entries {
		if !entryEqual(&a.Entries[i], &b.Entries[i]) {
			return false
		}
	}
	return true
}

func entryEqual(a, b *Entry) bool {
	if a.PathID != b.PathID || a.DSCP != b.DSCP ||
		len(a.Route) != len(b.Route) || len(a.FlowLabels) != len(b.FlowLabels) {
		return false
	}
	for i := range a.Route {
		if a.Route[i] != b.Route[i] {
			return false
		}
	}
	for i := range a.FlowLabels {
		if a.FlowLabels[i] != b.FlowLabels[i] {
			return false
		}
	}
	return true
}

// Version returns the current cycle version (0 before the first cycle).
func (c *Controller) Version() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// PMCStats returns the last cycle's construction statistics.
func (c *Controller) PMCStats() pmc.Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.pmcStats
}

// PinglistFor returns the pinglist of a node (nil when the node is not a
// pinger this cycle).
func (c *Controller) PinglistFor(n topo.NodeID) *Pinglist {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.pinglists[n]
}

// PingerNodes lists the nodes with non-empty pinglists this cycle.
func (c *Controller) PingerNodes() []topo.NodeID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]topo.NodeID, 0, len(c.pinglists))
	for n := range c.pinglists {
		out = append(out, n)
	}
	return out
}

// ProbeMatrix materializes the served matrix as route.Probes for in-process
// consumers (the diagnoser fetches the same data over HTTP).
func (c *Controller) ProbeMatrix() *route.Probes {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return matrixToProbes(c.matrix)
}

func matrixToProbes(m *Matrix) *route.Probes {
	if m == nil {
		return nil
	}
	links := make([][]topo.LinkID, len(m.Paths))
	ids := make([]uint32, len(m.Paths))
	for i, mp := range m.Paths {
		links[i] = mp.Links
		ids[i] = mp.PathID
	}
	p := route.NewProbesFromLinks(links, m.NumLinks)
	for i, mp := range m.Paths {
		p.Src[i], p.Dst[i] = mp.Src, mp.Dst
	}
	// Path IDs are sparse and stable across churn; consumers translate
	// them to rows through RowOf.
	p.SetIDs(ids)
	return p
}

// Handler serves GET /pinglist?node=ID, GET /matrix and GET /version.
// Malformed requests get structured JSON errors with accurate status codes
// and bump the control_bad_requests counter.
func (c *Controller) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/pinglist", func(w http.ResponseWriter, r *http.Request) {
		if !httpx.RequireMethod(w, r, http.MethodGet) {
			badRequests.Inc()
			return
		}
		node := r.URL.Query().Get("node")
		id, err := strconv.Atoi(node)
		if err != nil {
			badRequests.Inc()
			httpx.Error(w, http.StatusBadRequest, "bad node id %q: %v", node, err)
			return
		}
		pl := c.PinglistFor(topo.NodeID(id))
		if pl == nil {
			httpx.Error(w, http.StatusNotFound, "node %d is not a pinger this cycle", id)
			return
		}
		// The ETag is the pinglist's version (stable across cycles that do
		// not change this node's work order), so steady-state polls answer
		// 304 with no body — independent of whether the client asked for
		// the delta form.
		etag := pinglistETag(pl.Version)
		w.Header().Set("ETag", etag)
		if r.Header.Get("If-None-Match") == etag {
			pinglistNotModified.Inc()
			w.WriteHeader(http.StatusNotModified)
			return
		}
		since := 0
		if s := r.URL.Query().Get("since"); s != "" {
			since, err = strconv.Atoi(s)
			if err != nil || since < 0 {
				badRequests.Inc()
				httpx.Error(w, http.StatusBadRequest, "bad since version %q", s)
				return
			}
			if since >= pl.Version {
				// The client is current (or from the future — a controller
				// restart); nothing to ship.
				pinglistNotModified.Inc()
				w.WriteHeader(http.StatusNotModified)
				return
			}
			d := c.DeltaFor(topo.NodeID(id), since)
			if r.Header.Get("Accept") == shardrpc.ContentTypeBinary {
				w.Header().Set("Content-Type", shardrpc.ContentTypeBinary)
				w.Write(d.EncodeBinary())
				return
			}
			httpx.WriteJSON(w, d)
			return
		}
		httpx.WriteJSON(w, pl)
	})
	mux.HandleFunc("/churn", func(w http.ResponseWriter, r *http.Request) {
		if !httpx.RequireMethod(w, r, http.MethodPost) {
			badRequests.Inc()
			return
		}
		var req ChurnRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			badRequests.Inc()
			httpx.Error(w, http.StatusBadRequest, "bad churn body: %v", err)
			return
		}
		diff, err := c.ApplyChurn(req.Down, req.Up)
		if err != nil {
			badRequests.Inc()
			httpx.Error(w, http.StatusBadRequest, "churn rejected: %v", err)
			return
		}
		httpx.WriteJSON(w, ChurnResponse{
			RemovedComponents: len(diff.Removed),
			AddedComponents:   len(diff.Added),
			DeactivatedPaths:  len(diff.DeactivatedRows),
			ActivatedPaths:    len(diff.ActivatedRows),
			Down:              c.DownLinks(),
		})
	})
	mux.HandleFunc("/matrix", func(w http.ResponseWriter, r *http.Request) {
		if !httpx.RequireMethod(w, r, http.MethodGet) {
			badRequests.Inc()
			return
		}
		c.mu.RLock()
		m := c.matrix
		c.mu.RUnlock()
		if m == nil {
			httpx.Error(w, http.StatusServiceUnavailable, "no construction cycle has completed yet")
			return
		}
		httpx.WriteJSON(w, m)
	})
	mux.HandleFunc("/version", func(w http.ResponseWriter, r *http.Request) {
		if !httpx.RequireMethod(w, r, http.MethodGet) {
			badRequests.Inc()
			return
		}
		fmt.Fprintf(w, "%d", c.Version())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		obs.MetricsHandler()(w, r)
	})
	mux.HandleFunc("/shards", func(w http.ResponseWriter, r *http.Request) {
		if !httpx.RequireMethod(w, r, http.MethodGet) {
			badRequests.Inc()
			return
		}
		httpx.WriteJSON(w, c.Shards())
	})
	mux.HandleFunc("/healthz", obs.HealthzHandler(func() obs.Health {
		h := obs.Health{Status: "ok", Service: "control"}
		if c.Version() == 0 {
			h.Status = "degraded"
			h.Detail = "no construction cycle has completed yet"
		}
		if coord := c.Coordinator(); coord != nil {
			if un := coord.Unhealthy(); len(un) > 0 {
				h.Status = "degraded"
				h.UnhealthyShards = un
			}
		}
		return h
	}))
	mux.HandleFunc("/statusz", obs.StatuszHandler("control", c.tr, func() any {
		return c.Shards()
	}))
	return mux
}

// ChurnRequest is the POST /churn admin body: links that went down and
// links that came back, by ID.
type ChurnRequest struct {
	Down []topo.LinkID `json:"down,omitempty"`
	Up   []topo.LinkID `json:"up,omitempty"`
}

// ChurnResponse summarizes what a churn step dirtied: the component diff
// and the path activation flips, plus the full down set after the step.
type ChurnResponse struct {
	RemovedComponents int           `json:"removed_components"`
	AddedComponents   int           `json:"added_components"`
	DeactivatedPaths  int           `json:"deactivated_paths"`
	ActivatedPaths    int           `json:"activated_paths"`
	Down              []topo.LinkID `json:"down,omitempty"`
}

// ShardsView is the operator-facing placement snapshot served at
// GET /shards: whether the plane is sharded, and when it is, shard
// liveness plus the live component → shard assignment — placement without
// log scraping.
type ShardsView struct {
	Sharded bool `json:"sharded"`
	// Status is present only when Sharded (and after the first cycle).
	Status *shard.Status `json:"status,omitempty"`
}

// Shards snapshots the sharded plane for the /shards endpoint. The view is
// configuration-driven: a single-controller boot reports sharded=false
// even though construction runs through a one-shard coordinator under the
// hood (the coordinator is an implementation detail there, not a
// deployment shape).
func (c *Controller) Shards() ShardsView {
	if c.Cfg.Shards <= 1 && len(c.Cfg.ShardEndpoints) == 0 {
		return ShardsView{}
	}
	coord := c.Coordinator()
	if coord == nil {
		return ShardsView{}
	}
	st := coord.Status()
	return ShardsView{Sharded: true, Status: &st}
}

// FetchPinglist retrieves a pinglist from a controller URL.
func FetchPinglist(client *http.Client, baseURL string, n topo.NodeID) (*Pinglist, error) {
	resp, err := client.Get(fmt.Sprintf("%s/pinglist?node=%d", baseURL, n))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil // not a pinger this cycle
	}
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("control: pinglist status %s", resp.Status)
	}
	var pl Pinglist
	if err := json.NewDecoder(resp.Body).Decode(&pl); err != nil {
		return nil, err
	}
	return &pl, nil
}

// FetchMatrix retrieves the route-level probe matrix from a controller URL.
func FetchMatrix(client *http.Client, baseURL string) (*route.Probes, int, error) {
	resp, err := client.Get(baseURL + "/matrix")
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, 0, fmt.Errorf("control: matrix status %s", resp.Status)
	}
	var m Matrix
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, 0, err
	}
	return matrixToProbes(&m), m.Version, nil
}
