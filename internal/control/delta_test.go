package control

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"github.com/detector-net/detector/internal/metrics"
	"github.com/detector-net/detector/internal/shardrpc"
	"github.com/detector-net/detector/internal/topo"
)

// TestPinglistETagNotModified pins satellite behavior: GET /pinglist
// carries a version ETag, If-None-Match answers 304 with the counter
// bumped, and a cycle that does not change the node's work order keeps
// the ETag valid.
func TestPinglistETagNotModified(t *testing.T) {
	c, _ := newController(t)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	node := c.PingerNodes()[0]

	get := func(inm string) (*http.Response, string) {
		req, _ := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/pinglist?node=%d", srv.URL, node), nil)
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var pl Pinglist
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&pl); err != nil {
				t.Fatal(err)
			}
		}
		return resp, resp.Header.Get("ETag")
	}

	resp, etag := get("")
	if resp.StatusCode != http.StatusOK || etag == "" {
		t.Fatalf("cold fetch: status %d etag %q", resp.StatusCode, etag)
	}
	before := metrics.Counters()["control_pinglist_not_modified"]
	resp, _ = get(etag)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional fetch: status %d, want 304", resp.StatusCode)
	}
	if got := metrics.Counters()["control_pinglist_not_modified"]; got != before+1 {
		t.Fatalf("control_pinglist_not_modified = %d, want %d", got, before+1)
	}

	// A cycle with no churn and no unhealthy change must not invalidate
	// the ETag: the pinglist version is content-derived, not cycle-derived.
	if err := c.RunCycle(nil); err != nil {
		t.Fatal(err)
	}
	resp, etag2 := get(etag)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("post-cycle conditional fetch: status %d, want 304", resp.StatusCode)
	}
	if etag2 != etag {
		t.Fatalf("no-change cycle moved the ETag %q -> %q", etag, etag2)
	}
}

// TestUnhealthyChangeReusesConstruction pins satellite 1: changing the
// unhealthy server set re-runs only the serve phase — the construction
// plane reuses every component selection (zero scoring work).
func TestUnhealthyChangeReusesConstruction(t *testing.T) {
	f := topo.MustFattree(4)
	cfg := DefaultConfig()
	c := New(f, cfg)
	defer c.Close()
	if err := c.RunCycle(nil); err != nil {
		t.Fatal(err)
	}
	if c.PMCStats().ScoreEvals == 0 {
		t.Fatal("cold cycle did no scoring work")
	}
	sick := f.ServerID[0][0][0]
	if err := c.RunCycle(map[topo.NodeID]bool{sick: true}); err != nil {
		t.Fatal(err)
	}
	if got := c.PMCStats().ScoreEvals; got != 0 {
		t.Fatalf("unhealthy-set change cost %d score evals, want 0 (selection reuse)", got)
	}
	// And the serve phase did change: the sick server left the pinger set.
	for _, n := range c.PingerNodes() {
		if n == sick {
			t.Fatal("unhealthy server still a pinger")
		}
	}
}

// normalizePinglist strips the version for content comparison across
// controllers with different cycle counts.
func normalizePinglist(pl *Pinglist) *Pinglist {
	if pl == nil {
		return nil
	}
	cp := *pl
	cp.Version = 0
	return &cp
}

// assertSameServing compares the full served state (matrix paths and every
// pinglist, versions normalized) of two controllers.
func assertSameServing(t *testing.T, got, want *Controller, ctx string) {
	t.Helper()
	gm, wm := got.matrix, want.matrix
	if !reflect.DeepEqual(gm.Paths, wm.Paths) || gm.NumLinks != wm.NumLinks {
		t.Fatalf("%s: served matrix diverges (%d vs %d paths)", ctx, len(gm.Paths), len(wm.Paths))
	}
	if len(got.PingerNodes()) != len(want.PingerNodes()) {
		t.Fatalf("%s: pinger set size %d vs %d", ctx, len(got.PingerNodes()), len(want.PingerNodes()))
	}
	for _, n := range want.PingerNodes() {
		g := normalizePinglist(got.PinglistFor(n))
		w := normalizePinglist(want.PinglistFor(n))
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("%s: pinglist for node %d diverges", ctx, n)
		}
	}
}

// TestControllerChurnDifferential drives random link churn through
// ApplyChurn + RunCycle and checks after every step that the served state
// is bit-identical (modulo version counters) to a fresh controller built
// for the new topology, and that every delta applied to the previous
// pinglist reproduces the full fetch exactly.
func TestControllerChurnDifferential(t *testing.T) {
	f := topo.MustFattree(4)
	cfg := DefaultConfig()
	cfg.ReportURL = "http://diagnoser.test"
	c := New(f, cfg)
	defer c.Close()
	if err := c.RunCycle(nil); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	links := f.SwitchLinks()
	downSet := make(map[topo.LinkID]bool)
	prevLists := make(map[topo.NodeID]*Pinglist)
	for _, n := range c.PingerNodes() {
		prevLists[n] = c.PinglistFor(n)
	}
	for step := 0; step < 6; step++ {
		l := links[rng.Intn(len(links))]
		var diffErr error
		if downSet[l] {
			_, diffErr = c.ApplyChurn(nil, []topo.LinkID{l})
			downSet[l] = false
		} else {
			_, diffErr = c.ApplyChurn([]topo.LinkID{l}, nil)
			downSet[l] = true
		}
		if diffErr != nil {
			t.Fatalf("step %d: %v", step, diffErr)
		}
		if err := c.RunCycle(nil); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}

		// No served route may traverse a down link.
		for _, mp := range c.matrix.Paths {
			for _, ml := range mp.Links {
				if downSet[ml] {
					t.Fatalf("step %d: served path %d traverses down link %d", step, mp.PathID, ml)
				}
			}
		}

		// Ground truth: a controller built from scratch for this topology.
		var down []topo.LinkID
		for dl, isDown := range downSet {
			if isDown {
				down = append(down, dl)
			}
		}
		wcfg := cfg
		wcfg.DownLinks = down
		want := New(f, wcfg)
		if err := want.RunCycle(nil); err != nil {
			t.Fatalf("step %d: fresh controller: %v", step, err)
		}
		assertSameServing(t, c, want, fmt.Sprintf("step %d", step))
		want.Close()

		// Delta replay: for every node, applying the served delta to the
		// previously held pinglist must equal the full fetch bit for bit.
		seen := make(map[topo.NodeID]bool)
		for _, n := range c.PingerNodes() {
			seen[n] = true
			cur := c.PinglistFor(n)
			held := prevLists[n]
			since := 0
			if held != nil {
				since = held.Version
			}
			if since == cur.Version {
				continue // unchanged; the ETag path covers this
			}
			d := c.DeltaFor(n, since)
			if d == nil {
				t.Fatalf("step %d: no delta for pinger %d", step, n)
			}
			// The kind-7 frame must round-trip the delta unchanged.
			rt, err := shardrpc.DecodePinglistDeltaBinary(d.EncodeBinary(), 64<<20)
			if err != nil {
				t.Fatalf("step %d node %d: binary delta: %v", step, n, err)
			}
			if len(rt.Added) != len(d.Added) || len(rt.Removed) != len(d.Removed) {
				t.Fatalf("step %d node %d: binary delta reshaped", step, n)
			}
			applied := ApplyDelta(held, d)
			if !reflect.DeepEqual(applied.Entries, cur.Entries) {
				t.Fatalf("step %d node %d: delta replay diverges from full fetch (%d vs %d entries)",
					step, n, len(applied.Entries), len(cur.Entries))
			}
			prevLists[n] = cur
		}
		for n := range prevLists {
			if !seen[n] {
				delete(prevLists, n)
			}
		}
	}
}

// TestChurnEndpoint pins the admin surface: POST /churn applies the diff
// and reports it; malformed bodies answer 400.
func TestChurnEndpoint(t *testing.T) {
	c, f := newController(t)
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	l := f.SwitchLinks()[0]
	body, _ := json.Marshal(ChurnRequest{Down: []topo.LinkID{l}})
	resp, err := http.Post(srv.URL+"/churn", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var cr ChurnResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("churn: status %d", resp.StatusCode)
	}
	if len(cr.Down) != 1 || cr.Down[0] != l {
		t.Fatalf("churn response down = %v, want [%d]", cr.Down, l)
	}
	if cr.DeactivatedPaths == 0 {
		t.Fatal("downing a switch link deactivated no candidate paths")
	}

	// Downing the same link again is a validation error, answered 400.
	resp, err = http.Post(srv.URL+"/churn", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("double-down: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/churn", "application/json", bytes.NewReader([]byte("{bad")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}
}
