package control

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/detector-net/detector/internal/httpx"
	"github.com/detector-net/detector/internal/metrics"
	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/topo"
)

func newController(t *testing.T) (*Controller, *topo.Fattree) {
	t.Helper()
	f := topo.MustFattree(4)
	cfg := DefaultConfig()
	cfg.ReportURL = "http://diagnoser.test"
	c := New(f, cfg)
	if err := c.RunCycle(nil); err != nil {
		t.Fatal(err)
	}
	return c, f
}

func TestRunCycleBuildsConsistentState(t *testing.T) {
	c, f := newController(t)
	if c.Version() != 1 {
		t.Fatalf("version = %d, want 1", c.Version())
	}
	m := c.ProbeMatrix()
	if m == nil || m.NumPaths() == 0 {
		t.Fatal("no matrix")
	}

	// The route-level matrix must cover every switch link with at least
	// Alpha paths (server links are covered by intra-rack routes).
	v := pmc.Verify(m, f.SwitchLinks(), false)
	if v.MinCoverage < c.Cfg.Alpha {
		t.Fatalf("matrix coverage %d below alpha %d", v.MinCoverage, c.Cfg.Alpha)
	}
	var all []topo.LinkID
	for _, l := range f.Links {
		all = append(all, l.ID)
	}
	if cov := m.MinCoverage(all); cov < 1 {
		t.Fatalf("some link (incl. server links) uncovered: min coverage %d", cov)
	}

	// Pinglist routes must be walkable: consecutive hops adjacent, first
	// hop is the pinger, last is the responder.
	for _, node := range c.PingerNodes() {
		pl := c.PinglistFor(node)
		if pl.ReportURL != "http://diagnoser.test" {
			t.Fatalf("pinglist report URL %q", pl.ReportURL)
		}
		for _, e := range pl.Entries {
			if e.Route[0] != node {
				t.Fatalf("entry starts at %d, pinger is %d", e.Route[0], node)
			}
			for i := 0; i+1 < len(e.Route); i++ {
				if _, ok := f.LinkBetween(e.Route[i], e.Route[i+1]); !ok {
					t.Fatalf("route hop %d-%d not adjacent", e.Route[i], e.Route[i+1])
				}
			}
			if len(e.FlowLabels) != c.Cfg.FlowLabels {
				t.Fatalf("entry has %d flow labels, want %d", len(e.FlowLabels), c.Cfg.FlowLabels)
			}
		}
	}
}

// TestRedundantPingers: every ToR-level path must appear in at least
// Redundancy pinglists (paper §3.1: each path goes to >= 2 pingers).
func TestRedundantPingers(t *testing.T) {
	c, f := newController(t)
	m := c.ProbeMatrix()
	// Count route-level paths per (srcToR via links signature): redundancy
	// means the number of matrix rows with identical switch-level links is
	// >= 2 for ToR-level paths.
	type sig string
	counts := map[sig]int{}
	for _, links := range m.PathLinks {
		var switchLinks []topo.LinkID
		for _, l := range links {
			if f.Link(l).Tier != topo.TierServerEdge {
				switchLinks = append(switchLinks, l)
			}
		}
		if len(switchLinks) == 0 {
			continue // intra-rack route
		}
		b := make([]byte, 0, len(switchLinks)*4)
		for _, l := range switchLinks {
			b = append(b, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
		}
		counts[sig(b)]++
	}
	for s, n := range counts {
		if n < c.Cfg.Redundancy {
			t.Fatalf("a ToR-level path has only %d probing routes, want >= %d (%x)", n, c.Cfg.Redundancy, s)
		}
	}
}

func TestUnhealthyServersSkipped(t *testing.T) {
	f := topo.MustFattree(4)
	c := New(f, DefaultConfig())
	// Mark the first server of rack (0,0) unhealthy: it must not appear as
	// pinger or responder.
	sick := f.ServerID[0][0][0]
	if err := c.RunCycle(map[topo.NodeID]bool{sick: true}); err != nil {
		t.Fatal(err)
	}
	for _, node := range c.PingerNodes() {
		if node == sick {
			t.Fatal("unhealthy server selected as pinger")
		}
		for _, e := range c.PinglistFor(node).Entries {
			if e.Route[len(e.Route)-1] == sick {
				t.Fatal("unhealthy server selected as responder")
			}
		}
	}
}

func TestHTTPEndpoints(t *testing.T) {
	c, _ := newController(t)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	client := srv.Client()

	node := c.PingerNodes()[0]
	pl, err := FetchPinglist(client, srv.URL, node)
	if err != nil {
		t.Fatal(err)
	}
	if pl == nil || len(pl.Entries) == 0 {
		t.Fatal("empty pinglist over HTTP")
	}
	if pl.Version != 1 {
		t.Fatalf("version %d", pl.Version)
	}

	// A non-pinger gets nil.
	pl2, err := FetchPinglist(client, srv.URL, 99999)
	if err != nil || pl2 != nil {
		t.Fatalf("non-pinger: %v %v", pl2, err)
	}

	m, version, err := FetchMatrix(client, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 || m.NumPaths() != c.ProbeMatrix().NumPaths() {
		t.Fatalf("matrix over HTTP: version=%d paths=%d", version, m.NumPaths())
	}
}

func TestCycleVersionAdvances(t *testing.T) {
	c, _ := newController(t)
	if err := c.RunCycle(nil); err != nil {
		t.Fatal(err)
	}
	if c.Version() != 2 {
		t.Fatalf("version = %d, want 2", c.Version())
	}
}

// TestShardedServingIdentical pins the serving-side guarantee of the
// sharded controller plane: the served matrix and every pinglist are
// byte-identical to a single-controller cycle, for any shard count — the
// pinger protocol cannot tell the difference.
func TestShardedServingIdentical(t *testing.T) {
	f := topo.MustFattree(4)
	cfg := DefaultConfig()
	cfg.ReportURL = "http://diagnoser.test"
	single := New(f, cfg)
	if err := single.RunCycle(nil); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 3} {
		scfg := cfg
		scfg.Shards = shards
		sharded := New(f, scfg)
		if err := sharded.RunCycle(nil); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		t.Cleanup(sharded.Close)
		if sharded.Coordinator() == nil {
			t.Fatalf("shards=%d: no coordinator", shards)
		}

		want, _ := json.Marshal(single.matrix)
		got, _ := json.Marshal(sharded.matrix)
		if !bytes.Equal(want, got) {
			t.Errorf("shards=%d: served matrix differs from single controller", shards)
		}
		for _, node := range single.PingerNodes() {
			w, _ := json.Marshal(single.PinglistFor(node))
			g, _ := json.Marshal(sharded.PinglistFor(node))
			if !bytes.Equal(w, g) {
				t.Errorf("shards=%d: pinglist for node %d differs", shards, node)
			}
		}
		if len(sharded.PingerNodes()) != len(single.PingerNodes()) {
			t.Errorf("shards=%d: pinger set size differs", shards)
		}
	}
}

// TestHandlerRejectsMalformedRequests pins the API error contract: wrong
// methods and undecodable parameters answer with accurate status codes and
// JSON bodies, and bump control_bad_requests.
func TestHandlerRejectsMalformedRequests(t *testing.T) {
	c, _ := newController(t)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	before := metrics.Counters()["control_bad_requests"]

	resp, err := http.Get(srv.URL + "/pinglist?node=banana")
	if err != nil {
		t.Fatal(err)
	}
	var body httpx.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("error body is not JSON: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || body.Error == "" {
		t.Fatalf("bad node id: status %d body %+v, want 400 with error", resp.StatusCode, body)
	}

	resp, err = http.Post(srv.URL+"/matrix", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /matrix: status %d, want 405", resp.StatusCode)
	}
	if resp.Header.Get("Allow") != http.MethodGet {
		t.Fatalf("POST /matrix: Allow %q, want GET", resp.Header.Get("Allow"))
	}

	resp, err = http.Get(srv.URL + "/pinglist?node=999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown node: status %d, want 404", resp.StatusCode)
	}

	if got := metrics.Counters()["control_bad_requests"]; got != before+2 {
		t.Fatalf("control_bad_requests = %d, want %d (+2: bad id, wrong method)", got, before+2)
	}
}

// TestShardsEndpointExposesPlacement pins the operator surface: GET
// /shards answers {"sharded":false} on a single-controller boot, and on a
// sharded boot lists every shard with its liveness, transport address and
// owned components, plus every component with its owner — placement
// without log scraping.
func TestShardsEndpointExposesPlacement(t *testing.T) {
	single, _ := newController(t)
	srv := httptest.NewServer(single.Handler())
	t.Cleanup(srv.Close)
	var view ShardsView
	resp, err := http.Get(srv.URL + "/shards")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if view.Sharded || view.Status != nil {
		t.Fatalf("single controller /shards = %+v, want sharded=false with no status", view)
	}

	f := topo.MustFattree(4)
	cfg := DefaultConfig()
	cfg.ReportURL = "http://diagnoser.test"
	cfg.Shards = 2
	sharded := New(f, cfg)
	if err := sharded.RunCycle(nil); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sharded.Close)
	ssrv := httptest.NewServer(sharded.Handler())
	t.Cleanup(ssrv.Close)

	resp, err = http.Get(ssrv.URL + "/shards")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !view.Sharded || view.Status == nil {
		t.Fatalf("sharded /shards = %+v, want sharded=true with status", view)
	}
	if len(view.Status.Shards) != 2 {
		t.Fatalf("status lists %d shards, want 2", len(view.Status.Shards))
	}
	owned := 0
	for _, si := range view.Status.Shards {
		if !si.Alive {
			t.Errorf("shard %d reported dead on a healthy plane", si.ID)
		}
		if si.Addr != "in-process" {
			t.Errorf("shard %d addr %q, want in-process", si.ID, si.Addr)
		}
		owned += len(si.Components)
	}
	if want := sharded.Coordinator().Components(); owned != want || len(view.Status.Components) != want {
		t.Errorf("placement covers %d components (list %d), want %d",
			owned, len(view.Status.Components), want)
	}
	for _, ci := range view.Status.Components {
		if ci.Shard < 0 || ci.Shard >= 2 {
			t.Errorf("component %d assigned to nonexistent shard %d", ci.Index, ci.Shard)
		}
	}
}
