// Package responder implements deTector's stateless echo agent (paper
// §3.1): it listens on its server's UDP socket, and on every probe arrival
// stamps the echo timestamp, reverses the source route and sends the packet
// back. It retains no per-probe state; all bookkeeping lives in pingers.
package responder

import (
	"net"
	"sync/atomic"
	"time"

	"github.com/detector-net/detector/internal/fabric"
	"github.com/detector-net/detector/internal/topo"
	"github.com/detector-net/detector/internal/wire"
)

// Responder is one echo agent bound to a server node.
type Responder struct {
	Node topo.NodeID

	topo  *topo.Topology
	rules *fabric.RuleTable
	reg   *fabric.Registry
	conn  *net.UDPConn

	echoed  atomic.Int64
	dropped atomic.Int64
	done    chan struct{}
}

// Start opens the server's socket, registers it with the fabric and begins
// echoing.
func Start(t *topo.Topology, rules *fabric.RuleTable, reg *fabric.Registry, node topo.NodeID) (*Responder, error) {
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	reg.Register(node, conn.LocalAddr().(*net.UDPAddr))
	r := &Responder{
		Node: node, topo: t, rules: rules, reg: reg, conn: conn,
		done: make(chan struct{}),
	}
	go r.loop()
	return r, nil
}

// Stop closes the socket and waits for the loop.
func (r *Responder) Stop() {
	r.conn.Close()
	<-r.done
}

// Echoed returns the number of probes echoed.
func (r *Responder) Echoed() int64 { return r.echoed.Load() }

// Dropped returns probes killed by the last-hop emulated link.
func (r *Responder) Dropped() int64 { return r.dropped.Load() }

func (r *Responder) loop() {
	defer close(r.done)
	buf := make([]byte, 4096)
	var out []byte
	for {
		n, _, err := r.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		pkt, err := wire.Unmarshal(buf[:n])
		if err != nil {
			continue
		}
		if !pkt.AtDestination() || pkt.Dst() != r.Node {
			continue
		}
		if pkt.Flags&wire.FlagReply != 0 {
			// Echoes belong to pingers; a responder-only server ignores
			// them.
			continue
		}
		// The final link (ToR, server) still faces the rule table.
		if fabric.IngressDrop(r.topo, r.rules, pkt) {
			r.dropped.Add(1)
			continue
		}
		echo := pkt.Reversed(time.Now().UnixNano())
		out, err = fabric.SendFirstHop(r.conn, r.reg, echo, out)
		if err != nil {
			continue
		}
		r.echoed.Add(1)
	}
}
