package expt

import (
	"fmt"
	"io"
	"time"

	"github.com/detector-net/detector/internal/metrics"
	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/sim"
	"github.com/detector-net/detector/internal/topo"
)

// Fig4Frequencies is the probing-rate x-axis (probes/second per pinger).
var Fig4Frequencies = []int{1, 5, 10, 15, 20, 30}

// Fig4Row is one probing frequency's outcomes across all four subfigures.
type Fig4Row struct {
	PPS int
	// (a) localization quality.
	Accuracy, FalsePositive float64
	// (b) pinger overhead: modeled from the paper's packet size (850 B)
	// and its measured 10pps operating point (0.4% CPU, 13 MB).
	BandwidthKbps float64
	CPUPercent    float64
	MemoryMB      float64
	// (c, d) workload impact from the queueing model.
	RTTMean time.Duration
	Jitter  time.Duration
}

// Fig4 reproduces the sensitivity analysis of paper Fig. 4 on the 4-ary
// testbed topology: higher probing frequency improves accuracy and false
// positives with diminishing returns past 10-15 pps, while overhead grows
// linearly and workload RTT/jitter stay flat.
func Fig4(w io.Writer, p Params) ([]Fig4Row, error) {
	f := topo.MustFattree(4)
	probes, _, err := buildMatrix(f, 3, 1)
	if err != nil {
		return nil, err
	}
	rng := p.rng()
	load, err := sim.GenerateLoad(f, sim.DefaultWorkloadConfig(), rng)
	if err != nil {
		return nil, err
	}
	lat := sim.DefaultLatencyModel()

	// Paths per pinger: 2 pingers per rack share the rack's outgoing paths
	// with 2x redundancy, so each pinger probes ~2*paths/(#racks*2).
	pathsPerPinger := float64(2*probes.NumPaths()) / float64(len(f.ToRs())*2)
	const windowSec = 30

	// Pre-draw the failure scenarios once and reuse them at every
	// frequency: the sweep is a paired comparison, not independent draws.
	scens := make([]*sim.Scenario, p.Trials)
	for tr := range scens {
		// Link-level faults only: whole-switch events fail several links
		// at once and PLL's parsimony then caps accuracy for reasons
		// orthogonal to probing frequency, which is what this figure
		// studies (the multi-failure regime is Fig. 6 / Table 4).
		cfg := sim.DefaultFailureConfig()
		cfg.MinRate = 0.01
		cfg.SwitchFrac = 0
		scen, err := sim.Generate(f.Topology, cfg, rng)
		if err != nil {
			return nil, err
		}
		scens[tr] = scen
	}

	var rows []Fig4Row
	for _, pps := range Fig4Frequencies {
		probesPerPath := int(float64(pps) * windowSec / pathsPerPinger)
		if probesPerPath < 1 {
			probesPerPath = 1
		}
		var pooled metrics.Confusion
		for tr := 0; tr < p.Trials; tr++ {
			scen := scens[tr]
			n := sim.NewNetwork(f.Topology, scen)
			obs := sim.SimulateWindow(n, probes, sim.ProbeWindowConfig{ProbesPerPath: probesPerPath}, rng)
			res, err := pll.Localize(probes, obs, pll.DefaultConfig())
			if err != nil {
				return nil, err
			}
			pooled.Add(metrics.Compare(res.BadLinks(), switchOnly(f, scen.BadLinks())))
		}

		// Workload RTT under combined workload + probe traffic.
		probeLoad := cloneLoad(load)
		addProbeLoad(f, probes, probeLoad, pps)
		src, dst := f.ServerID[0][0][0], f.ServerID[2][0][0]
		links, _ := route.FattreeServerPath(f, src, dst, 0)
		rtts := lat.RTTSamples(links, probeLoad, 300, rng)
		var mean time.Duration
		for _, r := range rtts {
			mean += r
		}
		mean /= time.Duration(len(rtts))

		rows = append(rows, Fig4Row{
			PPS:           pps,
			Accuracy:      pooled.Accuracy(),
			FalsePositive: pooled.FalsePositiveRatio(),
			BandwidthKbps: float64(pps) * 850 * 8 / 1000 * 2, // probe + echo
			CPUPercent:    0.04 * float64(pps),
			MemoryMB:      13,
			RTTMean:       mean,
			Jitter:        sim.Jitter(rtts),
		})
	}

	fmt.Fprintln(w, "Figure 4: probing-frequency sensitivity on Fattree(4) (paper Fig. 4)")
	t := newTable(w)
	t.row("pps", "accuracy", "false pos", "bw(Kbps)", "cpu%", "mem(MB)", "rtt", "jitter")
	for _, r := range rows {
		t.row(r.PPS, pct(r.Accuracy), pct(r.FalsePositive),
			fmt.Sprintf("%.0f", r.BandwidthKbps), fmt.Sprintf("%.2f", r.CPUPercent),
			fmt.Sprintf("%.0f", r.MemoryMB), fmtDur(r.RTTMean), fmtDur(r.Jitter))
	}
	t.flush()
	return rows, nil
}

// switchOnly filters ground truth to the links the ToR-level matrix can
// localize; server-link faults are the intra-rack prober's job.
func switchOnly(f *topo.Fattree, links []topo.LinkID) []topo.LinkID {
	var out []topo.LinkID
	for _, l := range links {
		if f.Link(l).Tier != topo.TierServerEdge {
			out = append(out, l)
		}
	}
	return out
}

func cloneLoad(in *sim.Load) *sim.Load {
	out := sim.NewLoad()
	for l, v := range in.BytesPerSec {
		out.BytesPerSec[l] = v
	}
	return out
}

// addProbeLoad spreads each pinger's probe bytes over its paths.
func addProbeLoad(f *topo.Fattree, probes *route.Probes, load *sim.Load, pps int) {
	perPath := float64(pps) * 850 / float64(probes.NumPaths()/(len(f.ToRs())*2)+1)
	for _, links := range probes.PathLinks {
		load.Add(links, perPath)
	}
}
