package expt

import (
	"fmt"
	"io"
	"time"

	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

// Table2Row is one topology's PMC runtime at each optimization level
// (paper Table 2, α=2, β=1).
type Table2Row struct {
	Name      string
	Nodes     int
	Links     int
	Paths     int
	Strawman  time.Duration
	Decompose time.Duration
	Lazy      time.Duration
	Symmetry  time.Duration
	// SkippedStrawman and SkippedDecompose flag over-budget cells (the
	// paper's ">24h" entries).
	SkippedStrawman  bool
	SkippedDecompose bool
}

// table2Case couples a topology with its candidate paths.
type table2Case struct {
	name  string
	topo  *topo.Topology
	paths route.PathSet
}

// table2Cases returns the benchmark instances: CI-sized by default, plus
// paper-adjacent sizes with Big (the paper's largest — Fattree(72),
// VL2(140,120,100), BCube(8,4) — are out of reach without its 10-CPU rack
// server, and the shape is visible well before that).
func table2Cases(big bool) []table2Case {
	var cases []table2Case
	add := func(name string, t *topo.Topology, ps route.PathSet) {
		cases = append(cases, table2Case{name, t, ps})
	}
	f8 := topo.MustFattree(8)
	add(f8.Name, f8.Topology, route.NewFattreePaths(f8))
	f12 := topo.MustFattree(12)
	add(f12.Name, f12.Topology, route.NewFattreePaths(f12))
	v := topo.MustVL2(20, 12, 20)
	add(v.Name, v.Topology, route.NewVL2Paths(v))
	b := topo.MustBCube(4, 2)
	add(b.Name, b.Topology, route.NewBCubePaths(b))
	if big {
		f16 := topo.MustFattree(16)
		add(f16.Name, f16.Topology, route.NewFattreePaths(f16))
		f24 := topo.MustFattree(24)
		add(f24.Name, f24.Topology, route.NewFattreePaths(f24))
		v2 := topo.MustVL2(40, 24, 40)
		add(v2.Name, v2.Topology, route.NewVL2Paths(v2))
		b2 := topo.MustBCube(8, 2)
		add(b2.Name, b2.Topology, route.NewBCubePaths(b2))
	}
	return cases
}

// strawmanPathCap bounds the instances the O(m²)-ish strawman attempts —
// the stand-in for the paper's ">24h" cells.
const strawmanPathCap = 250_000

// decompOnlyCap bounds decomposition-without-lazy runs; the paper's own
// Table 2 shows this level taking 23+ minutes at Fattree(24) scale.
const decompOnlyCap = 2_000_000

// Table2 measures PMC runtime per optimization level. Levels are cumulative
// exactly as in the paper: strawman, +decomposition, +lazy update,
// +symmetry reduction.
func Table2(w io.Writer, p Params) ([]Table2Row, error) {
	var rows []Table2Row
	for _, c := range table2Cases(p.Big) {
		st := c.topo.Stats()
		row := Table2Row{Name: c.name, Nodes: st.Nodes, Links: st.Links, Paths: c.paths.Len()}
		runOne := func(opt pmc.Options) (time.Duration, error) {
			res, err := pmc.Construct(c.paths, c.topo.NumLinks(), opt)
			if err != nil {
				return 0, fmt.Errorf("table2 %s: %w", c.name, err)
			}
			return res.Stats.Elapsed, nil
		}
		var err error
		if c.paths.Len() <= strawmanPathCap {
			if row.Strawman, err = runOne(pmc.Options{Alpha: 2, Beta: 1}); err != nil {
				return nil, err
			}
		} else {
			row.SkippedStrawman = true
		}
		if c.paths.Len() <= decompOnlyCap {
			if row.Decompose, err = runOne(pmc.Options{Alpha: 2, Beta: 1, Decompose: true}); err != nil {
				return nil, err
			}
		} else {
			row.SkippedDecompose = true
		}
		if row.Lazy, err = runOne(pmc.Options{Alpha: 2, Beta: 1, Decompose: true, Lazy: true}); err != nil {
			return nil, err
		}
		if row.Symmetry, err = runOne(pmc.Options{Alpha: 2, Beta: 1, Decompose: true, Lazy: true, Symmetry: true}); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}

	fmt.Fprintln(w, "Table 2: PMC running time, alpha=2 beta=1 (paper Table 2)")
	t := newTable(w)
	t.row("DCN", "nodes", "links", "orig paths", "strawman", "+decompose", "+lazy", "+symmetry")
	for _, r := range rows {
		straw := fmtDur(r.Strawman)
		if r.SkippedStrawman {
			straw = "skipped"
		}
		decomp := fmtDur(r.Decompose)
		if r.SkippedDecompose {
			decomp = "skipped"
		}
		t.row(r.Name, r.Nodes, r.Links, r.Paths, straw,
			decomp, fmtDur(r.Lazy), fmtDur(r.Symmetry))
	}
	t.flush()
	return rows, nil
}
