package expt

import (
	"fmt"
	"io"
	"math/rand"

	"github.com/detector-net/detector/internal/metrics"
	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/sim"
	"github.com/detector-net/detector/internal/topo"
)

// FailedLinkCounts is the paper's Table 4/5 x-axis.
var FailedLinkCounts = []int{1, 5, 10, 20, 50}

// Table4Row is the localization accuracy of one probe-matrix configuration
// across concurrent-failure counts (paper Table 4).
type Table4Row struct {
	Alpha, Beta int
	Paths       int
	// Accuracy[i] pools trials at FailedLinkCounts[i].
	Accuracy [5]float64
}

// table45FailureConfig is the failure mix of the large-scale simulations:
// link-level faults only (Table 4 and 5 count failed links), with loss
// rates from 1% up — low-rate tails are studied separately via the noise
// analysis in Table 5's false-negative discussion; EXPERIMENTS.md records
// the substitution.
func table45FailureConfig(n int) sim.FailureConfig {
	cfg := sim.DefaultFailureConfig()
	cfg.Failures = n
	cfg.SwitchFrac = 0
	cfg.MinRate = 0.01
	cfg.IncludeServerLinks = false
	return cfg
}

// simAccuracy runs `trials` random scenarios with numFailed concurrent link
// failures and pools the confusion counts of PLL on the given matrix.
func simAccuracy(f *topo.Fattree, probes *route.Probes, numFailed, trials, probesPerPath int, rng *rand.Rand) (metrics.Confusion, error) {
	var pooled metrics.Confusion
	for tr := 0; tr < trials; tr++ {
		scen, err := sim.Generate(f.Topology, table45FailureConfig(numFailed), rng)
		if err != nil {
			return pooled, err
		}
		n := sim.NewNetwork(f.Topology, scen)
		obs := sim.SimulateWindow(n, probes, sim.ProbeWindowConfig{ProbesPerPath: probesPerPath}, rng)
		res, err := pll.Localize(probes, obs, pll.DefaultConfig())
		if err != nil {
			return pooled, err
		}
		pooled.Add(metrics.Compare(res.BadLinks(), scen.BadLinks()))
	}
	return pooled, nil
}

// Table4 sweeps probe-matrix (α, β) configurations on an 18-radix Fattree
// (default; p.K overrides) and measures PLL accuracy against concurrent
// failures. The paper's headline: identifiability buys far more accuracy
// than coverage, and β=1 already exceeds 90%.
func Table4(w io.Writer, p Params) ([]Table4Row, error) {
	k := p.K
	if k == 0 {
		if p.Big {
			k = 18 // the paper's instance
		} else {
			k = 8 // same shape, CI-sized
		}
	}
	f, err := topo.NewFattree(k)
	if err != nil {
		return nil, err
	}
	ps := route.NewFattreePaths(f)

	configs := [][2]int{{1, 0}, {2, 0}, {3, 0}, {1, 1}, {1, 2}}
	if p.Big {
		configs = append(configs, [2]int{1, 3})
	}
	rng := p.rng()
	var rows []Table4Row
	for _, cfg := range configs {
		res, err := pmc.Construct(ps, f.NumLinks(), pmc.Options{
			Alpha: cfg[0], Beta: cfg[1],
			Decompose: true, Lazy: true, Symmetry: true,
		})
		if err != nil {
			return nil, fmt.Errorf("table4 (%d,%d): %w", cfg[0], cfg[1], err)
		}
		probes := route.NewProbes(ps, res.Selected, f.NumLinks())
		row := Table4Row{Alpha: cfg[0], Beta: cfg[1], Paths: len(res.Selected)}
		for i, nf := range FailedLinkCounts {
			c, err := simAccuracy(f, probes, nf, p.Trials, p.ProbesPerPath, rng)
			if err != nil {
				return nil, err
			}
			row.Accuracy[i] = c.Accuracy()
		}
		rows = append(rows, row)
	}

	fmt.Fprintf(w, "Table 4: accuracy vs probe matrix (alpha,beta), Fattree(%d) (paper Table 4, 18-radix)\n", k)
	t := newTable(w)
	t.row("(a,b)", "paths", "1 fail", "5", "10", "20", "50")
	for _, r := range rows {
		t.row(fmt.Sprintf("(%d,%d)", r.Alpha, r.Beta), r.Paths,
			pct(r.Accuracy[0]), pct(r.Accuracy[1]), pct(r.Accuracy[2]), pct(r.Accuracy[3]), pct(r.Accuracy[4]))
	}
	t.flush()
	return rows, nil
}

// Table5Row is the full confusion breakdown at one failure count.
type Table5Row struct {
	Failed                  int
	Accuracy, FalsePositive float64
	FalseNegative           float64
}

// Table5 measures accuracy / false positives / false negatives of a
// 2-identifiable matrix at scale (paper: 48-ary Fattree; default here 16,
// Big default 24, p.K overrides — pass K=48 for the paper's instance).
func Table5(w io.Writer, p Params) ([]Table5Row, error) {
	k := p.K
	if k == 0 {
		if p.Big {
			k = 24
		} else {
			k = 16
		}
	}
	beta := p.Beta
	if beta == 0 {
		beta = 2
	}
	f, err := topo.NewFattree(k)
	if err != nil {
		return nil, err
	}
	ps := route.NewFattreePaths(f)
	res, err := pmc.Construct(ps, f.NumLinks(), pmc.Options{
		Alpha: 1, Beta: beta,
		Decompose: true, Lazy: true, Symmetry: true,
	})
	if err != nil {
		return nil, err
	}
	probes := route.NewProbes(ps, res.Selected, f.NumLinks())

	rng := p.rng()
	var rows []Table5Row
	for _, nf := range FailedLinkCounts {
		c, err := simAccuracy(f, probes, nf, p.Trials, p.ProbesPerPath, rng)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table5Row{
			Failed:        nf,
			Accuracy:      c.Accuracy(),
			FalsePositive: c.FalsePositiveRatio(),
			FalseNegative: c.FalseNegativeRatio(),
		})
	}

	fmt.Fprintf(w, "Table 5: (1,%d) matrix on Fattree(%d), %d paths (paper Table 5, 48-ary)\n", beta, k, len(res.Selected))
	t := newTable(w)
	t.row("# failed links", "accuracy", "false positive", "false negative")
	for _, r := range rows {
		t.row(r.Failed, pct(r.Accuracy), pct(r.FalsePositive), pct(r.FalseNegative))
	}
	t.flush()
	return rows, nil
}
