package expt

import (
	"fmt"
	"io"
	"math/rand"

	"github.com/detector-net/detector/internal/metrics"
	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/sim"
	"github.com/detector-net/detector/internal/topo"
)

// ScenarioCounts is the gray-failure suite's x-axis: concurrent same-mode
// faults per scenario. It stops at 10 — beyond that the interesting axis is
// Table 5's, not the verdict lattice's.
var ScenarioCounts = []int{1, 5, 10}

// ScenarioRow is one (fault mode, failure count) cell of the suite.
type ScenarioRow struct {
	Mode   sim.FaultMode
	Failed int
	// Accuracy and FalsePositive score the detection set against ground
	// truth: hard link-down alerts for loss-class modes, soft advisories
	// for congestion/delay-class modes.
	Accuracy, FalsePositive float64
	// LinkDownFP counts hard link-down alerts raised on links that are not
	// truly hard-faulted, pooled over trials. For congested / delayed /
	// incast scenarios any such alert is the false "link down" page the
	// lattice exists to suppress; the suite expects 0.
	LinkDownFP int
	// VerdictOK is the fraction of detected true-fault links whose verdict
	// matches the mode's expected class.
	VerdictOK float64
}

// expectedVerdict maps a fault mode to the verdict class the lattice is
// expected to emit for it.
func expectedVerdict(m sim.FaultMode) pll.VerdictClass {
	switch m {
	case sim.ModeLossy:
		return pll.VerdictLossy
	case sim.ModeSilentPartial:
		return pll.VerdictSilentPartial
	case sim.ModeCongested, sim.ModeIncast:
		return pll.VerdictCongested
	case sim.ModeDelayed:
		return pll.VerdictDelayed
	case sim.ModeFlapping:
		return pll.VerdictFlapping
	}
	return pll.VerdictUnknown
}

// scenarioCell runs `trials` scenarios of one mode and failure count and
// pools the detection confusion, hard-alert false pages and verdict hits.
//
// Each trial replays the diagnoser's window protocol end to end: a healthy
// warmup window seeds the per-path RTT baselines and the first loss-rate
// history sample, fault windows extend the history (flapping runs five so
// the series can oscillate, everything else settles in one), and the final
// window's observations plus its switch-counter delta feed localization and
// the lattice exactly as diag.RunWindow wires them.
func scenarioCell(f *topo.Fattree, probes *route.Probes, mode sim.FaultMode, numFailed, trials, probesPerPath int, rng *rand.Rand) (ScenarioRow, error) {
	row := ScenarioRow{Mode: mode, Failed: numFailed}
	expect := expectedVerdict(mode)
	var pooled metrics.Confusion
	verdictNum, verdictDen := 0, 0

	for tr := 0; tr < trials; tr++ {
		scen, err := sim.GenerateMode(f.Topology, mode, numFailed, rng)
		if err != nil {
			return row, err
		}
		net := sim.NewNetwork(f.Topology, scen)

		// Healthy warmup on a clean network: baselines and history sample 0.
		healthy := sim.NewNetwork(f.Topology, nil)
		warm := sim.SimulateSignalWindow(healthy, probes, sim.SignalWindowConfig{ProbesPerPath: probesPerPath}, rng)
		sigs := &pll.Signals{History: make(map[int][]float64), BaseRTTNS: make(map[int]int64)}
		record := func(obs []pll.Observation, baseline bool) {
			for _, o := range obs {
				if o.Sent > 0 {
					sigs.History[o.Path] = append(sigs.History[o.Path], float64(o.Lost)/float64(o.Sent))
				}
				if baseline && o.MeanRTTNS > 0 {
					sigs.BaseRTTNS[o.Path] = o.MeanRTTNS
				}
			}
		}
		record(warm, true)

		windows := 1
		if mode == sim.ModeFlapping {
			windows = 5 // down on even windows; the verdict window (4) is down
		}
		var obs []pll.Observation
		var before map[topo.LinkID]int64
		for wd := 0; wd < windows; wd++ {
			if wd == windows-1 {
				before = net.CounterSnapshot()
			}
			obs = sim.SimulateSignalWindow(net, probes, sim.SignalWindowConfig{ProbesPerPath: probesPerPath, Window: wd}, rng)
			if wd < windows-1 {
				record(obs, false)
			}
		}
		after := net.CounterSnapshot()
		sigs.Counters = func(l topo.LinkID) (int64, bool) { return after[l] - before[l], true }

		res, err := pll.Localize(probes, obs, pll.DefaultConfig())
		if err != nil {
			return row, err
		}
		scfg := pll.DefaultSignalConfig()

		// The diagnoser's split: lattice-filter the loss localization into
		// hard link-down alerts vs soft advisories, then add the signal-only
		// localization (faults the loss pipeline cannot see).
		verdicts := make(map[topo.LinkID]pll.VerdictClass)
		var hard, soft []topo.LinkID
		for _, v := range res.Bad {
			vc := pll.ClassifyVerdict(probes, obs, v.Link, sigs, scfg)
			verdicts[v.Link] = vc
			if vc == pll.VerdictCongested || vc == pll.VerdictDelayed {
				soft = append(soft, v.Link)
			} else {
				hard = append(hard, v.Link)
			}
		}
		sres := pll.LocalizeSignals(probes, obs, sigs, scfg, pll.DefaultConfig())
		for _, sv := range append(append([]pll.SoftVerdict(nil), sres.Congested...), sres.Delayed...) {
			if _, dup := verdicts[sv.Link]; !dup {
				verdicts[sv.Link] = sv.Class
				soft = append(soft, sv.Link)
			}
		}

		truth := make(map[topo.LinkID]bool)
		for _, l := range scen.BadLinks() {
			truth[l] = true
		}
		predicted := hard
		if !expect.Hard() {
			predicted = soft
		}
		pooled.Add(metrics.Compare(predicted, scen.BadLinks()))
		for _, l := range hard {
			if !truth[l] || !expect.Hard() {
				row.LinkDownFP++
			}
		}
		for _, l := range predicted {
			if truth[l] {
				verdictDen++
				if verdicts[l] == expect {
					verdictNum++
				}
			}
		}
	}

	row.Accuracy = pooled.Accuracy()
	row.FalsePositive = pooled.FalsePositiveRatio()
	if verdictDen > 0 {
		row.VerdictOK = float64(verdictNum) / float64(verdictDen)
	}
	return row, nil
}

// ScenarioSweep runs the gray-failure and congestion scenario suite (paper
// §7's failure-mode discrimination, evaluated Table-5 style): for each fault
// mode and concurrent-fault count it measures detection accuracy, false
// positives, false link-down pages and verdict correctness on a Fattree
// with a (1,β) probe matrix. p.Scenario restricts the sweep to one mode.
func ScenarioSweep(w io.Writer, p Params) ([]ScenarioRow, error) {
	k := p.K
	if k == 0 {
		if p.Big {
			k = 24
		} else {
			k = 16
		}
	}
	beta := p.Beta
	if beta == 0 {
		beta = 2
	}
	modes := sim.FaultModes()
	if p.Scenario != "" {
		m, err := sim.ParseFaultMode(p.Scenario)
		if err != nil {
			return nil, err
		}
		modes = []sim.FaultMode{m}
	}
	f, err := topo.NewFattree(k)
	if err != nil {
		return nil, err
	}
	probes, res, err := buildMatrix(f, 1, beta)
	if err != nil {
		return nil, err
	}

	rng := p.rng()
	var rows []ScenarioRow
	for _, mode := range modes {
		for _, nf := range ScenarioCounts {
			row, err := scenarioCell(f, probes, mode, nf, p.Trials, p.ProbesPerPath, rng)
			if err != nil {
				return nil, fmt.Errorf("scenario %s x%d: %w", mode, nf, err)
			}
			rows = append(rows, row)
		}
	}

	fmt.Fprintf(w, "Scenario suite: verdict lattice on Fattree(%d), (1,%d) matrix, %d paths\n", k, beta, len(res.Selected))
	t := newTable(w)
	t.row("mode", "faults", "detection", "false pos", "link-down FP", "verdict ok")
	for _, r := range rows {
		t.row(r.Mode, r.Failed, pct(r.Accuracy), pct(r.FalsePositive), r.LinkDownFP, pct(r.VerdictOK))
	}
	t.flush()
	return rows, nil
}
