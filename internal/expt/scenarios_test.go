package expt

import (
	"bytes"
	"testing"

	"github.com/detector-net/detector/internal/sim"
)

// TestScenarioSweepSmoke runs the fault-injection suite at CI scale and
// holds the acceptance floors: loss-class faults localize with high
// accuracy and no false positives, and congestion/delay-class faults never
// raise a hard link-down alert.
func TestScenarioSweepSmoke(t *testing.T) {
	var buf bytes.Buffer
	p := DefaultParams()
	p.K = 8
	p.Trials = 3
	p.ProbesPerPath = 200
	rows, err := ScenarioSweep(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", buf.String())
	if len(rows) != 6*len(ScenarioCounts) {
		t.Fatalf("rows = %d, want %d", len(rows), 6*len(ScenarioCounts))
	}
	for _, r := range rows {
		hard := expectedVerdict(r.Mode).Hard()
		if hard && r.Accuracy < 0.9 {
			t.Errorf("%s x%d: accuracy %.2f < 0.90", r.Mode, r.Failed, r.Accuracy)
		}
		switch r.Mode {
		case sim.ModeLossy, sim.ModeSilentPartial:
			// The gray-failure acceptance band: 0% false positives.
			if r.FalsePositive != 0 {
				t.Errorf("%s x%d: false-positive ratio %.2f, want 0", r.Mode, r.Failed, r.FalsePositive)
			}
		case sim.ModeFlapping:
			// Ten simultaneously dead links on a CI-sized Fattree is an
			// ambiguous instance (as in Table 5's high-count cells); bound
			// the false positives rather than forbidding them.
			if r.FalsePositive > 0.1 {
				t.Errorf("%s x%d: false-positive ratio %.2f > 0.10", r.Mode, r.Failed, r.FalsePositive)
			}
		}
		if !hard && r.LinkDownFP != 0 {
			t.Errorf("%s x%d: %d false link-down alerts, want 0", r.Mode, r.Failed, r.LinkDownFP)
		}
		if r.VerdictOK < 0.9 {
			t.Errorf("%s x%d: verdict-correct %.2f < 0.90", r.Mode, r.Failed, r.VerdictOK)
		}
	}
}
