// Package expt regenerates every table and figure of the deTector paper's
// evaluation (§4.4, §6). Each driver returns structured rows and renders a
// text table, so the same code backs the cmd/experiments CLI, the top-level
// benchmarks and EXPERIMENTS.md.
//
// Absolute numbers differ from the paper — the substrate is a simulator on
// commodity CPUs, not the authors' FPGA testbed — but each driver is built
// to reproduce the paper's *shape*: who wins, by roughly what factor, and
// where the knees are. Default sizes fit CI; the Big flag unlocks
// paper-scale instances.
package expt

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

// Params are shared experiment knobs.
type Params struct {
	// Trials is the number of random scenarios averaged per cell.
	Trials int
	// Seed makes runs reproducible.
	Seed int64
	// Big unlocks paper-scale instances (minutes of runtime).
	Big bool
	// K overrides the Fattree radix of the large-scale simulations
	// (Table 4 default 18, Table 5 default 24; the paper uses 48 for
	// Table 5 — pass K=48 with Big for the full-scale run).
	K int
	// ProbesPerPath is the per-window probe count of simulation drivers.
	ProbesPerPath int
	// Beta overrides the identifiability level of Table 5's probe matrix
	// (default 2, the paper's configuration). β=2 sweeps on Fattree(16)+
	// run on the exact incremental scoring engine; lowering to 1 isolates
	// what identifiability costs in paths and construction time.
	Beta int
	// Scenario restricts the fault-injection suite to one fault mode
	// (lossy, silent-partial, congested, delayed, incast, flapping);
	// empty sweeps all of them.
	Scenario string
}

// DefaultParams fits a CI box.
func DefaultParams() Params {
	return Params{Trials: 10, Seed: 1, ProbesPerPath: 400}
}

func (p Params) rng() *rand.Rand { return rand.New(rand.NewSource(p.Seed)) }

// table renders aligned rows.
type table struct {
	w *tabwriter.Writer
}

func newTable(w io.Writer) *table {
	return &table{w: tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)}
}

func (t *table) row(cols ...any) {
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(t.w, "\t")
		}
		fmt.Fprint(t.w, c)
	}
	fmt.Fprintln(t.w)
}

func (t *table) flush() { t.w.Flush() }

// fmtDur renders durations compactly for table cells.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

func pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }

// buildMatrix constructs and materializes a probe matrix for a Fattree.
func buildMatrix(f *topo.Fattree, alpha, beta int) (*route.Probes, *pmc.Result, error) {
	ps := route.NewFattreePaths(f)
	res, err := pmc.Construct(ps, f.NumLinks(), pmc.Options{
		Alpha: alpha, Beta: beta, Decompose: true, Lazy: true, Symmetry: true,
	})
	if err != nil {
		return nil, nil, err
	}
	return route.NewProbes(ps, res.Selected, f.NumLinks()), res, nil
}
