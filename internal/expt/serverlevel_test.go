package expt

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/shard"
	"github.com/detector-net/detector/internal/sim"
	"github.com/detector-net/detector/internal/topo"
)

// TestServerLevelSweepSmoke holds the acceptance floors of the
// approximate-partition plane on the matrix shape it exists for: the
// Fattree(16) server-level matrix collapses to one part under the exact
// policy, spreads under the approximate policy, and the merged verdicts
// stay within the gray-failure acceptance band (>=96% accuracy, zero
// false positives) at 1-10 concurrent solid-loss faults.
func TestServerLevelSweepSmoke(t *testing.T) {
	var buf bytes.Buffer
	p := DefaultParams()
	p.Trials = 3
	p.ProbesPerPath = 200
	res, err := ServerLevel(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", buf.String())

	if res.Exact.Partitions != 1 || res.Exact.Parts != 1 {
		t.Errorf("exact partition = %d parts on %d shards, want the server-level collapse to 1",
			res.Exact.Parts, res.Exact.Partitions)
	}
	if res.Exact.CutLinks != 0 {
		t.Errorf("exact policy cut %d links, want 0", res.Exact.CutLinks)
	}
	if res.Approx.Partitions < 2 {
		t.Errorf("approx partitions = %d, want >= 2 (the policy's whole point)", res.Approx.Partitions)
	}
	if res.Approx.Parts <= res.Exact.Parts {
		t.Errorf("approx parts = %d, want > exact's %d", res.Approx.Parts, res.Exact.Parts)
	}
	if res.Approx.CutLinks == 0 {
		t.Error("approx policy cut no links on a server-level matrix; the partition is vacuous")
	}
	if len(res.Rows) != len(ScenarioCounts) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(ScenarioCounts))
	}
	for _, r := range res.Rows {
		if r.Accuracy < 0.96 {
			t.Errorf("x%d faults: accuracy %.4f < 0.96", r.Failed, r.Accuracy)
		}
		if r.FalsePositive != 0 {
			t.Errorf("x%d faults: false-positive ratio %.4f, want 0", r.Failed, r.FalsePositive)
		}
		if r.Disagreements > res.DisagreementBound*p.Trials {
			t.Errorf("x%d faults: %d pooled disagreements exceed bound %d x %d trials",
				r.Failed, r.Disagreements, res.DisagreementBound, p.Trials)
		}
	}
}

// BenchmarkServerLevelLocalize compares one localization window on the
// Fattree(16) server-level matrix: unsharded global PLL, the exact plane
// (one partition — sharding is structurally a no-op) and the approximate
// plane (spread across four slots, reconciliation merge included).
func BenchmarkServerLevelLocalize(b *testing.B) {
	f, probes, err := serverLevelMatrix(16)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var covered []topo.LinkID
	for l := 0; l < probes.NumLinks; l++ {
		if len(probes.PathsThrough(topo.LinkID(l))) > 0 {
			covered = append(covered, topo.LinkID(l))
		}
	}
	scen := solidLossScenario(covered, 5, rng)
	net := sim.NewNetwork(f.Topology, scen)
	obs := sim.SimulateWindow(net, probes, sim.ProbeWindowConfig{ProbesPerPath: 200}, rng)
	cfg := pll.DefaultConfig()
	alive := []int{0, 1, 2, 3}

	b.Run("unsharded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pll.Localize(probes, obs, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, pol := range []shard.PartitionPolicy{shard.PartitionExact, shard.PartitionApprox} {
		pl := shard.NewPlaneWithPolicy(probes, alive, pol)
		b.Run(string(pol), func(b *testing.B) {
			b.ReportMetric(float64(pl.Stats().Partitions), "partitions")
			for i := 0; i < b.N; i++ {
				if _, err := pl.Localize(obs, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
