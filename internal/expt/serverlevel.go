package expt

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"github.com/detector-net/detector/internal/control"
	"github.com/detector-net/detector/internal/metrics"
	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/shard"
	"github.com/detector-net/detector/internal/sim"
	"github.com/detector-net/detector/internal/topo"
)

// ServerLevelRow is one failure-count cell of the server-level sharding
// sweep: the approximate-partition plane's merged verdicts scored against
// ground truth and against the unsharded global localizer.
type ServerLevelRow struct {
	Failed int
	// Accuracy and FalsePositive score the approximate plane's merged
	// verdicts against the injected faults, pooled over trials.
	Accuracy, FalsePositive float64
	// AgreeGlobal is the fraction of trials whose merged bad-link set is
	// identical to one global pll.Localize over the whole matrix.
	AgreeGlobal float64
	// Disagreements pools the merge's per-cut-link disagreement count —
	// the measured accuracy-bound surface the approximate policy trades
	// for parallelism.
	Disagreements int
}

// ServerLevelResult is the full sweep: both partition geometries plus the
// accuracy table.
type ServerLevelResult struct {
	// Exact and Approx describe the two policies' partitions of the same
	// served server-level matrix.
	Exact, Approx shard.PlaneStats
	// NumPaths is the served matrix's row count.
	NumPaths int
	// DisagreementBound is the static per-window bound on Disagreements:
	// the sum over shard-level cut links of (sharing shards - 1).
	DisagreementBound int
	Rows              []ServerLevelRow
}

// serverLevelMatrix boots an in-process controller on Fattree(k) and
// returns the served server-level probe matrix — the same pinger-expanded
// routes (pinger uplink, ToR-level links, responder downlink) the
// diagnoser fetches over HTTP, which is exactly the matrix shape that
// entangles the exact component partition into one part.
func serverLevelMatrix(k int) (*topo.Fattree, *route.Probes, error) {
	f, err := topo.NewFattree(k)
	if err != nil {
		return nil, nil, err
	}
	cfg := control.DefaultConfig()
	cfg.WindowMS = 100
	ctrl := control.New(f, cfg)
	defer ctrl.Close()
	if err := ctrl.RunCycle(nil); err != nil {
		return nil, nil, err
	}
	return f, ctrl.ProbeMatrix(), nil
}

// solidLossScenario fails nf distinct covered links with non-gray random
// loss at solid rates (log-uniform 10%-50%): the regime where the global
// localizer is reliable, so the sweep isolates what the approximate
// partition costs rather than what PLL costs.
func solidLossScenario(covered []topo.LinkID, nf int, rng *rand.Rand) *sim.Scenario {
	picked := make(map[topo.LinkID]bool, nf)
	fails := make([]sim.Failure, 0, nf)
	for len(fails) < nf {
		l := covered[rng.Intn(len(covered))]
		if picked[l] {
			continue
		}
		picked[l] = true
		p := math.Exp(math.Log(0.1) + rng.Float64()*math.Log(0.5/0.1))
		fails = append(fails, sim.Failure{Link: l, Model: sim.RandomLoss{P: p}, FromSwitch: -1})
	}
	return sim.NewScenario(fails...)
}

func badLinkSet(r *pll.Result) []topo.LinkID {
	out := make([]topo.LinkID, len(r.Bad))
	for i, v := range r.Bad {
		out[i] = v.Link
	}
	return out
}

func sameLinkSet(a, b []topo.LinkID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ServerLevel measures the server-level diagnosis sharding trade (the
// tentpole of the approximate-partition plane): on a Fattree(k)
// server-level matrix the exact component partition collapses to one part
// (every route carries its pinger's uplink, entangling the components), so
// the sweep builds both planes over four shard slots, verifies the
// approximate plane actually spreads, and scores its merged verdicts
// against ground truth and the unsharded localizer at 1-10 concurrent
// solid-loss faults.
func ServerLevel(w io.Writer, p Params) (*ServerLevelResult, error) {
	k := p.K
	if k == 0 {
		k = 16
		if p.Big {
			k = 24
		}
	}
	f, probes, err := serverLevelMatrix(k)
	if err != nil {
		return nil, err
	}

	alive := []int{0, 1, 2, 3}
	exact := shard.NewPlaneWithPolicy(probes, alive, shard.PartitionExact)
	approx := shard.NewPlaneWithPolicy(probes, alive, shard.PartitionApprox)
	res := &ServerLevelResult{
		Exact:    exact.Stats(),
		Approx:   approx.Stats(),
		NumPaths: probes.NumPaths(),
	}
	for _, c := range approx.CutLinks() {
		res.DisagreementBound += c.Parts - 1
	}

	var covered []topo.LinkID
	for l := 0; l < probes.NumLinks; l++ {
		if len(probes.PathsThrough(topo.LinkID(l))) > 0 {
			covered = append(covered, topo.LinkID(l))
		}
	}

	rng := p.rng()
	cfg := pll.DefaultConfig()
	for _, nf := range ScenarioCounts {
		row := ServerLevelRow{Failed: nf}
		var pooled metrics.Confusion
		agree := 0
		for tr := 0; tr < p.Trials; tr++ {
			scen := solidLossScenario(covered, nf, rng)
			net := sim.NewNetwork(f.Topology, scen)
			obs := sim.SimulateWindow(net, probes, sim.ProbeWindowConfig{ProbesPerPath: p.ProbesPerPath}, rng)
			merged, ms, err := approx.LocalizeCycleStats(nil, obs, cfg)
			if err != nil {
				return nil, fmt.Errorf("serverlevel x%d: %w", nf, err)
			}
			global, err := pll.Localize(probes, obs, cfg)
			if err != nil {
				return nil, fmt.Errorf("serverlevel x%d: %w", nf, err)
			}
			pooled.Add(metrics.Compare(badLinkSet(merged), scen.BadLinks()))
			if sameLinkSet(badLinkSet(merged), badLinkSet(global)) {
				agree++
			}
			row.Disagreements += ms.Disagreements
		}
		row.Accuracy = pooled.Accuracy()
		row.FalsePositive = pooled.FalsePositiveRatio()
		row.AgreeGlobal = float64(agree) / float64(p.Trials)
		res.Rows = append(res.Rows, row)
	}

	fmt.Fprintf(w, "Server-level sharding: Fattree(%d), %d served routes, %d shard slots\n",
		k, res.NumPaths, len(alive))
	t := newTable(w)
	t.row("policy", "parts", "partitions", "cut links", "max repl")
	t.row(res.Exact.Policy, res.Exact.Parts, res.Exact.Partitions, res.Exact.CutLinks, res.Exact.MaxReplication)
	t.row(res.Approx.Policy, res.Approx.Parts, res.Approx.Partitions, res.Approx.CutLinks, res.Approx.MaxReplication)
	t.flush()
	fmt.Fprintf(w, "per-window disagreement bound: %d\n", res.DisagreementBound)
	t = newTable(w)
	t.row("faults", "accuracy", "false pos", "agree global", "disagreements")
	for _, r := range res.Rows {
		t.row(r.Failed, pct(r.Accuracy), pct(r.FalsePositive), pct(r.AgreeGlobal), r.Disagreements)
	}
	t.flush()
	return res, nil
}
