package expt

import (
	"fmt"
	"io"
	"math/rand"

	"github.com/detector-net/detector/internal/baseline"
	"github.com/detector-net/detector/internal/metrics"
	"github.com/detector-net/detector/internal/sim"
	"github.com/detector-net/detector/internal/topo"
)

// Fig5Budgets is the probes-per-minute x-axis of the comparison.
var Fig5Budgets = []int{1800, 3600, 7200, 14400, 28800}

// Fig5Row is one (system, budget) cell.
type Fig5Row struct {
	System        string
	Budget        int
	ProbesSent    float64 // measured, includes localization probes
	Accuracy      float64
	FalsePositive float64
}

// comparisonTrial runs all three systems once against one scenario on the
// 4-ary testbed topology with a shared detection budget.
type comparison struct {
	f  *topo.Fattree
	d  *baseline.Detector
	pm *baseline.Pingmesh
	nn *baseline.NetNORAD
}

func newComparison(f *topo.Fattree) (*comparison, error) {
	probes, _, err := buildMatrix(f, 3, 1)
	if err != nil {
		return nil, err
	}
	return &comparison{
		f:  f,
		d:  baseline.NewDetector(f, probes),
		pm: baseline.NewPingmesh(f),
		nn: baseline.NewNetNORAD(f),
	}, nil
}

// fig56FailureConfig: random link-level failures per §6.3 (full,
// deterministic partial, random partial), loss rates detectable within a
// one-minute budget. Whole-switch events are excluded from the per-link
// scoring here because the paper scores them by failure *spot* ("operators
// can locate the failure spot according to the positions of most failed
// links", §6.4) while this harness scores per link; EXPERIMENTS.md records
// the substitution.
func fig56FailureConfig(n int) sim.FailureConfig {
	cfg := sim.DefaultFailureConfig()
	cfg.Failures = n
	cfg.MinRate = 0.01
	cfg.SwitchFrac = 0
	cfg.IncludeServerLinks = false
	return cfg
}

// runSystems executes one trial and returns per-system (bad links, probes).
func (c *comparison) runSystems(scen *sim.Scenario, budget int, rng *rand.Rand) (map[string][]topo.LinkID, map[string]int, error) {
	bad := make(map[string][]topo.LinkID)
	sent := make(map[string]int)

	dn := sim.NewNetwork(c.f.Topology, scen)
	got, n, err := c.d.Round(dn, budget, rng)
	if err != nil {
		return nil, nil, err
	}
	bad[c.d.Name()], sent[c.d.Name()] = got, n

	pn := sim.NewNetwork(c.f.Topology, scen)
	got, n = c.pm.Round(pn, pn, budget, rng)
	bad[c.pm.Name()], sent[c.pm.Name()] = got, n

	nn := sim.NewNetwork(c.f.Topology, scen)
	got, n = c.nn.Round(nn, nn, budget, rng)
	bad[c.nn.Name()], sent[c.nn.Name()] = got, n
	return bad, sent, nil
}

// Fig5 compares deTector, Pingmesh and NetNORAD accuracy/false positives as
// the probe budget grows, with one random failure per trial (paper Fig. 5).
// The paper's headline: deTector reaches 98% accuracy with ~3.9x fewer
// probes than Pingmesh and ~1.9x fewer than NetNORAD.
func Fig5(w io.Writer, p Params) ([]Fig5Row, error) {
	f := topo.MustFattree(4)
	c, err := newComparison(f)
	if err != nil {
		return nil, err
	}
	rng := p.rng()
	systems := []string{"deTector", "Pingmesh", "NetNORAD"}
	// Pre-draw the scenarios once: every budget point (and every system)
	// faces the same failures, so the sweep is a paired comparison.
	scens := make([]*sim.Scenario, p.Trials)
	for tr := range scens {
		scen, err := sim.Generate(f.Topology, fig56FailureConfig(1), rng)
		if err != nil {
			return nil, err
		}
		scens[tr] = scen
	}
	var rows []Fig5Row
	for _, budget := range Fig5Budgets {
		pooled := map[string]*metrics.Confusion{}
		probeSum := map[string]float64{}
		for _, s := range systems {
			pooled[s] = &metrics.Confusion{}
		}
		for tr := 0; tr < p.Trials; tr++ {
			scen := scens[tr]
			truth := switchOnly(f, scen.BadLinks())
			bad, sent, err := c.runSystems(scen, budget, rng)
			if err != nil {
				return nil, err
			}
			for _, s := range systems {
				pooled[s].Add(metrics.Compare(switchOnly(f, bad[s]), truth))
				probeSum[s] += float64(sent[s])
			}
		}
		for _, s := range systems {
			rows = append(rows, Fig5Row{
				System:        s,
				Budget:        budget,
				ProbesSent:    probeSum[s] / float64(p.Trials),
				Accuracy:      pooled[s].Accuracy(),
				FalsePositive: pooled[s].FalsePositiveRatio(),
			})
		}
	}

	fmt.Fprintln(w, "Figure 5: accuracy vs probes/minute, one failure (paper Fig. 5)")
	t := newTable(w)
	t.row("system", "budget", "probes sent", "accuracy", "false pos")
	for _, r := range rows {
		t.row(r.System, r.Budget, fmt.Sprintf("%.0f", r.ProbesSent), pct(r.Accuracy), pct(r.FalsePositive))
	}
	t.flush()
	return rows, nil
}

// Fig6Row is one (system, failure count) cell at the fixed budget.
type Fig6Row struct {
	System        string
	Failures      int
	Accuracy      float64
	FalsePositive float64
}

// Fig6Budget is the paper's fixed probe budget (probes per minute).
const Fig6Budget = 5850

// Fig6 fixes the budget and raises the number of concurrent failures
// (paper Fig. 6): deTector degrades gracefully while the replay-based
// localizers fall behind.
func Fig6(w io.Writer, p Params) ([]Fig6Row, error) {
	f := topo.MustFattree(4)
	c, err := newComparison(f)
	if err != nil {
		return nil, err
	}
	rng := p.rng()
	systems := []string{"deTector", "Pingmesh", "NetNORAD"}
	var rows []Fig6Row
	for _, nf := range []int{1, 2, 3, 4, 5, 6} {
		pooled := map[string]*metrics.Confusion{}
		for _, s := range systems {
			pooled[s] = &metrics.Confusion{}
		}
		for tr := 0; tr < p.Trials; tr++ {
			scen, err := sim.Generate(f.Topology, fig56FailureConfig(nf), rng)
			if err != nil {
				return nil, err
			}
			truth := switchOnly(f, scen.BadLinks())
			bad, _, err := c.runSystems(scen, Fig6Budget, rng)
			if err != nil {
				return nil, err
			}
			for _, s := range systems {
				pooled[s].Add(metrics.Compare(switchOnly(f, bad[s]), truth))
			}
		}
		for _, s := range systems {
			rows = append(rows, Fig6Row{
				System:        s,
				Failures:      nf,
				Accuracy:      pooled[s].Accuracy(),
				FalsePositive: pooled[s].FalsePositiveRatio(),
			})
		}
	}

	fmt.Fprintf(w, "Figure 6: accuracy vs concurrent failures at %d probes/min (paper Fig. 6)\n", Fig6Budget)
	t := newTable(w)
	t.row("system", "failures", "accuracy", "false pos")
	for _, r := range rows {
		t.row(r.System, r.Failures, pct(r.Accuracy), pct(r.FalsePositive))
	}
	t.flush()
	return rows, nil
}
