package expt

import (
	"fmt"
	"io"

	"github.com/detector-net/detector/internal/baseline"
	"github.com/detector-net/detector/internal/sim"
	"github.com/detector-net/detector/internal/topo"
)

// Table1Row is one monitoring system's measured capabilities: each cell is
// the fraction of drill trials the system handled (detected AND, where the
// column demands it, localized the failed link).
type Table1Row struct {
	System string
	// GrayFailure: silent drops invisible to counters.
	GrayFailure float64
	// LowRateLoss: 1.5% random loss on one link.
	LowRateLoss float64
	// Localization: full loss localized to the exact link.
	Localization float64
	// TransientFailure: failure clears before any post-alarm replay.
	TransientFailure float64
}

// Table1 is the capability drill behind the paper's qualitative Table 1:
// instead of claims, each cell is measured on the 4-ary testbed topology.
// SNMP sees loud failures only; Pingmesh/NetNORAD detect gray failures but
// dilute low-rate loss over ECMP and cannot replay transient failures;
// deTector handles all four.
func Table1(w io.Writer, p Params) ([]Table1Row, error) {
	f := topo.MustFattree(4)
	probes, _, err := buildMatrix(f, 3, 1)
	if err != nil {
		return nil, err
	}
	det := baseline.NewDetector(f, probes)
	pm := baseline.NewPingmesh(f)
	nn := baseline.NewNetNORAD(f)
	snmp := baseline.NewSNMP(f)
	rng := p.rng()
	links := f.SwitchLinks()
	const budget = 7200

	rows := map[string]*Table1Row{}
	for _, name := range []string{"SNMP/CLI", "Pingmesh", "NetNORAD", "deTector"} {
		rows[name] = &Table1Row{System: name}
	}
	hit := func(got []topo.LinkID, want topo.LinkID) bool {
		for _, l := range got {
			if l == want {
				return true
			}
		}
		return false
	}

	for tr := 0; tr < p.Trials; tr++ {
		bad := links[rng.Intn(len(links))]

		// Drill 1: gray failure (silent full loss). Detection+localization.
		scen := sim.NewScenario(sim.Failure{Link: bad, Model: sim.FullLoss{Gray: true}, FromSwitch: -1})
		run := func(mk func(n *sim.Network) []topo.LinkID) bool {
			return hit(mk(sim.NewNetwork(f.Topology, scen)), bad)
		}
		if run(func(n *sim.Network) []topo.LinkID { return snmp.Poll(n, rng) }) {
			rows["SNMP/CLI"].GrayFailure++
		}
		if run(func(n *sim.Network) []topo.LinkID { g, _ := pm.Round(n, n, budget, rng); return g }) {
			rows["Pingmesh"].GrayFailure++
		}
		if run(func(n *sim.Network) []topo.LinkID { g, _ := nn.Round(n, n, budget, rng); return g }) {
			rows["NetNORAD"].GrayFailure++
		}
		if run(func(n *sim.Network) []topo.LinkID { g, _, _ := det.Round(n, budget, rng); return g }) {
			rows["deTector"].GrayFailure++
		}

		// Drill 2: low-rate loss (1.5%).
		scen = sim.NewScenario(sim.Failure{Link: bad, Model: sim.RandomLoss{P: 0.015}, FromSwitch: -1})
		if run(func(n *sim.Network) []topo.LinkID { return snmp.Poll(n, rng) }) {
			rows["SNMP/CLI"].LowRateLoss++
		}
		if run(func(n *sim.Network) []topo.LinkID { g, _ := pm.Round(n, n, budget, rng); return g }) {
			rows["Pingmesh"].LowRateLoss++
		}
		if run(func(n *sim.Network) []topo.LinkID { g, _ := nn.Round(n, n, budget, rng); return g }) {
			rows["NetNORAD"].LowRateLoss++
		}
		if run(func(n *sim.Network) []topo.LinkID { g, _, _ := det.Round(n, budget, rng); return g }) {
			rows["deTector"].LowRateLoss++
		}

		// Drill 3: localization of a loud full loss.
		scen = sim.NewScenario(sim.Failure{Link: bad, Model: sim.FullLoss{}, FromSwitch: -1})
		if run(func(n *sim.Network) []topo.LinkID { return snmp.Poll(n, rng) }) {
			rows["SNMP/CLI"].Localization++
		}
		if run(func(n *sim.Network) []topo.LinkID { g, _ := pm.Round(n, n, budget, rng); return g }) {
			rows["Pingmesh"].Localization++
		}
		if run(func(n *sim.Network) []topo.LinkID { g, _ := nn.Round(n, n, budget, rng); return g }) {
			rows["NetNORAD"].Localization++
		}
		if run(func(n *sim.Network) []topo.LinkID { g, _, _ := det.Round(n, budget, rng); return g }) {
			rows["deTector"].Localization++
		}

		// Drill 4: transient failure — present during detection, gone
		// before any localization replay. SNMP still sees the counters it
		// already polled, so it "handles" transients for loud failures.
		failed := sim.NewNetwork(f.Topology, scen)
		healthy := sim.NewNetwork(f.Topology, nil)
		if g := snmp.Poll(failed, rng); hit(g, bad) {
			rows["SNMP/CLI"].TransientFailure++
		}
		if g, _ := pm.Round(failed, healthy, budget, rng); hit(g, bad) {
			rows["Pingmesh"].TransientFailure++
		}
		if g, _ := nn.Round(failed, healthy, budget, rng); hit(g, bad) {
			rows["NetNORAD"].TransientFailure++
		}
		if g, _, _ := det.Round(failed, budget, rng); hit(g, bad) {
			rows["deTector"].TransientFailure++
		}
	}

	var out []Table1Row
	fmt.Fprintln(w, "Table 1: measured capability drill (paper Table 1, qualitative)")
	t := newTable(w)
	t.row("system", "gray failure", "low-rate loss", "localization", "transient")
	for _, name := range []string{"SNMP/CLI", "Pingmesh", "NetNORAD", "deTector"} {
		r := rows[name]
		n := float64(p.Trials)
		r.GrayFailure /= n
		r.LowRateLoss /= n
		r.Localization /= n
		r.TransientFailure /= n
		out = append(out, *r)
		t.row(r.System, pct(r.GrayFailure), pct(r.LowRateLoss), pct(r.Localization), pct(r.TransientFailure))
	}
	t.flush()
	return out, nil
}
