package expt

import (
	"fmt"
	"io"

	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

// Table3Row is one topology's selected-path counts at the paper's three
// (α, β) operating points (paper Table 3).
type Table3Row struct {
	Name     string
	Original int
	// Selected[i] is the path count for configs (1,0), (1,1), (3,2).
	Selected [3]int
}

// Table3Configs are the paper's columns.
var Table3Configs = [3][2]int{{1, 0}, {1, 1}, {3, 2}}

// Table3 counts PMC-selected paths per (α, β). Defaults run Fattree(16),
// VL2(20,12,20) and BCube(4,2); Big adds Fattree(32), VL2(72,48,40) and
// BCube(8,2) — half the paper's largest column, enough to check the
// selected-to-original ratio trend.
func Table3(w io.Writer, p Params) ([]Table3Row, error) {
	var cases []table2Case
	f := topo.MustFattree(16)
	cases = append(cases, table2Case{f.Name, f.Topology, route.NewFattreePaths(f)})
	v := topo.MustVL2(20, 12, 20)
	cases = append(cases, table2Case{v.Name, v.Topology, route.NewVL2Paths(v)})
	b := topo.MustBCube(4, 2)
	cases = append(cases, table2Case{b.Name, b.Topology, route.NewBCubePaths(b)})
	if p.Big {
		f32 := topo.MustFattree(32)
		cases = append(cases, table2Case{f32.Name, f32.Topology, route.NewFattreePaths(f32)})
		v2 := topo.MustVL2(72, 48, 40)
		cases = append(cases, table2Case{v2.Name, v2.Topology, route.NewVL2Paths(v2)})
		b2 := topo.MustBCube(8, 2)
		cases = append(cases, table2Case{b2.Name, b2.Topology, route.NewBCubePaths(b2)})
	}

	var rows []Table3Row
	for _, c := range cases {
		row := Table3Row{Name: c.name, Original: c.paths.Len()}
		for i, cfg := range Table3Configs {
			res, err := pmc.Construct(c.paths, c.topo.NumLinks(), pmc.Options{
				Alpha: cfg[0], Beta: cfg[1],
				Decompose: true, Lazy: true, Symmetry: true,
			})
			if err != nil {
				return nil, fmt.Errorf("table3 %s (%d,%d): %w", c.name, cfg[0], cfg[1], err)
			}
			row.Selected[i] = len(res.Selected)
		}
		rows = append(rows, row)
	}

	fmt.Fprintln(w, "Table 3: selected paths per (alpha, beta) (paper Table 3)")
	t := newTable(w)
	t.row("DCN", "original", "(1,0)", "(1,1)", "(3,2)")
	for _, r := range rows {
		t.row(r.Name, r.Original, r.Selected[0], r.Selected[1], r.Selected[2])
	}
	t.flush()
	return rows, nil
}
