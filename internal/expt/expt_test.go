package expt

import (
	"bytes"
	"strings"
	"testing"
)

func tiny() Params {
	return Params{Trials: 3, Seed: 7, ProbesPerPath: 200}
}

func TestTable1Shape(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table1(&buf, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.System] = r
	}
	// The paper's qualitative claims, measured:
	if byName["SNMP/CLI"].GrayFailure > 0 {
		t.Error("SNMP should miss gray failures")
	}
	if byName["deTector"].GrayFailure < 0.9 {
		t.Errorf("deTector gray-failure rate %.2f, want ~1", byName["deTector"].GrayFailure)
	}
	if byName["deTector"].LowRateLoss <= byName["Pingmesh"].LowRateLoss {
		t.Error("deTector should beat Pingmesh on low-rate loss")
	}
	if byName["deTector"].TransientFailure < 0.9 {
		t.Errorf("deTector transient rate %.2f, want ~1", byName["deTector"].TransientFailure)
	}
	if byName["Pingmesh"].TransientFailure > 0.2 {
		t.Errorf("Pingmesh transient rate %.2f, want ~0", byName["Pingmesh"].TransientFailure)
	}
	if !strings.Contains(buf.String(), "Table 1") {
		t.Error("missing rendered table")
	}
}

func TestTable2Shape(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table2(&buf, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Symmetry <= 0 || r.Lazy <= 0 || r.Decompose <= 0 {
			t.Fatalf("%s: non-positive timings: %+v", r.Name, r)
		}
		// The paper's Table 2 shape: each optimization level is no slower
		// than ~the previous by more than noise, and symmetry is the
		// fastest by a clear margin on Fattree.
		if strings.HasPrefix(r.Name, "Fattree") && !r.SkippedStrawman {
			if r.Symmetry > r.Strawman {
				t.Errorf("%s: symmetry (%v) slower than strawman (%v)", r.Name, r.Symmetry, r.Strawman)
			}
		}
	}
}

func TestTable3Shape(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table3(&buf, tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Selected counts grow with stricter targets and stay far below
		// the original path count (the point of PMC).
		if !(r.Selected[0] <= r.Selected[1] && r.Selected[1] <= r.Selected[2]) {
			t.Errorf("%s: counts not monotone: %v", r.Name, r.Selected)
		}
		if r.Selected[2] >= r.Original/2 {
			t.Errorf("%s: (3,2) selected %d of %d — no reduction", r.Name, r.Selected[2], r.Original)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	var buf bytes.Buffer
	p := tiny()
	p.Trials = 5
	rows, err := Table4(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	// The paper's headline shape, checked where the signal is strong: at
	// 10 concurrent failures identifiability separates the configs —
	// (1,1) must clearly beat (1,0), and (1,2) must stay high.
	acc := func(alpha, beta, idx int) float64 {
		for _, r := range rows {
			if r.Alpha == alpha && r.Beta == beta {
				return r.Accuracy[idx]
			}
		}
		t.Fatalf("missing row (%d,%d)", alpha, beta)
		return 0
	}
	if acc(1, 1, 2) <= acc(1, 0, 2) {
		t.Errorf("at 10 failures (1,1)=%.2f should beat (1,0)=%.2f", acc(1, 1, 2), acc(1, 0, 2))
	}
	if acc(1, 2, 2)+0.05 < acc(1, 1, 2) {
		t.Errorf("at 10 failures (1,2)=%.2f should not trail (1,1)=%.2f", acc(1, 2, 2), acc(1, 1, 2))
	}
	if acc(1, 2, 0) < 0.9 {
		t.Errorf("(1,2) single-failure accuracy %.2f, want >= 0.9", acc(1, 2, 0))
	}
}

func TestTable5Shape(t *testing.T) {
	var buf bytes.Buffer
	p := tiny()
	p.K = 8
	p.Trials = 5
	rows, err := Table5(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(FailedLinkCounts) {
		t.Fatalf("%d rows, want %d", len(rows), len(FailedLinkCounts))
	}
	for _, r := range rows {
		// At k=8 the 50-failure point fails a fifth of all links — far
		// denser than the paper's 50/55k at k=48 — so thresholds apply to
		// the paper-comparable sparse regime only (<= 10 concurrent).
		if r.Failed > 10 {
			continue
		}
		if r.Accuracy < 0.85 {
			t.Errorf("%d failures: accuracy %.2f below 85%%", r.Failed, r.Accuracy)
		}
		if r.FalsePositive > 0.1 {
			t.Errorf("%d failures: false positives %.2f above 10%%", r.Failed, r.FalsePositive)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	var buf bytes.Buffer
	p := tiny()
	p.Trials = 6
	rows, err := Fig4(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig4Frequencies) {
		t.Fatalf("%d rows, want %d", len(rows), len(Fig4Frequencies))
	}
	// Overhead grows linearly with frequency; accuracy does not decrease
	// (noise aside, compare the extremes).
	first, last := rows[0], rows[len(rows)-1]
	if last.BandwidthKbps <= first.BandwidthKbps {
		t.Error("bandwidth should grow with frequency")
	}
	if last.Accuracy < first.Accuracy-0.05 {
		t.Errorf("accuracy degraded with more probes: %.2f -> %.2f", first.Accuracy, last.Accuracy)
	}
	if last.RTTMean <= 0 || last.Jitter <= 0 {
		t.Error("latency model returned non-positive values")
	}
	// RTT stays flat: within 2x across the sweep (the paper's point).
	if last.RTTMean > 2*first.RTTMean {
		t.Errorf("probing frequency blew up workload RTT: %v -> %v", first.RTTMean, last.RTTMean)
	}
}

func TestFig5Shape(t *testing.T) {
	var buf bytes.Buffer
	p := tiny()
	p.Trials = 6
	rows, err := Fig5(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	acc := map[string]map[int]float64{}
	for _, r := range rows {
		if acc[r.System] == nil {
			acc[r.System] = map[int]float64{}
		}
		acc[r.System][r.Budget] = r.Accuracy
	}
	top := Fig5Budgets[len(Fig5Budgets)-1]
	// At every budget deTector leads or ties; at the top budget it should
	// be clearly ahead of Pingmesh (the 3.9x headline).
	for _, b := range Fig5Budgets {
		if acc["deTector"][b]+0.15 < acc["Pingmesh"][b] {
			t.Errorf("budget %d: deTector %.2f far below Pingmesh %.2f", b, acc["deTector"][b], acc["Pingmesh"][b])
		}
	}
	if acc["deTector"][top] <= acc["Pingmesh"][Fig5Budgets[0]] && acc["deTector"][top] < 0.9 {
		t.Errorf("deTector top-budget accuracy %.2f too low", acc["deTector"][top])
	}
}

func TestFig6Shape(t *testing.T) {
	var buf bytes.Buffer
	p := tiny()
	p.Trials = 6
	rows, err := Fig6(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	// deTector should lead both baselines at every failure count (pooled
	// across the sweep to damp noise).
	sum := map[string]float64{}
	for _, r := range rows {
		sum[r.System] += r.Accuracy
	}
	if sum["deTector"] <= sum["Pingmesh"] || sum["deTector"] <= sum["NetNORAD"] {
		t.Errorf("deTector total %.2f should lead Pingmesh %.2f and NetNORAD %.2f",
			sum["deTector"], sum["Pingmesh"], sum["NetNORAD"])
	}
}
