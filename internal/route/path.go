// Package route enumerates the candidate probe paths of a data-center
// topology and exposes them as compact PathSets — the rows of the routing
// matrix R from deTector §4.1.
//
// Candidate paths follow the paper's conventions: one path per (ordered ToR
// pair, via-node). For a k-ary Fattree the via-node is a core switch (k²/4
// candidates per pair), for VL2 it is an (up-agg, intermediate, down-agg)
// triple, and for BCube the k+1 parallel paths of BuildPathSet. These
// conventions reproduce the paper's "# of original paths" column in
// Tables 2 and 3 exactly.
package route

import (
	"fmt"

	"github.com/detector-net/detector/internal/topo"
)

// PathSet is a read-only, index-addressed collection of candidate probe
// paths. Implementations are compact: links are derived on demand so that
// multi-million-path sets (Fattree(24) has 11,902,464 candidates) need no
// per-path storage.
type PathSet interface {
	// Len returns the number of candidate paths.
	Len() int
	// AppendLinks appends the undirected link set of path i to buf and
	// returns the extended slice. The result is a set: no duplicates.
	AppendLinks(i int, buf []topo.LinkID) []topo.LinkID
	// Endpoints returns the source and destination nodes of path i
	// (ToR switches for Fattree/VL2, servers for BCube).
	Endpoints(i int) (src, dst topo.NodeID)
}

// Symmetric is implemented by PathSets of topology families with known
// automorphism shift generators (paper §4.3, Observation 3). PMC's symmetry
// speedup restricts greedy scoring to orbit representatives and expands
// selections to their orbit images.
type Symmetric interface {
	PathSet
	// IsRepresentative reports whether path i is the canonical member of
	// its orbit under the family's shift generator.
	IsRepresentative(i int) bool
	// AppendOrbit appends the non-canonical images of path i's orbit
	// (every orbit member except i itself) to buf.
	AppendOrbit(i int, buf []int) []int
}

// HopsProvider is implemented by PathSets that can produce the switch-level
// hop sequence of a path, which the fabric needs for source routing.
type HopsProvider interface {
	// HasHops reports whether hop sequences are available; AppendHops may
	// only be called when it returns true.
	HasHops() bool
	// AppendHops appends the ordered node sequence of path i, from source
	// to destination inclusive.
	AppendHops(i int, buf []topo.NodeID) []topo.NodeID
}

// Describe renders path i of ps for logs and error messages.
func Describe(ps PathSet, t *topo.Topology, i int) string {
	src, dst := ps.Endpoints(i)
	links := ps.AppendLinks(i, nil)
	return fmt.Sprintf("path %d: %s -> %s (%d links)", i, t.Node(src).Name, t.Node(dst).Name, len(links))
}

// orderedPair maps an ordered pair (s, d) with s != d over n items to a
// dense index in [0, n*(n-1)).
func orderedPair(s, d, n int) int {
	if d > s {
		d--
	}
	return s*(n-1) + d
}

// unpackPair inverts orderedPair.
func unpackPair(idx, n int) (s, d int) {
	s = idx / (n - 1)
	d = idx % (n - 1)
	if d >= s {
		d++
	}
	return s, d
}
