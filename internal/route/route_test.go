package route

import (
	"testing"

	"github.com/detector-net/detector/internal/topo"
)

// TestFattreeOriginalPathCounts pins the "# of original paths" column of
// paper Table 2 for Fattree: ordered ToR pairs times cores.
func TestFattreeOriginalPathCounts(t *testing.T) {
	cases := []struct {
		k    int
		want int
	}{
		{12, 184032},
		{24, 11902464},
	}
	for _, c := range cases {
		f := topo.MustFattree(c.k)
		ps := NewFattreePaths(f)
		if got := ps.Len(); got != c.want {
			t.Errorf("Fattree(%d): %d paths, want %d", c.k, got, c.want)
		}
	}
}

// TestVL2OriginalPathCounts pins VL2 path counts. VL2(40,24,40) matches
// Table 2 exactly (4,588,800 ordered-pair paths). The paper's VL2(20,12,20)
// entry (70,800) is the unordered-pair count — the only row of Table 2 with
// that convention — so here it appears doubled.
func TestVL2OriginalPathCounts(t *testing.T) {
	v := topo.MustVL2(40, 24, 40)
	ps := NewVL2Paths(v)
	if got := ps.Len(); got != 4588800 {
		t.Errorf("VL2(40,24,40): %d paths, want 4588800", got)
	}
	v2 := topo.MustVL2(20, 12, 20)
	ps2 := NewVL2Paths(v2)
	if got := ps2.Len(); got != 2*70800 {
		t.Errorf("VL2(20,12,20): %d paths, want %d (2x the paper's unordered count)", got, 2*70800)
	}
}

// TestBCubeOriginalPathCounts pins BCube path counts from Table 2.
func TestBCubeOriginalPathCounts(t *testing.T) {
	cases := []struct {
		n, k int
		want int
	}{
		{4, 2, 12096},
		{8, 2, 784896},
	}
	for _, c := range cases {
		b := topo.MustBCube(c.n, c.k)
		ps := NewBCubePaths(b)
		if got := ps.Len(); got != c.want {
			t.Errorf("BCube(%d,%d): %d paths, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestOrderedPairRoundTrip(t *testing.T) {
	n := 7
	seen := make(map[int]bool)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			idx := orderedPair(s, d, n)
			if idx < 0 || idx >= n*(n-1) {
				t.Fatalf("orderedPair(%d,%d) = %d out of range", s, d, idx)
			}
			if seen[idx] {
				t.Fatalf("orderedPair(%d,%d) = %d collides", s, d, idx)
			}
			seen[idx] = true
			s2, d2 := unpackPair(idx, n)
			if s2 != s || d2 != d {
				t.Fatalf("unpackPair(%d) = (%d,%d), want (%d,%d)", idx, s2, d2, s, d)
			}
		}
	}
	if len(seen) != n*(n-1) {
		t.Fatalf("pair index space not dense: %d of %d", len(seen), n*(n-1))
	}
}

func TestFattreePathsEncodeDecode(t *testing.T) {
	f := topo.MustFattree(8)
	ps := NewFattreePaths(f)
	for _, i := range []int{0, 1, 1000, ps.Len() - 1} {
		s, d, c := ps.Decode(i)
		if got := ps.Encode(s, d, c); got != i {
			t.Fatalf("Encode(Decode(%d)) = %d", i, got)
		}
	}
}

// TestFattreePathsLinksValid checks every sampled path has 3 or 4 distinct
// switch-tier links.
func TestFattreePathsLinksValid(t *testing.T) {
	f := topo.MustFattree(8)
	ps := NewFattreePaths(f)
	var buf []topo.LinkID
	for i := 0; i < ps.Len(); i += 97 {
		buf = ps.AppendLinks(i, buf[:0])
		if len(buf) != 3 && len(buf) != 4 {
			t.Fatalf("path %d has %d links", i, len(buf))
		}
		for _, l := range buf {
			if f.Link(l).Tier == topo.TierServerEdge {
				t.Fatalf("path %d uses a server link", i)
			}
		}
	}
}

// TestFattreeDecomposition verifies Observation 1: a k-ary Fattree's routing
// matrix decomposes into exactly k/2 components, one per aggregation
// position, and the generic union-find discovers the same grouping as the
// analytic Component method.
func TestFattreeDecomposition(t *testing.T) {
	f := topo.MustFattree(8)
	ps := NewFattreePaths(f)
	comps := Decompose(ps, f.NumLinks())
	if len(comps) != f.Half() {
		t.Fatalf("Fattree(8): %d components, want %d", len(comps), f.Half())
	}
	total := 0
	for ci, comp := range comps {
		total += len(comp.Paths)
		// Inter-switch links split evenly: k^3/2 links over k/2 components.
		want := f.K * f.K * f.K / 2 / f.Half()
		if len(comp.Links) != want {
			t.Errorf("component %d: %d links, want %d", ci, len(comp.Links), want)
		}
		for _, pi := range comp.Paths[:min(len(comp.Paths), 500)] {
			if got := ps.Component(int(pi)); got != analyticComponentOf(f, comps, ci) {
				// Map generic component index to analytic group via any
				// member path; consistency is what matters.
				t.Fatalf("component %d path %d maps to analytic group %d", ci, pi, got)
			}
		}
	}
	if total != ps.Len() {
		t.Fatalf("components cover %d paths, want %d", total, ps.Len())
	}
}

// analyticComponentOf returns the analytic core group shared by the paths of
// generic component ci, verifying all members agree.
func analyticComponentOf(f *topo.Fattree, comps []Component, ci int) int {
	ps := NewFattreePaths(f)
	return ps.Component(int(comps[ci].Paths[0]))
}

// TestVL2AndBCubeSingleComponent verifies the paper's observation that
// decomposition does not apply to VL2 and BCube.
func TestVL2AndBCubeSingleComponent(t *testing.T) {
	v := topo.MustVL2(8, 4, 2)
	vps := NewVL2Paths(v)
	if comps := Decompose(vps, v.NumLinks()); len(comps) != 1 {
		t.Errorf("VL2: %d components, want 1", len(comps))
	}
	b := topo.MustBCube(4, 1)
	bps := NewBCubePaths(b)
	if comps := Decompose(bps, b.NumLinks()); len(comps) != 1 {
		t.Errorf("BCube: %d components, want 1", len(comps))
	}
}

// TestSymmetryOrbitsPreserveStructure: orbit images of a path must be valid
// candidate paths with the same link count, and representatives must tile
// the whole set (every path is in exactly one representative's orbit).
func TestSymmetryOrbitsPreserveStructure(t *testing.T) {
	f := topo.MustFattree(4)
	ps := NewFattreePaths(f)
	covered := make([]int, ps.Len())
	var orbit []int
	nRep := 0
	for i := 0; i < ps.Len(); i++ {
		if !ps.IsRepresentative(i) {
			continue
		}
		nRep++
		covered[i]++
		want := len(ps.AppendLinks(i, nil))
		orbit = ps.AppendOrbit(i, orbit[:0])
		for _, img := range orbit {
			covered[img]++
			if got := len(ps.AppendLinks(img, nil)); got != want {
				t.Fatalf("orbit image %d of %d has %d links, want %d", img, i, got, want)
			}
		}
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("path %d covered %d times by orbits, want exactly 1", i, c)
		}
	}
	if nRep*f.K != ps.Len() {
		t.Fatalf("representatives %d x k=%d != %d paths", nRep, f.K, ps.Len())
	}
}

func TestVL2SymmetryTiling(t *testing.T) {
	v := topo.MustVL2(8, 4, 1)
	ps := NewVL2Paths(v)
	covered := make([]int, ps.Len())
	var orbit []int
	for i := 0; i < ps.Len(); i++ {
		if !ps.IsRepresentative(i) {
			continue
		}
		covered[i]++
		orbit = ps.AppendOrbit(i, orbit[:0])
		for _, img := range orbit {
			covered[img]++
		}
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("VL2 path %d covered %d times, want 1", i, c)
		}
	}
}

func TestBCubeSymmetryTiling(t *testing.T) {
	b := topo.MustBCube(3, 1)
	ps := NewBCubePaths(b)
	covered := make([]int, ps.Len())
	var orbit []int
	for i := 0; i < ps.Len(); i++ {
		if !ps.IsRepresentative(i) {
			continue
		}
		covered[i]++
		orbit = ps.AppendOrbit(i, orbit[:0])
		for _, img := range orbit {
			covered[img]++
		}
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("BCube path %d covered %d times, want 1", i, c)
		}
	}
}

func TestMaterializeAndProbes(t *testing.T) {
	f := topo.MustFattree(4)
	ps := NewFattreePaths(f)
	sel := []int{0, 5, 10, 200}
	probes := NewProbes(ps, sel, f.NumLinks())
	if probes.NumPaths() != len(sel) {
		t.Fatalf("NumPaths = %d, want %d", probes.NumPaths(), len(sel))
	}
	for i, idx := range sel {
		want := ps.AppendLinks(idx, nil)
		if len(probes.PathLinks[i]) != len(want) {
			t.Fatalf("path %d: %d links, want %d", i, len(probes.PathLinks[i]), len(want))
		}
		for _, l := range want {
			found := false
			for _, pl := range probes.PathsThrough(l) {
				if int(pl) == i {
					found = true
				}
			}
			if !found {
				t.Fatalf("inverted index misses path %d on link %d", i, l)
			}
		}
	}
	sps := Materialize(ps, sel)
	if sps.Len() != len(sel) {
		t.Fatalf("Materialize len = %d, want %d", sps.Len(), len(sel))
	}
	if sps.HopsLists == nil {
		t.Fatal("Materialize dropped hops from a HopsProvider")
	}
}

func TestECMPFattreePathDeterministicPerFlow(t *testing.T) {
	f := topo.MustFattree(4)
	src := f.ServerID[0][0][0]
	dst := f.ServerID[2][1][1]
	l1, h1 := ECMPFattreePath(f, src, dst, 12345)
	l2, _ := ECMPFattreePath(f, src, dst, 12345)
	if len(l1) != len(l2) {
		t.Fatal("same flow hash produced different paths")
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("same flow hash produced different paths")
		}
	}
	if len(l1) != 6 {
		t.Fatalf("inter-pod server path: %d links, want 6", len(l1))
	}
	if len(h1) != 5 {
		t.Fatalf("inter-pod server path: %d switch hops, want 5", len(h1))
	}
}

// TestECMPSpreadsFlows checks that varying the flow hash exercises every
// parallel path with roughly uniform frequency.
func TestECMPSpreadsFlows(t *testing.T) {
	f := topo.MustFattree(4)
	src := f.ServerID[0][0][0]
	dst := f.ServerID[3][0][0]
	coreSeen := map[topo.NodeID]int{}
	const trials = 4000
	for i := 0; i < trials; i++ {
		_, hops := ECMPFattreePath(f, src, dst, uint64(i)*2654435761)
		coreSeen[hops[2]]++ // hop 2 is the core
	}
	if len(coreSeen) != f.NumCores() {
		t.Fatalf("ECMP used %d cores, want %d", len(coreSeen), f.NumCores())
	}
	for c, n := range coreSeen {
		frac := float64(n) / trials
		if frac < 0.15 || frac > 0.35 {
			t.Errorf("core %d gets %.1f%% of flows, want ~25%%", c, 100*frac)
		}
	}
}

func TestECMPSameEdgePath(t *testing.T) {
	f := topo.MustFattree(4)
	src := f.ServerID[0][0][0]
	dst := f.ServerID[0][0][1]
	links, hops := ECMPFattreePath(f, src, dst, 99)
	if len(links) != 2 || len(hops) != 1 {
		t.Fatalf("same-edge path: %d links %d hops, want 2 and 1", len(links), len(hops))
	}
}

func TestFattreeServerPathViaCore(t *testing.T) {
	f := topo.MustFattree(4)
	src := f.ServerID[0][0][0]
	dst := f.ServerID[1][1][0]
	for c := 0; c < f.NumCores(); c++ {
		links, hops := FattreeServerPath(f, src, dst, c)
		if len(links) != 6 {
			t.Fatalf("core %d: %d links, want 6", c, len(links))
		}
		if hops[2] != f.CoreID[c] {
			t.Fatalf("core %d: path routed via %d", c, hops[2])
		}
	}
}

func TestCoverageHistogramAndEvenness(t *testing.T) {
	f := topo.MustFattree(4)
	ps := NewFattreePaths(f)
	sel := []int{0, 1, 2, 3}
	sub := Materialize(ps, sel)
	cov := CoverageHistogram(sub, f.NumLinks())
	if len(cov) == 0 {
		t.Fatal("empty coverage histogram")
	}
	gap := EvennessGap(cov, f.SwitchLinks())
	if gap <= 0 {
		t.Fatalf("4 paths cannot evenly cover all links; gap = %d", gap)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
