package route

import (
	"fmt"
	"sort"

	"github.com/detector-net/detector/internal/topo"
)

// SlicePathSet is an explicit PathSet backed by slices. It is the generic
// representation for hand-built matrices (tests, file-loaded matrices) and
// for probe matrices extracted from larger candidate sets.
type SlicePathSet struct {
	LinkSets  [][]topo.LinkID
	Ends      [][2]topo.NodeID
	HopsLists [][]topo.NodeID // optional; nil when unknown
}

var _ PathSet = (*SlicePathSet)(nil)

// NewSlicePathSet builds a SlicePathSet from explicit link sets. Endpoints
// default to zero nodes when ends is nil.
func NewSlicePathSet(linkSets [][]topo.LinkID, ends [][2]topo.NodeID) *SlicePathSet {
	if ends == nil {
		ends = make([][2]topo.NodeID, len(linkSets))
	}
	if len(ends) != len(linkSets) {
		panic(fmt.Sprintf("route: %d link sets but %d endpoint pairs", len(linkSets), len(ends)))
	}
	return &SlicePathSet{LinkSets: linkSets, Ends: ends}
}

// Len implements PathSet.
func (s *SlicePathSet) Len() int { return len(s.LinkSets) }

// AppendLinks implements PathSet.
func (s *SlicePathSet) AppendLinks(i int, buf []topo.LinkID) []topo.LinkID {
	return append(buf, s.LinkSets[i]...)
}

// Endpoints implements PathSet.
func (s *SlicePathSet) Endpoints(i int) (src, dst topo.NodeID) {
	return s.Ends[i][0], s.Ends[i][1]
}

// HasHops implements HopsProvider.
func (s *SlicePathSet) HasHops() bool { return s.HopsLists != nil }

// AppendHops implements HopsProvider when hop lists were recorded.
func (s *SlicePathSet) AppendHops(i int, buf []topo.NodeID) []topo.NodeID {
	if s.HopsLists == nil {
		panic("route: SlicePathSet has no recorded hops")
	}
	return append(buf, s.HopsLists[i]...)
}

// Materialize copies the selected paths of ps into a SlicePathSet,
// preserving hop sequences when ps provides them. selected indices refer to
// ps; the result is indexed 0..len(selected)-1.
func Materialize(ps PathSet, selected []int) *SlicePathSet {
	out := &SlicePathSet{
		LinkSets: make([][]topo.LinkID, len(selected)),
		Ends:     make([][2]topo.NodeID, len(selected)),
	}
	hp, hasHops := ps.(HopsProvider)
	hasHops = hasHops && hp.HasHops()
	if hasHops {
		out.HopsLists = make([][]topo.NodeID, len(selected))
	}
	for i, idx := range selected {
		out.LinkSets[i] = ps.AppendLinks(idx, nil)
		s, d := ps.Endpoints(idx)
		out.Ends[i] = [2]topo.NodeID{s, d}
		if hasHops {
			out.HopsLists[i] = hp.AppendHops(idx, nil)
		}
	}
	return out
}

// CoverageHistogram returns, for every link covered by at least one path of
// ps, the number of paths covering it. Useful for evenness analysis
// (paper §4.2 discusses the max-min coverage gap).
func CoverageHistogram(ps PathSet, numLinks int) map[topo.LinkID]int {
	cov := make(map[topo.LinkID]int)
	var buf []topo.LinkID
	for i := 0; i < ps.Len(); i++ {
		buf = ps.AppendLinks(i, buf[:0])
		for _, l := range buf {
			cov[l]++
		}
	}
	return cov
}

// EvennessGap returns the difference between the maximum and minimum
// coverage over the given links (links absent from cov count as zero).
func EvennessGap(cov map[topo.LinkID]int, links []topo.LinkID) int {
	if len(links) == 0 {
		return 0
	}
	minC, maxC := int(^uint(0)>>1), 0
	for _, l := range links {
		c := cov[l]
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	return maxC - minC
}

// SortedLinks returns the sorted unique link IDs appearing in ps.
func SortedLinks(ps PathSet) []topo.LinkID {
	seen := make(map[topo.LinkID]struct{})
	var buf []topo.LinkID
	for i := 0; i < ps.Len(); i++ {
		buf = ps.AppendLinks(i, buf[:0])
		for _, l := range buf {
			seen[l] = struct{}{}
		}
	}
	out := make([]topo.LinkID, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
