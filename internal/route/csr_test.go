package route

import (
	"testing"

	"github.com/detector-net/detector/internal/topo"
)

// TestMaterializeCSRMatchesAppendLinks: the CSR rows must equal per-path
// AppendLinks output, in order, for every family — including Fattree, whose
// BulkLinker fast path bypasses AppendLinks entirely.
func TestMaterializeCSRMatchesAppendLinks(t *testing.T) {
	f := topo.MustFattree(4)
	v := topo.MustVL2(4, 4, 1)
	b := topo.MustBCube(4, 1)
	sets := []struct {
		name string
		ps   PathSet
	}{
		{"Fattree4", NewFattreePaths(f)},
		{"Fattree8", NewFattreePaths(topo.MustFattree(8))},
		{"VL2", NewVL2Paths(v)},
		{"VL2(4,6,1)", NewVL2Paths(topo.MustVL2(4, 6, 1))},
		{"BCube41", NewBCubePaths(b)},
		{"BCube22", NewBCubePaths(topo.MustBCube(2, 2))},
	}
	for _, s := range sets {
		csr := MaterializeCSR(s.ps)
		if csr.Len() != s.ps.Len() {
			t.Fatalf("%s: CSR has %d rows, PathSet has %d", s.name, csr.Len(), s.ps.Len())
		}
		var buf []topo.LinkID
		for i := 0; i < s.ps.Len(); i++ {
			buf = s.ps.AppendLinks(i, buf[:0])
			row := csr.Row(i)
			if len(row) != len(buf) {
				t.Fatalf("%s path %d: CSR row %v, AppendLinks %v", s.name, i, row, buf)
			}
			for j := range buf {
				if row[j] != buf[j] {
					t.Fatalf("%s path %d: CSR row %v, AppendLinks %v", s.name, i, row, buf)
				}
			}
		}
	}
}

// TestFattreeBulkLinkerUsed guards the fast path registration: losing the
// interface assertion would silently fall back to the slow path.
func TestFattreeBulkLinkerUsed(t *testing.T) {
	ps := NewFattreePaths(topo.MustFattree(4))
	if _, ok := interface{}(ps).(BulkLinker); !ok {
		t.Fatal("FattreePaths no longer implements BulkLinker")
	}
}

// TestDecomposeCSRMatchesDecompose: the CSR decomposition must produce the
// same components as the PathSet wrapper.
func TestDecomposeCSRMatchesDecompose(t *testing.T) {
	f := topo.MustFattree(4)
	ps := NewFattreePaths(f)
	a := Decompose(ps, f.NumLinks())
	b := DecomposeCSR(MaterializeCSR(ps), f.NumLinks())
	if len(a) != len(b) {
		t.Fatalf("component counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Links) != len(b[i].Links) || len(a[i].Paths) != len(b[i].Paths) {
			t.Fatalf("component %d shape differs", i)
		}
		for j := range a[i].Links {
			if a[i].Links[j] != b[i].Links[j] {
				t.Fatalf("component %d link %d differs", i, j)
			}
		}
		for j := range a[i].Paths {
			if a[i].Paths[j] != b[i].Paths[j] {
				t.Fatalf("component %d path %d differs", i, j)
			}
		}
	}
}

// TestFattreeRepresentativePrefix: the O(1) representative test must agree
// with the definition (source pod 0) for every path index.
func TestFattreeRepresentativePrefix(t *testing.T) {
	ps := NewFattreePaths(topo.MustFattree(4))
	for i := 0; i < ps.Len(); i++ {
		s, _, _ := ps.Decode(i)
		want := s/ps.F.Half() == 0
		if got := ps.IsRepresentative(i); got != want {
			t.Fatalf("path %d: IsRepresentative=%v, source pod %d", i, got, s/ps.F.Half())
		}
	}
}

// TestAllFamiliesTakeBulkFastPath pins the ROADMAP item that every
// built-in family materializes through the BulkLinker fast path: a family
// silently falling back to per-path AppendLinks would pay one interface
// call and several link-map lookups per candidate, which dominates
// MaterializeCSR at scale.
func TestAllFamiliesTakeBulkFastPath(t *testing.T) {
	sets := []struct {
		name string
		ps   PathSet
	}{
		{"Fattree", NewFattreePaths(topo.MustFattree(4))},
		{"VL2", NewVL2Paths(topo.MustVL2(4, 4, 1))},
		{"BCube", NewBCubePaths(topo.MustBCube(4, 1))},
	}
	for _, s := range sets {
		bl, ok := s.ps.(BulkLinker)
		if !ok {
			t.Errorf("%s: %T does not implement BulkLinker — generic fallback in use", s.name, s.ps)
			continue
		}
		links, offsets := bl.AppendAllLinks(nil, make([]int32, 1, s.ps.Len()+1))
		if len(offsets) != s.ps.Len()+1 {
			t.Errorf("%s: AppendAllLinks emitted %d offsets, want %d", s.name, len(offsets), s.ps.Len()+1)
		}
		if int(offsets[len(offsets)-1]) != len(links) {
			t.Errorf("%s: final offset %d does not close the arena of %d links",
				s.name, offsets[len(offsets)-1], len(links))
		}
	}
}
