package route

import "hash/fnv"

// MatrixSignature fingerprints a materialized candidate matrix: the
// link-ID space size plus every row's link set, in row order. Two engines
// that derive the same candidate paths from the same topology produce the
// same signature, so a shard service can refuse work from a coordinator
// built for a different matrix (mismatched radix, topology family or
// candidate generation) instead of silently computing a wrong answer. The
// sharded control plane stamps every construction request with it.
// ProbesSignature fingerprints a served probe matrix by content: link-ID
// space, every row's link set and endpoints, and the wire path IDs when
// sparse. The diagnoser re-fetches the matrix every window and gets a
// fresh allocation each time, so pointer identity cannot tell "same
// matrix" from "new construction cycle" — this signature can, which is
// what lets the diagnosis plane keep its union-find partition across
// windows instead of rebuilding it for an unchanged matrix.
func ProbesSignature(p *Probes) uint64 {
	h := fnv.New64a()
	var b [8]byte
	w64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	w64(uint64(p.NumLinks))
	w64(uint64(p.NumPaths()))
	for i, links := range p.PathLinks {
		w64(uint64(len(links)))
		for _, l := range links {
			w64(uint64(l))
		}
		w64(uint64(p.Src[i]))
		w64(uint64(p.Dst[i]))
	}
	ids := p.IDs()
	w64(uint64(len(ids)))
	for _, id := range ids {
		w64(uint64(id))
	}
	return h.Sum64()
}

func MatrixSignature(csr *CSR, numLinks int) uint64 {
	h := fnv.New64a()
	var b [8]byte
	w64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	w64(uint64(numLinks))
	n := csr.Len()
	w64(uint64(n))
	for i := 0; i < n; i++ {
		row := csr.Row(i)
		w64(uint64(len(row)))
		for _, l := range row {
			w64(uint64(l))
		}
	}
	return h.Sum64()
}
