package route

import "hash/fnv"

// MatrixSignature fingerprints a materialized candidate matrix: the
// link-ID space size plus every row's link set, in row order. Two engines
// that derive the same candidate paths from the same topology produce the
// same signature, so a shard service can refuse work from a coordinator
// built for a different matrix (mismatched radix, topology family or
// candidate generation) instead of silently computing a wrong answer. The
// sharded control plane stamps every construction request with it.
func MatrixSignature(csr *CSR, numLinks int) uint64 {
	h := fnv.New64a()
	var b [8]byte
	w64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	w64(uint64(numLinks))
	n := csr.Len()
	w64(uint64(n))
	for i := 0; i < n; i++ {
		row := csr.Row(i)
		w64(uint64(len(row)))
		for _, l := range row {
			w64(uint64(l))
		}
	}
	return h.Sum64()
}
