package route

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/detector-net/detector/internal/topo"
)

// buildCSR assembles a CSR directly from explicit rows, for synthetic
// churn topologies where the interesting structure is the link graph.
func buildCSR(rows [][]topo.LinkID) *CSR {
	csr := &CSR{Offsets: make([]int32, 1, len(rows)+1)}
	for _, row := range rows {
		csr.Links = append(csr.Links, row...)
		csr.Offsets = append(csr.Offsets, int32(len(csr.Links)))
	}
	return csr
}

func TestDecomposeMaskedNoDownMatchesDecompose(t *testing.T) {
	f := topo.MustFattree(8)
	ps := NewFattreePaths(f)
	csr := MaterializeCSR(ps)
	full := DecomposeCSR(csr, f.NumLinks())
	masked := DecomposeMasked(csr, f.NumLinks(), nil)
	if !reflect.DeepEqual(full, masked) {
		t.Fatal("DecomposeMasked with empty down set diverges from DecomposeCSR")
	}
}

// TestIncrementalSplit: removing a link that is the only connection between
// two halves of a component must split it in two.
func TestIncrementalSplit(t *testing.T) {
	// Rows: {0}, {1}, {0,1,2}. Link 2's row bridges links 0 and 1.
	csr := buildCSR([][]topo.LinkID{{0}, {1}, {0, 1, 2}})
	inc := NewIncremental(csr, 3, nil)
	if got := len(inc.Components()); got != 1 {
		t.Fatalf("pre-split: %d components, want 1", got)
	}
	diff, err := inc.Apply([]topo.LinkID{2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.Removed) != 1 || len(diff.Added) != 2 {
		t.Fatalf("split diff: %d removed, %d added, want 1/2", len(diff.Removed), len(diff.Added))
	}
	want := DecomposeMasked(csr, 3, []topo.LinkID{2})
	if !reflect.DeepEqual(inc.Components(), want) {
		t.Fatalf("post-split components %+v, want %+v", inc.Components(), want)
	}
	if len(want) != 2 {
		t.Fatalf("ground truth has %d components, want 2", len(want))
	}
}

// TestIncrementalMerge: restoring that same link must merge the two
// components back into one, bit-identical to a fresh decomposition.
func TestIncrementalMerge(t *testing.T) {
	csr := buildCSR([][]topo.LinkID{{0}, {1}, {0, 1, 2}})
	inc := NewIncremental(csr, 3, []topo.LinkID{2})
	if got := len(inc.Components()); got != 2 {
		t.Fatalf("pre-merge: %d components, want 2", got)
	}
	diff, err := inc.Apply(nil, []topo.LinkID{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.Removed) != 2 || len(diff.Added) != 1 {
		t.Fatalf("merge diff: %d removed, %d added, want 2/1", len(diff.Removed), len(diff.Added))
	}
	want := DecomposeMasked(csr, 3, nil)
	if !reflect.DeepEqual(inc.Components(), want) {
		t.Fatalf("post-merge components %+v, want %+v", inc.Components(), want)
	}
	fresh := DecomposeCSR(csr, 3)
	if !reflect.DeepEqual(inc.Components(), fresh) {
		t.Fatal("merged decomposition diverges from pristine decomposition")
	}
}

// TestIncrementalFlapNetsOut: a link listed in both down and up within one
// Apply flaps and must net to no change.
func TestIncrementalFlapNetsOut(t *testing.T) {
	csr := buildCSR([][]topo.LinkID{{0}, {1}, {0, 1, 2}})
	inc := NewIncremental(csr, 3, nil)
	before := append([]Component(nil), inc.Components()...)
	diff, err := inc.Apply([]topo.LinkID{2}, []topo.LinkID{2})
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Empty() {
		t.Fatalf("flap diff not empty: %+v", diff)
	}
	if !reflect.DeepEqual(inc.Components(), before) {
		t.Fatal("flap changed the decomposition")
	}
}

// TestIncrementalDownNoActiveRows: downing a link whose rows are all already
// inactive changes nothing.
func TestIncrementalDownNoActiveRows(t *testing.T) {
	// Row {1,2} is the only row through 2; once 1 is down it is inactive.
	csr := buildCSR([][]topo.LinkID{{0}, {1, 2}})
	inc := NewIncremental(csr, 3, []topo.LinkID{1})
	diff, err := inc.Apply([]topo.LinkID{2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Empty() {
		t.Fatalf("expected empty diff, got %+v", diff)
	}
	// And bringing 2 back up while 1 stays down is equally a no-op.
	diff, err = inc.Apply(nil, []topo.LinkID{2})
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Empty() {
		t.Fatalf("expected empty up diff, got %+v", diff)
	}
}

func TestIncrementalStrictErrors(t *testing.T) {
	csr := buildCSR([][]topo.LinkID{{0, 1}})
	inc := NewIncremental(csr, 2, nil)
	if _, err := inc.Apply(nil, []topo.LinkID{0}); err == nil {
		t.Error("up of an up link: want error")
	}
	if _, err := inc.Apply([]topo.LinkID{5}, nil); err == nil {
		t.Error("out-of-range link: want error")
	}
	if _, err := inc.Apply([]topo.LinkID{0, 0}, nil); err == nil {
		t.Error("duplicate down link: want error")
	}
	if _, err := inc.Apply([]topo.LinkID{0}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Apply([]topo.LinkID{0}, nil); err == nil {
		t.Error("down of a down link: want error")
	}
	// Errors must leave the differ usable.
	if _, err := inc.Apply(nil, []topo.LinkID{0}); err != nil {
		t.Fatal(err)
	}
}

// applyDiff replays a Diff against a prior decomposition by key, verifying
// the diff alone carries enough information to update a mirror.
func applyDiff(prev []Component, d Diff, t *testing.T) []Component {
	t.Helper()
	removed := make(map[uint64]bool, len(d.Removed))
	for _, c := range d.Removed {
		removed[c.Key()] = true
	}
	var next []Component
	for _, c := range prev {
		if !removed[c.Key()] {
			next = append(next, c)
		}
	}
	if len(prev)-len(next) != len(d.Removed) {
		t.Fatalf("diff removed %d components, matched %d", len(d.Removed), len(prev)-len(next))
	}
	next = append(next, d.Added...)
	for i := 1; i < len(next); i++ {
		for j := i; j > 0 && next[j].Links[0] < next[j-1].Links[0]; j-- {
			next[j], next[j-1] = next[j-1], next[j]
		}
	}
	return next
}

func churnDifferential(t *testing.T, csr *CSR, numLinks int, steps int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	inc := NewIncremental(csr, numLinks, nil)
	downSet := make(map[topo.LinkID]bool)
	mirror := append([]Component(nil), inc.Components()...)
	for step := 0; step < steps; step++ {
		var down, up []topo.LinkID
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			l := topo.LinkID(rng.Intn(numLinks))
			if downSet[l] {
				downSet[l] = false
				up = append(up, l)
			} else if !contains(up, l) && !contains(down, l) {
				downSet[l] = true
				down = append(down, l)
			}
		}
		diff, err := inc.Apply(down, up)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		var cur []topo.LinkID
		for l, d := range downSet {
			if d {
				cur = append(cur, l)
			}
		}
		want := DecomposeMasked(csr, numLinks, cur)
		if !reflect.DeepEqual(inc.Components(), want) {
			t.Fatalf("step %d (down=%v up=%v): incremental decomposition diverges from full recompute", step, down, up)
		}
		mirror = applyDiff(mirror, diff, t)
		if !reflect.DeepEqual(mirror, want) {
			t.Fatalf("step %d: diff replay diverges from full recompute", step)
		}
	}
}

func contains(s []topo.LinkID, l topo.LinkID) bool {
	for _, v := range s {
		if v == l {
			return true
		}
	}
	return false
}

// TestIncrementalRandomDifferential drives random link add/remove sequences
// on Fattree(8) and BCube(4,1) and checks after every step that the
// incremental decomposition is bit-identical to a from-scratch masked
// decomposition, and that the emitted Diff replays to the same state.
func TestIncrementalRandomDifferential(t *testing.T) {
	f := topo.MustFattree(8)
	fcsr := MaterializeCSR(NewFattreePaths(f))
	churnDifferential(t, fcsr, f.NumLinks(), 30, 1)

	b := topo.MustBCube(4, 1)
	bcsr := MaterializeCSR(NewBCubePaths(b))
	churnDifferential(t, bcsr, b.NumLinks(), 30, 2)
}
