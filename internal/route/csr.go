package route

import (
	"fmt"
	"math"

	"github.com/detector-net/detector/internal/topo"
)

// CSR is a routing matrix materialized in compressed-sparse-row form: the
// link sets of every candidate path, concatenated into one arena. Row i of
// the matrix is Links[Offsets[i]:Offsets[i+1]]. Materializing once and
// walking contiguous rows is the backbone of PMC's scoring engine — the
// greedy loops never call PathSet.AppendLinks again after construction.
type CSR struct {
	// Offsets has Len()+1 entries; row i spans [Offsets[i], Offsets[i+1]).
	// Offsets are int32, capping the arena at MaxInt32 total link entries
	// (≈2.1 G — a Fattree(48)-scale candidate universe overflows it);
	// MaterializeCSR panics with a clear message rather than wrapping.
	Offsets []int32
	// Links is the concatenation of every path's link set.
	Links []topo.LinkID
}

// checkArenaSize panics when the arena would exceed int32 offset range.
func checkArenaSize(total int) {
	if total > math.MaxInt32 {
		panic(fmt.Sprintf("route: CSR arena needs %d link entries, above the int32 offset limit %d; shard the candidate set before materializing", total, math.MaxInt32))
	}
}

// Len returns the number of rows (paths).
func (c *CSR) Len() int { return len(c.Offsets) - 1 }

// Row returns the link set of path i. The slice aliases the arena; callers
// must not modify it.
func (c *CSR) Row(i int) []topo.LinkID {
	return c.Links[c.Offsets[i]:c.Offsets[i+1]]
}

// BulkLinker is an optional PathSet fast path for materialization: a single
// call emits every path's links in index order, avoiding the per-path
// interface-call and index-decode overhead of AppendLinks.
type BulkLinker interface {
	PathSet
	// AppendAllLinks appends the links of every path, in path-index order,
	// to links, and appends each path's end position to offsets (one entry
	// per path). It returns the extended slices.
	AppendAllLinks(links []topo.LinkID, offsets []int32) ([]topo.LinkID, []int32)
}

// MaterializeCSR walks ps once and returns its CSR form. PathSets implementing
// BulkLinker are materialized through the bulk fast path.
func MaterializeCSR(ps PathSet) *CSR {
	n := ps.Len()
	offsets := make([]int32, 1, n+1)
	if bl, ok := ps.(BulkLinker); ok {
		links, offsets := bl.AppendAllLinks(nil, offsets)
		return &CSR{Offsets: offsets, Links: links}
	}
	var links []topo.LinkID
	if n > 0 {
		// Size the arena from the first path; families have near-uniform
		// path lengths, so this avoids regrowing the slab log(n) times.
		links = ps.AppendLinks(0, make([]topo.LinkID, 0, 16))
		checkArenaSize(len(links) * n)
		links = append(make([]topo.LinkID, 0, len(links)*n+1), links...)
		offsets = append(offsets, int32(len(links)))
	}
	for i := 1; i < n; i++ {
		links = ps.AppendLinks(i, links)
		checkArenaSize(len(links))
		offsets = append(offsets, int32(len(links)))
	}
	return &CSR{Offsets: offsets, Links: links}
}
