package route

import (
	"reflect"
	"testing"

	"github.com/detector-net/detector/internal/topo"
)

// FuzzIncrementalDecompose drives an arbitrary link toggle sequence against
// the incremental differ and checks after every step that diff-then-splice
// equals a from-scratch masked decomposition. Each input byte toggles one
// link of a Fattree(4) candidate matrix: currently-up links go down,
// currently-down links come back up.
func FuzzIncrementalDecompose(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{3, 3})
	f.Add([]byte{1, 2, 1, 2, 1})
	f.Add([]byte{7, 11, 7, 0, 11, 5})

	ft := topo.MustFattree(4)
	csr := MaterializeCSR(NewFattreePaths(ft))
	numLinks := ft.NumLinks()

	f.Fuzz(func(t *testing.T, toggles []byte) {
		if len(toggles) > 64 {
			toggles = toggles[:64]
		}
		inc := NewIncremental(csr, numLinks, nil)
		down := make(map[topo.LinkID]bool)
		for _, b := range toggles {
			l := topo.LinkID(int(b) % numLinks)
			var err error
			if down[l] {
				_, err = inc.Apply(nil, []topo.LinkID{l})
				down[l] = false
			} else {
				_, err = inc.Apply([]topo.LinkID{l}, nil)
				down[l] = true
			}
			if err != nil {
				t.Fatal(err)
			}
			var cur []topo.LinkID
			for dl, d := range down {
				if d {
					cur = append(cur, dl)
				}
			}
			want := DecomposeMasked(csr, numLinks, cur)
			got := inc.Components()
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("after toggling %d: incremental %d components diverge from full recompute %d", l, len(got), len(want))
			}
		}
	})
}
