package route

import (
	"github.com/detector-net/detector/internal/topo"
)

// FattreePaths is the candidate path universe of a k-ary Fattree: every
// ordered ToR pair routed via every core switch. Path index layout is
// (orderedPair(src, dst) * numCores + core).
//
// Intra-pod pairs are also routed via cores: this matches the paper's
// original-path counts (Fattree(12): 72·71·36 = 184,032) and lets the probe
// matrix cover aggregation-core links from every pod.
type FattreePaths struct {
	F *topo.Fattree

	nToR   int
	nCores int
}

var (
	_ PathSet      = (*FattreePaths)(nil)
	_ Symmetric    = (*FattreePaths)(nil)
	_ HopsProvider = (*FattreePaths)(nil)
)

// NewFattreePaths enumerates the candidate paths of f.
func NewFattreePaths(f *topo.Fattree) *FattreePaths {
	return &FattreePaths{F: f, nToR: f.NumToRs(), nCores: f.NumCores()}
}

// Len returns nToR*(nToR-1)*nCores.
func (p *FattreePaths) Len() int { return p.nToR * (p.nToR - 1) * p.nCores }

// Decode splits path index i into (src ToR index, dst ToR index, core index).
func (p *FattreePaths) Decode(i int) (s, d, c int) {
	c = i % p.nCores
	s, d = unpackPair(i/p.nCores, p.nToR)
	return s, d, c
}

// Encode is the inverse of Decode.
func (p *FattreePaths) Encode(s, d, c int) int {
	return orderedPair(s, d, p.nToR)*p.nCores + c
}

// AppendLinks implements PathSet.
func (p *FattreePaths) AppendLinks(i int, buf []topo.LinkID) []topo.LinkID {
	s, d, c := p.Decode(i)
	tors := p.F.ToRList()
	return p.F.PathLinks(tors[s], tors[d], c, buf)
}

// Endpoints implements PathSet.
func (p *FattreePaths) Endpoints(i int) (src, dst topo.NodeID) {
	s, d, _ := p.Decode(i)
	tors := p.F.ToRList()
	return tors[s], tors[d]
}

// HasHops implements HopsProvider.
func (p *FattreePaths) HasHops() bool { return true }

// AppendHops implements HopsProvider.
func (p *FattreePaths) AppendHops(i int, buf []topo.NodeID) []topo.NodeID {
	s, d, c := p.Decode(i)
	tors := p.F.ToRList()
	return p.F.PathHops(tors[s], tors[d], c, buf)
}

// Component returns the decomposition component (core group) of path i.
// All links of a via-core path belong to the agg-position group of its core,
// so the routing matrix splits into k/2 independent subproblems (§4.3,
// Observation 1). This is exposed for tests; PMC discovers the same
// components with the generic union-find in Decompose.
func (p *FattreePaths) Component(i int) int {
	_, _, c := p.Decode(i)
	return p.F.CoreGroup(c)
}

// shift applies the family's automorphism shift generator sigma r times:
// pods rotate by r and cores rotate by r within their group. sigma has
// order k (lcm of the pod cycle k and the in-group core cycle k/2).
func (p *FattreePaths) shift(s, d, c, r int) (int, int, int) {
	k, h := p.F.K, p.F.Half()
	sp, se := s/h, s%h
	dp, de := d/h, d%h
	g, ci := c/h, c%h
	sp = (sp + r) % k
	dp = (dp + r) % k
	ci = (ci + r) % h
	return sp*h + se, dp*h + de, g*h + ci
}

// IsRepresentative implements Symmetric: the canonical orbit member is the
// unique rotation with source pod 0.
func (p *FattreePaths) IsRepresentative(i int) bool {
	s, _, _ := p.Decode(i)
	return s/p.F.Half() == 0
}

// AppendOrbit implements Symmetric: the k-1 non-identity rotations.
func (p *FattreePaths) AppendOrbit(i int, buf []int) []int {
	s, d, c := p.Decode(i)
	for r := 1; r < p.F.K; r++ {
		s2, d2, c2 := p.shift(s, d, c, r)
		buf = append(buf, p.Encode(s2, d2, c2))
	}
	return buf
}
