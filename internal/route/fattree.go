package route

import (
	"github.com/detector-net/detector/internal/topo"
)

// FattreePaths is the candidate path universe of a k-ary Fattree: every
// ordered ToR pair routed via every core switch. Path index layout is
// (orderedPair(src, dst) * numCores + core).
//
// Intra-pod pairs are also routed via cores: this matches the paper's
// original-path counts (Fattree(12): 72·71·36 = 184,032) and lets the probe
// matrix cover aggregation-core links from every pod.
type FattreePaths struct {
	F *topo.Fattree

	nToR   int
	nCores int
	// repBound caches the representative cutoff: source-pod-0 paths form a
	// contiguous index prefix, so IsRepresentative is one comparison.
	repBound int
}

var (
	_ PathSet      = (*FattreePaths)(nil)
	_ Symmetric    = (*FattreePaths)(nil)
	_ HopsProvider = (*FattreePaths)(nil)
	_ BulkLinker   = (*FattreePaths)(nil)
)

// NewFattreePaths enumerates the candidate paths of f.
func NewFattreePaths(f *topo.Fattree) *FattreePaths {
	p := &FattreePaths{F: f, nToR: f.NumToRs(), nCores: f.NumCores()}
	p.repBound = f.Half() * (p.nToR - 1) * p.nCores
	return p
}

// Len returns nToR*(nToR-1)*nCores.
func (p *FattreePaths) Len() int { return p.nToR * (p.nToR - 1) * p.nCores }

// Decode splits path index i into (src ToR index, dst ToR index, core index).
func (p *FattreePaths) Decode(i int) (s, d, c int) {
	c = i % p.nCores
	s, d = unpackPair(i/p.nCores, p.nToR)
	return s, d, c
}

// Encode is the inverse of Decode.
func (p *FattreePaths) Encode(s, d, c int) int {
	return orderedPair(s, d, p.nToR)*p.nCores + c
}

// AppendLinks implements PathSet.
func (p *FattreePaths) AppendLinks(i int, buf []topo.LinkID) []topo.LinkID {
	s, d, c := p.Decode(i)
	tors := p.F.ToRList()
	return p.F.PathLinks(tors[s], tors[d], c, buf)
}

// AppendAllLinks implements BulkLinker: it emits every candidate path's
// links in index order with pure arithmetic per path. Every distinct
// ToR–agg and agg–core link is resolved through the topology's link map
// exactly once up front; a naive per-path materialization pays four map
// lookups per path, which dominates the whole scan.
func (p *FattreePaths) AppendAllLinks(links []topo.LinkID, offsets []int32) ([]topo.LinkID, []int32) {
	f := p.F
	tors := f.ToRList()
	h := f.Half()
	torAgg := make([]topo.LinkID, p.nToR*h)
	for t, tor := range tors {
		pod := t / h
		for g := 0; g < h; g++ {
			torAgg[t*h+g] = f.MustLink(tor, f.AggID[pod][g])
		}
	}
	aggCore := make([]topo.LinkID, f.K*p.nCores)
	for pod := 0; pod < f.K; pod++ {
		for c := 0; c < p.nCores; c++ {
			aggCore[pod*p.nCores+c] = f.MustLink(f.AggID[pod][c/h], f.CoreID[c])
		}
	}
	checkArenaSize(len(links) + p.Len()*4)
	if cap(links)-len(links) < p.Len()*4 {
		grown := make([]topo.LinkID, len(links), len(links)+p.Len()*4)
		copy(grown, links)
		links = grown
	}
	for s := 0; s < p.nToR; s++ {
		sp := s / h
		for d := 0; d < p.nToR; d++ {
			if d == s {
				continue
			}
			dp := d / h
			for c := 0; c < p.nCores; c++ {
				g := c / h
				// Same link order as PathLinks: up edge-agg, up agg-core,
				// [down agg-core,] down edge-agg.
				links = append(links, torAgg[s*h+g], aggCore[sp*p.nCores+c])
				if dp != sp {
					links = append(links, aggCore[dp*p.nCores+c])
				}
				links = append(links, torAgg[d*h+g])
				offsets = append(offsets, int32(len(links)))
			}
		}
	}
	return links, offsets
}

// Endpoints implements PathSet.
func (p *FattreePaths) Endpoints(i int) (src, dst topo.NodeID) {
	s, d, _ := p.Decode(i)
	tors := p.F.ToRList()
	return tors[s], tors[d]
}

// HasHops implements HopsProvider.
func (p *FattreePaths) HasHops() bool { return true }

// AppendHops implements HopsProvider.
func (p *FattreePaths) AppendHops(i int, buf []topo.NodeID) []topo.NodeID {
	s, d, c := p.Decode(i)
	tors := p.F.ToRList()
	return p.F.PathHops(tors[s], tors[d], c, buf)
}

// Component returns the decomposition component (core group) of path i.
// All links of a via-core path belong to the agg-position group of its core,
// so the routing matrix splits into k/2 independent subproblems (§4.3,
// Observation 1). This is exposed for tests; PMC discovers the same
// components with the generic union-find in Decompose.
func (p *FattreePaths) Component(i int) int {
	_, _, c := p.Decode(i)
	return p.F.CoreGroup(c)
}

// shift applies the family's automorphism shift generator sigma r times:
// pods rotate by r and cores rotate by r within their group. sigma has
// order k (lcm of the pod cycle k and the in-group core cycle k/2).
func (p *FattreePaths) shift(s, d, c, r int) (int, int, int) {
	k, h := p.F.K, p.F.Half()
	sp, se := s/h, s%h
	dp, de := d/h, d%h
	g, ci := c/h, c%h
	sp = (sp + r) % k
	dp = (dp + r) % k
	ci = (ci + r) % h
	return sp*h + se, dp*h + de, g*h + ci
}

// IsRepresentative implements Symmetric: the canonical orbit member is the
// unique rotation with source pod 0. Source ToR index is the major axis of
// the path-index layout, so pod-0 sources are exactly the indices below
// repBound.
func (p *FattreePaths) IsRepresentative(i int) bool {
	return i < p.repBound
}

// AppendOrbit implements Symmetric: the k-1 non-identity rotations.
func (p *FattreePaths) AppendOrbit(i int, buf []int) []int {
	s, d, c := p.Decode(i)
	for r := 1; r < p.F.K; r++ {
		s2, d2, c2 := p.shift(s, d, c, r)
		buf = append(buf, p.Encode(s2, d2, c2))
	}
	return buf
}
