package route

import (
	"github.com/detector-net/detector/internal/topo"
)

// Probes is a materialized probe matrix: the subset of candidate paths PMC
// selected, with an inverted link→paths index. It is the input to the PLL
// localizer and to pinglist construction.
type Probes struct {
	// PathLinks[i] is the undirected link set of probe path i.
	PathLinks [][]topo.LinkID
	// Src and Dst are the endpoints of each probe path.
	Src, Dst []topo.NodeID
	// Hops[i] is the switch-level route of path i, when known (needed for
	// source routing in the fabric; nil otherwise).
	Hops [][]topo.NodeID
	// NumLinks is the link-ID space size of the topology.
	NumLinks int

	// ids maps row index → wire path ID when the matrix uses sparse IDs
	// (set via SetIDs); nil means IDs are dense row indices.
	ids   []uint32
	rowOf map[uint32]int

	linkPaths [][]int32
}

// SetIDs declares the wire path ID of each row, for matrices whose IDs are
// stable across churn rather than dense row indices. len(ids) must equal
// NumPaths.
func (p *Probes) SetIDs(ids []uint32) {
	p.ids = ids
	p.rowOf = make(map[uint32]int, len(ids))
	for i, id := range ids {
		p.rowOf[id] = i
	}
}

// IDs returns the wire path ID of each row (nil when IDs are dense).
func (p *Probes) IDs() []uint32 { return p.ids }

// RowOf translates a wire path ID into the matrix row index. Matrices
// without sparse IDs fall back to the identity mapping, so consumers built
// on dense IDs keep working unchanged.
func (p *Probes) RowOf(id uint32) (int, bool) {
	if p.ids == nil {
		if int(id) < len(p.PathLinks) {
			return int(id), true
		}
		return 0, false
	}
	row, ok := p.rowOf[id]
	return row, ok
}

// NewProbes materializes the selected paths of ps into a probe matrix.
func NewProbes(ps PathSet, selected []int, numLinks int) *Probes {
	p := &Probes{
		PathLinks: make([][]topo.LinkID, len(selected)),
		Src:       make([]topo.NodeID, len(selected)),
		Dst:       make([]topo.NodeID, len(selected)),
		NumLinks:  numLinks,
	}
	hp, hasHops := ps.(HopsProvider)
	hasHops = hasHops && hp.HasHops()
	if hasHops {
		p.Hops = make([][]topo.NodeID, len(selected))
	}
	for i, idx := range selected {
		p.PathLinks[i] = ps.AppendLinks(idx, nil)
		p.Src[i], p.Dst[i] = ps.Endpoints(idx)
		if hasHops {
			p.Hops[i] = hp.AppendHops(idx, nil)
		}
	}
	p.buildIndex()
	return p
}

// NewProbesFromLinks builds a probe matrix directly from explicit link sets
// (tests and loaded matrices).
func NewProbesFromLinks(pathLinks [][]topo.LinkID, numLinks int) *Probes {
	p := &Probes{
		PathLinks: pathLinks,
		Src:       make([]topo.NodeID, len(pathLinks)),
		Dst:       make([]topo.NodeID, len(pathLinks)),
		NumLinks:  numLinks,
	}
	p.buildIndex()
	return p
}

// buildIndex materializes the link→paths inverted index as a CSR slab: one
// counting pass, one prefix sum, one fill. Rows alias the shared arena, so
// the index costs two allocations regardless of link count, and each row
// lists path indices in ascending order.
func (p *Probes) buildIndex() {
	counts := make([]int32, p.NumLinks+1)
	total := 0
	for _, links := range p.PathLinks {
		for _, l := range links {
			counts[l+1]++
		}
		total += len(links)
	}
	for l := 0; l < p.NumLinks; l++ {
		counts[l+1] += counts[l]
	}
	arena := make([]int32, total)
	fill := make([]int32, p.NumLinks)
	copy(fill, counts[:p.NumLinks])
	for i, links := range p.PathLinks {
		for _, l := range links {
			arena[fill[l]] = int32(i)
			fill[l]++
		}
	}
	p.linkPaths = make([][]int32, p.NumLinks)
	for l := 0; l < p.NumLinks; l++ {
		p.linkPaths[l] = arena[counts[l]:counts[l+1]:counts[l+1]]
	}
}

// NumPaths returns the number of probe paths.
func (p *Probes) NumPaths() int { return len(p.PathLinks) }

// PathsThrough returns the probe paths covering link l. The slice is shared;
// callers must not modify it.
func (p *Probes) PathsThrough(l topo.LinkID) []int32 { return p.linkPaths[l] }

// CoveredLinks returns the sorted IDs of links covered by at least one path.
func (p *Probes) CoveredLinks() []topo.LinkID {
	var out []topo.LinkID
	for l, paths := range p.linkPaths {
		if len(paths) > 0 {
			out = append(out, topo.LinkID(l))
		}
	}
	return out
}

// MinCoverage returns the minimum coverage over the given links; links with
// no covering path yield zero.
func (p *Probes) MinCoverage(links []topo.LinkID) int {
	if len(links) == 0 {
		return 0
	}
	minC := int(^uint(0) >> 1)
	for _, l := range links {
		if c := len(p.linkPaths[l]); c < minC {
			minC = c
		}
	}
	return minC
}

// Signature returns, for each link in links, the set of path indices
// covering it, for identifiability checks.
func (p *Probes) Signature(l topo.LinkID) []int32 { return p.linkPaths[l] }
