package route

import (
	"fmt"
	"sort"

	"github.com/detector-net/detector/internal/topo"
)

// Topology churn is modeled as a *down-link mask* over the pristine candidate
// matrix: the PathSet and its CSR never change (they describe the wiring the
// fabric was designed with), and a link going away simply deactivates every
// candidate path that traverses it. A path is active iff it traverses no down
// link. This keeps MatrixSignature — which hashes the pristine CSR — stable
// across churn, so shard handshakes and report routing survive link flaps.

// DecomposeMasked is DecomposeCSR restricted to active rows: paths that
// traverse any link in down are skipped, and links covered only by skipped
// paths are omitted. It is the from-scratch ground truth the incremental
// differ must reproduce bit-identically.
func DecomposeMasked(csr *CSR, numLinks int, down []topo.LinkID) []Component {
	mask := make([]bool, numLinks)
	for _, l := range down {
		mask[l] = true
	}
	uf := newUnionFind(numLinks)
	touched := make([]bool, numLinks)
	n := csr.Len()
	active := func(row []topo.LinkID) bool {
		for _, l := range row {
			if mask[l] {
				return false
			}
		}
		return true
	}
	for i := 0; i < n; i++ {
		row := csr.Row(i)
		if len(row) == 0 || !active(row) {
			continue
		}
		first := int32(row[0])
		touched[first] = true
		for _, l := range row[1:] {
			touched[l] = true
			uf.union(first, int32(l))
		}
	}
	rootIdx := make(map[int32]int)
	compOf := make([]int32, numLinks)
	var comps []Component
	for l := 0; l < numLinks; l++ {
		if !touched[l] {
			continue
		}
		r := uf.find(int32(l))
		ci, ok := rootIdx[r]
		if !ok {
			ci = len(comps)
			rootIdx[r] = ci
			comps = append(comps, Component{})
		}
		compOf[l] = int32(ci)
		comps[ci].Links = append(comps[ci].Links, topo.LinkID(l))
	}
	for i := 0; i < n; i++ {
		row := csr.Row(i)
		if len(row) == 0 || !active(row) {
			continue
		}
		ci := compOf[row[0]]
		comps[ci].Paths = append(comps[ci].Paths, int32(i))
	}
	sort.Slice(comps, func(a, b int) bool { return comps[a].Links[0] < comps[b].Links[0] })
	return comps
}

// Diff is the exact consequence of one churn step: the components that no
// longer exist in their prior form and the components that replace them. A
// removed link that splits a component yields one Removed and two Added; an
// added link that merges two yields two Removed and one Added. Clean
// components appear in neither list.
type Diff struct {
	// Removed holds the prior form of every component invalidated by the
	// churn, ordered by smallest link.
	Removed []Component
	// Added holds the new form of every dirty component, ordered by
	// smallest link.
	Added []Component
	// DeactivatedRows and ActivatedRows are the candidate paths whose
	// active state flipped, ascending.
	DeactivatedRows []int32
	ActivatedRows   []int32
}

// Empty reports whether the churn step changed nothing (e.g. a link with no
// active candidate paths went down).
func (d *Diff) Empty() bool {
	return len(d.Removed) == 0 && len(d.Added) == 0 &&
		len(d.DeactivatedRows) == 0 && len(d.ActivatedRows) == 0
}

// Incremental maintains the masked decomposition of a pristine CSR under a
// stream of link down/up events, recomputing only the components a change
// actually touches. The inverted link→rows index is built once; each Apply
// costs O(flipped rows + dirty component size), independent of fabric size.
type Incremental struct {
	csr      *CSR
	numLinks int

	down    []bool  // current down mask, by link
	downCnt []int32 // per-row count of down links on the row

	invOff  []int32 // link -> start into invRows
	invRows []int32 // rows through each link, ascending within a link

	comps  []Component
	compOf []int32 // link -> index into comps, -1 when in no component
}

// NewIncremental builds the differ over a pristine matrix with an initial
// down set. Components() starts bit-identical to DecomposeMasked(csr,
// numLinks, initialDown).
func NewIncremental(csr *CSR, numLinks int, initialDown []topo.LinkID) *Incremental {
	inc := &Incremental{
		csr:      csr,
		numLinks: numLinks,
		down:     make([]bool, numLinks),
		downCnt:  make([]int32, csr.Len()),
		invOff:   make([]int32, numLinks+1),
		compOf:   make([]int32, numLinks),
	}
	// Counting sort for the inverted index: size, prefix-sum, fill.
	for _, l := range csr.Links {
		inc.invOff[int(l)+1]++
	}
	for l := 0; l < numLinks; l++ {
		inc.invOff[l+1] += inc.invOff[l]
	}
	inc.invRows = make([]int32, len(csr.Links))
	fill := make([]int32, numLinks)
	copy(fill, inc.invOff[:numLinks])
	n := csr.Len()
	for i := 0; i < n; i++ {
		for _, l := range csr.Row(i) {
			inc.invRows[fill[l]] = int32(i)
			fill[l]++
		}
	}
	for _, l := range initialDown {
		if inc.down[l] {
			continue
		}
		inc.down[l] = true
		for _, r := range inc.rowsThrough(int32(l)) {
			inc.downCnt[r]++
		}
	}
	inc.comps = DecomposeMasked(csr, numLinks, initialDown)
	for i := range inc.compOf {
		inc.compOf[i] = -1
	}
	for ci := range inc.comps {
		for _, l := range inc.comps[ci].Links {
			inc.compOf[l] = int32(ci)
		}
	}
	return inc
}

func (inc *Incremental) rowsThrough(l int32) []int32 {
	return inc.invRows[inc.invOff[l]:inc.invOff[l+1]]
}

// Components returns the current masked decomposition, ordered by smallest
// link. The slice and its contents must not be modified.
func (inc *Incremental) Components() []Component { return inc.comps }

// Down returns the current down links, ascending.
func (inc *Incremental) Down() []topo.LinkID {
	var out []topo.LinkID
	for l, d := range inc.down {
		if d {
			out = append(out, topo.LinkID(l))
		}
	}
	return out
}

// CompIndexOf returns the index of the component containing link, or -1.
func (inc *Incremental) CompIndexOf(l topo.LinkID) int {
	if int(l) >= inc.numLinks {
		return -1
	}
	return int(inc.compOf[l])
}

// Apply transitions links in down from up→down and links in up from down→up,
// and returns the exact set of dirty components. It is strict: a link
// already in the requested state is an error (state drift between caller and
// differ is a bug worth surfacing). A link listed in both down and up flaps
// within the step and nets out. On error the differ is unchanged.
func (inc *Incremental) Apply(down, up []topo.LinkID) (Diff, error) {
	for _, l := range down {
		if int(l) >= inc.numLinks {
			return Diff{}, fmt.Errorf("route: down link %d out of range (numLinks=%d)", l, inc.numLinks)
		}
		if inc.down[l] {
			return Diff{}, fmt.Errorf("route: link %d is already down", l)
		}
	}
	seenUp := make(map[topo.LinkID]bool, len(up))
	for _, l := range up {
		if int(l) >= inc.numLinks {
			return Diff{}, fmt.Errorf("route: up link %d out of range (numLinks=%d)", l, inc.numLinks)
		}
		if seenUp[l] {
			return Diff{}, fmt.Errorf("route: link %d listed twice in up set", l)
		}
		seenUp[l] = true
		if !inc.down[l] {
			wasDowned := false
			for _, d := range down {
				if d == l {
					wasDowned = true
					break
				}
			}
			if !wasDowned {
				return Diff{}, fmt.Errorf("route: link %d is not down", l)
			}
		}
	}
	seenDown := make(map[topo.LinkID]bool, len(down))
	for _, l := range down {
		if seenDown[l] {
			return Diff{}, fmt.Errorf("route: link %d listed twice in down set", l)
		}
		seenDown[l] = true
	}

	// Update counts, remembering each touched row's pre-step count so that
	// intra-step flaps (same link in down and up) net out correctly.
	before := make(map[int32]int32)
	touchRow := func(r int32, delta int32) {
		if _, ok := before[r]; !ok {
			before[r] = inc.downCnt[r]
		}
		inc.downCnt[r] += delta
	}
	for _, l := range down {
		inc.down[l] = true
		for _, r := range inc.rowsThrough(int32(l)) {
			touchRow(r, 1)
		}
	}
	for _, l := range up {
		inc.down[l] = false
		for _, r := range inc.rowsThrough(int32(l)) {
			touchRow(r, -1)
		}
	}

	var deactivated, activated []int32
	for r, old := range before {
		now := inc.downCnt[r]
		switch {
		case old == 0 && now > 0:
			deactivated = append(deactivated, r)
		case old > 0 && now == 0:
			activated = append(activated, r)
		}
	}
	sort.Slice(deactivated, func(a, b int) bool { return deactivated[a] < deactivated[b] })
	sort.Slice(activated, func(a, b int) bool { return activated[a] < activated[b] })
	diff := Diff{DeactivatedRows: deactivated, ActivatedRows: activated}
	if len(deactivated) == 0 && len(activated) == 0 {
		return diff, nil
	}

	// Dirty components: every component holding a link of a flipped row.
	// Deactivated rows' links are necessarily in a component (the row was
	// active); activated rows' links may be new to the decomposition.
	dirtySet := make(map[int32]bool)
	markRow := func(r int32) {
		for _, l := range inc.csr.Row(int(r)) {
			if ci := inc.compOf[l]; ci >= 0 {
				dirtySet[ci] = true
			}
		}
	}
	for _, r := range deactivated {
		markRow(r)
	}
	for _, r := range activated {
		markRow(r)
	}
	dirty := make([]int32, 0, len(dirtySet))
	for ci := range dirtySet {
		dirty = append(dirty, ci)
	}
	sort.Slice(dirty, func(a, b int) bool { return dirty[a] < dirty[b] })

	// Candidate rows for the local rebuild: surviving paths of dirty
	// components plus newly activated rows, ascending and deduplicated.
	deadRow := make(map[int32]bool, len(deactivated))
	for _, r := range deactivated {
		deadRow[r] = true
	}
	var candRows []int32
	for _, ci := range dirty {
		for _, p := range inc.comps[ci].Paths {
			if !deadRow[p] {
				candRows = append(candRows, p)
			}
		}
	}
	candRows = append(candRows, activated...)
	sort.Slice(candRows, func(a, b int) bool { return candRows[a] < candRows[b] })
	candRows = dedupInt32(candRows)

	added := rebuildLocal(inc.csr, candRows)

	// Record the prior form of every dirty component, then splice.
	for _, ci := range dirty {
		diff.Removed = append(diff.Removed, inc.comps[ci])
	}
	diff.Added = added

	kept := inc.comps[:0:0]
	for ci := range inc.comps {
		if !dirtySet[int32(ci)] {
			kept = append(kept, inc.comps[ci])
		}
	}
	kept = append(kept, added...)
	sort.Slice(kept, func(a, b int) bool { return kept[a].Links[0] < kept[b].Links[0] })
	inc.comps = kept
	for i := range inc.compOf {
		inc.compOf[i] = -1
	}
	for ci := range inc.comps {
		for _, l := range inc.comps[ci].Links {
			inc.compOf[l] = int32(ci)
		}
	}
	return diff, nil
}

// rebuildLocal decomposes just the given active rows, using a local
// link-index space so the cost is proportional to the dirty region, not the
// fabric. Rows must be ascending. Output matches DecomposeMasked ordering:
// components by smallest link, Links ascending, Paths ascending.
func rebuildLocal(csr *CSR, rows []int32) []Component {
	if len(rows) == 0 {
		return nil
	}
	// Local link universe: distinct links of the rows, ascending.
	var locals []int32
	localOf := make(map[int32]int32)
	for _, r := range rows {
		for _, gl := range csr.Row(int(r)) {
			if _, ok := localOf[int32(gl)]; !ok {
				localOf[int32(gl)] = 0 // placeholder; assigned after sort
				locals = append(locals, int32(gl))
			}
		}
	}
	sort.Slice(locals, func(a, b int) bool { return locals[a] < locals[b] })
	for i, gl := range locals {
		localOf[gl] = int32(i)
	}

	uf := newUnionFind(len(locals))
	for _, r := range rows {
		row := csr.Row(int(r))
		if len(row) == 0 {
			continue
		}
		first := localOf[int32(row[0])]
		for _, gl := range row[1:] {
			uf.union(first, localOf[int32(gl)])
		}
	}
	rootIdx := make(map[int32]int)
	compOf := make([]int32, len(locals))
	var comps []Component
	for li, gl := range locals {
		r := uf.find(int32(li))
		ci, ok := rootIdx[r]
		if !ok {
			ci = len(comps)
			rootIdx[r] = ci
			comps = append(comps, Component{})
		}
		compOf[li] = int32(ci)
		comps[ci].Links = append(comps[ci].Links, topo.LinkID(gl))
	}
	for _, r := range rows {
		row := csr.Row(int(r))
		if len(row) == 0 {
			continue
		}
		ci := compOf[localOf[int32(row[0])]]
		comps[ci].Paths = append(comps[ci].Paths, r)
	}
	sort.Slice(comps, func(a, b int) bool { return comps[a].Links[0] < comps[b].Links[0] })
	return comps
}

func dedupInt32(s []int32) []int32 {
	if len(s) < 2 {
		return s
	}
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
