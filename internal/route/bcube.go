package route

import (
	"github.com/detector-net/detector/internal/topo"
)

// BCubePaths is the candidate path universe of BCube(n, k): the k+1 parallel
// paths of BuildPathSet for every ordered server pair (the paper treats
// BCube servers as switches, §4.4 footnote 2). Index layout is
// (orderedPair(src,dst) * (k+1)) + parallelIndex.
type BCubePaths struct {
	B    *topo.BCube
	nSrv int
}

var (
	_ PathSet    = (*BCubePaths)(nil)
	_ Symmetric  = (*BCubePaths)(nil)
	_ BulkLinker = (*BCubePaths)(nil)
)

// NewBCubePaths enumerates the candidate paths of b.
func NewBCubePaths(b *topo.BCube) *BCubePaths {
	return &BCubePaths{B: b, nSrv: b.NumServers()}
}

// PerPair returns k+1, the number of parallel paths per ordered pair.
func (p *BCubePaths) PerPair() int { return p.B.K + 1 }

// Len returns nSrv*(nSrv-1)*(k+1).
func (p *BCubePaths) Len() int { return p.nSrv * (p.nSrv - 1) * p.PerPair() }

// Decode splits path index idx into (src label, dst label, parallel index).
func (p *BCubePaths) Decode(idx int) (src, dst, pi int) {
	pi = idx % p.PerPair()
	src, dst = unpackPair(idx/p.PerPair(), p.nSrv)
	return src, dst, pi
}

// Encode is the inverse of Decode.
func (p *BCubePaths) Encode(src, dst, pi int) int {
	return orderedPair(src, dst, p.nSrv)*p.PerPair() + pi
}

// AppendLinks implements PathSet.
func (p *BCubePaths) AppendLinks(idx int, buf []topo.LinkID) []topo.LinkID {
	src, dst, pi := p.Decode(idx)
	return p.B.BuildPathLinks(src, dst, pi, buf)
}

// AppendAllLinks implements BulkLinker: it replays the BuildPathSet
// construction for every ordered pair and parallel index with pure digit
// arithmetic, emitting links from a precomputed (server, level) → link
// table. Every BCube link is a server-switch link, so the table has
// nSrv*(k+1) entries resolved through the link map exactly once; the
// generic fallback pays two map lookups per hop per path.
func (p *BCubePaths) AppendAllLinks(links []topo.LinkID, offsets []int32) ([]topo.LinkID, []int32) {
	b := p.B
	kk := b.K + 1
	table := make([]topo.LinkID, p.nSrv*kk)
	for a := 0; a < p.nSrv; a++ {
		for lvl := 0; lvl < kk; lvl++ {
			table[a*kk+lvl] = b.MustLink(b.SrvID[a], b.SwitchFor(a, lvl))
		}
	}
	// Digit-correction orders per parallel index (BCube paper, Fig. 5):
	// shiftPerms for pairs whose digit i differs, detourPerms for the
	// neighbor detour when it does not (digit i is restored last).
	shiftPerms := make([][]int, kk)  // (i, i-1, ..., 0, K, ..., i+1)
	detourPerms := make([][]int, kk) // (i-1, ..., 0, K, ..., i+1)
	for i := 0; i < kk; i++ {
		for d := i; d >= 0; d-- {
			shiftPerms[i] = append(shiftPerms[i], d)
		}
		for d := i - 1; d >= 0; d-- {
			detourPerms[i] = append(detourPerms[i], d)
		}
		for d := b.K; d > i; d-- {
			shiftPerms[i] = append(shiftPerms[i], d)
			detourPerms[i] = append(detourPerms[i], d)
		}
	}
	emitHop := func(x, y, lvl int) {
		links = append(links, table[x*kk+lvl], table[y*kk+lvl])
	}
	dcRoute := func(cur, dst int, perm []int) {
		for _, dg := range perm {
			want := b.Digit(dst, dg)
			if b.Digit(cur, dg) == want {
				continue
			}
			next := b.SetDigit(cur, dg, want)
			emitHop(cur, next, dg)
			cur = next
		}
	}
	// Worst case 2*(k+2) links per path (detour, all digits differing).
	bound := p.Len() * 2 * (b.K + 2)
	checkArenaSize(len(links) + bound)
	if cap(links)-len(links) < bound {
		grown := make([]topo.LinkID, len(links), len(links)+bound)
		copy(grown, links)
		links = grown
	}
	for s := 0; s < p.nSrv; s++ {
		for d := 0; d < p.nSrv; d++ {
			if d == s {
				continue
			}
			for i := 0; i < kk; i++ {
				if b.Digit(s, i) != b.Digit(d, i) {
					dcRoute(s, d, shiftPerms[i])
				} else {
					c := (b.Digit(s, i) + 1) % b.N
					mid := b.SetDigit(s, i, c)
					emitHop(s, mid, i)
					last := b.SetDigit(d, i, c)
					dcRoute(mid, last, detourPerms[i])
					emitHop(last, d, i)
				}
				offsets = append(offsets, int32(len(links)))
			}
		}
	}
	return links, offsets
}

// Endpoints implements PathSet.
func (p *BCubePaths) Endpoints(idx int) (src, dst topo.NodeID) {
	s, d, _ := p.Decode(idx)
	return p.B.SrvID[s], p.B.SrvID[d]
}

// shift applies the automorphism shift generator: every digit of both
// endpoint labels advances by one modulo n (a translation of the BCube
// lattice). The generator order is n.
func (p *BCubePaths) shift(label, r int) int {
	out := 0
	for i := 0; i <= p.B.K; i++ {
		d := (p.B.Digit(label, i) + r) % p.B.N
		out = p.B.SetDigit(out, i, d)
	}
	return out
}

// IsRepresentative implements Symmetric: the canonical orbit member has
// source digit 0 equal to zero.
func (p *BCubePaths) IsRepresentative(idx int) bool {
	src, _, _ := p.Decode(idx)
	return p.B.Digit(src, 0) == 0
}

// AppendOrbit implements Symmetric.
func (p *BCubePaths) AppendOrbit(idx int, buf []int) []int {
	src, dst, pi := p.Decode(idx)
	for r := 1; r < p.B.N; r++ {
		buf = append(buf, p.Encode(p.shift(src, r), p.shift(dst, r), pi))
	}
	return buf
}
