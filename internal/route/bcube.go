package route

import (
	"github.com/detector-net/detector/internal/topo"
)

// BCubePaths is the candidate path universe of BCube(n, k): the k+1 parallel
// paths of BuildPathSet for every ordered server pair (the paper treats
// BCube servers as switches, §4.4 footnote 2). Index layout is
// (orderedPair(src,dst) * (k+1)) + parallelIndex.
type BCubePaths struct {
	B    *topo.BCube
	nSrv int
}

var (
	_ PathSet   = (*BCubePaths)(nil)
	_ Symmetric = (*BCubePaths)(nil)
)

// NewBCubePaths enumerates the candidate paths of b.
func NewBCubePaths(b *topo.BCube) *BCubePaths {
	return &BCubePaths{B: b, nSrv: b.NumServers()}
}

// PerPair returns k+1, the number of parallel paths per ordered pair.
func (p *BCubePaths) PerPair() int { return p.B.K + 1 }

// Len returns nSrv*(nSrv-1)*(k+1).
func (p *BCubePaths) Len() int { return p.nSrv * (p.nSrv - 1) * p.PerPair() }

// Decode splits path index idx into (src label, dst label, parallel index).
func (p *BCubePaths) Decode(idx int) (src, dst, pi int) {
	pi = idx % p.PerPair()
	src, dst = unpackPair(idx/p.PerPair(), p.nSrv)
	return src, dst, pi
}

// Encode is the inverse of Decode.
func (p *BCubePaths) Encode(src, dst, pi int) int {
	return orderedPair(src, dst, p.nSrv)*p.PerPair() + pi
}

// AppendLinks implements PathSet.
func (p *BCubePaths) AppendLinks(idx int, buf []topo.LinkID) []topo.LinkID {
	src, dst, pi := p.Decode(idx)
	return p.B.BuildPathLinks(src, dst, pi, buf)
}

// Endpoints implements PathSet.
func (p *BCubePaths) Endpoints(idx int) (src, dst topo.NodeID) {
	s, d, _ := p.Decode(idx)
	return p.B.SrvID[s], p.B.SrvID[d]
}

// shift applies the automorphism shift generator: every digit of both
// endpoint labels advances by one modulo n (a translation of the BCube
// lattice). The generator order is n.
func (p *BCubePaths) shift(label, r int) int {
	out := 0
	for i := 0; i <= p.B.K; i++ {
		d := (p.B.Digit(label, i) + r) % p.B.N
		out = p.B.SetDigit(out, i, d)
	}
	return out
}

// IsRepresentative implements Symmetric: the canonical orbit member has
// source digit 0 equal to zero.
func (p *BCubePaths) IsRepresentative(idx int) bool {
	src, _, _ := p.Decode(idx)
	return p.B.Digit(src, 0) == 0
}

// AppendOrbit implements Symmetric.
func (p *BCubePaths) AppendOrbit(idx int, buf []int) []int {
	src, dst, pi := p.Decode(idx)
	for r := 1; r < p.B.N; r++ {
		buf = append(buf, p.Encode(p.shift(src, r), p.shift(dst, r), pi))
	}
	return buf
}
