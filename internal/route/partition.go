package route

import (
	"sort"

	"github.com/detector-net/detector/internal/topo"
)

// CutLink is one link whose observed paths span more than one part of an
// approximate partition — in the server-level matrices that motivate the
// partitioner, a pinger or responder uplink shared by routes into several
// ToR subtrees. Its hit ratio is computed per part from that part's path
// subset only, so Parts is the exact bound on how far the link's evidence
// is split: a failing cut link still shows hit ratio ≈ 1 inside every part
// (all of its paths there are lossy), but the per-part explained-loss
// counts are each 1/Parts-ish of the global count.
type CutLink struct {
	Link topo.LinkID
	// Parts is the replication count: how many parts observe the link.
	Parts int
	// Owner is the part seeing the most paths through the link (ties to
	// the smaller part index) — the part whose subset retains the largest
	// share of the link's evidence.
	Owner int32
}

// Partition is an approximate owner derivation over a served probe matrix:
// every path is assigned to exactly one part, and the links whose evidence
// the assignment splits are enumerated with their replication counts, so
// the accuracy loss of partitioning is quantifiable instead of silent.
type Partition struct {
	// NumParts is the number of non-empty parts.
	NumParts int
	// PathPart maps path row -> part index, -1 for linkless paths.
	PathPart []int32
	// Keys names each part by its smallest determining link ID — the same
	// deterministic keying the exact plane feeds to rendezvous assignment,
	// so part ownership is stable across rebuilds.
	Keys []uint64
	// Cuts lists every link observed by more than one part, ascending by
	// link ID.
	Cuts []CutLink
}

// MaxReplication returns the largest per-link replication count, 1 when
// nothing is cut (the partition is exact).
func (pt *Partition) MaxReplication() int {
	max := 1
	for _, c := range pt.Cuts {
		if c.Parts > max {
			max = c.Parts
		}
	}
	return max
}

// ApproximatePartition splits a served probe matrix by its interior links
// only, deliberately cutting the server-edge links that entangle a
// server-level matrix into one giant component.
//
// The server-level routes the controller serves are [server→ToR uplink,
// ToR-level links..., ToR→server downlink]: the first and last link of
// every route with three or more links are server-edge by construction,
// and the two links of an intra-rack route both are. Union-finding over
// interior links only therefore reproduces the ToR-level component
// structure — the structure the exact plane loses the moment two ToR-level
// components share one pinger's uplink. Paths with no interior links
// (intra-rack probes) group among themselves through their own shared
// links, yielding roughly one residual part per rack.
//
// Each path lands in exactly one part; no row is duplicated. A link whose
// paths span several parts (a cut link) has its hit ratio computed per
// part from that part's subset. For a truly failing link the subset ratio
// stays ≈ 1 in every part, which is why the approximation localizes; the
// replication counts in Cuts bound exactly how much evidence any verdict
// merge must reconcile.
func ApproximatePartition(p *Probes) *Partition {
	parent := make([]int32, p.NumLinks)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b topo.LinkID) {
		ra, rb := find(int32(a)), find(int32(b))
		if ra != rb {
			parent[rb] = ra
		}
	}

	// relevant marks links that participate in part determination: interior
	// links of long routes, every link of short (server-edge only) routes.
	relevant := make([]bool, p.NumLinks)
	det := make([]int32, p.NumPaths()) // path -> determining link, -1 linkless
	for i, links := range p.PathLinks {
		switch {
		case len(links) == 0:
			det[i] = -1
		case len(links) <= 2:
			det[i] = int32(links[0])
			relevant[links[0]] = true
			for _, l := range links[1:] {
				relevant[l] = true
				union(links[0], l)
			}
		default:
			interior := links[1 : len(links)-1]
			det[i] = int32(interior[0])
			relevant[interior[0]] = true
			for _, l := range interior[1:] {
				relevant[l] = true
				union(interior[0], l)
			}
		}
	}

	// Parts come out keyed and ordered by their smallest relevant link, the
	// same canonical order the exact plane derives for its components.
	pt := &Partition{PathPart: make([]int32, p.NumPaths())}
	partOf := make(map[int32]int32)
	for l := 0; l < p.NumLinks; l++ {
		if !relevant[l] {
			continue
		}
		r := find(int32(l))
		if _, ok := partOf[r]; !ok {
			partOf[r] = int32(len(pt.Keys))
			pt.Keys = append(pt.Keys, uint64(l))
		}
	}
	pt.NumParts = len(pt.Keys)
	for i := range det {
		if det[i] < 0 {
			pt.PathPart[i] = -1
			continue
		}
		pt.PathPart[i] = partOf[find(det[i])]
	}

	// Cut links: links whose observed paths span more than one part.
	counts := make(map[int32]int)
	for l := 0; l < p.NumLinks; l++ {
		rows := p.PathsThrough(topo.LinkID(l))
		if len(rows) == 0 {
			continue
		}
		for k := range counts {
			delete(counts, k)
		}
		for _, row := range rows {
			if part := pt.PathPart[row]; part >= 0 {
				counts[part]++
			}
		}
		if len(counts) <= 1 {
			continue
		}
		owner, best := int32(-1), -1
		for part, n := range counts {
			if n > best || (n == best && part < owner) {
				owner, best = part, n
			}
		}
		pt.Cuts = append(pt.Cuts, CutLink{Link: topo.LinkID(l), Parts: len(counts), Owner: owner})
	}
	sort.Slice(pt.Cuts, func(i, j int) bool { return pt.Cuts[i].Link < pt.Cuts[j].Link })
	return pt
}
