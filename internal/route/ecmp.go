package route

import (
	"github.com/detector-net/detector/internal/topo"
)

// mix64 is SplitMix64's finalizer, used to derive per-switch independent
// ECMP hash decisions from one flow hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ECMPChoice picks one of n equal-cost next hops for a flow at a switch,
// mimicking per-flow hash load balancing: the same flow always takes the
// same path, different flows spread uniformly.
func ECMPChoice(flowHash uint64, sw topo.NodeID, n int) int {
	return int(mix64(flowHash^uint64(uint32(sw))*0x9e3779b97f4a7c15) % uint64(n))
}

// ECMPFattreePath returns the links and switch hops of the path a packet
// from server src to server dst takes in Fattree f under per-flow ECMP.
// This models how Pingmesh and NetNORAD probes — which do not source-route —
// actually traverse the network: the probe's flow key determines the path,
// so low-rate loss on one of the k²/4 parallel paths dilutes into the
// end-to-end loss rate (the motivation in paper §2).
func ECMPFattreePath(f *topo.Fattree, src, dst topo.NodeID, flowHash uint64) (links []topo.LinkID, hops []topo.NodeID) {
	h := f.Half()
	sn, dn := f.Node(src), f.Node(dst)
	if sn.Kind != topo.Server || dn.Kind != topo.Server {
		panic("route: ECMPFattreePath endpoints must be servers")
	}
	se, de := f.EdgeID[sn.Pod][sn.Index/h], f.EdgeID[dn.Pod][dn.Index/h]
	links = append(links, f.MustLink(src, se))
	hops = append(hops, se)
	if se == de {
		links = append(links, f.MustLink(de, dst))
		return links, hops
	}
	// Up to an aggregation switch chosen by hash at the edge.
	g := ECMPChoice(flowHash, se, h)
	aggUp := f.AggID[sn.Pod][g]
	links = append(links, f.MustLink(se, aggUp))
	hops = append(hops, aggUp)
	if sn.Pod == dn.Pod {
		links = append(links, f.MustLink(aggUp, de))
		hops = append(hops, de)
		links = append(links, f.MustLink(de, dst))
		return links, hops
	}
	// Up to a core within the agg's group, chosen by hash at the agg.
	ci := ECMPChoice(flowHash, aggUp, h)
	core := f.CoreID[g*h+ci]
	links = append(links, f.MustLink(aggUp, core))
	hops = append(hops, core)
	aggDown := f.AggID[dn.Pod][g]
	links = append(links, f.MustLink(core, aggDown))
	hops = append(hops, aggDown)
	links = append(links, f.MustLink(aggDown, de))
	hops = append(hops, de)
	links = append(links, f.MustLink(de, dst))
	return links, hops
}

// FattreeServerPath returns the links of the source-routed path from server
// src to server dst via core c (deTector's IP-in-IP tunnel through a fixed
// core, §3.2). For same-edge pairs the path is src → edge → dst and c is
// ignored.
func FattreeServerPath(f *topo.Fattree, src, dst topo.NodeID, c int) (links []topo.LinkID, hops []topo.NodeID) {
	h := f.Half()
	sn, dn := f.Node(src), f.Node(dst)
	se, de := f.EdgeID[sn.Pod][sn.Index/h], f.EdgeID[dn.Pod][dn.Index/h]
	links = append(links, f.MustLink(src, se))
	hops = append(hops, se)
	if se == de {
		links = append(links, f.MustLink(de, dst))
		return links, hops
	}
	links = f.PathLinks(se, de, c, links)
	hh := f.PathHops(se, de, c, nil)
	hops = append(hops, hh[1:]...)
	links = append(links, f.MustLink(de, dst))
	return links, hops
}
