package route

import (
	"testing"

	"github.com/detector-net/detector/internal/topo"
)

// Two interior groups {4,5} and {6,7}, server-edge links 0-3, entangled by
// link 0 appearing on probes into both groups and on a 2-link intra-rack
// path. Link IDs: 0..3 server-edge, 4..7 interior, 8 spare downlink.
func partitionFixture() *Probes {
	paths := [][]topo.LinkID{
		{0, 4, 5, 2}, // group A probe from server-edge 0
		{1, 4, 5, 2}, // group A probe from server-edge 1
		{0, 6, 7, 3}, // group B probe from the same server-edge 0
		{0, 8},       // intra-rack: both links server-edge
	}
	return NewProbesFromLinks(paths, 9)
}

func TestApproximatePartitionCutsServerEdgeLinks(t *testing.T) {
	p := partitionFixture()
	pt := ApproximatePartition(p)

	// Parts: interior group A {4,5}, interior group B {6,7}, and the
	// intra-rack residual {0,8}.
	if pt.NumParts != 3 {
		t.Fatalf("NumParts = %d, want 3", pt.NumParts)
	}
	// Keys are the smallest relevant link per part, ascending: the
	// intra-rack part keys on 0, the interior groups on 4 and 6.
	want := []uint64{0, 4, 6}
	if len(pt.Keys) != len(want) {
		t.Fatalf("Keys = %v, want %v", pt.Keys, want)
	}
	for i, k := range want {
		if pt.Keys[i] != k {
			t.Fatalf("Keys = %v, want %v", pt.Keys, want)
		}
	}
	// Path ownership: rows 0 and 1 ride group A, row 2 group B, row 3 the
	// intra-rack part.
	if pt.PathPart[0] != pt.PathPart[1] {
		t.Fatalf("group A rows split: parts %d and %d", pt.PathPart[0], pt.PathPart[1])
	}
	if pt.PathPart[0] == pt.PathPart[2] || pt.PathPart[0] == pt.PathPart[3] || pt.PathPart[2] == pt.PathPart[3] {
		t.Fatalf("parts not distinct: %v", pt.PathPart)
	}

	// Link 0 is the only cut: its paths span all 3 parts. Links 1-3 and
	// the interiors each live in one part.
	if len(pt.Cuts) != 1 {
		t.Fatalf("Cuts = %+v, want exactly the entangling link 0", pt.Cuts)
	}
	c := pt.Cuts[0]
	if c.Link != 0 || c.Parts != 3 {
		t.Fatalf("cut = %+v, want link 0 across 3 parts", c)
	}
	// The owner part is the one with the most of link 0's paths; all three
	// parts hold exactly one, so the tie breaks to the smallest part index.
	if c.Owner != pt.PathPart[0] && c.Owner != pt.PathPart[2] && c.Owner != pt.PathPart[3] {
		t.Fatalf("cut owner %d is not a part that observes link 0", c.Owner)
	}
	if pt.MaxReplication() != 3 {
		t.Fatalf("MaxReplication = %d, want 3", pt.MaxReplication())
	}
}

func TestApproximatePartitionLinklessPath(t *testing.T) {
	paths := [][]topo.LinkID{
		{0, 1, 2},
		{},
	}
	pt := ApproximatePartition(NewProbesFromLinks(paths, 3))
	if pt.PathPart[1] != -1 {
		t.Fatalf("linkless path assigned part %d, want -1", pt.PathPart[1])
	}
	if pt.NumParts != 1 {
		t.Fatalf("NumParts = %d, want 1", pt.NumParts)
	}
}

func TestProbesSignatureContentKeyed(t *testing.T) {
	a := partitionFixture()
	b := partitionFixture()
	if ProbesSignature(a) != ProbesSignature(b) {
		t.Fatal("identical content in distinct allocations hashes differently")
	}
	c := NewProbesFromLinks([][]topo.LinkID{{0, 4, 5, 2}, {1, 4, 5, 2}, {0, 6, 7, 3}}, 9)
	if ProbesSignature(a) == ProbesSignature(c) {
		t.Fatal("dropping a row did not change the signature")
	}
	d := partitionFixture()
	d.SetIDs([]uint32{9, 8, 7, 6})
	if ProbesSignature(a) == ProbesSignature(d) {
		t.Fatal("sparse path IDs did not change the signature")
	}
}
