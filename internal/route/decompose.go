package route

import (
	"sort"

	"github.com/detector-net/detector/internal/topo"
)

// Component is one independent subproblem of a routing matrix: a maximal set
// of links connected through shared paths, together with every candidate
// path over those links (paper §4.3, Observation 1).
type Component struct {
	// Links are the global link IDs of this component, sorted.
	Links []topo.LinkID
	// Paths are indices into the originating PathSet, ascending.
	Paths []int32
}

// Key returns a stable identity for the component: its smallest link ID.
// Links are sorted ascending, so this is Links[0]. Component indices shift
// when the candidate set changes, but the smallest link of a connected
// group does not — shard assignment hashes this key so that ownership is
// stable across recomputes.
func (c *Component) Key() uint64 {
	if len(c.Links) == 0 {
		return 0
	}
	return uint64(c.Links[0])
}

// unionFind is a standard weighted quick-union with path halving.
type unionFind struct {
	parent []int32
	rank   []int8
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int32, n), rank: make([]int8, n)}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

func (u *unionFind) find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int32) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}

// Decompose partitions the routing matrix into independent components by
// building the path-link bipartite graph implicitly: all links of one path
// are unioned, then paths are grouped by the component of their first link.
// Links never touched by any path are omitted. This is the generic
// linear-time decomposition the paper describes; for Fattree it discovers
// the k/2 aggregation-position subproblems, for VL2 and BCube it returns a
// single component (and the scan cost is the "extra time to decide whether
// the matrix is decomposable" visible in Table 2).
func Decompose(ps PathSet, numLinks int) []Component {
	return DecomposeCSR(MaterializeCSR(ps), numLinks)
}

// DecomposeCSR is Decompose over an already-materialized matrix: one walk of
// the CSR arena instead of two AppendLinks passes. PMC materializes once and
// shares the CSR between decomposition and its scoring engine.
func DecomposeCSR(csr *CSR, numLinks int) []Component {
	uf := newUnionFind(numLinks)
	touched := make([]bool, numLinks)
	n := csr.Len()
	for i := 0; i < n; i++ {
		row := csr.Row(i)
		if len(row) == 0 {
			continue
		}
		first := int32(row[0])
		touched[first] = true
		for _, l := range row[1:] {
			touched[l] = true
			uf.union(first, int32(l))
		}
	}

	// Label every touched link with its component index; the paths pass
	// then resolves membership with one array load instead of a find.
	rootIdx := make(map[int32]int)
	compOf := make([]int32, numLinks)
	var comps []Component
	for l := 0; l < numLinks; l++ {
		if !touched[l] {
			continue
		}
		r := uf.find(int32(l))
		ci, ok := rootIdx[r]
		if !ok {
			ci = len(comps)
			rootIdx[r] = ci
			comps = append(comps, Component{})
		}
		compOf[l] = int32(ci)
		comps[ci].Links = append(comps[ci].Links, topo.LinkID(l))
	}
	for i := 0; i < n; i++ {
		row := csr.Row(i)
		if len(row) == 0 {
			continue
		}
		ci := compOf[row[0]]
		comps[ci].Paths = append(comps[ci].Paths, int32(i))
	}
	// Deterministic order: by smallest link ID.
	sort.Slice(comps, func(a, b int) bool { return comps[a].Links[0] < comps[b].Links[0] })
	return comps
}

// SingleComponent wraps the whole matrix as one component (the
// no-decomposition baseline for Table 2's strawman column).
func SingleComponent(ps PathSet, numLinks int) Component {
	return SingleComponentCSR(MaterializeCSR(ps), numLinks)
}

// SingleComponentCSR is SingleComponent over a materialized matrix.
func SingleComponentCSR(csr *CSR, numLinks int) Component {
	touched := make([]bool, numLinks)
	n := csr.Len()
	c := Component{Paths: make([]int32, 0, n)}
	for i := 0; i < n; i++ {
		for _, l := range csr.Row(i) {
			touched[l] = true
		}
		c.Paths = append(c.Paths, int32(i))
	}
	for l := 0; l < numLinks; l++ {
		if touched[l] {
			c.Links = append(c.Links, topo.LinkID(l))
		}
	}
	return c
}
