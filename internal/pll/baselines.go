package pll

import (
	"math"
	"sort"

	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

// Localizer is the common interface of PLL and the baseline algorithms, so
// the evaluation harness can swap them (paper §5.3 compares PLL against
// Tomo, SCORE and OMP on identical probe matrices).
type Localizer interface {
	Name() string
	// Localize returns the suspected bad links for one window.
	Localize(p *route.Probes, obs []Observation) ([]topo.LinkID, error)
}

// PLL adapts Localize to the Localizer interface.
type PLL struct{ Config Config }

// NewPLL returns PLL with the paper's default thresholds.
func NewPLL() *PLL { return &PLL{Config: DefaultConfig()} }

// Name implements Localizer.
func (*PLL) Name() string { return "PLL" }

// Localize implements Localizer.
func (a *PLL) Localize(p *route.Probes, obs []Observation) ([]topo.LinkID, error) {
	res, err := Localize(p, obs, a.Config)
	if err != nil {
		return nil, err
	}
	return res.BadLinks(), nil
}

// Tomo is the NetDiagnoser greedy (Dhamdhere et al., CoNEXT'07): a link is a
// candidate only if NO clean path crosses it, then greedily cover failed
// paths by the candidate explaining the most of them. Partial packet loss
// breaks the exoneration rule — the paper's motivation for PLL's hit-ratio
// threshold (§5.2).
type Tomo struct {
	// Floor and MinLoss mirror PLL preprocessing so the comparison is
	// apples-to-apples.
	Floor   float64
	MinLoss int
}

// NewTomo returns Tomo with PLL-equivalent preprocessing.
func NewTomo() *Tomo { return &Tomo{Floor: 1e-3, MinLoss: 1} }

// Name implements Localizer.
func (*Tomo) Name() string { return "Tomo" }

// Localize implements Localizer.
func (a *Tomo) Localize(p *route.Probes, obs []Observation) ([]topo.LinkID, error) {
	lossy, clean := preprocess(p, obs, Config{LossRatioFloor: a.Floor, MinLoss: a.MinLoss})
	if len(lossy) == 0 {
		return nil, nil
	}
	onClean := make([]bool, p.NumLinks)
	for _, pi := range clean {
		for _, l := range p.PathLinks[pi] {
			onClean[l] = true
		}
	}
	off, arena := lossyIndex(p, lossy)
	var cands []coverCand
	for l := 0; l < p.NumLinks; l++ {
		rows := arena[off[l]:off[l+1]]
		if len(rows) == 0 || onClean[l] {
			continue
		}
		cands = append(cands, coverCand{topo.LinkID(l), rows})
	}
	return greedyCover(lossy, cands, func(link topo.LinkID, unexplained []int32) float64 {
		return float64(len(unexplained))
	}), nil
}

// SCORE is the risk-modeling greedy of Kompella et al. (NSDI'05): pick the
// link with the highest hit ratio (failed paths through it over all paths
// through it), breaking ties by coverage.
type SCORE struct {
	Floor   float64
	MinLoss int
}

// NewSCORE returns SCORE with PLL-equivalent preprocessing.
func NewSCORE() *SCORE { return &SCORE{Floor: 1e-3, MinLoss: 1} }

// Name implements Localizer.
func (*SCORE) Name() string { return "SCORE" }

// Localize implements Localizer.
func (a *SCORE) Localize(p *route.Probes, obs []Observation) ([]topo.LinkID, error) {
	lossy, _ := preprocess(p, obs, Config{LossRatioFloor: a.Floor, MinLoss: a.MinLoss})
	if len(lossy) == 0 {
		return nil, nil
	}
	pathsThrough := observedPathsThrough(p, obs)
	off, arena := lossyIndex(p, lossy)
	var cands []coverCand
	for l := 0; l < p.NumLinks; l++ {
		rows := arena[off[l]:off[l+1]]
		if len(rows) == 0 {
			continue
		}
		cands = append(cands, coverCand{topo.LinkID(l), rows})
	}
	return greedyCover(lossy, cands, func(link topo.LinkID, unexplained []int32) float64 {
		// Hit ratio with a small coverage tie-break.
		return float64(len(unexplained))/float64(pathsThrough[link]) +
			float64(len(unexplained))*1e-9
	}), nil
}

// coverCand is a candidate link with its row of the lossy inverted index
// (ascending lossy-observation indices, aliasing the shared arena).
type coverCand struct {
	link  topo.LinkID
	paths []int32
}

// greedyCover repeatedly selects the candidate with the highest utility
// until every lossy observation is explained or no candidate has positive
// utility. Candidates arrive in ascending link order and the comparison is
// strict, so ties break on lower link ID — the same determinism rule as
// the previous map-backed implementation, minus the sort.
func greedyCover(lossy []Observation, cands []coverCand, utility func(topo.LinkID, []int32) float64) []topo.LinkID {
	explained := make([]bool, len(lossy))
	remaining := len(lossy)
	var out []topo.LinkID
	var scratch, bestPaths []int32
	for remaining > 0 {
		best := topo.LinkID(-1)
		bestU := 0.0
		for _, c := range cands {
			scratch = scratch[:0]
			for _, pi := range c.paths {
				if !explained[pi] {
					scratch = append(scratch, pi)
				}
			}
			if len(scratch) == 0 {
				continue
			}
			u := utility(c.link, scratch)
			if u > bestU {
				best, bestU = c.link, u
				bestPaths = append(bestPaths[:0], scratch...)
			}
		}
		if best < 0 {
			break
		}
		for _, pi := range bestPaths {
			explained[pi] = true
			remaining--
		}
		out = append(out, best)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OMP localizes by orthogonal matching pursuit (Pati et al., ACSSC'93) on
// the linearized loss system: y_p = Σ_{l on p} x_l with
// y_p = -ln(1 - lossRatio_p) and x_l = -ln(1 - lossRate_l). Columns are
// links; OMP greedily adds the column most correlated with the residual and
// re-solves least squares over the active set.
type OMP struct {
	// MaxIters bounds the active set size; 0 means the number of lossy paths.
	MaxIters int
	// RateThreshold declares a link bad when its recovered loss rate
	// exceeds it (default 1e-3, the noise floor).
	RateThreshold float64
	// Residual stops the pursuit when the residual L2 norm falls below it.
	Residual float64
}

// NewOMP returns OMP with defaults matched to PLL preprocessing.
func NewOMP() *OMP { return &OMP{RateThreshold: 1e-3, Residual: 1e-6} }

// Name implements Localizer.
func (*OMP) Name() string { return "OMP" }

// Localize implements Localizer.
func (a *OMP) Localize(p *route.Probes, obs []Observation) ([]topo.LinkID, error) {
	// Observed paths form the rows; links on them the columns. Unknown
	// path ids drop, as in every other localizer's preprocessing.
	var rows []Observation
	for _, o := range obs {
		if o.Sent > 0 && o.Path >= 0 && o.Path < p.NumPaths() {
			rows = append(rows, o)
		}
	}
	if len(rows) == 0 {
		return nil, nil
	}
	// colIndex is the flat link → column translation (-1 = unseen), the
	// CSR-style replacement for the old map; columns keep first-seen order.
	colIndex := make([]int32, p.NumLinks)
	for i := range colIndex {
		colIndex[i] = -1
	}
	var cols []topo.LinkID
	for _, o := range rows {
		for _, l := range p.PathLinks[o.Path] {
			if colIndex[l] < 0 {
				colIndex[l] = int32(len(cols))
				cols = append(cols, l)
			}
		}
	}
	m, n := len(rows), len(cols)
	y := make([]float64, m)
	anyLoss := false
	for i, o := range rows {
		ratio := float64(o.Lost) / float64(o.Sent)
		if ratio > 0.9999 {
			ratio = 0.9999
		}
		y[i] = -math.Log(1 - ratio)
		if o.Lost > 0 {
			anyLoss = true
		}
	}
	if !anyLoss {
		return nil, nil
	}
	// A is the 0/1 incidence matrix, stored per column.
	colRows := make([][]int, n)
	for i, o := range rows {
		for _, l := range p.PathLinks[o.Path] {
			colRows[colIndex[l]] = append(colRows[colIndex[l]], i)
		}
	}

	maxIters := a.MaxIters
	if maxIters <= 0 || maxIters > m {
		maxIters = m
	}
	residual := append([]float64(nil), y...)
	var active []int
	inActive := make([]bool, n)
	var x []float64
	for iter := 0; iter < maxIters; iter++ {
		norm := 0.0
		for _, r := range residual {
			norm += r * r
		}
		if math.Sqrt(norm) < a.Residual {
			break
		}
		// Column most correlated with the residual.
		best, bestCorr := -1, 0.0
		for c := 0; c < n; c++ {
			if inActive[c] {
				continue
			}
			dot := 0.0
			for _, r := range colRows[c] {
				dot += residual[r]
			}
			corr := math.Abs(dot) / math.Sqrt(float64(len(colRows[c])))
			if corr > bestCorr+1e-12 {
				best, bestCorr = c, corr
			}
		}
		if best < 0 || bestCorr < 1e-9 {
			break
		}
		active = append(active, best)
		inActive[best] = true
		x = solveLeastSquares(colRows, active, y, m)
		// Recompute the residual.
		copy(residual, y)
		for ai, c := range active {
			for _, r := range colRows[c] {
				residual[r] -= x[ai]
			}
		}
	}

	rateFloor := -math.Log(1 - a.RateThreshold)
	var out []topo.LinkID
	for ai, c := range active {
		if x[ai] > rateFloor {
			out = append(out, cols[c])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// solveLeastSquares solves min ||A_active x - y|| via the normal equations
// with Gaussian elimination and clamps negative rates to zero (loss rates
// cannot be negative). The active set stays small, so dense solving is fine.
func solveLeastSquares(colRows [][]int, active []int, y []float64, m int) []float64 {
	k := len(active)
	// G = AᵀA over active columns; b = Aᵀy. Row membership is a dense
	// bool vector per active column (columns are sparse, m is one window's
	// path count), replacing the per-column hash sets.
	g := make([][]float64, k)
	b := make([]float64, k)
	inRows := make([][]bool, k)
	for i, c := range active {
		inRows[i] = make([]bool, m)
		for _, r := range colRows[c] {
			inRows[i][r] = true
			b[i] += y[r]
		}
	}
	for i := range active {
		g[i] = make([]float64, k)
		for j := range active {
			dot := 0.0
			for _, r := range colRows[active[j]] {
				if inRows[i][r] {
					dot++
				}
			}
			g[i][j] = dot
		}
		g[i][i] += 1e-9 // ridge for singular systems
	}
	x := gaussSolve(g, b)
	for i := range x {
		if x[i] < 0 {
			x[i] = 0
		}
	}
	return x
}

// gaussSolve solves g x = b in place with partial pivoting.
func gaussSolve(g [][]float64, b []float64) []float64 {
	k := len(b)
	for col := 0; col < k; col++ {
		pivot := col
		for r := col + 1; r < k; r++ {
			if math.Abs(g[r][col]) > math.Abs(g[pivot][col]) {
				pivot = r
			}
		}
		g[col], g[pivot] = g[pivot], g[col]
		b[col], b[pivot] = b[pivot], b[col]
		if math.Abs(g[col][col]) < 1e-12 {
			continue
		}
		for r := col + 1; r < k; r++ {
			f := g[r][col] / g[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < k; c++ {
				g[r][c] -= f * g[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, k)
	for r := k - 1; r >= 0; r-- {
		if math.Abs(g[r][r]) < 1e-12 {
			x[r] = 0
			continue
		}
		sum := b[r]
		for c := r + 1; c < k; c++ {
			sum -= g[r][c] * x[c]
		}
		x[r] = sum / g[r][r]
	}
	return x
}
