package pll

import (
	"testing"

	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

// tinyMatrix builds the paper Fig. 3 matrix as probes: p1={0,1}, p2={0,2},
// p3={2} over 3 links.
func tinyMatrix() *route.Probes {
	return route.NewProbesFromLinks([][]topo.LinkID{
		{0, 1},
		{0, 2},
		{2},
	}, 3)
}

func obs(path, sent, lost int) Observation { return Observation{Path: path, Sent: sent, Lost: lost} }

func TestLocalizeSingleFullLoss(t *testing.T) {
	p := tinyMatrix()
	// Link 0 fails fully: p1 and p2 lose everything, p3 clean.
	res, err := Localize(p, []Observation{obs(0, 100, 100), obs(1, 100, 100), obs(2, 100, 0)}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := res.BadLinks()
	if len(bad) != 1 || bad[0] != 0 {
		t.Fatalf("localized %v, want [0]", bad)
	}
	if res.Bad[0].Rate < 0.99 {
		t.Errorf("estimated rate %.3f, want ~1.0", res.Bad[0].Rate)
	}
	if res.UnexplainedPaths != 0 {
		t.Errorf("%d unexplained paths", res.UnexplainedPaths)
	}
}

func TestLocalizeDistinguishesLinks(t *testing.T) {
	p := tinyMatrix()
	// Only p1 lossy -> link 1 (the only link unique to p1).
	res, err := Localize(p, []Observation{obs(0, 100, 40), obs(1, 100, 0), obs(2, 100, 0)}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := res.BadLinks()
	if len(bad) != 1 || bad[0] != 1 {
		t.Fatalf("localized %v, want [1]", bad)
	}
}

// TestHitRatioHandlesPartialLoss is the §5.2 scenario: a blackhole on link 0
// drops only p1's flows; p2 (also over link 0) stays clean. Tomo exonerates
// link 0 because of p2 and blames link 1; PLL's 0.6 threshold... with 1 of 2
// paths lossy the hit ratio is 0.5 < 0.6, so PLL also falls back to link 1
// here — the threshold matters when most paths through the link see loss.
// Use a matrix where 2 of 3 paths through the blackholed link are lossy.
func TestHitRatioHandlesPartialLoss(t *testing.T) {
	p := route.NewProbesFromLinks([][]topo.LinkID{
		{0, 1}, // lossy
		{0, 2}, // lossy
		{0, 3}, // clean: blackhole misses this path's flows
		{3},    // clean
	}, 4)
	observations := []Observation{
		obs(0, 100, 50), obs(1, 100, 50), obs(2, 100, 0), obs(3, 100, 0),
	}
	res, err := Localize(p, observations, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := res.BadLinks()
	if len(bad) != 1 || bad[0] != 0 {
		t.Fatalf("PLL localized %v, want [0] (hit ratio 2/3 >= 0.6)", bad)
	}

	// Tomo on the same input exonerates link 0 (clean path 2 crosses it)
	// and must blame links 1 and 2 instead — the partial-loss failure mode
	// the paper designs PLL around.
	tomoBad, err := NewTomo().Localize(p, observations)
	if err != nil {
		t.Fatal(err)
	}
	if len(tomoBad) != 2 || tomoBad[0] != 1 || tomoBad[1] != 2 {
		t.Fatalf("Tomo localized %v, want [1 2] (exonerating the blackholed link)", tomoBad)
	}
}

func TestLocalizeNoiseFiltered(t *testing.T) {
	p := tinyMatrix()
	// Sub-floor loss ratios (1/10000 < 1e-3) are ambient noise, not failures.
	res, err := Localize(p, []Observation{obs(0, 10000, 1), obs(1, 10000, 1), obs(2, 10000, 0)}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bad) != 0 {
		t.Fatalf("localized %v from ambient noise", res.BadLinks())
	}
}

func TestLocalizeUnhealthyPingerDropped(t *testing.T) {
	p := route.NewProbesFromLinks([][]topo.LinkID{{0, 1}, {2}}, 3)
	p.Src[0], p.Dst[0] = 100, 101
	p.Src[1], p.Dst[1] = 102, 103
	cfg := DefaultConfig()
	cfg.Unhealthy = map[topo.NodeID]bool{100: true}
	// Path 0's "losses" come from a rebooting pinger; they must be ignored.
	res, err := Localize(p, []Observation{obs(0, 100, 100), obs(1, 100, 0)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bad) != 0 {
		t.Fatalf("localized %v from an unhealthy pinger's reports", res.BadLinks())
	}
}

func TestLocalizeMultipleFailuresAcrossComponents(t *testing.T) {
	// Two disjoint components: links {0,1} and {10,11}.
	p := route.NewProbesFromLinks([][]topo.LinkID{
		{0, 1}, {0}, // component A
		{10, 11}, {11}, // component B
	}, 12)
	res, err := Localize(p, []Observation{
		obs(0, 100, 80), obs(1, 100, 80), // link 0 bad
		obs(2, 100, 60), obs(3, 100, 0), // link 10 bad
	}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := res.BadLinks()
	if len(bad) != 2 || bad[0] != 0 || bad[1] != 10 {
		t.Fatalf("localized %v, want [0 10]", bad)
	}
}

func TestLocalizeInvalidConfig(t *testing.T) {
	p := tinyMatrix()
	if _, err := Localize(p, nil, Config{HitRatio: 0}); err == nil {
		t.Error("zero hit ratio accepted")
	}
	if _, err := Localize(p, nil, Config{HitRatio: 1.5}); err == nil {
		t.Error("hit ratio > 1 accepted")
	}
}

func TestLocalizeEmptyAndCleanWindows(t *testing.T) {
	p := tinyMatrix()
	res, err := Localize(p, nil, DefaultConfig())
	if err != nil || len(res.Bad) != 0 {
		t.Fatalf("empty window: %v %v", res.BadLinks(), err)
	}
	res, err = Localize(p, []Observation{obs(0, 50, 0), obs(1, 50, 0), obs(2, 50, 0)}, DefaultConfig())
	if err != nil || len(res.Bad) != 0 {
		t.Fatalf("clean window: %v %v", res.BadLinks(), err)
	}
}

func TestSCORELocalizesByHitRatio(t *testing.T) {
	p := route.NewProbesFromLinks([][]topo.LinkID{
		{0, 1}, {0, 2}, {1}, {2},
	}, 3)
	// Link 0: 2/2 paths lossy. Links 1,2: 1/2 lossy each.
	bad, err := NewSCORE().Localize(p, []Observation{
		obs(0, 100, 30), obs(1, 100, 30), obs(2, 100, 0), obs(3, 100, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || bad[0] != 0 {
		t.Fatalf("SCORE localized %v, want [0]", bad)
	}
}

func TestOMPLocalizesSingleLink(t *testing.T) {
	p := tinyMatrix()
	bad, err := NewOMP().Localize(p, []Observation{
		obs(0, 1000, 200), obs(1, 1000, 210), obs(2, 1000, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || bad[0] != 0 {
		t.Fatalf("OMP localized %v, want [0]", bad)
	}
}

func TestOMPCleanWindow(t *testing.T) {
	p := tinyMatrix()
	bad, err := NewOMP().Localize(p, []Observation{obs(0, 100, 0), obs(1, 100, 0)})
	if err != nil || len(bad) != 0 {
		t.Fatalf("OMP on clean window: %v %v", bad, err)
	}
}

func TestOMPTwoLinks(t *testing.T) {
	// y is separable: links 1 and 2 both lossy, link 0 clean.
	p := route.NewProbesFromLinks([][]topo.LinkID{
		{0, 1}, {0, 2}, {1}, {2}, {0},
	}, 3)
	bad, err := NewOMP().Localize(p, []Observation{
		obs(0, 1000, 300), obs(1, 1000, 150), obs(2, 1000, 300), obs(3, 1000, 150), obs(4, 1000, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 2 || bad[0] != 1 || bad[1] != 2 {
		t.Fatalf("OMP localized %v, want [1 2]", bad)
	}
}

func TestLocalizerNames(t *testing.T) {
	for _, l := range []Localizer{NewPLL(), NewTomo(), NewSCORE(), NewOMP()} {
		if l.Name() == "" {
			t.Errorf("%T has empty name", l)
		}
	}
}
