package pll

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

func TestBinomialTailKnownValues(t *testing.T) {
	// P(X >= 1) with n=1: exactly p.
	if got := BinomialTail(1, 1, 0.3); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("P(X>=1 | 1, 0.3) = %v", got)
	}
	// P(X >= 1) = 1 - (1-p)^n.
	want := 1 - math.Pow(0.99, 100)
	if got := BinomialTail(100, 1, 0.01); math.Abs(got-want) > 1e-9 {
		t.Errorf("P(X>=1 | 100, 0.01) = %v, want %v", got, want)
	}
	// Fair-coin symmetry: P(X >= 6 | 10, 0.5) + P(X >= 5 | 10, 0.5) = 1
	// (complementary tails around the center).
	a := BinomialTail(10, 6, 0.5)
	b := BinomialTail(10, 5, 0.5)
	if math.Abs(a+(1-b)-0.5) > 0.25 { // loose structural check
		t.Logf("tails: %v %v", a, b)
	}
	// Edge cases.
	if BinomialTail(10, 0, 0.5) != 1 {
		t.Error("P(X>=0) must be 1")
	}
	if BinomialTail(10, 11, 0.5) != 0 {
		t.Error("P(X>=11 | n=10) must be 0")
	}
	if BinomialTail(10, 3, 0) != 0 {
		t.Error("p=0 tail must be 0 for k>0")
	}
	if BinomialTail(10, 3, 1) != 1 {
		t.Error("p=1 tail must be 1")
	}
}

// TestBinomialTailMonotonicity: the tail decreases in k and increases in p.
func TestBinomialTailMonotonicity(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(3))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		k := 1 + rng.Intn(n)
		p := 0.001 + 0.998*rng.Float64()
		tail := BinomialTail(n, k, p)
		if tail < 0 || tail > 1 {
			return false
		}
		// Tolerances account for the summation's early-termination cutoff.
		if k < n && BinomialTail(n, k+1, p) > tail*(1+1e-9)+1e-12 {
			return false
		}
		return BinomialTail(n, k, math.Min(p*1.1, 1)) >= tail*(1-1e-9)-1e-12
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSignificantLoss(t *testing.T) {
	// 3 losses in 1000 at baseline 1e-3 (expect 1): p-value ~= 0.08, not
	// significant at 1e-3.
	if SignificantLoss(1000, 3, 1e-3, 1e-3) {
		t.Error("3/1000 at baseline 1e-3 should not be significant")
	}
	// 20 losses in 1000 at baseline 1e-3: overwhelming.
	if !SignificantLoss(1000, 20, 1e-3, 1e-3) {
		t.Error("20/1000 at baseline 1e-3 should be significant")
	}
	if SignificantLoss(0, 0, 1e-3, 1e-3) || SignificantLoss(100, 0, 1e-3, 1e-3) {
		t.Error("zero losses can never be significant")
	}
}

// TestLocalizeWithHypothesisFilter: with the baseline-rate filter on,
// ambient-noise losses that pass the crude ratio floor are still dismissed,
// while a real failure is kept.
func TestLocalizeWithHypothesisFilter(t *testing.T) {
	p := route.NewProbesFromLinks([][]topo.LinkID{
		{0, 1}, {0, 2}, {2},
	}, 3)
	cfg := DefaultConfig()
	cfg.LossRatioFloor = 1e-3
	cfg.BaselineRate = 2e-3 // ambient loss the operator expects
	cfg.Significance = 1e-3

	// Path 0: 4 losses in 1000 — consistent with the 2e-3 baseline
	// (expected 2, p-value ~0.14). Path 1: 30 losses — a real failure.
	res, err := Localize(p, []Observation{
		{Path: 0, Sent: 1000, Lost: 4},
		{Path: 1, Sent: 1000, Lost: 30},
		{Path: 2, Sent: 1000, Lost: 0},
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LossyPaths != 1 {
		t.Fatalf("hypothesis filter kept %d lossy paths, want 1", res.LossyPaths)
	}
	bad := res.BadLinks()
	// Only path 1 is lossy; its unique link is 0-vs-2... path1={0,2},
	// path2={2} clean exonerates nothing under PLL, but hit ratios:
	// link 0: 1/2 paths lossy (path 0 is clean now), link 2: 1/2.
	// The greedy picks one explanatory link; what matters here is that
	// the noise path did not drag link 1 in.
	for _, l := range bad {
		if l == 1 {
			t.Fatalf("noise path implicated link 1: %v", bad)
		}
	}

	// Without the filter, path 0 counts as lossy (4/1000 >= 1e-3 floor).
	cfg.BaselineRate = 0
	res, err = Localize(p, []Observation{
		{Path: 0, Sent: 1000, Lost: 4},
		{Path: 1, Sent: 1000, Lost: 30},
		{Path: 2, Sent: 1000, Lost: 0},
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LossyPaths != 2 {
		t.Fatalf("without the filter both paths should be lossy, got %d", res.LossyPaths)
	}
}
