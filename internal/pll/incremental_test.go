package pll_test

import (
	"math/rand"
	"testing"

	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

// resultsEqual compares everything the diagnoser consumes: the verdict list
// bit-for-bit (link, float rate, explained count) plus both path counters.
// Elapsed is wall-clock and excluded.
func resultsEqual(a, b *pll.Result) bool {
	if a.LossyPaths != b.LossyPaths || a.UnexplainedPaths != b.UnexplainedPaths ||
		len(a.Bad) != len(b.Bad) {
		return false
	}
	for i := range a.Bad {
		if a.Bad[i] != b.Bad[i] {
			return false
		}
	}
	return true
}

// driveDifferential feeds the same randomized window sequence to a standing
// Incremental engine and to one-shot Localize, requiring bit-identical
// results every window. The sequence churns hard: paths appear, change
// counters, and vanish; classification thresholds and the unhealthy set
// shift mid-run; observation slices are built in Go map order so the
// one-shot side sees a different permutation every window.
func driveDifferential(t *testing.T, p *route.Probes, seed int64, windows int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	inc := pll.NewIncremental(p, pll.DefaultConfig())
	cur := make(map[int]pll.Observation)

	for w := 0; w < windows; w++ {
		// Mutate a random slice of the fleet this window.
		muts := 1 + rng.Intn(p.NumPaths()/2+1)
		for i := 0; i < muts; i++ {
			path := rng.Intn(p.NumPaths())
			switch rng.Intn(8) {
			case 0: // pinger went quiet
				delete(cur, path)
				inc.Remove(path)
			case 1: // degenerate report: Sent == 0 must equal absence
				delete(cur, path)
				inc.Update(pll.Observation{Path: path})
			default:
				o := pll.Observation{Path: path, Sent: 20 + rng.Intn(200)}
				switch rng.Intn(3) {
				case 0: // clean
				case 1: // marginal: a few losses, may sit under MinLoss
					o.Lost = rng.Intn(3)
				default: // clearly lossy
					o.Lost = 1 + rng.Intn(o.Sent)
				}
				cur[path] = o
				inc.Update(o)
			}
		}

		cfg := pll.DefaultConfig()
		if w%5 == 3 {
			cfg.MinLoss = 2 + rng.Intn(3)
		}
		if w%7 == 4 {
			cfg.BaselineRate = 1e-3
		}
		if w%3 == 1 { // unhealthy endpoints churn between windows
			cfg.Unhealthy = map[topo.NodeID]bool{}
			for i := 0; i < 1+rng.Intn(3); i++ {
				path := rng.Intn(p.NumPaths())
				if rng.Intn(2) == 0 {
					cfg.Unhealthy[p.Src[path]] = true
				} else {
					cfg.Unhealthy[p.Dst[path]] = true
				}
			}
		}

		obs := make([]pll.Observation, 0, len(cur))
		for _, o := range cur { // map order: a fresh permutation per window
			obs = append(obs, o)
		}
		want, err := pll.Localize(p, obs, cfg)
		if err != nil {
			t.Fatalf("window %d: Localize: %v", w, err)
		}
		got, err := inc.Pass(cfg)
		if err != nil {
			t.Fatalf("window %d: Pass: %v", w, err)
		}
		if !resultsEqual(got, want) {
			t.Fatalf("window %d: incremental diverged from full recompute\n got %+v (bad %+v)\nwant %+v (bad %+v)",
				w, got, got.Bad, want, want.Bad)
		}
		if got.LossyPaths != inc.Lossy() {
			t.Fatalf("window %d: Lossy() = %d, result says %d", w, inc.Lossy(), got.LossyPaths)
		}
		// The caller's unhealthy map must not be aliased by the engine:
		// poisoning it after the pass must not bend the next window.
		for n := range cfg.Unhealthy {
			delete(cfg.Unhealthy, n)
		}
	}
	if present := inc.Present(); present != len(cur) {
		t.Fatalf("Present() = %d, mirror has %d", present, len(cur))
	}
}

// TestIncrementalDifferentialSmall runs the window churn on a hand matrix
// small enough that every structural corner (shared links, disjoint
// components, single-link paths) is hit many times over.
func TestIncrementalDifferentialSmall(t *testing.T) {
	p := route.NewProbesFromLinks([][]topo.LinkID{
		{0, 1}, {1, 2}, {0, 2}, {3}, {3, 4}, {4}, {5, 6, 7}, {7},
	}, 8)
	for seed := int64(1); seed <= 6; seed++ {
		driveDifferential(t, p, seed, 60)
	}
}

// TestIncrementalDifferentialServed runs the churn on real served matrices —
// the pmc-selected probe sets for Fattree(8) and BCube(4,1), the acceptance
// topologies — so the pin covers production-shaped link sharing.
func TestIncrementalDifferentialServed(t *testing.T) {
	if testing.Short() {
		t.Skip("served-matrix differential is not -short")
	}
	f8 := topo.MustFattree(8)
	b41 := topo.MustBCube(4, 1)
	cases := []struct {
		name     string
		ps       route.PathSet
		numLinks int
	}{
		{"Fattree8", route.NewFattreePaths(f8), f8.NumLinks()},
		{"BCube41", route.NewBCubePaths(b41), b41.NumLinks()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := pmc.Construct(c.ps, c.numLinks, pmc.Options{
				Alpha: 1, Beta: 1, Decompose: true, Lazy: true, Symmetry: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			p := route.NewProbes(c.ps, res.Selected, c.numLinks)
			driveDifferential(t, p, 42, 25)
		})
	}
}

// TestIncrementalRemoveIdempotent pins the bookkeeping corners: removing an
// absent path, out-of-range updates, and update-remove-update cycles must
// leave pathsThrough and the lossy count consistent.
func TestIncrementalRemoveIdempotent(t *testing.T) {
	p := route.NewProbesFromLinks([][]topo.LinkID{{0, 1}, {1}}, 2)
	inc := pll.NewIncremental(p, pll.DefaultConfig())
	inc.Remove(0)
	inc.Remove(-1)
	inc.Remove(99)
	inc.Update(pll.Observation{Path: 42, Sent: 10}) // out of range: ignored
	if inc.Present() != 0 || inc.Lossy() != 0 {
		t.Fatalf("phantom state after no-ops: present=%d lossy=%d", inc.Present(), inc.Lossy())
	}
	inc.Update(pll.Observation{Path: 0, Sent: 100, Lost: 50})
	inc.Update(pll.Observation{Path: 1, Sent: 100, Lost: 0})
	if inc.Present() != 2 || inc.Lossy() != 1 {
		t.Fatalf("after updates: present=%d lossy=%d", inc.Present(), inc.Lossy())
	}
	res, err := inc.Pass(pll.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bad) != 1 || res.Bad[0].Link != 0 {
		t.Fatalf("verdicts = %+v, want link 0", res.Bad)
	}
	inc.Remove(0)
	inc.Remove(0)
	if inc.Present() != 1 || inc.Lossy() != 0 {
		t.Fatalf("after removes: present=%d lossy=%d", inc.Present(), inc.Lossy())
	}
	res, err = inc.Pass(pll.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.LossyPaths != 0 || len(res.Bad) != 0 {
		t.Fatalf("clean window localized %+v", res)
	}
}
