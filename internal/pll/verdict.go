package pll

import (
	"math"
	"sort"

	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

// VerdictClass is the multi-signal verdict lattice over a localized link.
// Classify's loss-only classes (full / deterministic / random) answer "how
// does this link lose packets"; the lattice answers the operator's prior
// question, "is this link dying or merely busy" — using the latency, ECN
// and per-window time-series signals alongside loss (paper §7's richer
// failure-mode discrimination).
type VerdictClass uint8

const (
	// VerdictUnknown means not enough signal to decide.
	VerdictUnknown VerdictClass = iota
	// VerdictLossy: persistent counted loss — the link is losing traffic
	// and its switch knows (CRC errors, buffer overruns, link down).
	VerdictLossy
	// VerdictSilentPartial: persistent loss the switch counters do not
	// see — the gray failure proper, the paper's motivating case.
	VerdictSilentPartial
	// VerdictCongested: ECN marks and inflated RTT, losses (if any)
	// explained by queue pressure — busy, not broken.
	VerdictCongested
	// VerdictDelayed: inflated RTT with no loss and no marks — a slow
	// forwarding path.
	VerdictDelayed
	// VerdictFlapping: the per-window loss-rate series alternates between
	// clean and dead — a failing transceiver, not a steady fault.
	VerdictFlapping
)

// String names the verdict.
func (c VerdictClass) String() string {
	switch c {
	case VerdictLossy:
		return "lossy"
	case VerdictSilentPartial:
		return "silent-partial"
	case VerdictCongested:
		return "congested"
	case VerdictDelayed:
		return "delayed"
	case VerdictFlapping:
		return "flapping"
	default:
		return "unknown"
	}
}

// Hard reports whether the verdict warrants a link-down-style alert (the
// link is losing traffic persistently) rather than a congestion advisory.
func (c VerdictClass) Hard() bool {
	return c == VerdictLossy || c == VerdictSilentPartial || c == VerdictFlapping
}

// SignalConfig tunes the verdict lattice. The zero value of any field
// takes the default.
type SignalConfig struct {
	// ECNFloor is the pooled ECN-mark fraction above which a link counts
	// as congested (default 0.05).
	ECNFloor float64
	// RTTInflation is the ratio of current to baseline path RTT above
	// which latency counts as inflated (default 2.0).
	RTTInflation float64
	// FlapHigh and FlapLow are the hysteresis thresholds on per-window
	// loss rate for flap detection (defaults 0.25 and 0.02): a window is
	// "down" above FlapHigh, "up" below FlapLow.
	FlapHigh, FlapLow float64
	// FlapTransitions is how many down/up state changes the loss-rate
	// series needs before the link counts as flapping (default 2).
	FlapTransitions int
	// CounterFloor is the switch-counter drop delta below which observed
	// loss counts as silent (default 3): probes are vanishing but the
	// switch claims innocence.
	CounterFloor int64
	// LossFloor is the pooled loss rate below which the link counts as
	// loss-free (default 1e-3, PLL's LossRatioFloor).
	LossFloor float64
}

// DefaultSignalConfig returns the lattice's operating point.
func DefaultSignalConfig() SignalConfig {
	return SignalConfig{
		ECNFloor:        0.05,
		RTTInflation:    2.0,
		FlapHigh:        0.25,
		FlapLow:         0.02,
		FlapTransitions: 2,
		CounterFloor:    3,
		LossFloor:       1e-3,
	}
}

func (c SignalConfig) norm() SignalConfig {
	d := DefaultSignalConfig()
	if c.ECNFloor == 0 {
		c.ECNFloor = d.ECNFloor
	}
	if c.RTTInflation == 0 {
		c.RTTInflation = d.RTTInflation
	}
	if c.FlapHigh == 0 {
		c.FlapHigh = d.FlapHigh
	}
	if c.FlapLow == 0 {
		c.FlapLow = d.FlapLow
	}
	if c.FlapTransitions == 0 {
		c.FlapTransitions = d.FlapTransitions
	}
	if c.CounterFloor == 0 {
		c.CounterFloor = d.CounterFloor
	}
	if c.LossFloor == 0 {
		c.LossFloor = d.LossFloor
	}
	return c
}

// LinkCounters reports the switch drop-counter delta of a link over the
// window, and whether counters are available for it at all. The diagnoser
// backs it with the SNMP baseline's poll deltas.
type LinkCounters func(l topo.LinkID) (delta int64, ok bool)

// Signals carries the cross-window context the lattice needs beyond one
// window's observations. Any field may be nil/empty; the verdict degrades
// to what the remaining signals support.
type Signals struct {
	// History holds each path's loss rates of the preceding windows,
	// oldest first, excluding the current window.
	History map[int][]float64
	// BaseRTTNS holds each path's healthy-baseline mean RTT.
	BaseRTTNS map[int]int64
	// Counters exposes per-link switch drop-counter deltas.
	Counters LinkCounters
}

// ClassifyVerdict places one localized link in the verdict lattice using
// the window's observations plus the cross-window signals. Decision order
// encodes signal priority: a flapping series trumps everything (any single
// window misreads it), ECN marks trump loss (tail drops are a symptom of
// the queue), latency inflation without loss is a delay fault, and
// remaining persistent loss splits on whether the switch counted it.
func ClassifyVerdict(p *route.Probes, obs []Observation, link topo.LinkID, sig *Signals, cfg SignalConfig) VerdictClass {
	cfg = cfg.norm()
	if sig == nil {
		sig = &Signals{}
	}
	onLink := make(map[int]bool)
	for _, pi := range p.PathsThrough(link) {
		onLink[int(pi)] = true
	}

	var sentTotal, lostTotal, delivered int
	var ecnWeighted, rttRatioWeighted, rttWeight float64
	flapPaths, observedPaths := 0, 0
	for _, o := range obs {
		if o.Sent <= 0 || !onLink[o.Path] {
			continue
		}
		observedPaths++
		sentTotal += o.Sent
		lostTotal += o.Lost
		del := o.Sent - o.Lost
		delivered += del
		ecnWeighted += o.ECNFrac * float64(del)

		rate := float64(o.Lost) / float64(o.Sent)
		if flapTransitions(append(append([]float64(nil), sig.History[o.Path]...), rate), cfg) >= cfg.FlapTransitions {
			flapPaths++
		}
		if base := sig.BaseRTTNS[o.Path]; base > 0 && del > 0 && o.MeanRTTNS > 0 {
			rttRatioWeighted += float64(o.MeanRTTNS) / float64(base) * float64(del)
			rttWeight += float64(del)
		}
	}
	if observedPaths == 0 || sentTotal == 0 {
		return VerdictUnknown
	}

	// Flapping: the majority of observed paths through the link show an
	// alternating clean/dead series.
	if flapPaths*2 >= observedPaths && flapPaths > 0 {
		return VerdictFlapping
	}

	lossRate := float64(lostTotal) / float64(sentTotal)

	// Congestion: delivered-weighted ECN-mark fraction over the floor.
	if delivered > 0 && ecnWeighted/float64(delivered) >= cfg.ECNFloor {
		return VerdictCongested
	}

	// Latency inflation against the healthy baseline.
	if rttWeight > 0 && rttRatioWeighted/rttWeight >= cfg.RTTInflation {
		if lossRate < cfg.LossFloor {
			return VerdictDelayed
		}
		// Inflated and losing but unmarked: still queue pressure.
		return VerdictCongested
	}

	if lossRate < cfg.LossFloor {
		return VerdictUnknown
	}

	// Persistent loss: silent unless the switch counted it.
	if sig.Counters != nil {
		if delta, ok := sig.Counters(link); ok && delta < cfg.CounterFloor {
			return VerdictSilentPartial
		}
	}
	return VerdictLossy
}

// flapTransitions counts down/up state changes of a loss-rate series under
// hysteresis: rates above high enter the down state, below low the up
// state, in-between rates keep the current state.
func flapTransitions(series []float64, cfg SignalConfig) int {
	const (
		stateNone = iota
		stateUp
		stateDown
	)
	state, transitions := stateNone, 0
	for _, r := range series {
		next := state
		switch {
		case r >= cfg.FlapHigh:
			next = stateDown
		case r <= cfg.FlapLow:
			next = stateUp
		}
		if state != stateNone && next != state {
			transitions++
		}
		state = next
	}
	return transitions
}

// SoftVerdict is one link flagged by the signal-localization pass:
// congested or delayed, advisory rather than link-down.
type SoftVerdict struct {
	Link topo.LinkID
	// Class is VerdictCongested or VerdictDelayed.
	Class VerdictClass
	// Level is the attributed signal intensity: the explained ECN-mark
	// fraction for congestion, the fraction of inflated probes for delay.
	Level float64
}

// SignalResult is the outcome of LocalizeSignals.
type SignalResult struct {
	Congested []SoftVerdict
	Delayed   []SoftVerdict
}

// LocalizeSignals localizes congestion and delay faults that the loss
// pipeline cannot see (they lose little or nothing). It maps each signal
// onto pseudo loss observations — ECN-marked probes "lost" for the
// congestion pass, RTT-inflated paths fully "lost" for the delay pass —
// and reuses the PLL greedy on them, so the localization math (hit
// ratios, component decomposition) is shared with the loss path.
func LocalizeSignals(p *route.Probes, obs []Observation, sig *Signals, scfg SignalConfig, cfg Config) SignalResult {
	scfg = scfg.norm()
	if sig == nil {
		sig = &Signals{}
	}
	var res SignalResult

	// Congestion pass: a path's marked probes become its losses.
	congObs := make([]Observation, 0, len(obs))
	anyCong := false
	for _, o := range obs {
		del := o.Sent - o.Lost
		pseudo := Observation{Path: o.Path, Sent: o.Sent}
		if del > 0 && o.ECNFrac >= scfg.ECNFloor {
			pseudo.Lost = int(math.Round(o.ECNFrac * float64(del)))
			if pseudo.Lost < 1 {
				pseudo.Lost = 1
			}
			anyCong = true
		}
		congObs = append(congObs, pseudo)
	}
	congested := make(map[topo.LinkID]bool)
	if anyCong {
		if r, err := Localize(p, congObs, cfg); err == nil {
			for _, v := range r.Bad {
				congested[v.Link] = true
				res.Congested = append(res.Congested, SoftVerdict{Link: v.Link, Class: VerdictCongested, Level: v.Rate})
			}
		}
	}

	// Delay pass: an inflated, unmarked path counts as fully lost.
	delayObs := make([]Observation, 0, len(obs))
	anyDelay := false
	for _, o := range obs {
		del := o.Sent - o.Lost
		pseudo := Observation{Path: o.Path, Sent: o.Sent}
		base := sig.BaseRTTNS[o.Path]
		if del > 0 && base > 0 && o.MeanRTTNS > 0 && o.ECNFrac < scfg.ECNFloor &&
			float64(o.MeanRTTNS) >= scfg.RTTInflation*float64(base) {
			pseudo.Lost = o.Sent
			anyDelay = true
		}
		delayObs = append(delayObs, pseudo)
	}
	if anyDelay {
		if r, err := Localize(p, delayObs, cfg); err == nil {
			for _, v := range r.Bad {
				if congested[v.Link] {
					continue
				}
				res.Delayed = append(res.Delayed, SoftVerdict{Link: v.Link, Class: VerdictDelayed, Level: v.Rate})
			}
		}
	}
	sort.Slice(res.Congested, func(i, j int) bool { return res.Congested[i].Link < res.Congested[j].Link })
	sort.Slice(res.Delayed, func(i, j int) bool { return res.Delayed[i].Link < res.Delayed[j].Link })
	return res
}
