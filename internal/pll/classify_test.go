package pll_test

import (
	"math/rand"
	"testing"

	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/sim"
	"github.com/detector-net/detector/internal/topo"
)

func TestClassifyString(t *testing.T) {
	for _, c := range []pll.LossClass{pll.ClassUnknown, pll.ClassFull, pll.ClassDeterministic, pll.ClassRandom} {
		if c.String() == "" {
			t.Error("empty class name")
		}
	}
}

func TestClassifyHandCrafted(t *testing.T) {
	p := route.NewProbesFromLinks([][]topo.LinkID{
		{0, 1}, {0, 2}, {0, 3},
	}, 4)

	full := []pll.Observation{
		{Path: 0, Sent: 100, Lost: 100},
		{Path: 1, Sent: 100, Lost: 99},
		{Path: 2, Sent: 100, Lost: 100},
	}
	if got := pll.Classify(p, full, 0); got != pll.ClassFull {
		t.Errorf("full loss classified as %v", got)
	}

	blackhole := []pll.Observation{
		{Path: 0, Sent: 100, Lost: 52}, // flows in the blackholed buckets
		{Path: 1, Sent: 100, Lost: 0},  // flows that miss it
		{Path: 2, Sent: 100, Lost: 47},
	}
	if got := pll.Classify(p, blackhole, 0); got != pll.ClassDeterministic {
		t.Errorf("blackhole classified as %v", got)
	}

	random := []pll.Observation{
		{Path: 0, Sent: 1000, Lost: 52},
		{Path: 1, Sent: 1000, Lost: 48},
		{Path: 2, Sent: 1000, Lost: 55},
	}
	if got := pll.Classify(p, random, 0); got != pll.ClassRandom {
		t.Errorf("random loss classified as %v", got)
	}

	if got := pll.Classify(p, nil, 0); got != pll.ClassUnknown {
		t.Errorf("no data classified as %v", got)
	}
	clean := []pll.Observation{{Path: 0, Sent: 100, Lost: 0}, {Path: 1, Sent: 100, Lost: 0}}
	if got := pll.Classify(p, clean, 0); got != pll.ClassUnknown {
		t.Errorf("clean link classified as %v", got)
	}
}

// TestClassifyAgainstSimulator closes the loop: inject each loss kind in
// the simulator, localize, classify, and require the classifier to name
// the injected kind in a strong majority of trials.
func TestClassifyAgainstSimulator(t *testing.T) {
	f := topo.MustFattree(4)
	ps := route.NewFattreePaths(f)
	res, err := pmc.Construct(ps, f.NumLinks(), pmc.Options{Alpha: 3, Beta: 1, Decompose: true, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	probes := route.NewProbes(ps, res.Selected, f.NumLinks())
	rng := rand.New(rand.NewSource(17))
	links := f.SwitchLinks()

	cases := []struct {
		name  string
		model func() sim.LossModel
		want  pll.LossClass
	}{
		{"full", func() sim.LossModel { return sim.FullLoss{} }, pll.ClassFull},
		{"blackhole", func() sim.LossModel {
			return sim.DeterministicLoss{Buckets: 0x000000FF, Seed: rng.Uint64()}
		}, pll.ClassDeterministic},
		{"random", func() sim.LossModel { return sim.RandomLoss{P: 0.10} }, pll.ClassRandom},
	}
	for _, c := range cases {
		hits, trials := 0, 15
		for i := 0; i < trials; i++ {
			bad := links[rng.Intn(len(links))]
			scen := sim.NewScenario(sim.Failure{Link: bad, Model: c.model(), FromSwitch: -1})
			n := sim.NewNetwork(f.Topology, scen)
			obs := sim.SimulateWindow(n, probes, sim.ProbeWindowConfig{ProbesPerPath: 400}, rng)
			lres, err := pll.Localize(probes, obs, pll.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, v := range lres.Bad {
				if v.Link == bad {
					found = true
				}
			}
			if !found {
				continue // localization miss, classification untestable
			}
			if pll.Classify(probes, obs, bad) == c.want {
				hits++
			}
		}
		if hits < trials*2/3 {
			t.Errorf("%s: classified correctly %d of %d trials", c.name, hits, trials)
		}
	}
}
