package pll

import (
	"math"

	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

// LossClass is the failure mode inferred from a localized link's loss
// pattern. The paper's §7 proposes distinguishing full losses,
// deterministic partial losses and random partial losses to narrow the
// operator's diagnosis scope ("they exhibit different loss
// characteristics"); this classifier implements that proposal.
type LossClass uint8

const (
	// ClassUnknown means not enough observations to decide.
	ClassUnknown LossClass = iota
	// ClassFull: every path through the link loses (almost) everything —
	// link down, switch down, or hard blackhole of all flows.
	ClassFull
	// ClassDeterministic: loss rates differ wildly across paths through
	// the link (some clean, some heavily hit) — the signature of a
	// flow-selective blackhole or misconfigured rule.
	ClassDeterministic
	// ClassRandom: all paths through the link see statistically similar
	// loss rates — bit errors, CRC errors, buffer overflow.
	ClassRandom
)

// String names the class.
func (c LossClass) String() string {
	switch c {
	case ClassFull:
		return "full"
	case ClassDeterministic:
		return "deterministic-partial"
	case ClassRandom:
		return "random-partial"
	default:
		return "unknown"
	}
}

// Classify infers the loss class of a localized link from the window's
// observations. The decision works on the per-path loss ratios of observed
// paths through the link:
//
//   - pooled ratio >= fullThreshold on every path → ClassFull;
//   - otherwise, if the across-path dispersion of ratios is far above
//     what binomial sampling noise at the pooled rate explains (or some
//     paths are clean while others lose), the loss is flow-selective →
//     ClassDeterministic;
//   - otherwise → ClassRandom.
func Classify(p *route.Probes, obs []Observation, link topo.LinkID) LossClass {
	const fullThreshold = 0.95

	onLink := make(map[int]bool)
	for _, pi := range p.PathsThrough(link) {
		onLink[int(pi)] = true
	}
	var ratios []float64
	var sentTotal, lostTotal int
	minRatio, maxRatio := 1.0, 0.0
	for _, o := range obs {
		if o.Sent <= 0 || !onLink[o.Path] {
			continue
		}
		r := float64(o.Lost) / float64(o.Sent)
		ratios = append(ratios, r)
		sentTotal += o.Sent
		lostTotal += o.Lost
		if r < minRatio {
			minRatio = r
		}
		if r > maxRatio {
			maxRatio = r
		}
	}
	if len(ratios) < 2 || lostTotal == 0 {
		return ClassUnknown
	}
	if minRatio >= fullThreshold {
		return ClassFull
	}
	pooled := float64(lostTotal) / float64(sentTotal)

	// Mean per-path sample size for the binomial noise floor.
	meanSent := float64(sentTotal) / float64(len(ratios))
	binomVar := pooled * (1 - pooled) / meanSent

	// Observed across-path variance of ratios.
	mean := 0.0
	for _, r := range ratios {
		mean += r
	}
	mean /= float64(len(ratios))
	obsVar := 0.0
	for _, r := range ratios {
		d := r - mean
		obsVar += d * d
	}
	obsVar /= float64(len(ratios))

	// Clean-and-lossy coexistence is the strongest blackhole signal.
	if minRatio == 0 && maxRatio >= 0.2 {
		return ClassDeterministic
	}
	// Dispersion test: > 9x the binomial noise (3 sigma on the std scale).
	if binomVar > 0 && obsVar > 9*binomVar {
		return ClassDeterministic
	}
	if math.IsNaN(obsVar) {
		return ClassUnknown
	}
	return ClassRandom
}
