package pll

import "math"

// The paper's §5.1 notes that fixed thresholds misjudge noisy data and
// suggests statistical hypothesis testing on loss rates (citing Herodotou
// et al., KDD'14). This file implements that refinement: a path is declared
// lossy only when its loss count is statistically inconsistent with the
// ambient baseline loss rate, via a one-sided exact binomial test.

// BinomialTail returns P(X >= k) for X ~ Binomial(n, p) — the p-value of
// observing k or more losses in n probes under the ambient-loss null
// hypothesis. Exact computation in log space; terms are summed until they
// stop mattering.
func BinomialTail(n, k int, p float64) float64 {
	if k <= 0 {
		return 1
	}
	if k > n || p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	// Below the mean the first summand can underflow to zero even though
	// the tail is near 1; reflect to the complementary upper tail, whose
	// first term sits at or above the distribution's mode:
	// P(X >= k) = 1 - P(n - X >= n - k + 1), with n - X ~ Binomial(n, 1-p).
	if float64(k) <= float64(n)*p {
		return 1 - BinomialTail(n, n-k+1, 1-p)
	}
	// log PMF at i, built incrementally from i = k upward:
	// pmf(i) = C(n,i) p^i (1-p)^(n-i).
	logPMF := logChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	sum := 0.0
	term := math.Exp(logPMF)
	for i := k; i <= n; i++ {
		sum += term
		if term < sum*1e-12 {
			break // remaining tail is negligible
		}
		// pmf(i+1)/pmf(i) = (n-i)/(i+1) * p/(1-p)
		term *= float64(n-i) / float64(i+1) * p / (1 - p)
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// logChoose is ln C(n, k) via the log-gamma function.
func logChoose(n, k int) float64 {
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}

// SignificantLoss reports whether k losses in n probes are statistically
// inconsistent with an ambient baseline loss rate at the given significance
// level (smaller = stricter). It is the hypothesis-testing alternative to
// the fixed LossRatioFloor.
func SignificantLoss(n, k int, baseline, significance float64) bool {
	if k <= 0 || n <= 0 {
		return false
	}
	return BinomialTail(n, k, baseline) < significance
}
