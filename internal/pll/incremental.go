package pll

// Incremental PLL: the same localization algorithm, run as a standing
// engine instead of a per-window batch job. The diagnoser's windows slide
// continuously and, in a healthy fleet, almost nothing changes between
// them — the expensive parts of Localize (re-scanning every observation,
// rebuilding the per-link observed-path counts) are recomputed from
// scratch every window for answers that are identical to the last ones.
//
// The engine keeps the preprocessed window state resident: per-path
// current observation, per-path lossy/clean classification under the
// configured thresholds, and the per-link observed-path counts that feed
// the hit-ratio denominators. Report merges update only the paths whose
// counters actually changed; a localization pass then runs localizeCore —
// the exact code path the one-shot Localize uses — over the standing
// lossy set. Verdicts are bit-identical to a full recompute over the
// equivalent observation multiset (one observation per path, which is
// what the diagnoser's accumulator produces), pinned by the differential
// test in incremental_test.go.

import (
	"fmt"
	"time"

	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

// Incremental is a standing PLL engine over one probe matrix. It is not
// safe for concurrent use; the diagnoser drives it from the window-close
// path under its own lock.
type Incremental struct {
	p   *route.Probes
	cfg Config
	// unhealthy is the filter set of the last pass (copied, never aliased
	// to the caller's map); a changed set reclassifies every present path.
	unhealthy map[topo.NodeID]bool

	present      []bool
	lossyFlag    []bool
	obs          []Observation // current observation per path, valid when present
	pathsThrough []int32       // per-link observed-path counts (hit-ratio denominators)
	nLossy       int
}

// NewIncremental builds an empty engine for the matrix. cfg supplies the
// classification thresholds; the per-pass Config given to Pass may change
// them (and the Unhealthy set), at the cost of reclassifying every present
// path once.
func NewIncremental(p *route.Probes, cfg Config) *Incremental {
	return &Incremental{
		p:            p,
		cfg:          cfg,
		unhealthy:    copyNodeSet(cfg.Unhealthy),
		present:      make([]bool, p.NumPaths()),
		lossyFlag:    make([]bool, p.NumPaths()),
		obs:          make([]Observation, p.NumPaths()),
		pathsThrough: make([]int32, p.NumLinks),
	}
}

// Matrix returns the probe matrix the engine is bound to.
func (inc *Incremental) Matrix() *route.Probes { return inc.p }

// Present reports how many paths currently carry an observation.
func (inc *Incremental) Present() int {
	n := 0
	for _, p := range inc.present {
		if p {
			n++
		}
	}
	return n
}

// Lossy reports the size of the standing lossy set.
func (inc *Incremental) Lossy() int { return inc.nLossy }

// Update replaces one path's window observation. An observation with
// Sent <= 0 is equivalent to the path being absent this window, exactly
// as preprocess and observedPathsThrough skip it in the one-shot path.
func (inc *Incremental) Update(o Observation) {
	if o.Path < 0 || o.Path >= inc.p.NumPaths() {
		return
	}
	if o.Sent <= 0 {
		inc.Remove(o.Path)
		return
	}
	if !inc.present[o.Path] {
		inc.present[o.Path] = true
		for _, l := range inc.p.PathLinks[o.Path] {
			inc.pathsThrough[l]++
		}
	}
	inc.obs[o.Path] = o
	inc.setLossy(o.Path, inc.classify(o))
}

// Remove marks a path as unobserved this window (no pinger reported it).
func (inc *Incremental) Remove(path int) {
	if path < 0 || path >= inc.p.NumPaths() || !inc.present[path] {
		return
	}
	inc.present[path] = false
	for _, l := range inc.p.PathLinks[path] {
		inc.pathsThrough[l]--
	}
	inc.setLossy(path, false)
	inc.obs[path] = Observation{}
}

func (inc *Incremental) setLossy(path int, lossy bool) {
	if inc.lossyFlag[path] == lossy {
		return
	}
	inc.lossyFlag[path] = lossy
	if lossy {
		inc.nLossy++
	} else {
		inc.nLossy--
	}
}

// classify mirrors preprocess: the unhealthy filter drops a path from the
// lossy set (it still counts in pathsThrough, exactly as in the one-shot
// path, where observedPathsThrough does not consult the filter), then the
// loss floor and optional binomial significance test decide lossiness.
func (inc *Incremental) classify(o Observation) bool {
	if inc.cfg.Unhealthy != nil &&
		(inc.cfg.Unhealthy[inc.p.Src[o.Path]] || inc.cfg.Unhealthy[inc.p.Dst[o.Path]]) {
		return false
	}
	ratio := float64(o.Lost) / float64(o.Sent)
	isLossy := o.Lost >= inc.cfg.MinLoss && ratio >= inc.cfg.LossRatioFloor
	if isLossy && inc.cfg.BaselineRate > 0 {
		sig := inc.cfg.Significance
		if sig <= 0 {
			sig = 1e-3
		}
		isLossy = SignificantLoss(o.Sent, o.Lost, inc.cfg.BaselineRate, sig)
	}
	return isLossy
}

// Pass runs one localization pass over the standing window state. cfg may
// differ from the engine's current configuration — changed classification
// thresholds or a changed unhealthy set trigger one full reclassification
// (O(present paths), no index rebuild) before the pass.
func (inc *Incremental) Pass(cfg Config) (*Result, error) {
	start := time.Now()
	if cfg.HitRatio <= 0 || cfg.HitRatio > 1 {
		return nil, fmt.Errorf("pll: hit ratio must be in (0,1], got %v", cfg.HitRatio)
	}
	reclassify := inc.classifierChanged(cfg)
	inc.cfg = cfg
	if reclassify {
		inc.unhealthy = copyNodeSet(cfg.Unhealthy)
	}
	// The engine classifies against its own copy of the unhealthy set —
	// never the caller's map, which may mutate between windows.
	inc.cfg.Unhealthy = mapOrNil(inc.unhealthy)
	if reclassify {
		for path, present := range inc.present {
			if present {
				inc.setLossy(path, inc.classify(inc.obs[path]))
			}
		}
	}

	res := &Result{LossyPaths: inc.nLossy}
	if inc.nLossy == 0 {
		res.Elapsed = time.Since(start)
		return res, nil
	}
	lossy := make([]Observation, 0, inc.nLossy)
	for path, isLossy := range inc.lossyFlag {
		if isLossy {
			lossy = append(lossy, inc.obs[path])
		}
	}
	res.Bad, res.UnexplainedPaths = localizeCore(inc.p, lossy, inc.pathsThrough, cfg)
	res.Elapsed = time.Since(start)
	return res, nil
}

// classifierChanged reports whether cfg alters which paths count as lossy.
func (inc *Incremental) classifierChanged(cfg Config) bool {
	if cfg.LossRatioFloor != inc.cfg.LossRatioFloor ||
		cfg.MinLoss != inc.cfg.MinLoss ||
		cfg.BaselineRate != inc.cfg.BaselineRate ||
		cfg.Significance != inc.cfg.Significance {
		return true
	}
	if len(cfg.Unhealthy) != len(inc.unhealthy) {
		return true
	}
	for n, bad := range cfg.Unhealthy {
		if inc.unhealthy[n] != bad {
			return true
		}
	}
	return false
}

func copyNodeSet(m map[topo.NodeID]bool) map[topo.NodeID]bool {
	if len(m) == 0 {
		return nil
	}
	out := make(map[topo.NodeID]bool, len(m))
	for n, v := range m {
		out[n] = v
	}
	return out
}

func mapOrNil(m map[topo.NodeID]bool) map[topo.NodeID]bool {
	if len(m) == 0 {
		return nil
	}
	return m
}
