// Package pll implements deTector's Packet Loss Localization algorithm
// (paper §5) and the binary-tomography baselines it is evaluated against
// (Tomo, SCORE, OMP).
//
// Input is one measurement window of per-path probe counters; output is the
// smallest set of links that explains the observed losses. PLL extends the
// classic Tomo greedy with a per-link hit-ratio threshold so that partial
// packet loss — a blackhole that drops only some flows crossing a link —
// does not exonerate the link just because one unaffected path through it
// stayed clean.
package pll

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

// Observation is one probe path's counters for a measurement window.
type Observation struct {
	// Path indexes into the probe matrix.
	Path int
	// Sent and Lost count probes and losses on the path (echo included:
	// a probe is lost if either direction drops it).
	Sent, Lost int
	// MeanRTTNS and JitterNS are the mean round-trip time and RFC 3550
	// interarrival jitter over the delivered probes, in nanoseconds; zero
	// when no probe was delivered or the source does not measure latency.
	MeanRTTNS, JitterNS int64
	// ECNFrac is the fraction of delivered probes that came back
	// congestion-marked, in [0,1].
	ECNFrac float64
}

// Config tunes PLL. The zero value is unusable; use DefaultConfig.
type Config struct {
	// HitRatio is the threshold on lossyPaths(l)/pathsThrough(l) above
	// which a link is a localization candidate. The paper sets 0.6 (§5.3);
	// 1.0 degenerates to Tomo's "any clean path exonerates" rule.
	HitRatio float64
	// LossRatioFloor filters measurement noise: a path is only "lossy"
	// when lost/sent >= the floor (paper §5.1 cites 1e-3).
	LossRatioFloor float64
	// MinLoss is the minimum absolute loss count for a lossy path.
	MinLoss int
	// BaselineRate, when positive, enables the §5.1 hypothesis-testing
	// refinement: a path additionally counts as lossy only if its loss
	// count is statistically inconsistent with this ambient loss rate at
	// the Significance level (one-sided exact binomial test).
	BaselineRate float64
	// Significance is the p-value threshold of the hypothesis test
	// (default 1e-3 when BaselineRate is set).
	Significance float64
	// Unhealthy lists servers flagged by the watchdog; observations whose
	// path endpoints touch them are dropped as outliers (paper §5.1).
	Unhealthy map[topo.NodeID]bool
	// Workers bounds component parallelism; 0 means GOMAXPROCS.
	Workers int
}

// DefaultConfig returns the paper's operating point.
func DefaultConfig() Config {
	return Config{HitRatio: 0.6, LossRatioFloor: 1e-3, MinLoss: 1}
}

// Verdict is one localized link with its estimated loss rate.
type Verdict struct {
	Link topo.LinkID
	// Rate is the estimated loss rate: explained losses over probes sent
	// on the paths this link explains.
	Rate float64
	// Explained is the number of lost probes attributed to this link.
	Explained int
}

// Result is a localization outcome.
type Result struct {
	// Bad lists the localized links, sorted by ID.
	Bad []Verdict
	// UnexplainedPaths counts lossy paths no candidate link could explain
	// (all candidates below the hit-ratio threshold).
	UnexplainedPaths int
	// LossyPaths is the post-filter lossy path count.
	LossyPaths int
	Elapsed    time.Duration
}

// BadLinks returns just the link IDs, sorted.
func (r *Result) BadLinks() []topo.LinkID {
	out := make([]topo.LinkID, len(r.Bad))
	for i, v := range r.Bad {
		out[i] = v.Link
	}
	return out
}

// preprocess drops outlier observations and splits the rest into clean and
// lossy sets (paper §5.1).
func preprocess(p *route.Probes, obs []Observation, cfg Config) (lossy []Observation, cleanPaths []int) {
	for _, o := range obs {
		if o.Sent <= 0 || o.Path < 0 || o.Path >= p.NumPaths() {
			continue
		}
		if cfg.Unhealthy != nil {
			if cfg.Unhealthy[p.Src[o.Path]] || cfg.Unhealthy[p.Dst[o.Path]] {
				continue
			}
		}
		ratio := float64(o.Lost) / float64(o.Sent)
		isLossy := o.Lost >= cfg.MinLoss && ratio >= cfg.LossRatioFloor
		if isLossy && cfg.BaselineRate > 0 {
			sig := cfg.Significance
			if sig <= 0 {
				sig = 1e-3
			}
			isLossy = SignificantLoss(o.Sent, o.Lost, cfg.BaselineRate, sig)
		}
		if isLossy {
			lossy = append(lossy, o)
		} else {
			cleanPaths = append(cleanPaths, o.Path)
		}
	}
	return lossy, cleanPaths
}

// Localize runs PLL on one window of observations.
func Localize(p *route.Probes, obs []Observation, cfg Config) (*Result, error) {
	start := time.Now()
	if cfg.HitRatio <= 0 || cfg.HitRatio > 1 {
		return nil, fmt.Errorf("pll: hit ratio must be in (0,1], got %v", cfg.HitRatio)
	}
	lossy, _ := preprocess(p, obs, cfg)
	res := &Result{LossyPaths: len(lossy)}
	if len(lossy) == 0 {
		res.Elapsed = time.Since(start)
		return res, nil
	}

	// pathsThrough counts observed paths per link (Step 2's hit-ratio
	// denominators); the core does the rest.
	pathsThrough := observedPathsThrough(p, obs)
	res.Bad, res.UnexplainedPaths = localizeCore(p, lossy, pathsThrough, cfg)
	res.Elapsed = time.Since(start)
	return res, nil
}

// localizeCore runs Steps 2-5 of PLL over an already-preprocessed lossy
// set: candidate links by hit ratio, decomposition into components, the
// per-component greedy in parallel, and the final link-ID sort. It is
// shared by the one-shot Localize and the Incremental engine — the
// bit-identical-verdicts guarantee between them rests on this being the
// same code path. The verdicts depend only on the lossy SET (and
// pathsThrough), not its order: candidates are walked in link-ID order,
// component verdicts concatenate and re-sort by link, and greedy ties
// break on (explained losses, hit ratio, candidate order).
func localizeCore(p *route.Probes, lossy []Observation, pathsThrough []int32, cfg Config) ([]Verdict, int) {
	// The lossy inverted index collects lossy observations per link as a
	// flat CSR slab. Hit ratios are computed once, before the greedy.
	lossyOff, lossyArena := lossyIndex(p, lossy)

	// Candidate links pass the hit-ratio threshold. Walking links in ID
	// order replaces the map iteration + sort of the previous
	// implementation and reuses the probe matrix's inverted link→paths
	// index shape: lossyArena rows are ascending lossy-observation indices.
	var cands []candidate
	for l := 0; l < p.NumLinks; l++ {
		lp := lossyArena[lossyOff[l]:lossyOff[l+1]]
		if len(lp) == 0 {
			continue
		}
		hit := float64(len(lp)) / float64(pathsThrough[l])
		if hit >= cfg.HitRatio {
			cands = append(cands, candidate{topo.LinkID(l), lp, hit})
		}
	}

	// Step 1: decompose into components over the lossy paths, then run the
	// greedy per component in parallel. Components are independent: no
	// candidate link is on lossy paths of two components.
	comps := lossyComponents(p, lossy)
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(comps) {
		workers = len(comps)
	}
	// componentOf and explained are shared across workers: lossy paths
	// partition into components, so each goroutine only reads and writes
	// its own component's indices. This keeps the per-window footprint
	// O(lossy) instead of O(components × lossy).
	componentOf := make([]int32, len(lossy))
	for ci, paths := range comps {
		for _, pi := range paths {
			componentOf[pi] = int32(ci)
		}
	}
	explained := make([]bool, len(lossy))
	verdicts := make([][]Verdict, len(comps))
	unexplained := make([]int, len(comps))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for ci := range comps {
		wg.Add(1)
		sem <- struct{}{}
		go func(ci int) {
			defer wg.Done()
			defer func() { <-sem }()
			verdicts[ci], unexplained[ci] = greedyExplain(int32(ci), componentOf, explained, lossy, comps[ci], cands)
		}(ci)
	}
	wg.Wait()

	var bad []Verdict
	totalUnexplained := 0
	for ci := range comps {
		bad = append(bad, verdicts[ci]...)
		totalUnexplained += unexplained[ci]
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i].Link < bad[j].Link })
	return bad, totalUnexplained
}

// observedPathsThrough counts, per link, the observed paths crossing it —
// a flat array over the link-ID space, shared by PLL and the baselines.
func observedPathsThrough(p *route.Probes, obs []Observation) []int32 {
	out := make([]int32, p.NumLinks)
	for _, o := range obs {
		if o.Sent <= 0 || o.Path < 0 || o.Path >= p.NumPaths() {
			continue
		}
		for _, l := range p.PathLinks[o.Path] {
			out[l]++
		}
	}
	return out
}

// lossyIndex builds the link → lossy-observation inverted index as a flat
// CSR slab (count, prefix-sum, fill): row l is arena[off[l]:off[l+1]],
// listing ascending indices into lossy. Three allocations total, no maps.
func lossyIndex(p *route.Probes, lossy []Observation) (off, arena []int32) {
	off = make([]int32, p.NumLinks+1)
	for _, o := range lossy {
		for _, l := range p.PathLinks[o.Path] {
			off[l+1]++
		}
	}
	for l := 0; l < p.NumLinks; l++ {
		off[l+1] += off[l]
	}
	arena = make([]int32, off[p.NumLinks])
	fill := make([]int32, p.NumLinks)
	copy(fill, off[:p.NumLinks])
	for i, o := range lossy {
		for _, l := range p.PathLinks[o.Path] {
			arena[fill[l]] = int32(i)
			fill[l]++
		}
	}
	return off, arena
}

// lossyComponents groups lossy-observation indices into link-connected
// components of the probe matrix with an array-backed union-find over the
// link-ID space (no maps on the localization path).
func lossyComponents(p *route.Probes, lossy []Observation) [][]int {
	parent := make([]int32, p.NumLinks)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, o := range lossy {
		links := p.PathLinks[o.Path]
		for _, l := range links[1:] {
			ra, rb := find(int32(links[0])), find(int32(l))
			if ra != rb {
				parent[rb] = ra
			}
		}
	}
	// Bucket lossy observations by root, components ordered by root id.
	var roots []int32
	byRoot := make(map[int32][]int)
	for i, o := range lossy {
		r := find(int32(p.PathLinks[o.Path][0]))
		if _, ok := byRoot[r]; !ok {
			roots = append(roots, r)
		}
		byRoot[r] = append(byRoot[r], i)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	out := make([][]int, len(roots))
	for i, r := range roots {
		out[i] = byRoot[r]
	}
	return out
}

// candidate is a link that passed the hit-ratio threshold, with the indices
// of the lossy observations whose paths cross it (a row of the lossy
// inverted index, ascending).
type candidate struct {
	link  topo.LinkID
	paths []int32
	hit   float64
}

// greedyExplain runs Steps 3-5 of PLL on one component: repeatedly pick the
// candidate link explaining the most lost packets and remove its paths.
// Component membership is checked against the shared componentOf labeling,
// and explained is the shared per-lossy-observation state (only this
// component's indices are touched).
func greedyExplain(comp int32, componentOf []int32, explained []bool, lossy []Observation, compPaths []int, cands []candidate) ([]Verdict, int) {
	var out []Verdict
	for {
		remaining := 0
		for _, pi := range compPaths {
			if !explained[pi] {
				remaining++
			}
		}
		if remaining == 0 {
			return out, 0
		}
		// Maximal explained losses; ties break on hit ratio (a fully
		// consistent link beats one with clean paths through it), then on
		// link ID for determinism.
		best := -1
		bestScore := 0
		bestHit := 0.0
		for ci, c := range cands {
			score := 0
			for _, pi := range c.paths {
				if componentOf[pi] == comp && !explained[pi] {
					score += lossy[pi].Lost
				}
			}
			if score > bestScore || (score == bestScore && score > 0 && c.hit > bestHit) {
				best, bestScore, bestHit = ci, score, c.hit
			}
		}
		if best < 0 {
			return out, remaining
		}
		v := Verdict{Link: cands[best].link}
		sent := 0
		for _, pi := range cands[best].paths {
			if componentOf[pi] == comp && !explained[pi] {
				explained[pi] = true
				v.Explained += lossy[pi].Lost
				sent += lossy[pi].Sent
			}
		}
		if sent > 0 {
			v.Rate = float64(v.Explained) / float64(sent)
		}
		out = append(out, v)
	}
}
