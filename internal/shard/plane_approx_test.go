package shard

import (
	"testing"

	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

// entangledServerMatrix fabricates a server-level probe matrix with the
// pathology the Approximate policy exists for: the ToR-level (interior)
// links form three independent groups, but one busy pinger's uplink
// appears on probes into every group, so the exact component partition
// collapses the whole matrix into a single part.
//
// Layout: 6 racks of 2 servers. Racks pair up into 3 groups; each group's
// inter-rack probes ride two dedicated interior links. Links are numbered
// uplinks first, then downlinks, then interiors — the greedy's candidate
// order (ascending link ID) therefore prefers server-edge links on exact
// ties, which is the adversarial direction for the approximate merge.
func entangledServerMatrix() *route.Probes {
	const racks, S = 6, 2
	up := func(r, s int) topo.LinkID { return topo.LinkID(r*S + s) }
	down := func(r, s int) topo.LinkID { return topo.LinkID(racks*S + r*S + s) }
	ia := func(g int) topo.LinkID { return topo.LinkID(2*racks*S + 2*g) }
	ib := func(g int) topo.LinkID { return topo.LinkID(2*racks*S + 2*g + 1) }
	numLinks := 2*racks*S + racks

	var paths [][]topo.LinkID
	// Inter-rack probes within each group: server s of the even rack to
	// server t of the odd rack, via the group's interior pair.
	for g := 0; g < racks/2; g++ {
		r, rp := 2*g, 2*g+1
		for s := 0; s < S; s++ {
			for t := 0; t < S; t++ {
				paths = append(paths, []topo.LinkID{up(r, s), ia(g), ib(g), down(rp, t)})
			}
		}
	}
	// The entangling probes: server (0,0) also pings into every other
	// group, so its uplink bridges all three interior groups under the
	// exact union-find.
	for g := 1; g < racks/2; g++ {
		paths = append(paths, []topo.LinkID{up(0, 0), ia(g), ib(g), down(2*g+1, 0)})
	}
	// Intra-rack probes: two links, both server-edge.
	for r := 0; r < racks; r++ {
		paths = append(paths, []topo.LinkID{up(r, 0), down(r, 1)})
	}
	return route.NewProbesFromLinks(paths, numLinks)
}

// solidWindow marks every path through bad as 20% lossy (200 sent, 40
// lost) and everything else clean.
func solidWindow(p *route.Probes, bad topo.LinkID) []pll.Observation {
	lossy := make([]bool, p.NumPaths())
	for _, r := range p.PathsThrough(bad) {
		lossy[r] = true
	}
	obs := make([]pll.Observation, p.NumPaths())
	for i := range obs {
		obs[i] = pll.Observation{Path: i, Sent: 200}
		if lossy[i] {
			obs[i].Lost = 40
		}
	}
	return obs
}

func TestExactPolicyCollapsesEntangledServerMatrix(t *testing.T) {
	p := entangledServerMatrix()
	pl := NewPlaneWithPolicy(p, []int{0, 1, 2, 3}, PartitionExact)
	st := pl.Stats()
	if st.Policy != PartitionExact {
		t.Fatalf("policy = %q, want %q", st.Policy, PartitionExact)
	}
	if st.Parts != 1 || st.Partitions != 1 {
		t.Fatalf("exact policy on entangled server matrix: parts=%d partitions=%d, want 1/1 (the collapse the approx policy exists for)",
			st.Parts, st.Partitions)
	}
	if st.CutLinks != 0 || st.MaxReplication != 1 {
		t.Fatalf("exact policy cut links = %d, max replication = %d, want 0/1", st.CutLinks, st.MaxReplication)
	}
}

func TestApproxPolicySplitsEntangledServerMatrix(t *testing.T) {
	p := entangledServerMatrix()
	pl := NewPlaneWithPolicy(p, []int{0, 1, 2, 3}, PartitionApprox)
	st := pl.Stats()
	if st.Policy != PartitionApprox {
		t.Fatalf("policy = %q, want %q", st.Policy, PartitionApprox)
	}
	// 3 interior groups + 6 intra-rack residual parts.
	if st.Parts != 9 {
		t.Fatalf("approx parts = %d, want 9 (3 interior groups + 6 intra-rack)", st.Parts)
	}
	if st.Partitions < 2 {
		t.Fatalf("approx partitions = %d, want >= 2 (capacity-capped assignment of 9 parts over 4 shards)", st.Partitions)
	}
	if st.CutLinks < 1 || st.MaxReplication < 2 {
		t.Fatalf("approx cut links = %d, max replication = %d; the entangling uplink must be cut", st.CutLinks, st.MaxReplication)
	}
	// Every path must keep an owner: cutting links must never orphan
	// observations.
	for i := 0; i < p.NumPaths(); i++ {
		if pl.Owner(i) < 0 {
			t.Fatalf("path %d lost its owner under the approx policy", i)
		}
	}
	// The cut set must agree with its replication index.
	for _, c := range pl.CutLinks() {
		if c.Parts < 2 {
			t.Fatalf("cut link %d has replication %d, want >= 2", c.Link, c.Parts)
		}
		if got := pl.cutRepl[c.Link]; got != c.Parts {
			t.Fatalf("cut link %d: CutLinks says %d shards, index says %d", c.Link, c.Parts, got)
		}
	}
}

// TestApproxDifferentialSolidFailures is the accuracy-bound differential:
// for a solid failure on every covered link, the approximate merged
// verdict is compared with one global pll.Localize. Divergence is only
// allowed where the partition predicts it — on cut links or links sharing
// an observed path with one — and the merge's disagreement count must stay
// under the bound the exported replication counts imply.
func TestApproxDifferentialSolidFailures(t *testing.T) {
	p := entangledServerMatrix()
	pl := NewPlaneWithPolicy(p, []int{0, 1, 2, 3}, PartitionApprox)
	cfg := pll.DefaultConfig()

	// cutRows marks every observed path that crosses a cut link; bound is
	// the worst-case disagreement the replication counts allow.
	cutRows := make(map[int]bool)
	bound := 0
	for _, c := range pl.CutLinks() {
		bound += c.Parts - 1
		for _, r := range p.PathsThrough(c.Link) {
			cutRows[int(r)] = true
		}
	}
	nearCut := func(l topo.LinkID) bool {
		if _, ok := pl.cutRepl[l]; ok {
			return true
		}
		for _, r := range p.PathsThrough(l) {
			if cutRows[int(r)] {
				return true
			}
		}
		return false
	}

	for l := 0; l < p.NumLinks; l++ {
		bad := topo.LinkID(l)
		if len(p.PathsThrough(bad)) == 0 {
			continue
		}
		window := solidWindow(p, bad)
		merged, ms, err := pl.LocalizeCycleStats(nil, window, cfg)
		if err != nil {
			t.Fatalf("link %d: merged localize: %v", l, err)
		}
		global, err := pll.Localize(p, window, cfg)
		if err != nil {
			t.Fatalf("link %d: global localize: %v", l, err)
		}
		if merged.UnexplainedPaths != 0 {
			t.Errorf("link %d: merged pass left %d lossy paths unexplained", l, merged.UnexplainedPaths)
		}
		if len(merged.Bad) == 0 {
			t.Errorf("link %d: solid failure produced no merged verdict", l)
		}
		inMerged := make(map[topo.LinkID]bool, len(merged.Bad))
		for _, v := range merged.Bad {
			inMerged[v.Link] = true
		}
		inGlobal := make(map[topo.LinkID]bool, len(global.Bad))
		for _, v := range global.Bad {
			inGlobal[v.Link] = true
		}
		for link := range inMerged {
			if !inGlobal[link] && !nearCut(link) {
				t.Errorf("link %d: merged flags %d, global does not, and %d is nowhere near a cut link", l, link, link)
			}
		}
		for link := range inGlobal {
			if !inMerged[link] && !nearCut(link) {
				t.Errorf("link %d: global flags %d, merged does not, and %d is nowhere near a cut link", l, link, link)
			}
		}
		if ms.Disagreements > bound {
			t.Errorf("link %d: %d disagreements exceed the replication bound %d", l, ms.Disagreements, bound)
		}
	}
}

// TestApproxCutLinkDisagreementCounter drives the one window shape where
// the owning shards of a cut link must disagree — loss confined to the cut
// link's paths on a single shard — and checks the merge counts it, bounded
// by replication - 1.
func TestApproxCutLinkDisagreementCounter(t *testing.T) {
	p := entangledServerMatrix()
	pl := NewPlaneWithPolicy(p, []int{0, 1, 2, 3}, PartitionApprox)
	cuts := pl.CutLinks()
	if len(cuts) == 0 {
		t.Fatal("no cut links on the entangled matrix")
	}
	// Pick the most-replicated cut link (the entangling uplink).
	cut := cuts[0]
	for _, c := range cuts {
		if c.Parts > cut.Parts {
			cut = c
		}
	}
	rows := p.PathsThrough(cut.Link)
	firstOwner := pl.Owner(int(rows[0]))
	lossy := make([]bool, p.NumPaths())
	for _, r := range rows {
		if pl.Owner(int(r)) == firstOwner {
			lossy[r] = true
		}
	}
	window := make([]pll.Observation, p.NumPaths())
	for i := range window {
		window[i] = pll.Observation{Path: i, Sent: 200}
		if lossy[i] {
			window[i].Lost = 40
		}
	}
	_, ms, err := pl.LocalizeCycleStats(nil, window, pll.DefaultConfig())
	if err != nil {
		t.Fatalf("localize: %v", err)
	}
	if ms.Disagreements < 1 {
		t.Fatalf("loss on one shard's slice of a %d-way cut link produced no disagreement", cut.Parts)
	}
	if ms.Disagreements > cut.Parts-1 {
		t.Fatalf("disagreements = %d exceed replication-1 = %d for the driven cut link", ms.Disagreements, cut.Parts-1)
	}
}

// TestExactPolicyStaysBitIdentical pins the Exact policy's guarantee on
// the entangled matrix: one partition, merged verdicts byte-for-byte equal
// to the global pass, zero reconciliation.
func TestExactPolicyStaysBitIdentical(t *testing.T) {
	p := entangledServerMatrix()
	pl := NewPlaneWithPolicy(p, []int{0, 1, 2, 3}, PartitionExact)
	cfg := pll.DefaultConfig()
	for l := 0; l < p.NumLinks; l++ {
		bad := topo.LinkID(l)
		if len(p.PathsThrough(bad)) == 0 {
			continue
		}
		window := solidWindow(p, bad)
		merged, ms, err := pl.LocalizeCycleStats(nil, window, cfg)
		if err != nil {
			t.Fatalf("link %d: merged: %v", l, err)
		}
		global, err := pll.Localize(p, window, cfg)
		if err != nil {
			t.Fatalf("link %d: global: %v", l, err)
		}
		if ms.Reconciled != 0 || ms.Disagreements != 0 {
			t.Fatalf("link %d: exact policy reconciled=%d disagreements=%d, want 0/0", l, ms.Reconciled, ms.Disagreements)
		}
		if hashVerdicts(merged) != hashVerdicts(global) {
			t.Fatalf("link %d: exact merged verdicts diverge from the global pass", l)
		}
	}
}

func TestPlaneCacheReusesUnchangedMatrix(t *testing.T) {
	p1 := entangledServerMatrix()
	p2 := entangledServerMatrix() // same content, fresh allocation
	alive := []int{0, 1, 2, 3}

	var pc PlaneCache
	if pc.Cached() != nil {
		t.Fatal("cache non-empty before first Get")
	}
	first, rebuilt := pc.Get(p1, alive, PartitionApprox)
	if !rebuilt {
		t.Fatal("first Get did not build")
	}
	again, rebuilt := pc.Get(p2, alive, PartitionApprox)
	if rebuilt || again != first {
		t.Fatal("identical matrix content in a fresh allocation rebuilt the plane — the signature cache must hit")
	}
	if pc.Cached() != first {
		t.Fatal("Cached() does not return the memoized plane")
	}

	// Any input change invalidates: policy, alive set, matrix content.
	if _, rebuilt := pc.Get(p2, alive, PartitionExact); !rebuilt {
		t.Fatal("policy change did not rebuild")
	}
	if _, rebuilt := pc.Get(p2, []int{0, 1}, PartitionExact); !rebuilt {
		t.Fatal("alive-set change did not rebuild")
	}
	p3 := entangledServerMatrix()
	p3.PathLinks = p3.PathLinks[:len(p3.PathLinks)-1]
	p3 = route.NewProbesFromLinks(p3.PathLinks, p3.NumLinks)
	if _, rebuilt := pc.Get(p3, []int{0, 1}, PartitionExact); !rebuilt {
		t.Fatal("matrix content change did not rebuild")
	}
}
