package shard

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

// freshFull builds a throwaway coordinator over the same path set with the
// given down-link set and runs one full construction — the from-scratch
// ground truth a churned coordinator must match bit for bit.
func freshFull(t *testing.T, ps route.PathSet, numLinks int, down []topo.LinkID, opt pmc.Options, shards int) *Result {
	t.Helper()
	c, err := New(ps, numLinks, Options{
		Shards:    shards,
		PMC:       opt,
		TTL:       time.Hour,
		DownLinks: down,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	res, err := c.Construct()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// churnCoordinatorDifferential drives random link churn through a reusing
// coordinator and checks after every step that the merged selection is
// bit-identical to a from-scratch full recompute over the new topology.
func churnCoordinatorDifferential(t *testing.T, ps route.PathSet, numLinks int, opt pmc.Options, shards, steps int, seed int64) {
	t.Helper()
	c, err := New(ps, numLinks, Options{
		Shards:          shards,
		PMC:             opt,
		TTL:             time.Hour,
		ReuseSelections: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if _, err := c.Construct(); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(seed))
	downSet := make(map[topo.LinkID]bool)
	for step := 0; step < steps; step++ {
		var down, up []topo.LinkID
		l := topo.LinkID(rng.Intn(numLinks))
		if downSet[l] {
			up = append(up, l)
			downSet[l] = false
		} else {
			down = append(down, l)
			downSet[l] = true
		}
		if _, err := c.ApplyChurn(down, up); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		res, err := c.Construct()
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		want := freshFull(t, ps, numLinks, c.DownLinks(), opt, shards)
		if !reflect.DeepEqual(res.Selected, want.Selected) {
			t.Fatalf("step %d (down=%v up=%v): churned selection (%d paths) diverges from full recompute (%d paths)",
				step, down, up, len(res.Selected), len(want.Selected))
		}
		if res.DirtyComponents+res.ReusedComponents != c.Components() {
			t.Fatalf("step %d: dirty %d + reused %d != components %d",
				step, res.DirtyComponents, res.ReusedComponents, c.Components())
		}
	}
}

// TestCoordinatorChurnDifferentialFattree runs the randomized churn
// differential on Fattree(8) at beta=1 and beta=2: decomposable topology,
// multiple components, so most churn steps must reuse clean components.
func TestCoordinatorChurnDifferentialFattree(t *testing.T) {
	f := topo.MustFattree(8)
	ps := route.NewFattreePaths(f)
	churnCoordinatorDifferential(t, ps, f.NumLinks(),
		pmc.Options{Alpha: 1, Beta: 1, Lazy: true, Workers: 1}, 3, 8, 11)
	churnCoordinatorDifferential(t, ps, f.NumLinks(),
		pmc.Options{Alpha: 1, Beta: 2, Lazy: true, Workers: 1}, 2, 4, 12)
}

// TestCoordinatorChurnDifferentialBCube runs the same differential on
// BCube(4,1): a single component, so every churn step dirties everything —
// the degenerate case must still be exactly a full recompute.
func TestCoordinatorChurnDifferentialBCube(t *testing.T) {
	b := topo.MustBCube(4, 1)
	ps := route.NewBCubePaths(b)
	churnCoordinatorDifferential(t, ps, b.NumLinks(),
		pmc.Options{Alpha: 1, Beta: 1, Lazy: true, Workers: 1}, 2, 6, 13)
}

// TestCoordinatorChurnReusesCleanComponents pins the perf mechanism: after
// a full cycle, a single-link churn must dispatch only the dirty component
// and reuse every other selection verbatim.
func TestCoordinatorChurnReusesCleanComponents(t *testing.T) {
	f := topo.MustFattree(8)
	ps := route.NewFattreePaths(f)
	c, err := New(ps, f.NumLinks(), Options{
		Shards:          2,
		PMC:             pmc.Options{Alpha: 1, Beta: 1, Lazy: true, Workers: 1},
		TTL:             time.Hour,
		ReuseSelections: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	first, err := c.Construct()
	if err != nil {
		t.Fatal(err)
	}
	if first.DirtyComponents != c.Components() || first.ReusedComponents != 0 {
		t.Fatalf("first cycle: dirty=%d reused=%d, want all dirty", first.DirtyComponents, first.ReusedComponents)
	}

	// A second cycle with no churn must not dispatch anything — this is
	// also what makes an unhealthy-pinger-set change free at this layer.
	second, err := c.Construct()
	if err != nil {
		t.Fatal(err)
	}
	if second.DirtyComponents != 0 || second.ReusedComponents != c.Components() {
		t.Fatalf("no-churn cycle: dirty=%d reused=%d, want none dirty", second.DirtyComponents, second.ReusedComponents)
	}
	if !reflect.DeepEqual(first.Selected, second.Selected) {
		t.Fatal("no-churn cycle changed the selection")
	}
	if second.CriticalPath != 0 {
		t.Fatalf("no-churn cycle has critical path %v, want 0 (nothing dispatched)", second.CriticalPath)
	}

	// Single-link churn: exactly one component dirty.
	st := c.Status()
	down := st.Components[0].Key
	diff, err := c.ApplyChurn([]topo.LinkID{topo.LinkID(down)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.Removed) == 0 {
		t.Fatal("churn on a component key link produced an empty diff")
	}
	third, err := c.Construct()
	if err != nil {
		t.Fatal(err)
	}
	if third.DirtyComponents != len(diff.Added) {
		t.Fatalf("churn cycle dispatched %d components, want %d (the diff's Added set)",
			third.DirtyComponents, len(diff.Added))
	}
	if third.ReusedComponents != c.Components()-len(diff.Added) {
		t.Fatalf("churn cycle reused %d components, want %d",
			third.ReusedComponents, c.Components()-len(diff.Added))
	}
	want := freshFull(t, ps, f.NumLinks(), c.DownLinks(), pmc.Options{Alpha: 1, Beta: 1, Lazy: true, Workers: 1}, 2)
	if !reflect.DeepEqual(third.Selected, want.Selected) {
		t.Fatal("churned selection diverges from full recompute")
	}
}

// staticPS is a PathSet defined by explicit rows, for split/merge shapes no
// regular topology family produces on a single link change.
type staticPS struct{ rows [][]topo.LinkID }

func (s *staticPS) Len() int { return len(s.rows) }
func (s *staticPS) AppendLinks(i int, buf []topo.LinkID) []topo.LinkID {
	return append(buf, s.rows[i]...)
}
func (s *staticPS) Endpoints(i int) (topo.NodeID, topo.NodeID) { return 0, 1 }

// TestCoordinatorChurnSplitMerge drives a component split (down the bridge
// link) and re-merge (bring it back) through the coordinator at beta=1 and
// beta=2, checking the merged selection is bit-identical to full recompute
// in every state.
func TestCoordinatorChurnSplitMerge(t *testing.T) {
	ps := &staticPS{rows: [][]topo.LinkID{
		{0}, {1}, {0, 1}, {2}, {3}, {2, 3}, {0, 2, 4},
	}}
	const numLinks = 5
	for _, beta := range []int{1, 2} {
		opt := pmc.Options{Alpha: 1, Beta: beta, Lazy: true, Workers: 1}
		c, err := New(ps, numLinks, Options{
			Shards:          2,
			PMC:             opt,
			TTL:             time.Hour,
			ReuseSelections: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Components(); got != 1 {
			t.Fatalf("beta=%d: %d components, want 1 (bridged)", beta, got)
		}
		if _, err := c.Construct(); err != nil {
			t.Fatal(err)
		}

		diff, err := c.ApplyChurn([]topo.LinkID{4}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(diff.Removed) != 1 || len(diff.Added) != 2 {
			t.Fatalf("beta=%d split diff: %d removed, %d added, want 1/2", beta, len(diff.Removed), len(diff.Added))
		}
		res, err := c.Construct()
		if err != nil {
			t.Fatal(err)
		}
		want := freshFull(t, ps, numLinks, []topo.LinkID{4}, opt, 2)
		if !reflect.DeepEqual(res.Selected, want.Selected) {
			t.Fatalf("beta=%d: post-split selection diverges from full recompute", beta)
		}

		diff, err = c.ApplyChurn(nil, []topo.LinkID{4})
		if err != nil {
			t.Fatal(err)
		}
		if len(diff.Removed) != 2 || len(diff.Added) != 1 {
			t.Fatalf("beta=%d merge diff: %d removed, %d added, want 2/1", beta, len(diff.Removed), len(diff.Added))
		}
		res, err = c.Construct()
		if err != nil {
			t.Fatal(err)
		}
		want = freshFull(t, ps, numLinks, nil, opt, 2)
		if !reflect.DeepEqual(res.Selected, want.Selected) {
			t.Fatalf("beta=%d: post-merge selection diverges from full recompute", beta)
		}
		c.Stop()
	}
}
