package shard

import (
	"fmt"
	"testing"
	"time"

	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

// benchChurnSingleLink measures the incremental recompute path: one full
// construction up front, then per iteration a single-link down-churn, the
// dirty-only reconstruction (the measured cycle), and a restore. A
// different link churns each iteration so the dirty component is solved
// cold — the engine memo's flap-back shortcut is deliberately kept out of
// the measured number. Three metrics come out:
//
//   - full-critical-path-ms: the cold full cycle's critical path;
//   - churn-critical-path-ms: the single-link cycle's critical path
//     (slowest dispatched shard; clean components cost nothing);
//   - churn-vs-full-ratio: the quotient — the ISSUE 9 target is ≤ 0.1 on
//     Fattree(24), where a single link dirties 1 of 12 components.
func benchChurnSingleLink(b *testing.B, k, shards int) {
	f := topo.MustFattree(k)
	ps := route.NewFattreePaths(f)
	c, err := New(ps, f.NumLinks(), Options{
		Shards:          shards,
		Sequential:      true,
		PMC:             pmc.Options{Alpha: 2, Beta: 1, Lazy: true, Workers: 1},
		TTL:             time.Hour,
		ReuseSelections: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()
	full, err := c.Construct()
	if err != nil {
		b.Fatal(err)
	}
	fullCrit := full.CriticalPath
	links := f.SwitchLinks()
	b.ResetTimer()
	var churnCrit time.Duration
	for i := 0; i < b.N; i++ {
		l := links[i%len(links)]
		if _, err := c.ApplyChurn([]topo.LinkID{l}, nil); err != nil {
			b.Fatal(err)
		}
		res, err := c.Construct()
		if err != nil {
			b.Fatal(err)
		}
		churnCrit = res.CriticalPath
		if _, err := c.ApplyChurn(nil, []topo.LinkID{l}); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Construct(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(fullCrit.Microseconds())/1000.0, "full-critical-path-ms")
	b.ReportMetric(float64(churnCrit.Microseconds())/1000.0, "churn-critical-path-ms")
	if fullCrit > 0 {
		b.ReportMetric(float64(churnCrit)/float64(fullCrit), "churn-vs-full-ratio")
	}
}

// BenchmarkChurnSingleLinkFattree16 is the CI churn smoke: single-link
// churn against a full recompute on Fattree(16) (8 components, so the
// ratio lands near 1/8 minus the masked rows' savings).
func BenchmarkChurnSingleLinkFattree16(b *testing.B) {
	for _, n := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) { benchChurnSingleLink(b, 16, n) })
	}
}

// BenchmarkChurnSingleLinkFattree24 is the ISSUE 9 scale target: a
// single-link change on Fattree(24) (11.9M candidates, 12 components) must
// complete in ≤ 1/10 of the full-cycle critical path. Not part of the CI
// smoke; run with -benchtime=1x like the Fattree(24) construction bench.
func BenchmarkChurnSingleLinkFattree24(b *testing.B) {
	benchChurnSingleLink(b, 24, 1)
}
