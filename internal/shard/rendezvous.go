package shard

// Rendezvous (highest-random-weight) hashing decides which shard owns a
// component. Every (component key, shard id) pair gets a deterministic
// weight; the alive shard with the highest weight wins. The property that
// makes it the right tool for controller failover: removing a shard from
// the alive set leaves every other pair's weight untouched, so a death
// moves the dead shard's components and (under the capacity cap below)
// only the few survivors displaced by the changed cap — never a wholesale
// reshuffle.
//
// Pure rendezvous balances in expectation but is lumpy at small component
// counts (a k-ary Fattree has only k/2 components), and the construction
// critical path is the most-loaded shard. assignBalanced therefore caps
// every shard at ceil(components/alive): each component goes to its
// highest-weight shard that still has room, in deterministic component
// order. Max load is the cap, so N shards never degenerate below ~N/2-way
// parallelism, while assignment remains a pure function of (keys, alive).

// mix64 is SplitMix64's finalizer: a full-avalanche 64-bit mixer, so that
// consecutive component keys (small link IDs) spread uniformly over shards.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// weight is the rendezvous score of shard s for component key k.
func weight(k uint64, s int) uint64 {
	return mix64(k ^ mix64(uint64(s)+0x9e3779b97f4a7c15))
}

// rendezvousOwner returns the member of alive with the highest weight for
// key. Ties (vanishingly rare) break toward the lower shard id because
// alive is ascending and the comparison is strict. alive must be non-empty.
func rendezvousOwner(key uint64, alive []int) int {
	best, bestW := alive[0], weight(key, alive[0])
	for _, s := range alive[1:] {
		if w := weight(key, s); w > bestW {
			best, bestW = s, w
		}
	}
	return best
}

// assignBalanced maps each key to a member of alive by capacity-capped
// rendezvous: the highest-weight shard whose load is still below
// ceil(len(keys)/len(alive)). Keys are processed in slice order, which
// callers keep deterministic (components sort by smallest link ID). alive
// must be non-empty and ascending.
func assignBalanced(keys []uint64, alive []int) []int32 {
	maxLoad := (len(keys) + len(alive) - 1) / len(alive)
	load := make(map[int]int, len(alive))
	out := make([]int32, len(keys))
	for ci, k := range keys {
		best, bestW := -1, uint64(0)
		for _, s := range alive {
			if load[s] >= maxLoad {
				continue
			}
			if w := weight(k, s); best < 0 || w > bestW {
				best, bestW = s, w
			}
		}
		out[ci] = int32(best)
		load[best]++
	}
	return out
}
