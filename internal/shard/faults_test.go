package shard

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

// countingClient wraps an in-process shard and counts/fails dispatches —
// the minimal transport fault injector.
type countingClient struct {
	*Shard
	constructs    atomic.Int64
	failConstruct atomic.Bool
}

func (c *countingClient) Construct(req ConstructRequest) (*pmc.Result, error) {
	c.constructs.Add(1)
	if c.failConstruct.Load() {
		return nil, fmt.Errorf("injected construct fault on shard %d", c.ID())
	}
	return c.Shard.Construct(req)
}

// TestRetryReusesSurvivorsResults pins the failover-cost property: when a
// shard fails mid-cycle, survivors whose component slice is unchanged by
// the reassignment are not re-dispatched — their completed constructions
// carry into the retry round. (Fattree(8), 4 components, 3→2 shards: the
// capacity cap stays 2, so rendezvous moves only the victim's components.)
func TestRetryReusesSurvivorsResults(t *testing.T) {
	f := topo.MustFattree(8)
	ps := route.NewFattreePaths(f)
	opt := pmc.Options{Alpha: 2, Beta: 1, Lazy: true}
	single := opt
	single.Decompose = true
	ref, err := pmc.Construct(ps, f.NumLinks(), single)
	if err != nil {
		t.Fatal(err)
	}

	clients := make([]ShardClient, 3)
	counters := make([]*countingClient, 3)
	for i := range clients {
		counters[i] = &countingClient{Shard: NewInProcess(i, ps, f.NumLinks())}
		clients[i] = counters[i]
	}
	c, err := New(ps, f.NumLinks(), Options{Clients: clients, PMC: opt, TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	victim := int(c.Assignment()[0])
	counters[victim].failConstruct.Store(true)

	res, err := c.Construct()
	if err != nil {
		t.Fatalf("construct with faulty shard: %v", err)
	}
	if res.Retries < 1 {
		t.Fatal("fault was not exercised")
	}
	if !reflect.DeepEqual(res.Selected, ref.Selected) {
		t.Error("degraded merge differs from single controller")
	}
	if got := counters[victim].constructs.Load(); got != 1 {
		t.Errorf("victim dispatched %d times, want 1", got)
	}
	for i, cc := range counters {
		if i == victim {
			continue
		}
		// Each survivor runs once for its original slice; whichever
		// survivor inherited the victim's components runs once more for
		// the changed slice. Nobody recomputes an unchanged slice.
		if got := cc.constructs.Load(); got < 1 || got > 2 {
			t.Errorf("survivor %d dispatched %d times, want 1 or 2", i, got)
		}
	}
	total := int64(0)
	for _, cc := range counters {
		total += cc.constructs.Load()
	}
	// 3 first-round dispatches + only the slices the reassignment changed.
	if total > 5 {
		t.Errorf("cycle cost %d dispatches — retry recomputed unchanged survivor slices", total)
	}
}

// TestPlaneClientFallbackIsExact detaches a plane shard's client mid-window
// and checks the local fallback reproduces the transport verdicts exactly.
func TestPlaneClientFallbackIsExact(t *testing.T) {
	f := topo.MustFattree(8)
	ps := route.NewFattreePaths(f)
	res, err := pmc.Construct(ps, f.NumLinks(), pmc.Options{Alpha: 2, Beta: 1, Decompose: true, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	probes := route.NewProbes(ps, res.Selected, f.NumLinks())
	obs := syntheticWindow(probes, 3)
	ref, err := pll.Localize(probes, obs, pll.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	sh := NewInProcess(0, ps, f.NumLinks())
	plane := NewPlane(probes, []int{0}).UseClients(map[int]ShardClient{0: sh})
	sh.Kill() // every client Localize now fails; the plane must fall back

	got, err := plane.Localize(obs, pll.DefaultConfig())
	if err != nil {
		t.Fatalf("plane localize with dead client: %v", err)
	}
	if !reflect.DeepEqual(got.Bad, ref.Bad) ||
		got.LossyPaths != ref.LossyPaths || got.UnexplainedPaths != ref.UnexplainedPaths {
		t.Error("fallback verdicts differ from the direct localizer")
	}
}
