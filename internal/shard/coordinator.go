package shard

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
	"github.com/detector-net/detector/internal/watchdog"
)

// Options shapes a coordinator.
type Options struct {
	// Shards is the number of controller shards (>= 1).
	Shards int
	// PMC configures per-shard construction. Decompose is implied: the
	// coordinator always decomposes the matrix (sharding is meaningless
	// without it), so the merged result equals pmc.Construct with
	// Decompose on.
	PMC pmc.Options
	// TTL marks a shard dead after this heartbeat silence
	// (default 10 s; compressed in tests).
	TTL time.Duration
	// HeartbeatEvery is the shard heartbeat period (default TTL/4).
	HeartbeatEvery time.Duration
	// Sequential runs per-shard constructions one after another instead of
	// concurrently. Benchmarks use it so that each shard's elapsed time is
	// an uncontended single-controller measurement and the critical path
	// (max over shards) models the wall clock of a real N-machine
	// deployment run on one box.
	Sequential bool
}

// ShardStats describes one shard's share of a construction cycle.
type ShardStats struct {
	ID         int
	Components int
	Selected   int
	Elapsed    time.Duration
}

// Result is one merged construction cycle.
type Result struct {
	// Result is the merged PMC outcome, bit-identical to the
	// single-controller engine: Selected is the sorted union of the
	// per-shard selections and Stats sums the per-shard stats.
	*pmc.Result
	// PerShard lists each live shard's share, ascending by shard ID.
	PerShard []ShardStats
	// CriticalPath is the slowest shard's construction time — the modeled
	// wall clock of the distributed construction (exact when Sequential).
	CriticalPath time.Duration
	// Moved counts components reassigned at the start of this cycle
	// (nonzero only after a shard died or rejoined).
	Moved int
	// Alive is the number of live shards this cycle.
	Alive int
}

// Coordinator is the front-end of the sharded controller plane. It owns the
// materialized candidate matrix and its decomposition, assigns components
// to shards, dispatches construction, and merges results.
type Coordinator struct {
	ps       route.PathSet
	numLinks int
	opt      Options
	csr      *route.CSR
	comps    []route.Component
	wd       *watchdog.Service

	mu      sync.Mutex
	shards  []*Shard
	assign  []int32 // component index -> owning shard id
	stopped bool    // Stop ran; Revive must not start new heartbeat loops
}

// New materializes and decomposes the candidate matrix, boots the shard
// heartbeat loops, and computes the initial assignment.
func New(ps route.PathSet, numLinks int, opt Options) (*Coordinator, error) {
	if opt.Shards < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", opt.Shards)
	}
	if opt.TTL <= 0 {
		opt.TTL = 10 * time.Second
	}
	if opt.HeartbeatEvery <= 0 {
		opt.HeartbeatEvery = opt.TTL / 4
	}
	csr := route.MaterializeCSR(ps)
	c := &Coordinator{
		ps:       ps,
		numLinks: numLinks,
		opt:      opt,
		csr:      csr,
		comps:    route.DecomposeCSR(csr, numLinks),
		wd:       watchdog.New(opt.TTL),
	}
	c.assign = make([]int32, len(c.comps))
	for i := 0; i < opt.Shards; i++ {
		c.shards = append(c.shards, startShard(i, c.wd, opt.HeartbeatEvery))
	}
	alive := make([]int, opt.Shards)
	for i := range alive {
		alive[i] = i
	}
	c.reassignLocked(alive)
	return c, nil
}

// NumShards returns the configured shard count.
func (c *Coordinator) NumShards() int { return c.opt.Shards }

// Components returns the number of independent components being sharded.
func (c *Coordinator) Components() int { return len(c.comps) }

// Shard returns shard i (test and operator access, e.g. to Kill it).
// c.mu guards c.shards because Revive replaces slice elements.
func (c *Coordinator) Shard(i int) *Shard {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shards[i]
}

// Kill stops shard i's heartbeats. Its components are reassigned once the
// watchdog TTL expires, at the next Construct cycle.
func (c *Coordinator) Kill(i int) { c.Shard(i).Kill() }

// Revive restarts shard i's heartbeat loop after a Kill, modeling a
// recovered controller process rejoining the plane. The first heartbeat
// lands immediately, so the watchdog marks the shard healthy at once; the
// next Construct cycle recomputes the assignment over the full alive set —
// and because the assignment is a pure function of (component keys, alive
// set), a revived shard reclaims exactly the components it owned before it
// died, leaving every other shard's components in place.
//
// Holding c.mu across the old shard's Kill is safe — heartbeat loops never
// take the coordinator lock — and makes Revive atomic against concurrent
// Revive, Kill, Shard and Stop.
func (c *Coordinator) Revive(i int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return
	}
	c.shards[i].Kill() // idempotent: make sure the old loop is gone
	c.shards[i] = startShard(i, c.wd, c.opt.HeartbeatEvery)
}

// Stop kills every shard's heartbeat loop (teardown) and pins the
// coordinator stopped, so a racing Revive cannot start a loop that would
// outlive it.
func (c *Coordinator) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stopped = true
	for _, s := range c.shards {
		s.Kill()
	}
}

// Unhealthy lists the shard ids the watchdog currently considers dead.
func (c *Coordinator) Unhealthy() []int {
	var out []int
	for _, n := range c.wd.Unhealthy() {
		out = append(out, int(n))
	}
	sort.Ints(out)
	return out
}

// aliveShards returns the live shard ids, ascending. Dead means the
// watchdog TTL expired; a killed shard stays "alive" until then, exactly
// like a crashed controller whose silence has not yet been noticed.
func (c *Coordinator) aliveShards() []int {
	unhealthy := c.wd.UnhealthySet()
	alive := make([]int, 0, c.opt.Shards)
	for i := 0; i < c.opt.Shards; i++ {
		if !unhealthy[topo.NodeID(i)] {
			alive = append(alive, i)
		}
	}
	return alive
}

// reassignLocked recomputes the capacity-capped rendezvous assignment over
// the alive set and returns how many components moved. Requires c.mu (or
// single-threaded init).
func (c *Coordinator) reassignLocked(alive []int) int {
	keys := make([]uint64, len(c.comps))
	for ci := range c.comps {
		keys[ci] = c.comps[ci].Key()
	}
	next := assignBalanced(keys, alive)
	moved := 0
	for ci := range c.comps {
		if c.assign[ci] != next[ci] {
			c.assign[ci] = next[ci]
			moved++
		}
	}
	return moved
}

// Assignment returns a copy of the component → shard mapping.
func (c *Coordinator) Assignment() []int32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int32(nil), c.assign...)
}

// Construct runs one distributed construction cycle: observe liveness,
// reassign dead shards' components, run PMC on every live shard over its
// component slice, and merge. The merged selection is bit-identical to
// pmc.Construct(ps, numLinks, opt.PMC with Decompose on) regardless of the
// shard count or which shards are alive.
func (c *Coordinator) Construct() (*Result, error) {
	start := time.Now()
	c.mu.Lock()
	alive := c.aliveShards()
	if len(alive) == 0 {
		c.mu.Unlock()
		return nil, fmt.Errorf("shard: all %d shards dead; cannot construct", c.opt.Shards)
	}
	moved := c.reassignLocked(alive)
	assign := append([]int32(nil), c.assign...)
	c.mu.Unlock()

	perShard := make([][]route.Component, c.opt.Shards)
	for ci := range c.comps {
		id := assign[ci]
		perShard[id] = append(perShard[id], c.comps[ci])
	}

	results := make([]*pmc.Result, len(alive))
	errs := make([]error, len(alive))
	run := func(k int) {
		results[k], errs[k] = pmc.ConstructComponents(c.ps, c.csr, perShard[alive[k]], c.numLinks, c.opt.PMC)
	}
	if c.opt.Sequential {
		for k := range alive {
			run(k)
		}
	} else {
		var wg sync.WaitGroup
		for k := range alive {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				run(k)
			}(k)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	merged := &Result{
		Result: &pmc.Result{Stats: pmc.Stats{CoverageMet: true, IdentMet: c.opt.PMC.Beta >= 1}},
		Moved:  moved,
		Alive:  len(alive),
	}
	for k, r := range results {
		merged.Selected = append(merged.Selected, r.Selected...)
		merged.Stats.Components += r.Stats.Components
		merged.Stats.Candidates += r.Stats.Candidates
		merged.Stats.ScoreEvals += r.Stats.ScoreEvals
		merged.Stats.Reseeds += r.Stats.Reseeds
		merged.Stats.CoverageMet = merged.Stats.CoverageMet && r.Stats.CoverageMet
		merged.Stats.IdentMet = merged.Stats.IdentMet && r.Stats.IdentMet
		merged.PerShard = append(merged.PerShard, ShardStats{
			ID:         alive[k],
			Components: len(perShard[alive[k]]),
			Selected:   len(r.Selected),
			Elapsed:    r.Stats.Elapsed,
		})
		if r.Stats.Elapsed > merged.CriticalPath {
			merged.CriticalPath = r.Stats.Elapsed
		}
	}
	sort.Ints(merged.Selected)
	merged.Stats.Selected = len(merged.Selected)
	merged.Stats.Elapsed = time.Since(start)
	return merged, nil
}

// BuildPlane partitions a served probe matrix across the currently alive
// shards for report routing and per-shard localization (see Plane).
func (c *Coordinator) BuildPlane(p *route.Probes) *Plane {
	c.mu.Lock()
	alive := c.aliveShards()
	c.mu.Unlock()
	if len(alive) == 0 {
		alive = []int{0} // degraded: route everything to shard 0's slot
	}
	return NewPlane(p, alive)
}
