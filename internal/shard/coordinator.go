package shard

import (
	"fmt"
	"slices"
	"sort"
	"sync"
	"time"

	"github.com/detector-net/detector/internal/metrics"
	"github.com/detector-net/detector/internal/obs"
	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
	"github.com/detector-net/detector/internal/watchdog"
)

// heartbeatLapses counts failed liveness probes across all shards — the
// transport-level signal that precedes a watchdog death.
var heartbeatLapses = metrics.NewCounter("shard_heartbeat_lapses")

// constructFailovers counts shards quarantined mid-cycle because a
// dispatched construction failed; each one forces a reassignment retry.
var constructFailovers = metrics.NewCounter("shard_construct_failovers")

// Coordinator stage histograms: the live per-cycle decomposition of the
// construction pipeline (deTector §5's construct timing, exported per
// cycle instead of per bench run). Looked up once; Observe is atomic.
var (
	stageMaterialize = obs.Stages.With("materialize")
	stageDecompose   = obs.Stages.With("decompose")
	stageAssign      = obs.Stages.With("assign")
	stageDispatch    = obs.Stages.With("construct_dispatch")
	stageMerge       = obs.Stages.With("merge")
)

// Fleet gauges: how many shards are in/out of the plane right now.
var (
	shardsAlive       = obs.NewGauge("shard_fleet_alive", "Shards currently in the plane (last liveness view).")
	shardsQuarantined = obs.NewGauge("shard_fleet_quarantined", "Shards currently quarantined after a mid-cycle failure.")
)

// Options shapes a coordinator.
type Options struct {
	// Shards is the number of in-process controller shards to boot when
	// Clients is nil (>= 1). Ignored when Clients is set.
	Shards int
	// Clients, when non-nil, is the explicit shard fleet: one transport
	// client per shard, slot i must have ID i. This is how remote shards
	// (internal/shardrpc) join the plane. The coordinator takes
	// ownership and closes them on Stop.
	Clients []ShardClient
	// PMC configures per-shard construction. Decompose is implied: the
	// coordinator always decomposes the matrix (sharding is meaningless
	// without it), so the merged result equals pmc.Construct with
	// Decompose on.
	PMC pmc.Options
	// TTL marks a shard dead after this many heartbeat-probe failures'
	// worth of silence (default 10 s; compressed in tests).
	TTL time.Duration
	// HeartbeatEvery is the liveness-probe period (default TTL/4).
	HeartbeatEvery time.Duration
	// Sequential runs per-shard constructions one after another instead of
	// concurrently. Benchmarks use it so that each shard's elapsed time is
	// an uncontended single-controller measurement and the critical path
	// (max over shards) models the wall clock of a real N-machine
	// deployment run on one box.
	Sequential bool
	// DownLinks is the initial set of links masked out of the candidate
	// matrix (topology churn state at boot). Paths traversing a down link
	// are excluded from decomposition and construction; ApplyChurn moves
	// links in and out of this set at runtime.
	DownLinks []topo.LinkID
	// ReuseSelections keeps per-component selections across Construct
	// cycles and dispatches only components invalidated by churn
	// (ApplyChurn) since the last cycle. Clean components' prior
	// selections are reused verbatim, so the merge stays bit-identical to
	// a full recompute while dispatch cost and wire bytes scale with the
	// dirty set. Off by default: benchmarks and tests that measure full
	// cycles rely on every Construct doing the full work.
	ReuseSelections bool
	// ApproxWarmSeed enables the approximate PMC warm start on in-process
	// shards: a changed component seeds its greedy from a related cached
	// selection (subset/superset link set). Results still meet the α/β
	// targets but are no longer guaranteed bit-identical to a cold
	// construction — leave off on any path that promises that.
	ApproxWarmSeed bool
	// Partition selects how BuildPlane derives diagnosis-side ownership:
	// PartitionExact (default — bit-identical merge, but server-level
	// matrices collapse to one partition) or PartitionApprox (cuts
	// server-edge links with a measured replication bound; see Plane).
	Partition PartitionPolicy
}

// ShardStats describes one shard's share of a construction cycle.
type ShardStats struct {
	ID         int
	Components int
	Selected   int
	Elapsed    time.Duration
}

// Result is one merged construction cycle.
type Result struct {
	// Result is the merged PMC outcome, bit-identical to the
	// single-controller engine: Selected is the sorted union of the
	// per-shard selections and Stats sums the per-shard stats.
	*pmc.Result
	// PerShard lists each participating shard's share, ascending by ID.
	PerShard []ShardStats
	// CriticalPath is the slowest shard's construction time — the modeled
	// wall clock of the distributed construction (exact when Sequential).
	CriticalPath time.Duration
	// Moved counts components reassigned during this cycle (nonzero after
	// a shard died, rejoined, or failed mid-cycle).
	Moved int
	// Alive is the number of shards that contributed to the merge.
	Alive int
	// Retries counts mid-cycle dispatch rounds that had to be repeated
	// because a shard failed after passing liveness (transport error or
	// construction error). 0 on a clean cycle.
	Retries int
	// DirtyComponents is how many components were actually dispatched this
	// cycle; ReusedComponents is how many were served from the selection
	// cache (always 0 unless Options.ReuseSelections).
	DirtyComponents, ReusedComponents int
}

// compSel is one component's cached construction outcome, keyed by
// Component.Key() in the selection cache. The flags are the owning shard's
// merged flags at solve time (conservative when a shard solved several
// components at once — exactly as conservative as the full merge they came
// from).
type compSel struct {
	selected    []int
	coverageMet bool
	identMet    bool
}

// Coordinator is the front-end of the sharded controller plane. It owns the
// materialized candidate matrix and its decomposition, assigns components
// to shards, dispatches construction over the ShardClient transport, and
// merges results.
type Coordinator struct {
	ps       route.PathSet
	numLinks int
	opt      Options
	csr      *route.CSR
	sig      uint64
	wd       *watchdog.Service
	clients  []ShardClient // immutable after New

	mu          sync.Mutex
	inc         *route.Incremental // owns the masked decomposition
	comps       []route.Component  // current snapshot of inc.Components()
	churnEpoch  uint64             // bumped by every effective ApplyChurn
	selCache    map[uint64]compSel // Component.Key() -> last selection
	assignKey   map[uint64]int32   // Component.Key() -> owning shard id
	quarantined []bool             // construct failed while pings still pass
	assign      []int32            // component index -> owning shard id
	stopped     bool
	stop        chan struct{}
	probers     sync.WaitGroup

	planeCache PlaneCache // BuildPlane's partition memo, keyed by matrix content
}

// New materializes and decomposes the candidate matrix, connects the shard
// fleet (booting in-process shards when no transport clients are given),
// starts the liveness probers, and computes the initial assignment.
func New(ps route.PathSet, numLinks int, opt Options) (*Coordinator, error) {
	if len(opt.Clients) > 0 {
		if opt.Shards != 0 && opt.Shards != len(opt.Clients) {
			return nil, fmt.Errorf("shard: Shards=%d conflicts with %d explicit clients", opt.Shards, len(opt.Clients))
		}
		opt.Shards = len(opt.Clients)
		for i, cl := range opt.Clients {
			if cl.ID() != i {
				return nil, fmt.Errorf("shard: client in slot %d has ID %d", i, cl.ID())
			}
		}
	}
	if opt.Shards < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", opt.Shards)
	}
	if opt.TTL <= 0 {
		opt.TTL = 10 * time.Second
	}
	if opt.HeartbeatEvery <= 0 {
		opt.HeartbeatEvery = opt.TTL / 4
	}
	matStart := time.Now()
	csr := route.MaterializeCSR(ps)
	stageMaterialize.Observe(time.Since(matStart))
	decStart := time.Now()
	inc := route.NewIncremental(csr, numLinks, opt.DownLinks)
	stageDecompose.Observe(time.Since(decStart))
	c := &Coordinator{
		ps:       ps,
		numLinks: numLinks,
		opt:      opt,
		csr:      csr,
		inc:      inc,
		comps:    inc.Components(),
		sig:      route.MatrixSignature(csr, numLinks),
		wd:       watchdog.New(opt.TTL),
		stop:     make(chan struct{}),
	}
	c.assign = make([]int32, len(c.comps))
	c.selCache = make(map[uint64]compSel)
	c.assignKey = make(map[uint64]int32)
	c.quarantined = make([]bool, opt.Shards)
	if opt.Clients != nil {
		c.clients = opt.Clients
	} else {
		// In-process shards share one engine memo: components that move
		// between shards (failover, churn-driven reassignment) still hit
		// their cached selections.
		memo := pmc.NewMemo(0)
		if opt.ApproxWarmSeed {
			memo.EnableSeeding()
		}
		for i := 0; i < opt.Shards; i++ {
			sh := newInProcess(i, ps, csr, numLinks, c.sig)
			sh.memo = memo
			c.clients = append(c.clients, sh)
		}
	}
	alive := make([]int, opt.Shards)
	for i := range alive {
		alive[i] = i
		// Initial grace: every shard starts with one granted heartbeat so
		// that a slow-to-boot remote shard gets a full TTL before being
		// declared dead.
		c.wd.Track(topo.NodeID(i))
		c.wd.Heartbeat(topo.NodeID(i))
	}
	c.reassignLocked(alive)
	for _, cl := range c.clients {
		// Pin the engine fingerprint on transport clients before any probe
		// runs: a shard built for a different matrix then fails pings and
		// is declared dead, rather than flapping through
		// admit-dispatch-fail cycles.
		if mc, ok := cl.(MatrixChecker); ok {
			mc.ExpectMatrix(c.sig, c.numLinks)
		}
	}
	// One synchronous probe round before the periodic probers start: it
	// seeds liveness with a real heartbeat and — on transport clients —
	// runs the codec negotiation, so even the very first construct
	// dispatch ships in the negotiated wire format instead of the JSON
	// fallback. Pings run in parallel, so a dead endpoint costs one
	// refused connection, not a serial timeout chain.
	var initial sync.WaitGroup
	for i := range c.clients {
		initial.Add(1)
		go func(i int) {
			defer initial.Done()
			if err := c.clients[i].Ping(); err == nil {
				c.wd.Heartbeat(topo.NodeID(i))
			}
		}(i)
	}
	initial.Wait()
	for i := range c.clients {
		c.probers.Add(1)
		go c.probe(i)
	}
	return c, nil
}

// probe is the per-shard liveness loop: one transport ping per heartbeat
// period, translated into a watchdog heartbeat on success. This is the
// only heartbeat source — in-process and remote shards are kept alive (and
// declared dead) by exactly the same mechanism.
func (c *Coordinator) probe(i int) {
	defer c.probers.Done()
	tick := time.NewTicker(c.opt.HeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			if err := c.clients[i].Ping(); err == nil {
				c.wd.Heartbeat(topo.NodeID(i))
			} else {
				heartbeatLapses.Inc()
			}
		}
	}
}

// MatrixSig returns the coordinator's candidate-matrix signature; remote
// shards must be built over a matrix with the same signature.
func (c *Coordinator) MatrixSig() uint64 { return c.sig }

// NumShards returns the configured shard count.
func (c *Coordinator) NumShards() int { return c.opt.Shards }

// Components returns the number of independent components being sharded.
func (c *Coordinator) Components() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.comps)
}

// Client returns shard i's transport client (test and operator access).
func (c *Coordinator) Client(i int) ShardClient { return c.clients[i] }

// Kill crash-simulates shard i when its client supports it (in-process
// shards). Its components are reassigned once the watchdog TTL expires or
// a dispatch fails, whichever the coordinator observes first. Remote
// shards are killed for real: stop the server and the same failover path
// runs off failed pings.
func (c *Coordinator) Kill(i int) {
	if k, ok := c.clients[i].(Killer); ok {
		k.Kill()
	}
}

// Revive recovers shard i after a Kill (or a remote shard's restart): the
// quarantine is lifted and one immediate liveness probe runs, so a healthy
// shard is back in the plane at once. The next Construct cycle recomputes
// the assignment over the full alive set — and because the assignment is a
// pure function of (component keys, alive set), a revived shard reclaims
// exactly the components it owned before it died, leaving every other
// shard's components in place.
func (c *Coordinator) Revive(i int) {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.quarantined[i] = false
	c.mu.Unlock()
	if r, ok := c.clients[i].(Reviver); ok {
		r.Revive()
	}
	if err := c.clients[i].Ping(); err == nil {
		c.wd.Heartbeat(topo.NodeID(i))
	}
}

// Stop halts the liveness probers and closes every shard client
// (teardown). Idempotent.
func (c *Coordinator) Stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	close(c.stop)
	c.mu.Unlock()
	c.probers.Wait()
	for _, cl := range c.clients {
		cl.Close()
	}
}

// Unhealthy lists the shard ids currently out of the plane: watchdog TTL
// expiries plus mid-cycle quarantines, ascending.
func (c *Coordinator) Unhealthy() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	set := make(map[int]bool)
	for _, n := range c.wd.Unhealthy() {
		set[int(n)] = true
	}
	for i, q := range c.quarantined {
		if q {
			set[i] = true
		}
	}
	out := make([]int, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// aliveLocked returns the live shard ids, ascending: not expired in the
// watchdog and not quarantined. Dead-by-TTL means ping failures went
// unanswered for the TTL; a killed shard stays "alive" until then, exactly
// like a crashed controller whose silence has not yet been noticed.
// Requires c.mu.
func (c *Coordinator) aliveLocked() []int {
	unhealthy := c.wd.UnhealthySet()
	alive := make([]int, 0, c.opt.Shards)
	for i := 0; i < c.opt.Shards; i++ {
		if !unhealthy[topo.NodeID(i)] && !c.quarantined[i] {
			alive = append(alive, i)
		}
	}
	return alive
}

// reprobeQuarantined gives quarantined shards one synchronous liveness
// probe at the start of a cycle: a shard whose process was restarted (or
// whose transport blip healed) rejoins automatically, while a shard that
// still fails stays out without costing the cycle anything further.
func (c *Coordinator) reprobeQuarantined() {
	c.mu.Lock()
	var retry []int
	for i, q := range c.quarantined {
		if q {
			retry = append(retry, i)
		}
	}
	c.mu.Unlock()
	for _, i := range retry {
		if err := c.clients[i].Ping(); err == nil {
			c.wd.Heartbeat(topo.NodeID(i))
			c.mu.Lock()
			c.quarantined[i] = false
			c.mu.Unlock()
		}
	}
}

// reassignLocked recomputes the capacity-capped rendezvous assignment over
// the alive set and returns how many components moved. Movement is tracked
// by component *key*, not index: churn shifts component indices around, but
// a clean component that stays on its shard has not moved. Requires c.mu
// (or single-threaded init).
func (c *Coordinator) reassignLocked(alive []int) int {
	keys := make([]uint64, len(c.comps))
	for ci := range c.comps {
		keys[ci] = c.comps[ci].Key()
	}
	next := assignBalanced(keys, alive)
	moved := 0
	nextByKey := make(map[uint64]int32, len(keys))
	for ci := range c.comps {
		c.assign[ci] = next[ci]
		nextByKey[keys[ci]] = next[ci]
		if prev, ok := c.assignKey[keys[ci]]; !ok || prev != next[ci] {
			moved++
		}
	}
	c.assignKey = nextByKey
	return moved
}

// ApplyChurn transitions links down/up in the masked candidate matrix and
// invalidates exactly the components the change touches. The next Construct
// recomputes only those (under Options.ReuseSelections; without it the next
// cycle is a full recompute over the new decomposition either way — still
// bit-identical, just not incremental). Returns the component diff.
//
// ApplyChurn must not race a Construct in flight: the coordinator detects
// the overlap and the Construct returns an error asking to be re-run. The
// control plane serializes the two.
func (c *Coordinator) ApplyChurn(down, up []topo.LinkID) (route.Diff, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return route.Diff{}, fmt.Errorf("shard: coordinator stopped")
	}
	diff, err := c.inc.Apply(down, up)
	if err != nil {
		return route.Diff{}, err
	}
	if diff.Empty() {
		return diff, nil
	}
	c.churnEpoch++
	c.comps = c.inc.Components()
	for i := range diff.Removed {
		delete(c.selCache, diff.Removed[i].Key())
		delete(c.assignKey, diff.Removed[i].Key())
	}
	// An added component sharing a removed key (splits keep the smallest
	// link) must not inherit the stale selection either.
	for i := range diff.Added {
		delete(c.selCache, diff.Added[i].Key())
	}
	c.assign = make([]int32, len(c.comps))
	for ci := range c.comps {
		if id, ok := c.assignKey[c.comps[ci].Key()]; ok {
			c.assign[ci] = id
		}
	}
	return diff, nil
}

// DownLinks returns the current down-link set, ascending.
func (c *Coordinator) DownLinks() []topo.LinkID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inc.Down()
}

// Assignment returns a copy of the component → shard mapping.
func (c *Coordinator) Assignment() []int32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int32(nil), c.assign...)
}

// Construct runs one distributed construction cycle: observe liveness,
// reassign dead shards' components, dispatch PMC over the transport to
// every live shard, and merge. A shard that fails its dispatch — transport
// error or engine error — is quarantined and the cycle retries over the
// survivors, so the result is always a complete merge: bit-identical to
// pmc.Construct(ps, numLinks, opt.PMC with Decompose on) regardless of the
// shard count, the transport, or which shards die mid-cycle.
func (c *Coordinator) Construct() (*Result, error) {
	return c.ConstructCycle(nil)
}

// ConstructCycle is Construct under an observability cycle: the assign,
// per-shard dispatch and merge phases get spans on cy (per-shard spans are
// tagged with the shard id), the stage histograms fill regardless, and the
// cycle ID is stamped on every ConstructRequest so remote shards' server
// spans file under the caller's timeline. A nil cy traces nothing and
// stamps cycle ID 0 — the construction itself is identical either way.
func (c *Coordinator) ConstructCycle(cy *obs.Cycle) (*Result, error) {
	start := time.Now()
	c.reprobeQuarantined()
	totalMoved := 0
	var lastErr error
	// Completed per-shard runs, kept across retry rounds: when a shard
	// fails mid-cycle, survivors whose component slice is unchanged by the
	// reassignment (rendezvous moves only the failed shard's components
	// plus cap displacements) reuse their finished construction instead of
	// recomputing it — a failover round costs roughly the failed shard's
	// work, not the whole cycle's. Keyed by shard id; valid only while the
	// slice (component indices) matches.
	type doneRun struct {
		compIdx []int32
		res     *pmc.Result
	}
	cache := make(map[int]doneRun)
	for attempt := 0; attempt <= c.opt.Shards; attempt++ {
		c.mu.Lock()
		alive := c.aliveLocked()
		if len(alive) == 0 {
			c.mu.Unlock()
			if lastErr != nil {
				return nil, fmt.Errorf("shard: all %d shards dead or quarantined; last dispatch error: %w",
					c.opt.Shards, lastErr)
			}
			return nil, fmt.Errorf("shard: all %d shards dead; cannot construct", c.opt.Shards)
		}
		assignStart := time.Now()
		assignSpan := cy.Span("assign")
		totalMoved += c.reassignLocked(alive)
		assign := append([]int32(nil), c.assign...)
		comps := c.comps // replaced wholesale by ApplyChurn; safe to hold
		epoch := c.churnEpoch
		reuse := c.opt.ReuseSelections
		// Dirty components: not yet in the selection cache. Without reuse,
		// everything is dirty every cycle.
		dirty := make([]int32, 0, len(comps))
		for ci := range comps {
			if reuse {
				if _, ok := c.selCache[comps[ci].Key()]; ok {
					continue
				}
			}
			dirty = append(dirty, int32(ci))
		}
		c.mu.Unlock()

		perShard := make([][]int32, c.opt.Shards)
		for _, ci := range dirty {
			id := assign[ci]
			perShard[id] = append(perShard[id], ci)
		}
		assignSpan.End()
		stageAssign.Observe(time.Since(assignStart))

		results := make([]*pmc.Result, len(alive))
		errs := make([]error, len(alive))
		var toRun, idle []int
		for k, id := range alive {
			if reuse && len(perShard[id]) == 0 {
				// Nothing dirty here — but dispatch is also how the
				// coordinator discovers a dead shard before the watchdog TTL
				// fires, so an undispatched shard gets a synchronous ping
				// below instead of a free pass.
				idle = append(idle, k)
				continue
			}
			if d, ok := cache[id]; ok && slices.Equal(d.compIdx, perShard[id]) {
				results[k] = d.res
				continue
			}
			toRun = append(toRun, k)
		}
		dispatchStart := time.Now()
		run := func(k int) {
			id := alive[k]
			sub := make([]route.Component, len(perShard[id]))
			for i, ci := range perShard[id] {
				sub[i] = comps[ci]
			}
			sp := cy.ShardSpan("construct", id)
			results[k], errs[k] = c.clients[id].Construct(ConstructRequest{
				MatrixSig: c.sig,
				NumLinks:  c.numLinks,
				Comps:     sub,
				Opt:       c.opt.PMC,
				Cycle:     cy.ID(),
			})
			sp.EndErr(errs[k])
		}
		ping := func(k int) {
			if err := c.clients[alive[k]].Ping(); err != nil {
				errs[k] = fmt.Errorf("shard: idle liveness ping: %w", err)
			}
		}
		if c.opt.Sequential {
			for _, k := range toRun {
				run(k)
			}
			for _, k := range idle {
				ping(k)
			}
		} else {
			var wg sync.WaitGroup
			for _, k := range toRun {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					run(k)
				}(k)
			}
			for _, k := range idle {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					ping(k)
				}(k)
			}
			wg.Wait()
		}
		stageDispatch.Observe(time.Since(dispatchStart))

		failed := false
		for k, err := range errs {
			id := alive[k]
			if err == nil {
				if results[k] != nil {
					cache[id] = doneRun{compIdx: perShard[id], res: results[k]}
				}
				continue
			}
			failed = true
			lastErr = err
			constructFailovers.Inc()
			obs.Logger().Warn("shard quarantined after failed construct dispatch",
				"shard", id, "cycle", cy.ID(), "err", err)
			delete(cache, id)
			c.mu.Lock()
			c.quarantined[id] = true
			c.mu.Unlock()
		}
		if failed {
			// Never serve a partial merge: requeue the cycle over the
			// survivors (cached runs carry over). Each retry quarantines
			// at least one shard, so the loop terminates within opt.Shards
			// rounds.
			continue
		}

		mergeStart := time.Now()
		mergeSpan := cy.Span("merge")
		merged := &Result{
			Result:          &pmc.Result{Stats: pmc.Stats{CoverageMet: true, IdentMet: c.opt.PMC.Beta >= 1}},
			Moved:           totalMoved,
			Alive:           len(alive),
			Retries:         attempt,
			DirtyComponents: len(dirty),
		}
		for k, r := range results {
			if r == nil {
				continue // reuse mode: shard had no dirty components
			}
			merged.Stats.Components += r.Stats.Components
			merged.Stats.Candidates += r.Stats.Candidates
			merged.Stats.ScoreEvals += r.Stats.ScoreEvals
			merged.Stats.Reseeds += r.Stats.Reseeds
			merged.Stats.CoverageMet = merged.Stats.CoverageMet && r.Stats.CoverageMet
			merged.Stats.IdentMet = merged.Stats.IdentMet && r.Stats.IdentMet
			merged.PerShard = append(merged.PerShard, ShardStats{
				ID:         alive[k],
				Components: len(perShard[alive[k]]),
				Selected:   len(r.Selected),
				Elapsed:    r.Stats.Elapsed,
			})
			if !reuse {
				merged.Selected = append(merged.Selected, r.Selected...)
			}
			if r.Stats.Elapsed > merged.CriticalPath {
				merged.CriticalPath = r.Stats.Elapsed
			}
		}
		if reuse {
			// Store the fresh per-component selections, then serve the full
			// merge from the cache: clean components verbatim, dirty ones
			// from this cycle's results. The split attributes each selected
			// path to its component through its first link.
			c.mu.Lock()
			if c.churnEpoch != epoch {
				c.mu.Unlock()
				return nil, fmt.Errorf("shard: topology churned during construction; re-run Construct")
			}
			for k, r := range results {
				if r == nil {
					continue
				}
				idxs := perShard[alive[k]]
				if len(idxs) == 1 {
					c.selCache[comps[idxs[0]].Key()] = compSel{
						selected:    r.Selected,
						coverageMet: r.Stats.CoverageMet,
						identMet:    r.Stats.IdentMet,
					}
					continue
				}
				parts := make(map[int32][]int, len(idxs))
				for _, pid := range r.Selected {
					ci := int32(c.inc.CompIndexOf(c.csr.Row(pid)[0]))
					parts[ci] = append(parts[ci], pid)
				}
				for _, ci := range idxs {
					c.selCache[comps[ci].Key()] = compSel{
						selected:    parts[ci],
						coverageMet: r.Stats.CoverageMet,
						identMet:    r.Stats.IdentMet,
					}
				}
			}
			merged.Stats.Components = len(comps)
			for ci := range comps {
				sel, ok := c.selCache[comps[ci].Key()]
				if !ok {
					c.mu.Unlock()
					return nil, fmt.Errorf("shard: component %d missing from selection cache after merge", ci)
				}
				merged.Selected = append(merged.Selected, sel.selected...)
				merged.Stats.CoverageMet = merged.Stats.CoverageMet && sel.coverageMet
				merged.Stats.IdentMet = merged.Stats.IdentMet && sel.identMet
			}
			c.mu.Unlock()
			merged.ReusedComponents = len(comps) - len(dirty)
		}
		sort.Ints(merged.Selected)
		merged.Stats.Selected = len(merged.Selected)
		merged.Stats.Elapsed = time.Since(start)
		mergeSpan.End()
		stageMerge.Observe(time.Since(mergeStart))
		shardsAlive.Set(int64(len(alive)))
		shardsQuarantined.Set(int64(c.opt.Shards - len(alive)))
		return merged, nil
	}
	return nil, fmt.Errorf("shard: construction failed after %d dispatch rounds: %w", c.opt.Shards+1, lastErr)
}

// BuildPlane partitions a served probe matrix across the currently alive
// shards for report routing and per-shard localization, dispatched over
// the same transport clients (see Plane). The partition policy comes from
// Options.Partition; the union-find partition is cached by matrix content
// signature, so successive cycles over an unchanged served matrix (and an
// unchanged alive set) reuse the same plane.
func (c *Coordinator) BuildPlane(p *route.Probes) *Plane {
	c.mu.Lock()
	alive := c.aliveLocked()
	c.mu.Unlock()
	if len(alive) == 0 {
		alive = []int{0} // degraded: route everything to shard 0's slot
	}
	clients := make(map[int]ShardClient, len(alive))
	for _, id := range alive {
		clients[id] = c.clients[id]
	}
	pl, _ := c.planeCache.Get(p, alive, c.opt.Partition)
	return pl.UseClients(clients)
}

// ShardInfo is one shard's row in the operator-facing placement view.
type ShardInfo struct {
	ID          int    `json:"id"`
	Addr        string `json:"addr"`
	Alive       bool   `json:"alive"`
	Quarantined bool   `json:"quarantined,omitempty"`
	// Codec is the negotiated wire codec for transport-backed shards
	// (CodecReporter); empty for in-process shards, which have no wire.
	Codec string `json:"codec,omitempty"`
	// Compression is the negotiated localize-path compression for
	// transport-backed shards (CompressionReporter); empty for in-process
	// shards, which have no wire.
	Compression string `json:"compression,omitempty"`
	// Components are the component indices the shard currently owns.
	Components []int `json:"components"`
}

// ComponentInfo is one component's row in the placement view.
type ComponentInfo struct {
	Index int    `json:"index"`
	Key   uint64 `json:"key,string"`
	Links int    `json:"links"`
	Paths int    `json:"paths"`
	Shard int    `json:"shard"`
}

// Status is the operator-facing snapshot served at the control service's
// GET /shards: who is alive, where every component lives, and over which
// transport — placement without log scraping.
type Status struct {
	MatrixSig uint64 `json:"matrix_sig,string"`
	// Partition is the diagnosis-plane partition policy ("exact" or
	// "approx") the coordinator builds planes under.
	Partition PartitionPolicy `json:"partition,omitempty"`
	// Plane summarizes the most recent diagnosis plane built under that
	// policy (partition/cut-link counts); nil before the first BuildPlane.
	Plane      *PlaneStats     `json:"plane,omitempty"`
	Shards     []ShardInfo     `json:"shards"`
	Components []ComponentInfo `json:"components"`
	// Down lists the currently masked (churned-out) links, ascending.
	Down []topo.LinkID `json:"down,omitempty"`
}

// Status snapshots shard liveness and the component → shard assignment.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	unhealthy := c.wd.UnhealthySet()
	policy := c.opt.Partition
	if policy == "" {
		policy = PartitionExact
	}
	st := Status{MatrixSig: c.sig, Partition: policy, Down: c.inc.Down()}
	if pl := c.planeCache.Cached(); pl != nil {
		stats := pl.Stats()
		st.Plane = &stats
	}
	owned := make(map[int][]int, c.opt.Shards)
	for ci := range c.comps {
		id := int(c.assign[ci])
		owned[id] = append(owned[id], ci)
		st.Components = append(st.Components, ComponentInfo{
			Index: ci,
			Key:   c.comps[ci].Key(),
			Links: len(c.comps[ci].Links),
			Paths: len(c.comps[ci].Paths),
			Shard: id,
		})
	}
	for i := 0; i < c.opt.Shards; i++ {
		comps := owned[i]
		if comps == nil {
			comps = []int{}
		}
		info := ShardInfo{
			ID:          i,
			Addr:        c.clients[i].Addr(),
			Alive:       !unhealthy[topo.NodeID(i)] && !c.quarantined[i],
			Quarantined: c.quarantined[i],
			Components:  comps,
		}
		if cr, ok := c.clients[i].(CodecReporter); ok {
			info.Codec = cr.Codec()
		}
		if cr, ok := c.clients[i].(CompressionReporter); ok {
			info.Compression = cr.Compression()
		}
		st.Shards = append(st.Shards, info)
	}
	return st
}
