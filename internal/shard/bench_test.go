package shard

import (
	"fmt"
	"testing"
	"time"

	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

// benchSharded measures distributed construction. Each shard models one
// controller process with a fixed compute budget (Workers: 1), and
// Sequential mode times the shards one at a time so that per-shard elapsed
// is an uncontended measurement even on a small benchmark box. Two numbers
// come out:
//
//   - ns/op: the cost of emulating the whole cycle on one box (every
//     shard's work plus merge, run back to back);
//   - critical-path-ms: the slowest shard's construction time — the wall
//     clock a real N-controller deployment would see, which is the figure
//     the shards=N progression is about.
func benchSharded(b *testing.B, k int, shards int) {
	f := topo.MustFattree(k)
	ps := route.NewFattreePaths(f)
	c, err := New(ps, f.NumLinks(), Options{
		Shards:     shards,
		Sequential: true,
		PMC:        pmc.Options{Alpha: 2, Beta: 1, Lazy: true, Workers: 1},
		TTL:        time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()
	b.ResetTimer()
	var crit time.Duration
	for i := 0; i < b.N; i++ {
		res, err := c.Construct()
		if err != nil {
			b.Fatal(err)
		}
		crit = res.CriticalPath
	}
	b.ReportMetric(float64(crit.Microseconds())/1000.0, "critical-path-ms")
}

// BenchmarkShardedConstructFattree16 is the acceptance benchmark: the
// critical path with 4 shards must come in at least 2x below 1 shard.
// Fattree(16) decomposes into 8 equal components, so the capacity-capped
// assignment gives every shard exactly 8/N of the work.
func BenchmarkShardedConstructFattree16(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) { benchSharded(b, 16, n) })
	}
}

// BenchmarkShardedConstructFattree24 is the scale target from the ROADMAP
// (11.9M candidate paths, 12 components). Not part of the CI smoke; run
// explicitly with -bench ShardedConstructFattree24 -benchtime 1x.
func BenchmarkShardedConstructFattree24(b *testing.B) {
	for _, n := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) { benchSharded(b, 24, n) })
	}
}
