package shard

import (
	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
)

// ShardClient is the transport boundary of the sharded controller plane:
// everything the coordinator ever says to a shard, whether the shard is a
// goroutine in the same process or an HTTP service on another machine
// (internal/shardrpc). The coordinator holds only this interface — the
// merge guarantee (bit-identical output to the single-controller engines)
// is therefore a property of the protocol, not of shared memory.
//
// Implementations must be safe for concurrent use: the coordinator's
// heartbeat prober calls Ping while Construct or Localize is in flight.
type ShardClient interface {
	// ID is the shard's slot in the coordinator, 0..N-1.
	ID() int
	// Addr names the transport endpoint for operators ("in-process" for
	// local shards, the base URL for RPC shards).
	Addr() string
	// Ping checks liveness. The coordinator's watchdog heartbeats are
	// driven by this call: a nil return is one heartbeat, an error is a
	// lapse. It must be cheap and must not block behind Construct.
	Ping() error
	// Construct runs one PMC construction over the component slice in
	// req. The selection must be exactly what pmc.ConstructComponents
	// returns for the same slice on the same matrix — the coordinator
	// verifies intent via req.MatrixSig and merges by sorted union.
	Construct(req ConstructRequest) (*pmc.Result, error)
	// Localize runs one PLL pass over a routed sub-matrix and its
	// window of observations (link IDs stay in the global space, so the
	// verdicts need no translation). cycle is the caller's observability
	// cycle ID (0 when untraced); transport clients propagate it to the
	// shard service in the X-Detector-Cycle header so server-side spans
	// file under the caller's timeline.
	Localize(cycle uint64, sub *route.Probes, obs []pll.Observation, cfg pll.Config) (*pll.Result, error)
	// Close releases transport resources. The coordinator owns its
	// clients and closes them on Stop.
	Close() error
}

// ConstructRequest is the coordinator's work order for one shard in one
// construction cycle.
type ConstructRequest struct {
	// MatrixSig is route.MatrixSignature of the coordinator's candidate
	// matrix. A shard built over a different matrix must refuse the
	// request rather than return a plausible-but-wrong selection.
	MatrixSig uint64
	// NumLinks is the topology's link-ID space size.
	NumLinks int
	// Comps is the component slice assigned to the shard this cycle.
	Comps []route.Component
	// Opt configures the per-shard PMC run.
	Opt pmc.Options
	// Cycle is the coordinator's observability cycle ID (0 when
	// untraced). It travels to remote shards as the X-Detector-Cycle
	// header, never in the payload, so the wire schemas are untouched.
	Cycle uint64
}

// MatrixChecker is implemented by transport clients that can verify the
// shard's engine fingerprint during liveness probes. The coordinator pins
// its own (matrix signature, link count) on every such client at startup;
// from then on a Ping against a shard built for a different matrix — a
// mismatched radix or topology family — fails like a dead endpoint, so
// the misconfigured shard is declared dead instead of flapping through
// admit-dispatch-fail cycles while reporting healthy.
type MatrixChecker interface {
	ExpectMatrix(sig uint64, numLinks int)
}

// CodecReporter is implemented by transport clients that know which wire
// codec their requests travel in ("json", "binary" — negotiated at ping
// time by internal/shardrpc). The coordinator surfaces it per shard in
// Status, so a fleet stuck on the fallback codec after an upgrade is
// visible at GET /shards instead of only in payload-size graphs.
type CodecReporter interface{ Codec() string }

// CompressionReporter is implemented by transport clients that know which
// per-message compression their localize requests travel under ("gzip",
// "identity" — negotiated at ping time alongside the codec). Surfaced per
// shard in Status for the same reason as the codec: a fleet silently
// stuck uncompressed after an upgrade should be visible at GET /shards,
// not only in wire-byte graphs.
type CompressionReporter interface{ Compression() string }

// Killer is implemented by shard clients that can simulate a crash for
// tests and drills (the in-process shard). Remote shards die for real:
// kill the server process instead.
type Killer interface{ Kill() }

// Reviver is implemented by shard clients that can recover from Kill.
type Reviver interface{ Revive() }
