package shard

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/detector-net/detector/internal/metrics"
	"github.com/detector-net/detector/internal/obs"
	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

// stageLocalize times the plane's merged per-window localization (routing,
// per-shard PLL dispatch, verdict merge).
var stageLocalize = obs.Stages.With("localize")

// stageReconcile times the cut-link reconciliation pass of the verdict
// merge — zero-duration under the Exact policy, which has nothing to
// reconcile.
var stageReconcile = obs.Stages.With("reconcile")

// planeLocalFallbacks counts per-shard localizations that fell back to
// local execution after the shard's transport client failed mid-window.
// The merged verdict stays exact (same algorithm, same sub-matrix); the
// counter makes a flapping shard service visible.
var planeLocalFallbacks = metrics.NewCounter("shard_plane_local_fallbacks")

// planeCutLinks tracks how many links the most recently built plane cut
// across shards: 0 under the Exact policy (the partition is by connected
// component, nothing is split), and the measured accuracy-bound surface
// under the Approximate policy.
var planeCutLinks = obs.NewGauge("shard_plane_cut_links",
	"Links whose observed paths the diagnosis plane splits across shards (0 = exact partition).")

// planeCacheHits counts plane builds avoided because the served matrix's
// content signature (route.ProbesSignature) matched the cached partition.
var planeCacheHits = metrics.NewCounter("shard_plane_cache_hits")

// PartitionPolicy selects how the diagnosis plane derives path ownership.
type PartitionPolicy string

const (
	// PartitionExact partitions by connected components of the probe
	// matrix: the merge is bit-identical to one global PLL pass, but a
	// server-level matrix whose pinger uplinks entangle the ToR-level
	// components collapses to a single partition and runs unsharded.
	PartitionExact PartitionPolicy = "exact"
	// PartitionApprox partitions by interior links only
	// (route.ApproximatePartition), deliberately cutting server-edge
	// links so an entangled server-level matrix still spreads across
	// shards. Each cut link's hit ratio is computed per shard from that
	// shard's path subset and the merge runs a reconciliation pass; the
	// per-link replication counts (CutLinks) bound the accuracy loss.
	PartitionApprox PartitionPolicy = "approx"
)

// ParsePartitionPolicy maps a config string to a policy; empty means
// Exact (the historical behavior). Unknown strings error rather than
// silently running exact — a typo must not quietly disable sharding on
// the matrices this policy exists for.
func ParsePartitionPolicy(s string) (PartitionPolicy, error) {
	switch PartitionPolicy(s) {
	case "", PartitionExact:
		return PartitionExact, nil
	case PartitionApprox:
		return PartitionApprox, nil
	}
	return "", fmt.Errorf("shard: unknown partition policy %q (want %q or %q)",
		s, PartitionExact, PartitionApprox)
}

// PlaneStats summarizes a built plane for operators and tests.
type PlaneStats struct {
	Policy PartitionPolicy `json:"policy"`
	// Partitions is the number of shards owning at least one path — the
	// plane's effective parallelism this matrix.
	Partitions int `json:"partitions"`
	// Parts is the partition count before shard assignment (parts collapse
	// onto Partitions shards by capacity-capped rendezvous).
	Parts int `json:"parts"`
	// CutLinks counts links whose observed paths span more than one shard.
	CutLinks int `json:"cut_links"`
	// MaxReplication is the largest number of shards sharing one link's
	// evidence (1 = exact).
	MaxReplication int `json:"max_replication"`
}

// MergeStats reports what one merged localization had to reconcile.
type MergeStats struct {
	// Reconciled counts verdicts on the same link arriving from more than
	// one shard, merged by the reconciliation pass.
	Reconciled int
	// Disagreements is the per-cut-link disagreement count of the window:
	// for every cut link some shard flagged bad, the number of shards
	// sharing that link that did not flag it. 0 means every shard that
	// saw a cut link's evidence reached the same verdict.
	Disagreements int
}

// Plane is the diagnosis side of the sharded plane: a partition of a served
// probe matrix across shards, with probe-report routing by path ID and a
// cluster-wide verdict merge.
//
// Under the Exact policy the partition unit is a connected component of
// the probe matrix itself (links connected through shared probe paths):
// every observed path through a link lands on the link's owning shard,
// hence each shard's PLL sees exactly the global algorithm's per-link path
// counts, hit ratios and greedy cover for its links, and the merged result
// is bit-identical to one pll.Localize over the whole matrix. Server-level
// matrices entangle those components through shared pinger uplinks and
// collapse to one partition; the Approximate policy cuts exactly those
// server-edge links (route.ApproximatePartition), accepting split hit
// ratios on the cut links in exchange for spreading the matrix — the cut
// set and its replication counts are exported so the accuracy loss is a
// measured bound, not a hope.
type Plane struct {
	alive   []int
	policy  PartitionPolicy
	owner   []int32 // global path index -> owning shard id
	local   []int32 // global path index -> row in the owner's sub-matrix
	subs    map[int]*planeShard
	clients map[int]ShardClient // optional: dispatch localization over the transport

	parts   int                 // partition count before shard assignment
	cuts    []route.CutLink     // shard-level cut links, ascending
	cutRepl map[topo.LinkID]int // cut link -> shards sharing it
}

// planeShard is one shard's slice of the matrix: the sub-matrix over its
// paths (global link-ID space preserved, so verdicts need no translation).
type planeShard struct {
	probes *route.Probes
	global []int32 // local row -> global path index
}

// NewPlane partitions p across the alive shard ids (must be non-empty,
// ascending) under the Exact policy. Paths in the same matrix component
// share an owner; ownership uses the same rendezvous hash as construction,
// keyed by the component's smallest link ID, so a component whose links
// match a candidate component lands on the shard that built its rows.
func NewPlane(p *route.Probes, alive []int) *Plane {
	return NewPlaneWithPolicy(p, alive, PartitionExact)
}

// NewPlaneWithPolicy is NewPlane under an explicit partition policy.
func NewPlaneWithPolicy(p *route.Probes, alive []int, policy PartitionPolicy) *Plane {
	var keys []uint64
	var pathPart []int32
	if policy == PartitionApprox {
		pt := route.ApproximatePartition(p)
		keys, pathPart = pt.Keys, pt.PathPart
	} else {
		policy = PartitionExact
		keys, pathPart = exactPartition(p)
	}
	owners := assignBalanced(keys, alive)

	n := p.NumPaths()
	pl := &Plane{
		alive:  append([]int(nil), alive...),
		policy: policy,
		owner:  make([]int32, n),
		local:  make([]int32, n),
		subs:   make(map[int]*planeShard, len(alive)),
		parts:  len(keys),
	}
	for i := 0; i < n; i++ {
		if pathPart[i] < 0 {
			// A linkless path can explain nothing; treat it like an
			// unknown path id rather than crediting its observations to
			// some shard's row 0.
			pl.owner[i] = -1
			continue
		}
		pl.owner[i] = owners[pathPart[i]]
	}
	for _, id := range alive {
		var pathLinks [][]topo.LinkID
		var global []int32
		for i := 0; i < n; i++ {
			if pl.owner[i] != int32(id) {
				continue
			}
			pl.local[i] = int32(len(global))
			global = append(global, int32(i))
			pathLinks = append(pathLinks, p.PathLinks[i])
		}
		if len(global) == 0 {
			continue
		}
		sub := route.NewProbesFromLinks(pathLinks, p.NumLinks)
		for li, gi := range global {
			sub.Src[li], sub.Dst[li] = p.Src[gi], p.Dst[gi]
		}
		pl.subs[id] = &planeShard{probes: sub, global: global}
	}
	pl.findCuts(p)
	planeCutLinks.Set(int64(len(pl.cuts)))
	return pl
}

// exactPartition derives the historical component partition: union-find
// over all links of each path, components keyed by smallest member link.
func exactPartition(p *route.Probes) (keys []uint64, pathPart []int32) {
	n := p.NumPaths()
	parent := make([]int32, p.NumLinks)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < n; i++ {
		links := p.PathLinks[i]
		for _, l := range links[1:] {
			ra, rb := find(int32(links[0])), find(int32(l))
			if ra != rb {
				parent[rb] = ra
			}
		}
	}
	// The component key is its smallest member link: links ascend, so the
	// first link resolving to a root names the component, and the roots
	// come out in key order — the same deterministic order the coordinator
	// feeds to the balanced assignment.
	seen := make(map[int32]int32) // root -> component index
	for l := 0; l < p.NumLinks; l++ {
		if len(p.PathsThrough(topo.LinkID(l))) == 0 {
			continue
		}
		r := find(int32(l))
		if _, ok := seen[r]; !ok {
			seen[r] = int32(len(keys))
			keys = append(keys, uint64(l))
		}
	}
	pathPart = make([]int32, n)
	for i := 0; i < n; i++ {
		links := p.PathLinks[i]
		if len(links) == 0 {
			pathPart[i] = -1
			continue
		}
		pathPart[i] = seen[find(int32(links[0]))]
	}
	return keys, pathPart
}

// findCuts records the shard-level cut set: links whose observed paths
// span more than one owning shard. Under the Exact policy this is empty
// by construction; under Approximate, parts that rendezvous onto the same
// shard heal their shared links, so the shard-level cut set (what the
// merge actually reconciles) can be smaller than the partition's.
func (pl *Plane) findCuts(p *route.Probes) {
	pl.cutRepl = make(map[topo.LinkID]int)
	seen := make(map[int32]bool)
	for l := 0; l < p.NumLinks; l++ {
		rows := p.PathsThrough(topo.LinkID(l))
		if len(rows) == 0 {
			continue
		}
		for k := range seen {
			delete(seen, k)
		}
		for _, row := range rows {
			if o := pl.owner[row]; o >= 0 {
				seen[o] = true
			}
		}
		if len(seen) > 1 {
			pl.cutRepl[topo.LinkID(l)] = len(seen)
			pl.cuts = append(pl.cuts, route.CutLink{Link: topo.LinkID(l), Parts: len(seen)})
		}
	}
}

// UseClients attaches transport clients keyed by shard id: Localize then
// dispatches each shard's pass through its client instead of running it
// locally, falling back to local execution (same algorithm, same
// sub-matrix, hence the same verdicts) when a client fails mid-window.
// Returns pl for chaining.
func (pl *Plane) UseClients(clients map[int]ShardClient) *Plane {
	pl.clients = clients
	return pl
}

// Owner returns the shard owning probe path i, or -1 for out-of-range ids
// and linkless paths.
func (pl *Plane) Owner(i int) int {
	if i < 0 || i >= len(pl.owner) {
		return -1
	}
	return int(pl.owner[i])
}

// Policy returns the partition policy the plane was built under.
func (pl *Plane) Policy() PartitionPolicy { return pl.policy }

// CutLinks returns the shard-level cut set, ascending by link ID: every
// link whose observed paths span more than one shard, with the number of
// shards sharing it. Empty under the Exact policy.
func (pl *Plane) CutLinks() []route.CutLink {
	return append([]route.CutLink(nil), pl.cuts...)
}

// Stats summarizes the partition for GET /shards and tests.
func (pl *Plane) Stats() PlaneStats {
	st := PlaneStats{
		Policy:         pl.policy,
		Partitions:     len(pl.subs),
		Parts:          pl.parts,
		CutLinks:       len(pl.cuts),
		MaxReplication: 1,
	}
	for _, c := range pl.cuts {
		if c.Parts > st.MaxReplication {
			st.MaxReplication = c.Parts
		}
	}
	return st
}

// Shards returns the shard ids that own at least one path, ascending.
func (pl *Plane) Shards() []int {
	out := make([]int, 0, len(pl.subs))
	for _, id := range pl.alive {
		if _, ok := pl.subs[id]; ok {
			out = append(out, id)
		}
	}
	return out
}

// Route splits one window of observations by owning shard, translating
// path ids into each shard's local index space. Observations with unknown
// path ids are dropped, exactly as the global localizer's preprocessing
// drops them.
func (pl *Plane) Route(obs []pll.Observation) map[int][]pll.Observation {
	out := make(map[int][]pll.Observation, len(pl.subs))
	for _, o := range obs {
		if o.Path < 0 || o.Path >= len(pl.owner) || pl.owner[o.Path] < 0 {
			continue
		}
		id := int(pl.owner[o.Path])
		o.Path = int(pl.local[o.Path])
		out[id] = append(out[id], o)
	}
	return out
}

// localizeShard runs shard id's PLL pass: through the transport client
// when one is attached, locally otherwise — and locally as a fallback when
// the client fails, so one flapping shard service degrades a window to
// local compute instead of losing it.
func (pl *Plane) localizeShard(cycle uint64, id int, obs []pll.Observation, cfg pll.Config) (*pll.Result, error) {
	if cl := pl.clients[id]; cl != nil {
		if res, err := cl.Localize(cycle, pl.subs[id].probes, obs, cfg); err == nil {
			return res, nil
		}
		planeLocalFallbacks.Inc()
	}
	return pll.Localize(pl.subs[id].probes, obs, cfg)
}

// Localize routes the window to the owning shards, runs one PLL pass per
// shard concurrently, and merges the verdicts: bad links are the sorted
// union, and the lossy/unexplained counters sum.
func (pl *Plane) Localize(observations []pll.Observation, cfg pll.Config) (*pll.Result, error) {
	return pl.LocalizeCycle(nil, observations, cfg)
}

// LocalizeCycle is Localize under an observability cycle; see
// LocalizeCycleStats for the merge bookkeeping.
func (pl *Plane) LocalizeCycle(cy *obs.Cycle, observations []pll.Observation, cfg pll.Config) (*pll.Result, error) {
	res, _, err := pl.LocalizeCycleStats(cy, observations, cfg)
	return res, err
}

// LocalizeCycleStats runs one merged localization and reports what the
// merge reconciled. Each shard's PLL pass gets a shard-tagged span on cy,
// the merged pass feeds the "localize" stage histogram, and the cycle ID
// rides to remote shards in the X-Detector-Cycle header so their
// server-side spans file under the same timeline. A nil cy traces nothing
// and propagates cycle ID 0.
//
// The merge is a sorted union of bad links with a reconciliation pass for
// cut links: a link flagged by several shards keeps the maximum observed
// loss rate and the summed explained-loss count (each shard explained a
// disjoint path subset). A cut link flagged by some but not all of the
// shards sharing it counts into MergeStats.Disagreements — under the
// Exact policy both numbers are structurally zero.
func (pl *Plane) LocalizeCycleStats(cy *obs.Cycle, observations []pll.Observation, cfg pll.Config) (*pll.Result, MergeStats, error) {
	start := time.Now()
	defer func() { stageLocalize.Observe(time.Since(start)) }()
	routed := pl.Route(observations)
	ids := make([]int, 0, len(routed))
	for id := range routed {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	results := make([]*pll.Result, len(ids))
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for k, id := range ids {
		wg.Add(1)
		go func(k, id int) {
			defer wg.Done()
			sp := cy.ShardSpan("localize", id)
			results[k], errs[k] = pl.localizeShard(cy.ID(), id, routed[id], cfg)
			sp.EndErr(errs[k])
		}(k, id)
	}
	wg.Wait()
	var ms MergeStats
	for _, err := range errs {
		if err != nil {
			return nil, ms, err
		}
	}

	reconcileStart := time.Now()
	reconcileSpan := cy.Span("reconcile")
	merged := &pll.Result{}
	byLink := make(map[topo.LinkID]int)     // link -> index into merged.Bad
	reportedBy := make(map[topo.LinkID]int) // link -> shards that flagged it
	for _, r := range results {
		merged.LossyPaths += r.LossyPaths
		merged.UnexplainedPaths += r.UnexplainedPaths
		for _, v := range r.Bad {
			reportedBy[v.Link]++
			if j, ok := byLink[v.Link]; ok {
				// Reconciliation: the shards sharing a cut link each saw a
				// disjoint subset of its paths, so the explained counts
				// add; the loss rate is an estimate of one underlying
				// physical rate, so the largest (best-evidenced) wins.
				ms.Reconciled++
				merged.Bad[j].Explained += v.Explained
				if v.Rate > merged.Bad[j].Rate {
					merged.Bad[j].Rate = v.Rate
				}
				continue
			}
			byLink[v.Link] = len(merged.Bad)
			merged.Bad = append(merged.Bad, v)
		}
	}
	for link, n := range reportedBy {
		if repl := pl.cutRepl[link]; repl > n {
			ms.Disagreements += repl - n
		}
	}
	sort.Slice(merged.Bad, func(i, j int) bool { return merged.Bad[i].Link < merged.Bad[j].Link })
	reconcileSpan.End()
	stageReconcile.Observe(time.Since(reconcileStart))
	merged.Elapsed = time.Since(start)
	return merged, ms, nil
}

// PlaneCache memoizes the most recent plane by served-matrix content
// signature: the diagnoser re-fetches the matrix every window and gets a
// fresh allocation each time, so without the signature an unchanged matrix
// rebuilt the union-find partition and every sub-matrix once per window.
// The cache invalidates on any change to the matrix content, the alive
// shard set, or the policy.
type PlaneCache struct {
	mu     sync.Mutex
	sig    uint64
	alive  []int
	policy PartitionPolicy
	plane  *Plane
}

// Get returns the plane for (p, alive, policy), rebuilding only when the
// matrix content, shard set or policy changed since the last call.
// rebuilt reports whether a build happened — callers hook once-per-cycle
// work (codec renegotiation, client attachment) on it.
func (pc *PlaneCache) Get(p *route.Probes, alive []int, policy PartitionPolicy) (pl *Plane, rebuilt bool) {
	if policy == "" {
		policy = PartitionExact
	}
	sig := route.ProbesSignature(p)
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.plane != nil && pc.sig == sig && pc.policy == policy && equalInts(pc.alive, alive) {
		planeCacheHits.Inc()
		return pc.plane, false
	}
	pc.plane = NewPlaneWithPolicy(p, alive, policy)
	pc.sig = sig
	pc.alive = append(pc.alive[:0], alive...)
	pc.policy = policy
	return pc.plane, true
}

// Cached returns the memoized plane, or nil before the first Get. Status
// surfaces read it for the /shards view without forcing a build.
func (pc *PlaneCache) Cached() *Plane {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.plane
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
