package shard

import (
	"sort"
	"sync"
	"time"

	"github.com/detector-net/detector/internal/metrics"
	"github.com/detector-net/detector/internal/obs"
	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

// stageLocalize times the plane's merged per-window localization (routing,
// per-shard PLL dispatch, verdict merge).
var stageLocalize = obs.Stages.With("localize")

// planeLocalFallbacks counts per-shard localizations that fell back to
// local execution after the shard's transport client failed mid-window.
// The merged verdict stays exact (same algorithm, same sub-matrix); the
// counter makes a flapping shard service visible.
var planeLocalFallbacks = metrics.NewCounter("shard_plane_local_fallbacks")

// Plane is the diagnosis side of the sharded plane: a partition of a served
// probe matrix across shards, with probe-report routing by path ID and a
// cluster-wide verdict merge.
//
// The partition unit is a connected component of the probe matrix itself
// (links connected through shared probe paths), computed fresh from the
// matrix rather than inherited from the candidate decomposition — so the
// exactness argument needs nothing from construction: every observed path
// through a link lands on the link's owning shard, hence each shard's PLL
// sees exactly the global algorithm's per-link path counts, hit ratios and
// greedy cover for its links, and the merged result is bit-identical to
// one pll.Localize over the whole matrix. For ToR-level matrices the probe
// components coincide with the candidate components; server-level matrices
// may entangle components through shared pinger uplinks, in which case the
// plane degrades gracefully to fewer (still exact) partitions.
type Plane struct {
	alive   []int
	owner   []int32 // global path index -> owning shard id
	local   []int32 // global path index -> row in the owner's sub-matrix
	subs    map[int]*planeShard
	clients map[int]ShardClient // optional: dispatch localization over the transport
}

// planeShard is one shard's slice of the matrix: the sub-matrix over its
// paths (global link-ID space preserved, so verdicts need no translation).
type planeShard struct {
	probes *route.Probes
	global []int32 // local row -> global path index
}

// NewPlane partitions p across the alive shard ids (must be non-empty,
// ascending). Paths in the same matrix component share an owner; ownership
// uses the same rendezvous hash as construction, keyed by the component's
// smallest link ID, so a component whose links match a candidate component
// lands on the shard that built its rows.
func NewPlane(p *route.Probes, alive []int) *Plane {
	n := p.NumPaths()
	parent := make([]int32, p.NumLinks)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < n; i++ {
		links := p.PathLinks[i]
		for _, l := range links[1:] {
			ra, rb := find(int32(links[0])), find(int32(l))
			if ra != rb {
				parent[rb] = ra
			}
		}
	}
	// The component key is its smallest member link: links ascend, so the
	// first link resolving to a root names the component, and the roots
	// come out in key order — the same deterministic order the coordinator
	// feeds to the balanced assignment.
	seen := make(map[int32]int32) // root -> component index
	var keys []uint64
	var roots []int32
	for l := 0; l < p.NumLinks; l++ {
		if len(p.PathsThrough(topo.LinkID(l))) == 0 {
			continue
		}
		r := find(int32(l))
		if _, ok := seen[r]; !ok {
			seen[r] = int32(len(roots))
			roots = append(roots, r)
			keys = append(keys, uint64(l))
		}
	}
	owners := assignBalanced(keys, alive)

	pl := &Plane{
		alive: append([]int(nil), alive...),
		owner: make([]int32, n),
		local: make([]int32, n),
		subs:  make(map[int]*planeShard, len(alive)),
	}
	for i := 0; i < n; i++ {
		links := p.PathLinks[i]
		if len(links) == 0 {
			// A linkless path can explain nothing; treat it like an
			// unknown path id rather than crediting its observations to
			// some shard's row 0.
			pl.owner[i] = -1
			continue
		}
		pl.owner[i] = owners[seen[find(int32(links[0]))]]
	}
	for _, id := range alive {
		var pathLinks [][]topo.LinkID
		var global []int32
		for i := 0; i < n; i++ {
			if pl.owner[i] != int32(id) {
				continue
			}
			pl.local[i] = int32(len(global))
			global = append(global, int32(i))
			pathLinks = append(pathLinks, p.PathLinks[i])
		}
		if len(global) == 0 {
			continue
		}
		sub := route.NewProbesFromLinks(pathLinks, p.NumLinks)
		for li, gi := range global {
			sub.Src[li], sub.Dst[li] = p.Src[gi], p.Dst[gi]
		}
		pl.subs[id] = &planeShard{probes: sub, global: global}
	}
	return pl
}

// UseClients attaches transport clients keyed by shard id: Localize then
// dispatches each shard's pass through its client instead of running it
// locally, falling back to local execution (same algorithm, same
// sub-matrix, hence the same verdicts) when a client fails mid-window.
// Returns pl for chaining.
func (pl *Plane) UseClients(clients map[int]ShardClient) *Plane {
	pl.clients = clients
	return pl
}

// Owner returns the shard owning probe path i, or -1 for out-of-range ids
// and linkless paths.
func (pl *Plane) Owner(i int) int {
	if i < 0 || i >= len(pl.owner) {
		return -1
	}
	return int(pl.owner[i])
}

// Shards returns the shard ids that own at least one path, ascending.
func (pl *Plane) Shards() []int {
	out := make([]int, 0, len(pl.subs))
	for _, id := range pl.alive {
		if _, ok := pl.subs[id]; ok {
			out = append(out, id)
		}
	}
	return out
}

// Route splits one window of observations by owning shard, translating
// path ids into each shard's local index space. Observations with unknown
// path ids are dropped, exactly as the global localizer's preprocessing
// drops them.
func (pl *Plane) Route(obs []pll.Observation) map[int][]pll.Observation {
	out := make(map[int][]pll.Observation, len(pl.subs))
	for _, o := range obs {
		if o.Path < 0 || o.Path >= len(pl.owner) || pl.owner[o.Path] < 0 {
			continue
		}
		id := int(pl.owner[o.Path])
		o.Path = int(pl.local[o.Path])
		out[id] = append(out[id], o)
	}
	return out
}

// localizeShard runs shard id's PLL pass: through the transport client
// when one is attached, locally otherwise — and locally as a fallback when
// the client fails, so one flapping shard service degrades a window to
// local compute instead of losing it.
func (pl *Plane) localizeShard(cycle uint64, id int, obs []pll.Observation, cfg pll.Config) (*pll.Result, error) {
	if cl := pl.clients[id]; cl != nil {
		if res, err := cl.Localize(cycle, pl.subs[id].probes, obs, cfg); err == nil {
			return res, nil
		}
		planeLocalFallbacks.Inc()
	}
	return pll.Localize(pl.subs[id].probes, obs, cfg)
}

// Localize routes the window to the owning shards, runs one PLL pass per
// shard concurrently, and merges the verdicts: bad links are the sorted
// union (components are link-disjoint, so no verdict can collide), and the
// lossy/unexplained counters sum.
func (pl *Plane) Localize(observations []pll.Observation, cfg pll.Config) (*pll.Result, error) {
	return pl.LocalizeCycle(nil, observations, cfg)
}

// LocalizeCycle is Localize under an observability cycle: each shard's PLL
// pass gets a shard-tagged span on cy, the merged pass feeds the "localize"
// stage histogram, and the cycle ID rides to remote shards in the
// X-Detector-Cycle header so their server-side spans file under the same
// timeline. A nil cy traces nothing and propagates cycle ID 0.
func (pl *Plane) LocalizeCycle(cy *obs.Cycle, observations []pll.Observation, cfg pll.Config) (*pll.Result, error) {
	start := time.Now()
	defer func() { stageLocalize.Observe(time.Since(start)) }()
	routed := pl.Route(observations)
	ids := make([]int, 0, len(routed))
	for id := range routed {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	results := make([]*pll.Result, len(ids))
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for k, id := range ids {
		wg.Add(1)
		go func(k, id int) {
			defer wg.Done()
			sp := cy.ShardSpan("localize", id)
			results[k], errs[k] = pl.localizeShard(cy.ID(), id, routed[id], cfg)
			sp.EndErr(errs[k])
		}(k, id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	merged := &pll.Result{}
	byLink := make(map[topo.LinkID]int) // link -> index into merged.Bad
	for _, r := range results {
		merged.LossyPaths += r.LossyPaths
		merged.UnexplainedPaths += r.UnexplainedPaths
		for _, v := range r.Bad {
			if j, ok := byLink[v.Link]; ok {
				// Unreachable under the component partition; kept so a
				// future non-exact owner derivation degrades sanely.
				merged.Bad[j].Explained += v.Explained
				if v.Rate > merged.Bad[j].Rate {
					merged.Bad[j].Rate = v.Rate
				}
				continue
			}
			byLink[v.Link] = len(merged.Bad)
			merged.Bad = append(merged.Bad, v)
		}
	}
	sort.Slice(merged.Bad, func(i, j int) bool { return merged.Bad[i].Link < merged.Bad[j].Link })
	merged.Elapsed = time.Since(start)
	return merged, nil
}
