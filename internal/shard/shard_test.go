package shard

import (
	"hash/fnv"
	"math"
	"reflect"
	"testing"
	"time"

	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

// hashSelection digests a selection exactly as the pmc pin tests do, so the
// constants below are directly comparable with incremental_test.go.
func hashSelection(sel []int) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, s := range sel {
		for i := 0; i < 8; i++ {
			b[i] = byte(s >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}

// hashVerdicts digests a localization outcome: (link, explained, rate bits)
// per verdict plus the window counters.
func hashVerdicts(res *pll.Result) uint64 {
	h := fnv.New64a()
	w64 := func(v uint64) {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	for _, v := range res.Bad {
		w64(uint64(v.Link))
		w64(uint64(v.Explained))
		w64(math.Float64bits(v.Rate))
	}
	w64(uint64(res.LossyPaths))
	w64(uint64(res.UnexplainedPaths))
	return h.Sum64()
}

// syntheticWindow fabricates one deterministic measurement window over the
// probe matrix: every path through the first nBad covered links loses 20%
// of its probes (solid failures), plus sparse 0.5% background noise.
func syntheticWindow(p *route.Probes, nBad int) []pll.Observation {
	lossy := make([]bool, p.NumPaths())
	seen := 0
	for l := 0; l < p.NumLinks && seen < nBad; l++ {
		rows := p.PathsThrough(topo.LinkID(l))
		if len(rows) == 0 {
			continue
		}
		seen++
		for _, r := range rows {
			lossy[r] = true
		}
	}
	obs := make([]pll.Observation, p.NumPaths())
	for i := range obs {
		obs[i] = pll.Observation{Path: i, Sent: 200}
		switch {
		case lossy[i]:
			obs[i].Lost = 40
		case i%17 == 0:
			obs[i].Lost = 1
		}
	}
	return obs
}

func newTestCoordinator(t *testing.T, ps route.PathSet, numLinks int, n int, opt pmc.Options) *Coordinator {
	t.Helper()
	c, err := New(ps, numLinks, Options{Shards: n, PMC: opt, TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

// TestShardedMatchesSingleController is the subsystem's core guarantee,
// pinned two ways: the merged selection and merged localization must equal
// the single-controller engines exactly (structural comparison), and must
// match recorded fingerprints (regression pin — the selection hashes are
// the same constants pmc's incremental_test.go pins, since the sharded
// plane must reproduce that exact output).
func TestShardedMatchesSingleController(t *testing.T) {
	f8 := topo.MustFattree(8)
	b41 := topo.MustBCube(4, 1)
	cases := []struct {
		name      string
		ps        route.PathSet
		numLinks  int
		opt       pmc.Options
		wantSel   uint64
		wantLocal uint64
	}{
		{
			"Fattree8/lazy", route.NewFattreePaths(f8), f8.NumLinks(),
			pmc.Options{Alpha: 2, Beta: 1, Lazy: true},
			0x527da8262b65b8c5, 0x401e57d28d149cb0,
		},
		{
			"Fattree8/symmetry", route.NewFattreePaths(f8), f8.NumLinks(),
			pmc.Options{Alpha: 2, Beta: 1, Lazy: true, Symmetry: true},
			0x9ec67bc163cdc6e5, 0x34c504045541deea,
		},
		{
			"BCube41/lazy", route.NewBCubePaths(b41), b41.NumLinks(),
			pmc.Options{Alpha: 2, Beta: 1, Lazy: true},
			0xedc0ad7cc1cc073b, 0xf863861539a440a4,
		},
	}
	for _, tc := range cases {
		single := tc.opt
		single.Decompose = true
		ref, err := pmc.Construct(tc.ps, tc.numLinks, single)
		if err != nil {
			t.Fatalf("%s: single-controller construct: %v", tc.name, err)
		}
		if h := hashSelection(ref.Selected); h != tc.wantSel {
			t.Fatalf("%s: single-controller hash %#016x, pinned %#016x", tc.name, h, tc.wantSel)
		}
		probes := route.NewProbes(tc.ps, ref.Selected, tc.numLinks)
		obs := syntheticWindow(probes, 3)
		refLoc, err := pll.Localize(probes, obs, pll.DefaultConfig())
		if err != nil {
			t.Fatalf("%s: single-controller localize: %v", tc.name, err)
		}
		if len(refLoc.Bad) == 0 {
			t.Fatalf("%s: synthetic window localized nothing; test is vacuous", tc.name)
		}
		if h := hashVerdicts(refLoc); h != tc.wantLocal {
			t.Fatalf("%s: single-controller localization hash %#016x, pinned %#016x", tc.name, h, tc.wantLocal)
		}

		for _, n := range []int{2, 3, 4} {
			c := newTestCoordinator(t, tc.ps, tc.numLinks, n, tc.opt)
			res, err := c.Construct()
			if err != nil {
				t.Fatalf("%s/shards=%d: %v", tc.name, n, err)
			}
			if !reflect.DeepEqual(res.Selected, ref.Selected) {
				t.Errorf("%s/shards=%d: merged selection differs from single controller (%d vs %d paths, hash %#016x vs %#016x)",
					tc.name, n, len(res.Selected), len(ref.Selected),
					hashSelection(res.Selected), hashSelection(ref.Selected))
			}
			if res.Stats.ScoreEvals != ref.Stats.ScoreEvals || res.Stats.Components != ref.Stats.Components {
				t.Errorf("%s/shards=%d: merged stats diverge: evals %d vs %d, components %d vs %d",
					tc.name, n, res.Stats.ScoreEvals, ref.Stats.ScoreEvals,
					res.Stats.Components, ref.Stats.Components)
			}
			if !res.Stats.CoverageMet || !res.Stats.IdentMet {
				t.Errorf("%s/shards=%d: merged targets not met: coverage=%v ident=%v",
					tc.name, n, res.Stats.CoverageMet, res.Stats.IdentMet)
			}

			plane := c.BuildPlane(probes)
			got, err := plane.Localize(obs, pll.DefaultConfig())
			if err != nil {
				t.Fatalf("%s/shards=%d: plane localize: %v", tc.name, n, err)
			}
			if !reflect.DeepEqual(got.Bad, refLoc.Bad) ||
				got.LossyPaths != refLoc.LossyPaths ||
				got.UnexplainedPaths != refLoc.UnexplainedPaths {
				t.Errorf("%s/shards=%d: merged localization differs: hash %#016x vs %#016x",
					tc.name, n, hashVerdicts(got), hashVerdicts(refLoc))
			}
		}
	}
}

// TestPlaneRoutesEveryPathToItsComponentOwner checks the routing invariant
// the exactness argument rests on: all paths sharing a link share an owner,
// and out-of-range path ids are dropped.
func TestPlaneRoutesEveryPathToItsComponentOwner(t *testing.T) {
	f := topo.MustFattree(8)
	ps := route.NewFattreePaths(f)
	res, err := pmc.Construct(ps, f.NumLinks(), pmc.Options{Alpha: 2, Beta: 1, Decompose: true, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	probes := route.NewProbes(ps, res.Selected, f.NumLinks())
	plane := NewPlane(probes, []int{0, 1, 2})
	for l := 0; l < probes.NumLinks; l++ {
		rows := probes.PathsThrough(topo.LinkID(l))
		if len(rows) == 0 {
			continue
		}
		for _, r := range rows[1:] {
			if plane.Owner(int(rows[0])) != plane.Owner(int(r)) {
				t.Fatalf("link %d split across shards %d and %d", l,
					plane.Owner(int(rows[0])), plane.Owner(int(r)))
			}
		}
	}
	if got := plane.Owner(-1); got != -1 {
		t.Fatalf("Owner(-1) = %d, want -1", got)
	}
	routed := plane.Route([]pll.Observation{{Path: probes.NumPaths() + 5, Sent: 10}})
	if len(routed) != 0 {
		t.Fatalf("out-of-range observation was routed: %v", routed)
	}
	if len(plane.Shards()) < 2 {
		t.Fatalf("Fattree(8) matrix (4 components) should spread over >= 2 of 3 shards, got %v", plane.Shards())
	}
}

// TestShardDeathReassignsMinimally kills one shard and checks the watchdog
// → reassignment path: after the TTL expires the dead shard owns nothing,
// the next cycle's merged selection is still identical to the single
// controller, and the movement is minimal. (Capacity-capped rendezvous can
// in general also displace survivors when the cap changes; in this pinned
// instance — Fattree(8), 4 components, 3→2 shards — it does not, and the
// test locks that in.)
func TestShardDeathReassignsMinimally(t *testing.T) {
	f := topo.MustFattree(8)
	ps := route.NewFattreePaths(f)
	opt := pmc.Options{Alpha: 2, Beta: 1, Lazy: true}
	c, err := New(ps, f.NumLinks(), Options{
		Shards: 3, PMC: opt,
		TTL: 150 * time.Millisecond, HeartbeatEvery: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	before := c.Assignment()
	if c.Components() != 4 {
		t.Fatalf("Fattree(8) should decompose into 4 components, got %d", c.Components())
	}
	victim := int(before[0])
	victimComps := 0
	for _, s := range before {
		if int(s) == victim {
			victimComps++
		}
	}

	c.Kill(victim)
	deadline := time.Now().Add(10 * time.Second)
	for {
		u := c.Unhealthy()
		if len(u) == 1 && u[0] == victim {
			break
		}
		if len(u) > 1 {
			t.Fatalf("live shards marked unhealthy: %v", u)
		}
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never noticed shard %d dying", victim)
		}
		time.Sleep(10 * time.Millisecond)
	}

	res, err := c.Construct()
	if err != nil {
		t.Fatal(err)
	}
	if res.Moved != victimComps {
		t.Errorf("reassignment moved %d components, want exactly the victim's %d", res.Moved, victimComps)
	}
	if res.Alive != 2 {
		t.Errorf("alive = %d, want 2", res.Alive)
	}
	after := c.Assignment()
	for ci := range after {
		if int(after[ci]) == victim {
			t.Errorf("component %d still assigned to dead shard %d", ci, victim)
		}
		if int(before[ci]) != victim && after[ci] != before[ci] {
			t.Errorf("component %d moved from live shard %d to %d — rendezvous should not move survivors",
				ci, before[ci], after[ci])
		}
	}

	single := opt
	single.Decompose = true
	ref, err := pmc.Construct(ps, f.NumLinks(), single)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Selected, ref.Selected) {
		t.Errorf("post-failover selection differs from single controller")
	}
	if !res.Stats.CoverageMet {
		t.Errorf("post-failover coverage not met")
	}
}

// TestAllShardsDead pins the degraded-mode error.
func TestAllShardsDead(t *testing.T) {
	f := topo.MustFattree(4)
	ps := route.NewFattreePaths(f)
	c, err := New(ps, f.NumLinks(), Options{
		Shards: 2, PMC: pmc.Options{Alpha: 1, Beta: 1, Lazy: true},
		TTL: 50 * time.Millisecond, HeartbeatEvery: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.Kill(0)
	c.Kill(1)
	deadline := time.Now().Add(10 * time.Second)
	for len(c.Unhealthy()) != 2 {
		if time.Now().After(deadline) {
			t.Fatal("shards never went unhealthy")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := c.Construct(); err == nil {
		t.Fatal("Construct with every shard dead should fail")
	}
}

// TestMidCycleKillDegradesToReassignment kills a shard after the liveness
// grant but before dispatch — the watchdog has no idea — and requires the
// same cycle to finish complete and bit-identical by quarantining the dead
// shard on its dispatch error. Revive then lifts the quarantine and the
// shard reclaims its components.
func TestMidCycleKillDegradesToReassignment(t *testing.T) {
	f := topo.MustFattree(8)
	ps := route.NewFattreePaths(f)
	opt := pmc.Options{Alpha: 2, Beta: 1, Lazy: true}
	single := opt
	single.Decompose = true
	ref, err := pmc.Construct(ps, f.NumLinks(), single)
	if err != nil {
		t.Fatal(err)
	}

	c := newTestCoordinator(t, ps, f.NumLinks(), 3, opt)
	before := c.Assignment()
	victim := int(before[0])
	c.Kill(victim) // TTL is a minute: only the dispatch can notice

	res, err := c.Construct()
	if err != nil {
		t.Fatalf("construct across mid-cycle kill: %v", err)
	}
	if res.Retries < 1 || res.Alive != 2 {
		t.Errorf("kill cycle: retries=%d alive=%d, want >=1 and 2", res.Retries, res.Alive)
	}
	if !reflect.DeepEqual(res.Selected, ref.Selected) {
		t.Errorf("post-kill merge differs from single controller — partial merge served")
	}
	for ci, s := range c.Assignment() {
		if int(s) == victim {
			t.Errorf("component %d still assigned to killed shard %d", ci, victim)
		}
	}

	c.Revive(victim)
	res, err = c.Construct()
	if err != nil {
		t.Fatalf("construct after revive: %v", err)
	}
	if res.Alive != 3 || res.Retries != 0 {
		t.Errorf("revived cycle: alive=%d retries=%d, want 3 and 0", res.Alive, res.Retries)
	}
	if !reflect.DeepEqual(c.Assignment(), before) {
		t.Errorf("post-revive assignment differs from original — shard did not reclaim its components")
	}
	if !reflect.DeepEqual(res.Selected, ref.Selected) {
		t.Errorf("post-revive merge differs from single controller")
	}
}
