// Package shard implements deTector's sharded controller plane: the probe
// matrix decomposes into independent path components (paper §4.3,
// Observation 1), so construction and diagnosis distribute naturally — a
// thin coordinator assigns components to N controller shards by rendezvous
// hashing, each shard runs one PMC construction and one PLL diagnoser over
// its component slice, and the coordinator merges per-shard selections and
// localization verdicts into one cluster-wide result.
//
// The merge carries a hard guarantee, pinned by test: for any shard count
// and any assignment, the merged selection and the merged localization are
// bit-identical to the single-controller engine. This holds because
// components are independent subproblems (no candidate path and no probe
// path crosses two components), PMC solves each component in isolation and
// sorts the merged selection, and PLL's hit ratios and greedy cover only
// ever read paths within one component.
//
// Shard liveness runs through a dedicated watchdog: every shard heartbeats
// it, and when a shard's heartbeats stop for the TTL the coordinator
// reassigns its components to the surviving shards at the next recompute
// cycle. Rendezvous hashing keys on route.Component.Key (the component's
// smallest link ID, stable across recomputes), so a death moves exactly
// the dead shard's components and nothing else.
package shard

import (
	"sync"
	"time"

	"github.com/detector-net/detector/internal/topo"
	"github.com/detector-net/detector/internal/watchdog"
)

// Shard is one emulated controller process: an identity plus the heartbeat
// loop that keeps it alive in the coordinator's watchdog. Construction and
// diagnosis work is dispatched to it by the coordinator; killing a shard
// stops only its heartbeats — death is observed through TTL expiry, the
// same way a real controller crash would be.
type Shard struct {
	// ID is the shard's slot in the coordinator, 0..N-1.
	ID int

	wd    *watchdog.Service
	every time.Duration
	stop  chan struct{}
	once  sync.Once
	done  sync.WaitGroup
}

// startShard registers the shard with the watchdog and starts its
// heartbeat loop.
func startShard(id int, wd *watchdog.Service, every time.Duration) *Shard {
	s := &Shard{ID: id, wd: wd, every: every, stop: make(chan struct{})}
	wd.Track(topo.NodeID(id))
	wd.Heartbeat(topo.NodeID(id))
	s.done.Add(1)
	go s.run()
	return s
}

func (s *Shard) run() {
	defer s.done.Done()
	tick := time.NewTicker(s.every)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.wd.Heartbeat(topo.NodeID(s.ID))
		}
	}
}

// Kill stops the shard's heartbeats. The coordinator notices once the
// watchdog TTL expires and reassigns the shard's components. Idempotent.
func (s *Shard) Kill() {
	s.once.Do(func() { close(s.stop) })
	s.done.Wait()
}
