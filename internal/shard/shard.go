// Package shard implements deTector's sharded controller plane: the probe
// matrix decomposes into independent path components (paper §4.3,
// Observation 1), so construction and diagnosis distribute naturally — a
// thin coordinator assigns components to N controller shards by rendezvous
// hashing, each shard runs one PMC construction and one PLL diagnoser over
// its component slice, and the coordinator merges per-shard selections and
// localization verdicts into one cluster-wide result.
//
// The coordinator talks to shards only through the ShardClient transport
// interface. Two implementations exist: the in-process Shard below (a
// direct call into the local engines) and internal/shardrpc's HTTP/JSON
// client, which drives a shard running as a standalone service on another
// machine. The coordinator cannot tell them apart — liveness, dispatch and
// failover all run through the same interface.
//
// The merge carries a hard guarantee, pinned by test: for any shard count,
// any assignment and either transport, the merged selection and the merged
// localization are bit-identical to the single-controller engine. This
// holds because components are independent subproblems (no candidate path
// and no probe path crosses two components), PMC solves each component in
// isolation and sorts the merged selection, and PLL's hit ratios and
// greedy cover only ever read paths within one component.
//
// The guarantee is scoped to construction and to the diagnosis plane's
// Exact partition policy. Server-level probe matrices entangle every
// component through shared pinger uplinks, collapsing the exact partition
// to one shard; for those, Plane's Approximate policy
// (PartitionApprox) deliberately cuts the server-edge links and merges
// with a reconciliation pass — verdicts stay empirically equivalent
// (differential-tested bound) rather than bit-identical, and the cut-link
// replication counts quantify exactly what was traded.
//
// Shard liveness runs through a dedicated watchdog fed by transport pings:
// the coordinator probes every shard each heartbeat period, and when a
// shard's pings fail for the TTL the coordinator reassigns its components
// to the surviving shards at the next recompute cycle. A shard that still
// answers pings but fails a dispatched construction is quarantined and its
// components re-dispatched within the same cycle — the coordinator never
// serves a partial merge. Rendezvous hashing keys on route.Component.Key
// (the component's smallest link ID, stable across recomputes), so a death
// moves exactly the dead shard's components and nothing else.
package shard

import (
	"fmt"
	"sync"

	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
)

// Shard is the in-process ShardClient: one emulated controller process
// holding its own handle on the candidate matrix. Construction and
// diagnosis run as direct calls into the local engines; Kill simulates a
// crash (pings and dispatches fail until Revive), which the coordinator
// observes through ping failures exactly as it would a remote shard's
// dead TCP endpoint.
type Shard struct {
	id       int
	ps       route.PathSet
	csr      *route.CSR
	numLinks int
	sig      uint64
	// memo is the engine-local PMC warm-start cache: components whose
	// exact content was constructed before (topology flap-back, component
	// reassignment) reuse the cached selection verbatim. Selections are
	// deterministic per content, so the memo never changes an answer.
	memo *pmc.Memo

	mu     sync.Mutex
	killed bool
}

// NewInProcess builds a standalone in-process shard over its own
// materialization of ps. The coordinator shares one materialization across
// its shards instead (newInProcess); this entry point is for tests and
// embedders that assemble a mixed client set by hand.
func NewInProcess(id int, ps route.PathSet, numLinks int) *Shard {
	csr := route.MaterializeCSR(ps)
	return newInProcess(id, ps, csr, numLinks, route.MatrixSignature(csr, numLinks))
}

func newInProcess(id int, ps route.PathSet, csr *route.CSR, numLinks int, sig uint64) *Shard {
	return &Shard{id: id, ps: ps, csr: csr, numLinks: numLinks, sig: sig, memo: pmc.NewMemo(0)}
}

// ID returns the shard's coordinator slot.
func (s *Shard) ID() int { return s.id }

// Addr names the transport: in-process shards have no endpoint.
func (s *Shard) Addr() string { return "in-process" }

// Ping reports liveness; a killed shard fails like a closed socket.
func (s *Shard) Ping() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.killed {
		return fmt.Errorf("shard %d: killed", s.id)
	}
	return nil
}

// Construct runs PMC over the assigned component slice.
func (s *Shard) Construct(req ConstructRequest) (*pmc.Result, error) {
	if err := s.Ping(); err != nil {
		return nil, err
	}
	if req.MatrixSig != s.sig {
		return nil, fmt.Errorf("shard %d: matrix signature %#016x does not match engine %#016x",
			s.id, req.MatrixSig, s.sig)
	}
	if req.NumLinks != s.numLinks {
		return nil, fmt.Errorf("shard %d: numLinks %d does not match engine %d",
			s.id, req.NumLinks, s.numLinks)
	}
	return pmc.ConstructComponentsWarm(s.ps, s.csr, req.Comps, s.numLinks, req.Opt, s.memo)
}

// MemoStats exposes the shard's warm-start cache counters.
func (s *Shard) MemoStats() pmc.MemoStats { return s.memo.Stats() }

// Localize runs PLL over a routed sub-matrix. The cycle ID is unused
// in-process: the caller's own span already covers this call.
func (s *Shard) Localize(_ uint64, sub *route.Probes, obs []pll.Observation, cfg pll.Config) (*pll.Result, error) {
	if err := s.Ping(); err != nil {
		return nil, err
	}
	return pll.Localize(sub, obs, cfg)
}

// Kill simulates a crash: every subsequent Ping, Construct and Localize
// fails until Revive. The coordinator notices once the watchdog TTL
// expires (or immediately, if a dispatch hits the dead shard first) and
// reassigns the shard's components. Idempotent.
func (s *Shard) Kill() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.killed = true
}

// Revive recovers a killed shard, modeling a restarted controller process
// rejoining the plane.
func (s *Shard) Revive() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.killed = false
}

// Close permanently stops the shard (teardown); same observable effect as
// Kill.
func (s *Shard) Close() error {
	s.Kill()
	return nil
}
