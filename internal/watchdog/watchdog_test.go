package watchdog

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestUnhealthyAfterTTL(t *testing.T) {
	now := time.Now()
	clock := &now
	s := New(time.Second)
	s.SetClock(func() time.Time { return *clock })

	s.Track(1)
	s.Track(2)
	s.Heartbeat(1)
	if got := s.Unhealthy(); len(got) != 0 {
		t.Fatalf("fresh servers unhealthy: %v", got)
	}
	later := now.Add(2 * time.Second)
	clock = &later
	unhealthy := s.UnhealthySet()
	if !unhealthy[1] || !unhealthy[2] {
		t.Fatalf("stale servers not flagged: %v", unhealthy)
	}
	// A heartbeat revives node 1.
	s.Heartbeat(1)
	unhealthy = s.UnhealthySet()
	if unhealthy[1] || !unhealthy[2] {
		t.Fatalf("revival wrong: %v", unhealthy)
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	s := New(time.Minute)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := srv.Client()

	if err := SendHeartbeat(client, srv.URL, 42); err != nil {
		t.Fatal(err)
	}
	s.Track(43) // tracked but never heartbeating... fresh until TTL
	unhealthy, err := FetchUnhealthy(client, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if unhealthy[42] {
		t.Fatal("heartbeating node flagged unhealthy")
	}

	// Bad requests are rejected.
	resp, err := client.Post(srv.URL+"/heartbeat?node=abc", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad node id accepted: %s", resp.Status)
	}
	resp, err = client.Get(srv.URL + "/heartbeat?node=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET heartbeat accepted: %s", resp.Status)
	}
}
