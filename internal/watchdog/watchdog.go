// Package watchdog is the server-health service of deTector's control
// plane (paper §5.1, §6.1): agents heartbeat it, and the diagnoser asks it
// which servers are unhealthy so their loss reports can be discarded as
// outliers (a rebooting pinger looks exactly like a black-holed rack).
package watchdog

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/detector-net/detector/internal/obs"
	"github.com/detector-net/detector/internal/topo"
)

// Service tracks heartbeats with a liveness TTL.
type Service struct {
	ttl   time.Duration
	clock func() time.Time

	mu    sync.Mutex
	known map[topo.NodeID]bool
	last  map[topo.NodeID]time.Time
}

// New creates a watchdog; servers missing a heartbeat for ttl are unhealthy.
func New(ttl time.Duration) *Service {
	return &Service{
		ttl:   ttl,
		clock: time.Now,
		known: make(map[topo.NodeID]bool),
		last:  make(map[topo.NodeID]time.Time),
	}
}

// SetClock overrides time for tests.
func (s *Service) SetClock(clock func() time.Time) { s.clock = clock }

// Track registers a server the watchdog expects heartbeats from.
func (s *Service) Track(n topo.NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.known[n] = true
	if _, ok := s.last[n]; !ok {
		s.last[n] = s.clock()
	}
}

// Heartbeat records liveness of a server.
func (s *Service) Heartbeat(n topo.NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.known[n] = true
	s.last[n] = s.clock()
}

// Unhealthy lists tracked servers whose last heartbeat is older than TTL.
func (s *Service) Unhealthy() []topo.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock()
	var out []topo.NodeID
	for n := range s.known {
		if now.Sub(s.last[n]) > s.ttl {
			out = append(out, n)
		}
	}
	return out
}

// UnhealthySet returns the unhealthy servers as a set for pll.Config.
func (s *Service) UnhealthySet() map[topo.NodeID]bool {
	out := make(map[topo.NodeID]bool)
	for _, n := range s.Unhealthy() {
		out[n] = true
	}
	return out
}

// Handler serves POST /heartbeat?node=ID and GET /health, plus the
// standard observability surface (GET /healthz, GET /metrics).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		id, err := strconv.Atoi(r.URL.Query().Get("node"))
		if err != nil {
			http.Error(w, "bad node id", http.StatusBadRequest)
			return
		}
		s.Heartbeat(topo.NodeID(id))
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/health", func(w http.ResponseWriter, r *http.Request) {
		resp := struct {
			Unhealthy []topo.NodeID `json:"unhealthy"`
		}{Unhealthy: s.Unhealthy()}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", obs.HealthzHandler(func() obs.Health {
		h := obs.Health{Status: "ok", Service: "watchdog"}
		if un := s.Unhealthy(); len(un) > 0 {
			h.Status = "degraded"
			h.Detail = fmt.Sprintf("%d tracked servers past TTL", len(un))
		}
		return h
	}))
	mux.HandleFunc("/metrics", obs.MetricsHandler())
	return mux
}

// SendHeartbeat posts one heartbeat to a watchdog URL on behalf of node n.
func SendHeartbeat(client *http.Client, baseURL string, n topo.NodeID) error {
	resp, err := client.Post(fmt.Sprintf("%s/heartbeat?node=%d", baseURL, n), "text/plain", nil)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("watchdog: heartbeat status %s", resp.Status)
	}
	return nil
}

// FetchUnhealthy retrieves the unhealthy set from a watchdog URL.
func FetchUnhealthy(client *http.Client, baseURL string) (map[topo.NodeID]bool, error) {
	resp, err := client.Get(baseURL + "/health")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var body struct {
		Unhealthy []topo.NodeID `json:"unhealthy"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	out := make(map[topo.NodeID]bool, len(body.Unhealthy))
	for _, n := range body.Unhealthy {
		out[n] = true
	}
	return out, nil
}
