package metrics

import "testing"

// TestPercentileNearestRank pins the nearest-rank definition: the p-th
// percentile of N samples is the sample at rank ⌈p/100·N⌉. The old
// truncating index made p99 of 100 samples return the 98th-rank sample.
func TestPercentileNearestRank(t *testing.T) {
	series := func(n int) *Series {
		s := &Series{}
		// Insert out of order; Percentile sorts. Sample values 1..n so the
		// value at rank r is exactly r.
		for i := n; i >= 1; i-- {
			s.Add(float64(i))
		}
		return s
	}

	cases := []struct {
		name string
		n    int
		p    float64
		want float64
	}{
		{"p99 of 100 is rank 99", 100, 99, 99},
		{"p100 of 100 is the max", 100, 100, 100},
		{"p50 of 100 is rank 50", 100, 50, 50},
		{"p50 of 4 is rank 2", 4, 50, 2},
		{"p25 of 4 is rank 1", 4, 25, 1},
		{"p26 of 4 rounds up to rank 2", 4, 26, 2},
		{"p0 clamps to the min", 10, 0, 1},
		{"p90 of 10 is rank 9", 10, 90, 9},
		{"p95 of 10 rounds up to the max", 10, 95, 10},
		{"p50 of 1 is the only sample", 1, 50, 1},
		{"p99.9 of 1000 is rank 999", 1000, 99.9, 999},
		{"p99.99 of 1000 rounds up to the max", 1000, 99.99, 1000},
	}
	for _, tc := range cases {
		if got := series(tc.n).Percentile(tc.p); got != tc.want {
			t.Errorf("%s: Percentile(%v) over N=%d = %v, want %v",
				tc.name, tc.p, tc.n, got, tc.want)
		}
	}

	empty := &Series{}
	if got := empty.Percentile(50); got != 0 {
		t.Errorf("empty series percentile = %v, want 0", got)
	}
}
