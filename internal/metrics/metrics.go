// Package metrics implements the evaluation bookkeeping of the paper §5.3:
// accuracy (true-positive ratio), false-positive ratio and false-negative
// ratio over link sets, plus aggregation across trials.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"github.com/detector-net/detector/internal/topo"
)

// Confusion compares a predicted bad-link set with ground truth.
type Confusion struct {
	TP, FP, FN int
}

// Compare builds a Confusion from predicted and true link sets.
func Compare(predicted, truth []topo.LinkID) Confusion {
	t := make(map[topo.LinkID]bool, len(truth))
	for _, l := range truth {
		t[l] = true
	}
	var c Confusion
	seen := make(map[topo.LinkID]bool, len(predicted))
	for _, l := range predicted {
		if seen[l] {
			continue
		}
		seen[l] = true
		if t[l] {
			c.TP++
		} else {
			c.FP++
		}
	}
	c.FN = len(t) - c.TP
	return c
}

// Accuracy is the paper's definition: bad links correctly identified over
// all truly bad links (true-positive ratio). 1 when there is nothing to
// find and nothing was found.
func (c Confusion) Accuracy() float64 {
	if c.TP+c.FN == 0 {
		if c.FP == 0 {
			return 1
		}
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FalsePositiveRatio is good links incorrectly identified as bad over all
// identified links (paper §5.3). 0 when nothing was identified.
func (c Confusion) FalsePositiveRatio() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.TP+c.FP)
}

// FalseNegativeRatio is bad links missed over all truly bad links.
func (c Confusion) FalseNegativeRatio() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.FN) / float64(c.TP+c.FN)
}

// Add accumulates another confusion (for multi-trial averaging by pooling).
func (c *Confusion) Add(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.FN += o.FN
}

// String formats the three ratios.
func (c Confusion) String() string {
	return fmt.Sprintf("acc=%.2f%% fp=%.2f%% fn=%.2f%%",
		100*c.Accuracy(), 100*c.FalsePositiveRatio(), 100*c.FalseNegativeRatio())
}

// Series accumulates scalar samples and reports summary statistics.
type Series struct {
	vals []float64
}

// Add appends a sample.
func (s *Series) Add(v float64) { s.vals = append(s.vals, v) }

// N returns the sample count.
func (s *Series) N() int { return len(s.vals) }

// Mean returns the arithmetic mean (0 for empty series).
func (s *Series) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Percentile returns the p-th percentile (0 <= p <= 100) by nearest-rank:
// the smallest sample with at least p% of the samples at or below it, i.e.
// rank ⌈p/100·N⌉. (Truncating the rank index downward — the old bug —
// returned the 98th-rank sample for p99 of 100 samples.)
func (s *Series) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.vals...)
	sort.Float64s(sorted)
	// The epsilon absorbs float error in p/100*N: 99.9/100*1000 computes as
	// 999.0000000000001, and a bare Ceil would overshoot to rank 1000.
	rank := int(math.Ceil(p/100*float64(len(sorted)) - 1e-9))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Std returns the population standard deviation.
func (s *Series) Std() float64 {
	if len(s.vals) < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, v := range s.vals {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(s.vals)))
}
