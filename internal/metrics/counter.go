package metrics

import (
	"sync"
	"sync/atomic"
)

// Counter is a named, monotonically increasing operational counter. Unlike
// the evaluation types in this package (Confusion, Series), counters track
// live-service events — malformed report payloads, rejected requests — and
// are cheap enough for request paths: one atomic add.
type Counter struct {
	v atomic.Int64
}

var (
	countersMu sync.Mutex
	counters   = make(map[string]*Counter)
)

// NewCounter returns the counter registered under name, creating it on
// first use. Safe for concurrent use; the same name always yields the same
// counter, so package-level declarations across packages cannot collide.
func NewCounter(name string) *Counter {
	countersMu.Lock()
	defer countersMu.Unlock()
	if c, ok := counters[name]; ok {
		return c
	}
	c := &Counter{}
	counters[name] = c
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (byte counts and other bulk increments; the RPC transport
// uses it for per-shard bytes in/out).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counters snapshots every registered counter. The diagnoser and
// controller serve this over GET /metrics.
func Counters() map[string]int64 {
	countersMu.Lock()
	defer countersMu.Unlock()
	out := make(map[string]int64, len(counters))
	for name, c := range counters {
		out[name] = c.Value()
	}
	return out
}
