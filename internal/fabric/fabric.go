package fabric

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"github.com/detector-net/detector/internal/topo"
	"github.com/detector-net/detector/internal/wire"
)

// Registry maps node IDs to UDP addresses. Switches self-register when the
// fabric boots; server agents (pingers, responders) register their sockets
// when they start — the emulation analog of the data-center management
// service's address directory.
type Registry struct {
	mu   sync.RWMutex
	addr map[topo.NodeID]*net.UDPAddr
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{addr: make(map[topo.NodeID]*net.UDPAddr)}
}

// Register binds a node ID to a UDP address.
func (r *Registry) Register(n topo.NodeID, a *net.UDPAddr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.addr[n] = a
}

// Lookup resolves a node's address.
func (r *Registry) Lookup(n topo.NodeID) (*net.UDPAddr, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.addr[n]
	return a, ok
}

// Fabric runs one emulated switch goroutine per non-server node.
type Fabric struct {
	Topo     *topo.Topology
	Rules    *RuleTable
	Registry *Registry

	mu      sync.Mutex
	conns   []*net.UDPConn
	stopped bool
	wg      sync.WaitGroup

	// Logf receives forwarding anomalies (malformed packets, unknown
	// next hops); defaults to log.Printf. Tests may silence it.
	Logf func(format string, args ...any)
}

// Start boots a fabric for the topology: one UDP socket per switch on
// 127.0.0.1, forwarding per the wire-format source route and applying the
// rule table on every link crossing.
func Start(t *topo.Topology, rules *RuleTable) (*Fabric, error) {
	f := &Fabric{
		Topo:     t,
		Rules:    rules,
		Registry: NewRegistry(),
		Logf:     log.Printf,
	}
	for _, n := range t.Nodes {
		if n.Kind == topo.Server {
			continue
		}
		conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			f.Stop()
			return nil, fmt.Errorf("fabric: switch %d listen: %w", n.ID, err)
		}
		f.Registry.Register(n.ID, conn.LocalAddr().(*net.UDPAddr))
		f.mu.Lock()
		f.conns = append(f.conns, conn)
		f.mu.Unlock()
		f.wg.Add(1)
		go f.runSwitch(n.ID, conn)
	}
	return f, nil
}

// Stop closes every switch socket and waits for the goroutines.
func (f *Fabric) Stop() {
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return
	}
	f.stopped = true
	conns := f.conns
	f.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	f.wg.Wait()
}

// runSwitch is the forwarding loop of one emulated switch.
func (f *Fabric) runSwitch(self topo.NodeID, conn *net.UDPConn) {
	defer f.wg.Done()
	buf := make([]byte, 4096)
	out := make([]byte, 0, 4096)
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		pkt, err := wire.Unmarshal(buf[:n])
		if err != nil {
			f.Logf("fabric: switch %d: %v", self, err)
			continue
		}
		if pkt.Current() != self {
			f.Logf("fabric: switch %d got packet routed for %d", self, pkt.Current())
			continue
		}
		// Ingress check: the packet just crossed (prev, self).
		var delay time.Duration
		if pkt.HopIdx > 0 {
			if l, ok := f.Topo.LinkBetween(pkt.PrevHop(), self); ok {
				if f.Rules.Drop(l, pkt) {
					continue // dropped by the emulated fault
				}
				if f.Rules.Mark(l, pkt) {
					pkt.Flags |= wire.FlagECN
				}
				delay = f.Rules.Delay(l)
			}
		}
		next, err := pkt.NextHop()
		if err != nil {
			f.Logf("fabric: switch %d is a route terminus: %v", self, err)
			continue
		}
		addr, ok := f.Registry.Lookup(next)
		if !ok {
			// Destination agent not registered (e.g. server down).
			continue
		}
		pkt.HopIdx++
		out, err = pkt.Marshal(out[:0])
		if err != nil {
			f.Logf("fabric: switch %d re-marshal: %v", self, err)
			continue
		}
		if delay > 0 {
			// Latency-spike emulation: hold the packet off the forwarding
			// loop so other traffic is unaffected.
			held := append([]byte(nil), out...)
			time.AfterFunc(delay, func() {
				conn.WriteToUDP(held, addr)
			})
			continue
		}
		if _, err := conn.WriteToUDP(out, addr); err != nil {
			f.mu.Lock()
			stopped := f.stopped
			f.mu.Unlock()
			if !stopped {
				f.Logf("fabric: switch %d write to %d: %v", self, next, err)
			}
		}
	}
}

// IngressDrop performs the final-hop rule check on behalf of a server
// agent: when a packet arrives at a pinger or responder socket, the last
// link (switch, server) must still face the rule table. It returns true if
// the emulated link dropped the packet.
func IngressDrop(t *topo.Topology, rules *RuleTable, pkt *wire.Packet) bool {
	if pkt.HopIdx == 0 {
		return false
	}
	l, ok := t.LinkBetween(pkt.PrevHop(), pkt.Current())
	if !ok {
		return false
	}
	return rules.Drop(l, pkt)
}

// SendFirstHop transmits a freshly built packet (HopIdx 0 at the source
// server) to the first switch of its route using the agent's own socket.
func SendFirstHop(conn *net.UDPConn, reg *Registry, pkt *wire.Packet, buf []byte) ([]byte, error) {
	next, err := pkt.NextHop()
	if err != nil {
		return buf, err
	}
	addr, ok := reg.Lookup(next)
	if !ok {
		return buf, fmt.Errorf("fabric: first hop %d not registered", next)
	}
	pkt.HopIdx++
	buf, err = pkt.Marshal(buf[:0])
	if err != nil {
		return buf, err
	}
	_, err = conn.WriteToUDP(buf, addr)
	return buf, err
}
