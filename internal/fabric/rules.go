// Package fabric emulates a source-routed data-center fabric over loopback
// UDP: every switch is a goroutine with a real UDP socket, forwarding probe
// packets along the explicit route carried in the wire header. A shared
// rule table plays the role of the paper's OpenFlow failure injection
// (§6.2): full drops, header-match (blackhole) drops and probabilistic
// drops, installable and removable at runtime.
//
// This is the substitution for the paper's 20-switch ONetSwitch testbed;
// the end-to-end behaviour deTector depends on — source routing, per-flow
// blackholes, echo-direction losses, per-port drop counters — is preserved,
// only the dataplane is user-space.
package fabric

import (
	"math/rand"
	"sync"
	"time"

	"github.com/detector-net/detector/internal/sim"
	"github.com/detector-net/detector/internal/topo"
	"github.com/detector-net/detector/internal/wire"
)

// RuleTable is the emulated SDN drop-rule state shared by all switches of
// one fabric, keyed by undirected link. It reuses the simulator's loss
// models so experiments can inject identical failures into the fabric and
// the pure simulator.
type RuleTable struct {
	mu       sync.RWMutex
	rules    map[topo.LinkID]sim.LossModel
	delays   map[topo.LinkID]time.Duration
	counters map[topo.LinkID]int64
	rng      *rand.Rand
}

// NewRuleTable returns an empty table. seed fixes the probabilistic-drop
// stream for reproducible tests.
func NewRuleTable(seed int64) *RuleTable {
	return &RuleTable{
		rules:    make(map[topo.LinkID]sim.LossModel),
		delays:   make(map[topo.LinkID]time.Duration),
		counters: make(map[topo.LinkID]int64),
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// Install sets the loss model of a link, replacing any previous rule.
func (rt *RuleTable) Install(l topo.LinkID, m sim.LossModel) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.rules[l] = m
}

// Remove clears the rule (and any delay) on a link.
func (rt *RuleTable) Remove(l topo.LinkID) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	delete(rt.rules, l)
	delete(rt.delays, l)
}

// Clear removes every rule (failure repaired / scenario reset).
func (rt *RuleTable) Clear() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.rules = make(map[topo.LinkID]sim.LossModel)
	rt.delays = make(map[topo.LinkID]time.Duration)
}

// InstallDelay adds a fixed one-way latency to a link — the emulation of a
// latency spike (congested queue, slow path). deTector treats RTTs above
// the probe timeout as losses (paper §1), so a spike larger than the
// pinger's timeout is detected and localized through the ordinary loss
// pipeline; a smaller one only moves the reported RTT.
func (rt *RuleTable) InstallDelay(l topo.LinkID, d time.Duration) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.delays[l] = d
}

// Delay returns the injected latency of a link (0 if none).
func (rt *RuleTable) Delay(l topo.LinkID) time.Duration {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.delays[l]
}

// FlowOf derives the simulator flow key of a packet, honoring direction:
// the echo hashes as the reversed flow, so deterministic blackholes hit
// forward and reverse paths independently, as on real hardware.
func FlowOf(p *wire.Packet) sim.FlowKey {
	src, dst := p.Src(), p.Dst()
	f := sim.FlowKey{
		Src: src, Dst: dst,
		SrcPort: uint16(p.FlowLabel), DstPort: 7,
		Proto: sim.UDPProto, DSCP: p.DSCP,
	}
	if p.Flags&wire.FlagReply != 0 {
		// The route is already reversed; the flow key mirrors the
		// original probe's reverse.
		f = sim.FlowKey{
			Src: src, Dst: dst,
			SrcPort: 7, DstPort: uint16(p.FlowLabel),
			Proto: sim.UDPProto, DSCP: p.DSCP,
		}
	}
	return f
}

// Drop rolls the fate of a packet crossing link l. Non-silent drops bump
// the link's counter (the SNMP-visible side channel).
func (rt *RuleTable) Drop(l topo.LinkID, p *wire.Packet) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	m, ok := rt.rules[l]
	if !ok {
		return false
	}
	prob := m.DropProb(FlowOf(p))
	if prob <= 0 {
		return false
	}
	if prob < 1 && rt.rng.Float64() >= prob {
		return false
	}
	if !m.Silent() {
		rt.counters[l]++
	}
	return true
}

// Mark rolls ECN marking for a packet crossing link l: rules whose model
// produces congestion signals (sim.SignalModel) mark the packet with the
// model's probability, emulating a RED/ECN queue. The switch sets
// wire.FlagECN on a true return.
func (rt *RuleTable) Mark(l topo.LinkID, p *wire.Packet) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	m, ok := rt.rules[l]
	if !ok {
		return false
	}
	sm, ok := m.(sim.SignalModel)
	if !ok {
		return false
	}
	_, prob := sm.LinkSignal(FlowOf(p), 0, rt.rng)
	return prob > 0 && rt.rng.Float64() < prob
}

// Counter reads a link's drop counter.
func (rt *RuleTable) Counter(l topo.LinkID) int64 {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.counters[l]
}

// Counters snapshots all counters.
func (rt *RuleTable) Counters() map[topo.LinkID]int64 {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make(map[topo.LinkID]int64, len(rt.counters))
	for l, c := range rt.counters {
		out[l] = c
	}
	return out
}

// ActiveRules lists links with installed rules.
func (rt *RuleTable) ActiveRules() []topo.LinkID {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]topo.LinkID, 0, len(rt.rules))
	for l := range rt.rules {
		out = append(out, l)
	}
	return out
}
