package fabric

import (
	"net"
	"testing"
	"time"

	"github.com/detector-net/detector/internal/sim"
	"github.com/detector-net/detector/internal/topo"
	"github.com/detector-net/detector/internal/wire"
)

// testHarness boots a Fattree(4) fabric plus one raw UDP socket per server
// endpoint needed by a test.
type testHarness struct {
	f      *topo.Fattree
	fab    *Fabric
	socks  map[topo.NodeID]*net.UDPConn
	rules  *RuleTable
	sendBF []byte
}

func newHarness(t *testing.T) *testHarness {
	t.Helper()
	f := topo.MustFattree(4)
	rules := NewRuleTable(1)
	fab, err := Start(f.Topology, rules)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fab.Stop)
	fab.Logf = t.Logf
	return &testHarness{f: f, fab: fab, rules: rules, socks: map[topo.NodeID]*net.UDPConn{}}
}

func (h *testHarness) serverSock(t *testing.T, n topo.NodeID) *net.UDPConn {
	t.Helper()
	if c, ok := h.socks[n]; ok {
		return c
	}
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	h.fab.Registry.Register(n, conn.LocalAddr().(*net.UDPAddr))
	h.socks[n] = conn
	return conn
}

// routeVia builds the full server-to-server route via core c.
func (h *testHarness) routeVia(src, dst topo.NodeID, c int) []topo.NodeID {
	_, hops := routeServerPath(h.f, src, dst, c)
	return hops
}

func routeServerPath(f *topo.Fattree, src, dst topo.NodeID, c int) ([]topo.LinkID, []topo.NodeID) {
	sn, dn := f.Node(src), f.Node(dst)
	h := f.Half()
	se, de := f.EdgeID[sn.Pod][sn.Index/h], f.EdgeID[dn.Pod][dn.Index/h]
	hops := []topo.NodeID{src}
	if se == de {
		hops = append(hops, se, dst)
		return nil, hops
	}
	hops = append(hops, f.PathHops(se, de, c, nil)...)
	hops = append(hops, dst)
	return nil, hops
}

func (h *testHarness) sendProbe(t *testing.T, src *net.UDPConn, route []topo.NodeID, label uint32) {
	t.Helper()
	pkt := &wire.Packet{
		ProbeID:   uint64(time.Now().UnixNano()),
		PathID:    1,
		FlowLabel: label,
		SendNS:    time.Now().UnixNano(),
		Route:     route,
	}
	var err error
	h.sendBF, err = SendFirstHop(src, h.fab.Registry, pkt, h.sendBF)
	if err != nil {
		t.Fatal(err)
	}
}

func recvPacket(t *testing.T, conn *net.UDPConn, timeout time.Duration) *wire.Packet {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(timeout))
	buf := make([]byte, 4096)
	n, _, err := conn.ReadFromUDP(buf)
	if err != nil {
		return nil
	}
	pkt, err := wire.Unmarshal(buf[:n])
	if err != nil {
		t.Fatalf("malformed packet delivered: %v", err)
	}
	return pkt
}

func TestFabricDeliversAcrossPods(t *testing.T) {
	h := newHarness(t)
	src := h.f.ServerID[0][0][0]
	dst := h.f.ServerID[2][1][1]
	srcConn := h.serverSock(t, src)
	dstConn := h.serverSock(t, dst)

	route := h.routeVia(src, dst, 2)
	h.sendProbe(t, srcConn, route, 42)
	pkt := recvPacket(t, dstConn, 2*time.Second)
	if pkt == nil {
		t.Fatal("probe never arrived")
	}
	if pkt.Dst() != dst || !pkt.AtDestination() {
		t.Fatalf("bad delivery state: %+v", pkt)
	}
	if IngressDrop(h.f.Topology, h.rules, pkt) {
		t.Fatal("healthy last link dropped the packet")
	}
	if pkt.FlowLabel != 42 {
		t.Fatalf("flow label corrupted: %d", pkt.FlowLabel)
	}
}

func TestFabricEchoPath(t *testing.T) {
	h := newHarness(t)
	src := h.f.ServerID[0][0][0]
	dst := h.f.ServerID[1][0][0]
	srcConn := h.serverSock(t, src)
	dstConn := h.serverSock(t, dst)

	h.sendProbe(t, srcConn, h.routeVia(src, dst, 0), 7)
	pkt := recvPacket(t, dstConn, 2*time.Second)
	if pkt == nil {
		t.Fatal("probe never arrived")
	}
	// Echo it like a responder would.
	echo := pkt.Reversed(time.Now().UnixNano())
	var err error
	h.sendBF, err = SendFirstHop(dstConn, h.fab.Registry, echo, h.sendBF)
	if err != nil {
		t.Fatal(err)
	}
	back := recvPacket(t, srcConn, 2*time.Second)
	if back == nil {
		t.Fatal("echo never arrived")
	}
	if back.Flags&wire.FlagReply == 0 || back.Dst() != src {
		t.Fatalf("echo state wrong: %+v", back)
	}
	if back.SendNS != pkt.SendNS {
		t.Fatal("echo lost the original send timestamp")
	}
}

func TestFullLossRuleDropsEverything(t *testing.T) {
	h := newHarness(t)
	src := h.f.ServerID[0][0][0]
	dst := h.f.ServerID[3][1][0]
	srcConn := h.serverSock(t, src)
	dstConn := h.serverSock(t, dst)

	// Fail the agg-core link of core 1's path.
	route := h.routeVia(src, dst, 1)
	l := h.f.MustLink(route[2], route[3])
	h.rules.Install(l, sim.FullLoss{})

	for i := 0; i < 5; i++ {
		h.sendProbe(t, srcConn, route, uint32(i))
	}
	if pkt := recvPacket(t, dstConn, 300*time.Millisecond); pkt != nil {
		t.Fatal("packet crossed a full-loss link")
	}
	if h.rules.Counter(l) != 5 {
		t.Fatalf("drop counter = %d, want 5", h.rules.Counter(l))
	}

	// A path via a different core group is unaffected.
	other := h.routeVia(src, dst, 3)
	h.sendProbe(t, srcConn, other, 9)
	if pkt := recvPacket(t, dstConn, 2*time.Second); pkt == nil {
		t.Fatal("healthy path lost the probe")
	}

	// Repair: traffic flows again.
	h.rules.Remove(l)
	h.sendProbe(t, srcConn, route, 10)
	if pkt := recvPacket(t, dstConn, 2*time.Second); pkt == nil {
		t.Fatal("repaired link still dropping")
	}
}

func TestBlackholeRuleDropsMatchingFlowsOnly(t *testing.T) {
	h := newHarness(t)
	src := h.f.ServerID[0][0][0]
	dst := h.f.ServerID[2][0][0]
	srcConn := h.serverSock(t, src)
	dstConn := h.serverSock(t, dst)

	route := h.routeVia(src, dst, 0)
	l := h.f.MustLink(route[1], route[2]) // edge-agg link
	h.rules.Install(l, sim.DeterministicLoss{Buckets: 0x0000FFFF, Seed: 5})

	delivered := 0
	const n = 64
	for i := 0; i < n; i++ {
		h.sendProbe(t, srcConn, route, uint32(i))
	}
	for {
		pkt := recvPacket(t, dstConn, 500*time.Millisecond)
		if pkt == nil {
			break
		}
		if IngressDrop(h.f.Topology, h.rules, pkt) {
			continue
		}
		delivered++
	}
	if delivered == 0 || delivered == n {
		t.Fatalf("blackhole delivered %d of %d, want partial", delivered, n)
	}
}

func TestGrayRuleLeavesNoCounters(t *testing.T) {
	h := newHarness(t)
	src := h.f.ServerID[0][0][0]
	dst := h.f.ServerID[1][1][0]
	srcConn := h.serverSock(t, src)
	h.serverSock(t, dst)

	route := h.routeVia(src, dst, 2)
	l := h.f.MustLink(route[2], route[3])
	h.rules.Install(l, sim.FullLoss{Gray: true})
	for i := 0; i < 5; i++ {
		h.sendProbe(t, srcConn, route, uint32(i))
	}
	time.Sleep(200 * time.Millisecond)
	if c := h.rules.Counter(l); c != 0 {
		t.Fatalf("gray failure left counter %d", c)
	}
}

func TestRegistryUnknownNodeDropsQuietly(t *testing.T) {
	h := newHarness(t)
	src := h.f.ServerID[0][0][0]
	dst := h.f.ServerID[1][0][1] // never registered
	srcConn := h.serverSock(t, src)
	h.sendProbe(t, srcConn, h.routeVia(src, dst, 0), 1)
	// Nothing to assert beyond "no crash": the switch drops at the last
	// hop because the server is not registered (server down).
	time.Sleep(100 * time.Millisecond)
}

func TestRuleTableClear(t *testing.T) {
	rt := NewRuleTable(1)
	rt.Install(3, sim.FullLoss{})
	rt.Install(9, sim.RandomLoss{P: 0.5})
	if len(rt.ActiveRules()) != 2 {
		t.Fatal("install failed")
	}
	rt.Clear()
	if len(rt.ActiveRules()) != 0 {
		t.Fatal("clear failed")
	}
}

// TestDelayRuleHoldsPackets: an injected latency spike delivers the packet
// late instead of dropping it — the substrate for "RTT above the timeout
// counts as loss" (paper §1).
func TestDelayRuleHoldsPackets(t *testing.T) {
	h := newHarness(t)
	src := h.f.ServerID[0][0][0]
	dst := h.f.ServerID[3][0][1]
	srcConn := h.serverSock(t, src)
	dstConn := h.serverSock(t, dst)

	route := h.routeVia(src, dst, 0)
	l := h.f.MustLink(route[2], route[3])
	h.rules.InstallDelay(l, 250*time.Millisecond)

	start := time.Now()
	h.sendProbe(t, srcConn, route, 1)
	if pkt := recvPacket(t, dstConn, 100*time.Millisecond); pkt != nil {
		t.Fatal("delayed packet arrived early")
	}
	pkt := recvPacket(t, dstConn, 2*time.Second)
	if pkt == nil {
		t.Fatal("delayed packet never arrived")
	}
	if elapsed := time.Since(start); elapsed < 250*time.Millisecond {
		t.Fatalf("packet arrived after %v, want >= 250ms", elapsed)
	}
	// Repair removes the delay too.
	h.rules.Remove(l)
	h.sendProbe(t, srcConn, route, 2)
	start = time.Now()
	if pkt := recvPacket(t, dstConn, 2*time.Second); pkt == nil {
		t.Fatal("packet lost after repair")
	} else if time.Since(start) > 200*time.Millisecond {
		t.Fatal("repair left the delay in place")
	}
}
