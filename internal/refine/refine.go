// Package refine implements the link-set splitting machinery at the core of
// deTector's PMC algorithm (§4.2): partition refinement over physical links
// and the "virtual links" that encode β-identifiability.
//
// A probe matrix is β-identifiable when every set of at most β simultaneous
// link failures produces a distinct end-to-end loss observation. Following
// Brodie et al. (DSOM'01) as adapted by the paper, this is equivalent to
// 1-identifiability over an extended element universe: the physical links
// plus one virtual link per combination of 2..β physical links, where a
// virtual link is "on" a path when any of its constituents is. Selecting a
// path splits every element group into the members on the path and the
// members off it; the matrix is identifiable when every group is a
// singleton, i.e. every element has a unique path signature.
//
// The Partition never materializes signatures: it tracks the group id of
// each element plus one intrusive membership list per group, so a
// Fattree(48) subproblem (2,304 links, 2.65 M virtual pairs) costs 16
// bytes per element — a few dozen megabytes.
//
// Virtual elements are stored by dense combinatorial rank (pairIndex,
// tripleIndex). A compact int16 decode table maps each rank back to its
// constituent physical links, with arithmetic inverses (decodePair,
// decodeTriple) as the tested ground truth, so SplitAffected reports the
// exact affected-link set at every supported β.
package refine

import (
	"fmt"
	"math"
	"sort"
)

// MaxBeta is the largest supported identifiability level. β=3 requires
// O(L³) virtual elements and is only practical for small subproblems, which
// matches the paper's observation that computing β≥3 matrices is infeasible
// for large DCNs (§4.4) — and unnecessary, since 2-identifiability already
// localizes 99% of failure events (§6.4).
const MaxBeta = 3

// Partition maintains the refinement state for one decomposition component
// with L physical links, locally indexed 0..L-1.
type Partition struct {
	l    int
	beta int

	total int // number of elements: L + C(L,2) [+ C(L,3)]

	gid       []int32 // element -> group
	groupSize []int32 // group -> member count
	numGroups int
	numSingle int

	// Scratch state for Split/CountSplittable, epoch-stamped to avoid
	// clearing between calls.
	epoch      int32
	groupMark  []int32 // group -> epoch of last visit
	groupNew   []int32 // group -> replacement group for current Split epoch
	groupOnCnt []int32 // group -> members-on-path count for current epoch
	inPath     []bool  // physical link -> is on current path
	scratch    []int32 // reusable visited-group list

	// Intrusive membership lists over the full element universe (physical
	// links, pairs and triples alike), maintained whenever beta >= 1:
	// memberHead[g] threads group g's members through memberNext/
	// memberPrev. They let SplitAffected enumerate every member of a
	// properly split group in O(|group|) and decode it back to physical
	// links, making the affected-link report exact at every supported
	// beta.
	memberHead  []int32
	memberNext  []int32
	memberPrev  []int32
	splitGroups []int32 // scratch: groups that allocated a new id this Split

	// Affected-link dedupe scratch for SplitAffected, epoch-stamped like
	// groupMark: a physical link is appended at most once per call.
	affMark  []int32
	affEpoch int32

	// linkSeen stamps physical links during the beta == 1 fast paths so
	// duplicate ids in an input slice are counted once; dedup is the
	// compacted unique-link buffer the marking entry points hand to the
	// enumeration loops.
	linkSeen []int32
	dedup    []int32

	// Compact decode tables: virtual element rank -> constituent links.
	// int16 suffices because the element-count cap keeps l under 2^15 at
	// every beta that has virtual elements. They turn SplitAffected's
	// member decode into two (three) array loads; decodePair/decodeTriple
	// remain as the arithmetic ground truth the tables are tested against.
	pairA, pairB        []int16 // beta >= 2, len C(l,2)
	tripA, tripB, tripC []int16 // beta >= 3, len C(l,3)
}

// NewPartition creates the refinement state for a component with l physical
// links at identifiability level beta (0..3). beta <= 1 tracks only physical
// links; beta == 0 additionally means callers ignore identifiability and the
// partition exists only so code paths stay uniform.
func NewPartition(l, beta int) (*Partition, error) {
	if l <= 0 {
		return nil, fmt.Errorf("refine: component must have at least one link, got %d", l)
	}
	if beta < 0 || beta > MaxBeta {
		return nil, fmt.Errorf("refine: beta must be in [0,%d], got %d", MaxBeta, beta)
	}
	if beta >= 2 && l > 32767 {
		// C(2^15, 2) alone is 537 M elements — far past any practical
		// element budget — so int16 decode tables are never the limit.
		return nil, fmt.Errorf("refine: beta >= 2 supports at most 32767 links per component, got %d", l)
	}
	total := l
	if beta >= 2 {
		total += l * (l - 1) / 2
	}
	if beta >= 3 {
		total += l * (l - 1) * (l - 2) / 6
	}
	p := &Partition{
		l:        l,
		beta:     beta,
		total:    total,
		gid:      make([]int32, total),
		inPath:   make([]bool, l),
		affMark:  make([]int32, l),
		linkSeen: make([]int32, l),
	}
	p.groupSize = append(p.groupSize, int32(total))
	p.groupMark = append(p.groupMark, 0)
	p.groupNew = append(p.groupNew, 0)
	p.groupOnCnt = append(p.groupOnCnt, 0)
	p.numGroups = 1
	if total == 1 {
		p.numSingle = 1
	}
	if beta >= 1 {
		p.memberHead = []int32{0}
		p.memberNext = make([]int32, total)
		p.memberPrev = make([]int32, total)
		for i := 0; i < total; i++ {
			p.memberNext[i] = int32(i + 1)
			p.memberPrev[i] = int32(i - 1)
		}
		p.memberNext[total-1] = -1
	}
	if beta >= 2 {
		n := l * (l - 1) / 2
		p.pairA = make([]int16, n)
		p.pairB = make([]int16, n)
		idx := 0
		for i := 0; i < l; i++ {
			for j := i + 1; j < l; j++ {
				p.pairA[idx] = int16(i)
				p.pairB[idx] = int16(j)
				idx++
			}
		}
	}
	if beta >= 3 {
		n := l * (l - 1) * (l - 2) / 6
		p.tripA = make([]int16, n)
		p.tripB = make([]int16, n)
		p.tripC = make([]int16, n)
		idx := 0
		for i := 0; i < l; i++ {
			for j := i + 1; j < l; j++ {
				for k := j + 1; k < l; k++ {
					p.tripA[idx] = int16(i)
					p.tripB[idx] = int16(j)
					p.tripC[idx] = int16(k)
					idx++
				}
			}
		}
	}
	return p, nil
}

// MustPartition is NewPartition for callers with validated arguments.
func MustPartition(l, beta int) *Partition {
	p, err := NewPartition(l, beta)
	if err != nil {
		panic(err)
	}
	return p
}

// Len returns the number of physical links.
func (p *Partition) Len() int { return p.l }

// Elements returns the total number of tracked elements.
func (p *Partition) Elements() int { return p.total }

// Groups returns the current number of groups.
func (p *Partition) Groups() int { return p.numGroups }

// Singletons returns the number of singleton groups.
func (p *Partition) Singletons() int { return p.numSingle }

// Done reports whether every element is alone in its group — the
// β-identifiability termination condition of PMC (Alg. 1 line 4).
func (p *Partition) Done() bool { return p.numSingle == p.total }

// pairIndex maps i < j to a dense index in [0, C(L,2)).
// Layout: pairs are grouped by their smaller member i, each block holding
// (L-1-i) entries.
func (p *Partition) pairIndex(i, j int) int {
	// Offset of block i: sum_{t<i} (L-1-t) = i*L - i - i*(i-1)/2.
	return i*(p.l-1) - i*(i-1)/2 + (j - i - 1)
}

// tripleIndex maps i < j < k to a dense index in [0, C(L,3)) by ranking.
func (p *Partition) tripleIndex(i, j, k int) int {
	l := p.l
	// Elements before block i: C(l,3) - C(l-i,3).
	c3 := func(n int) int {
		if n < 3 {
			return 0
		}
		return n * (n - 1) * (n - 2) / 6
	}
	c2 := func(n int) int {
		if n < 2 {
			return 0
		}
		return n * (n - 1) / 2
	}
	base := c3(l) - c3(l-i)
	// Within block i, pairs (j,k) over the remaining l-i-1 links.
	base += c2(l-i-1) - c2(l-j)
	return base + (k - j - 1)
}

func c2of(n int) int {
	if n < 2 {
		return 0
	}
	return n * (n - 1) / 2
}

func c3of(n int) int {
	if n < 3 {
		return 0
	}
	return n * (n - 1) * (n - 2) / 6
}

// pairBlockStart is the pairIndex of (i, i+1): the offset of block i.
func (p *Partition) pairBlockStart(i int) int {
	return i * (2*p.l - i - 1) / 2
}

// decodePair inverts pairIndex: the dense rank idx back to (i, j), i < j.
// The block is found in closed form — blockStart(i) <= idx pins i to the
// smaller root of i² - (2l-1)i + 2·idx = 0 — with an integer fixup loop
// absorbing any float rounding, so the decode is exact for every l the
// element cap admits.
func (p *Partition) decodePair(idx int) (int, int) {
	b := float64(2*p.l - 1)
	i := int((b - math.Sqrt(b*b-8*float64(idx))) / 2)
	if i < 0 {
		i = 0
	}
	for i+1 < p.l-1 && p.pairBlockStart(i+1) <= idx {
		i++
	}
	for i > 0 && p.pairBlockStart(i) > idx {
		i--
	}
	j := idx - p.pairBlockStart(i) + i + 1
	return i, j
}

// decodeTriple inverts tripleIndex: the dense rank idx back to (i, j, k),
// i < j < k, by binary-searching the two block prefixes of the ranking.
func (p *Partition) decodeTriple(idx int) (int, int, int) {
	l := p.l
	// Largest i with c3(l) - c3(l-i) <= idx.
	i := sort.Search(l-3, func(n int) bool { return c3of(l)-c3of(l-n-1) > idx })
	rem := idx - (c3of(l) - c3of(l-i))
	// Largest j > i with c2(l-i-1) - c2(l-j) <= rem.
	j := i + 1 + sort.Search(l-i-2, func(n int) bool { return c2of(l-i-1)-c2of(l-i-2-n) > rem })
	k := rem - (c2of(l-i-1) - c2of(l-j)) + j + 1
	return i, j, k
}

// appendConstituents decodes element elem to its constituent physical links
// through the decode tables and appends each to aff unless already reported
// this affEpoch. It returns the extended slice and the number of links
// appended.
func (p *Partition) appendConstituents(elem int32, aff []int32) ([]int32, int) {
	added := 0
	e := p.affEpoch
	mark := p.affMark
	switch {
	case int(elem) < p.l:
		if mark[elem] != e {
			mark[elem] = e
			aff = append(aff, elem)
			added++
		}
	case int(elem) < p.l+len(p.pairA):
		r := int(elem) - p.l
		i, j := int32(p.pairA[r]), int32(p.pairB[r])
		if mark[i] != e {
			mark[i] = e
			aff = append(aff, i)
			added++
		}
		if mark[j] != e {
			mark[j] = e
			aff = append(aff, j)
			added++
		}
	default:
		r := int(elem) - p.l - len(p.pairA)
		i, j, k := int32(p.tripA[r]), int32(p.tripB[r]), int32(p.tripC[r])
		if mark[i] != e {
			mark[i] = e
			aff = append(aff, i)
			added++
		}
		if mark[j] != e {
			mark[j] = e
			aff = append(aff, j)
			added++
		}
		if mark[k] != e {
			mark[k] = e
			aff = append(aff, k)
			added++
		}
	}
	return aff, added
}

// forEachElementOnPath invokes fn with the element index of every element
// (physical, pair, triple) that intersects the path. Each element is
// visited exactly once. links must contain valid, distinct local link ids;
// p.inPath must already mark them (managed by the exported callers).
func (p *Partition) forEachElementOnPath(links []int32, fn func(elem int)) {
	for _, l := range links {
		fn(int(l))
	}
	if p.beta < 2 {
		return
	}
	pairBase := p.l
	for _, lRaw := range links {
		li := int(lRaw)
		// Pairs {li, m}: to visit each pair once, only the smallest
		// on-path member owns it, i.e. skip m that are on the path and
		// smaller than li.
		for m := 0; m < p.l; m++ {
			if m == li {
				continue
			}
			if p.inPath[m] && m < li {
				continue
			}
			var idx int
			if li < m {
				idx = p.pairIndex(li, m)
			} else {
				idx = p.pairIndex(m, li)
			}
			fn(pairBase + idx)
		}
	}
	if p.beta < 3 {
		return
	}
	tripleBase := p.l + p.l*(p.l-1)/2
	for _, lRaw := range links {
		li := int(lRaw)
		// Triples {li, m1, m2}: owned by the smallest on-path member.
		for m1 := 0; m1 < p.l; m1++ {
			if m1 == li || (p.inPath[m1] && m1 < li) {
				continue
			}
			for m2 := m1 + 1; m2 < p.l; m2++ {
				if m2 == li || (p.inPath[m2] && m2 < li) {
					continue
				}
				a, b, c := sort3(li, m1, m2)
				fn(tripleBase + p.tripleIndex(a, b, c))
			}
		}
	}
}

func sort3(a, b, c int) (int, int, int) {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return a, b, c
}

// markPathDedup marks the path's links on inPath, dropping duplicate ids,
// and returns the unique links (backed by p.dedup, valid until the next
// marking call). The exported entry points all funnel input through it — or
// through the epoch-stamped linkSeen in the beta == 1 fast paths — so a
// caller repeating a link id cannot double-count a group or corrupt a
// split.
func (p *Partition) markPathDedup(links []int32) []int32 {
	uniq := p.dedup[:0]
	for _, l := range links {
		if !p.inPath[l] {
			p.inPath[l] = true
			uniq = append(uniq, l)
		}
	}
	p.dedup = uniq
	return uniq
}

func (p *Partition) unmarkPath(links []int32) {
	for _, l := range links {
		p.inPath[l] = false
	}
}

// CountSplittable returns the number of groups the path would properly
// split: groups with at least one member on the path and at least one off
// it. This is the "# of link sets on path" term of the PMC score (Eq. 1) —
// the quantity that makes the score monotone, since a group, once refined,
// can only become harder to split.
func (p *Partition) CountSplittable(links []int32) int {
	if p.beta == 0 {
		return 0
	}
	if p.beta == 1 {
		return p.countSplittableLinks(links)
	}
	if p.beta == 2 {
		return p.countSplittablePairs(links)
	}
	links = p.markPathDedup(links)
	p.epoch++
	e := p.epoch
	groups := p.scratch[:0]
	p.forEachElementOnPath(links, func(elem int) {
		g := p.gid[elem]
		if p.groupMark[g] != e {
			p.groupMark[g] = e
			p.groupOnCnt[g] = 0
			groups = append(groups, g)
		}
		p.groupOnCnt[g]++
	})
	n := 0
	for _, g := range groups {
		if p.groupOnCnt[g] < p.groupSize[g] {
			n++
		}
	}
	p.scratch = groups[:0]
	p.unmarkPath(links)
	return n
}

// countSplittablePairs is the beta == 2 fast path of CountSplittable: the
// same owned-pair enumeration as forEachElementOnPath, but inlined into
// direct loops so the per-element group visit compiles without a closure
// call — every score evaluation of a β=2 construction lands here, and the
// indirect call was the single hottest line of the profile. The m > li half
// of each path link's block is a contiguous rank run, so that gid walk is
// sequential and prefetch-friendly.
func (p *Partition) countSplittablePairs(links []int32) int {
	links = p.markPathDedup(links)
	p.epoch++
	e := p.epoch
	groups := p.scratch[:0]
	gid, gMark, gOn := p.gid, p.groupMark, p.groupOnCnt
	for _, l := range links {
		g := gid[l]
		if gMark[g] != e {
			gMark[g] = e
			gOn[g] = 0
			groups = append(groups, g)
		}
		gOn[g]++
	}
	pairBase := p.l
	for _, lRaw := range links {
		li := int(lRaw)
		// Pairs {m, li} with m < li: rank jumps block to block; skip
		// on-path m (their block owns the pair).
		for m := 0; m < li; m++ {
			if p.inPath[m] {
				continue
			}
			g := gid[pairBase+p.pairBlockStart(m)+li-m-1]
			if gMark[g] != e {
				gMark[g] = e
				gOn[g] = 0
				groups = append(groups, g)
			}
			gOn[g]++
		}
		// Pairs {li, m} with m > li: ranks are contiguous.
		base := pairBase + p.pairBlockStart(li) - li - 1
		for idx := base + li + 1; idx <= base+p.l-1; idx++ {
			g := gid[idx]
			if gMark[g] != e {
				gMark[g] = e
				gOn[g] = 0
				groups = append(groups, g)
			}
			gOn[g]++
		}
	}
	n := 0
	for _, g := range groups {
		if gOn[g] < p.groupSize[g] {
			n++
		}
	}
	p.scratch = groups[:0]
	p.unmarkPath(links)
	return n
}

// countSplittableLinks is the beta == 1 fast path of CountSplittable: the
// element universe is exactly the physical links, so the count needs no
// path marking and no pair/triple enumeration — one pass over the links
// with epoch-stamped group visits (linkSeen absorbs duplicate input ids in
// the same pass).
func (p *Partition) countSplittableLinks(links []int32) int {
	p.epoch++
	e := p.epoch
	groups := p.scratch[:0]
	gid, gMark, gOn, seen := p.gid, p.groupMark, p.groupOnCnt, p.linkSeen
	for _, l := range links {
		if seen[l] == e {
			continue
		}
		seen[l] = e
		g := gid[l]
		if gMark[g] != e {
			gMark[g] = e
			gOn[g] = 0
			groups = append(groups, g)
		}
		gOn[g]++
	}
	n := 0
	gSize := p.groupSize
	for _, g := range groups {
		if gOn[g] < gSize[g] {
			n++
		}
	}
	p.scratch = groups[:0]
	return n
}

// Split refines the partition with the path: every group with members both
// on and off the path is split in two. It returns the number of groups that
// were properly split.
func (p *Partition) Split(links []int32) int {
	if p.beta == 0 {
		return 0
	}
	links = p.markPathDedup(links)
	p.epoch++
	e := p.epoch
	split := 0
	p.splitGroups = p.splitGroups[:0]
	p.forEachElementOnPath(links, func(elem int) {
		g := p.gid[elem]
		if p.groupMark[g] != e {
			p.groupMark[g] = e
			if p.groupSize[g] == 1 {
				// A singleton fully on the path: nothing to split.
				p.groupNew[g] = g
				return
			}
			ng := int32(len(p.groupSize))
			p.groupSize = append(p.groupSize, 0)
			p.groupMark = append(p.groupMark, e)
			p.groupNew = append(p.groupNew, ng)
			p.groupOnCnt = append(p.groupOnCnt, 0)
			if p.memberHead != nil {
				p.memberHead = append(p.memberHead, -1)
			}
			p.groupNew[g] = ng
			p.splitGroups = append(p.splitGroups, g)
			p.numGroups++
			split++ // provisional; retracted below if the split was total
		}
		ng := p.groupNew[g]
		if ng == g {
			return
		}
		p.gid[elem] = ng
		if p.memberHead != nil {
			p.moveMember(int32(elem), g, ng)
		}
		p.groupSize[g]--
		p.groupSize[ng]++
		switch p.groupSize[ng] {
		case 1:
			p.numSingle++
		case 2:
			p.numSingle--
		}
		switch p.groupSize[g] {
		case 1:
			p.numSingle++
		case 0:
			// Every member moved: not a real split after all.
			p.numSingle--
			p.numGroups--
			split--
		}
	})
	p.unmarkPath(links)
	return split
}

// moveMember unlinks element e from group g's membership list and pushes it
// onto ng's.
func (p *Partition) moveMember(e, g, ng int32) {
	prev, next := p.memberPrev[e], p.memberNext[e]
	if prev >= 0 {
		p.memberNext[prev] = next
	} else {
		p.memberHead[g] = next
	}
	if next >= 0 {
		p.memberPrev[next] = prev
	}
	head := p.memberHead[ng]
	p.memberNext[e] = head
	p.memberPrev[e] = -1
	if head >= 0 {
		p.memberPrev[head] = e
	}
	p.memberHead[ng] = e
}

// SplitAffected refines the partition like Split and additionally reports
// which physical links may have had their splittability context changed —
// the constituent links of every member of every group that was properly
// split (both halves). This is the incremental-scoring contract PMC relies
// on: a candidate path's CountSplittable term can only change when one of
// its links constitutes an element of a group the selected path split, so
// rescoring can be confined to paths touching the returned links (plus, for
// the Σw term, the selected path's own links).
//
// Affected links are appended to aff — each link at most once — and the
// extended slice is returned. exact is true at every supported beta: the
// membership lists cover the whole virtual element universe, and pair/
// triple members decode back to physical links arithmetically. The walk
// stops early once every physical link has been reported, because at that
// point the affected set has provably converged to its maximum — further
// members can only repeat links — so the report stays exactly the
// brute-force set even on the huge early-construction groups.
func (p *Partition) SplitAffected(links []int32, aff []int32) (split int, out []int32, exact bool) {
	split = p.Split(links)
	if p.beta == 0 || split == 0 {
		return split, aff, true
	}
	p.affEpoch++
	remaining := p.l
	for _, g := range p.splitGroups {
		ng := p.groupNew[g]
		if p.groupSize[g] == 0 {
			// Every member moved: membership is unchanged, only the
			// group id differs, so no path's count changed.
			continue
		}
		for _, h := range [2]int32{g, ng} {
			for e := p.memberHead[h]; e >= 0; e = p.memberNext[e] {
				var n int
				aff, n = p.appendConstituents(e, aff)
				remaining -= n
				if remaining == 0 {
					return split, aff, true
				}
			}
		}
	}
	return split, aff, true
}

// GroupOf returns the group id of physical link l (for tests).
func (p *Partition) GroupOf(l int) int32 { return p.gid[l] }

// PairGroup returns the group id of the virtual link {i, j} (for tests).
// Requires beta >= 2.
func (p *Partition) PairGroup(i, j int) int32 {
	if p.beta < 2 {
		panic("refine: PairGroup requires beta >= 2")
	}
	if i > j {
		i, j = j, i
	}
	return p.gid[p.l+p.pairIndex(i, j)]
}
