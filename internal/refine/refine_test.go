package refine

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPartitionValidation(t *testing.T) {
	if _, err := NewPartition(0, 1); err == nil {
		t.Error("accepted zero links")
	}
	if _, err := NewPartition(5, -1); err == nil {
		t.Error("accepted negative beta")
	}
	if _, err := NewPartition(5, MaxBeta+1); err == nil {
		t.Error("accepted beta above MaxBeta")
	}
}

func TestElementCounts(t *testing.T) {
	cases := []struct {
		l, beta, want int
	}{
		{4, 0, 4},
		{4, 1, 4},
		{4, 2, 4 + 6},
		{4, 3, 4 + 6 + 4},
		{10, 2, 10 + 45},
		{10, 3, 10 + 45 + 120},
	}
	for _, c := range cases {
		p := MustPartition(c.l, c.beta)
		if p.Elements() != c.want {
			t.Errorf("l=%d beta=%d: %d elements, want %d", c.l, c.beta, p.Elements(), c.want)
		}
	}
}

func TestPairIndexDense(t *testing.T) {
	p := MustPartition(9, 2)
	seen := make(map[int]bool)
	for i := 0; i < 9; i++ {
		for j := i + 1; j < 9; j++ {
			idx := p.pairIndex(i, j)
			if idx < 0 || idx >= 36 {
				t.Fatalf("pairIndex(%d,%d) = %d out of range", i, j, idx)
			}
			if seen[idx] {
				t.Fatalf("pairIndex(%d,%d) = %d collides", i, j, idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != 36 {
		t.Fatalf("pair index space not dense: %d of 36", len(seen))
	}
}

func TestTripleIndexDense(t *testing.T) {
	p := MustPartition(8, 3)
	seen := make(map[int]bool)
	want := 8 * 7 * 6 / 6
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			for k := j + 1; k < 8; k++ {
				idx := p.tripleIndex(i, j, k)
				if idx < 0 || idx >= want {
					t.Fatalf("tripleIndex(%d,%d,%d) = %d out of range", i, j, k, idx)
				}
				if seen[idx] {
					t.Fatalf("tripleIndex(%d,%d,%d) = %d collides", i, j, k, idx)
				}
				seen[idx] = true
			}
		}
	}
	if len(seen) != want {
		t.Fatalf("triple index space not dense: %d of %d", len(seen), want)
	}
}

// TestDecodeTablesMatchArithmetic cross-checks the int16 decode tables and
// the arithmetic inverses against the forward ranks, for every pair and
// triple of a beta=3 partition, plus the block boundaries of a large-l
// beta=2 partition where the sqrt-based pair decode is farthest from float
// precision comfort.
func TestDecodeTablesMatchArithmetic(t *testing.T) {
	const l = 23
	p := MustPartition(l, 3)
	for i := 0; i < l; i++ {
		for j := i + 1; j < l; j++ {
			r := p.pairIndex(i, j)
			if di, dj := p.decodePair(r); di != i || dj != j {
				t.Fatalf("decodePair(%d) = (%d,%d), want (%d,%d)", r, di, dj, i, j)
			}
			if int(p.pairA[r]) != i || int(p.pairB[r]) != j {
				t.Fatalf("pair table[%d] = (%d,%d), want (%d,%d)", r, p.pairA[r], p.pairB[r], i, j)
			}
			for k := j + 1; k < l; k++ {
				r3 := p.tripleIndex(i, j, k)
				if a, b, c := p.decodeTriple(r3); a != i || b != j || c != k {
					t.Fatalf("decodeTriple(%d) = (%d,%d,%d), want (%d,%d,%d)", r3, a, b, c, i, j, k)
				}
				if int(p.tripA[r3]) != i || int(p.tripB[r3]) != j || int(p.tripC[r3]) != k {
					t.Fatalf("triple table[%d] = (%d,%d,%d), want (%d,%d,%d)",
						r3, p.tripA[r3], p.tripB[r3], p.tripC[r3], i, j, k)
				}
			}
		}
	}
	big := MustPartition(2500, 2)
	for i := 0; i < 2499; i++ {
		if di, dj := big.decodePair(big.pairBlockStart(i)); di != i || dj != i+1 {
			t.Fatalf("block %d start decodes to (%d,%d)", i, di, dj)
		}
		if di, dj := big.decodePair(big.pairIndex(i, 2499)); di != i || dj != 2499 {
			t.Fatalf("block %d end decodes to (%d,%d)", i, di, dj)
		}
	}
}

// TestSplitExample reproduces the worked example of paper Fig. 3: three
// links, paths p1={l1,l2}, p2={l1,l3}, p3={l3}. Selecting p1 and p2 yields a
// 1-identifiable matrix (all three signatures distinct).
func TestSplitExample(t *testing.T) {
	p := MustPartition(3, 1)
	if p.Done() {
		t.Fatal("fresh partition reports done")
	}
	p.Split([]int32{0, 1}) // p1
	if p.Groups() != 2 {
		t.Fatalf("after p1: %d groups, want 2", p.Groups())
	}
	p.Split([]int32{0, 2}) // p2
	if !p.Done() {
		t.Fatalf("after p1,p2: groups=%d singles=%d, want identifiable", p.Groups(), p.Singletons())
	}
}

// TestPairSeparation verifies the β=2 semantics on Fig. 3: with paths p1, p2
// the pairs {l1,l2} and {l1,l3} have signatures {p1,p2} each — wait, no:
// sig({l1,l2}) = {p1,p2} ∪ {p1} = {p1,p2}; sig({l1,l3}) = {p1,p2};
// indistinguishable, so 2-identifiability needs more paths, exactly as the
// paper argues for this example.
func TestPairSeparation(t *testing.T) {
	p := MustPartition(3, 2)
	p.Split([]int32{0, 1})
	p.Split([]int32{0, 2})
	if p.Done() {
		t.Fatal("p1,p2 cannot be 2-identifiable for 3 links")
	}
	if p.PairGroup(0, 1) != p.PairGroup(0, 2) {
		t.Fatal("pairs {l1,l2} and {l1,l3} should be indistinguishable under p1,p2")
	}
	// p3 = {l3} separates {l1,l3} and {l2,l3} from {l1} — more groups, but
	// l1 and the pair {l1,l2} still share a signature ({p1,p2}) until some
	// path covers l2 without l1.
	before := p.Groups()
	p.Split([]int32{2})
	if p.Groups() <= before {
		t.Fatal("p3 should split groups")
	}
	if p.GroupOf(0) != p.PairGroup(0, 1) {
		t.Fatal("l1 and pair {l1,l2} should still be indistinguishable")
	}
	// p4 = {l2} completes 2-identifiability for this 3-link component.
	p.Split([]int32{1})
	if !p.Done() {
		t.Fatalf("paths {01},{02},{2},{1} should be 2-identifiable; groups=%d singles=%d of %d",
			p.Groups(), p.Singletons(), p.Elements())
	}
}

// bruteSignatures computes element signatures explicitly and counts
// distinct-signature classes, as ground truth for the refinement.
func bruteSignatures(l, beta int, paths [][]int32) (groups, singles int) {
	type elem struct{ a, b, c int } // b,c = -1 when unused
	var elems []elem
	for i := 0; i < l; i++ {
		elems = append(elems, elem{i, -1, -1})
	}
	if beta >= 2 {
		for i := 0; i < l; i++ {
			for j := i + 1; j < l; j++ {
				elems = append(elems, elem{i, j, -1})
			}
		}
	}
	if beta >= 3 {
		for i := 0; i < l; i++ {
			for j := i + 1; j < l; j++ {
				for k := j + 1; k < l; k++ {
					elems = append(elems, elem{i, j, k})
				}
			}
		}
	}
	sigs := make(map[string][]int)
	for ei, e := range elems {
		sig := make([]byte, len(paths))
		for pi, path := range paths {
			on := false
			for _, pl := range path {
				if int(pl) == e.a || int(pl) == e.b || int(pl) == e.c {
					on = true
					break
				}
			}
			if on {
				sig[pi] = 1
			}
		}
		sigs[string(sig)] = append(sigs[string(sig)], ei)
	}
	for _, members := range sigs {
		if len(members) == 1 {
			singles++
		}
	}
	return len(sigs), singles
}

// TestRefinementMatchesBruteForce drives random path sequences through the
// partition and cross-checks group/singleton counts against explicit
// signature computation, for every supported beta.
func TestRefinementMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, beta := range []int{1, 2, 3} {
		for trial := 0; trial < 30; trial++ {
			l := 3 + rng.Intn(8)
			nPaths := 1 + rng.Intn(10)
			p := MustPartition(l, beta)
			var paths [][]int32
			for pi := 0; pi < nPaths; pi++ {
				n := 1 + rng.Intn(l)
				perm := rng.Perm(l)[:n]
				path := make([]int32, n)
				for i, v := range perm {
					path[i] = int32(v)
				}
				paths = append(paths, path)
				p.Split(path)

				wantGroups, wantSingles := bruteSignatures(l, beta, paths)
				if p.Groups() != wantGroups || p.Singletons() != wantSingles {
					t.Fatalf("beta=%d l=%d after %d paths: groups=%d singles=%d, want %d/%d",
						beta, l, pi+1, p.Groups(), p.Singletons(), wantGroups, wantSingles)
				}
			}
		}
	}
}

// TestCountSplittableMatchesSplit: CountSplittable must predict exactly how
// many groups Split will properly split.
func TestCountSplittableMatchesSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, beta := range []int{1, 2, 3} {
		for trial := 0; trial < 40; trial++ {
			l := 3 + rng.Intn(7)
			p := MustPartition(l, beta)
			for pi := 0; pi < 8; pi++ {
				n := 1 + rng.Intn(l)
				perm := rng.Perm(l)[:n]
				path := make([]int32, n)
				for i, v := range perm {
					path[i] = int32(v)
				}
				predicted := p.CountSplittable(path)
				actual := p.Split(path)
				if predicted != actual {
					t.Fatalf("beta=%d: CountSplittable=%d but Split=%d", beta, predicted, actual)
				}
			}
		}
	}
}

// TestSplittableCanIncrease documents the known counterexample to the
// paper's Observation 2 ("the score of each path is non-decreasing over all
// iterations"): refining a group with another path can create two groups
// that a fixed path properly splits, so its split gain — and hence its
// score's negative term — can grow. PMC's lazy mode therefore re-validates
// popped candidates against the freshly recomputed score instead of
// trusting cached keys, and its termination test never relies on
// monotonicity.
//
// Counterexample: links {0,1,2,3}, probe path q = {0,1}. Initially q splits
// the single group (gain 1). After Split({0,2}) the groups are {0,2} and
// {1,3}, and q properly splits both (gain 2).
func TestSplittableCanIncrease(t *testing.T) {
	p := MustPartition(4, 1)
	q := []int32{0, 1}
	if got := p.CountSplittable(q); got != 1 {
		t.Fatalf("initial gain = %d, want 1", got)
	}
	p.Split([]int32{0, 2})
	if got := p.CountSplittable(q); got != 2 {
		t.Fatalf("gain after refinement = %d, want 2 (the non-monotone case)", got)
	}
}

// TestSplittableBoundedByPathLinks: the split gain of a path can never
// exceed the number of groups its elements occupy, which for beta=1 is at
// most the number of links on the path.
func TestSplittableBoundedByPathLinks(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(11))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := 4 + rng.Intn(6)
		p := MustPartition(l, 1)
		for i := 0; i < 6; i++ {
			n := 1 + rng.Intn(l)
			perm := rng.Perm(l)[:n]
			path := make([]int32, n)
			for j, v := range perm {
				path[j] = int32(v)
			}
			if p.CountSplittable(path) > n {
				return false
			}
			p.Split(path)
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestZeroGainSplitIsNoOp: selecting a path that cannot split anything must
// leave the partition state unchanged (PMC's termination rule relies on it).
func TestZeroGainSplitIsNoOp(t *testing.T) {
	p := MustPartition(4, 1)
	p.Split([]int32{0, 1})
	p.Split([]int32{0, 1}) // identical path: nothing further to split
	if p.Groups() != 2 {
		t.Fatalf("repeat split changed groups: %d", p.Groups())
	}
	g0, g1 := p.GroupOf(0), p.GroupOf(1)
	if g0 != g1 {
		t.Fatal("links 0 and 1 should share a group")
	}
}

// TestDuplicateLinkInputs pins the input contract: duplicate link ids in a
// path slice are deduplicated at every entry point, so counts, splits,
// partition state and affected lists all match the set-semantics of the
// same path — and the affected list never reports a link twice.
func TestDuplicateLinkInputs(t *testing.T) {
	for _, beta := range []int{0, 1, 2, 3} {
		clean := []int32{0, 3, 4}
		dup := []int32{0, 3, 0, 4, 4, 3}
		a := MustPartition(6, beta)
		b := MustPartition(6, beta)
		if ca, cb := a.CountSplittable(clean), b.CountSplittable(dup); ca != cb {
			t.Errorf("beta=%d: CountSplittable %d with clean input, %d with duplicates", beta, ca, cb)
		}
		sa, affA, _ := a.SplitAffected(clean, nil)
		sb, affB, _ := b.SplitAffected(dup, nil)
		if sa != sb {
			t.Errorf("beta=%d: split %d with clean input, %d with duplicates", beta, sa, sb)
		}
		if a.Groups() != b.Groups() || a.Singletons() != b.Singletons() {
			t.Errorf("beta=%d: partition state diverged on duplicate input", beta)
		}
		setOf := func(links []int32) map[int32]int {
			m := map[int32]int{}
			for _, l := range links {
				m[l]++
			}
			return m
		}
		ma, mb := setOf(affA), setOf(affB)
		if len(ma) != len(mb) {
			t.Errorf("beta=%d: affected %v with clean input, %v with duplicates", beta, affA, affB)
		}
		for l, n := range mb {
			if n != 1 {
				t.Errorf("beta=%d: affected list reports link %d %d times", beta, l, n)
			}
			if ma[l] == 0 {
				t.Errorf("beta=%d: affected %v with clean input, %v with duplicates", beta, affA, affB)
			}
		}
	}
}

func TestBetaZeroIsInert(t *testing.T) {
	p := MustPartition(5, 0)
	if got := p.Split([]int32{0, 1, 2}); got != 0 {
		t.Fatalf("beta=0 Split returned %d", got)
	}
	if got := p.CountSplittable([]int32{3, 4}); got != 0 {
		t.Fatalf("beta=0 CountSplittable returned %d", got)
	}
}

func TestSingleLinkComponent(t *testing.T) {
	p := MustPartition(1, 1)
	if !p.Done() {
		t.Fatal("one-link partition should start identifiable")
	}
}

func BenchmarkSplitBeta2(b *testing.B) {
	const l = 512
	path := []int32{3, 77, 201, 400}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := MustPartition(l, 2)
		p.Split(path)
	}
}

func BenchmarkSplitAffectedBeta2(b *testing.B) {
	const l = 512
	rng := rand.New(rand.NewSource(2))
	paths := randomPaths(rng, l, 256, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := MustPartition(l, 2)
		b.StartTimer()
		var aff []int32
		for _, path := range paths {
			_, aff, _ = p.SplitAffected(path, aff[:0])
		}
	}
}

func BenchmarkCountSplittableBeta2(b *testing.B) {
	const l = 512
	p := MustPartition(l, 2)
	var rng = rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		perm := rng.Perm(l)[:3]
		p.Split([]int32{int32(perm[0]), int32(perm[1]), int32(perm[2])})
	}
	path := []int32{3, 77, 201, 400}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.CountSplittable(path)
	}
}

// randomPaths generates distinct-link random paths over l links.
func randomPaths(rng *rand.Rand, l, n, maxLen int) [][]int32 {
	paths := make([][]int32, n)
	for i := range paths {
		perm := rng.Perm(l)
		length := 1 + rng.Intn(maxLen)
		if length > l {
			length = l
		}
		p := make([]int32, length)
		for j := 0; j < length; j++ {
			p[j] = int32(perm[j])
		}
		paths[i] = p
	}
	return paths
}

// TestSplitAffectedSoundness is the incremental-scoring contract check: a
// path's CountSplittable may only change across a split when the path
// touches a reported affected link or a link of the split path itself.
// Randomized over beta=1 partitions; a violation would silently corrupt
// PMC's cached scores.
func TestSplitAffectedSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const l = 24
	for trial := 0; trial < 200; trial++ {
		p := MustPartition(l, 1)
		probes := randomPaths(rng, l, 40, 5)
		before := make([]int, len(probes))
		splits := randomPaths(rng, l, 12, 5)
		for _, sp := range splits {
			for i, q := range probes {
				before[i] = p.CountSplittable(q)
			}
			_, aff, exact := p.SplitAffected(sp, nil)
			if !exact {
				t.Fatal("beta=1 SplitAffected must be exact")
			}
			touched := make([]bool, l)
			for _, li := range sp {
				touched[li] = true
			}
			for _, li := range aff {
				touched[li] = true
			}
			for i, q := range probes {
				after := p.CountSplittable(q)
				if after == before[i] {
					continue
				}
				hit := false
				for _, li := range q {
					if touched[li] {
						hit = true
						break
					}
				}
				if !hit {
					t.Fatalf("trial %d: path %v count changed %d -> %d after splitting %v, but no affected link (%v) is on it",
						trial, q, before[i], after, sp, aff)
				}
			}
		}
	}
}

// TestSplitAffectedExactness checks the advertised exactness per beta:
// beta=0 splits nothing and is exact, and every beta >= 1 reports the exact
// affected-link set through the full-universe membership lists.
func TestSplitAffectedExactness(t *testing.T) {
	links := []int32{0, 2}
	p0 := MustPartition(5, 0)
	if _, aff, exact := p0.SplitAffected(links, nil); !exact || len(aff) != 0 {
		t.Errorf("beta=0: exact=%v aff=%v, want exact with no affected links", exact, aff)
	}
	for beta := 1; beta <= 3; beta++ {
		p := MustPartition(5, beta)
		// The single initial group splits into on-path and off-path
		// halves: every link constitutes a member of a split half.
		if _, aff, exact := p.SplitAffected(links, nil); !exact || len(aff) != 5 {
			t.Errorf("beta=%d: exact=%v aff=%v, want exact with all 5 links affected", beta, exact, aff)
		}
	}
	// Once refinement localizes, the report shrinks below "everything":
	// after {0,1} and {2,3} split a beta=2 partition, splitting {0} only
	// touches groups whose members constitute links {0,1} (the physical
	// group {0,1}, pairs {0,x} vs {1,x} regroupings stay within their
	// split groups' constituent span).
	p := MustPartition(5, 2)
	p.Split([]int32{0, 1})
	p.Split([]int32{2, 3})
	_, aff, exact := p.SplitAffected([]int32{4}, nil)
	if !exact {
		t.Fatal("beta=2 SplitAffected must be exact")
	}
	seen := map[int32]bool{}
	for _, l := range aff {
		if seen[l] {
			t.Fatalf("beta=2 affected list repeats link %d: %v", l, aff)
		}
		seen[l] = true
	}
}

// TestSplitAffectedTotalMoveSkipped: a path covering an entire group moves
// every member to a fresh group id — membership is unchanged, so no link
// may be reported affected.
func TestSplitAffectedTotalMoveSkipped(t *testing.T) {
	p := MustPartition(4, 1)
	p.Split([]int32{0, 1}) // groups {0,1} and {2,3}
	if _, aff, _ := p.SplitAffected([]int32{2, 3}, nil); len(aff) != 0 {
		t.Errorf("total move of {2,3} reported affected links %v, want none", aff)
	}
}

// TestSplitMaintainsMembershipLists runs random split sequences and cross-
// checks the beta=1 membership lists against the gid array after every
// split, via SplitAffected's reported members.
func TestSplitMaintainsMembershipLists(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const l = 16
	p := MustPartition(l, 1)
	for step := 0; step < 60; step++ {
		path := randomPaths(rng, l, 1, 4)[0]
		_, aff, _ := p.SplitAffected(path, nil)
		// Every affected link must share its group with at least one other
		// affected link or have just left one — weak check; the strong
		// check is list/gid agreement:
		for g := int32(0); int(g) < l*4; g++ {
			members := map[int32]bool{}
			for e := int32(0); int(e) < l; e++ {
				if p.gid[e] == g {
					members[e] = true
				}
			}
			count := 0
			if int(g) < len(p.memberHead) {
				for e := p.memberHead[g]; e >= 0; e = p.memberNext[e] {
					if !members[e] {
						t.Fatalf("step %d: list of group %d contains %d whose gid is %d", step, g, e, p.gid[e])
					}
					count++
				}
			}
			if count != len(members) {
				t.Fatalf("step %d: group %d list has %d members, gid says %d", step, g, count, len(members))
			}
		}
		_ = aff
	}
}
