package refine

import (
	"math/rand"
	"sort"
	"testing"
)

// sigOracle mirrors a Partition by explicit signature computation: every
// element (physical link, pair, triple) carries the byte string of its
// on-path bits over the splits applied so far. It is the brute-force ground
// truth the incremental engine is differentially tested against — O(E·P)
// per split, no sharing with the production code paths.
type sigOracle struct {
	l, beta int
	elems   [][]int32 // element -> constituent physical links
	sigs    [][]byte  // element -> on-path bit per applied split
}

func newSigOracle(l, beta int) *sigOracle {
	o := &sigOracle{l: l, beta: beta}
	for i := 0; i < l; i++ {
		o.elems = append(o.elems, []int32{int32(i)})
	}
	if beta >= 2 {
		for i := 0; i < l; i++ {
			for j := i + 1; j < l; j++ {
				o.elems = append(o.elems, []int32{int32(i), int32(j)})
			}
		}
	}
	if beta >= 3 {
		for i := 0; i < l; i++ {
			for j := i + 1; j < l; j++ {
				for k := j + 1; k < l; k++ {
					o.elems = append(o.elems, []int32{int32(i), int32(j), int32(k)})
				}
			}
		}
	}
	o.sigs = make([][]byte, len(o.elems))
	return o
}

func (o *sigOracle) onPath(e int, inPath []bool) bool {
	for _, c := range o.elems[e] {
		if inPath[c] {
			return true
		}
	}
	return false
}

// apply records one split path (duplicate link ids allowed — signatures are
// set-semantic) and returns the brute-force expectation: the number of
// properly split signature classes and the sorted affected-link set — the
// union of constituents of every member of every class with at least one
// member on the path and at least one off it.
func (o *sigOracle) apply(path []int32) (split int, affected []int32) {
	inPath := make([]bool, o.l)
	for _, l := range path {
		inPath[l] = true
	}
	if o.beta == 0 {
		return 0, nil
	}
	classes := make(map[string][]int)
	for e := range o.elems {
		classes[string(o.sigs[e])] = append(classes[string(o.sigs[e])], e)
	}
	affSet := make(map[int32]bool)
	for _, members := range classes {
		on, off := false, false
		for _, e := range members {
			if o.onPath(e, inPath) {
				on = true
			} else {
				off = true
			}
		}
		if on && off {
			split++
			for _, e := range members {
				for _, c := range o.elems[e] {
					affSet[c] = true
				}
			}
		}
	}
	for e := range o.elems {
		bit := byte(0)
		if o.onPath(e, inPath) {
			bit = 1
		}
		o.sigs[e] = append(o.sigs[e], bit)
	}
	for l := range affSet {
		affected = append(affected, l)
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })
	return split, affected
}

// groupsSingles recomputes the oracle's class and singleton counts.
func (o *sigOracle) groupsSingles() (groups, singles int) {
	classes := make(map[string]int)
	for e := range o.elems {
		classes[string(o.sigs[e])]++
	}
	for _, n := range classes {
		if n == 1 {
			singles++
		}
	}
	return len(classes), singles
}

// checkSplitAffected drives one split through both engines and fails the
// test on any divergence: split count, exact flag, affected set (compared
// as sorted sets — and the incremental list must already be duplicate-free),
// group/singleton counts.
func checkSplitAffected(t *testing.T, p *Partition, o *sigOracle, path []int32, tag string) {
	t.Helper()
	wantSplit, wantAff := o.apply(path)
	split, aff, exact := p.SplitAffected(path, nil)
	if !exact {
		t.Fatalf("%s: SplitAffected(%v) not exact at beta=%d", tag, path, o.beta)
	}
	if split != wantSplit {
		t.Fatalf("%s: SplitAffected(%v) split %d groups, oracle %d", tag, path, split, wantSplit)
	}
	seen := make(map[int32]bool, len(aff))
	for _, l := range aff {
		if seen[l] {
			t.Fatalf("%s: affected list repeats link %d: %v", tag, l, aff)
		}
		seen[l] = true
	}
	sorted := append([]int32(nil), aff...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if len(sorted) != len(wantAff) {
		t.Fatalf("%s: SplitAffected(%v) affected %v, oracle %v", tag, path, sorted, wantAff)
	}
	for i := range sorted {
		if sorted[i] != wantAff[i] {
			t.Fatalf("%s: SplitAffected(%v) affected %v, oracle %v", tag, path, sorted, wantAff)
		}
	}
	wantGroups, wantSingles := o.groupsSingles()
	if o.beta >= 1 && (p.Groups() != wantGroups || p.Singletons() != wantSingles) {
		t.Fatalf("%s: groups=%d singles=%d, oracle %d/%d", tag, p.Groups(), p.Singletons(), wantGroups, wantSingles)
	}
}

// TestSplitAffectedDifferential is the randomized differential harness: for
// every supported beta, >= 120 random (topology size, split sequence) cases
// are driven through Partition.SplitAffected and the signature oracle in
// lockstep. Paths deliberately include duplicate link ids about a third of
// the time, pinning the dedup contract alongside exactness.
func TestSplitAffectedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for _, beta := range []int{0, 1, 2, 3} {
		maxL := 12
		if beta == 3 {
			maxL = 9 // keep C(l,3) oracle work trivial
		}
		for trial := 0; trial < 120; trial++ {
			l := 2 + rng.Intn(maxL-1)
			p := MustPartition(l, beta)
			o := newSigOracle(l, beta)
			nPaths := 1 + rng.Intn(10)
			for pi := 0; pi < nPaths; pi++ {
				n := 1 + rng.Intn(l)
				perm := rng.Perm(l)[:n]
				path := make([]int32, 0, n+2)
				for _, v := range perm {
					path = append(path, int32(v))
				}
				if rng.Intn(3) == 0 {
					// Repeat a couple of links: the engines must agree
					// under set semantics.
					path = append(path, path[rng.Intn(len(path))], path[0])
				}
				checkSplitAffected(t, p, o, path, "trial")
			}
		}
	}
}

// FuzzSplitAffected feeds arbitrary byte strings through the differential
// harness: the first two bytes pick (l, beta), 0xFF bytes delimit paths, and
// every other byte contributes the link id b % l — so the fuzzer freely
// explores duplicate ids, repeated paths, single-link paths and long
// sequences. Run with `go test -fuzz FuzzSplitAffected ./internal/refine`.
func FuzzSplitAffected(f *testing.F) {
	f.Add([]byte{4, 2, 0, 1, 0xFF, 2, 3, 0xFF, 0, 2})
	f.Add([]byte{7, 3, 0, 1, 2, 3, 4, 5, 6, 0xFF, 1, 1, 1})
	f.Add([]byte{2, 1, 0, 0xFF, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		l := 2 + int(data[0])%8
		beta := int(data[1]) % 4
		p := MustPartition(l, beta)
		o := newSigOracle(l, beta)
		var path []int32
		paths := 0
		flush := func() {
			if len(path) == 0 || paths >= 16 {
				return
			}
			checkSplitAffected(t, p, o, path, "fuzz")
			paths++
			path = path[:0]
		}
		for _, b := range data[2:] {
			if b == 0xFF {
				flush()
				continue
			}
			if len(path) < 2*l {
				path = append(path, int32(int(b)%l))
			}
		}
		flush()
	})
}
