package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/detector-net/detector/internal/metrics"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
)

// promSample is one parsed text-exposition sample line.
type promSample struct {
	series string // name + label set, verbatim
	value  string
}

// parseProm parses a Prometheus text exposition (format 0.0.4), failing the
// test on any malformed line: bad metric names, HELP/TYPE for undeclared or
// re-declared metrics, unparseable samples, or duplicate series.
func parseProm(t *testing.T, text string) map[string]promSample {
	t.Helper()
	types := make(map[string]string)
	samples := make(map[string]promSample)
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			name, kind := parts[0], parts[1]
			if !metricNameRe.MatchString(name) {
				t.Fatalf("TYPE line declares invalid metric name %q", name)
			}
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Fatalf("TYPE line declares unknown kind %q: %q", kind, line)
			}
			if prev, ok := types[name]; ok {
				t.Fatalf("metric %q TYPE-declared twice (%s, then %s)", name, prev, kind)
			}
			types[name] = kind
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !metricNameRe.MatchString(name) {
				t.Fatalf("malformed HELP line: %q", line)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line: %q", line)
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line: %q", line)
		}
		name, labels, value := m[1], m[2], m[3]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			t.Fatalf("sample %q has non-numeric value %q", line, value)
		}
		// A sample belongs to its own TYPE, or to a histogram family via the
		// _bucket/_sum/_count suffixes.
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if cut, ok := strings.CutSuffix(name, suf); ok && types[cut] == "histogram" {
				base = cut
				break
			}
		}
		if _, ok := types[base]; !ok {
			t.Fatalf("sample %q has no TYPE declaration", line)
		}
		series := name + labels
		if _, dup := samples[series]; dup {
			t.Fatalf("duplicate series %q", series)
		}
		samples[series] = promSample{series: series, value: value}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

// TestPromExpositionWellFormed populates one metric of every kind, scrapes
// the text exposition through the real handler, and structurally validates
// every line.
func TestPromExpositionWellFormed(t *testing.T) {
	metrics.NewCounter("test_expo_flat").Inc()
	NewGauge("test_expo_gauge", "a gauge").Set(42)
	NewCounterVec("test_expo_family", "a family", "who", 8).With("a").Add(3)
	h := NewHistogram("test_expo_hist", "a histogram")
	h.Observe(3 * time.Millisecond)
	h.Observe(70 * time.Microsecond)
	hv := NewHistogramVec("test_expo_histfam", "a histogram family", "op", 4)
	hv.With("x").Observe(time.Millisecond)

	srv := httptest.NewServer(MetricsHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("text exposition Content-Type = %q, want the 0.0.4 text format", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	samples := parseProm(t, buf.String())

	for _, want := range []string{
		"test_expo_flat",
		"test_expo_gauge",
		`test_expo_family{who="a"}`,
		`test_expo_hist_bucket{le="+Inf"}`,
		"test_expo_hist_sum",
		"test_expo_hist_count",
		`test_expo_histfam_bucket{op="x",le="+Inf"}`,
		`test_expo_histfam_count{op="x"}`,
	} {
		if _, ok := samples[want]; !ok {
			t.Errorf("exposition is missing series %q", want)
		}
	}
}

// TestJSONMatchesText pins the dual-exposition contract: every counter,
// gauge and histogram reports the same value through the JSON snapshot as
// through the Prometheus text format.
func TestJSONMatchesText(t *testing.T) {
	metrics.NewCounter("test_dual_flat").Add(11)
	NewGauge("test_dual_gauge", "g").Set(-4)
	NewCounterVec("test_dual_vec", "v", "k", 4).With("z").Add(9)
	NewHistogram("test_dual_hist", "h").Observe(5 * time.Millisecond)

	var buf bytes.Buffer
	WriteProm(&buf)
	samples := parseProm(t, buf.String())
	snap := TakeSnapshot()

	check := func(series string, want string) {
		t.Helper()
		got, ok := samples[series]
		if !ok {
			t.Fatalf("text exposition is missing %q", series)
		}
		if got.value != want {
			t.Errorf("series %q: text %s, JSON %s", series, got.value, want)
		}
	}
	for name, v := range snap.Counters {
		check(name, strconv.FormatInt(v, 10))
	}
	for name, v := range snap.Gauges {
		check(name, strconv.FormatInt(v, 10))
	}
	for series, hs := range snap.Histograms {
		// series is `name` or `name{label="value"}`; splice the histogram
		// suffixes in before the label set.
		name, labels, _ := strings.Cut(series, "{")
		if labels != "" {
			labels = "{" + labels
		}
		check(name+"_count"+labels, strconv.FormatUint(hs.Count, 10))
		check(name+"_sum"+labels, formatFloat(hs.SumSeconds))
		for _, b := range hs.Buckets {
			le := fmt.Sprintf("le=%q", b.LE)
			bseries := name + "_bucket{" + le + "}"
			if labels != "" {
				bseries = name + "_bucket{" + strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}") + "," + le + "}"
			}
			check(bseries, strconv.FormatUint(b.Cumulative, 10))
		}
	}

	// And the JSON handler itself round-trips the same shape.
	srv := httptest.NewServer(MetricsHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var viaHTTP Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&viaHTTP); err != nil {
		t.Fatalf("JSON exposition undecodable: %v", err)
	}
	if viaHTTP.Counters["test_dual_flat"] != 11 {
		t.Fatalf("JSON exposition counter = %d, want 11", viaHTTP.Counters["test_dual_flat"])
	}
}
