// Package obs is the cycle-scoped observability plane: zero-alloc hot-path
// instrumentation primitives (fixed power-of-two-bucket latency histograms,
// gauges, and labeled counter families with bounded cardinality), a
// cycle-scoped tracer whose IDs propagate to remote shards over the
// X-Detector-Cycle header, Prometheus text + JSON exposition for every
// service's GET /metrics, and the /healthz, /statusz and pprof surfaces.
//
// The design follows AMON's principle that a monitoring system must itself
// be continuously measurable at bounded cost: every primitive is a fixed
// number of atomic operations on pre-registered storage — no allocation, no
// locking, no unbounded label growth — so instrumentation can stay on the
// construction and localization critical paths permanently rather than
// living only in offline benchmarks.
package obs

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: finite upper bounds at every power of two from
// 2^bucketMinExp ns (~1 µs) through 2^(bucketMinExp+numFinite-1) ns
// (~17.2 s), plus a +Inf bucket. Power-of-two bounds make the hot path one
// bits.Len64 and three atomic adds.
const (
	bucketMinExp = 10 // smallest finite bound: 2^10 ns ≈ 1 µs
	numFinite    = 25 // finite bounds 2^10 .. 2^34 ns
	numBuckets   = numFinite + 1
)

// Histogram is a fixed-bucket latency histogram. Observe is safe for
// concurrent use and allocation-free.
type Histogram struct {
	name, help string
	buckets    [numBuckets]atomic.Uint64
	count      atomic.Uint64
	sumNS      atomic.Int64
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	idx := 0
	if ns > 1<<bucketMinExp {
		// Bucket i holds ns in (2^(minExp+i-1), 2^(minExp+i)]; ns-1 keeps
		// exact powers of two in the bucket whose bound they equal, so the
		// exposition's `le` is a true ≤.
		idx = bits.Len64(uint64(ns-1)) - bucketMinExp
		if idx > numFinite {
			idx = numFinite
		}
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// SumSeconds returns the sum of all observed durations in seconds.
func (h *Histogram) SumSeconds() float64 { return float64(h.sumNS.Load()) / 1e9 }

// bucketBoundSeconds is the upper bound of finite bucket i, in seconds.
func bucketBoundSeconds(i int) float64 {
	return float64(int64(1)<<(bucketMinExp+i)) / 1e9
}

// Bucket is one cumulative histogram bucket in a snapshot. LE is the upper
// bound in seconds formatted exactly as the Prometheus text exposition
// prints it ("+Inf" for the last bucket), so the two expositions are
// comparable value for value.
type Bucket struct {
	LE         string `json:"le"`
	Cumulative uint64 `json:"count"`
}

// HistogramSnapshot is one histogram's state for the JSON exposition.
type HistogramSnapshot struct {
	Count      uint64   `json:"count"`
	SumSeconds float64  `json:"sum_seconds"`
	Buckets    []Bucket `json:"buckets"`
}

// snapshot reads the histogram's current state (not atomic across fields;
// concurrent observations may straddle the read, as with any live scrape).
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Buckets: make([]Bucket, numBuckets)}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if i < numFinite {
			le = formatFloat(bucketBoundSeconds(i))
		}
		s.Buckets[i] = Bucket{LE: le, Cumulative: cum}
	}
	s.Count = h.count.Load()
	s.SumSeconds = h.SumSeconds()
	return s
}

// Counter is a monotonically increasing counter, one child of a labeled
// CounterVec family.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (bulk increments: byte counts and the like).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value (shards alive, paths tracked).
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// OverflowLabel is the label value that absorbs every child past a family's
// cardinality bound: series count stays bounded no matter how label values
// churn, and the overflow series makes the truncation itself visible.
const OverflowLabel = "overflow"

// CounterVec is a labeled counter family with bounded cardinality: at most
// maxSeries distinct label values get their own child; later values share
// the OverflowLabel child.
type CounterVec struct {
	name, help, label string
	max               int

	mu       sync.RWMutex
	children map[string]*Counter
}

// With returns the child counter for a label value, creating it on first
// use (or the shared overflow child once the family is at its bound).
// Callers on hot paths should look the child up once and hold it.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c := v.children[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c := v.children[value]; c != nil {
		return c
	}
	if len(v.children) >= v.max {
		value = OverflowLabel
		if c := v.children[value]; c != nil {
			return c
		}
	}
	c = &Counter{}
	v.children[value] = c
	return c
}

// Len returns the number of live series in the family (test hook for the
// cardinality bound).
func (v *CounterVec) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.children)
}

// HistogramVec is a labeled histogram family with the same bounded
// cardinality contract as CounterVec.
type HistogramVec struct {
	name, help, label string
	max               int

	mu       sync.RWMutex
	children map[string]*Histogram
}

// With returns the child histogram for a label value (see CounterVec.With).
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h := v.children[value]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h := v.children[value]; h != nil {
		return h
	}
	if len(v.children) >= v.max {
		value = OverflowLabel
		if h := v.children[value]; h != nil {
			return h
		}
	}
	h = &Histogram{name: v.name, help: v.help}
	v.children[value] = h
	return h
}

// Len returns the number of live series in the family.
func (v *HistogramVec) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.children)
}

// registry holds every registered metric, keyed by name. Registration is
// idempotent by name (the same name always yields the same metric, so
// package-level declarations across packages cannot collide) but a name
// re-registered as a different kind panics: two packages fighting over one
// name with different types is a bug worth failing loudly on.
var reg = struct {
	mu        sync.Mutex
	hists     map[string]*Histogram
	histVecs  map[string]*HistogramVec
	countVecs map[string]*CounterVec
	gauges    map[string]*Gauge
}{
	hists:     make(map[string]*Histogram),
	histVecs:  make(map[string]*HistogramVec),
	countVecs: make(map[string]*CounterVec),
	gauges:    make(map[string]*Gauge),
}

func checkKind(name, kind string) {
	if _, ok := reg.hists[name]; ok && kind != "histogram" {
		panic(fmt.Sprintf("obs: %q already registered as histogram, now requested as %s", name, kind))
	}
	if _, ok := reg.histVecs[name]; ok && kind != "histogramvec" {
		panic(fmt.Sprintf("obs: %q already registered as histogram family, now requested as %s", name, kind))
	}
	if _, ok := reg.countVecs[name]; ok && kind != "countervec" {
		panic(fmt.Sprintf("obs: %q already registered as counter family, now requested as %s", name, kind))
	}
	if _, ok := reg.gauges[name]; ok && kind != "gauge" {
		panic(fmt.Sprintf("obs: %q already registered as gauge, now requested as %s", name, kind))
	}
}

// NewHistogram registers (or returns) the histogram under name.
func NewHistogram(name, help string) *Histogram {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if h, ok := reg.hists[name]; ok {
		return h
	}
	checkKind(name, "histogram")
	h := &Histogram{name: name, help: help}
	reg.hists[name] = h
	return h
}

// NewHistogramVec registers (or returns) the labeled histogram family under
// name. maxSeries bounds the family's cardinality (plus one overflow
// series).
func NewHistogramVec(name, help, label string, maxSeries int) *HistogramVec {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if v, ok := reg.histVecs[name]; ok {
		return v
	}
	checkKind(name, "histogramvec")
	v := &HistogramVec{name: name, help: help, label: label, max: maxSeries,
		children: make(map[string]*Histogram)}
	reg.histVecs[name] = v
	return v
}

// NewCounterVec registers (or returns) the labeled counter family under
// name, bounded at maxSeries distinct label values plus one overflow.
func NewCounterVec(name, help, label string, maxSeries int) *CounterVec {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if v, ok := reg.countVecs[name]; ok {
		return v
	}
	checkKind(name, "countervec")
	v := &CounterVec{name: name, help: help, label: label, max: maxSeries,
		children: make(map[string]*Counter)}
	reg.countVecs[name] = v
	return v
}

// NewGauge registers (or returns) the gauge under name.
func NewGauge(name, help string) *Gauge {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if g, ok := reg.gauges[name]; ok {
		return g
	}
	checkKind(name, "gauge")
	g := &Gauge{name: name, help: help}
	reg.gauges[name] = g
	return g
}

// Stages is the cross-service pipeline stage histogram family — the live
// per-cycle analog of the paper's Table 2/5 per-stage decomposition.
// Coordinator stages: materialize, decompose, assign, construct_dispatch,
// merge, serve. Diagnoser stages: ingest, window_close, localize, classify.
var Stages = NewHistogramVec("detector_stage_duration_seconds",
	"Per-cycle pipeline stage latency, one series per stage.", "stage", 32)
