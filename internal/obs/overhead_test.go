package obs

import (
	"testing"
	"time"
)

// TestInstrumentationOverheadBudget asserts the observability plane stays
// under its cost budget: one construction cycle's worth of instrumentation
// must cost less than 2% of the Fattree(16) in-process per-shard critical
// path recorded in ARCHITECTURE.md (162 ms). Comparing two full Fattree(16)
// constructions would put the 2% bound inside run-to-run noise, so the
// guard measures the instrumentation itself — the only part this package
// adds to the pipeline — against the recorded denominator.
func TestInstrumentationOverheadBudget(t *testing.T) {
	const (
		criticalPathNS = 162_000_000 // ARCHITECTURE.md Fattree(16), 4 shards, in-process
		budgetNS       = criticalPathNS * 2 / 100
		// One cycle on a 16-shard fleet: 6 coordinator + 4 diagnoser stage
		// observes, 2 spans per shard (construct + localize), a cycle
		// start/end, and the per-shard counter bumps.
		shards = 16
		iters  = 200
	)
	tr := NewTracer("bench", 8)
	stage := NewHistogramVec("test_overhead_stages", "t", "stage", 32)
	stages := []*Histogram{
		stage.With("materialize"), stage.With("decompose"), stage.With("assign"),
		stage.With("construct_dispatch"), stage.With("merge"), stage.With("serve"),
		stage.With("ingest"), stage.With("window_close"), stage.With("localize"),
		stage.With("classify"),
	}
	counters := NewCounterVec("test_overhead_counters", "t", "shard", 32)
	children := make([]*Counter, shards)
	for i := range children {
		children[i] = counters.With(string(rune('a' + i)))
	}

	start := time.Now()
	for n := 0; n < iters; n++ {
		cy := tr.StartCycle("construct")
		for _, h := range stages {
			h.Observe(time.Millisecond)
		}
		for s := 0; s < shards; s++ {
			cy.ShardSpan("construct", s).End()
			cy.ShardSpan("localize", s).End()
			children[s].Inc()
			children[s].Add(4096)
		}
		cy.End()
	}
	perCycle := time.Since(start).Nanoseconds() / iters

	if perCycle >= budgetNS {
		t.Fatalf("one cycle of instrumentation costs %s, budget is %s (2%% of the %s recorded critical path)",
			time.Duration(perCycle), time.Duration(budgetNS), time.Duration(criticalPathNS))
	}
	t.Logf("instrumentation per cycle: %s (budget %s)", time.Duration(perCycle), time.Duration(budgetNS))
}
