package obs

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestHistogramBuckets pins the power-of-two bucket placement: each finite
// bucket's `le` is a true ≤ (exact powers of two land in the bucket whose
// bound they equal), and everything past the last finite bound lands in
// +Inf.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		ns   int64
		want int // bucket index
	}{
		{0, 0},
		{1, 0},
		{1024, 0},                // == 2^10: bucket 0's bound
		{1025, 1},                // first value past 2^10
		{2048, 1},                // == 2^11
		{2049, 2},                //
		{1 << 34, numFinite - 1}, // the largest finite bound
		{1<<34 + 1, numFinite},   // +Inf
		{1 << 62, numFinite},     // way past: still +Inf
		{-5, 0},                  // negative clamps to zero
	}
	for _, tc := range cases {
		h := &Histogram{}
		h.Observe(time.Duration(tc.ns))
		for i := 0; i < numBuckets; i++ {
			want := uint64(0)
			if i == tc.want {
				want = 1
			}
			if got := h.buckets[i].Load(); got != want {
				t.Errorf("Observe(%dns): bucket[%d] = %d, want %d", tc.ns, i, got, want)
			}
		}
	}
}

// TestHistogramSnapshotCumulative checks the exposition invariants: buckets
// are cumulative and the +Inf bucket equals the count.
func TestHistogramSnapshotCumulative(t *testing.T) {
	h := &Histogram{}
	for _, d := range []time.Duration{500, 1500, 3000, 5 * time.Second, 20 * time.Second} {
		h.Observe(d)
	}
	s := h.snapshot()
	if len(s.Buckets) != numBuckets {
		t.Fatalf("snapshot has %d buckets, want %d", len(s.Buckets), numBuckets)
	}
	var prev uint64
	for i, b := range s.Buckets {
		if b.Cumulative < prev {
			t.Fatalf("bucket %d cumulative %d < previous %d", i, b.Cumulative, prev)
		}
		prev = b.Cumulative
	}
	if last := s.Buckets[numBuckets-1]; last.LE != "+Inf" || last.Cumulative != s.Count {
		t.Fatalf("+Inf bucket = {%s %d}, want {+Inf %d}", last.LE, last.Cumulative, s.Count)
	}
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	wantSum := float64(500+1500+3000+5_000_000_000+20_000_000_000) / 1e9
	if s.SumSeconds != wantSum {
		t.Fatalf("sum = %v, want %v", s.SumSeconds, wantSum)
	}
}

// TestHotPathAllocs pins the zero-allocation contract of every hot-path
// primitive: the instrumentation can live on the construction critical path
// only if a cycle's worth of observes never touches the allocator.
func TestHotPathAllocs(t *testing.T) {
	h := NewHistogram("test_allocs_hist", "t")
	vec := NewCounterVec("test_allocs_vec", "t", "k", 4)
	child := vec.With("a")
	g := NewGauge("test_allocs_gauge", "t")
	cases := map[string]func(){
		"Histogram.Observe": func() { h.Observe(time.Microsecond) },
		"Counter.Inc":       func() { child.Inc() },
		"Counter.Add":       func() { child.Add(7) },
		"Gauge.Set":         func() { g.Set(3) },
		"CounterVec.With":   func() { vec.With("a") }, // warm-path lookup
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s allocates %v per op, want 0", name, allocs)
		}
	}
}

// TestBoundedCardinality checks that a family never exceeds its bound: the
// first maxSeries values get their own child, everything after shares the
// overflow series.
func TestBoundedCardinality(t *testing.T) {
	vec := NewCounterVec("test_bounded_vec", "t", "k", 3)
	for i := 0; i < 50; i++ {
		vec.With(fmt.Sprintf("v%d", i)).Inc()
	}
	if got := vec.Len(); got != 4 { // 3 real + 1 overflow
		t.Fatalf("family has %d series, want 4 (3 + overflow)", got)
	}
	if got := vec.With(OverflowLabel).Value(); got != 47 {
		t.Fatalf("overflow series absorbed %d increments, want 47", got)
	}
	// The overflow child is shared: a later novel value increments it too.
	vec.With("v99").Inc()
	if got := vec.With(OverflowLabel).Value(); got != 48 {
		t.Fatalf("overflow after one more novel value = %d, want 48", got)
	}

	hv := NewHistogramVec("test_bounded_histvec", "t", "k", 2)
	for i := 0; i < 10; i++ {
		hv.With(fmt.Sprintf("v%d", i)).Observe(time.Microsecond)
	}
	if got := hv.Len(); got != 3 {
		t.Fatalf("histogram family has %d series, want 3 (2 + overflow)", got)
	}
}

// TestRegistryIdempotentByName checks that re-registering a name returns the
// same metric, and that re-registering as a different kind panics.
func TestRegistryIdempotentByName(t *testing.T) {
	a := NewHistogram("test_idem_hist", "first")
	b := NewHistogram("test_idem_hist", "second help is ignored")
	if a != b {
		t.Fatal("same name registered twice yielded different histograms")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering a histogram name as a gauge did not panic")
		}
	}()
	NewGauge("test_idem_hist", "kind clash")
}

// TestTracerRingAndJoin covers the cycle ring: eviction at capacity,
// strictly increasing minted IDs, and Join filing spans under an externally
// minted ID (creating the cycle on first sight, reusing it after).
func TestTracerRingAndJoin(t *testing.T) {
	tr := NewTracer("test", 3)
	var ids []uint64
	for i := 0; i < 5; i++ {
		cy := tr.StartCycle("construct")
		cy.Span("work").End()
		cy.End()
		ids = append(ids, cy.ID())
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("cycle IDs not strictly increasing: %v", ids)
		}
	}
	tl := tr.Timeline()
	if len(tl) != 3 {
		t.Fatalf("ring kept %d cycles, want 3", len(tl))
	}
	// Newest first, and the two oldest evicted.
	if tl[0].ID != ids[4] || tl[2].ID != ids[2] {
		t.Fatalf("timeline IDs %v, want newest-first %v", []uint64{tl[0].ID, tl[1].ID, tl[2].ID}, ids[2:])
	}

	// A remote shard joins the coordinator's ID: both requests land on the
	// same cycle, which carries the foreign ID verbatim.
	remote := NewTracer("shard", 4)
	cy1 := remote.Join(ids[4], "remote")
	cy1.ShardSpan("construct", -1).End()
	cy2 := remote.Join(ids[4], "remote")
	if cy1 != cy2 {
		t.Fatal("Join with the same ID created a second cycle")
	}
	cy2.ShardSpan("localize", -1).End()
	rtl := remote.Timeline()
	if len(rtl) != 1 || rtl[0].ID != ids[4] || len(rtl[0].Spans) != 2 {
		t.Fatalf("joined timeline = %+v, want one cycle with 2 spans under ID %d", rtl, ids[4])
	}
	if remote.Join(0, "remote") != nil {
		t.Fatal("Join(0) must return nil (untraced request)")
	}
}

// TestNilSafety: every trace call site runs unguarded, so the nil paths must
// all be no-ops.
func TestNilSafety(t *testing.T) {
	var cy *Cycle
	if cy.ID() != 0 {
		t.Fatal("nil cycle ID != 0")
	}
	sp := cy.Span("x")
	sp.End()
	sp.EndErr(fmt.Errorf("boom"))
	cy.ShardSpan("y", 3).End()
	cy.End()
	var tr *Tracer
	if tr.StartCycle("k") != nil || tr.Join(7, "k") != nil || tr.Timeline() != nil {
		t.Fatal("nil tracer must return nil cycles and timelines")
	}
}

// TestSpanErrAnnotation checks span error propagation and shard tagging.
func TestSpanErrAnnotation(t *testing.T) {
	tr := NewTracer("test", 2)
	cy := tr.StartCycle("construct")
	cy.ShardSpan("construct", 2).EndErr(fmt.Errorf("shard 2: killed"))
	cy.End()
	tl := tr.Timeline()
	sp := tl[0].Spans[0]
	if sp.Shard != 2 || !strings.Contains(sp.Err, "killed") || sp.Name != "construct" {
		t.Fatalf("span = %+v, want shard 2, err containing 'killed'", sp)
	}
}
