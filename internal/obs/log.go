package obs

import (
	"log/slog"
	"os"
	"sync/atomic"
)

// level gates the default logger; SetLevel adjusts it live (detectord -v).
var level = func() *slog.LevelVar {
	v := new(slog.LevelVar)
	// Warn by default: operational anomalies (quarantines, failovers)
	// surface, per-cycle chatter stays out of test and CLI output.
	v.Set(slog.LevelWarn)
	return v
}()

var logger atomic.Pointer[slog.Logger]

func init() {
	logger.Store(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})))
}

// Logger returns the process-wide structured logger. Events on data-path
// cycles carry a "cycle" attribute so log lines join the /statusz
// timelines and remote shard spans they describe.
func Logger() *slog.Logger { return logger.Load() }

// SetLogger replaces the process-wide logger (tests, embedders).
func SetLogger(l *slog.Logger) {
	if l != nil {
		logger.Store(l)
	}
}

// SetLevel adjusts the default logger's threshold.
func SetLevel(l slog.Level) { level.Set(l) }
