package obs

import (
	"sync"
	"time"
)

// CycleHeader is the HTTP header that carries a cycle ID from the
// coordinator (or diagnoser) to a remote shard service, so the shard's
// server-side spans nest under the caller's timeline: same ID on both
// sides, one logical cycle across processes.
const CycleHeader = "X-Detector-Cycle"

// Span is one timed stage inside a cycle. Offsets are relative to the
// cycle's start so a timeline reads as a flame view without clock math.
type Span struct {
	Name string `json:"name"`
	// Shard is the shard the span ran on or against; -1 when the span is
	// not shard-scoped.
	Shard   int    `json:"shard"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Err     string `json:"err,omitempty"`
}

// Cycle is one in-flight (or finished) cycle: a minted ID plus the spans
// recorded under it. All methods are nil-safe no-ops, so call sites need no
// tracing-enabled guards.
type Cycle struct {
	id    uint64
	kind  string
	start time.Time

	mu    sync.Mutex
	spans []Span
	durUS int64
	ended bool
}

// ID returns the cycle's ID (0 on a nil cycle).
func (c *Cycle) ID() uint64 {
	if c == nil {
		return 0
	}
	return c.id
}

// Span starts a non-shard-scoped span. End the returned handle to record.
func (c *Cycle) Span(name string) *Running { return c.ShardSpan(name, -1) }

// ShardSpan starts a span attributed to a shard. Safe to call from
// concurrent dispatch goroutines.
func (c *Cycle) ShardSpan(name string, shard int) *Running {
	if c == nil {
		return nil
	}
	return &Running{c: c, name: name, shard: shard, start: time.Now()}
}

// End marks the cycle complete, fixing its total duration. Idempotent.
func (c *Cycle) End() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.ended {
		c.ended = true
		c.durUS = time.Since(c.start).Microseconds()
	}
}

// Running is a started span; End (or EndErr) records it on its cycle.
type Running struct {
	c     *Cycle
	name  string
	shard int
	start time.Time
}

// End records the span.
func (r *Running) End() { r.EndErr(nil) }

// EndErr records the span, annotating a failure.
func (r *Running) EndErr(err error) {
	if r == nil {
		return
	}
	sp := Span{
		Name:    r.name,
		Shard:   r.shard,
		StartUS: r.start.Sub(r.c.start).Microseconds(),
		DurUS:   time.Since(r.start).Microseconds(),
	}
	if err != nil {
		sp.Err = err.Error()
	}
	c := r.c
	c.mu.Lock()
	c.spans = append(c.spans, sp)
	// A joined remote cycle is never explicitly ended; let its duration
	// track the furthest span so the timeline still has an honest extent.
	if !c.ended {
		if end := sp.StartUS + sp.DurUS; end > c.durUS {
			c.durUS = end
		}
	}
	c.mu.Unlock()
}

// CycleSnapshot is one cycle's timeline as served at GET /statusz. The ID
// marshals as a string: cycle IDs use the full uint64 range, past
// JavaScript's exact-integer window.
type CycleSnapshot struct {
	ID    uint64    `json:"id,string"`
	Kind  string    `json:"kind"`
	Start time.Time `json:"start"`
	DurUS int64     `json:"dur_us"`
	Spans []Span    `json:"spans"`
}

// Tracer keeps the last-N cycles of one service in a ring. A nil Tracer is
// valid and records nothing.
type Tracer struct {
	service string
	cap     int

	mu     sync.Mutex
	lastID uint64
	ring   []*Cycle // oldest first
}

// NewTracer builds a tracer keeping the last capacity cycles.
func NewTracer(service string, capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{service: service, cap: capacity}
}

// mintID issues a unique, strictly increasing cycle ID. Wall-clock
// nanoseconds seed it so IDs are unique across processes too — a remote
// shard files the coordinator's ID, never one of its own.
func (t *Tracer) mintID() uint64 {
	id := uint64(time.Now().UnixNano())
	if id <= t.lastID {
		id = t.lastID + 1
	}
	t.lastID = id
	return id
}

// pushLocked appends a cycle, evicting the oldest past capacity.
func (t *Tracer) pushLocked(c *Cycle) {
	t.ring = append(t.ring, c)
	if len(t.ring) > t.cap {
		copy(t.ring, t.ring[len(t.ring)-t.cap:])
		t.ring = t.ring[:t.cap]
	}
}

// StartCycle mints a cycle ID and opens a new timeline under it.
func (t *Tracer) StartCycle(kind string) *Cycle {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c := &Cycle{id: t.mintID(), kind: kind, start: time.Now()}
	t.pushLocked(c)
	return c
}

// Join returns the cycle with the given externally minted ID, opening it on
// first sight — how a shard service files request spans under the
// coordinator's timeline. id 0 (no header) returns nil: untraced.
func (t *Tracer) Join(id uint64, kind string) *Cycle {
	if t == nil || id == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.ring) - 1; i >= 0; i-- {
		if t.ring[i].id == id {
			return t.ring[i]
		}
	}
	c := &Cycle{id: id, kind: kind, start: time.Now()}
	t.pushLocked(c)
	return c
}

// Timeline snapshots the retained cycles, newest first.
func (t *Tracer) Timeline() []CycleSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	cycles := append([]*Cycle(nil), t.ring...)
	t.mu.Unlock()
	out := make([]CycleSnapshot, 0, len(cycles))
	for i := len(cycles) - 1; i >= 0; i-- {
		c := cycles[i]
		c.mu.Lock()
		snap := CycleSnapshot{
			ID: c.id, Kind: c.kind, Start: c.start, DurUS: c.durUS,
			Spans: append([]Span(nil), c.spans...),
		}
		c.mu.Unlock()
		out = append(out, snap)
	}
	return out
}
