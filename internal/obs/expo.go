package obs

import (
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"

	"github.com/detector-net/detector/internal/httpx"
	"github.com/detector-net/detector/internal/metrics"
)

// formatFloat renders a float the way both expositions print it, so text
// and JSON stay comparable value for value.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot is the JSON exposition: every registered metric, including the
// flat internal/metrics counters the services have always served, in one
// structure whose values match the Prometheus text exposition exactly.
type Snapshot struct {
	// Counters maps series name (label-qualified for family children, e.g.
	// `shardrpc_client_requests{shard="0"}`) to value.
	Counters map[string]int64 `json:"counters"`
	// Gauges maps gauge name to value.
	Gauges map[string]int64 `json:"gauges"`
	// Histograms maps series name to cumulative bucket state.
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// TakeSnapshot collects the current value of every metric in the process:
// the obs registry plus the legacy flat counters from internal/metrics
// (which this package's exposition subsumes rather than replaces).
func TakeSnapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for name, v := range metrics.Counters() {
		s.Counters[name] = v
	}
	reg.mu.Lock()
	hists := make(map[string]*Histogram, len(reg.hists))
	for n, h := range reg.hists {
		hists[n] = h
	}
	histVecs := make(map[string]*HistogramVec, len(reg.histVecs))
	for n, v := range reg.histVecs {
		histVecs[n] = v
	}
	countVecs := make(map[string]*CounterVec, len(reg.countVecs))
	for n, v := range reg.countVecs {
		countVecs[n] = v
	}
	gauges := make(map[string]*Gauge, len(reg.gauges))
	for n, g := range reg.gauges {
		gauges[n] = g
	}
	reg.mu.Unlock()

	for name, h := range hists {
		s.Histograms[name] = h.snapshot()
	}
	for name, v := range histVecs {
		v.mu.RLock()
		for lv, h := range v.children {
			s.Histograms[series(name, v.label, lv)] = h.snapshot()
		}
		v.mu.RUnlock()
	}
	for name, v := range countVecs {
		v.mu.RLock()
		for lv, c := range v.children {
			s.Counters[series(name, v.label, lv)] = c.Value()
		}
		v.mu.RUnlock()
	}
	for name, g := range gauges {
		s.Gauges[name] = g.Value()
	}
	return s
}

// series renders a label-qualified series name in the Prometheus text
// syntax, which the JSON exposition reuses as its map key.
func series(name, label, value string) string {
	return fmt.Sprintf("%s{%s=%q}", name, label, value)
}

// escapeHelp escapes a HELP string per the text exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// sortedKeys returns m's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteProm writes the Prometheus text exposition (format 0.0.4) of every
// metric in the process: flat counters, counter families, gauges, and
// histograms with cumulative power-of-two `le` buckets.
func WriteProm(w io.Writer) {
	flat := metrics.Counters()
	for _, name := range sortedKeys(flat) {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, flat[name])
	}

	reg.mu.Lock()
	histNames := sortedKeys(reg.hists)
	histVecNames := sortedKeys(reg.histVecs)
	countVecNames := sortedKeys(reg.countVecs)
	gaugeNames := sortedKeys(reg.gauges)
	hists := reg.hists
	histVecs := reg.histVecs
	countVecs := reg.countVecs
	gauges := reg.gauges
	reg.mu.Unlock()

	for _, name := range countVecNames {
		v := countVecs[name]
		v.mu.RLock()
		values := sortedKeys(v.children)
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, escapeHelp(v.help), name)
		for _, lv := range values {
			fmt.Fprintf(w, "%s %d\n", series(name, v.label, lv), v.children[lv].Value())
		}
		v.mu.RUnlock()
	}
	for _, name := range gaugeNames {
		g := gauges[name]
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
			name, escapeHelp(g.help), name, name, g.Value())
	}
	for _, name := range histNames {
		h := hists[name]
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, escapeHelp(h.help), name)
		writePromHistogram(w, name, "", "", h.snapshot())
	}
	for _, name := range histVecNames {
		v := histVecs[name]
		v.mu.RLock()
		values := sortedKeys(v.children)
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, escapeHelp(v.help), name)
		for _, lv := range values {
			writePromHistogram(w, name, v.label, lv, v.children[lv].snapshot())
		}
		v.mu.RUnlock()
	}
}

// writePromHistogram writes one histogram series set: cumulative buckets,
// sum and count, with an optional family label on every line.
func writePromHistogram(w io.Writer, name, label, value string, s HistogramSnapshot) {
	for _, b := range s.Buckets {
		if label == "" {
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, b.LE, b.Cumulative)
		} else {
			fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n", name, label, value, b.LE, b.Cumulative)
		}
	}
	suffix := ""
	if label != "" {
		suffix = fmt.Sprintf("{%s=%q}", label, value)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, suffix, formatFloat(s.SumSeconds))
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, s.Count)
}

// wantsJSON reports whether a /metrics request asked for the JSON
// exposition (?format=json, or an Accept header naming application/json);
// everything else gets the Prometheus text format.
func wantsJSON(r *http.Request) bool {
	if r.URL.Query().Get("format") == "json" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}

// MetricsHandler serves GET /metrics for every service: Prometheus text by
// default, the JSON Snapshot on request. The two expositions report
// identical values (pinned by test).
func MetricsHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !httpx.RequireMethod(w, r, http.MethodGet) {
			return
		}
		if wantsJSON(r) {
			httpx.WriteJSON(w, TakeSnapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteProm(w)
	}
}

// Health is the wire shape of GET /healthz.
type Health struct {
	// Status is "ok" or "degraded"; the HTTP status is 200 either way
	// (degraded is operating information, not an outage), and anything
	// other than a parseable body means the process is gone.
	Status  string `json:"status"`
	Service string `json:"service"`
	// Detail explains a degraded status.
	Detail string `json:"detail,omitempty"`
	// UnhealthyShards lists shard ids out of the plane (quarantined or
	// TTL-expired) on services that own a shard fleet.
	UnhealthyShards []int `json:"unhealthy_shards,omitempty"`
}

// HealthzHandler serves GET /healthz from a live report callback.
func HealthzHandler(report func() Health) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !httpx.RequireMethod(w, r, http.MethodGet) {
			return
		}
		httpx.WriteJSON(w, report())
	}
}

// Statusz is the wire shape of GET /statusz: the service's recent cycle
// timelines plus a service-specific snapshot (placement and negotiated
// codecs on the controller, engine fingerprint on a shard, window state on
// the diagnoser).
type Statusz struct {
	Service string          `json:"service"`
	Cycles  []CycleSnapshot `json:"cycles"`
	Detail  any             `json:"detail,omitempty"`
}

// StatuszHandler serves GET /statusz from a tracer and a detail callback
// (nil for none).
func StatuszHandler(service string, t *Tracer, detail func() any) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !httpx.RequireMethod(w, r, http.MethodGet) {
			return
		}
		st := Statusz{Service: service, Cycles: t.Timeline()}
		if detail != nil {
			st.Detail = detail()
		}
		httpx.WriteJSON(w, st)
	}
}

// PprofMux returns a mux serving net/http/pprof at /debug/pprof/ without
// touching http.DefaultServeMux — the profiling surface stays off unless a
// process opts in (detectord -pprof).
func PprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
