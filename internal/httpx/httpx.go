// Package httpx holds the small JSON-over-HTTP conventions shared by the
// control-plane services (controller, diagnoser, watchdog): structured
// error bodies and method guards, so that a misbehaving agent gets a
// machine-readable reason instead of free-text or a silent drop.
package httpx

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// ErrorBody is the wire shape of every error response.
type ErrorBody struct {
	Error string `json:"error"`
}

// Error writes a JSON error body with the given status code.
func Error(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// Encoding a flat struct cannot fail; ignore the writer's error as
	// net/http handlers conventionally do.
	_ = json.NewEncoder(w).Encode(ErrorBody{Error: fmt.Sprintf(format, args...)})
}

// RequireMethod enforces the handler's method, answering 405 with an Allow
// header otherwise. Returns true when the request may proceed.
func RequireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		Error(w, http.StatusMethodNotAllowed, "%s required, got %s", method, r.Method)
		return false
	}
	return true
}

// WriteJSON writes v with a 200 status and JSON content type.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing useful left to send.
		return
	}
}
