package pmc

import (
	"testing"

	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

// fig3PathSet reproduces the routing matrix of paper Fig. 3:
// p1={l1,l2}, p2={l1,l3}, p3={l3}.
func fig3PathSet() *route.SlicePathSet {
	return route.NewSlicePathSet([][]topo.LinkID{
		{0, 1},
		{0, 2},
		{2},
	}, nil)
}

func TestConstructFig3Example(t *testing.T) {
	ps := fig3PathSet()
	res, err := Construct(ps, 3, Options{Alpha: 1, Beta: 1})
	if err != nil {
		t.Fatal(err)
	}
	// p1 and p2 alone give 1-coverage and 1-identifiability, exactly as the
	// paper's example argues.
	if len(res.Selected) != 2 {
		t.Fatalf("selected %v, want 2 paths", res.Selected)
	}
	if !res.Stats.CoverageMet || !res.Stats.IdentMet {
		t.Fatalf("stats report unmet targets: %+v", res.Stats)
	}
	probes := route.NewProbes(ps, res.Selected, 3)
	v := Verify(probes, []topo.LinkID{0, 1, 2}, true)
	if v.MinCoverage < 1 || !v.Identifiable1 {
		t.Fatalf("verify failed: %+v", v)
	}
	// Fig. 3's point: this matrix is 1- but not 2-identifiable.
	if v.Identifiable2 {
		t.Fatal("two paths over three links cannot be 2-identifiable")
	}
}

func TestConstructInvalidOptions(t *testing.T) {
	ps := fig3PathSet()
	if _, err := Construct(ps, 3, Options{}); err == nil {
		t.Error("alpha=beta=0 accepted")
	}
	if _, err := Construct(ps, 3, Options{Alpha: 1, Beta: -1}); err == nil {
		t.Error("negative beta accepted")
	}
	if _, err := Construct(ps, 3, Options{Alpha: 1, Beta: 4}); err == nil {
		t.Error("beta above MaxBeta accepted")
	}
	if _, err := Construct(ps, 3, Options{Alpha: 1, Beta: 1, Symmetry: true}); err == nil {
		t.Error("symmetry accepted for a PathSet without a shift generator")
	}
	if _, err := Construct(ps, 3, Options{Alpha: 1, Beta: 2, MaxElements: 2}); err == nil {
		t.Error("MaxElements cap not enforced")
	}
}

// allOptionCombos enumerates the 2^3 speedup combinations.
func allOptionCombos(alpha, beta int) []Options {
	var out []Options
	for _, dec := range []bool{false, true} {
		for _, lazy := range []bool{false, true} {
			for _, sym := range []bool{false, true} {
				out = append(out, Options{Alpha: alpha, Beta: beta, Decompose: dec, Lazy: lazy, Symmetry: sym})
			}
		}
	}
	return out
}

// TestFattree4AllCombosVerified: every speedup combination must produce a
// verified (3,1) matrix on the paper's testbed topology — the configuration
// used in §6.3 ("we use a probe matrix with 1-identifiability and
// 3-coverage, since it is impossible to achieve 2-identifiability in a
// 4-ary Fattree").
func TestFattree4AllCombosVerified(t *testing.T) {
	f := topo.MustFattree(4)
	ps := route.NewFattreePaths(f)
	links := f.SwitchLinks()
	for _, opt := range allOptionCombos(3, 1) {
		res, err := Construct(ps, f.NumLinks(), opt)
		if err != nil {
			t.Fatalf("opts %+v: %v", opt, err)
		}
		probes := route.NewProbes(ps, res.Selected, f.NumLinks())
		v := Verify(probes, links, false)
		if v.MinCoverage < 3 {
			t.Errorf("opts %+v: min coverage %d, want >= 3", opt, v.MinCoverage)
		}
		if !v.Identifiable1 {
			t.Errorf("opts %+v: matrix not 1-identifiable: %v", opt, v.Collisions)
		}
		if !res.Stats.CoverageMet || !res.Stats.IdentMet {
			t.Errorf("opts %+v: stats claim unmet targets: %+v", opt, res.Stats)
		}
	}
}

// TestFattree4TwoIdentImpossible verifies the paper's claim that a 4-ary
// Fattree cannot achieve 2-identifiability: PMC must exhaust candidates and
// report the target unmet, and the verifier must agree.
func TestFattree4TwoIdentImpossible(t *testing.T) {
	f := topo.MustFattree(4)
	ps := route.NewFattreePaths(f)
	res, err := Construct(ps, f.NumLinks(), Options{Alpha: 1, Beta: 2, Decompose: true, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.IdentMet {
		t.Fatal("PMC claims 2-identifiability on a 4-ary Fattree")
	}
	probes := route.NewProbes(ps, res.Selected, f.NumLinks())
	v := Verify(probes, f.SwitchLinks(), true)
	if v.Identifiable2 {
		t.Fatal("verifier claims 2-identifiability on a 4-ary Fattree")
	}
}

// TestFattree8OneIdent: (1,1) on Fattree(8). The paper proves k³/5 is the
// minimum path count for 1-coverage + 1-identifiability (Appendix B) and
// reports the greedy lands slightly above it (Fattree(64): 61,440 vs the
// 52,428 bound, a 1.17x ratio). Accept anything within 1.6x.
func TestFattree8OneIdent(t *testing.T) {
	f := topo.MustFattree(8)
	ps := route.NewFattreePaths(f)
	lower := f.K * f.K * f.K / 5 // 102
	for _, opt := range []Options{
		{Alpha: 1, Beta: 1, Decompose: true, Lazy: true},
		{Alpha: 1, Beta: 1, Decompose: true, Lazy: true, Symmetry: true},
	} {
		res, err := Construct(ps, f.NumLinks(), opt)
		if err != nil {
			t.Fatal(err)
		}
		probes := route.NewProbes(ps, res.Selected, f.NumLinks())
		v := Verify(probes, f.SwitchLinks(), false)
		if v.MinCoverage < 1 || !v.Identifiable1 {
			t.Fatalf("opts %+v: verify failed: min cov %d, collisions %v", opt, v.MinCoverage, v.Collisions)
		}
		if len(res.Selected) < lower {
			t.Errorf("opts %+v: %d paths below the k³/5 = %d lower bound — selection is broken or the bound proof is violated",
				opt, len(res.Selected), lower)
		}
		if len(res.Selected) > lower*8/5 {
			t.Errorf("opts %+v: %d paths, more than 1.6x the k³/5 = %d bound", opt, len(res.Selected), lower)
		}
	}
}

// TestDeterminism: identical options must yield identical selections.
func TestDeterminism(t *testing.T) {
	f := topo.MustFattree(4)
	ps := route.NewFattreePaths(f)
	opt := Options{Alpha: 2, Beta: 1, Decompose: true, Lazy: true, Workers: 4}
	a, err := Construct(ps, f.NumLinks(), opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Construct(ps, f.NumLinks(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Selected) != len(b.Selected) {
		t.Fatalf("non-deterministic: %d vs %d paths", len(a.Selected), len(b.Selected))
	}
	for i := range a.Selected {
		if a.Selected[i] != b.Selected[i] {
			t.Fatalf("non-deterministic at %d: %d vs %d", i, a.Selected[i], b.Selected[i])
		}
	}
}

// TestLazyMatchesStrawmanProperties: lazy and strawman may pick different
// paths (scores are not perfectly monotone), but both must meet the targets
// with comparable path counts on Fattree(8).
func TestLazyMatchesStrawmanProperties(t *testing.T) {
	f := topo.MustFattree(8)
	ps := route.NewFattreePaths(f)
	straw, err := Construct(ps, f.NumLinks(), Options{Alpha: 2, Beta: 1, Decompose: true})
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := Construct(ps, f.NumLinks(), Options{Alpha: 2, Beta: 1, Decompose: true, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []*Result{straw, lazy} {
		probes := route.NewProbes(ps, res.Selected, f.NumLinks())
		v := Verify(probes, f.SwitchLinks(), false)
		if v.MinCoverage < 2 || !v.Identifiable1 {
			t.Fatalf("verify failed: %+v", v)
		}
	}
	ratio := float64(len(lazy.Selected)) / float64(len(straw.Selected))
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("lazy selected %d vs strawman %d (ratio %.2f), want within 25%%",
			len(lazy.Selected), len(straw.Selected), ratio)
	}
	if lazy.Stats.ScoreEvals >= straw.Stats.ScoreEvals {
		t.Errorf("lazy used %d score evals, strawman %d — lazy should evaluate fewer",
			lazy.Stats.ScoreEvals, straw.Stats.ScoreEvals)
	}
}

// TestBetaTwoOnFattree8: (1,2) must be achievable on an 8-ary Fattree and
// pass the explicit pairwise verifier.
func TestBetaTwoOnFattree8(t *testing.T) {
	f := topo.MustFattree(8)
	ps := route.NewFattreePaths(f)
	res, err := Construct(ps, f.NumLinks(), Options{Alpha: 1, Beta: 2, Decompose: true, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.IdentMet {
		t.Fatalf("2-identifiability not met on Fattree(8): %+v", res.Stats)
	}
	probes := route.NewProbes(ps, res.Selected, f.NumLinks())
	v := Verify(probes, f.SwitchLinks(), true)
	if !v.Identifiable2 {
		t.Fatalf("verifier rejects claimed 2-identifiability: %v", v.Collisions)
	}
}

// TestCrossComponentIdentifiability validates the §6.4 argument for why
// decomposed construction still identifies failures spanning components:
// every pair-signature collision in a (3,1) Fattree(4) matrix must involve
// two links of the SAME component — cross-component pairs are always
// separable because each component's share of the union recovers the
// per-link signature.
func TestCrossComponentIdentifiability(t *testing.T) {
	f := topo.MustFattree(4)
	ps := route.NewFattreePaths(f)
	res, err := Construct(ps, f.NumLinks(), Options{Alpha: 3, Beta: 1, Decompose: true, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	probes := route.NewProbes(ps, res.Selected, f.NumLinks())
	comps := route.Decompose(ps, f.NumLinks())
	compOf := make(map[topo.LinkID]int)
	for ci, c := range comps {
		for _, l := range c.Links {
			compOf[l] = ci
		}
	}
	links := f.SwitchLinks()
	for i := 0; i < len(links); i++ {
		for j := i + 1; j < len(links); j++ {
			if compOf[links[i]] == compOf[links[j]] {
				continue
			}
			a := probes.PathsThrough(links[i])
			b := probes.PathsThrough(links[j])
			// The union of a cross-component pair must differ from every
			// single-link signature: it contains paths of two components
			// while any single link's paths are within one.
			u := sigUnion(a, b)
			for _, l := range links {
				if sigString(probes.PathsThrough(l)) == sigString(u) {
					t.Fatalf("cross-component pair {%d,%d} collides with link %d", links[i], links[j], l)
				}
			}
		}
	}
}

// TestVL2Construction exercises all speedups on a small VL2.
func TestVL2Construction(t *testing.T) {
	v := topo.MustVL2(8, 4, 1)
	ps := route.NewVL2Paths(v)
	for _, opt := range allOptionCombos(1, 1) {
		res, err := Construct(ps, v.NumLinks(), opt)
		if err != nil {
			t.Fatalf("opts %+v: %v", opt, err)
		}
		probes := route.NewProbes(ps, res.Selected, v.NumLinks())
		vr := Verify(probes, v.SwitchLinks(), false)
		if vr.MinCoverage < 1 || !vr.Identifiable1 {
			t.Errorf("opts %+v: verify failed: cov %d, %v", opt, vr.MinCoverage, vr.Collisions)
		}
	}
}

// TestBCubeConstruction exercises all speedups on BCube(4,1). BCube links
// include server links (servers are switches there), so verification runs
// over every link.
func TestBCubeConstruction(t *testing.T) {
	b := topo.MustBCube(4, 1)
	ps := route.NewBCubePaths(b)
	var all []topo.LinkID
	for _, l := range b.Links {
		all = append(all, l.ID)
	}
	for _, opt := range allOptionCombos(1, 1) {
		res, err := Construct(ps, b.NumLinks(), opt)
		if err != nil {
			t.Fatalf("opts %+v: %v", opt, err)
		}
		probes := route.NewProbes(ps, res.Selected, b.NumLinks())
		vr := Verify(probes, all, false)
		if vr.MinCoverage < 1 || !vr.Identifiable1 {
			t.Errorf("opts %+v: verify failed: cov %d, %v", opt, vr.MinCoverage, vr.Collisions)
		}
	}
}

// TestSymmetrySelectsFewerCandidates: with symmetry on, the scored
// candidate pool must shrink by roughly the orbit size.
func TestSymmetrySelectsFewerCandidates(t *testing.T) {
	f := topo.MustFattree(8)
	ps := route.NewFattreePaths(f)
	plain, err := Construct(ps, f.NumLinks(), Options{Alpha: 1, Beta: 1, Decompose: true, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	sym, err := Construct(ps, f.NumLinks(), Options{Alpha: 1, Beta: 1, Decompose: true, Lazy: true, Symmetry: true})
	if err != nil {
		t.Fatal(err)
	}
	if sym.Stats.Candidates*f.K != plain.Stats.Candidates {
		t.Errorf("symmetry candidates %d x k should equal plain %d", sym.Stats.Candidates, plain.Stats.Candidates)
	}
	if sym.Stats.ScoreEvals >= plain.Stats.ScoreEvals {
		t.Errorf("symmetry evals %d >= plain %d", sym.Stats.ScoreEvals, plain.Stats.ScoreEvals)
	}
}

// TestAlphaOnlyCoverage: (3,0) pure-coverage matrices.
func TestAlphaOnlyCoverage(t *testing.T) {
	f := topo.MustFattree(4)
	ps := route.NewFattreePaths(f)
	res, err := Construct(ps, f.NumLinks(), Options{Alpha: 3, Beta: 0, Decompose: true, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	probes := route.NewProbes(ps, res.Selected, f.NumLinks())
	v := Verify(probes, f.SwitchLinks(), false)
	if v.MinCoverage < 3 {
		t.Fatalf("min coverage %d, want >= 3", v.MinCoverage)
	}
}

func BenchmarkConstructFattree8Lazy(b *testing.B) {
	f := topo.MustFattree(8)
	ps := route.NewFattreePaths(f)
	opt := Options{Alpha: 2, Beta: 1, Decompose: true, Lazy: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Construct(ps, f.NumLinks(), opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConstructFattree8Symmetry(b *testing.B) {
	f := topo.MustFattree(8)
	ps := route.NewFattreePaths(f)
	opt := Options{Alpha: 2, Beta: 1, Decompose: true, Lazy: true, Symmetry: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Construct(ps, f.NumLinks(), opt); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEvennessTermSpreadsCoverage isolates the Σw term of the score
// (Eq. 1): with it, probe paths spread across links; without it the greedy
// ignores how piled-up coverage already is. The paper reports a max-min
// coverage gap of 188 on Fattree(64) without evenness (§4.2).
func TestEvennessTermSpreadsCoverage(t *testing.T) {
	f := topo.MustFattree(8)
	ps := route.NewFattreePaths(f)
	gapOf := func(noEvenness bool) int {
		res, err := Construct(ps, f.NumLinks(), Options{
			Alpha: 2, Beta: 1, Decompose: true, Lazy: true, NoEvenness: noEvenness,
		})
		if err != nil {
			t.Fatal(err)
		}
		probes := route.NewProbes(ps, res.Selected, f.NumLinks())
		v := Verify(probes, f.SwitchLinks(), false)
		if v.MinCoverage < 2 || !v.Identifiable1 {
			t.Fatalf("noEvenness=%v: targets unmet: %+v", noEvenness, v)
		}
		return v.MaxCoverage - v.MinCoverage
	}
	with := gapOf(false)
	without := gapOf(true)
	if without < with {
		t.Errorf("evenness ablation inverted: gap with term %d, without %d", with, without)
	}
}
