package pmc

import (
	"fmt"
	"sort"

	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

// VerifyResult reports the properties a probe matrix actually achieves,
// computed from explicit path signatures, independently of the refinement
// machinery that built it.
type VerifyResult struct {
	// MinCoverage is the minimum number of probe paths over any checked
	// link (0 when some link is uncovered).
	MinCoverage int
	// MaxCoverage is the maximum, for evenness reporting.
	MaxCoverage int
	// Identifiable1 is true when all single-link signatures are distinct
	// and non-empty.
	Identifiable1 bool
	// Identifiable2 is true when additionally all pairwise signature
	// unions are distinct from each other and from the single signatures.
	Identifiable2 bool
	// Collisions lists up to 8 human-readable failure witnesses.
	Collisions []string
}

// Identifiable reports whether the verified matrix reaches level beta.
func (v VerifyResult) Identifiable(beta int) bool {
	switch {
	case beta <= 0:
		return true
	case beta == 1:
		return v.Identifiable1
	case beta == 2:
		return v.Identifiable2
	default:
		return false // Verify checks up to beta=2 explicitly
	}
}

// Verify computes coverage and identifiability of a probe matrix over the
// given links (normally the topology's switch links). Pair checking is
// O(L²·avg-signature) and intended for test/CI scale matrices; pass
// checkPairs=false to skip it on large instances.
func Verify(p *route.Probes, links []topo.LinkID, checkPairs bool) VerifyResult {
	res := VerifyResult{MinCoverage: int(^uint(0) >> 1)}
	sigOf := make(map[topo.LinkID]string, len(links))
	bySig := make(map[string][]topo.LinkID, len(links))
	for _, l := range links {
		paths := p.PathsThrough(l)
		cov := len(paths)
		if cov < res.MinCoverage {
			res.MinCoverage = cov
		}
		if cov > res.MaxCoverage {
			res.MaxCoverage = cov
		}
		sig := sigString(paths)
		sigOf[l] = sig
		bySig[sig] = append(bySig[sig], l)
	}
	if len(links) == 0 {
		res.MinCoverage = 0
		return res
	}

	res.Identifiable1 = true
	for sig, members := range bySig {
		if sig == "" {
			res.Identifiable1 = false
			res.addCollision(fmt.Sprintf("links %v are uncovered", members))
			continue
		}
		if len(members) > 1 {
			res.Identifiable1 = false
			res.addCollision(fmt.Sprintf("links %v share signature", members))
		}
	}
	if !checkPairs {
		return res
	}

	// Pair unions must be distinct from every single signature and from
	// each other. Signatures are path-index sets rendered canonically.
	res.Identifiable2 = res.Identifiable1
	unions := make(map[string][]string, len(links)*len(links)/2)
	for sig := range bySig {
		unions[sig] = append(unions[sig], "single")
	}
	for i := 0; i < len(links); i++ {
		for j := i + 1; j < len(links); j++ {
			u := sigUnion(p.PathsThrough(links[i]), p.PathsThrough(links[j]))
			key := sigString(u)
			name := fmt.Sprintf("{%d,%d}", links[i], links[j])
			if prev, ok := unions[key]; ok {
				res.Identifiable2 = false
				res.addCollision(fmt.Sprintf("pair %s collides with %s", name, prev[0]))
			}
			unions[key] = append(unions[key], name)
		}
	}
	return res
}

func (v *VerifyResult) addCollision(msg string) {
	if len(v.Collisions) < 8 {
		v.Collisions = append(v.Collisions, msg)
	}
}

func sigString(paths []int32) string {
	b := make([]byte, 0, len(paths)*4)
	for _, p := range paths {
		b = append(b, byte(p), byte(p>>8), byte(p>>16), byte(p>>24))
	}
	return string(b)
}

func sigUnion(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	// Dedupe in place.
	n := 0
	for i, v := range out {
		if i == 0 || v != out[n-1] {
			out[n] = v
			n++
		}
	}
	return out[:n]
}
