package pmc

// minHeap is a hand-rolled 4-ary min-heap over parallel (score, row)
// slices, ordered by score with deterministic row tie-breaking. It replaces
// container/heap for the lazy greedy: Push/Pop there box every element
// through `any`, which costs one allocation per operation — on a Fattree(8)
// run that was ~88k allocations per construction. push and pop here touch
// only the two int32 slices and allocate nothing once the backing arrays
// are at capacity (the lazy greedy seeds the heap with every candidate, so
// the initial capacity is also the high-water mark). The 4-ary layout
// halves the sift depth versus a binary heap; pops still return the exact
// (score, row) minimum, so the greedy's decisions don't depend on the
// arity.
type minHeap struct {
	score []int32
	row   []int32
}

func newMinHeap(capacity int) *minHeap {
	return &minHeap{
		score: make([]int32, 0, capacity),
		row:   make([]int32, 0, capacity),
	}
}

func (h *minHeap) len() int { return len(h.row) }

// init establishes the heap property over entries appended directly to the
// backing slices — one O(n) heapify instead of n sifted pushes.
func (h *minHeap) init() {
	for i := (len(h.row) - 2) / 4; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h *minHeap) less(i, j int) bool {
	if h.score[i] != h.score[j] {
		return h.score[i] < h.score[j]
	}
	return h.row[i] < h.row[j]
}

func (h *minHeap) swap(i, j int) {
	h.score[i], h.score[j] = h.score[j], h.score[i]
	h.row[i], h.row[j] = h.row[j], h.row[i]
}

func (h *minHeap) push(s, r int32) {
	h.score = append(h.score, s)
	h.row = append(h.row, r)
	h.siftUp(len(h.row) - 1)
}

// appendUnordered appends an entry without restoring the heap property;
// callers must run init() before the next pop. The lazy greedy's park-list
// reseeds use it to replace n sifted pushes with one O(n) heapify — the
// ordering of pops is unaffected, because pop always returns the exact
// (score, row) minimum regardless of insertion order.
func (h *minHeap) appendUnordered(s, r int32) {
	h.score = append(h.score, s)
	h.row = append(h.row, r)
}

// pop removes and returns the minimum element. The heap must be non-empty.
func (h *minHeap) pop() (s, r int32) {
	s, r = h.score[0], h.row[0]
	n := len(h.row) - 1
	h.score[0], h.row[0] = h.score[n], h.row[n]
	h.score, h.row = h.score[:n], h.row[:n]
	if n > 1 {
		h.siftDown(0)
	}
	return s, r
}

func (h *minHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 4
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *minHeap) siftDown(i int) {
	n := len(h.row)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		last := first + 4
		if last > n {
			last = n
		}
		m := first
		for c := first + 1; c < last; c++ {
			if h.less(c, m) {
				m = c
			}
		}
		if !h.less(m, i) {
			return
		}
		h.swap(i, m)
		i = m
	}
}
