package pmc

import (
	"hash/fnv"
	"testing"

	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

// hashSelection digests a selection as little-endian path indices through
// FNV-1a, giving the tests a compact fingerprint of the full matrix.
func hashSelection(sel []int) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, s := range sel {
		for i := 0; i < 8; i++ {
			b[i] = byte(s >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}

// pinnedCase fixes the exact selection the engine must produce for one
// (topology, options) pair. The fingerprints were recorded from the
// pre-CSR, non-incremental engine, so they pin two properties at once:
// cross-version stability (the incremental CSR engine reproduces the
// original greedy decision-for-decision) and cross-run determinism.
type pinnedCase struct {
	label    string
	opt      Options
	wantN    int
	wantHash uint64
}

// table2Combos is the paper's cumulative speedup progression at (2,1).
func table2Combos(nSt, nDe, nLa, nSy int, hSt, hDe, hLa, hSy uint64) []pinnedCase {
	return []pinnedCase{
		{"strawman", Options{Alpha: 2, Beta: 1}, nSt, hSt},
		{"decompose", Options{Alpha: 2, Beta: 1, Decompose: true}, nDe, hDe},
		{"lazy", Options{Alpha: 2, Beta: 1, Decompose: true, Lazy: true}, nLa, hLa},
		{"symmetry", Options{Alpha: 2, Beta: 1, Decompose: true, Lazy: true, Symmetry: true}, nSy, hSy},
	}
}

// TestCrossVariantDeterminism runs the four Table 2 option combinations on
// Fattree(4), Fattree(8) and BCube(4,1) and checks that (a) every variant
// produces a matrix passing Verify, (b) the selection matches the pinned
// pre-incremental fingerprint exactly, and (c) Stats.ScoreEvals for Lazy
// stays strictly below strawman — the guard against the incremental engine
// silently regressing to full rescans.
func TestCrossVariantDeterminism(t *testing.T) {
	type topoCase struct {
		name     string
		ps       route.PathSet
		numLinks int
		links    []topo.LinkID
		cases    []pinnedCase
	}
	f4 := topo.MustFattree(4)
	f8 := topo.MustFattree(8)
	b41 := topo.MustBCube(4, 1)
	var b41Links []topo.LinkID
	for _, l := range b41.Links {
		b41Links = append(b41Links, l.ID)
	}
	tests := []topoCase{
		{
			"Fattree4", route.NewFattreePaths(f4), f4.NumLinks(), f4.SwitchLinks(),
			table2Combos(24, 24, 24, 24,
				0xcef54432fd0cf9a5, 0xcef54432fd0cf9a5, 0x05482fb89b5bd825, 0x8c08b2e3670031a5),
		},
		{
			"Fattree8", route.NewFattreePaths(f8), f8.NumLinks(), f8.SwitchLinks(),
			table2Combos(224, 224, 224, 240,
				0xfdf65a058e859747, 0x6d10b97cd652b035, 0x527da8262b65b8c5, 0x9ec67bc163cdc6e5),
		},
		{
			"BCube41", route.NewBCubePaths(b41), b41.NumLinks(), b41Links,
			table2Combos(22, 22, 22, 20,
				0xf54e5e51cd6a6ec5, 0xf54e5e51cd6a6ec5, 0xedc0ad7cc1cc073b, 0x089772bc0ae75573),
		},
	}
	for _, tc := range tests {
		evals := make(map[string]int64)
		for _, c := range tc.cases {
			res, err := Construct(tc.ps, tc.numLinks, c.opt)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, c.label, err)
			}
			if len(res.Selected) != c.wantN {
				t.Errorf("%s/%s: selected %d paths, pinned %d", tc.name, c.label, len(res.Selected), c.wantN)
			}
			if h := hashSelection(res.Selected); h != c.wantHash {
				t.Errorf("%s/%s: selection hash %#016x, pinned %#016x — the greedy's decisions changed",
					tc.name, c.label, h, c.wantHash)
			}
			probes := route.NewProbes(tc.ps, res.Selected, tc.numLinks)
			v := Verify(probes, tc.links, false)
			if v.MinCoverage < 2 {
				t.Errorf("%s/%s: min coverage %d, want >= 2", tc.name, c.label, v.MinCoverage)
			}
			if !v.Identifiable1 {
				t.Errorf("%s/%s: matrix not 1-identifiable: %v", tc.name, c.label, v.Collisions)
			}
			evals[c.label] = res.Stats.ScoreEvals
		}
		if evals["lazy"] >= evals["strawman"] {
			t.Errorf("%s: lazy used %d score evals, strawman %d — lazy must evaluate strictly fewer",
				tc.name, evals["lazy"], evals["strawman"])
		}
	}
}

// TestBetaTwoPinnedSelections pins the beta == 2 engine path. The
// fingerprints were recorded from the dirty-everything engine (every cached
// score rescanned after each selection, the pre-exact-tracking behavior),
// so they prove the exact SplitAffected incremental path that replaced it
// reproduces that engine's selections bit for bit — on Fattree(4),
// Fattree(8) and BCube(4,1), across the lazy, strawman and symmetry greedy
// policies. The evals guard at the bottom is the companion regression
// check: with exact dirty tracking, lazy must evaluate strictly fewer
// scores than the rescanning strawman at beta = 2 as well.
func TestBetaTwoPinnedSelections(t *testing.T) {
	f4 := topo.MustFattree(4)
	f8 := topo.MustFattree(8)
	b41 := topo.MustBCube(4, 1)
	cases := []struct {
		name     string
		ps       route.PathSet
		numLinks int
		opt      Options
		wantN    int
		wantHash uint64
	}{
		{"Fattree4/lazy", route.NewFattreePaths(f4), f4.NumLinks(),
			Options{Alpha: 1, Beta: 2, Decompose: true, Lazy: true}, 36, 0xb9d6fc211f489025},
		{"Fattree4/strawman", route.NewFattreePaths(f4), f4.NumLinks(),
			Options{Alpha: 1, Beta: 2}, 26, 0x5073a9e61652f167},
		{"Fattree8/lazy", route.NewFattreePaths(f8), f8.NumLinks(),
			Options{Alpha: 1, Beta: 2, Decompose: true, Lazy: true}, 332, 0xfa104b2db949eb75},
		{"Fattree8/strawman", route.NewFattreePaths(f8), f8.NumLinks(),
			Options{Alpha: 1, Beta: 2, Decompose: true}, 184, 0xb665975a0e70ce75},
		{"Fattree8/symmetry", route.NewFattreePaths(f8), f8.NumLinks(),
			Options{Alpha: 1, Beta: 2, Decompose: true, Lazy: true, Symmetry: true}, 304, 0x18cbb10da39d9b65},
		{"BCube41/lazy", route.NewBCubePaths(b41), b41.NumLinks(),
			Options{Alpha: 1, Beta: 2, Decompose: true, Lazy: true}, 39, 0x14723add889e1e8a},
		{"BCube41/strawman", route.NewBCubePaths(b41), b41.NumLinks(),
			Options{Alpha: 1, Beta: 2}, 26, 0x0188f84219f46a60},
	}
	evals := make(map[string]int64)
	for _, c := range cases {
		res, err := Construct(c.ps, c.numLinks, c.opt)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(res.Selected) != c.wantN {
			t.Errorf("%s: selected %d paths, pinned %d", c.name, len(res.Selected), c.wantN)
		}
		if h := hashSelection(res.Selected); h != c.wantHash {
			t.Errorf("%s: selection hash %#016x, pinned %#016x", c.name, h, c.wantHash)
		}
		evals[c.name] = res.Stats.ScoreEvals
	}
	if evals["Fattree8/lazy"] >= evals["Fattree8/strawman"] {
		t.Errorf("beta=2 lazy used %d score evals, strawman %d — lazy must evaluate strictly fewer",
			evals["Fattree8/lazy"], evals["Fattree8/strawman"])
	}
}
