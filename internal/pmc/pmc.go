// Package pmc implements deTector's Probe Matrix Construction algorithm
// (paper §4, Alg. 1): a greedy path selector that builds a probe matrix with
// α-coverage and β-identifiability from a topology's candidate path set,
// approximately minimizing the number of probe paths.
//
// The three speedups of §4.3 are independently switchable so that Table 2's
// strawman → decomposition → lazy update → symmetry reduction progression
// can be measured:
//
//   - Decompose splits the routing matrix into independent components
//     (Observation 1) solved in parallel.
//   - Lazy uses CELF-style deferred score updates on a min-heap
//     (Observation 2). The paper argues scores are monotone; package refine
//     documents a counterexample, so the implementation re-validates every
//     popped candidate and parks zero-gain candidates for later reseeding —
//     the resulting matrix always passes the Verify checks even where
//     monotonicity fails.
//   - Symmetry restricts scoring to orbit representatives under the
//     family's automorphism shift generator and batch-selects orbit images
//     whose marginal gain is still positive (Observation 3).
//
// # Scoring engine
//
// All variants run on a flattened CSR scoring engine. Construct materializes
// the candidate matrix once (route.MaterializeCSR), decomposes it directly from
// the arena, and each component then re-indexes its slice of the matrix into
// an arena of component-local link indices plus an inverted link→paths index
// (see compArena in csr.go). The greedy inner loops walk contiguous int32
// slices: no AppendLinks calls, no global→local lookups, no map accesses —
// selections live in a bitset keyed by candidate row.
//
// On top of the inverted index, scoring is incremental. The invariant is:
// a candidate's score (Eq. 1) can only change when a selected path shares a
// physical link with it (the Σw term and the α-coverage marginal) or shares
// a refinement group with it (the identifiability gain term — a group's
// splittability only changes for paths intersecting a group that the
// selection properly split; refine.SplitAffected reports those links
// exactly at every supported β, decoding virtual pair/triple members back
// to their constituent physical links). After each selection step the
// engine dirties only the rows reachable from the affected links through
// the inverted index; cached scores of clean rows are reused verbatim. The
// selection sequence is identical to a full-rescan engine for fixed
// options: clean candidates return exactly the score a rescan would
// (hash-pinned for β ∈ {1,2} in incremental_test.go, differentially proven
// in refine's oracle tests).
package pmc

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/detector-net/detector/internal/refine"
	"github.com/detector-net/detector/internal/route"
)

// Options configures Construct.
type Options struct {
	// Alpha is the required link coverage (>= 1 unless Beta >= 1 carries
	// the run). Beta is the required identifiability level (0..3).
	Alpha, Beta int
	// Decompose enables Observation 1 (independent subproblems).
	Decompose bool
	// Lazy enables Observation 2 (CELF-style deferred updates).
	Lazy bool
	// Symmetry enables Observation 3 (orbit-representative scoring);
	// requires the PathSet to implement route.Symmetric.
	Symmetry bool
	// Workers bounds component-level parallelism; 0 means GOMAXPROCS.
	Workers int
	// MaxElements caps the per-component refinement universe
	// (links + pairs [+ triples]); 0 means DefaultMaxElements. Construct
	// fails rather than thrash when a Beta >= 2 run would exceed it.
	MaxElements int
	// NoEvenness drops the Σw[link] term from the path score (Eq. 1),
	// isolating the evenness mechanism for ablation: without it the
	// greedy piles probe paths onto already-covered links (§4.2 reports a
	// max-min coverage gap of 188 on a 64-ary Fattree without evenness).
	NoEvenness bool
}

// DefaultMaxElements bounds refinement memory to roughly 1 GiB: each
// element costs 12 bytes of partition state (group id + intrusive
// membership links) plus 4 (pair) or 6 (triple) bytes of decode table at
// beta >= 2.
const DefaultMaxElements = 64 << 20

// Stats reports how the construction went.
type Stats struct {
	Components  int
	Candidates  int   // candidate paths scored (orbit representatives when Symmetry)
	ScoreEvals  int64 // total score computations
	Reseeds     int   // lazy-mode park-list rescans
	Selected    int
	Elapsed     time.Duration
	CoverageMet bool // every component link reached Alpha coverage
	IdentMet    bool // every component partition fully refined (Beta >= 1)
}

// Result is a constructed probe matrix: indices into the candidate PathSet.
type Result struct {
	Selected []int
	Stats    Stats
}

// Construct runs PMC over the candidate paths. numLinks is the topology's
// link-ID space size. The returned selection is deterministic for fixed
// options.
func Construct(ps route.PathSet, numLinks int, opt Options) (*Result, error) {
	start := time.Now()
	csr := route.MaterializeCSR(ps)
	var comps []route.Component
	if opt.Decompose {
		comps = route.DecomposeCSR(csr, numLinks)
	} else {
		comps = []route.Component{route.SingleComponentCSR(csr, numLinks)}
	}
	return constructComponents(ps, csr, comps, numLinks, opt, start)
}

// ConstructComponents runs the PMC greedy over an explicit subset of
// components of an already-materialized candidate matrix. It is the
// component-slice entry point the sharded controller plane builds on: a
// coordinator materializes and decomposes once (route.MaterializeCSR +
// route.DecomposeCSR), then each shard solves only the components assigned
// to it. Because components are independent subproblems and Result.Selected
// is sorted, concatenating the selections of any partition of the component
// set and re-sorting reproduces Construct's output bit for bit.
//
// opt.Decompose is ignored: the caller has already chosen the partition.
func ConstructComponents(ps route.PathSet, csr *route.CSR, comps []route.Component, numLinks int, opt Options) (*Result, error) {
	return constructComponents(ps, csr, comps, numLinks, opt, time.Now())
}

// prepareComponents validates options against the component set and
// resolves the symmetry provider. Shared by the cold and warm-start
// construction entry points so they reject identical inputs identically.
func prepareComponents(ps route.PathSet, comps []route.Component, opt Options) (route.Symmetric, error) {
	if opt.Alpha < 0 || opt.Beta < 0 || opt.Beta > refine.MaxBeta {
		return nil, fmt.Errorf("pmc: invalid (alpha,beta) = (%d,%d)", opt.Alpha, opt.Beta)
	}
	if opt.Alpha == 0 && opt.Beta == 0 {
		return nil, fmt.Errorf("pmc: alpha and beta cannot both be zero")
	}
	var sym route.Symmetric
	if opt.Symmetry {
		s, ok := ps.(route.Symmetric)
		if !ok {
			return nil, fmt.Errorf("pmc: symmetry requested but %T has no shift generator", ps)
		}
		sym = s
	}
	maxElems := opt.MaxElements
	if maxElems == 0 {
		maxElems = DefaultMaxElements
	}

	for _, c := range comps {
		if n := elementCount(len(c.Links), opt.Beta); n > maxElems {
			return nil, fmt.Errorf("pmc: component with %d links needs %d refinement elements at beta=%d (max %d); decompose the matrix or lower beta",
				len(c.Links), n, opt.Beta, maxElems)
		}
		// refine's int16 decode tables cap beta >= 2 components at 2^15-1
		// links; reject here (even under a raised MaxElements) so the
		// limit surfaces as an error, not a worker panic.
		if opt.Beta >= 2 && len(c.Links) > 32767 {
			return nil, fmt.Errorf("pmc: component with %d links exceeds the %d-link limit of beta=%d refinement; decompose the matrix or lower beta",
				len(c.Links), 32767, opt.Beta)
		}
	}
	return sym, nil
}

func constructComponents(ps route.PathSet, csr *route.CSR, comps []route.Component, numLinks int, opt Options, start time.Time) (*Result, error) {
	sym, err := prepareComponents(ps, comps, opt)
	if err != nil {
		return nil, err
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(comps) {
		workers = len(comps)
	}

	// Every link belongs to exactly one component, so one shared
	// global→local translation array serves all workers read-only.
	localOf := make([]int32, numLinks)
	for i := range localOf {
		localOf[i] = -1
	}
	for ci := range comps {
		for li, l := range comps[ci].Links {
			localOf[l] = int32(li)
		}
	}

	results := make([]*componentResult, len(comps))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	errs := make([]error, len(comps))
	for i := range comps {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = solveComponent(sym, csr, &comps[i], localOf, opt)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Result{Stats: Stats{
		Components:  len(comps),
		CoverageMet: true,
		IdentMet:    opt.Beta >= 1,
	}}
	for _, cr := range results {
		res.Selected = append(res.Selected, cr.selected...)
		res.Stats.Candidates += cr.candidates
		res.Stats.ScoreEvals += cr.evals
		res.Stats.Reseeds += cr.reseeds
		res.Stats.CoverageMet = res.Stats.CoverageMet && cr.coverageMet
		res.Stats.IdentMet = res.Stats.IdentMet && cr.identMet
	}
	sort.Ints(res.Selected)
	res.Stats.Selected = len(res.Selected)
	res.Stats.Elapsed = time.Since(start)
	return res, nil
}

func elementCount(l, beta int) int {
	n := l
	if beta >= 2 {
		n += l * (l - 1) / 2
	}
	if beta >= 3 {
		n += l * (l - 1) * (l - 2) / 6
	}
	return n
}

type componentResult struct {
	selected    []int
	candidates  int
	evals       int64
	reseeds     int
	coverageMet bool
	identMet    bool
}

// componentState holds the greedy's mutable view of one subproblem: the CSR
// arena plus per-row score caches and the incremental dirty tracking.
type componentState struct {
	opt Options
	ar  *compArena

	w         []int32
	part      *refine.Partition
	uncovered int

	selected  bitset
	nSelected int

	// exact is true while refine.SplitAffected reports affected links
	// precisely — every supported beta today. Should refine ever declare
	// a split conservative, the flag degrades (sticky) and every row is
	// treated as dirty from then on, bypassing the caches below.
	exact    bool
	score    []int32 // cached Eq. 1 score per row
	marginal bitset  // cached positive-marginal flag per row
	dirty    bitset  // rows whose cache is stale

	// Per-step scratch for dirty propagation: the unique local links whose
	// weight or group context changed during the current selection step.
	stepLinks []int32
	linkMark  []int32
	stepEpoch int32
	affBuf    []int32

	evals int64
}

func newComponentState(csr *route.CSR, comp *route.Component, localOf []int32, opt Options) *componentState {
	ar := buildArena(csr, comp, localOf)
	n := ar.numRows()
	cs := &componentState{
		opt:      opt,
		ar:       ar,
		w:        make([]int32, len(comp.Links)),
		part:     refine.MustPartition(len(comp.Links), opt.Beta),
		selected: newBitset(n),
		exact:    true,
		score:    make([]int32, n),
		marginal: newBitset(n),
		dirty:    newBitset(n),
		linkMark: make([]int32, len(comp.Links)),
	}
	cs.dirty.fill() // caches start unpopulated
	if opt.Alpha > 0 {
		cs.uncovered = len(comp.Links)
	}
	return cs
}

// isDirty reports whether row r must be rescored before its cache is used.
func (cs *componentState) isDirty(r int32) bool {
	return !cs.exact || cs.dirty.get(r)
}

// cache stores a freshly computed (score, marginal) for row r.
func (cs *componentState) cache(r, s int32, m bool) {
	cs.score[r] = s
	if m {
		cs.marginal.set(r)
	} else {
		cs.marginal.clear(r)
	}
	if cs.exact {
		cs.dirty.clear(r)
	}
}

// rowWeight computes the Σw term of Eq. 1 for row r and whether the row
// still covers an under-target link (NoEvenness zeroes the sum but not the
// coverage marginal).
func (cs *componentState) rowWeight(r int32) (sum int32, covers bool) {
	alpha := int32(cs.opt.Alpha)
	for _, li := range cs.ar.row(r) {
		wl := cs.w[li]
		sum += wl
		if wl < alpha {
			covers = true
		}
	}
	if cs.opt.NoEvenness {
		sum = 0
	}
	return sum, covers
}

// scoreRow computes the PMC score (Eq. 1) of row r and whether selecting it
// makes progress (positive marginal).
func (cs *componentState) scoreRow(r int32) (score int32, marginalGain bool) {
	cs.evals++
	sum, covers := cs.rowWeight(r)
	gain := int32(0)
	if cs.opt.Beta >= 1 {
		gain = int32(cs.part.CountSplittable(cs.ar.row(r)))
	}
	return sum - gain, covers || gain > 0
}

// beginStep starts a selection step (one greedy pick plus its orbit images):
// affected links accumulate until endStep propagates them to dirty rows.
func (cs *componentState) beginStep() {
	cs.stepEpoch++
	cs.stepLinks = cs.stepLinks[:0]
}

func (cs *componentState) noteLink(li int32) {
	if cs.linkMark[li] != cs.stepEpoch {
		cs.linkMark[li] = cs.stepEpoch
		cs.stepLinks = append(cs.stepLinks, li)
	}
}

// sel commits row r: bumps link weights, refines the partition, records the
// selection, and accumulates the links whose context changed.
func (cs *componentState) sel(r int32) {
	row := cs.ar.row(r)
	for _, li := range row {
		cs.w[li]++
		if int(cs.w[li]) == cs.opt.Alpha {
			cs.uncovered--
		}
	}
	if cs.opt.Beta >= 1 {
		_, aff, exact := cs.part.SplitAffected(row, cs.affBuf[:0])
		cs.affBuf = aff
		if !exact {
			cs.exact = false
		}
		for _, li := range aff {
			cs.noteLink(li)
		}
	}
	for _, li := range row {
		cs.noteLink(li)
	}
	cs.selected.set(r)
	cs.nSelected++
}

// endStep dirties every row whose cached score may have changed: rows
// sharing an accumulated link, found through the inverted index. When a
// step saturates the component — the inverted rows to visit outnumber the
// rows themselves, as happens while refinement groups are still large — a
// single bitset fill is cheaper than walking the index. Over-dirtying only
// costs recomputes that return the cached value; it never changes a
// selection.
func (cs *componentState) endStep() {
	if !cs.exact {
		return
	}
	total := 0
	for _, li := range cs.stepLinks {
		total += int(cs.ar.invOff[li+1] - cs.ar.invOff[li])
	}
	if total >= cs.ar.numRows() {
		cs.dirty.fill()
		return
	}
	for _, li := range cs.stepLinks {
		for _, r := range cs.ar.rowsThrough(li) {
			cs.dirty.set(r)
		}
	}
}

// done reports whether the component satisfies both targets.
func (cs *componentState) done() bool {
	if cs.uncovered > 0 {
		return false
	}
	return cs.opt.Beta == 0 || cs.part.Done()
}

// selectWithOrbit commits row r and, when symmetry is active, every orbit
// image that still has positive marginal gain. Orbit images are scored
// fresh (not from cache) because earlier selections in the same step change
// their scores before the step's dirty propagation runs.
func (cs *componentState) selectWithOrbit(r int32, sym route.Symmetric, orbitBuf []int) []int {
	cs.beginStep()
	cs.sel(r)
	if sym != nil {
		orbitBuf = sym.AppendOrbit(int(cs.ar.pathIDs[r]), orbitBuf[:0])
		for _, img := range orbitBuf {
			ir := cs.ar.rowOf(int32(img))
			if ir < 0 {
				panic(fmt.Sprintf("pmc: orbit image %d leaves its component", img))
			}
			if cs.selected.get(ir) {
				continue
			}
			if _, marginalGain := cs.scoreRow(ir); marginalGain {
				cs.sel(ir)
			}
		}
	}
	cs.endStep()
	return orbitBuf
}

func solveComponent(sym route.Symmetric, csr *route.CSR, comp *route.Component, localOf []int32, opt Options) (*componentResult, error) {
	cs := newComponentState(csr, comp, localOf, opt)

	var candRows []int32
	if sym != nil {
		candRows = make([]int32, 0, len(comp.Paths)/2)
		for r, pid := range comp.Paths {
			if sym.IsRepresentative(int(pid)) {
				candRows = append(candRows, int32(r))
			}
		}
	} else {
		candRows = make([]int32, len(comp.Paths))
		for r := range candRows {
			candRows[r] = int32(r)
		}
	}

	cr := &componentResult{candidates: len(candRows)}
	if opt.Lazy {
		cr.reseeds = lazyGreedy(cs, sym, candRows)
	} else {
		strawmanGreedy(cs, sym, candRows)
	}

	cr.evals = cs.evals
	cr.coverageMet = cs.uncovered == 0
	cr.identMet = opt.Beta == 0 || cs.part.Done()
	cr.selected = make([]int, 0, cs.nSelected)
	// Rows ascend in global path order, so the selection comes out sorted.
	for r, pid := range cs.ar.pathIDs {
		if cs.selected.get(int32(r)) {
			cr.selected = append(cr.selected, int(pid))
		}
	}
	return cr, nil
}

// strawmanGreedy rescans the remaining candidates each iteration — the
// baseline greedy policy of Table 2's "Strawman" column. Exact dirty
// tracking (every supported beta) means only stale rows are rescored; the
// scan over cached scores is otherwise branch-predictable slice walking.
// Should the exact flag ever degrade, isDirty turns every row stale and the
// loop becomes a literal full rescan with unchanged decisions.
//
// Note on what the column measures: the original paper's strawman re-derives
// every candidate's score from scratch each iteration. Here every variant
// (strawman included) runs on the shared incremental CSR engine, so Table 2
// now compares greedy *policies* — rescan-the-frontier vs CELF vs orbit
// reduction — on equal engine footing, with selections identical to the
// full-rescan implementation decision for decision (pinned in
// incremental_test.go). Absolute strawman times are therefore lower than a
// faithful reimplementation of the paper's unoptimized loop would be.
func strawmanGreedy(cs *componentState, sym route.Symmetric, candRows []int32) {
	var orbitBuf []int
	for !cs.done() {
		best := int32(-1)
		bestScore := int32(0)
		for _, r := range candRows {
			if cs.selected.get(r) {
				continue
			}
			var s int32
			var m bool
			if cs.isDirty(r) {
				s, m = cs.scoreRow(r)
				cs.cache(r, s, m)
			} else {
				s, m = cs.score[r], cs.marginal.get(r)
			}
			if !m {
				continue
			}
			if best < 0 || s < bestScore {
				best, bestScore = r, s
			}
		}
		if best < 0 {
			return // no candidate makes progress; targets unreachable
		}
		orbitBuf = cs.selectWithOrbit(best, sym, orbitBuf)
	}
}

// lazyGreedy is the CELF-style variant: candidates are seeded at score -1
// (the exact initial score when every element shares one group) and marked
// dirty, and a popped candidate is rescored only when dirty — a clean pop's
// cached key is exact and, being the heap minimum, wins immediately. Dirty
// pops are re-pushed when their fresh score falls behind the next key.
// Zero-marginal candidates are parked; if the heap drains before the
// targets are met, parked candidates are reseeded, rescoring only the dirty
// ones (this covers the non-monotone cases Observation 2 misses).
func lazyGreedy(cs *componentState, sym route.Symmetric, candRows []int32) (reseeds int) {
	h := newMinHeap(len(candRows))
	var parked []int32
	var orbitBuf []int

	// Initial drain. While any -1 seed remains, the heap pops rows in
	// ascending row order and every pop rescores (the caches start dirty),
	// so the seeded heap is equivalent to this linear scan: rows scoring at
	// or below the seed are selected on the spot, the rest collect their
	// fresh keys for a single O(n) heapify. This skips ~n full-height sift
	// operations over all-equal keys without changing a single decision.
	lastWasPush := false
	for _, r := range candRows {
		if cs.done() {
			return reseeds
		}
		if cs.selected.get(r) {
			continue
		}
		s, m := cs.scoreRow(r)
		cs.cache(r, s, m)
		switch {
		case !m:
			parked = append(parked, r)
			lastWasPush = false
		case s <= -1:
			orbitBuf = cs.selectWithOrbit(r, sym, orbitBuf)
			lastWasPush = false
		default:
			h.appendUnordered(s, r)
			lastWasPush = true
		}
	}
	if lastWasPush {
		// The final seeded pop in the heap formulation compares against
		// the minimum of the already re-keyed entries, not the seed:
		// replay that one comparison exactly.
		n := h.len() - 1
		s, r := h.score[n], h.row[n]
		h.score, h.row = h.score[:n], h.row[:n]
		h.init()
		if h.len() == 0 || s <= h.score[0] {
			orbitBuf = cs.selectWithOrbit(r, sym, orbitBuf)
		} else {
			h.push(s, r)
		}
	} else {
		h.init()
	}
	for !cs.done() {
		if h.len() == 0 {
			// Reseed from the park list: gains can reappear after other
			// selections refine the partition differently. Parked rows
			// whose cache is still clean are still zero-marginal and are
			// kept without rescoring; rows that regained a margin are
			// appended unordered and heapified once.
			keep := parked[:0]
			for _, r := range parked {
				if cs.selected.get(r) {
					continue
				}
				if !cs.isDirty(r) {
					keep = append(keep, r)
					continue
				}
				s, m := cs.scoreRow(r)
				cs.cache(r, s, m)
				if m {
					h.appendUnordered(s, r)
				} else {
					keep = append(keep, r)
				}
			}
			parked = keep
			if h.len() == 0 {
				return reseeds // nothing can make progress
			}
			h.init()
			reseeds++
			continue
		}
		_, r := h.pop()
		if cs.selected.get(r) {
			continue
		}
		if !cs.isDirty(r) {
			// The cached score is exact and was the heap minimum, so a
			// rescan could not find anything better: select or park
			// without recomputing.
			if cs.marginal.get(r) {
				orbitBuf = cs.selectWithOrbit(r, sym, orbitBuf)
			} else {
				parked = append(parked, r)
			}
			continue
		}
		s, m := cs.scoreRow(r)
		cs.cache(r, s, m)
		if !m {
			parked = append(parked, r)
			continue
		}
		if h.len() == 0 || s <= h.score[0] {
			orbitBuf = cs.selectWithOrbit(r, sym, orbitBuf)
			continue
		}
		h.push(s, r)
	}
	return reseeds
}
