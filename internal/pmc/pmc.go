// Package pmc implements deTector's Probe Matrix Construction algorithm
// (paper §4, Alg. 1): a greedy path selector that builds a probe matrix with
// α-coverage and β-identifiability from a topology's candidate path set,
// approximately minimizing the number of probe paths.
//
// The three speedups of §4.3 are independently switchable so that Table 2's
// strawman → decomposition → lazy update → symmetry reduction progression
// can be measured:
//
//   - Decompose splits the routing matrix into independent components
//     (Observation 1) solved in parallel.
//   - Lazy uses CELF-style deferred score updates on a min-heap
//     (Observation 2). The paper argues scores are monotone; package refine
//     documents a counterexample, so the implementation re-validates every
//     popped candidate and parks zero-gain candidates for later reseeding —
//     the resulting matrix always passes the Verify checks even where
//     monotonicity fails.
//   - Symmetry restricts scoring to orbit representatives under the
//     family's automorphism shift generator and batch-selects orbit images
//     whose marginal gain is still positive (Observation 3).
package pmc

import (
	"container/heap"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/detector-net/detector/internal/refine"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

// Options configures Construct.
type Options struct {
	// Alpha is the required link coverage (>= 1 unless Beta >= 1 carries
	// the run). Beta is the required identifiability level (0..3).
	Alpha, Beta int
	// Decompose enables Observation 1 (independent subproblems).
	Decompose bool
	// Lazy enables Observation 2 (CELF-style deferred updates).
	Lazy bool
	// Symmetry enables Observation 3 (orbit-representative scoring);
	// requires the PathSet to implement route.Symmetric.
	Symmetry bool
	// Workers bounds component-level parallelism; 0 means GOMAXPROCS.
	Workers int
	// MaxElements caps the per-component refinement universe
	// (links + pairs [+ triples]); 0 means DefaultMaxElements. Construct
	// fails rather than thrash when a Beta >= 2 run would exceed it.
	MaxElements int
	// NoEvenness drops the Σw[link] term from the path score (Eq. 1),
	// isolating the evenness mechanism for ablation: without it the
	// greedy piles probe paths onto already-covered links (§4.2 reports a
	// max-min coverage gap of 188 on a 64-ary Fattree without evenness).
	NoEvenness bool
}

// DefaultMaxElements bounds refinement memory to roughly 1 GiB of group ids.
const DefaultMaxElements = 64 << 20

// Stats reports how the construction went.
type Stats struct {
	Components  int
	Candidates  int   // candidate paths scored (orbit representatives when Symmetry)
	ScoreEvals  int64 // total score computations
	Reseeds     int   // lazy-mode park-list rescans
	Selected    int
	Elapsed     time.Duration
	CoverageMet bool // every component link reached Alpha coverage
	IdentMet    bool // every component partition fully refined (Beta >= 1)
}

// Result is a constructed probe matrix: indices into the candidate PathSet.
type Result struct {
	Selected []int
	Stats    Stats
}

// Construct runs PMC over the candidate paths. numLinks is the topology's
// link-ID space size. The returned selection is deterministic for fixed
// options.
func Construct(ps route.PathSet, numLinks int, opt Options) (*Result, error) {
	start := time.Now()
	if opt.Alpha < 0 || opt.Beta < 0 || opt.Beta > refine.MaxBeta {
		return nil, fmt.Errorf("pmc: invalid (alpha,beta) = (%d,%d)", opt.Alpha, opt.Beta)
	}
	if opt.Alpha == 0 && opt.Beta == 0 {
		return nil, fmt.Errorf("pmc: alpha and beta cannot both be zero")
	}
	var sym route.Symmetric
	if opt.Symmetry {
		s, ok := ps.(route.Symmetric)
		if !ok {
			return nil, fmt.Errorf("pmc: symmetry requested but %T has no shift generator", ps)
		}
		sym = s
	}
	maxElems := opt.MaxElements
	if maxElems == 0 {
		maxElems = DefaultMaxElements
	}

	var comps []route.Component
	if opt.Decompose {
		comps = route.Decompose(ps, numLinks)
	} else {
		comps = []route.Component{route.SingleComponent(ps, numLinks)}
	}

	for _, c := range comps {
		if n := elementCount(len(c.Links), opt.Beta); n > maxElems {
			return nil, fmt.Errorf("pmc: component with %d links needs %d refinement elements at beta=%d (max %d); decompose the matrix or lower beta",
				len(c.Links), n, opt.Beta, maxElems)
		}
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(comps) {
		workers = len(comps)
	}

	results := make([]*componentResult, len(comps))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	errs := make([]error, len(comps))
	for i := range comps {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = solveComponent(ps, sym, &comps[i], numLinks, opt)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Result{Stats: Stats{
		Components:  len(comps),
		CoverageMet: true,
		IdentMet:    opt.Beta >= 1,
	}}
	for _, cr := range results {
		res.Selected = append(res.Selected, cr.selected...)
		res.Stats.Candidates += cr.candidates
		res.Stats.ScoreEvals += cr.evals
		res.Stats.Reseeds += cr.reseeds
		res.Stats.CoverageMet = res.Stats.CoverageMet && cr.coverageMet
		res.Stats.IdentMet = res.Stats.IdentMet && cr.identMet
	}
	sort.Ints(res.Selected)
	res.Stats.Selected = len(res.Selected)
	res.Stats.Elapsed = time.Since(start)
	return res, nil
}

func elementCount(l, beta int) int {
	n := l
	if beta >= 2 {
		n += l * (l - 1) / 2
	}
	if beta >= 3 {
		n += l * (l - 1) * (l - 2) / 6
	}
	return n
}

type componentResult struct {
	selected    []int
	candidates  int
	evals       int64
	reseeds     int
	coverageMet bool
	identMet    bool
}

// componentState holds the greedy's mutable view of one subproblem.
type componentState struct {
	ps      route.PathSet
	opt     Options
	localOf []int32 // global link id -> local index, -1 if outside component

	w         []int32
	part      *refine.Partition
	uncovered int
	selected  map[int32]bool

	linkBuf  []topo.LinkID
	localBuf []int32
	evals    int64
}

func newComponentState(ps route.PathSet, comp *route.Component, numLinks int, opt Options) *componentState {
	cs := &componentState{
		ps:       ps,
		opt:      opt,
		localOf:  make([]int32, numLinks),
		w:        make([]int32, len(comp.Links)),
		part:     refine.MustPartition(len(comp.Links), opt.Beta),
		selected: make(map[int32]bool),
	}
	for i := range cs.localOf {
		cs.localOf[i] = -1
	}
	for li, l := range comp.Links {
		cs.localOf[l] = int32(li)
	}
	if opt.Alpha > 0 {
		cs.uncovered = len(comp.Links)
	}
	return cs
}

// pathLocal resolves the local link indices of candidate path idx.
func (cs *componentState) pathLocal(idx int32) []int32 {
	cs.linkBuf = cs.ps.AppendLinks(int(idx), cs.linkBuf[:0])
	cs.localBuf = cs.localBuf[:0]
	for _, l := range cs.linkBuf {
		li := cs.localOf[l]
		if li < 0 {
			panic(fmt.Sprintf("pmc: path %d leaves its component (link %d)", idx, l))
		}
		cs.localBuf = append(cs.localBuf, li)
	}
	return cs.localBuf
}

// score computes the PMC score (Eq. 1) of the path with the given local
// links and whether selecting it makes progress (positive marginal).
func (cs *componentState) score(local []int32) (score int, marginal bool) {
	cs.evals++
	sum := 0
	covers := false
	for _, li := range local {
		sum += int(cs.w[li])
		if int(cs.w[li]) < cs.opt.Alpha {
			covers = true
		}
	}
	if cs.opt.NoEvenness {
		sum = 0
	}
	gain := 0
	if cs.opt.Beta >= 1 {
		gain = cs.part.CountSplittable(local)
	}
	return sum - gain, covers || gain > 0
}

// sel commits a path: bumps link weights, refines the partition and records
// the selection.
func (cs *componentState) sel(idx int32, local []int32) {
	for _, li := range local {
		cs.w[li]++
		if int(cs.w[li]) == cs.opt.Alpha {
			cs.uncovered--
		}
	}
	if cs.opt.Beta >= 1 {
		cs.part.Split(local)
	}
	cs.selected[idx] = true
}

// done reports whether the component satisfies both targets.
func (cs *componentState) done() bool {
	if cs.uncovered > 0 {
		return false
	}
	return cs.opt.Beta == 0 || cs.part.Done()
}

// selectWithOrbit commits idx and, when symmetry is active, every orbit
// image that still has positive marginal gain.
func (cs *componentState) selectWithOrbit(idx int32, sym route.Symmetric, orbitBuf []int) []int {
	cs.sel(idx, cs.pathLocal(idx))
	if sym == nil {
		return orbitBuf
	}
	orbitBuf = sym.AppendOrbit(int(idx), orbitBuf[:0])
	for _, img := range orbitBuf {
		if cs.selected[int32(img)] {
			continue
		}
		local := cs.pathLocal(int32(img))
		if _, marginal := cs.score(local); marginal {
			cs.sel(int32(img), local)
		}
	}
	return orbitBuf
}

func solveComponent(ps route.PathSet, sym route.Symmetric, comp *route.Component, numLinks int, opt Options) (*componentResult, error) {
	cs := newComponentState(ps, comp, numLinks, opt)

	candidates := comp.Paths
	if sym != nil {
		reps := make([]int32, 0, len(comp.Paths)/2)
		for _, p := range comp.Paths {
			if sym.IsRepresentative(int(p)) {
				reps = append(reps, p)
			}
		}
		candidates = reps
	}

	cr := &componentResult{candidates: len(candidates)}
	if opt.Lazy {
		cr.reseeds = lazyGreedy(cs, sym, candidates)
	} else {
		strawmanGreedy(cs, sym, candidates)
	}

	cr.evals = cs.evals
	cr.coverageMet = cs.uncovered == 0
	cr.identMet = opt.Beta == 0 || cs.part.Done()
	cr.selected = make([]int, 0, len(cs.selected))
	for idx := range cs.selected {
		cr.selected = append(cr.selected, int(idx))
	}
	sort.Ints(cr.selected)
	return cr, nil
}

// strawmanGreedy rescans every remaining candidate each iteration — the
// unoptimized baseline whose cost Table 2's "Strawman" column measures.
func strawmanGreedy(cs *componentState, sym route.Symmetric, candidates []int32) {
	var orbitBuf []int
	for !cs.done() {
		best := int32(-1)
		bestScore := 0
		for _, idx := range candidates {
			if cs.selected[idx] {
				continue
			}
			s, marginal := cs.score(cs.pathLocal(idx))
			if !marginal {
				continue
			}
			if best < 0 || s < bestScore || (s == bestScore && idx < best) {
				best, bestScore = idx, s
			}
		}
		if best < 0 {
			return // no candidate makes progress; targets unreachable
		}
		orbitBuf = cs.selectWithOrbit(best, sym, orbitBuf)
	}
}

// pathHeap is a min-heap of (score, path index) with deterministic
// tie-breaking on index.
type pathHeap struct {
	score []int32
	idx   []int32
}

func (h *pathHeap) Len() int { return len(h.idx) }
func (h *pathHeap) Less(i, j int) bool {
	if h.score[i] != h.score[j] {
		return h.score[i] < h.score[j]
	}
	return h.idx[i] < h.idx[j]
}
func (h *pathHeap) Swap(i, j int) {
	h.score[i], h.score[j] = h.score[j], h.score[i]
	h.idx[i], h.idx[j] = h.idx[j], h.idx[i]
}
func (h *pathHeap) Push(x any) {
	e := x.([2]int32)
	h.score = append(h.score, e[0])
	h.idx = append(h.idx, e[1])
}
func (h *pathHeap) Pop() any {
	n := len(h.idx) - 1
	e := [2]int32{h.score[n], h.idx[n]}
	h.score = h.score[:n]
	h.idx = h.idx[:n]
	return e
}

// lazyGreedy is the CELF-style variant: candidates start at the exact
// initial score -1 (all elements share one group, so every path splits
// exactly one set and has zero weight), and a popped candidate is selected
// only if its freshly recomputed score is still no worse than the heap's
// next key. Zero-marginal candidates are parked; if the heap drains before
// the targets are met, parked candidates with restored gain are reseeded
// (this covers the non-monotone cases Observation 2 misses).
func lazyGreedy(cs *componentState, sym route.Symmetric, candidates []int32) (reseeds int) {
	h := &pathHeap{
		score: make([]int32, len(candidates)),
		idx:   append([]int32(nil), candidates...),
	}
	for i := range h.score {
		h.score[i] = -1
	}
	heap.Init(h)

	var parked []int32
	var orbitBuf []int
	for !cs.done() {
		if h.Len() == 0 {
			// Reseed from the park list: gains can reappear after other
			// selections refine the partition differently.
			var keep []int32
			for _, idx := range parked {
				if cs.selected[idx] {
					continue
				}
				s, marginal := cs.score(cs.pathLocal(idx))
				if marginal {
					heap.Push(h, [2]int32{int32(s), idx})
				} else {
					keep = append(keep, idx)
				}
			}
			parked = keep
			if h.Len() == 0 {
				return reseeds // nothing can make progress
			}
			reseeds++
			continue
		}
		e := heap.Pop(h).([2]int32)
		idx := e[1]
		if cs.selected[idx] {
			continue
		}
		s, marginal := cs.score(cs.pathLocal(idx))
		if !marginal {
			parked = append(parked, idx)
			continue
		}
		if h.Len() == 0 || s <= int(h.score[0]) {
			orbitBuf = cs.selectWithOrbit(idx, sym, orbitBuf)
			continue
		}
		heap.Push(h, [2]int32{int32(s), idx})
	}
	return reseeds
}
