package pmc

import (
	"fmt"

	"github.com/detector-net/detector/internal/route"
)

// bitset is a fixed-size bit vector over candidate rows.
type bitset []uint64

func newBitset(n int) bitset      { return make(bitset, (n+63)/64) }
func (b bitset) get(i int32) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }
func (b bitset) set(i int32)      { b[i>>6] |= 1 << uint(i&63) }
func (b bitset) clear(i int32)    { b[i>>6] &^= 1 << uint(i&63) }

func (b bitset) fill() {
	for i := range b {
		b[i] = ^uint64(0)
	}
}

// compArena is one component's candidate paths flattened into a CSR arena
// of *local* link indices, plus the inverted link→rows index. Rows are
// candidate positions (0..len(pathIDs)-1) in ascending global path order,
// so row order and path-index order agree everywhere. After the arena is
// built, the greedy loops never call PathSet.AppendLinks, never translate a
// global link id, and never touch a map: scoring walks links[offsets[r]:
// offsets[r+1]], and dirty propagation walks invRows[invOff[l]:invOff[l+1]].
type compArena struct {
	pathIDs []int32 // row -> global path index (== Component.Paths)
	offsets []int32 // len(pathIDs)+1; row r spans [offsets[r], offsets[r+1])
	links   []int32 // local link indices, concatenated rows
	invOff  []int32 // local link -> start into invRows; len = numLocal+1
	invRows []int32 // rows through each link, ascending within a link
}

func (a *compArena) numRows() int { return len(a.pathIDs) }

func (a *compArena) row(r int32) []int32 {
	return a.links[a.offsets[r]:a.offsets[r+1]]
}

func (a *compArena) rowsThrough(l int32) []int32 {
	return a.invRows[a.invOff[l]:a.invOff[l+1]]
}

// rowOf resolves a global path index to its row by binary search (pathIDs
// is ascending), or -1 when the path is outside the component.
func (a *compArena) rowOf(path int32) int32 {
	lo, hi := 0, len(a.pathIDs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a.pathIDs[mid] < path {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(a.pathIDs) && a.pathIDs[lo] == path {
		return int32(lo)
	}
	return -1
}

// buildArena translates the component's slice of the materialized matrix
// into local link indices and builds the inverted index with a counting
// sort: one pass to size, one prefix sum, one pass to fill.
func buildArena(csr *route.CSR, comp *route.Component, localOf []int32) *compArena {
	n := len(comp.Paths)
	numLocal := len(comp.Links)
	total := 0
	for _, pid := range comp.Paths {
		total += int(csr.Offsets[pid+1] - csr.Offsets[pid])
	}
	a := &compArena{
		pathIDs: comp.Paths,
		offsets: make([]int32, n+1),
		links:   make([]int32, total),
		invOff:  make([]int32, numLocal+1),
	}
	pos := int32(0)
	for r, pid := range comp.Paths {
		for _, gl := range csr.Row(int(pid)) {
			li := localOf[gl]
			if li < 0 {
				panic(fmt.Sprintf("pmc: path %d leaves its component (link %d)", pid, gl))
			}
			a.links[pos] = li
			a.invOff[li+1]++
			pos++
		}
		a.offsets[r+1] = pos
	}
	for l := 0; l < numLocal; l++ {
		a.invOff[l+1] += a.invOff[l]
	}
	a.invRows = make([]int32, total)
	fill := make([]int32, numLocal)
	copy(fill, a.invOff[:numLocal])
	for r := 0; r < n; r++ {
		for _, li := range a.links[a.offsets[r]:a.offsets[r+1]] {
			a.invRows[fill[li]] = int32(r)
			fill[li]++
		}
	}
	return a
}
