package pmc

import (
	"reflect"
	"testing"

	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

// TestMemoExactHitBitIdentical: a second warm construction over identical
// components must return the identical selection without solving anything,
// and both must match the cold path bit for bit.
func TestMemoExactHitBitIdentical(t *testing.T) {
	f := topo.MustFattree(8)
	ps := route.NewFattreePaths(f)
	csr := route.MaterializeCSR(ps)
	comps := route.DecomposeCSR(csr, f.NumLinks())
	opt := Options{Alpha: 1, Beta: 1, Lazy: true}

	cold, err := ConstructComponents(ps, csr, comps, f.NumLinks(), opt)
	if err != nil {
		t.Fatal(err)
	}
	memo := NewMemo(0)
	warm1, err := ConstructComponentsWarm(ps, csr, comps, f.NumLinks(), opt, memo)
	if err != nil {
		t.Fatal(err)
	}
	warm2, err := ConstructComponentsWarm(ps, csr, comps, f.NumLinks(), opt, memo)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold.Selected, warm1.Selected) {
		t.Fatal("first warm construction diverges from cold")
	}
	if !reflect.DeepEqual(cold.Selected, warm2.Selected) {
		t.Fatal("memo-hit construction diverges from cold")
	}
	st := memo.Stats()
	if st.Misses != int64(len(comps)) || st.Hits != int64(len(comps)) {
		t.Fatalf("memo stats hits=%d misses=%d, want %d/%d", st.Hits, st.Misses, len(comps), len(comps))
	}
	if warm2.Stats.ScoreEvals != 0 {
		t.Fatalf("memo-hit construction scored %d rows, want 0", warm2.Stats.ScoreEvals)
	}
}

// TestMemoFlapBack: down a link, bring it back — the restored components hit
// the memo entries from before the flap (the churn case the memo exists for).
func TestMemoFlapBack(t *testing.T) {
	f := topo.MustFattree(8)
	ps := route.NewFattreePaths(f)
	csr := route.MaterializeCSR(ps)
	opt := Options{Alpha: 1, Beta: 1, Lazy: true}
	memo := NewMemo(0)

	inc := route.NewIncremental(csr, f.NumLinks(), nil)
	base := append([]route.Component(nil), inc.Components()...)
	res0, err := ConstructComponentsWarm(ps, csr, base, f.NumLinks(), opt, memo)
	if err != nil {
		t.Fatal(err)
	}
	// Flap the first link of the first component down and back up.
	l := base[0].Links[0]
	if _, err := inc.Apply([]topo.LinkID{l}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ConstructComponentsWarm(ps, csr, inc.Components(), f.NumLinks(), opt, memo); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Apply(nil, []topo.LinkID{l}); err != nil {
		t.Fatal(err)
	}
	preHits := memo.Stats().Hits
	res2, err := ConstructComponentsWarm(ps, csr, inc.Components(), f.NumLinks(), opt, memo)
	if err != nil {
		t.Fatal(err)
	}
	if got := memo.Stats().Hits - preHits; got != int64(len(base)) {
		t.Fatalf("flap-back hit %d components, want all %d", got, len(base))
	}
	if !reflect.DeepEqual(res0.Selected, res2.Selected) {
		t.Fatal("flap-back selection diverges from the original")
	}
}

// TestMemoSeededMeetsTargets: the approximate seeded mode must still produce
// a matrix meeting the α/β targets after a link is removed (link set becomes
// a subset of the cached component's).
func TestMemoSeededMeetsTargets(t *testing.T) {
	b := topo.MustBCube(4, 1)
	ps := route.NewBCubePaths(b)
	csr := route.MaterializeCSR(ps)
	opt := Options{Alpha: 1, Beta: 1, Lazy: true}
	memo := NewMemo(0)
	memo.EnableSeeding()

	full := route.DecomposeCSR(csr, b.NumLinks())
	if _, err := ConstructComponentsWarm(ps, csr, full, b.NumLinks(), opt, memo); err != nil {
		t.Fatal(err)
	}
	down := []topo.LinkID{full[0].Links[0]}
	masked := route.DecomposeMasked(csr, b.NumLinks(), down)
	res, err := ConstructComponentsWarm(ps, csr, masked, b.NumLinks(), opt, memo)
	if err != nil {
		t.Fatal(err)
	}
	if st := memo.Stats(); st.Seeded == 0 {
		t.Fatal("expected at least one seeded construction")
	}
	if !res.Stats.CoverageMet || !res.Stats.IdentMet {
		t.Fatalf("seeded construction missed targets: %+v", res.Stats)
	}
	probes := route.NewProbes(ps, res.Selected, b.NumLinks())
	var links []topo.LinkID
	for _, c := range masked {
		links = append(links, c.Links...)
	}
	v := Verify(probes, links, true)
	if v.MinCoverage < opt.Alpha || !v.Identifiable(opt.Beta) {
		t.Fatalf("seeded matrix fails verification: %+v", v)
	}
}

// TestMemoEviction: the memo drops oldest entries beyond its capacity.
func TestMemoEviction(t *testing.T) {
	csrRows := [][]topo.LinkID{{0}, {1}, {2}, {0, 1}, {1, 2}}
	csr := &route.CSR{Offsets: []int32{0}, Links: nil}
	for _, row := range csrRows {
		csr.Links = append(csr.Links, row...)
		csr.Offsets = append(csr.Offsets, int32(len(csr.Links)))
	}
	key := optKeyOf(Options{Alpha: 1, Lazy: true})
	m := NewMemo(2)
	comps := route.DecomposeCSR(csr, 3)
	if len(comps) != 1 {
		t.Fatalf("want a single component, got %d", len(comps))
	}
	// Store three distinct contents by varying the paths slice.
	for i := 0; i < 3; i++ {
		c := route.Component{Links: comps[0].Links, Paths: comps[0].Paths[:len(comps[0].Paths)-i]}
		m.store(&c, key, contentHash(&c, key), &componentResult{selected: []int{i}})
	}
	if st := m.Stats(); st.Entries != 2 {
		t.Fatalf("memo holds %d entries, want 2", st.Entries)
	}
	first := route.Component{Links: comps[0].Links, Paths: comps[0].Paths}
	if e := m.get(&first, key, contentHash(&first, key)); e != nil {
		t.Fatal("oldest entry should have been evicted")
	}
}
