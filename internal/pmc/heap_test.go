package pmc

import (
	"math/rand"
	"sort"
	"testing"
)

// TestMinHeapOrdering drains randomly pushed entries and checks exact
// (score, row) ascending order, duplicates included.
func TestMinHeapOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 1000
	type entry struct{ s, r int32 }
	entries := make([]entry, n)
	h := newMinHeap(n)
	for i := range entries {
		entries[i] = entry{int32(rng.Intn(50) - 25), int32(i)}
	}
	rng.Shuffle(n, func(i, j int) { entries[i], entries[j] = entries[j], entries[i] })
	for _, e := range entries {
		h.push(e.s, e.r)
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].s != entries[j].s {
			return entries[i].s < entries[j].s
		}
		return entries[i].r < entries[j].r
	})
	for i, want := range entries {
		s, r := h.pop()
		if s != want.s || r != want.r {
			t.Fatalf("pop %d: got (%d,%d), want (%d,%d)", i, s, r, want.s, want.r)
		}
	}
	if h.len() != 0 {
		t.Fatalf("heap not drained: %d left", h.len())
	}
}

// TestMinHeapInitMatchesPushes heapifies a raw array and checks the pop
// sequence equals the push-built heap's.
func TestMinHeapInitMatchesPushes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 513
	a, b := newMinHeap(n), newMinHeap(n)
	for i := 0; i < n; i++ {
		s := int32(rng.Intn(9))
		a.score = append(a.score, s)
		a.row = append(a.row, int32(i))
		b.push(s, int32(i))
	}
	a.init()
	for i := 0; i < n; i++ {
		as, ar := a.pop()
		bs, br := b.pop()
		if as != bs || ar != br {
			t.Fatalf("pop %d: init-heap (%d,%d) vs push-heap (%d,%d)", i, as, ar, bs, br)
		}
	}
}

// TestMinHeapBulkReseedMatchesPushes models the lazy greedy's park-list
// reseed: entries appended unordered onto a partially drained heap, then
// heapified once, must pop in exactly the order n sifted pushes would
// produce — the property that keeps bulk reseeds decision-identical.
func TestMinHeapBulkReseedMatchesPushes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n = 257
	a, b := newMinHeap(2*n), newMinHeap(2*n)
	for i := 0; i < n; i++ {
		s := int32(rng.Intn(7) - 3)
		a.push(s, int32(i))
		b.push(s, int32(i))
	}
	for i := 0; i < n/2; i++ {
		a.pop()
		b.pop()
	}
	for i := n; i < 2*n; i++ {
		s := int32(rng.Intn(7) - 3)
		a.appendUnordered(s, int32(i))
		b.push(s, int32(i))
	}
	a.init()
	for a.len() > 0 {
		as, ar := a.pop()
		bs, br := b.pop()
		if as != bs || ar != br {
			t.Fatalf("bulk-reseed heap popped (%d,%d), push-heap (%d,%d)", as, ar, bs, br)
		}
	}
	if b.len() != 0 {
		t.Fatalf("push-heap not drained: %d left", b.len())
	}
}

// TestMinHeapZeroAllocSteadyState enforces the lazy greedy's allocation
// contract: once the heap is at capacity, push/pop cycles allocate nothing
// (the container/heap predecessor boxed every element through `any`).
func TestMinHeapZeroAllocSteadyState(t *testing.T) {
	const n = 4096
	h := newMinHeap(n)
	for i := 0; i < n; i++ {
		h.push(int32(i%97), int32(i))
	}
	allocs := testing.AllocsPerRun(100, func() {
		s, r := h.pop()
		h.push(s+1, r)
		s, r = h.pop()
		h.push(s-1, r)
	})
	if allocs != 0 {
		t.Fatalf("heap push/pop allocated %v times per op, want 0", allocs)
	}
}

// BenchmarkMinHeapPushPop measures the steady-state cost of one
// pop-then-push cycle at the Fattree(8) component heap size; allocs/op must
// report 0.
func BenchmarkMinHeapPushPop(b *testing.B) {
	const n = 4096
	h := newMinHeap(n)
	for i := 0; i < n; i++ {
		h.push(int32(i%97), int32(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, r := h.pop()
		h.push(s+1, r)
	}
}
